"""Tests for the repro-experiment CLI."""

import json

import pytest

from repro.experiments.cli import build_parser, main


def test_list_option(capsys):
    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    assert "fig3" in out and "table2" in out


def test_no_arguments_lists(capsys):
    assert main([]) == 0
    assert "fig1" in capsys.readouterr().out


def test_unknown_experiment_errors(capsys):
    with pytest.raises(SystemExit):
        main(["fig99"])
    assert "unknown experiment" in capsys.readouterr().err


def test_run_single_fast_experiment(capsys):
    assert main(["table2"]) == 0
    out = capsys.readouterr().out
    assert "Pentium M" in out
    assert "1.484" in out


def test_json_output(tmp_path, capsys):
    path = tmp_path / "out.json"
    assert main(["fig2", "--json", str(path)]) == 0
    lines = path.read_text().strip().splitlines()
    assert len(lines) == 1
    payload = json.loads(lines[0])
    assert payload["experiment_id"] == "fig2"


def test_parser_program_name():
    assert build_parser().prog == "repro-experiment"


def test_param_parsing():
    from repro.experiments.cli import parse_params

    params = parse_params(["iterations=3", "name=hello", "flag=True"])
    assert params == {"iterations": 3, "name": "hello", "flag": True}
    with pytest.raises(ValueError):
        parse_params(["noequals"])


def test_param_forwarded_to_experiment(capsys):
    # fig2 accepts n_points; shrink it and check the table shrank.
    assert main(["fig2", "--param", "n_points=3"]) == 0
    out = capsys.readouterr().out
    assert out.count("\n1.") <= 4  # only 3 delay-factor rows


def test_param_ignored_when_not_accepted(capsys):
    # table2 takes no kwargs; an unrelated param must not crash it.
    assert main(["table2", "--param", "iterations=5"]) == 0
    assert "Pentium M" in capsys.readouterr().out


def test_cache_dir_flag_round_trip(tmp_path, capsys):
    cache_dir = tmp_path / "cache"
    args = ["fig6", "--cache-dir", str(cache_dir), "--param", "passes=2"]

    assert main(args) == 0
    cold = capsys.readouterr()
    assert "cache: 0 hits, 5 misses" in cold.err  # one static point per rung
    assert (cache_dir / "shards").is_dir()

    assert main(args) == 0
    warm = capsys.readouterr()
    assert "cache: 5 hits, 0 misses" in warm.err
    assert warm.out == cold.out  # bit-identical replay renders identically


def test_no_cache_flag_disables_the_store(tmp_path, capsys):
    assert main(["fig6", "--no-cache", "--param", "passes=2"]) == 0
    captured = capsys.readouterr()
    assert "cache:" not in captured.err
    assert not list(tmp_path.iterdir())  # nothing written anywhere near us


KNOBMAP_FAST = ["knobmap", "--no-cache", "--param", "horizon_s=4.0",
                "--param", "base_rates=(30.0,)"]


def test_budget_frac_flag_builds_the_ladder(capsys):
    # Two depths -> two rows; the shallow one is feasible by DVFS alone.
    args = KNOBMAP_FAST + ["--budget-frac", "0.9", "--budget-frac", "0.6"]
    assert main(args) == 0
    out = capsys.readouterr().out
    rows = [line for line in out.splitlines() if line.startswith("30 ")]
    assert len(rows) == 2
    assert "0.9" in rows[0] and "yes" in rows[0]


def test_knobs_flag_restricts_the_elastic_contender(capsys):
    # dvfs-only elastic cannot meet a 0.6x budget: the cell must come
    # back infeasible with no winning knob.
    args = KNOBMAP_FAST + ["--budget-frac", "0.6", "--knobs", "dvfs"]
    assert main(args) == 0
    rows = [
        line
        for line in capsys.readouterr().out.splitlines()
        if line.startswith("30 ")
    ]
    assert len(rows) == 1
    assert "none" in rows[0] and "NO" in rows[0]


def test_budget_frac_rejects_nonpositive(capsys):
    with pytest.raises(SystemExit):
        main(["knobmap", "--budget-frac", "-0.5"])
    assert "--budget-frac must be > 0" in capsys.readouterr().err


def test_knobs_rejects_an_empty_list(capsys):
    with pytest.raises(SystemExit):
        main(["knobmap", "--knobs", " , "])
    assert "--knobs" in capsys.readouterr().err


def test_param_wins_over_the_shorthand_flags():
    # --param budget_fracs/knobs is the explicit spelling; the flags
    # only fill the defaults in (setdefault semantics).
    from repro.experiments.cli import merge_knob_flags

    merged = merge_knob_flags(
        {"budget_fracs": (0.5,)}, [0.9, 0.6], "dvfs,gate"
    )
    assert merged["budget_fracs"] == (0.5,)
    assert merged["knobs"] == ("dvfs", "gate")
    assert merge_knob_flags({}, [0.9], None) == {"budget_fracs": (0.9,)}


def test_jobs_flag_matches_serial_output(tmp_path, capsys):
    params = ["--cache-dir", str(tmp_path / "a"), "--param", "passes=2"]
    assert main(["fig6"] + params) == 0
    serial = capsys.readouterr().out
    assert (
        main(
            ["fig6", "--jobs", "2", "--cache-dir", str(tmp_path / "b")]
            + params[2:]
        )
        == 0
    )
    assert capsys.readouterr().out == serial
