"""Tests for the experiment drivers (fast, scaled-down configurations).

These check *shape* properties of each reproduced figure — who wins,
monotonicity, crossovers — rather than absolute numbers, which are what
the paper itself emphasises and what survive scaling down run lengths.
"""

import pytest

from repro.experiments import run_experiment
from repro.experiments.common import find_static
from repro.experiments.registry import EXPERIMENTS, list_experiments, register


def test_registry_covers_every_table_and_figure():
    expected = (
        {f"fig{i}" for i in range(1, 9)}
        | {"table1", "table2", "table3"}
        | {"headline", "powercap", "chaos", "serving", "techscaling",
           "knobmap"}
    )
    assert set(EXPERIMENTS) == expected


def test_list_experiments_has_titles():
    docs = list_experiments()
    assert set(docs) == set(EXPERIMENTS)
    assert all(isinstance(t, str) for t in docs.values())


def test_list_experiments_is_sorted():
    assert list(list_experiments()) == sorted(EXPERIMENTS)


def test_register_rejects_duplicate_ids():
    with pytest.raises(ValueError, match="already registered"):
        register("fig1", EXPERIMENTS["fig2"])
    # The original registration must be untouched by the failed attempt.
    assert EXPERIMENTS["fig1"].__module__.endswith("fig1")


def test_register_accepts_and_removes_new_id():
    register("zz-temporary", EXPERIMENTS["fig1"])
    try:
        assert "zz-temporary" in EXPERIMENTS
        assert list(list_experiments())[-1] == "zz-temporary"
    finally:
        del EXPERIMENTS["zz-temporary"]


def test_unknown_experiment_rejected():
    with pytest.raises(KeyError):
        run_experiment("fig99")


# ---------------------------------------------------------------------------
# fast per-experiment shape checks
# ---------------------------------------------------------------------------
def test_fig1_shapes():
    result = run_experiment("fig1", iterations=2)
    mgrid = result.series["mgrid"].points
    swim = result.series["swim"].points
    d600_mgrid = find_static(mgrid, 600).delay
    d600_swim = find_static(swim, 600).delay
    assert d600_mgrid > 1.6  # CPU-bound: delay balloons
    assert d600_swim < 1.35  # memory-bound: nearly flat
    e600_swim = find_static(swim, 600).energy
    assert e600_swim < 0.75  # steady energy savings


def test_fig2_worked_examples():
    result = run_experiment("fig2")
    by_name = {c.quantity: c for c in result.comparisons}
    c = by_name["required_savings_delta0.2_at_5pct_delay"]
    assert c.measured == pytest.approx(c.paper, abs=0.01)


def test_fig3_shapes():
    result = run_experiment("fig3", iterations=1)
    stat = result.series["stat"].points
    energies = [p.energy for p in stat]
    delays = [p.delay for p in stat]
    assert energies == sorted(energies)  # energy falls with frequency drop
    assert delays == sorted(delays, reverse=True)
    cpuspeed = result.series["cpuspeed"].points[0]
    # cpuspeed is pinned at the fastest point by busy-wait accounting
    assert cpuspeed.energy > 0.95
    assert abs(cpuspeed.delay - 1.0) < 0.05
    e600 = find_static(stat, 600)
    assert 0.5 < e600.energy < 0.75
    assert 1.0 < e600.delay < 1.2


def test_fig4_dynamic_beats_static_energy_at_fastest_base():
    result = run_experiment("fig4", iterations=1)
    stat = result.series["stat"].points
    dyn = result.series["dyn"].points
    s1400 = find_static(stat, 1400)
    d1400 = find_static(dyn, 1400)
    assert d1400.energy < s1400.energy  # big savings from scaling fft()
    assert d1400.delay >= s1400.delay  # at a small delay cost
    # Dynamic is nearly flat across base frequencies (paper: "energy and
    # delay doesn't change much under different operating points").
    dyn_energies = [p.energy for p in dyn]
    assert max(dyn_energies) - min(dyn_energies) < 0.1


def test_fig5_shapes():
    result = run_experiment("fig5", matrix_n=6000)
    stat = result.series["stat"].points
    dyn = result.series["dyn"].points
    e600 = find_static(stat, 600)
    assert 0.05 < 1 - e600.energy < 0.35  # modest savings (load imbalance)
    assert e600.delay < 1.10
    for mhz in (800, 1000, 1200, 1400):
        s = find_static(stat, mhz)
        d = find_static(dyn, mhz)
        assert d.energy < s.energy  # dyn saves at every base point


def test_fig6_memory_bound_shape():
    result = run_experiment("fig6", passes=30)
    stat = result.series["stat"].points
    p600 = find_static(stat, 600)
    assert p600.energy < 0.65
    assert p600.delay < 1.10


def test_fig7_cpu_bound_shape():
    result = run_experiment("fig7", l2_passes=100, register_ops=1_000_000_000)
    l2 = result.series["l2"].points
    e = {p.frequency / 1e6: p.energy for p in l2}
    assert min(e, key=e.get) == 800  # interior minimum
    assert e[600] > e[800]  # energy rises again at the bottom
    d600 = find_static(l2, 600).delay
    assert d600 == pytest.approx(1400 / 600, rel=0.02)
    # Register variant: energy rises again toward the bottom of the ladder
    # (the paper claims the 600 MHz point is the absolute maximum, which a
    # clean P∝f·V² model cannot produce — see EXPERIMENTS.md).
    reg = result.series["register"].points
    reg600 = find_static(reg, 600)
    reg800 = find_static(reg, 800)
    assert reg600.energy > reg800.energy
    assert reg600.delay == pytest.approx(1400 / 600, rel=0.02)


def test_fig8_comm_bound_shape():
    result = run_experiment("fig8", round_trips=30)
    for key in ("256KB", "4KBstride64"):
        points = result.series[key].points
        p600 = find_static(points, 600)
        assert p600.energy < 0.75  # steep energy fall
        assert p600.delay < 1.12  # nearly flat delay


def test_table1_matches_paper_selections():
    result = run_experiment("table1", iterations=3)
    by_name = {c.quantity: c for c in result.comparisons}
    for key in (
        "mgrid_hpc_mhz",
        "mgrid_performance_mhz",
        "swim_hpc_mhz",
        "swim_energy_mhz",
        "swim_performance_mhz",
        "mgrid_energy_mhz",
    ):
        c = by_name[key]
        assert c.measured == c.paper, key


def test_table2_matches_paper_pairs():
    result = run_experiment("table2")
    for c in result.comparisons:
        assert c.measured == pytest.approx(c.paper)


def test_powercap_extension_shapes():
    result = run_experiment(
        "powercap", cap_fractions=(0.9,), transpose_n=1500
    )
    assert len(result.tables) == 3  # ft, transpose, imbalanced
    by_name = {c.quantity: c.measured for c in result.comparisons}
    # Redistribution never loses to the uniform baseline...
    for quantity, measured in by_name.items():
        if "slowdown" in quantity:
            assert measured <= 1e-9, quantity
        if "violations" in quantity:
            assert measured == 0.0, quantity
    # ...and wins outright where slack is imbalanced across ranks.
    margin = by_name["imbalanced.4c4s@0.90 redist−uniform slowdown"]
    assert margin < -0.05


def test_chaos_extension_shapes():
    result = run_experiment("chaos", expected_faults=(2.0,), seeds=(0,))
    by_name = {c.quantity: c.measured for c in result.comparisons}
    # The hardened variants fully recover on every plan; the fair-weather
    # control demonstrably fails the composite drill.
    assert by_name["selfheal+redist worst post-recovery violations"] == 0.0
    assert by_name["selfheal+uniform worst post-recovery violations"] == 0.0
    assert by_name["fairweather+redist drill post-recovery violations"] > 0.0


def test_table3_selections():
    result = run_experiment("table3", iterations=1)
    by_name = {c.quantity: c.measured for c in result.comparisons}
    assert by_name["energy_mhz"] == 600
    assert by_name["performance_mhz"] == 1400
    assert 600 <= by_name["hpc_mhz"] <= 1000  # intermediate point wins
    assert by_name["hpc_improvement"] > 0.05
