"""Scalar-vs-columnar equivalence on the paper's headline outputs.

The columnar engine is the default; the scalar engine is the oracle.
Running the same reduced experiment under both modes must produce the
same numbers to within 1e-9 — fig3's energy/delay series, the powercap
allocation summary, the serving SLO table, and the span-energy
attribution report.  (Fault-free runs are in fact bit-identical; the
tolerance only leaves room for the contract, not for drift.)
"""

import pytest

from repro.analysis.runner import traced_run
from repro.dvs.strategy import StaticStrategy
from repro.experiments import run_experiment
from repro.metrics.attribution import build_attribution_report
from repro.obs.tracer import Tracer
from repro.sim import using_engine_mode
from repro.workloads.nas_ft import NasFT

TOL = 1e-9


def _both_modes(fn):
    """Run ``fn()`` under the scalar and columnar engine modes."""
    out = {}
    for mode in ("scalar", "columnar"):
        with using_engine_mode(mode):
            out[mode] = fn()
    return out["scalar"], out["columnar"]


def _assert_results_match(scalar, columnar):
    assert [c.quantity for c in scalar.comparisons] == [
        c.quantity for c in columnar.comparisons
    ]
    for s, c in zip(scalar.comparisons, columnar.comparisons):
        assert c.measured == pytest.approx(s.measured, rel=TOL, abs=TOL), s.quantity
    assert set(scalar.series) == set(columnar.series)
    for name in scalar.series:
        s_pts = scalar.series[name].points
        c_pts = columnar.series[name].points
        assert len(s_pts) == len(c_pts)
        for sp, cp in zip(s_pts, c_pts):
            assert cp.energy == pytest.approx(sp.energy, rel=TOL, abs=TOL)
            assert cp.delay == pytest.approx(sp.delay, rel=TOL, abs=TOL)


def test_fig3_is_engine_invariant():
    scalar, columnar = _both_modes(lambda: run_experiment("fig3", iterations=1))
    _assert_results_match(scalar, columnar)


def test_powercap_is_engine_invariant():
    scalar, columnar = _both_modes(
        lambda: run_experiment("powercap", cap_fractions=(0.9,), transpose_n=1500)
    )
    _assert_results_match(scalar, columnar)
    assert scalar.tables.keys() == columnar.tables.keys()


def test_serving_is_engine_invariant():
    scalar, columnar = _both_modes(lambda: run_experiment("serving", horizon_s=6.0))
    _assert_results_match(scalar, columnar)


def test_attribution_is_engine_invariant():
    def attribute():
        tracer = Tracer()
        run = traced_run(
            NasFT("S", n_ranks=4, iterations=2), StaticStrategy(1.4e9), tracer
        )
        report = build_attribution_report(
            run.cluster, tracer, run.spmd.start, run.spmd.end
        )
        return run, report

    (s_run, s_report), (c_run, c_report) = _both_modes(attribute)
    assert c_run.point.energy == pytest.approx(s_run.point.energy, rel=TOL)
    assert c_run.point.delay == pytest.approx(s_run.point.delay, rel=TOL)
    assert len(c_report.rows) == len(s_report.rows)
    for s_row, c_row in zip(s_report.rows, c_report.rows):
        assert (c_row.rank, c_row.phase) == (s_row.rank, s_row.phase)
        assert c_row.energy_j == pytest.approx(s_row.energy_j, rel=TOL, abs=TOL)
    assert c_report.total_energy_j == pytest.approx(
        s_report.total_energy_j, rel=TOL, abs=TOL
    )
