"""Tests for the techscaling experiment (scaled-down grids).

Like the other experiment tests these check *shape*: which policy wins,
how the ladder shrinks, and that the report plumbing (series naming,
comparisons, verdict table) carries the grid faithfully.
"""

import pytest

from repro.experiments import run_experiment
from repro.experiments.techscaling import run_report
from repro.metrics.scaling import ScalingReport

SMOKE = dict(iterations=1, n_ranks=4, sizes=(45, 8), projections=("itrs",))


@pytest.fixture(scope="module")
def smoke_result():
    return run_experiment("techscaling", **SMOKE)


class TestExperiment:
    def test_series_named_per_generation_and_policy(self, smoke_result):
        expected = {
            f"{tech}:{policy}"
            for tech in ("45nm/itrs", "8nm/itrs")
            for policy in ("stat", "dyn", "cpuspeed")
        }
        assert expected <= set(smoke_result.series)

    def test_normalization_is_per_generation(self, smoke_result):
        # every generation's fastest static point is its own unit
        for tech in ("45nm/itrs", "8nm/itrs"):
            fastest = smoke_result.series[f"{tech}:stat"].points[-1]
            assert fastest.energy == pytest.approx(1.0)
            assert fastest.delay == pytest.approx(1.0)

    def test_verdict_comparisons_cover_the_grid(self, smoke_result):
        by_name = {c.quantity: c.measured for c in smoke_result.comparisons}
        for tech in ("45nm/itrs", "8nm/itrs"):
            assert by_name[f"{tech}:dvs_beats_cpuspeed_energy"] == 1.0
            assert by_name[f"{tech}:dvs_beats_cpuspeed_ed2p"] == 1.0
        # the ITRS shrink genuinely eats ladder rungs
        assert by_name["45nm/itrs:ladder_rungs"] == 5.0
        assert by_name["8nm/itrs:ladder_rungs"] == 4.0

    def test_verdict_table_and_notes_present(self, smoke_result):
        assert "45nm/itrs" in smoke_result.tables["verdicts"]
        assert any("holds" in note for note in smoke_result.notes)
        assert any("iterations" in note for note in smoke_result.notes)


class TestRunReport:
    def test_report_shape_and_verdicts(self):
        report = run_report(**SMOKE)
        assert isinstance(report, ScalingReport)
        assert [v.tech for v in report.verdicts] == ["45nm/itrs", "8nm/itrs"]
        assert report.holds_everywhere
        base = report.verdict_for("45nm/itrs")
        shrunk = report.verdict_for("8nm/itrs")
        assert base.rungs == 5 and shrunk.rungs == 4
        # frequencies scale up with the projection's clock factor
        assert shrunk.fastest_mhz > base.fastest_mhz
        # the winning margin narrows down the shrink (fewer slow rungs)
        assert shrunk.dyn_energy > base.dyn_energy

    def test_verdict_for_unknown_generation_raises(self):
        report = run_report(**SMOKE)
        with pytest.raises(KeyError, match="16nm/cons"):
            report.verdict_for("16nm/cons")

    def test_summary_lines_carry_every_generation(self):
        report = run_report(**SMOKE)
        lines = report.summary_lines()
        assert report.label in lines[0]
        assert len(lines) == 1 + len(report.verdicts)
        assert all("rungs" in line for line in lines[1:])
