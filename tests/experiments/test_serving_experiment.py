"""Acceptance for the serving experiment: the SLO-vs-energy table must
carry the PowerTracer-style claim at reduced scale."""

import pytest

from repro.experiments import run_experiment
from repro.experiments.serving import build_workload

#: Smallest horizon where the claims hold: the first MMPP burst lands
#: after the ~3 s base dwell, so shorter runs never stress cpuspeed.
HORIZON_S = 6.0


@pytest.fixture(scope="module")
def result():
    return run_experiment("serving", horizon_s=HORIZON_S)


def claims(result):
    return {c.quantity: c.measured for c in result.comparisons}


class TestAcceptanceClaims:
    def test_static_and_tierdvs_meet_the_slo(self, result):
        measured = claims(result)
        assert measured["static-max meets the SLO"] == 1.0
        assert measured["tierdvs meets the SLO"] == 1.0

    def test_cpuspeed_loses(self, result):
        measured = claims(result)
        assert (
            measured["cpuspeed violates the SLO or spends more energy/request"]
            == 1.0
        )

    def test_tierdvs_is_measurably_cheaper_per_request(self, result):
        ratio = claims(result)[
            "tierdvs energy/request vs static-max (ratio)"
        ]
        assert ratio < 0.99  # measurable, not float noise

    def test_table_and_notes_render(self, result):
        rendered = result.render()
        assert "three-tier" in rendered
        for policy in ("static", "tierdvs", "cpuspeed", "powercap"):
            assert policy in rendered
        assert "SLO" in rendered
        assert result.notes


class TestWorkloadShape:
    def test_build_workload_is_deterministic_and_bursty(self):
        w = build_workload(horizon_s=HORIZON_S)
        assert w.requests() == build_workload(horizon_s=HORIZON_S).requests()
        assert w.tier_names == ("frontend", "app", "storage")
        assert w.total_nodes == 6

    def test_app_tier_is_the_critical_path(self):
        w = build_workload()
        cycles = {t.name: t.service_cycles for t in w.tiers}
        assert cycles["app"] > 3 * cycles["frontend"]
        assert cycles["app"] > 3 * cycles["storage"]

    def test_seed_parameterises_the_stream(self):
        assert (
            build_workload(horizon_s=4.0, seed=0).requests()
            != build_workload(horizon_s=4.0, seed=1).requests()
        )
