"""Acceptance for the knobmap experiment: the knob-flip claim must hold
at reduced scale (one load level, three budget depths)."""

import pytest

from repro.experiments import run_experiment
from repro.experiments.knobmap import build_workload
from repro.experiments.registry import EXPERIMENTS

#: One rate and three depths is the smallest map that still exercises
#: every regime: shallow (DVFS wins), deep (gating only), and below the
#: suspend floor (infeasible for every knob).
PARAMS = dict(
    horizon_s=8.0,
    base_rates=(30.0,),
    budget_fracs=(0.9, 0.6, 0.35),
)


@pytest.fixture(scope="module")
def result():
    return run_experiment("knobmap", **PARAMS)


def claims(result):
    return {c.quantity: c.measured for c in result.comparisons}


class TestAcceptanceClaims:
    def test_registered(self):
        assert "knobmap" in EXPERIMENTS

    def test_infeasible_region_is_non_empty(self, result):
        measured = claims(result)
        assert (
            measured["some (load, budget) cell is infeasible for every knob"]
            == 1.0
        )

    def test_elastic_meets_a_cell_no_dvfs_policy_can(self, result):
        measured = claims(result)
        assert (
            measured["some cell is met by elastic but by no pure-DVFS policy"]
            == 1.0
        )

    def test_the_winning_knob_varies(self, result):
        assert claims(result)["the winning knob varies across the map"] == 1.0

    def test_table_and_notes_render(self, result):
        rendered = result.render()
        assert "knob map" in rendered
        for column in ("escalation", "best knob", "feasible"):
            assert column in rendered
        assert result.notes


class TestWorkloadShape:
    def test_build_workload_is_deterministic(self):
        w = build_workload(30.0, horizon_s=8.0)
        assert w.requests() == build_workload(30.0, horizon_s=8.0).requests()
        assert w.tier_names == ("web", "app")
        assert w.total_nodes == 4

    def test_rate_parameterises_the_name_and_stream(self):
        light = build_workload(30.0, horizon_s=8.0)
        busy = build_workload(40.0, horizon_s=8.0)
        assert light.name == "diurnal@30rps"
        assert busy.name == "diurnal@40rps"
        assert light.requests() != busy.requests()

    def test_two_diurnal_periods_fit_the_horizon(self):
        w = build_workload(30.0, horizon_s=8.0)
        assert w.arrivals.period_s == pytest.approx(4.0)
