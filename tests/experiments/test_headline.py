"""Tests for the headline-claims helpers (fast, no big sweeps)."""

import pytest

from repro.experiments.headline import best_saving_within_budget
from repro.metrics.records import EnergyDelayPoint


def points():
    return [
        EnergyDelayPoint("a", 1.00, 1.00, frequency=1.4e9),
        EnergyDelayPoint("b", 0.80, 1.03, frequency=1.0e9),
        EnergyDelayPoint("c", 0.65, 1.09, frequency=6e8),
    ]


def test_budget_selects_largest_saving_within_limit():
    best = best_saving_within_budget(points(), 0.05)
    assert best.label == "b"


def test_loose_budget_takes_the_deepest_point():
    best = best_saving_within_budget(points(), 0.20)
    assert best.label == "c"


def test_zero_budget_allows_only_the_reference():
    best = best_saving_within_budget(points(), 0.0)
    assert best.label == "a"


def test_impossible_budget_returns_none():
    tight = [EnergyDelayPoint("x", 0.9, 1.5)]
    assert best_saving_within_budget(tight, 0.1) is None


def test_boundary_is_inclusive():
    best = best_saving_within_budget(points(), 0.03)
    assert best.label == "b"
