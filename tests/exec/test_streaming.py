"""Streamed sweep results: ``on_result`` events, progress counters, and
cache-hit short-circuits arriving before execution starts."""

import pytest

from repro.analysis.parallel import (
    SweepEvent,
    SweepTask,
    execute_sweep,
    run_sweep,
)
from repro.cache.store import RunCache
from repro.exec.retry import RetryPolicy
from repro.util.units import MHZ
from repro.workloads.micro import L2BoundMicro

FREQS = [600 * MHZ, 1000 * MHZ, 1400 * MHZ]


def make_tasks():
    return [
        SweepTask(L2BoundMicro(passes=3), "stat", frequency=f) for f in FREQS
    ]


class TestRunSweepStreaming:
    def test_cold_sweep_streams_run_events_with_progress(self):
        events = []
        points = run_sweep(make_tasks(), on_result=events.append)
        assert [e.index for e in events] == [0, 1, 2]
        assert all(isinstance(e, SweepEvent) for e in events)
        assert all(e.source == "run" for e in events)
        assert [e.completed for e in events] == [1, 2, 3]
        assert all(e.total == 3 for e in events)
        assert [e.result for e in events] == points
        assert all(e.attempts == () for e in events)
        assert all(e.label == "stat" for e in events)

    def test_warm_sweep_streams_cache_events_in_input_order(self, tmp_path):
        cache = RunCache(tmp_path)
        run_sweep(make_tasks(), use_cache=cache)
        events = []
        points = run_sweep(make_tasks(), use_cache=cache, on_result=events.append)
        assert [e.source for e in events] == ["cache"] * 3
        assert [e.index for e in events] == [0, 1, 2]
        assert [e.completed for e in events] == [1, 2, 3]
        assert [e.result for e in events] == points

    def test_partial_cache_mixes_sources(self, tmp_path):
        cache = RunCache(tmp_path)
        run_sweep(make_tasks()[:1], use_cache=cache)
        events = []
        run_sweep(make_tasks(), use_cache=cache, on_result=events.append)
        by_source = {e.index: e.source for e in events}
        assert by_source == {0: "cache", 1: "run", 2: "run"}
        # Cache hits land first, then fresh runs; counters stay monotonic.
        assert [e.completed for e in events] == [1, 2, 3]
        assert events[0].source == "cache"


def _flaky_factory():
    """An execute that fails its first call per task value, in-process."""
    seen = set()

    def flaky(task):
        if task not in seen:
            seen.add(task)
            raise ValueError(f"transient {task}")
        return task * 10

    return flaky


class TestAttemptStreaming:
    def test_retried_success_carries_attempt_history(self):
        events = []
        results = execute_sweep(
            [1, 2],
            caller="test_flaky",
            execute=_flaky_factory(),
            backend="serial",
            retry=RetryPolicy(
                retry_all_errors=True, backoff_base_s=0.0, backoff_max_s=0.0
            ),
            on_result=events.append,
        )
        assert results == [10, 20]
        assert all(len(e.attempts) == 1 for e in events)
        assert all("transient" in e.attempts[0].error for e in events)

    def test_callback_exception_fails_that_task_only(self):
        def boomy(event):
            if event.index == 0:
                raise RuntimeError("observer bug")

        from repro.analysis.parallel import SweepError

        with pytest.raises(SweepError) as excinfo:
            execute_sweep(
                [1, 2],
                caller="test_cb",
                execute=lambda t: t,
                backend="serial",
                on_result=boomy,
            )
        assert [i for i, _, _ in excinfo.value.failures] == [0]
        assert excinfo.value.completed[1] == 2
