"""The backend contract: bit-identity across implementations, streamed
delivery, failure collection, interrupt passthrough, and resolution."""

import pytest

from repro.exec.backends import (
    BACKENDS,
    ExecBackend,
    ProcessPoolBackend,
    SerialBackend,
    TaskUnit,
    resolve_backend,
)
from repro.exec.mpi import MpiBackend, load_mpi, mpi_available
from repro.exec.retry import NO_RETRY, RetryPolicy, task_seed


def _units(tasks):
    return [TaskUnit(i, t, task_seed(i, t)) for i, t in enumerate(tasks)]


# Module-level so the process pool can pickle them by reference.
def _square(task):
    return task * task


def _fail_on_odd(task):
    if task % 2 == 1:
        raise ValueError(f"odd task {task}")
    return task * task


def _interrupt(task):
    raise KeyboardInterrupt


ALL_BACKENDS = [
    SerialBackend(),
    ProcessPoolBackend(max_workers=2),
    MpiBackend(),
]


@pytest.mark.parametrize(
    "backend", ALL_BACKENDS, ids=lambda b: type(b).__name__
)
class TestContract:
    def test_results_are_bit_identical_to_serial(self, backend):
        tasks = list(range(8))
        streamed = {}
        failures = backend.run(
            _square,
            _units(tasks),
            on_result=lambda i, r, a: streamed.__setitem__(i, r),
        )
        assert failures == []
        assert streamed == {i: i * i for i in tasks}

    def test_failures_are_collected_not_contagious(self, backend):
        tasks = list(range(6))
        streamed = {}
        failures = backend.run(
            _fail_on_odd,
            _units(tasks),
            retry=NO_RETRY,
            on_result=lambda i, r, a: streamed.__setitem__(i, r),
        )
        assert sorted(f.index for f in failures) == [1, 3, 5]
        assert all(isinstance(f.error, ValueError) for f in failures)
        assert streamed == {0: 0, 2: 4, 4: 16}

    def test_failed_attempt_history_is_recorded(self, backend):
        failures = backend.run(_fail_on_odd, _units([1]), retry=NO_RETRY)
        assert len(failures) == 1
        assert len(failures[0].attempts) == 1
        assert "odd task 1" in failures[0].attempts[0].error

    def test_keyboard_interrupt_propagates(self, backend):
        with pytest.raises(KeyboardInterrupt):
            backend.run(_interrupt, _units([0, 1, 2]))

    def test_callback_errors_become_failures_without_retry(self, backend):
        calls = []

        def boomy(index, result, attempts):
            calls.append(index)
            if index == 1:
                raise RuntimeError("callback bug")

        failures = backend.run(
            _square,
            _units([0, 1, 2]),
            retry=RetryPolicy(retry_all_errors=True),
            on_result=boomy,
        )
        assert [f.index for f in failures] == [1]
        assert calls.count(1) == 1  # the callback bug is not retried


class TestSerialOrdering:
    def test_serial_streams_in_input_order(self):
        order = []
        SerialBackend().run(
            _square, _units([3, 1, 2]), on_result=lambda i, r, a: order.append(i)
        )
        assert order == [0, 1, 2]


class TestProcessPoolValidation:
    def test_max_workers_validated(self):
        with pytest.raises(ValueError, match="max_workers"):
            ProcessPoolBackend(max_workers=0)

    def test_max_respawns_validated(self):
        with pytest.raises(ValueError, match="max_respawns"):
            ProcessPoolBackend(max_respawns=-1)


class _FakeComm:
    """A two-rank communicator driven entirely from one process: rank 1's
    share is precomputed and injected at ``allgather`` time."""

    def __init__(self, rank, size, other_share):
        self._rank = rank
        self._size = size
        self._other = other_share

    def Get_rank(self):
        return self._rank

    def Get_size(self):
        return self._size

    def allgather(self, local):
        shares = [None] * self._size
        shares[self._rank] = local
        for r in range(self._size):
            if r != self._rank:
                shares[r] = self._other
        return shares


class TestMpiBackend:
    def test_emulator_engages_when_mpi4py_absent(self):
        backend = MpiBackend()
        assert backend.emulated is (not mpi_available())
        assert backend.comm.Get_size() >= 1

    def test_load_mpi_surface(self):
        mpi, emulated = load_mpi()
        comm = mpi.COMM_WORLD
        assert comm.Get_rank() < comm.Get_size()
        if emulated:
            assert comm.allgather("x") == ["x"]
            assert comm.bcast("y") == "y"
            assert comm.gather("z") == ["z"]
            assert mpi.Wtime() > 0
            comm.barrier()
            mpi.Finalize()

    def test_multi_rank_merge_returns_full_ordered_results(self):
        """Rank 0 of a (faked) 2-rank world executes only even positions
        locally, yet streams the complete result set in order."""
        from repro.exec.backends import attempt_task

        tasks = list(range(5))
        units = _units(tasks)
        # Precompute what rank 1 would contribute: odd positions.
        rank1_share = []
        for position, unit in enumerate(units):
            if position % 2 == 1:
                ok, payload, attempts = attempt_task(_square, unit, NO_RETRY)
                rank1_share.append((position, ok, payload, attempts))

        executed_locally = []

        def counting_execute(task):
            executed_locally.append(task)
            return _square(task)

        backend = MpiBackend(comm=_FakeComm(0, 2, rank1_share))
        assert backend.emulated is False
        order = []
        failures = backend.run(
            counting_execute,
            units,
            on_result=lambda i, r, a: order.append((i, r)),
        )
        assert failures == []
        assert executed_locally == [0, 2, 4]  # rank 0's share only
        assert order == [(i, i * i) for i in range(5)]

    def test_multi_rank_failures_merge_too(self):
        from repro.exec.backends import attempt_task

        units = _units([0, 1])
        rank1_share = []
        for position, unit in enumerate(units):
            if position % 2 == 1:
                ok, payload, attempts = attempt_task(
                    _fail_on_odd, unit, NO_RETRY
                )
                rank1_share.append((position, ok, payload, attempts))
        backend = MpiBackend(comm=_FakeComm(0, 2, rank1_share))
        failures = backend.run(_fail_on_odd, units, retry=NO_RETRY)
        assert [f.index for f in failures] == [1]
        assert isinstance(failures[0].error, ValueError)


class TestResolveBackend:
    def test_instance_passthrough(self):
        backend = SerialBackend()
        assert resolve_backend(backend) is backend

    def test_none_with_zero_workers_is_serial(self):
        assert isinstance(resolve_backend(None, 0), SerialBackend)

    def test_none_with_workers_is_process_pool(self):
        backend = resolve_backend(None, 3, n_pending=10)
        assert isinstance(backend, ProcessPoolBackend)
        assert backend.max_workers == 3

    def test_none_all_cores_is_process_pool(self):
        backend = resolve_backend(None, None, n_pending=10)
        assert isinstance(backend, ProcessPoolBackend)
        assert backend.max_workers is None

    def test_single_pending_task_stays_serial(self):
        assert isinstance(resolve_backend(None, 4, n_pending=1), SerialBackend)

    def test_named_backends(self):
        assert isinstance(resolve_backend("serial", 4), SerialBackend)
        assert isinstance(resolve_backend("process", 0), ProcessPoolBackend)
        assert isinstance(resolve_backend("mpi", 0), MpiBackend)

    def test_explicit_name_beats_worker_inference(self):
        # backend="process" with n_workers=0 still builds a pool.
        backend = resolve_backend("process", 0, n_pending=1)
        assert isinstance(backend, ProcessPoolBackend)

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            resolve_backend("threads")

    def test_backends_tuple_matches_resolution(self):
        for name in BACKENDS:
            assert isinstance(resolve_backend(name, 2), ExecBackend)
