"""Worker-death containment: a killed worker costs its in-flight tasks
one retry each on a respawned pool — never a cascading failure.

The killer tasks coordinate across processes through marker files: a
"kill-once" task SIGKILLs its own worker on the first attempt only, so
the retry (on the respawned pool) succeeds; a "kill-always" task kills
its worker on every attempt and must end up the sweep's sole casualty.
"""

import os
import signal

import pytest

from repro.analysis.parallel import SweepError, execute_sweep
from repro.exec.backends import ProcessPoolBackend, TaskUnit
from repro.exec.retry import RetryPolicy, WorkerLostError, task_seed


def _units(tasks):
    return [TaskUnit(i, t, task_seed(i, t)) for i, t in enumerate(tasks)]


def _killer_execute(task):
    """``(value, marker_path_or_None, kill_always)`` — maybe die, else square."""
    value, marker, kill_always = task
    if marker is not None:
        if kill_always or not os.path.exists(marker):
            if not kill_always:
                with open(marker, "w", encoding="utf-8") as fh:
                    fh.write("killed once\n")
            os.kill(os.getpid(), signal.SIGKILL)
    return value * value


def _plain(value):
    return value, None, False


class TestKillOnce:
    def test_sweep_completes_with_one_retry_for_the_casualty(self, tmp_path):
        marker = str(tmp_path / "killed-once")
        tasks = [_plain(v) for v in range(6)]
        tasks[3] = (3, marker, False)

        streamed = {}
        attempts_by_index = {}

        def record(index, result, attempts):
            streamed[index] = result
            attempts_by_index[index] = attempts

        backend = ProcessPoolBackend(max_workers=2)
        failures = backend.run(_killer_execute, _units(tasks), on_result=record)

        assert failures == []
        assert streamed == {i: i * i for i in range(6)}
        # The killed task was charged exactly one lost-worker attempt.
        killed = attempts_by_index[3]
        assert len(killed) == 1
        assert "WorkerLostError" in killed[0].error
        # Innocent bystanders in the same in-flight window are charged at
        # most the same single attempt; nobody loops.
        for index, history in attempts_by_index.items():
            assert len(history) <= 1, (index, history)

    def test_execute_sweep_streams_attempt_history(self, tmp_path):
        marker = str(tmp_path / "killed-once-sweep")
        tasks = [_plain(v) for v in range(4)]
        tasks[1] = (1, marker, False)
        events = []
        results = execute_sweep(
            tasks,
            caller="test_sweep",
            execute=_killer_execute,
            backend=ProcessPoolBackend(max_workers=2),
            on_result=events.append,
        )
        assert results == [v * v for v in range(4)]
        retried = [e for e in events if e.index == 1]
        assert len(retried) == 1
        assert len(retried[0].attempts) == 1
        assert "WorkerLostError" in retried[0].attempts[0].error


class TestKillAlways:
    def test_repeat_killer_is_the_sole_casualty(self):
        tasks = [_plain(v) for v in range(5)]
        tasks[2] = (2, "/nonexistent-marker-dir/never-created", True)

        streamed = {}
        backend = ProcessPoolBackend(max_workers=2)
        retry = RetryPolicy(max_attempts=2, backoff_base_s=0.01)
        failures = backend.run(
            _killer_execute,
            _units(tasks),
            retry=retry,
            on_result=lambda i, r, a: streamed.__setitem__(i, r),
        )

        assert [f.index for f in failures] == [2]
        assert isinstance(failures[0].error, WorkerLostError)
        assert len(failures[0].attempts) == retry.max_attempts
        # Everyone else completed despite sharing pools with the killer.
        assert streamed == {0: 0, 1: 1, 3: 9, 4: 16}

    def test_sweep_error_reports_only_the_true_casualty(self):
        tasks = [_plain(v) for v in range(4)]
        tasks[0] = (0, "/nonexistent-marker-dir/never-created", True)
        with pytest.raises(SweepError) as excinfo:
            execute_sweep(
                tasks,
                caller="test_sweep",
                execute=_killer_execute,
                backend=ProcessPoolBackend(max_workers=2),
                retry=RetryPolicy(max_attempts=2, backoff_base_s=0.01),
            )
        err = excinfo.value
        assert [i for i, _, _ in err.failures] == [0]
        assert err.completed == [None, 1, 4, 9]
        assert "after 2 attempts" in str(err)
        assert "attempt history" in str(err)


class TestRespawnLimit:
    def test_gives_up_after_max_respawns(self):
        tasks = [(0, "/nonexistent-marker-dir/never-created", True)]
        backend = ProcessPoolBackend(max_workers=1, max_respawns=0)
        failures = backend.run(
            _killer_execute,
            _units(tasks),
            retry=RetryPolicy(max_attempts=10, backoff_base_s=0.0),
        )
        assert len(failures) == 1
        assert "giving up" in str(failures[0].error) or isinstance(
            failures[0].error, WorkerLostError
        )
