"""RetryPolicy: classification, deterministic backoff, timeouts, and
the attempt-history formatting that surfaces in ``SweepError``."""

import signal
import time

import pytest

from repro.analysis.parallel import SweepError
from repro.exec.retry import (
    DEFAULT_RETRY,
    NO_RETRY,
    AttemptRecord,
    RetryPolicy,
    SweepTimeoutError,
    WorkerLostError,
    call_with_timeout,
    format_attempts,
    task_seed,
)


class TestPolicyValidation:
    def test_defaults(self):
        assert DEFAULT_RETRY.max_attempts == 3
        assert DEFAULT_RETRY.timeout_s is None
        assert NO_RETRY.max_attempts == 1

    def test_max_attempts_must_be_positive(self):
        with pytest.raises(ValueError, match="max_attempts"):
            RetryPolicy(max_attempts=0)

    def test_jitter_bounds(self):
        with pytest.raises(ValueError, match="jitter"):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError, match="jitter"):
            RetryPolicy(jitter=-0.1)

    def test_timeout_must_be_positive(self):
        with pytest.raises(ValueError, match="timeout_s"):
            RetryPolicy(timeout_s=0.0)


class TestClassification:
    def test_substrate_failures_are_retryable_by_default(self):
        assert DEFAULT_RETRY.is_retryable(WorkerLostError("killed"))
        assert DEFAULT_RETRY.is_retryable(SweepTimeoutError("slow"))

    def test_deterministic_task_errors_fail_fast_by_default(self):
        assert not DEFAULT_RETRY.is_retryable(ValueError("bad spec"))
        assert not DEFAULT_RETRY.is_retryable(RuntimeError("task bug"))

    def test_retry_all_errors_widens_to_exceptions_only(self):
        policy = RetryPolicy(retry_all_errors=True)
        assert policy.is_retryable(ValueError("flaky"))
        assert not policy.is_retryable(KeyboardInterrupt())
        assert not policy.is_retryable(SystemExit(1))

    def test_interrupts_never_retryable(self):
        assert not DEFAULT_RETRY.is_retryable(KeyboardInterrupt())
        assert not DEFAULT_RETRY.is_retryable(SystemExit(0))


class TestDeterministicBackoff:
    def test_same_seed_same_schedule(self):
        policy = RetryPolicy()
        seed = task_seed(3, "some-task")
        first = [policy.backoff_s(k, seed) for k in (1, 2, 3)]
        second = [policy.backoff_s(k, seed) for k in (1, 2, 3)]
        assert first == second

    def test_different_seeds_differ(self):
        policy = RetryPolicy()
        a = policy.backoff_s(1, task_seed(0, "task-a"))
        b = policy.backoff_s(1, task_seed(1, "task-b"))
        assert a != b

    def test_zero_jitter_is_pure_exponential(self):
        policy = RetryPolicy(
            backoff_base_s=0.1, backoff_factor=2.0, backoff_max_s=10.0,
            jitter=0.0,
        )
        assert policy.backoff_s(1, "s") == pytest.approx(0.1)
        assert policy.backoff_s(2, "s") == pytest.approx(0.2)
        assert policy.backoff_s(3, "s") == pytest.approx(0.4)

    def test_backoff_is_capped(self):
        policy = RetryPolicy(
            backoff_base_s=1.0, backoff_factor=10.0, backoff_max_s=2.0,
            jitter=0.0,
        )
        assert policy.backoff_s(5, "s") == pytest.approx(2.0)

    def test_jitter_stays_within_band(self):
        policy = RetryPolicy(
            backoff_base_s=1.0, backoff_factor=1.0, backoff_max_s=1.0,
            jitter=0.25,
        )
        for i in range(50):
            value = policy.backoff_s(1, task_seed(i, f"t{i}"))
            assert 0.75 <= value <= 1.25

    def test_attempt_is_one_based(self):
        with pytest.raises(ValueError, match="1-based"):
            RetryPolicy().backoff_s(0, "s")

    def test_task_seed_prefers_cache_key(self):
        key = "ab" * 32
        assert task_seed(0, object(), key=key) == key

    def test_task_seed_is_stable_without_key(self):
        assert task_seed(2, "x") == task_seed(2, "x")
        assert task_seed(2, "x") != task_seed(3, "x")


class TestTimeout:
    def test_no_timeout_runs_unguarded(self):
        assert call_with_timeout(lambda t: t + 1, 41, None) == 42

    def test_fast_call_returns_within_budget(self):
        assert call_with_timeout(lambda t: t * 2, 21, 5.0) == 42

    def test_slow_call_raises_sweep_timeout(self):
        def sleepy(_task):
            time.sleep(5.0)

        start = time.monotonic()
        with pytest.raises(SweepTimeoutError, match="wall-clock budget"):
            call_with_timeout(sleepy, None, 0.05)
        assert time.monotonic() - start < 2.0

    def test_alarm_handler_is_restored(self):
        previous = signal.getsignal(signal.SIGALRM)
        call_with_timeout(lambda t: t, 1, 5.0)
        assert signal.getsignal(signal.SIGALRM) is previous

    def test_timeout_is_classified_retryable(self):
        def sleepy(_task):
            time.sleep(5.0)

        try:
            call_with_timeout(sleepy, None, 0.05)
        except SweepTimeoutError as exc:
            assert DEFAULT_RETRY.is_retryable(exc)
        else:  # pragma: no cover - the call must time out
            pytest.fail("expected SweepTimeoutError")


class TestAttemptFormatting:
    def test_describe_mentions_retry_sleep(self):
        record = AttemptRecord(1, "ValueError('x')", "", backoff_s=0.125)
        assert "attempt 1" in record.describe()
        assert "retrying in 0.125s" in record.describe()

    def test_final_attempt_has_no_retry_suffix(self):
        record = AttemptRecord(3, "ValueError('x')", "")
        assert "retrying" not in record.describe()

    def test_format_attempts_one_line_per_attempt(self):
        text = format_attempts(
            (
                AttemptRecord(1, "WorkerLostError('died')", "", 0.05),
                AttemptRecord(2, "WorkerLostError('died')", ""),
            )
        )
        lines = text.splitlines()
        assert len(lines) == 2
        assert "attempt 1" in lines[0] and "attempt 2" in lines[1]


class TestSweepErrorHistories:
    def test_message_includes_attempt_counts_and_histories(self):
        attempts = (
            AttemptRecord(1, "WorkerLostError('worker died')", "tb1", 0.05),
            AttemptRecord(2, "WorkerLostError('worker died')", "tb2", 0.1),
            AttemptRecord(3, "WorkerLostError('worker died')", "tb3"),
        )
        err = SweepError(
            [(1, "the-task", WorkerLostError("worker died"))],
            [0.0, None, 2.0],
            attempts=[attempts],
        )
        message = str(err)
        assert "1 of 3 sweep tasks failed" in message
        assert "after 3 attempts" in message
        assert "task[1] attempt history:" in message
        assert "attempt 2" in message
        assert err.attempts == [attempts]

    def test_single_attempt_failures_stay_terse(self):
        err = SweepError(
            [(0, "t", ValueError("boom"))],
            [None],
            attempts=[(AttemptRecord(1, "ValueError('boom')", ""),)],
        )
        assert "after 1 attempts" not in str(err)

    def test_attempts_default_to_empty_histories(self):
        err = SweepError([(0, "t", ValueError("boom"))], [None])
        assert err.attempts == [()]
        assert "attempt history" not in str(err)
