"""The deep hooks: what a traced run actually records, layer by layer."""

import pytest

from repro.analysis.runner import run_measured, traced_run
from repro.dvs.strategy import DynamicStrategy, StaticStrategy
from repro.obs.tracer import Tracer, active_tracer, tracing
from repro.util.units import MHZ
from repro.workloads.nas_ft import NasFT
from repro.workloads.synthetic import SyntheticMix


def ft(iterations=2, n_ranks=4):
    return NasFT("S", n_ranks=n_ranks, iterations=iterations)


@pytest.fixture
def traced_ft():
    tracer = Tracer()
    run = traced_run(ft(), StaticStrategy(1.4e9), tracer)
    return tracer, run


class TestSimAndMpi:
    def test_process_spans_cover_every_rank(self, traced_ft):
        tracer, run = traced_ft
        procs = [s for s in tracer.spans if s.cat == "sim.process"]
        assert len(procs) >= 4  # one per rank (plus daemons, if any)

    def test_collectives_and_p2p_are_spanned_per_rank(self, traced_ft):
        tracer, _ = traced_ft
        colls = {s.name for s in tracer.spans if s.cat == "mpi.coll"}
        p2p = {s.name for s in tracer.spans if s.cat == "mpi.p2p"}
        assert "alltoall" in colls and "allreduce" in colls
        assert p2p & {"send", "recv", "sendrecv"}
        tracks = {s.track for s in tracer.spans if s.cat == "mpi.coll"}
        assert tracks == {0, 1, 2, 3}

    def test_span_times_lie_inside_the_run(self, traced_ft):
        tracer, run = traced_ft
        for s in tracer.spans:
            if s.clock != "sim":
                continue
            assert run.spmd.start - 1e-9 <= s.t0 <= s.t1 <= run.spmd.end + 1e-9

    def test_run_level_span_matches_job_interval(self, traced_ft):
        tracer, run = traced_ft
        (top,) = [s for s in tracer.spans if s.cat == "run"]
        assert top.t0 == run.spmd.start
        assert top.t1 == run.spmd.end


class TestDvs:
    def test_dynamic_strategy_emits_transitions_and_freq_counters(self):
        tracer = Tracer()
        traced_run(
            ft(), DynamicStrategy(1.4e9, regions=["fft"]), tracer
        )
        trans = [i for i in tracer.instants if i.cat == "dvs"]
        assert trans, "dynamic run must record DVS transitions"
        freqs = [c for c in tracer.counters if c.name == "freq_mhz"]
        assert freqs
        modes = {i.args["mode"] for i in trans}
        assert "app" in modes

    def test_static_run_records_no_transition_churn(self, traced_ft):
        tracer, _ = traced_ft
        # The initial pin may register; there must be no per-iteration churn.
        assert len([i for i in tracer.instants if i.cat == "dvs"]) <= 4


class TestUntracedPath:
    def test_untraced_run_leaves_null_tracer_empty(self):
        before = active_tracer()
        run = run_measured(ft(), StaticStrategy(1.4e9))
        assert active_tracer() is before
        assert len(active_tracer()) == 0
        assert run.point.energy > 0

    def test_traced_and_untraced_runs_are_bit_identical(self):
        untraced = run_measured(ft(), StaticStrategy(1.4e9))
        traced = traced_run(ft(), StaticStrategy(1.4e9), Tracer())
        assert traced.point.energy == untraced.point.energy
        assert traced.point.delay == untraced.point.delay


class TestErrorPaths:
    def test_failing_process_span_marks_error(self):
        class Exploding(SyntheticMix):
            def program(self, comm, dvs):
                yield from super().program(comm, dvs)
                if comm.rank == 0:
                    raise RuntimeError("rank 0 dies at the end")

        tracer = Tracer()
        with tracing(tracer):
            with pytest.raises(Exception):
                run_measured(
                    Exploding(
                        1.0, 0.0, 0.0, iteration_seconds=0.05,
                        iterations=1, n_ranks=2,
                    ),
                    StaticStrategy(1.4e9),
                )
        errored = [
            s
            for s in tracer.spans
            if s.cat == "sim.process" and (s.args or {}).get("error")
        ]
        assert errored
