"""``repro-trace`` CLI: summary, export, validate, error paths."""

import json

import pytest

from repro.obs.cli import main
from repro.obs.export import export_chrome_trace, export_jsonl, load_trace_file
from repro.obs.tracer import Tracer


@pytest.fixture
def trace_file(tmp_path):
    t = Tracer()
    t.span("allreduce", "mpi.coll", 0, 1.0, 2.0)
    t.span("send", "mpi.p2p", 1, 1.5, 1.75)
    t.counter("cluster_watts", "governor", 2.0, 180.0)
    t.instant("transition", "dvs", 0, 2.5)
    path = tmp_path / "trace.json"
    export_chrome_trace(path, t)
    return path


class TestSummary:
    def test_human_summary(self, trace_file, capsys):
        assert main(["summary", str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert "2 spans" in out
        assert "mpi.coll" in out and "mpi.p2p" in out

    def test_json_summary(self, trace_file, capsys):
        assert main(["summary", str(trace_file), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["records"] == {
            "spans": 2,
            "counters": 1,
            "instants": 1,
        }
        assert payload["span_categories"]["mpi.coll"]["spans"] == 1

    def test_unreadable_file_fails_cleanly(self, tmp_path, capsys):
        assert main(["summary", str(tmp_path / "missing.json")]) == 1
        assert "error" in capsys.readouterr().err


class TestExport:
    def test_chrome_to_jsonl_round_trip(self, trace_file, tmp_path, capsys):
        out = tmp_path / "trace.jsonl"
        assert (
            main(
                ["export", str(trace_file), "-o", str(out), "--format", "jsonl"]
            )
            == 0
        )
        data = load_trace_file(out)
        assert len(data.spans) == 2

    def test_jsonl_to_chrome(self, tmp_path, capsys):
        t = Tracer()
        t.span("s", "c", 0, 0.0, 1.0)
        src = tmp_path / "in.jsonl"
        export_jsonl(src, t)
        out = tmp_path / "out.json"
        assert main(["export", str(src), "-o", str(out)]) == 0
        doc = json.loads(out.read_text())
        assert any(e.get("ph") == "X" for e in doc["traceEvents"])


class TestValidate:
    def test_valid_trace_passes(self, trace_file, capsys):
        assert main(["validate", str(trace_file)]) == 0
        assert "valid Chrome trace" in capsys.readouterr().out

    def test_schema_violation_fails(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(
            json.dumps({"traceEvents": [{"ph": "X", "pid": 0, "ts": 0}]})
        )
        assert main(["validate", str(bad)]) == 1
        assert "invalid" in capsys.readouterr().err

    def test_non_json_fails(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("not json at all")
        assert main(["validate", str(bad)]) == 1
        assert "not JSON" in capsys.readouterr().err


def test_module_is_runnable(trace_file):
    import subprocess
    import sys

    proc = subprocess.run(
        [sys.executable, "-m", "repro.obs", "validate", str(trace_file)],
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stderr
