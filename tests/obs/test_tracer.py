"""Tracer core: rings, bounds, the null tracer, active-tracer plumbing."""

import pytest

from repro.obs.tracer import (
    NULL_TRACER,
    SIM_CLOCK,
    WALL_CLOCK,
    Tracer,
    active_tracer,
    set_active_tracer,
    tracing,
)


class TestRecords:
    def test_span_record_fields_and_duration(self):
        t = Tracer()
        t.span("allreduce", "mpi.coll", 3, 1.0, 2.5, root=0)
        (span,) = t.spans
        assert span.name == "allreduce"
        assert span.cat == "mpi.coll"
        assert span.track == 3
        assert span.duration == pytest.approx(1.5)
        assert span.clock == SIM_CLOCK
        assert span.args == {"root": 0}

    def test_counter_and_instant(self):
        t = Tracer()
        t.counter("freq_mhz", 0, 0.5, 600.0)
        t.instant("transition", "dvs", 0, 0.5, from_mhz=600, to_mhz=800)
        assert t.counters[0].value == 600.0
        assert t.instants[0].args == {"from_mhz": 600, "to_mhz": 800}
        assert len(t) == 2

    def test_records_are_immutable(self):
        t = Tracer()
        t.span("s", "c", 0, 0.0, 1.0)
        with pytest.raises(AttributeError):
            t.spans[0].name = "other"

    def test_wall_span_uses_wall_clock(self):
        t = Tracer()
        with t.wall_span("task", "sweep.task", "sweep"):
            pass
        (span,) = t.spans
        assert span.clock == WALL_CLOCK
        assert span.t1 >= span.t0

    def test_wall_span_marks_errors_and_reraises(self):
        t = Tracer()
        with pytest.raises(RuntimeError):
            with t.wall_span("task", "sweep.task", "sweep"):
                raise RuntimeError("boom")
        assert t.spans[0].args.get("error") is True


class TestRingBounds:
    def test_capacity_is_a_hard_bound_per_kind(self):
        t = Tracer(capacity=4)
        for i in range(10):
            t.span(f"s{i}", "c", 0, float(i), float(i) + 0.5)
            t.instant(f"i{i}", "c", 0, float(i))
        assert len(t.spans) == 4
        assert len(t.instants) == 4
        assert t.dropped_spans == 6
        assert t.dropped_instants == 6
        assert t.dropped == 12
        # Oldest evicted, newest kept.
        assert [s.name for s in t.spans] == ["s6", "s7", "s8", "s9"]

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)

    def test_clear_resets_records_and_drop_counts(self):
        t = Tracer(capacity=2)
        for i in range(5):
            t.counter("c", 0, float(i), float(i))
        t.clear()
        assert len(t) == 0
        assert t.dropped == 0


class TestDisabledPath:
    def test_enabled_flag_is_the_hook_contract_not_a_method_gate(self):
        # Instrumentation sites check `tracer.enabled` *before* calling;
        # the record methods themselves stay unconditional (no branch in
        # the hot path).  A direct call on a disabled tracer records.
        t = Tracer(enabled=False)
        t.span("s", "c", 0, 0.0, 1.0)
        assert len(t) == 1

    def test_null_tracer_is_permanently_disabled(self):
        assert not NULL_TRACER.enabled
        with pytest.raises(ValueError):
            NULL_TRACER.enabled = True
        NULL_TRACER.enabled = False  # idempotent no-op stays legal

    def test_null_tracer_accepts_records_silently(self):
        NULL_TRACER.span("s", "c", 0, 0.0, 1.0)
        assert len(NULL_TRACER) == 0


class TestActiveTracer:
    def test_default_active_is_null(self):
        assert active_tracer() is NULL_TRACER

    def test_tracing_installs_and_restores(self):
        t = Tracer()
        with tracing(t):
            assert active_tracer() is t
        assert active_tracer() is NULL_TRACER

    def test_tracing_restores_on_exception(self):
        t = Tracer()
        with pytest.raises(RuntimeError):
            with tracing(t):
                raise RuntimeError
        assert active_tracer() is NULL_TRACER

    def test_set_active_returns_previous(self):
        t = Tracer()
        prev = set_active_tracer(t)
        try:
            assert active_tracer() is t
        finally:
            set_active_tracer(prev)
        assert active_tracer() is NULL_TRACER

    def test_nested_tracing_unwinds_in_order(self):
        a, b = Tracer(), Tracer()
        with tracing(a):
            with tracing(b):
                assert active_tracer() is b
            assert active_tracer() is a
        assert active_tracer() is NULL_TRACER
