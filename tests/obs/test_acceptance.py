"""The issue's acceptance criterion, end to end: a traced fig3-sized run
exports valid Chrome trace-event JSON whose per-rank span energy
attribution sums to within 1% of the run's total energy from the
existing metrics path."""

import json

import pytest

from repro.analysis.runner import traced_run
from repro.dvs.strategy import StaticStrategy
from repro.metrics.attribution import build_attribution_report
from repro.obs.export import export_chrome_trace, validate_chrome_trace
from repro.obs.tracer import Tracer
from repro.workloads.nas_ft import NasFT


@pytest.fixture(scope="module")
def traced_fig3():
    tracer = Tracer()
    run = traced_run(
        NasFT("S", n_ranks=4, iterations=2), StaticStrategy(1.4e9), tracer
    )
    return tracer, run


def test_traced_fig3_exports_valid_chrome_trace(traced_fig3, tmp_path):
    tracer, _ = traced_fig3
    path = tmp_path / "fig3.trace.json"
    n_events = export_chrome_trace(path, tracer)
    document = json.loads(path.read_text())
    assert validate_chrome_trace(document) == []
    assert len(document["traceEvents"]) == n_events
    assert n_events > len(tracer.spans)  # spans + counters/instants + metadata


def test_attribution_sums_to_total_energy_within_1_percent(traced_fig3):
    tracer, run = traced_fig3
    report = build_attribution_report(
        run.cluster, tracer, run.spmd.start, run.spmd.end
    )
    # The existing metrics path: the exact power-timeline integral that
    # EnergyDelayPoint carries.
    total = run.point.energy
    attributed = sum(row.energy_j for row in report.rows)
    assert attributed == pytest.approx(total, rel=0.01)
    assert report.total_energy_j == pytest.approx(total, rel=0.01)
    # And per rank: each rank's rows sum to its node's timeline energy.
    for rank, energy in report.rank_energy().items():
        node = run.cluster.nodes[rank]
        want = node.timeline.energy(run.spmd.start, run.spmd.end)
        assert energy == pytest.approx(want, rel=0.01)


def test_attribution_phases_are_the_mpi_phases(traced_fig3):
    tracer, run = traced_fig3
    report = build_attribution_report(
        run.cluster, tracer, run.spmd.start, run.spmd.end
    )
    phases = {row.phase for row in report.rows}
    assert "alltoall" in phases  # FT's dominant communication phase
    assert "(compute)" in phases  # gaps between MPI spans
    # Communication must not be attributed to compute: FT 'S' at 4 ranks
    # spends a visible share of its energy in alltoall.
    totals = report.phase_totals()
    assert totals["alltoall"][1] > 0
