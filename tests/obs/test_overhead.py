"""Issue acceptance: the disabled path is (near) free, the rings bounded.

The overhead bound uses min-of-N interleaved timings: minima are robust
to scheduler noise, and interleaving cancels slow drift (thermal,
background load) that would bias one arm of the comparison.
"""

import time

from repro.analysis.runner import run_measured
from repro.dvs.strategy import StaticStrategy
from repro.faults.sweep import run_chaos_sweep
from repro.obs.tracer import Tracer, tracing
from repro.workloads.nas_ft import NasFT
from repro.workloads.synthetic import SyntheticMix

from tests.faults.test_chaos_acceptance import (  # noqa: F401 - fixture
    drill_setup,
    drill_task,
)


def _fig3_sized_workload():
    # Figure 3's shape (NAS FT crescendo member) at test scale.
    return NasFT("S", n_ranks=4, iterations=2)


def _timed(workload):
    t0 = time.perf_counter()
    run_measured(workload, StaticStrategy(1.4e9))
    return time.perf_counter() - t0


def test_disabled_tracer_overhead_under_5_percent():
    workload = _fig3_sized_workload()
    _timed(workload)  # warm imports and caches off the clock

    baseline = []
    disabled = []
    disabled_tracer = Tracer(enabled=False)
    for _ in range(5):
        baseline.append(_timed(workload))
        with tracing(disabled_tracer):
            disabled.append(_timed(workload))

    best_base, best_disabled = min(baseline), min(disabled)
    assert len(disabled_tracer) == 0  # hooks honoured the flag
    assert best_disabled <= best_base * 1.05, (
        f"disabled tracing cost {best_disabled / best_base - 1:+.1%} "
        f"(baseline {best_base:.4f}s, disabled {best_disabled:.4f}s)"
    )


def test_ring_buffers_never_exceed_capacity_under_chaos_drill(drill_setup):
    """A tiny-capacity tracer under the full chaos drill: the rings must
    overwrite (drop counts grow) but never grow past capacity."""
    capacity = 8
    tracer = Tracer(capacity=capacity)
    run_chaos_sweep([drill_task(drill_setup, hardened=True)], tracer=tracer)

    assert len(tracer.spans) <= capacity
    assert len(tracer.counters) <= capacity
    assert len(tracer.instants) <= capacity
    assert tracer.dropped > 0, "the drill must overflow an 8-slot ring"
    # The bookkeeping is conservation: kept + dropped = emitted.
    counts = tracer.counts()
    assert counts["spans"] == capacity
    assert counts["dropped_spans"] > 0


def test_traced_run_records_are_bounded_not_the_simulation():
    """Tracing a long loop cannot grow memory: the ring holds the tail."""
    tracer = Tracer(capacity=16)
    workload = SyntheticMix(
        0.5, 0.25, 0.25, iteration_seconds=0.05, iterations=20, n_ranks=2
    )
    with tracing(tracer):
        run_measured(workload, StaticStrategy(1.4e9))
    assert len(tracer.spans) == 16
    assert tracer.dropped_spans > 0
