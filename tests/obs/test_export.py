"""Exporters: Chrome trace-event JSON, JSONL, round-trips, validation."""

import json

import pytest

from repro.obs.export import (
    POWER_COUNTER_NAME,
    TraceData,
    chrome_trace_events,
    export_chrome_trace,
    export_jsonl,
    load_trace_file,
    power_counter_records,
    to_chrome_trace,
    to_jsonl,
    validate_chrome_trace,
)
from repro.obs.tracer import WALL_CLOCK, Tracer


@pytest.fixture
def tracer():
    t = Tracer()
    t.span("allreduce", "mpi.coll", 0, 1.0, 2.0, root=0)
    t.span("send", "mpi.p2p", 1, 1.5, 1.75)
    t.counter("cluster_watts", "governor", 2.0, 180.5)
    t.instant("transition", "dvs", 0, 2.5, from_mhz=600, to_mhz=1400)
    t.span("task", "sweep.task", "sweep", 0.0, 0.5, WALL_CLOCK)
    return t


class TestChromeTrace:
    def test_document_shape(self, tracer):
        doc = to_chrome_trace(tracer)
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        assert validate_chrome_trace(doc) == []

    def test_events_cover_every_record(self, tracer):
        events = chrome_trace_events(tracer)
        by_ph = {}
        for e in events:
            by_ph.setdefault(e["ph"], []).append(e)
        assert len(by_ph["X"]) == 3
        assert len(by_ph["C"]) == 1
        assert len(by_ph["i"]) == 1
        assert len(by_ph["M"]) >= 1  # track-name metadata

    def test_timestamps_are_microseconds(self, tracer):
        events = chrome_trace_events(tracer)
        allreduce = next(e for e in events if e.get("name") == "allreduce")
        assert allreduce["ts"] == pytest.approx(1.0e6)
        assert allreduce["dur"] == pytest.approx(1.0e6)

    def test_string_tracks_get_stable_distinct_pids(self, tracer):
        events = chrome_trace_events(tracer)
        pids = {e["pid"] for e in events if e["ph"] != "M"}
        # int tracks keep their rank id; string tracks live above 1000.
        assert 0 in pids and 1 in pids
        assert any(isinstance(p, int) and p >= 1000 for p in pids)

    def test_export_writes_loadable_json(self, tracer, tmp_path):
        path = tmp_path / "trace.json"
        n = export_chrome_trace(path, tracer)
        doc = json.loads(path.read_text())
        assert len(doc["traceEvents"]) == n
        assert validate_chrome_trace(doc) == []


class TestJsonl:
    def test_one_record_per_line(self, tracer):
        lines = to_jsonl(tracer).strip().splitlines()
        kinds = [json.loads(line)["kind"] for line in lines]
        assert kinds.count("span") == 3
        assert kinds.count("counter") == 1
        assert kinds.count("instant") == 1

    def test_export_and_reload_round_trip(self, tracer, tmp_path):
        path = tmp_path / "trace.jsonl"
        export_jsonl(path, tracer)
        data = load_trace_file(path)
        assert isinstance(data, TraceData)
        assert len(data.spans) == 3
        assert len(data.counters) == 1
        assert len(data.instants) == 1
        names = sorted(s.name for s in data.spans)
        assert names == ["allreduce", "send", "task"]

    def test_bad_line_raises_with_line_number(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "span"}\nnot json\n')
        with pytest.raises(ValueError):
            load_trace_file(path)


class TestChromeRoundTrip:
    def test_chrome_reload_preserves_spans(self, tracer, tmp_path):
        path = tmp_path / "trace.json"
        export_chrome_trace(path, tracer)
        data = load_trace_file(path)
        assert len(data.spans) == 3
        allreduce = next(s for s in data.spans if s.name == "allreduce")
        assert allreduce.t0 == pytest.approx(1.0)
        assert allreduce.t1 == pytest.approx(2.0)
        assert allreduce.track == 0


class TestValidation:
    def test_rejects_non_dict_document(self):
        assert validate_chrome_trace([1, 2]) != []

    def test_rejects_unknown_phase(self):
        doc = {"traceEvents": [{"ph": "Z", "name": "x", "pid": 0, "ts": 0}]}
        assert any("ph" in e for e in validate_chrome_trace(doc))

    def test_rejects_missing_duration(self):
        doc = {"traceEvents": [{"ph": "X", "name": "x", "pid": 0, "ts": 0}]}
        assert validate_chrome_trace(doc) != []

    def test_accepts_empty_trace(self):
        assert validate_chrome_trace({"traceEvents": []}) == []


class _TimelineNode:
    def __init__(self, node_id, watts):
        from repro.hardware.timeline import PowerTimeline

        self.node_id = node_id
        self.timeline = PowerTimeline(start_time=0.0, initial_power=watts)


class _TimelineCluster:
    def __init__(self, watts_per_node):
        self.nodes = [
            _TimelineNode(i, w) for i, w in enumerate(watts_per_node)
        ]


class TestPowerCounters:
    """Per-node power exported as counter tracks off the frozen series."""

    @pytest.fixture
    def cluster(self):
        cluster = _TimelineCluster([10.0, 40.0])
        cluster.nodes[0].timeline.set_power(1.0, 20.0)
        cluster.nodes[0].timeline.set_power(3.0, 15.0)
        cluster.nodes[1].timeline.set_power(2.0, 55.0)
        return cluster

    def test_one_series_per_node_with_window_start_sample(self, cluster):
        records = power_counter_records(cluster, 0.5, 4.0)
        by_node = {}
        for r in records:
            assert r.name == POWER_COUNTER_NAME
            by_node.setdefault(r.track, []).append((r.t, r.value))
        # Each node opens with the level in effect at t0, then its
        # change points inside the window.
        assert by_node[0] == [(0.5, 10.0), (1.0, 20.0), (3.0, 15.0)]
        assert by_node[1] == [(0.5, 40.0), (2.0, 55.0)]

    def test_defaults_cover_the_whole_trace(self, cluster):
        records = power_counter_records(cluster)
        node0 = [(r.t, r.value) for r in records if r.track == 0]
        assert node0 == [(0.0, 10.0), (1.0, 20.0), (3.0, 15.0)]

    def test_resolution_thins_dense_change_points(self, cluster):
        tl = cluster.nodes[0].timeline
        for k in range(1, 20):
            tl.set_power(3.0 + k * 0.01, 15.0 + k)
        records = power_counter_records(cluster, resolution=0.5)
        node0 = [r.t for r in records if r.track == 0]
        assert all(b - a >= 0.5 for a, b in zip(node0, node0[1:]))

    def test_reversed_window_rejected(self, cluster):
        with pytest.raises(ValueError):
            power_counter_records(cluster, 4.0, 1.0)

    def test_chrome_round_trip_preserves_power_counters(
        self, cluster, tmp_path
    ):
        data = TraceData(counters=power_counter_records(cluster))
        path = tmp_path / "power.json"
        export_chrome_trace(path, data)
        assert validate_chrome_trace(json.loads(path.read_text())) == []
        loaded = load_trace_file(path)
        assert [
            (c.track, c.t, c.value, c.name) for c in loaded.counters
        ] == [(c.track, c.t, c.value, c.name) for c in data.counters]

    def test_jsonl_round_trip_preserves_power_counters(
        self, cluster, tmp_path
    ):
        data = TraceData(counters=power_counter_records(cluster))
        path = tmp_path / "power.jsonl"
        export_jsonl(path, data)
        loaded = load_trace_file(path)
        assert loaded.counters == data.counters
