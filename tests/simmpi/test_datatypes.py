"""Tests for the strided vector datatype, incl. property tests."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.hardware.memory import PENTIUM_M_MEMORY
from repro.simmpi.datatypes import VectorType
from repro.util.units import KIB


def test_geometry():
    vt = VectorType(count=512, blocklength=1, stride=8, element_bytes=8)
    assert vt.elements == 512
    assert vt.payload_bytes == 4 * KIB
    assert vt.extent_elements == 511 * 8 + 1
    assert not vt.is_contiguous


def test_contiguous_detection():
    assert VectorType(count=4, blocklength=2, stride=2).is_contiguous
    assert not VectorType(count=4, blocklength=2, stride=3).is_contiguous


def test_overlapping_blocks_rejected():
    with pytest.raises(ValueError, match="may not overlap"):
        VectorType(count=4, blocklength=3, stride=2)
    with pytest.raises(ValueError):
        VectorType(count=0)


def test_pack_gathers_expected_elements():
    vt = VectorType(count=3, blocklength=2, stride=4)
    source = np.arange(12.0)
    packed = vt.pack(source)
    np.testing.assert_array_equal(packed, [0, 1, 4, 5, 8, 9])


def test_unpack_scatters_back():
    vt = VectorType(count=3, blocklength=2, stride=4)
    target = np.full(12, -1.0)
    vt.unpack(np.array([0.0, 1, 4, 5, 8, 9]), target)
    np.testing.assert_array_equal(target[0:2], [0, 1])
    np.testing.assert_array_equal(target[4:6], [4, 5])
    np.testing.assert_array_equal(target[8:10], [8, 9])
    assert target[2] == -1.0  # gaps untouched


def test_pack_validates_source_size():
    vt = VectorType(count=4, blocklength=1, stride=8)
    with pytest.raises(ValueError):
        vt.pack(np.zeros(5))
    with pytest.raises(ValueError):
        vt.unpack(np.zeros(3), np.zeros(100))


def test_strided_pack_costs_more_than_contiguous():
    mem = PENTIUM_M_MEMORY
    contiguous = VectorType(count=512, blocklength=1, stride=1)
    strided = VectorType(count=512, blocklength=1, stride=8)
    c_cost = contiguous.pack_cost(mem)
    s_cost = strided.pack_cost(mem)
    assert s_cost.cpu_cycles > c_cost.cpu_cycles


@given(
    count=st.integers(min_value=1, max_value=50),
    blocklength=st.integers(min_value=1, max_value=5),
    gap=st.integers(min_value=0, max_value=7),
)
def test_pack_unpack_roundtrip(count, blocklength, gap):
    """unpack(pack(x)) recovers exactly the typed elements of x."""
    vt = VectorType(count=count, blocklength=blocklength, stride=blocklength + gap)
    rng = np.random.default_rng(count * 100 + blocklength * 10 + gap)
    source = rng.random(vt.extent_elements + 3)
    packed = vt.pack(source)
    target = np.zeros_like(source)
    vt.unpack(packed, target)
    repacked = vt.pack(target)
    np.testing.assert_array_equal(repacked, packed)
