"""Point-to-point semantics: matching, ordering, protocols, payloads."""

import numpy as np
import pytest

from repro.hardware.cluster import Cluster
from repro.hardware.spec import ClusterSpec
from repro.simmpi import ANY_SOURCE, ANY_TAG, payload_nbytes, run_spmd
from repro.util.units import KIB, MIB

from tests.simmpi.conftest import fast_calibration


def test_send_recv_delivers_payload(cluster4):
    def program(comm):
        if comm.rank == 0:
            yield from comm.send({"x": 41}, dest=1, tag=5)
            return None
        if comm.rank == 1:
            data = yield from comm.recv(source=0, tag=5)
            return data
        return None
        yield  # pragma: no cover

    result = run_spmd(cluster4, program, n_ranks=2)
    assert result.returns[1] == {"x": 41}


def test_numpy_payload_roundtrip(cluster4):
    def program(comm):
        if comm.rank == 0:
            yield from comm.send(np.arange(1000), dest=1)
        elif comm.rank == 1:
            data = yield from comm.recv(source=0)
            return int(data.sum())
        return None

    result = run_spmd(cluster4, program, n_ranks=2)
    assert result.returns[1] == sum(range(1000))


def test_transfer_takes_wire_time(cluster4):
    nbytes = 9 * MIB

    def program(comm):
        if comm.rank == 0:
            yield from comm.send(None, dest=1, nbytes=nbytes)
        elif comm.rank == 1:
            yield from comm.recv(source=0)
        return comm.wtime()

    result = run_spmd(cluster4, program, n_ranks=2)
    wire = nbytes / cluster4.calibration.network.payload_rate
    # Receiver finishes no earlier than the wire time, and within ~10 %
    # overhead of it (latency, software costs, rendezvous handshake).
    assert wire <= result.duration <= wire * 1.10


def test_messages_non_overtaking_same_source_tag(cluster4):
    def program(comm):
        if comm.rank == 0:
            for i in range(5):
                yield from comm.send(i, dest=1, tag=9)
            return None
        if comm.rank == 1:
            got = []
            for _ in range(5):
                got.append((yield from comm.recv(source=0, tag=9)))
            return got
        return None
        yield  # pragma: no cover

    result = run_spmd(cluster4, program, n_ranks=2)
    assert result.returns[1] == [0, 1, 2, 3, 4]


def test_tag_selective_matching(cluster4):
    def program(comm):
        if comm.rank == 0:
            yield from comm.send("a", dest=1, tag=1)
            yield from comm.send("b", dest=1, tag=2)
            return None
        if comm.rank == 1:
            second = yield from comm.recv(source=0, tag=2)
            first = yield from comm.recv(source=0, tag=1)
            return (first, second)
        return None
        yield  # pragma: no cover

    result = run_spmd(cluster4, program, n_ranks=2)
    assert result.returns[1] == ("a", "b")


def test_any_source_any_tag(cluster4):
    def program(comm):
        if comm.rank == 3:
            got = set()
            for _ in range(3):
                got.add((yield from comm.recv(source=ANY_SOURCE, tag=ANY_TAG)))
            return got
        yield from comm.send(comm.rank, dest=3, tag=comm.rank)
        return None

    result = run_spmd(cluster4, program)
    assert result.returns[3] == {0, 1, 2}


def test_isend_waitall(cluster4):
    def program(comm):
        if comm.rank == 0:
            reqs = []
            for dst in (1, 2, 3):
                req = yield from comm.isend(f"to{dst}", dest=dst)
                reqs.append(req)
            yield from comm.waitall(reqs)
            return None
        data = yield from comm.recv(source=0)
        return data

    result = run_spmd(cluster4, program)
    assert result.returns[1:] == ["to1", "to2", "to3"]


def test_irecv_status_has_source_tag_nbytes(cluster4):
    def program(comm):
        if comm.rank == 0:
            yield from comm.send(np.zeros(100), dest=1, tag=42)
            return None
        if comm.rank == 1:
            req = comm.irecv(source=0, tag=42)
            yield from comm.wait(req)
            return req.status
        return None
        yield  # pragma: no cover

    result = run_spmd(cluster4, program, n_ranks=2)
    status = result.returns[1]
    assert status.source == 0 and status.tag == 42 and status.nbytes == 800


def test_sendrecv_exchange(cluster4):
    def program(comm):
        partner = comm.rank ^ 1
        got = yield from comm.sendrecv(comm.rank * 10, dest=partner, source=partner)
        return got

    result = run_spmd(cluster4, program, n_ranks=2)
    assert result.returns == [10, 0]


def test_eager_send_returns_before_recv_posted():
    cluster = Cluster.from_spec(ClusterSpec.homogeneous(2), calibration=fast_calibration())

    def program(comm):
        if comm.rank == 0:
            yield from comm.send(b"x" * 1024, dest=1)  # below threshold
            send_done = comm.wtime()
            return send_done
        yield comm.engine.timeout(5.0)  # recv posted very late
        yield from comm.recv(source=0)
        return comm.wtime()

    result = run_spmd(cluster, program)
    assert result.returns[0] < 0.1  # sender did not wait for the receiver
    assert result.returns[1] >= 5.0


def test_rendezvous_send_blocks_until_recv_posted():
    cluster = Cluster.from_spec(ClusterSpec.homogeneous(2), calibration=fast_calibration())
    big = 1 * MIB  # above the 64 KiB eager threshold

    def program(comm):
        if comm.rank == 0:
            yield from comm.send(None, dest=1, nbytes=big)
            return comm.wtime()
        yield comm.engine.timeout(5.0)
        yield from comm.recv(source=0)
        return comm.wtime()

    result = run_spmd(cluster, program)
    assert result.returns[0] >= 5.0  # sender completed only after the match


def test_self_send_loopback(cluster4):
    def program(comm):
        req = comm.irecv(source=comm.rank, tag=3)
        sreq = yield from comm.isend("self", dest=comm.rank, tag=3)
        yield from comm.wait(sreq)
        return (yield from comm.wait(req))

    result = run_spmd(cluster4, program, n_ranks=1)
    assert result.returns[0] == "self"


def test_invalid_peer_rejected(cluster4):
    def program(comm):
        yield from comm.send(None, dest=99, nbytes=0)

    with pytest.raises(ValueError):
        run_spmd(cluster4, program, n_ranks=1)


def test_payload_nbytes_rules():
    assert payload_nbytes(None) == 0
    assert payload_nbytes(np.zeros(10, dtype=np.float64)) == 80
    assert payload_nbytes(b"abc") == 3
    assert payload_nbytes(3.14) == 16
    assert payload_nbytes([1, 2]) == 16 + 32
    assert payload_nbytes("hi") == 18
    assert payload_nbytes({"a": 1}) > 0
    assert payload_nbytes(object()) == 64


def test_wire_size_matches_numpy_payload(cluster4):
    """Verification mode: the bytes that move are the payload's bytes."""
    arr = np.zeros(256 * KIB // 8, dtype=np.float64)  # 256 KiB

    def program(comm):
        if comm.rank == 0:
            yield from comm.send(arr, dest=1)
        elif comm.rank == 1:
            yield from comm.recv(source=0)
        return None

    run_spmd(cluster4, program, n_ranks=2)
    assert cluster4.fabric.bytes_transferred == arr.nbytes


def test_iprobe_sees_pending_envelope(cluster4):
    def program(comm):
        if comm.rank == 0:
            yield from comm.send("probe-me", dest=1, tag=5)
            return None
        # Give the envelope time to be posted (send is eager).
        yield comm.engine.timeout(1.0)
        status = comm.iprobe(source=0, tag=5)
        none_status = comm.iprobe(source=0, tag=99)
        data = yield from comm.recv(source=0, tag=5)
        after = comm.iprobe(source=0, tag=5)
        return (status, none_status, data, after)

    result = run_spmd(cluster4, program, n_ranks=2)
    status, none_status, data, after = result.returns[1]
    assert status is not None and status.source == 0 and status.tag == 5
    assert none_status is None
    assert data == "probe-me"
    assert after is None


def test_request_complete_flag(cluster4):
    def program(comm):
        if comm.rank == 0:
            yield comm.engine.timeout(1.0)
            yield from comm.send(None, dest=1, nbytes=0, tag=2)
            return None
        req = comm.irecv(source=0, tag=2)
        early = req.complete
        yield from comm.wait(req)
        return (early, req.complete)

    result = run_spmd(cluster4, program, n_ranks=2)
    assert result.returns[1] == (False, True)
