"""Tests for the progress-engine CPU wait policy.

These pin down the mechanisms behind the paper's results:

* a rank waiting while traffic flows on its links busy-polls (busy in
  /proc/stat, ~SPIN power) — why cpuspeed cannot save energy on FT;
* a rank waiting with no traffic blocks in the kernel after a short spin
  — why the transpose's backpressured senders draw near-idle power.
"""

from repro.hardware.activity import CpuActivity
from repro.hardware.cluster import Cluster
from repro.hardware.spec import ClusterSpec
from repro.simmpi import run_spmd
from repro.util.units import MIB

from tests.simmpi.conftest import fast_calibration


def test_receiver_busy_polls_while_data_flows():
    cluster = Cluster.from_spec(ClusterSpec.homogeneous(2))
    states = []

    def program(comm):
        if comm.rank == 0:
            yield from comm.send(None, dest=1, nbytes=20 * MIB)
            return None
        # rank 1: sample own CPU state while the transfer is in flight
        def sampler():
            while True:
                yield comm.engine.timeout(0.05)
                states.append((comm.cpu.state, comm.cpu.floor))

        comm.engine.process(sampler())
        yield from comm.recv(source=0)
        return comm.wtime()

    run_spmd(cluster, program)
    mid_states = states[2:-2]
    assert mid_states, "transfer too short to sample"
    # While bytes flow, the receiver does PROTO work over a SPIN floor.
    assert all(
        s is CpuActivity.PROTO and f is CpuActivity.SPIN for s, f in mid_states
    )


def test_receiver_procstat_shows_busy_during_communication():
    """The cpuspeed-blinding artifact: a communication-bound rank is ~100%
    busy in /proc/stat."""
    cluster = Cluster.from_spec(ClusterSpec.homogeneous(2))

    def program(comm):
        if comm.rank == 0:
            yield from comm.send(None, dest=1, nbytes=20 * MIB)
        else:
            yield from comm.recv(source=0)
        return None

    run_spmd(cluster, program)
    stats = cluster.nodes[1].procstat.snapshot()
    assert stats.busy / stats.total > 0.95


def test_waiter_with_no_traffic_blocks_after_spin():
    cluster = Cluster.from_spec(ClusterSpec.homogeneous(2), calibration=fast_calibration())
    states = []

    def program(comm):
        if comm.rank == 0:
            yield comm.engine.timeout(2.0)  # make rank 1 wait with no traffic
            yield from comm.send("late", dest=1, nbytes=0)
            return None

        def sampler():
            while True:
                yield comm.engine.timeout(0.1)
                states.append((comm.wtime(), comm.cpu.state))

        comm.engine.process(sampler())
        got = yield from comm.recv(source=0)
        return got

    run_spmd(cluster, program)
    blocked = [s for t, s in states if 0.2 < t < 1.9]
    assert blocked and all(s is CpuActivity.IDLE for s in blocked)


def test_waiter_spins_for_threshold_before_blocking():
    cal = fast_calibration(spin_block_threshold=0.5)
    cluster = Cluster.from_spec(ClusterSpec.homogeneous(2), calibration=cal)
    states = []

    def program(comm):
        if comm.rank == 0:
            yield comm.engine.timeout(2.0)
            yield from comm.send(None, dest=1, nbytes=0)
            return None

        def sampler():
            while True:
                yield comm.engine.timeout(0.05)
                states.append((comm.wtime(), comm.cpu.state))

        comm.engine.process(sampler())
        yield from comm.recv(source=0)
        return None

    run_spmd(cluster, program)
    spinning = [s for t, s in states if 0.05 < t < 0.45]
    blocked = [s for t, s in states if 0.55 < t < 1.95]
    assert spinning and all(s is CpuActivity.SPIN for s in spinning)
    assert blocked and all(s is CpuActivity.IDLE for s in blocked)


def test_infinite_spin_threshold_never_blocks():
    cal = fast_calibration(spin_block_threshold=float("inf"))
    cluster = Cluster.from_spec(ClusterSpec.homogeneous(2), calibration=cal)
    states = []

    def program(comm):
        if comm.rank == 0:
            yield comm.engine.timeout(1.0)
            yield from comm.send(None, dest=1, nbytes=0)
            return None

        def sampler():
            while True:
                yield comm.engine.timeout(0.1)
                states.append(comm.cpu.state)

        comm.engine.process(sampler())
        yield from comm.recv(source=0)
        return None

    run_spmd(cluster, program)
    assert states and all(s is CpuActivity.SPIN for s in states[:-1])


def test_backpressured_senders_idle_while_peer_transmits():
    """Incast: two senders to one root share the root's rx link; each is
    blocked (IDLE) for roughly half the wait — the transpose mechanism."""
    cluster = Cluster.from_spec(ClusterSpec.homogeneous(3))

    def program(comm):
        if comm.rank == 0:
            for _ in range(2):
                yield from comm.recv()
            return None
        yield from comm.send(None, dest=0, nbytes=30 * MIB)
        return None

    run_spmd(cluster, program)
    # Each sender transmits ~half the time and is blocked the other half.
    for sender in (1, 2):
        stats = cluster.nodes[sender].procstat.snapshot()
        idle_frac = stats.idle / stats.total
        assert 0.2 < idle_frac < 0.8, idle_frac


def test_energy_of_communication_falls_with_frequency():
    """Communication-bound work: lower frequency cuts energy with little
    delay impact (paper Fig 8 mechanism)."""
    results = {}
    for mhz in (1400, 600):
        cluster = Cluster.from_spec(ClusterSpec.homogeneous(2))
        for node in cluster.nodes:
            node.cpu.set_frequency(cluster.table.point_for(mhz * 1e6))

        def program(comm):
            if comm.rank == 0:
                yield from comm.send(None, dest=1, nbytes=20 * MIB)
            else:
                yield from comm.recv(source=0)
            return None

        res = run_spmd(cluster, program)
        energy = cluster.total_energy(res.start, res.end)
        results[mhz] = (energy, res.duration)

    e_slow, d_slow = results[600]
    e_fast, d_fast = results[1400]
    assert e_slow < 0.85 * e_fast  # big energy savings
    assert d_slow < 1.15 * d_fast  # small delay impact
