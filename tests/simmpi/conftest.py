"""Shared fixtures for simulated-MPI tests."""

import pytest

from repro.hardware.calibration import DEFAULT_CALIBRATION
from repro.hardware.cluster import Cluster
from repro.hardware.spec import ClusterSpec


@pytest.fixture
def cluster4():
    return Cluster.from_spec(ClusterSpec.homogeneous(4))


@pytest.fixture
def cluster8():
    return Cluster.from_spec(ClusterSpec.homogeneous(8))


def fast_calibration(**overrides):
    """Calibration with zero software costs, for pure-semantics tests."""
    defaults = dict(
        message_overhead_cycles=0.0,
        proto_cycles_per_byte=0.0,
        serial_cycles_per_byte=0.0,
    )
    defaults.update(overrides)
    return DEFAULT_CALIBRATION.with_overrides(**defaults)
