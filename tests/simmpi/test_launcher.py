"""Tests for the SPMD launcher."""

import pytest

from repro.simmpi import run_spmd


def test_returns_collected_per_rank(cluster4):
    def program(comm):
        yield comm.engine.timeout(0.1)
        return comm.rank * 2

    result = run_spmd(cluster4, program)
    assert result.returns == [0, 2, 4, 6]


def test_duration_is_last_finisher(cluster4):
    def program(comm):
        yield comm.engine.timeout(1.0 + comm.rank)
        return None

    result = run_spmd(cluster4, program)
    assert result.duration == pytest.approx(4.0)


def test_subset_of_nodes(cluster8):
    def program(comm):
        yield comm.engine.timeout(0.1)
        return comm.size

    result = run_spmd(cluster8, program, n_ranks=3)
    assert result.returns == [3, 3, 3]


def test_n_ranks_validated(cluster4):
    def program(comm):
        yield comm.engine.timeout(0.1)

    with pytest.raises(ValueError):
        run_spmd(cluster4, program, n_ranks=0)
    with pytest.raises(ValueError):
        run_spmd(cluster4, program, n_ranks=5)


def test_program_args_forwarded(cluster4):
    def program(comm, offset):
        yield comm.engine.timeout(0.0)
        return comm.rank + offset

    result = run_spmd(cluster4, program, program_args=(100,))
    assert result.returns == [100, 101, 102, 103]


def test_rank_exception_propagates(cluster4):
    def program(comm):
        yield comm.engine.timeout(0.1)
        if comm.rank == 2:
            raise RuntimeError("rank 2 died")

    with pytest.raises(RuntimeError, match="rank 2 died"):
        run_spmd(cluster4, program)


def test_sequential_jobs_on_one_cluster(cluster4):
    """Two jobs back to back reuse the engine; time keeps advancing."""

    def program(comm):
        yield comm.engine.timeout(1.0)
        return comm.wtime()

    first = run_spmd(cluster4, program)
    second = run_spmd(cluster4, program)
    assert second.start >= first.end
    assert second.duration == pytest.approx(1.0)


def test_power_accounting_closed_after_run(cluster4):
    def program(comm):
        yield from comm.cpu.run_cycles(1.4e9)
        return None

    result = run_spmd(cluster4, program, n_ranks=1)
    stats = cluster4.nodes[0].procstat.snapshot()
    assert stats.total == pytest.approx(result.duration)
