"""Collective semantics on real payloads and synthetic byte counts."""

import numpy as np
import pytest

from repro.hardware.cluster import Cluster
from repro.hardware.spec import ClusterSpec
from repro.simmpi import run_spmd
from repro.util.units import MIB


@pytest.mark.parametrize("size", [1, 2, 3, 4, 7, 8])
def test_bcast_reaches_every_rank(size):
    cluster = Cluster.from_spec(ClusterSpec.homogeneous(size))

    def program(comm):
        payload = {"v": 99} if comm.rank == 2 % comm.size else None
        got = yield from comm.bcast(payload, root=2 % comm.size)
        return got

    result = run_spmd(cluster, program)
    assert all(r == {"v": 99} for r in result.returns)


@pytest.mark.parametrize("size", [1, 2, 4, 5, 8])
def test_reduce_sums_to_root(size):
    cluster = Cluster.from_spec(ClusterSpec.homogeneous(size))

    def program(comm):
        value = np.full(4, float(comm.rank + 1))
        got = yield from comm.reduce(value, root=0)
        return got

    result = run_spmd(cluster, program)
    expected = sum(range(1, size + 1))
    np.testing.assert_allclose(result.returns[0], np.full(4, float(expected)))
    assert all(r is None for r in result.returns[1:])


@pytest.mark.parametrize("size", [1, 2, 4, 6])
def test_allreduce_everyone_gets_sum(size):
    cluster = Cluster.from_spec(ClusterSpec.homogeneous(size))

    def program(comm):
        got = yield from comm.allreduce(comm.rank + 1)
        return got

    result = run_spmd(cluster, program)
    expected = sum(range(1, size + 1))
    assert all(r == expected for r in result.returns)


def test_gather_collects_in_rank_order():
    cluster = Cluster.from_spec(ClusterSpec.homogeneous(5))

    def program(comm):
        got = yield from comm.gather(comm.rank * 2, root=3)
        return got

    result = run_spmd(cluster, program)
    assert result.returns[3] == [0, 2, 4, 6, 8]
    assert all(result.returns[i] is None for i in range(5) if i != 3)


def test_scatter_distributes_in_rank_order():
    cluster = Cluster.from_spec(ClusterSpec.homogeneous(4))

    def program(comm):
        values = [f"item{i}" for i in range(4)] if comm.rank == 1 else None
        got = yield from comm.scatter(values, root=1)
        return got

    result = run_spmd(cluster, program)
    assert result.returns == ["item0", "item1", "item2", "item3"]


def test_scatter_validates_length():
    cluster = Cluster.from_spec(ClusterSpec.homogeneous(3))

    def program(comm):
        values = [1, 2] if comm.rank == 0 else None
        yield from comm.scatter(values, root=0)

    with pytest.raises(ValueError):
        run_spmd(cluster, program)


@pytest.mark.parametrize("size", [1, 2, 4, 5])
def test_allgather_everyone_has_all(size):
    cluster = Cluster.from_spec(ClusterSpec.homogeneous(size))

    def program(comm):
        got = yield from comm.allgather(comm.rank + 100)
        return got

    result = run_spmd(cluster, program)
    expected = [100 + i for i in range(size)]
    assert all(r == expected for r in result.returns)


@pytest.mark.parametrize("size", [1, 2, 4, 8])
def test_alltoall_transposes_data(size):
    cluster = Cluster.from_spec(ClusterSpec.homogeneous(size))

    def program(comm):
        outgoing = [f"{comm.rank}->{dst}" for dst in range(comm.size)]
        got = yield from comm.alltoall(outgoing)
        return got

    result = run_spmd(cluster, program)
    for dst in range(size):
        assert result.returns[dst] == [f"{src}->{dst}" for src in range(size)]


def test_alltoall_synthetic_moves_right_volume():
    size = 4
    cluster = Cluster.from_spec(ClusterSpec.homogeneous(size))
    block = 1 * MIB

    def program(comm):
        got = yield from comm.alltoall(nbytes_each=block)
        return got

    run_spmd(cluster, program)
    # p*(p-1) off-node blocks cross the fabric.
    assert cluster.fabric.bytes_transferred == size * (size - 1) * block


def test_alltoall_requires_data_description():
    cluster = Cluster.from_spec(ClusterSpec.homogeneous(2))

    def program(comm):
        yield from comm.alltoall()

    with pytest.raises(ValueError):
        run_spmd(cluster, program)


def test_barrier_synchronises_ranks():
    cluster = Cluster.from_spec(ClusterSpec.homogeneous(4))

    def program(comm):
        # Rank 2 arrives late; nobody may leave before it arrives.
        if comm.rank == 2:
            yield comm.engine.timeout(3.0)
        yield from comm.barrier()
        return comm.wtime()

    result = run_spmd(cluster, program)
    assert all(t >= 3.0 for t in result.returns)


def test_barrier_single_rank_is_instant():
    cluster = Cluster.from_spec(ClusterSpec.homogeneous(1))

    def program(comm):
        yield from comm.barrier()
        return comm.wtime()

    result = run_spmd(cluster, program)
    assert result.returns[0] == 0.0


def test_back_to_back_collectives_do_not_cross():
    """Two consecutive collectives use distinct tags and stay ordered."""
    cluster = Cluster.from_spec(ClusterSpec.homogeneous(4))

    def program(comm):
        first = yield from comm.allreduce(comm.rank)
        second = yield from comm.allreduce(comm.rank * 10)
        return (first, second)

    result = run_spmd(cluster, program)
    assert all(r == (6, 60) for r in result.returns)


def test_reduce_with_custom_op():
    from repro.simmpi.collectives import reduce as mpi_reduce

    cluster = Cluster.from_spec(ClusterSpec.homogeneous(4))

    def program(comm):
        got = yield from mpi_reduce(comm, comm.rank + 1, root=0, op=lambda a, b: a * b)
        return got

    result = run_spmd(cluster, program)
    assert result.returns[0] == 24


def test_bcast_synthetic_volume():
    size = 8
    cluster = Cluster.from_spec(ClusterSpec.homogeneous(size))
    block = 2 * MIB

    def program(comm):
        yield from comm.bcast(None, root=0, nbytes=block)
        return None

    run_spmd(cluster, program)
    # Binomial tree moves exactly p-1 copies of the block.
    assert cluster.fabric.bytes_transferred == (size - 1) * block
