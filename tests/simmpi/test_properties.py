"""Property-based tests for the simulated MPI.

Random message schedules and collective payloads; semantic invariants
must hold for every generated case.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.hardware.cluster import Cluster
from repro.hardware.spec import ClusterSpec
from repro.simmpi import run_spmd

# Simulation-heavy properties: keep example counts moderate.
FAST = settings(max_examples=25, deadline=None)


@FAST
@given(
    payload_sizes=st.lists(
        st.integers(min_value=0, max_value=512 * 1024), min_size=1, max_size=6
    ),
    tag=st.integers(min_value=0, max_value=100),
)
def test_messages_never_reorder_within_source_tag(payload_sizes, tag):
    """Non-overtaking across a mix of eager and rendezvous messages."""
    cluster = Cluster.from_spec(ClusterSpec.homogeneous(2))

    def program(comm):
        if comm.rank == 0:
            for i, size in enumerate(payload_sizes):
                yield from comm.send(i, dest=1, tag=tag, nbytes=size)
            return None
        got = []
        for _ in payload_sizes:
            got.append((yield from comm.recv(source=0, tag=tag)))
        return got

    result = run_spmd(cluster, program)
    assert result.returns[1] == list(range(len(payload_sizes)))


@FAST
@given(
    size=st.integers(min_value=1, max_value=6),
    root=st.integers(min_value=0, max_value=5),
    value=st.integers(min_value=-1000, max_value=1000),
)
def test_bcast_delivers_same_value_everywhere(size, root, value):
    root = root % size
    cluster = Cluster.from_spec(ClusterSpec.homogeneous(size))

    def program(comm):
        payload = value if comm.rank == root else None
        got = yield from comm.bcast(payload, root=root)
        return got

    result = run_spmd(cluster, program)
    assert all(r == value for r in result.returns)


@FAST
@given(
    size=st.integers(min_value=1, max_value=6),
    values=st.lists(
        st.floats(min_value=-100, max_value=100, allow_nan=False),
        min_size=6,
        max_size=6,
    ),
)
def test_allreduce_sum_is_exactly_python_sum(size, values):
    cluster = Cluster.from_spec(ClusterSpec.homogeneous(size))
    local = values[:size]

    def program(comm):
        got = yield from comm.allreduce(local[comm.rank])
        return got

    result = run_spmd(cluster, program)
    # Binomial combination order differs from sequential sum; allow fp slop.
    for r in result.returns:
        assert r == pytest.approx(sum(local), rel=1e-12, abs=1e-9)


@FAST
@given(
    size=st.integers(min_value=1, max_value=5),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_alltoall_is_a_transpose(size, seed):
    rng = np.random.default_rng(seed)
    matrix = rng.integers(0, 1000, size=(size, size))
    cluster = Cluster.from_spec(ClusterSpec.homogeneous(size))

    def program(comm):
        outgoing = [int(matrix[comm.rank, dst]) for dst in range(comm.size)]
        got = yield from comm.alltoall(outgoing)
        return got

    result = run_spmd(cluster, program)
    for dst in range(size):
        assert result.returns[dst] == [int(matrix[src, dst]) for src in range(size)]


@FAST
@given(
    size=st.integers(min_value=2, max_value=6),
    nbytes=st.integers(min_value=0, max_value=1 << 20),
)
def test_synthetic_volume_conservation(size, nbytes):
    """alltoall moves exactly p(p−1) blocks off-node, regardless of the
    eager/rendezvous split the size triggers."""
    cluster = Cluster.from_spec(ClusterSpec.homogeneous(size))

    def program(comm):
        yield from comm.alltoall(nbytes_each=nbytes)
        return None

    run_spmd(cluster, program)
    assert cluster.fabric.bytes_transferred == size * (size - 1) * nbytes


@FAST
@given(
    delays=st.lists(
        st.floats(min_value=0.0, max_value=3.0), min_size=2, max_size=6
    )
)
def test_barrier_release_time_is_last_arrival(delays):
    cluster = Cluster.from_spec(ClusterSpec.homogeneous(len(delays)))

    def program(comm):
        yield comm.engine.timeout(delays[comm.rank])
        yield from comm.barrier()
        return comm.wtime()

    result = run_spmd(cluster, program)
    latest = max(delays)
    assert all(t >= latest - 1e-9 for t in result.returns)


@FAST
@given(
    size=st.integers(min_value=1, max_value=6),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_gather_scatter_roundtrip(size, seed):
    rng = np.random.default_rng(seed)
    data = [int(v) for v in rng.integers(0, 10**6, size=size)]
    cluster = Cluster.from_spec(ClusterSpec.homogeneous(size))

    def program(comm):
        gathered = yield from comm.gather(data[comm.rank], root=0)
        back = yield from comm.scatter(gathered, root=0)
        return back

    result = run_spmd(cluster, program)
    assert result.returns == data
