"""The stable top-level API: ``from repro import ...`` with no deep
imports, lazily resolved (PEP 562), documented in ``docs/API.md``."""

import subprocess
import sys

import pytest

import repro


class TestExports:
    def test_the_issue_line_works(self):
        from repro import Session, Tracer, run_sweep  # noqa: F401

    def test_every_all_name_resolves(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_all_is_sorted_and_complete(self):
        assert repro.__all__ == ["__version__", *sorted(repro._EXPORTS)]
        assert set(repro._EXPORTS) <= set(dir(repro))

    def test_facade_names_are_the_canonical_objects(self):
        from repro.analysis.parallel import run_sweep as deep_run_sweep
        from repro.obs.tracer import Tracer as DeepTracer
        from repro.session import Session as DeepSession

        assert repro.run_sweep is deep_run_sweep
        assert repro.Tracer is DeepTracer
        assert repro.Session is DeepSession

    def test_serving_facade_names_are_the_canonical_objects(self):
        from repro.metrics.serving import ServingReport as DeepReport
        from repro.serving.runner import run_serving as deep_run_serving
        from repro.serving.spec import ServingWorkload as DeepWorkload
        from repro.serving.sweep import run_serving_sweep as deep_sweep

        assert repro.run_serving is deep_run_serving
        assert repro.run_serving_sweep is deep_sweep
        assert repro.ServingWorkload is DeepWorkload
        assert repro.ServingReport is DeepReport

    def test_engine_facade_names_are_the_canonical_objects(self):
        from repro.sim.columnar import ColumnarEngine as DeepColumnar
        from repro.sim.engine import Engine as DeepEngine
        from repro.sim.factory import make_engine as deep_make_engine
        from repro.sim.factory import using_engine_mode as deep_using

        assert repro.Engine is DeepEngine
        assert repro.ColumnarEngine is DeepColumnar
        assert repro.make_engine is deep_make_engine
        assert repro.using_engine_mode is deep_using
        assert "columnar" in repro.ENGINE_MODES
        assert "scalar" in repro.ENGINE_MODES

    def test_exec_facade_names_are_the_canonical_objects(self):
        from repro.exec.backends import (
            ExecBackend as DeepBackend,
            ProcessPoolBackend as DeepPool,
            SerialBackend as DeepSerial,
            resolve_backend as deep_resolve,
        )
        from repro.exec.mpi import MpiBackend as DeepMpi
        from repro.exec.retry import (
            RetryPolicy as DeepRetry,
            WorkerLostError as DeepLost,
        )

        assert repro.ExecBackend is DeepBackend
        assert repro.SerialBackend is DeepSerial
        assert repro.ProcessPoolBackend is DeepPool
        assert repro.MpiBackend is DeepMpi
        assert repro.resolve_backend is deep_resolve
        assert repro.RetryPolicy is DeepRetry
        assert repro.WorkerLostError is DeepLost
        assert repro.BACKENDS == ("serial", "process", "mpi")

    def test_scaling_facade_names_are_the_canonical_objects(self):
        from repro.hardware.cluster import Cluster as DeepCluster
        from repro.hardware.scaling import (
            TechNode as DeepTechNode,
            scaled_table as deep_scaled_table,
            tech_node as deep_tech_node,
        )
        from repro.hardware.spec import (
            ClusterSpec as DeepSpec,
            NodeSpec as DeepNodeSpec,
        )
        from repro.metrics.scaling import ScalingReport as DeepScalingReport

        assert repro.Cluster is DeepCluster
        assert repro.ClusterSpec is DeepSpec
        assert repro.NodeSpec is DeepNodeSpec
        assert repro.TechNode is DeepTechNode
        assert repro.tech_node is deep_tech_node
        assert repro.scaled_table is deep_scaled_table
        assert repro.ScalingReport is DeepScalingReport
        assert repro.CORE_IO.name == "io"
        assert repro.CORE_O3.name == "o3"
        assert len(repro.TECH_NODES) == 12

    def test_elastic_facade_names_are_the_canonical_objects(self):
        from repro.metrics.knobmap import KnobMapReport as DeepKnobMap
        from repro.powercap.actions import (
            Action as DeepAction,
            GovernorPlan as DeepPlan,
        )
        from repro.powercap.actuators import Actuator as DeepActuator
        from repro.powercap.elastic import ElasticPolicy as DeepElastic
        from repro.serving.elastic import (
            ElasticServingPolicy as DeepServingElastic,
        )

        assert repro.Action is DeepAction
        assert repro.GovernorPlan is DeepPlan
        assert repro.Actuator is DeepActuator
        assert repro.ElasticPolicy is DeepElastic
        assert repro.ElasticServingPolicy is DeepServingElastic
        assert repro.KnobMapReport is DeepKnobMap
        assert repro.ELASTIC_KNOBS == ("dvfs", "cores", "gate")

    def test_unknown_attribute_raises_attribute_error(self):
        with pytest.raises(AttributeError, match="no attribute"):
            repro.does_not_exist

    def test_stable_surface_is_exactly_the_documented_one(self):
        """Removing a name from this list is an API break; additions are
        fine (extend the list and docs/API.md together)."""
        documented = {
            "AttributionReport",
            "ColumnarEngine",
            "ENGINE_MODES",
            "Engine",
            "EngineStats",
            "engine_mode",
            "make_engine",
            "set_engine_mode",
            "using_engine_mode",
            "ChaosOutcome",
            "ChaosTask",
            "EnergyDelayPoint",
            "FaultInjector",
            "FaultPlan",
            "DiurnalArrivals",
            "MMPPArrivals",
            "PoissonArrivals",
            "PowerBudget",
            "PowerCapStrategy",
            "Action",
            "GovernorPlan",
            "Actuator",
            "ElasticPolicy",
            "ELASTIC_KNOBS",
            "ElasticServingPolicy",
            "KnobCell",
            "KnobMapReport",
            "RunCache",
            "ServingOutcome",
            "ServingReport",
            "ServingTask",
            "ServingWorkload",
            "Session",
            "TierDvsPolicy",
            "TierSpec",
            "SweepError",
            "SweepEvent",
            "SweepTask",
            "BACKENDS",
            "ExecBackend",
            "SerialBackend",
            "ProcessPoolBackend",
            "MpiBackend",
            "RetryPolicy",
            "AttemptRecord",
            "WorkerLostError",
            "SweepTimeoutError",
            "mpi_available",
            "resolve_backend",
            "Tracer",
            "Workload",
            "Cluster",
            "ClusterSpec",
            "NodeSpec",
            "TechNode",
            "CoreKind",
            "CORE_O3",
            "CORE_IO",
            "TECH_NODES",
            "tech_node",
            "scaled_table",
            "scaled_calibration",
            "ScalingReport",
            "build_scaling_report",
            "active_tracer",
            "build_attribution_report",
            "export_chrome_trace",
            "export_jsonl",
            "list_experiments",
            "load_trace_file",
            "build_serving_report",
            "run_chaos_sweep",
            "run_experiment",
            "run_measured",
            "run_serving",
            "run_serving_sweep",
            "run_sweep",
            "sweep_context",
            "traced_run",
            "tracing",
            "validate_chrome_trace",
        }
        assert documented <= set(repro._EXPORTS)


class TestLaziness:
    def test_bare_import_does_not_pull_the_stack(self):
        """``import repro`` must stay cheap: no simulator, no numpy-era
        heavyweights, no experiment registry until a name is touched."""
        code = (
            "import sys; import repro; "
            "heavy = [m for m in sys.modules if m.startswith(("
            "'repro.sim', 'repro.simmpi', 'repro.experiments', "
            "'repro.workloads', 'repro.hardware', 'repro.serving'))]; "
            "print(','.join(heavy))"
        )
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            check=True,
        )
        assert out.stdout.strip() == "", (
            f"import repro eagerly imported: {out.stdout.strip()}"
        )


class TestSessionFacade:
    def test_default_session_is_bare(self):
        s = repro.Session()
        assert s.cache is None
        assert s.tracer is None
        assert s.jobs is None

    def test_untraced_session_rejects_trace_asks(self):
        s = repro.Session()
        with pytest.raises(ValueError, match="tracer"):
            s.attribution(object())
        with pytest.raises(ValueError, match="tracer"):
            s.export_trace("x.json")

    def test_traced_session_rejects_unknown_format(self, tmp_path):
        s = repro.Session(tracer=repro.Tracer())
        with pytest.raises(ValueError, match="format"):
            s.export_trace(tmp_path / "x.bin", format="protobuf")


class TestPowerTrackExport:
    def test_export_trace_with_run_adds_power_counter_tracks(self, tmp_path):
        import json

        from repro.dvs.strategy import StaticStrategy
        from repro.workloads.nas_ft import NasFT

        s = repro.Session(tracer=repro.Tracer())
        run = s.run(
            NasFT("S", n_ranks=2, iterations=1),
            StaticStrategy(1.4e9),
        )
        bare = tmp_path / "bare.json"
        with_power = tmp_path / "power.json"
        n_bare = s.export_trace(bare, run=None)
        n_power = s.export_trace(with_power, run=run)
        assert n_power > n_bare
        events = json.loads(with_power.read_text())["traceEvents"]
        power = [e for e in events if e.get("name") == "power_w"]
        assert {e["pid"] for e in power} == {
            node.node_id for node in run.cluster.nodes
        }
        assert all(e["ph"] == "C" for e in power)
