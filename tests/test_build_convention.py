"""Convention guard: no new ``Cluster.build`` call sites.

``Cluster.build`` is a deprecated shim over
``Cluster.from_spec(ClusterSpec.homogeneous(n))`` kept one release for
external callers.  Every internal call site was migrated in the spec
refactor; this test scans every module under ``src/repro`` and fails on
any ``Cluster.build(...)`` (or ``cls.build(...)``) call so the old
entry point cannot creep back in while it still exists.

Only the shim's own module may reference it, and only to define it.
"""

import ast
from pathlib import Path

#: receivers whose ``.build`` call means the deprecated constructor
BANNED_RECEIVERS = frozenset({"Cluster", "cls"})

#: the shim's home — definition allowed, calls still are not
SHIM_FILE = "src/repro/hardware/cluster.py"

REPO_ROOT = Path(__file__).resolve().parent.parent


def _build_calls(tree, rel):
    found = []
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "build"
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id in BANNED_RECEIVERS
        ):
            found.append(
                f"{rel}:{node.lineno}: "
                f"{node.func.value.id}.build() called"
            )
    return found


def _violations():
    found = []
    for path in sorted((REPO_ROOT / "src" / "repro").rglob("*.py")):
        rel = path.relative_to(REPO_ROOT).as_posix()
        tree = ast.parse(path.read_text(encoding="utf-8"), filename=rel)
        found.extend(_build_calls(tree, rel))
    return found


def test_no_cluster_build_calls_in_src():
    violations = _violations()
    assert not violations, (
        "deprecated Cluster.build called inside src/repro (use "
        "Cluster.from_spec(ClusterSpec.homogeneous(n)) instead):\n"
        + "\n".join(violations)
    )


def test_shim_still_exists_but_never_calls_itself():
    """The shim must stay (one release of compatibility) — defined in
    its module, called nowhere, not even recursively."""
    path = REPO_ROOT / SHIM_FILE
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=SHIM_FILE)
    defs = [
        node
        for node in ast.walk(tree)
        if isinstance(node, ast.FunctionDef) and node.name == "build"
    ]
    assert len(defs) == 1, "the deprecated shim must still be defined"
    assert _build_calls(tree, SHIM_FILE) == []


def test_guard_detects_the_call_it_bans():
    """Self-check: the scanner flags both receiver spellings."""
    offender = (
        "def f(n):\n"
        "    a = Cluster.build(n)\n"
        "    b = cls.build(n, calibration=None)\n"
        "    c = other.build(n)\n"  # unrelated receiver stays legal
    )
    hits = _build_calls(ast.parse(offender), "x.py")
    assert hits == [
        "x.py:2: Cluster.build() called",
        "x.py:3: cls.build() called",
    ]
