"""Acceptance tests for the chaos subsystem, end to end.

The headline robustness claim: under the composite drill (simultaneous
telemetry dropout on two nodes + a stuck-high DVFS regulator + a crash
that reboots at full clock) the hardened governor keeps every
post-recovery window inside the budget while the fair-weather baseline
demonstrably does not.  Plus the two operational guarantees the chaos
sweep makes: identical seeds reproduce identical outcomes, and sweeps
are cache-resumable.
"""

import pytest

from repro.analysis.runner import run_measured
from repro.cache.store import RunCache
from repro.dvs.strategy import StaticStrategy
from repro.experiments.chaos import drill_plan
from repro.faults import (
    ChaosTask,
    FaultPlan,
    NodeCrash,
    chaos_task_key,
    run_chaos_sweep,
)
from repro.faults import sweep as chaos_sweep_module
from repro.workloads.synthetic import SyntheticMix

#: The drill workload: all-compute, no synchronisation, so control-plane
#: lapses show up as power (not barrier slack) and a crashed rank never
#: deadlocks the survivors.
WORKLOAD = SyntheticMix(
    1.0, 0.0, 0.0, iteration_seconds=0.5, iterations=4, n_ranks=8
)


@pytest.fixture(scope="module")
def drill_setup():
    base = run_measured(WORKLOAD, StaticStrategy(1.4e9))
    uncapped_avg = base.point.energy / base.point.delay
    interval = max(0.02, min(0.25, base.point.delay / 12.0))
    return {
        "budget_watts": 0.85 * uncapped_avg,
        "interval": interval,
        "allowed_recovery_s": 4 * interval,
    }


def drill_task(setup: dict, hardened: bool, seed: int = 0) -> ChaosTask:
    return ChaosTask(
        workload=WORKLOAD,
        plan=drill_plan(setup["interval"], seed=seed),
        budget_watts=setup["budget_watts"],
        policy="redist",
        hardened=hardened,
        interval=setup["interval"],
        allowed_recovery_s=setup["allowed_recovery_s"],
    )


class TestHeadlineClaim:
    def test_hardened_recovers_where_fairweather_violates(self, drill_setup):
        hardened, baseline = run_chaos_sweep(
            [
                drill_task(drill_setup, hardened=True),
                drill_task(drill_setup, hardened=False),
            ],
        )
        # The self-healing governor: zero violations outside the allowed
        # recovery latency of a fault transition, on a composite fault.
        assert hardened.report.post_recovery_violations == 0
        assert hardened.report.recovered
        assert hardened.report.repair_events > 0
        # The fair-weather control: persistent post-recovery violations
        # the invariant monitor catches — the hardening earns its keep.
        assert baseline.report.post_recovery_violations > 0
        assert not baseline.report.recovered
        assert baseline.report.invariant_violations > 0
        assert (
            baseline.report.worst_recovery_latency_s
            > drill_setup["allowed_recovery_s"]
        )

    def test_faults_cost_time_but_not_compliance(self, drill_setup):
        clean_task = ChaosTask(
            workload=WORKLOAD,
            plan=FaultPlan(),
            budget_watts=drill_setup["budget_watts"],
            hardened=True,
            interval=drill_setup["interval"],
            allowed_recovery_s=drill_setup["allowed_recovery_s"],
        )
        clean, drilled = run_chaos_sweep(
            [clean_task, drill_task(drill_setup, hardened=True)],
        )
        assert clean.report.violation_windows == 0
        assert clean.report.repair_events == 0
        # The drill is not free — the crash downtime stretches the run
        # and the defenses fire — but it is *contained*: every window,
        # not just every post-recovery window, stays inside the budget.
        assert drilled.report.delay_s > clean.report.delay_s
        assert drilled.report.repair_events > 0
        assert drilled.report.post_recovery_violations == 0
        assert drilled.report.violation_windows == drilled.report.excused_violations


class TestDeterminism:
    def test_identical_tasks_identical_outcomes(self, drill_setup):
        task = drill_task(drill_setup, hardened=True)
        first, second = run_chaos_sweep([task, task])
        assert first.report == second.report
        assert first.point.energy == second.point.energy
        assert first.point.delay == second.point.delay


class TestCacheResume:
    def test_sweep_resumes_from_cache_without_resimulating(
        self, drill_setup, tmp_path, monkeypatch
    ):
        cache = RunCache(tmp_path / "cache")
        tasks = [
            drill_task(drill_setup, hardened=True),
            drill_task(drill_setup, hardened=False),
        ]
        first = run_chaos_sweep(tasks, use_cache=cache)

        def boom(task):
            raise AssertionError("cache miss: chaos run re-simulated")

        monkeypatch.setattr(chaos_sweep_module, "_execute_chaos", boom)
        second = run_chaos_sweep(tasks, use_cache=cache)
        assert [o.report for o in second] == [o.report for o in first]
        assert [o.point for o in second] == [o.point for o in first]

    def test_foreign_cache_records_fall_through_to_resimulation(
        self, drill_setup, tmp_path
    ):
        cache = RunCache(tmp_path / "cache")
        task = drill_task(drill_setup, hardened=True)
        (fresh,) = run_chaos_sweep([task], use_cache=cache)
        # Overwrite the record with one missing the chaos meta — as if a
        # plain sweep point landed under the same key.
        key = chaos_task_key(task)
        cache.put(key, fresh.point, meta={"workload": WORKLOAD.name})
        (again,) = run_chaos_sweep([task], use_cache=cache)
        assert again.report == fresh.report  # re-simulated, not decoded


class TestTaskKey:
    def test_key_is_stable_across_processes(self, drill_setup):
        a = chaos_task_key(drill_task(drill_setup, hardened=True))
        b = chaos_task_key(drill_task(drill_setup, hardened=True))
        assert a == b

    def test_key_separates_plans_modes_and_recovery_grace(self, drill_setup):
        base = drill_task(drill_setup, hardened=True)
        keys = {
            chaos_task_key(base),
            chaos_task_key(drill_task(drill_setup, hardened=False)),
            chaos_task_key(drill_task(drill_setup, hardened=True, seed=1)),
            chaos_task_key(
                ChaosTask(
                    workload=WORKLOAD,
                    plan=base.plan,
                    budget_watts=base.budget_watts,
                    hardened=True,
                    interval=base.interval,
                    allowed_recovery_s=base.allowed_recovery_s * 2,
                )
            ),
            chaos_task_key(
                ChaosTask(
                    workload=WORKLOAD,
                    plan=FaultPlan(faults=(NodeCrash(0, at=0.1),)),
                    budget_watts=base.budget_watts,
                    hardened=True,
                    interval=base.interval,
                    allowed_recovery_s=base.allowed_recovery_s,
                )
            ),
        }
        assert len(keys) == 5

    def test_invalid_tasks_rejected(self, drill_setup):
        with pytest.raises(ValueError, match="policy"):
            ChaosTask(
                workload=WORKLOAD,
                plan=FaultPlan(),
                budget_watts=100.0,
                policy="round-robin",
            )
        with pytest.raises(ValueError, match="budget_watts"):
            ChaosTask(
                workload=WORKLOAD, plan=FaultPlan(), budget_watts=0.0
            )
