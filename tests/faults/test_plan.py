"""Tests for fault specs and plans: validation, determinism, cache keys."""

import pytest

from repro.cache.keys import canonical_json
from repro.faults import (
    DvfsStuck,
    FaultPlan,
    LinkDegraded,
    NodeCrash,
    TelemetryDropout,
    TelemetryNoise,
    acceleration_for,
)
from repro.faults.spec import SECONDS_PER_YEAR
from repro.hardware.reliability import ReliabilityModel


class TestSpecValidation:
    def test_negative_node_rejected(self):
        with pytest.raises(ValueError, match="node_id"):
            NodeCrash(-1, at=0.5)

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError, match="at"):
            TelemetryDropout(0, at=-0.1)

    def test_nonpositive_durations_rejected(self):
        with pytest.raises(ValueError, match="duration"):
            DvfsStuck(0, at=0.0, duration=0.0)
        with pytest.raises(ValueError, match="downtime"):
            NodeCrash(0, at=0.0, downtime=-1.0)
        with pytest.raises(ValueError, match="extra_latency"):
            LinkDegraded(0, at=0.0, duration=1.0, extra_latency=0.0)

    def test_noise_spike_probability_bounds(self):
        with pytest.raises(ValueError, match="spike_probability"):
            TelemetryNoise(0, at=0.0, spike_probability=1.5)

    def test_clears_at(self):
        assert NodeCrash(0, at=1.0).clears_at is None
        assert NodeCrash(0, at=1.0, downtime=0.5).clears_at == 1.5
        assert DvfsStuck(0, at=2.0, duration=3.0).clears_at == 5.0


class TestPlanValidation:
    def test_overlapping_same_kind_same_node_rejected(self):
        with pytest.raises(ValueError, match="overlapping"):
            FaultPlan(
                faults=(
                    TelemetryDropout(0, at=0.0, duration=2.0),
                    TelemetryDropout(0, at=1.0, duration=2.0),
                )
            )

    def test_permanent_fault_blocks_any_later_same_kind(self):
        with pytest.raises(ValueError, match="overlapping"):
            FaultPlan(
                faults=(NodeCrash(0, at=0.0), NodeCrash(0, at=5.0))
            )

    def test_different_nodes_and_kinds_may_overlap(self):
        plan = FaultPlan(
            faults=(
                TelemetryDropout(0, at=0.0, duration=2.0),
                TelemetryDropout(1, at=0.0, duration=2.0),
                DvfsStuck(0, at=0.5, duration=2.0),
            )
        )
        assert len(plan) == 3
        assert len(plan.for_node(0)) == 2
        assert plan.max_node_id == 1

    def test_transition_times_sorted_and_deduplicated(self):
        plan = FaultPlan(
            faults=(
                NodeCrash(0, at=1.0, downtime=1.0),
                TelemetryDropout(1, at=2.0, duration=0.5),
                NodeCrash(2, at=3.0),  # permanent: no clearance
            )
        )
        assert plan.transition_times() == (1.0, 2.0, 2.5, 3.0)

    def test_empty_plan(self):
        plan = FaultPlan()
        assert len(plan) == 0
        assert plan.max_node_id == -1
        assert plan.transition_times() == ()


class TestFromReliability:
    MODEL = ReliabilityModel()

    def test_identical_seeds_identical_plans(self):
        kwargs = dict(
            n_nodes=8, horizon_s=10.0, acceleration=1e7, downtime_s=0.5
        )
        a = FaultPlan.from_reliability(self.MODEL, seed=42, **kwargs)
        b = FaultPlan.from_reliability(self.MODEL, seed=42, **kwargs)
        assert a == b
        assert a.faults == b.faults

    def test_different_seeds_differ(self):
        kwargs = dict(n_nodes=8, horizon_s=10.0, acceleration=1e7)
        a = FaultPlan.from_reliability(self.MODEL, seed=0, **kwargs)
        b = FaultPlan.from_reliability(self.MODEL, seed=1, **kwargs)
        assert a != b

    def test_faults_sorted_and_within_horizon(self):
        accel = acceleration_for(
            self.MODEL, n_nodes=4, horizon_s=5.0, expected_faults=6.0
        )
        plan = FaultPlan.from_reliability(
            self.MODEL, n_nodes=4, horizon_s=5.0, seed=3, acceleration=accel
        )
        assert plan.faults
        times = [f.at for f in plan.faults]
        assert times == sorted(times)
        assert all(0.0 <= t < 5.0 for t in times)

    def test_weights_enable_extra_fault_kinds(self):
        accel = acceleration_for(
            self.MODEL, n_nodes=4, horizon_s=5.0, expected_faults=8.0
        )
        plan = FaultPlan.from_reliability(
            self.MODEL,
            n_nodes=4,
            horizon_s=5.0,
            seed=0,
            acceleration=accel,
            dropout_weight=1.0,
            stuck_weight=1.0,
        )
        kinds = {type(f) for f in plan.faults}
        assert kinds == {NodeCrash, TelemetryDropout, DvfsStuck}

    def test_zero_weights_sample_only_crashes(self):
        accel = acceleration_for(
            self.MODEL, n_nodes=4, horizon_s=5.0, expected_faults=8.0
        )
        plan = FaultPlan.from_reliability(
            self.MODEL, n_nodes=4, horizon_s=5.0, seed=0, acceleration=accel
        )
        assert {type(f) for f in plan.faults} == {NodeCrash}

    def test_acceleration_for_inverts_the_poisson_mean(self):
        accel = acceleration_for(
            self.MODEL, n_nodes=8, horizon_s=2.0, expected_faults=4.0
        )
        rate = self.MODEL.annual_failure_rate * accel / SECONDS_PER_YEAR
        assert rate * 8 * 2.0 == pytest.approx(4.0)


class TestCacheKeying:
    def test_plans_canonically_encode(self):
        plan = FaultPlan(
            faults=(
                NodeCrash(0, at=1.0, downtime=0.5),
                TelemetryNoise(1, at=0.0, duration=2.0, sigma_watts=1.5),
            ),
            seed=7,
        )
        text = canonical_json(plan)
        assert "NodeCrash" in text and "TelemetryNoise" in text

    def test_equal_plans_encode_identically(self):
        make = lambda: FaultPlan(
            faults=(NodeCrash(0, at=1.0, downtime=0.5),), seed=7
        )
        assert canonical_json(make()) == canonical_json(make())

    def test_seed_changes_the_encoding(self):
        a = FaultPlan(faults=(NodeCrash(0, at=1.0),), seed=0)
        b = FaultPlan(faults=(NodeCrash(0, at=1.0),), seed=1)
        assert canonical_json(a) != canonical_json(b)
