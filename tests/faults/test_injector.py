"""Tests for the fault injector against live cluster hardware.

Each test arms a small cluster with a plan, drives plain work through
the sim engine, and asserts on the *symptoms* the defenders see: power
timelines, telemetry visibility, refused DVFS transitions, transfer
times.  Determinism tests assert that identical seeds replay identical
timelines — the property the chaos sweep's caching relies on.
"""

import pytest

from repro.faults import (
    DvfsStuck,
    FaultInjector,
    FaultPlan,
    LinkDegraded,
    NodeCrash,
    TelemetryDropout,
    TelemetryNoise,
    acceleration_for,
)
from repro.hardware.cluster import Cluster
from repro.hardware.spec import ClusterSpec
from repro.hardware.reliability import ReliabilityModel
from repro.powercap.telemetry import ClusterTelemetry


def build(n_nodes: int, plan: FaultPlan) -> "tuple[Cluster, FaultInjector]":
    cluster = Cluster.from_spec(ClusterSpec.homogeneous(n_nodes))
    injector = FaultInjector(cluster, plan)
    injector.install()
    return cluster, injector


class TestCrash:
    PLAN = FaultPlan(faults=(NodeCrash(0, at=1.0, downtime=1.0),))

    def test_crashed_node_draws_nothing_and_goes_dark(self):
        cluster, _ = build(2, self.PLAN)
        cpu = cluster.nodes[0].cpu
        cluster.engine.process(cpu.run_cycles(3.0 * cpu.frequency))
        cluster.engine.run(until=1.5)
        assert not cpu.powered
        assert not cluster.nodes[0].telemetry_visible
        assert cluster.nodes[1].telemetry_visible
        assert cluster.nodes[0].timeline.average_power(1.0, 1.5) == 0.0
        assert cluster.nodes[1].timeline.average_power(1.0, 1.5) > 0.0

    def test_restart_boots_at_the_fastest_point(self):
        cluster, _ = build(1, self.PLAN)
        cpu = cluster.nodes[0].cpu
        cpu.set_frequency(cluster.table.point_for(600e6))
        cluster.engine.process(cpu.run_cycles(3.0 * cpu.frequency))
        cluster.engine.run(until=2.5)
        assert cpu.powered
        assert cpu.frequency == cluster.table.fastest.frequency

    def test_downtime_delays_the_work(self):
        def finish_time(plan: FaultPlan) -> float:
            cluster = Cluster.from_spec(ClusterSpec.homogeneous(1))
            FaultInjector(cluster, plan).install()
            cpu = cluster.nodes[0].cpu
            cluster.engine.process(cpu.run_cycles(2.0 * cpu.frequency))
            cluster.engine.run()
            return cluster.engine.now

        faulted = finish_time(self.PLAN)
        clean = finish_time(FaultPlan())
        # Instant checkpoint-restart: the outage costs exactly its downtime.
        assert faulted == pytest.approx(clean + 1.0)


class TestStuckDvfs:
    PLAN = FaultPlan(faults=(DvfsStuck(0, at=0.5, duration=1.0),))

    def test_transitions_silently_refused_while_stuck(self):
        cluster, _ = build(1, self.PLAN)
        cpu = cluster.nodes[0].cpu
        slow = cluster.table.point_for(600e6)
        cluster.engine.process(cpu.run_cycles(5.0 * cpu.frequency))
        cluster.engine.run(until=0.75)
        before = cpu.frequency
        cpu.set_frequency(slow)  # no exception: the knob just doesn't move
        assert cpu.frequency == before
        assert cpu.refused_transitions == 1

    def test_transitions_work_again_after_clearance(self):
        cluster, _ = build(1, self.PLAN)
        cpu = cluster.nodes[0].cpu
        slow = cluster.table.point_for(600e6)
        cluster.engine.process(cpu.run_cycles(5.0 * cpu.frequency))
        cluster.engine.run(until=2.0)
        cpu.set_frequency(slow)
        assert cpu.frequency == slow.frequency


class TestTelemetryFaults:
    def test_dropout_hides_the_node_while_it_keeps_drawing(self):
        plan = FaultPlan(
            faults=(TelemetryDropout(0, at=0.5, duration=1.0),)
        )
        cluster, _ = build(2, plan)
        telemetry = ClusterTelemetry(cluster)
        for node in cluster.nodes:
            cluster.engine.process(
                node.cpu.run_cycles(3.0 * node.cpu.frequency)
            )
        cluster.engine.run(until=1.0)
        visible = {s.node_id for s in telemetry.sample()}
        assert visible == {1}
        # The dark node is a *measurement* fault: it still draws power.
        assert cluster.nodes[0].timeline.average_power(0.5, 1.0) > 0.0
        cluster.engine.run(until=2.0)
        assert {s.node_id for s in telemetry.sample()} == {0, 1}

    def test_noise_perturbs_readings_deterministically(self):
        plan = FaultPlan(
            faults=(
                TelemetryNoise(0, at=0.0, duration=9.0, sigma_watts=2.0),
            ),
            seed=5,
        )

        def observed() -> "tuple[float, float]":
            cluster, _ = build(1, plan)
            telemetry = ClusterTelemetry(cluster)
            cpu = cluster.nodes[0].cpu
            cluster.engine.process(cpu.run_cycles(2.0 * cpu.frequency))
            cluster.engine.run(until=1.0)
            (sample,) = telemetry.sample()
            true_watts = cluster.nodes[0].timeline.average_power(0.0, 1.0)
            return sample.avg_watts, true_watts

        first_observed, first_true = observed()
        second_observed, _ = observed()
        assert first_observed != first_true  # the meter lies...
        assert first_observed == second_observed  # ...reproducibly


class TestLinkDegraded:
    def test_penalty_slows_transfers(self):
        def transfer_time(plan: FaultPlan) -> float:
            cluster, _ = build(2, plan)
            result = {}

            def mover():
                result["t"] = yield from cluster.fabric.transfer(
                    0, 1, 1_000_000
                )

            cluster.engine.process(mover())
            cluster.engine.run()
            return result["t"]

        plan = FaultPlan(
            faults=(
                LinkDegraded(0, at=0.0, duration=30.0, extra_latency=0.05),
            )
        )
        assert transfer_time(plan) == pytest.approx(
            transfer_time(FaultPlan()) + 0.05
        )


class TestDeterminism:
    def test_identical_seeds_identical_timelines(self):
        model = ReliabilityModel()
        accel = acceleration_for(
            model, n_nodes=4, horizon_s=4.0, expected_faults=5.0
        )

        def timeline(seed: int):
            plan = FaultPlan.from_reliability(
                model,
                n_nodes=4,
                horizon_s=4.0,
                seed=seed,
                acceleration=accel,
                downtime_s=0.5,
                dropout_weight=1.0,
                stuck_weight=1.0,
            )
            cluster = Cluster.from_spec(ClusterSpec.homogeneous(4))
            injector = FaultInjector(cluster, plan)
            injector.install()
            for node in cluster.nodes:
                cluster.engine.process(
                    node.cpu.run_cycles(4.0 * node.cpu.frequency)
                )
            cluster.engine.run()
            return injector.timeline

        first = timeline(seed=11)
        assert first  # the accelerated plan actually injected something
        assert first == timeline(seed=11)
        assert first != timeline(seed=12)


class TestGuards:
    def test_plan_beyond_cluster_size_rejected(self):
        cluster = Cluster.from_spec(ClusterSpec.homogeneous(2))
        plan = FaultPlan(faults=(NodeCrash(5, at=0.0),))
        with pytest.raises(ValueError, match="node 5"):
            FaultInjector(cluster, plan)

    def test_double_install_rejected(self):
        cluster = Cluster.from_spec(ClusterSpec.homogeneous(1))
        injector = FaultInjector(cluster, FaultPlan())
        injector.install()
        with pytest.raises(RuntimeError, match="already installed"):
            injector.install()
