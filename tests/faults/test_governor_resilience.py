"""Tests for the hardened governor's degraded-mode defenses.

Each scenario injects one fault class against a live governed cluster
and asserts on the specific defense: stale fallback, the crash
watchdog + budget redistribution, rejoin containment, and the bounded
stuck-frequency retry loop.  The fault-free case pins down that the
defenses and the invariant monitor stay silent when nothing is wrong.
"""

import pytest

from repro.faults import (
    DvfsStuck,
    FaultInjector,
    FaultPlan,
    NodeCrash,
    TelemetryDropout,
)
from repro.hardware.cluster import Cluster
from repro.hardware.spec import ClusterSpec
from repro.powercap import (
    CapGovernor,
    CapGovernorConfig,
    PowerBudget,
    ResilienceConfig,
)

INTERVAL = 0.05


def drive(
    n_nodes: int,
    plan: FaultPlan,
    budget_watts: float,
    seconds: float = 1.0,
    resilience: "ResilienceConfig | None" = None,
    busy=None,
):
    """Run an all-busy governed job with the plan armed; return governor.

    ``busy`` maps node_id -> (start, stop) busy span; unlisted nodes
    compute for the whole run.  Work always outlasts ``seconds`` so the
    governor, not job completion, decides what each window sees.
    """
    cluster = Cluster.from_spec(ClusterSpec.homogeneous(n_nodes))
    FaultInjector(cluster, plan).install()
    governor = CapGovernor(
        cluster,
        PowerBudget(cluster_watts=budget_watts),
        config=CapGovernorConfig(interval=INTERVAL),
        resilience=resilience or ResilienceConfig(),
    )
    governor.start(cluster.engine)

    def phased(cpu, start: float, stop: float):
        if start > 0:
            yield cluster.engine.timeout(start)
        yield from cpu.run_cycles((stop - start) * cpu.frequency)

    for node in cluster.nodes:
        start, stop = (busy or {}).get(node.node_id, (0.0, 2.0 * seconds))
        cluster.engine.process(phased(node.cpu, start, stop))
    cluster.engine.run(until=seconds)
    governor.stop()
    return cluster, governor


def actions(governor, node_id=None):
    return [
        e.action
        for e in governor.repair_log
        if node_id is None or e.node_id == node_id
    ]


class TestStaleFallback:
    def test_dark_but_drawing_node_triggers_fallback_not_death(self):
        plan = FaultPlan(
            faults=(TelemetryDropout(0, at=0.1, duration=0.6),)
        )
        _, governor = drive(4, plan, budget_watts=100.0)
        acts = actions(governor, node_id=0)
        assert "stale-fallback" in acts
        assert "declared-dead" not in acts  # the PDU still sees it draw
        assert governor.dead_nodes == frozenset()


class TestWatchdog:
    PLAN = FaultPlan(faults=(NodeCrash(0, at=0.1),))  # never restarts

    def test_dead_node_is_declared_and_floored(self):
        _, governor = drive(4, self.PLAN, budget_watts=100.0)
        assert "declared-dead" in actions(governor, node_id=0)
        assert governor.dead_nodes == frozenset({0})
        floor = governor._floor.frequency
        # The last *allocated* window pins the dead node at the floor
        # (the trailing partial reports actual clocks, and a dead node's
        # clock is frozen wherever it crashed — drawing nothing).
        assert governor.windows[-2].frequencies[0] == floor

    def test_dead_budget_share_redistributes_to_survivors(self):
        _, governor = drive(4, self.PLAN, budget_watts=100.0)
        # Steady-state before the crash vs after: the survivors inherit
        # the dead node's share and run strictly faster.
        before = governor.windows[1].frequencies
        after = governor.windows[-2].frequencies
        for node_id in (1, 2, 3):
            assert after[node_id] > before[node_id]


class TestRejoinContainment:
    PLAN = FaultPlan(faults=(NodeCrash(0, at=0.1, downtime=0.3),))

    def test_rejoin_is_contained_at_the_floor_then_released(self):
        cluster, governor = drive(4, self.PLAN, budget_watts=100.0)
        acts = actions(governor, node_id=0)
        assert "declared-dead" in acts
        assert "rejoined" in acts
        rejoin_time = next(
            e.time for e in governor.repair_log if e.action == "rejoined"
        )
        floor = governor._floor.frequency
        contained = next(
            w for w in governor.windows if w.t1 >= rejoin_time
        )
        assert contained.frequencies[0] == floor
        # The reboot-at-max hazard is actually defeated on the hardware:
        # the node's clock is at the floor, not the ladder's fastest.
        assert governor.windows[-1].frequencies[0] > floor
        assert cluster.nodes[0].cpu.frequency > floor


class TestStuckRetry:
    def stuck_run(self, duration_windows: float, attempts: int):
        # Node 0 computes alone first (allocated fast), then goes quiet
        # while the other ramps up — the governor must now lower node 0,
        # and the stuck regulator silently refuses the down-shift.  The
        # fault spans the 0.3 s phase flip plus ``duration_windows``
        # control windows, so the refusals start exactly when the
        # governor first wants the down-shift.
        plan = FaultPlan(
            faults=(
                DvfsStuck(
                    0, at=0.0, duration=0.3 + duration_windows * INTERVAL
                ),
            )
        )
        _, governor = drive(
            2,
            plan,
            budget_watts=45.0,
            seconds=1.6,
            resilience=ResilienceConfig(max_reapply_attempts=attempts),
            busy={0: (0.0, 0.3), 1: (0.3, 4.0)},
        )
        return governor

    def test_bounded_retries_back_off_exponentially_then_give_up(self):
        governor = self.stuck_run(duration_windows=40.0, attempts=3)
        log = [
            e
            for e in governor.repair_log
            if e.node_id == 0 and e.action in ("reapply", "gave-up")
        ]
        assert [e.action for e in log] == [
            "reapply",
            "reapply",
            "reapply",
            "gave-up",
        ]
        gaps = [
            round((b.time - a.time) / INTERVAL)
            for a, b in zip(log, log[1:])
        ]
        assert gaps == [1, 2, 4]  # base × 2^(k−1) windows between tries

    def test_reapply_succeeds_once_the_regulator_unsticks(self):
        governor = self.stuck_run(duration_windows=3.0, attempts=5)
        acts = actions(governor, node_id=0)
        assert "reapply" in acts
        assert "unstuck" in acts
        assert "gave-up" not in acts


class TestFaultFree:
    def test_no_repairs_and_no_invariant_noise_without_faults(self):
        _, governor = drive(4, FaultPlan(), budget_watts=100.0)
        assert governor.repair_log == []
        assert governor.dead_nodes == frozenset()
        assert governor.monitor.count == 0
        assert governor.violation_count == 0
