"""Reliability ↔ faults integration: sampled rates match the model.

`FaultPlan.from_reliability` promises a Poisson crash process at
``annual_failure_rate × acceleration / SECONDS_PER_YEAR`` per node.
These tests check the promise statistically — sampled counts sit near
the configured mean, scale linearly with acceleration, and respect the
no-overlap hold-off — with fixed seeds, so every run sees the same
draw and the tolerances are exact, not flaky.
"""

import pytest

from repro.faults import FaultPlan, NodeCrash, acceleration_for
from repro.faults.spec import SECONDS_PER_YEAR
from repro.hardware.reliability import ReliabilityModel

MODEL = ReliabilityModel()  # 2.5 %/year at the reference power
N_NODES = 32
HORIZON = 10.0
EXPECTED = 320.0  # 1 crash/node-second: large enough for tight stats
#: Tiny restart hold-off so the renewal process stays ≈ Poisson (the
#: hold lowers the effective rate by hold/(1/rate + hold) ≈ 1 %).
DOWNTIME = 0.01


def sample_counts(seed: int, expected: float = EXPECTED) -> int:
    accel = acceleration_for(MODEL, N_NODES, HORIZON, expected)
    plan = FaultPlan.from_reliability(
        MODEL,
        N_NODES,
        HORIZON,
        seed=seed,
        acceleration=accel,
        downtime_s=DOWNTIME,
    )
    assert all(isinstance(f, NodeCrash) for f in plan.faults)
    return len(plan.faults)


def test_sampled_count_matches_the_configured_mean():
    # Poisson sd is √320 ≈ 18, so 10 % (32 crashes) is nearly 2σ —
    # a real rate bug (2×, off-by-SECONDS_PER_YEAR) lands far outside.
    assert sample_counts(seed=0) == pytest.approx(EXPECTED, rel=0.10)


def test_mean_over_many_seeds_is_tighter():
    counts = [sample_counts(seed) for seed in range(10)]
    mean = sum(counts) / len(counts)
    assert mean == pytest.approx(EXPECTED, rel=0.04)
    assert len(set(counts)) > 1  # seeds genuinely vary the draw


def test_count_scales_linearly_with_acceleration():
    half = sum(sample_counts(s, EXPECTED / 2) for s in range(6)) / 6
    full = sum(sample_counts(s, EXPECTED) for s in range(6)) / 6
    assert full / half == pytest.approx(2.0, rel=0.10)


def test_acceleration_for_round_trips_the_rate():
    accel = acceleration_for(MODEL, N_NODES, HORIZON, EXPECTED)
    rate = MODEL.annual_failure_rate * accel / SECONDS_PER_YEAR
    assert rate * N_NODES * HORIZON == pytest.approx(EXPECTED)


def test_per_node_crashes_respect_the_restart_holdoff():
    accel = acceleration_for(MODEL, N_NODES, HORIZON, EXPECTED)
    plan = FaultPlan.from_reliability(
        MODEL,
        N_NODES,
        HORIZON,
        seed=3,
        acceleration=accel,
        downtime_s=DOWNTIME,
    )
    for node in range(N_NODES):
        times = [f.at for f in plan.for_node(node)]
        assert times == sorted(times)
        for prev, cur in zip(times, times[1:]):
            assert cur - prev >= DOWNTIME  # down nodes cannot crash again


def test_unaccelerated_rate_injects_nothing_in_seconds_of_simulation():
    # 2.5 %/year over 10 simulated seconds: the accelerator exists for a
    # reason.
    plan = FaultPlan.from_reliability(MODEL, N_NODES, HORIZON, seed=0)
    assert plan.faults == ()
