"""Tests for the governor policies and the ondemand strategy."""

import pytest

from repro.dvs.ondemand import OndemandConfig, OndemandStrategy
from repro.dvs.policy import cpuspeed_decision, proportional_decision
from repro.hardware.cluster import Cluster
from repro.hardware.spec import ClusterSpec
from repro.util.units import MHZ
from repro.workloads.nas_ft import NasFT

LADDER = [600e6, 800e6, 1000e6, 1200e6, 1400e6]


# ---------------------------------------------------------------------------
# pure policies
# ---------------------------------------------------------------------------
def test_cpuspeed_policy_jump_to_max():
    assert cpuspeed_decision(0.95, 600e6, LADDER) == 1400e6


def test_cpuspeed_policy_step_down_one():
    assert cpuspeed_decision(0.1, 1400e6, LADDER) == 1200e6
    assert cpuspeed_decision(0.1, 800e6, LADDER) == 600e6


def test_cpuspeed_policy_clamps_at_bottom():
    assert cpuspeed_decision(0.0, 600e6, LADDER) == 600e6


def test_cpuspeed_policy_hold_in_between():
    assert cpuspeed_decision(0.5, 1000e6, LADDER) == 1000e6


def test_cpuspeed_policy_validates():
    with pytest.raises(ValueError):
        cpuspeed_decision(1.5, 600e6, LADDER)
    with pytest.raises(ValueError):
        cpuspeed_decision(0.5, 600e6, [])


def test_proportional_policy_picks_covering_frequency():
    # 50% of max = 700 MHz needed → 800 MHz is the slowest covering point
    assert proportional_decision(0.5, LADDER) == 800e6
    assert proportional_decision(0.0, LADDER) == 600e6
    assert proportional_decision(1.0, LADDER) == 1400e6


def test_proportional_policy_headroom():
    # 50% with 1.5 headroom → 1050 MHz needed → 1200 MHz
    assert proportional_decision(0.5, LADDER, headroom=1.5) == 1200e6


def test_proportional_policy_validates():
    with pytest.raises(ValueError):
        proportional_decision(0.5, [])


# ---------------------------------------------------------------------------
# ondemand strategy on the cluster
# ---------------------------------------------------------------------------
def test_ondemand_scales_idle_cluster_down():
    cluster = Cluster.from_spec(ClusterSpec.homogeneous(2))
    strat = OndemandStrategy(OndemandConfig(interval=0.1))
    strat.prepare(cluster)
    cluster.engine.timeout(2.0)
    cluster.engine.run(until=2.0)
    strat.teardown(cluster)
    assert all(n.cpu.frequency == 600 * MHZ for n in cluster.nodes)


def test_ondemand_is_also_blind_to_mpi_busy_waiting():
    """The paper's §4 argument generalised: ondemand keeps MPI ranks fast
    because the progress engine reads as busy."""
    from repro.analysis.runner import run_measured

    workload = NasFT("S", n_ranks=4, iterations=3)
    run = run_measured(workload, OndemandStrategy(OndemandConfig(interval=0.2)))
    # Energy within a few percent of flat-out: no meaningful savings.
    static_run = run_measured(
        workload,
        __import__("repro.dvs.strategy", fromlist=["StaticStrategy"]).StaticStrategy(
            1400 * MHZ
        ),
    )
    assert run.point.energy > 0.9 * static_run.point.energy


def test_ondemand_config_validation():
    with pytest.raises(ValueError):
        OndemandConfig(interval=0.0)
    with pytest.raises(ValueError):
        OndemandConfig(headroom=0.0)
