"""Tests for the cpuspeed daemon emulation."""

import pytest

from repro.dvs.cpufreq import CpuFreq
from repro.dvs.cpuspeed import CpuspeedConfig, CpuspeedDaemon
from repro.hardware.cluster import Cluster
from repro.hardware.spec import ClusterSpec
from repro.util.units import MHZ


def make_daemon(cluster, **cfg):
    node = cluster.nodes[0]
    cpufreq = CpuFreq(node, cluster.calibration)
    daemon = CpuspeedDaemon(node, cpufreq, CpuspeedConfig(**cfg))
    return node, daemon


def test_config_validation():
    with pytest.raises(ValueError):
        CpuspeedConfig(interval=0.0)
    with pytest.raises(ValueError):
        CpuspeedConfig(up_threshold=0.2, down_threshold=0.5)
    with pytest.raises(ValueError):
        CpuspeedConfig(up_threshold=1.5)


def test_idle_cpu_steps_down_to_minimum():
    cluster = Cluster.from_spec(ClusterSpec.homogeneous(1))
    node, daemon = make_daemon(cluster, interval=1.0)
    daemon.start(cluster.engine)
    cluster.engine.timeout(10.0)
    cluster.engine.run(until=10.0)
    daemon.stop()
    # Four 1-second idle intervals step 1400→1200→1000→800→600.
    assert node.cpu.frequency == 600 * MHZ


def test_busy_cpu_stays_at_maximum():
    cluster = Cluster.from_spec(ClusterSpec.homogeneous(1))
    node, daemon = make_daemon(cluster)
    daemon.start(cluster.engine)

    def load():
        yield from node.cpu.run_cycles(1.4e9 * 20)  # ~20 s of work

    p = cluster.engine.process(load())
    cluster.engine.run(until=10.0)
    daemon.stop()
    assert node.cpu.frequency == 1400 * MHZ
    assert all(util >= 0.9 for _, util, _ in daemon.decisions)


def test_spinning_cpu_fools_the_daemon():
    """The paper's central artifact: busy-wait keeps cpuspeed at max."""
    cluster = Cluster.from_spec(ClusterSpec.homogeneous(1))
    node, daemon = make_daemon(cluster)
    daemon.start(cluster.engine)
    never = cluster.engine.event()

    def spinner():
        yield from node.cpu.wait_event(never, spin_threshold=float("inf"))

    cluster.engine.process(spinner())
    cluster.engine.run(until=8.0)
    daemon.stop()
    assert node.cpu.frequency == 1400 * MHZ


def test_daemon_rescales_up_after_idle_period():
    cluster = Cluster.from_spec(ClusterSpec.homogeneous(1))
    node, daemon = make_daemon(cluster)
    daemon.start(cluster.engine)
    eng = cluster.engine

    def load():
        yield eng.timeout(6.0)  # idle: daemon steps down
        yield from node.cpu.run_cycles(600e6 * 5)  # then sustained work

    eng.process(load())
    eng.run(until=6.5)
    assert node.cpu.frequency == 600 * MHZ  # scaled all the way down
    eng.timeout(4.0)
    eng.run(until=9.0)
    daemon.stop()
    assert node.cpu.frequency == 1400 * MHZ  # busy interval → jump to max


def test_daemon_stop_halts_decisions():
    cluster = Cluster.from_spec(ClusterSpec.homogeneous(1))
    node, daemon = make_daemon(cluster)
    daemon.start(cluster.engine)
    cluster.engine.run(until=3.5)
    n = len(daemon.decisions)
    daemon.stop()
    cluster.engine.timeout(5.0)
    cluster.engine.run(until=8.5)
    assert len(daemon.decisions) == n


def test_daemon_cannot_start_twice():
    cluster = Cluster.from_spec(ClusterSpec.homogeneous(1))
    _, daemon = make_daemon(cluster)
    daemon.start(cluster.engine)
    with pytest.raises(RuntimeError):
        daemon.start(cluster.engine)


def test_intermediate_utilization_holds_frequency():
    """Between thresholds the daemon leaves the frequency alone."""
    cluster = Cluster.from_spec(ClusterSpec.homogeneous(1))
    node, daemon = make_daemon(cluster, up_threshold=0.9, down_threshold=0.25)
    node.cpu.set_frequency(cluster.table.point_for(1000 * MHZ))
    daemon.start(cluster.engine)
    eng = cluster.engine

    def half_load():
        # ~50% duty cycle: 0.5 s work (at 1 GHz), 0.5 s idle, repeated
        for _ in range(6):
            yield from node.cpu.run_cycles(0.5e9)
            yield eng.timeout(0.5)

    eng.process(half_load())
    eng.run(until=5.0)
    daemon.stop()
    assert node.cpu.frequency == 1000 * MHZ
