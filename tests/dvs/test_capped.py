"""Tests for the ceiling-clamped CPUFreq setter."""

import pytest

from repro.dvs.capped import CappedCpuFreq
from repro.hardware.cluster import Cluster
from repro.hardware.spec import ClusterSpec
from repro.util.units import MHZ


@pytest.fixture
def cluster():
    return Cluster.from_spec(ClusterSpec.homogeneous(1))


@pytest.fixture
def capped(cluster):
    return CappedCpuFreq(cluster.nodes[0], cluster.calibration)


def test_default_ceiling_is_the_fastest_point(capped):
    assert capped.ceiling == 1400 * MHZ


def test_initial_ceiling_snaps_to_the_ladder(cluster):
    capped = CappedCpuFreq(
        cluster.nodes[0], cluster.calibration, max_frequency=1150 * MHZ
    )
    assert capped.ceiling == 1200 * MHZ


def test_resolve_clamps_requests_to_the_ceiling(capped):
    capped.set_ceiling(1000 * MHZ)
    assert capped.resolve(1400 * MHZ).mhz == 1000
    assert capped.resolve(1200 * MHZ).mhz == 1000
    # Requests below the ceiling pass through untouched.
    assert capped.resolve(800 * MHZ).mhz == 800


def test_lowering_the_ceiling_forces_an_immediate_switch(cluster, capped):
    assert cluster.nodes[0].cpu.frequency == 1400 * MHZ
    capped.set_ceiling(800 * MHZ)
    assert cluster.nodes[0].cpu.frequency == 800 * MHZ


def test_raising_the_ceiling_does_not_change_speed(cluster, capped):
    capped.set_ceiling(800 * MHZ)
    capped.set_ceiling(1400 * MHZ)
    # Headroom returned, but the controller in charge decides to use it.
    assert cluster.nodes[0].cpu.frequency == 800 * MHZ
    assert capped.resolve(1400 * MHZ).mhz == 1400


def test_ceiling_changes_are_logged(cluster, capped):
    capped.set_ceiling(1000 * MHZ)
    capped.set_ceiling(1000 * MHZ)  # no-op: same snapped point
    capped.set_ceiling(600 * MHZ)
    assert [f / MHZ for _, f in capped.ceiling_changes] == [1400, 1000, 600]


def test_set_speed_now_respects_the_ceiling(cluster, capped):
    capped.set_ceiling(1000 * MHZ)
    capped.set_speed_now(1400 * MHZ)
    assert cluster.nodes[0].cpu.frequency == 1000 * MHZ
