"""Tests for the CPUFreq interface."""

import pytest

from repro.dvs.cpufreq import CpuFreq
from repro.hardware.cluster import Cluster
from repro.hardware.spec import ClusterSpec
from repro.util.units import MHZ


@pytest.fixture
def cluster():
    return Cluster.from_spec(ClusterSpec.homogeneous(1))


@pytest.fixture
def cpufreq(cluster):
    return CpuFreq(cluster.nodes[0], cluster.calibration)


def run(cluster, gen):
    p = cluster.engine.process(gen)
    return cluster.engine.run(until=p)


def test_reports_available_frequencies(cpufreq):
    assert [f / MHZ for f in cpufreq.available_frequencies] == [
        600,
        800,
        1000,
        1200,
        1400,
    ]


def test_current_frequency_tracks_cpu(cluster, cpufreq):
    assert cpufreq.current_frequency == 1400 * MHZ
    cpufreq.set_speed_now(600 * MHZ)
    assert cpufreq.current_frequency == 600 * MHZ


def test_resolve_snaps_to_ladder(cpufreq):
    assert cpufreq.resolve(999e6).mhz == 1000
    assert cpufreq.resolve(100e6).mhz == 600


def test_set_speed_now_is_instant(cluster, cpufreq):
    t0 = cluster.engine.now
    cpufreq.set_speed_now(800 * MHZ)
    assert cluster.engine.now == t0
    assert cluster.nodes[0].cpu.frequency == 800 * MHZ


def test_set_speed_pays_transition_cost(cluster, cpufreq):
    cal = cluster.calibration
    expected = cal.transition_latency + cal.transition_penalty

    def prog():
        yield from cpufreq.set_speed(600 * MHZ)
        return cluster.engine.now

    assert run(cluster, prog()) == pytest.approx(expected)
    assert cpufreq.current_frequency == 600 * MHZ


def test_set_speed_same_target_is_free(cluster, cpufreq):
    def prog():
        yield from cpufreq.set_speed(1400 * MHZ)
        return cluster.engine.now

    assert run(cluster, prog()) == 0.0


def test_transition_cost_counts_as_busy(cluster, cpufreq):
    def prog():
        yield from cpufreq.set_speed(600 * MHZ)

    run(cluster, prog())
    cluster.finalize()
    stats = cluster.nodes[0].procstat.snapshot()
    assert stats.busy == pytest.approx(
        cluster.calibration.transition_latency
        + cluster.calibration.transition_penalty
    )
