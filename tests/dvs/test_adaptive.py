"""Tests for the adaptive per-region strategy."""

import pytest

from repro.analysis.runner import run_measured
from repro.dvs.adaptive import AdaptiveConfig, AdaptiveController, AdaptiveStrategy
from repro.dvs.cpufreq import CpuFreq
from repro.hardware.cluster import Cluster
from repro.hardware.spec import ClusterSpec
from repro.util.units import MHZ
from repro.workloads.nas_ft import NasFT
from repro.workloads.synthetic import SyntheticMix


def test_config_validation():
    with pytest.raises(ValueError):
        AdaptiveConfig(slowdown_tolerance=0.0)


def test_learns_to_scale_slack_region():
    """FT's fft() region is slack-heavy: after two calibration runs the
    controller decides to run it slow."""
    workload = NasFT("S", n_ranks=4, iterations=5)
    strategy = AdaptiveStrategy(1400 * MHZ)
    run = run_measured(workload, strategy)
    for ctl in strategy.controllers:
        assert ctl.decision_for("fft") is True
    # And it saves energy relative to static base.
    static = run_measured(
        NasFT("S", n_ranks=4, iterations=5),
        __import__("repro.dvs.strategy", fromlist=["StaticStrategy"]).StaticStrategy(
            1400 * MHZ
        ),
    )
    assert run.point.energy < 0.9 * static.point.energy


def test_rejects_frequency_sensitive_region():
    """A pure-compute region slows ~2.3x at 600 MHz: the controller must
    decide against scaling it."""
    workload = SyntheticMix(
        0.9, 0.05, 0.05, iteration_seconds=0.2, iterations=4, n_ranks=4
    )
    # SyntheticMix marks its alltoall as "exchange"; wrap the *compute* by
    # running a mix whose marked region is the exchange — instead build a
    # custom program with a compute region.
    from repro.workloads.base import Workload, execute_cost
    from repro.hardware.memory import AccessCost

    class ComputeRegion(Workload):
        name = "compute-region"
        n_ranks = 1

        def program(self, comm, dvs):
            cost = AccessCost(cpu_cycles=0.2 * 1.4e9, stall_seconds=0.0)
            for _ in range(4):
                yield from dvs.region_enter("crunch")
                yield from execute_cost(comm, cost)
                yield from dvs.region_exit("crunch")
            return None

    strategy = AdaptiveStrategy(1400 * MHZ, config=AdaptiveConfig(0.15))
    run = run_measured(ComputeRegion(), strategy)
    ctl = strategy.controllers[0]
    assert ctl.decision_for("crunch") is False
    # After the one calibration probe (which alone costs ~0.27 s of the
    # 0.8 s base runtime), later iterations run at base: the total
    # slowdown is bounded by that single probe, not by 2.33x overall.
    static_delay = 4 * 0.2
    assert run.point.delay < static_delay * 1.4


def test_calibration_phases_progress():
    cluster = Cluster.from_spec(ClusterSpec.homogeneous(1))
    cpufreq = CpuFreq(cluster.nodes[0], cluster.calibration)
    ctl = AdaptiveController(cpufreq, 1400 * MHZ, 600 * MHZ)

    def program():
        for _ in range(3):
            yield from ctl.region_enter("r")
            yield cluster.engine.timeout(1.0)  # frequency-insensitive body
            yield from ctl.region_exit("r")
        return None

    p = cluster.engine.process(program())
    cluster.engine.run(until=p)
    assert ctl.decision_for("r") is True


def test_exit_without_enter_raises():
    cluster = Cluster.from_spec(ClusterSpec.homogeneous(1))
    cpufreq = CpuFreq(cluster.nodes[0], cluster.calibration)
    ctl = AdaptiveController(cpufreq, 1400 * MHZ, 600 * MHZ)

    def program():
        yield from ctl.region_exit("never")

    p = cluster.engine.process(program())
    with pytest.raises(RuntimeError, match="no matching enter"):
        cluster.engine.run(until=p)


def test_adaptive_close_to_hand_tuned_dynamic():
    """On FT the learned policy approaches the paper's hand-tuned one."""
    from repro.dvs.strategy import DynamicStrategy

    adaptive = run_measured(
        NasFT("S", n_ranks=4, iterations=6), AdaptiveStrategy(1400 * MHZ)
    )
    hand_tuned = run_measured(
        NasFT("S", n_ranks=4, iterations=6),
        DynamicStrategy(1400 * MHZ, regions=["fft"]),
    )
    # Within 10% energy of the oracle (it pays two calibration iterations).
    assert adaptive.point.energy < hand_tuned.point.energy * 1.10
