"""Tests for DVS strategies and the dynamic controller."""

import pytest

from repro.dvs import (
    CpuspeedStrategy,
    DynamicController,
    DynamicStrategy,
    NullController,
    StaticStrategy,
)
from repro.dvs.cpufreq import CpuFreq
from repro.hardware.cluster import Cluster
from repro.hardware.spec import ClusterSpec
from repro.simmpi import run_spmd
from repro.util.units import MHZ


def test_static_strategy_sets_all_nodes():
    cluster = Cluster.from_spec(ClusterSpec.homogeneous(4))
    strat = StaticStrategy(800 * MHZ)
    strat.prepare(cluster)
    assert all(n.cpu.frequency == 800 * MHZ for n in cluster.nodes)
    assert strat.name == "stat@800MHz"
    assert isinstance(strat.controller(None), NullController)


def test_cpuspeed_strategy_starts_daemons_at_max():
    cluster = Cluster.from_spec(ClusterSpec.homogeneous(3))
    strat = CpuspeedStrategy()
    strat.prepare(cluster)
    assert len(strat.daemons) == 3
    assert all(n.cpu.frequency == 1400 * MHZ for n in cluster.nodes)
    # Idle cluster: daemons scale everyone down over time.
    cluster.engine.timeout(10.0)
    cluster.engine.run(until=10.0)
    strat.teardown(cluster)
    assert all(n.cpu.frequency == 600 * MHZ for n in cluster.nodes)


def test_dynamic_strategy_scales_inside_regions():
    cluster = Cluster.from_spec(ClusterSpec.homogeneous(2))
    strat = DynamicStrategy(base_frequency=1000 * MHZ)
    strat.prepare(cluster)
    seen = []

    def program(comm, strategy):
        dvs = strategy.controller(comm)
        seen.append(comm.cpu.frequency)
        yield from dvs.region_enter("fft")
        seen.append(comm.cpu.frequency)
        yield from comm.cpu.run_cycles(1e6)
        yield from dvs.region_exit("fft")
        seen.append(comm.cpu.frequency)
        return None

    run_spmd(cluster, program, n_ranks=1, program_args=(strat,))
    assert seen == [1000 * MHZ, 600 * MHZ, 1000 * MHZ]


def test_dynamic_strategy_custom_low_frequency():
    cluster = Cluster.from_spec(ClusterSpec.homogeneous(1))
    strat = DynamicStrategy(base_frequency=1400 * MHZ, low_frequency=800 * MHZ)
    strat.prepare(cluster)

    def program(comm, strategy):
        dvs = strategy.controller(comm)
        yield from dvs.region_enter("x")
        freq = comm.cpu.frequency
        yield from dvs.region_exit("x")
        return freq

    result = run_spmd(cluster, program, program_args=(strat,))
    assert result.returns[0] == 800 * MHZ


def test_dynamic_controller_region_filter():
    cluster = Cluster.from_spec(ClusterSpec.homogeneous(1))
    cpufreq = CpuFreq(cluster.nodes[0], cluster.calibration)
    ctl = DynamicController(cpufreq, 600 * MHZ, regions=["fft"])

    def program():
        yield from ctl.region_enter("setup")  # filtered out: no effect
        assert cpufreq.current_frequency == 1400 * MHZ
        yield from ctl.region_enter("fft")
        assert cpufreq.current_frequency == 600 * MHZ
        yield from ctl.region_exit("fft")
        yield from ctl.region_exit("setup")
        return cpufreq.current_frequency

    p = cluster.engine.process(program())
    assert cluster.engine.run(until=p) == 1400 * MHZ


def test_dynamic_controller_mismatched_exit_raises():
    cluster = Cluster.from_spec(ClusterSpec.homogeneous(1))
    cpufreq = CpuFreq(cluster.nodes[0], cluster.calibration)
    ctl = DynamicController(cpufreq, 600 * MHZ)

    def program():
        yield from ctl.region_exit("never-entered")

    with pytest.raises(RuntimeError, match="no open region"):
        p = cluster.engine.process(program())
        cluster.engine.run(until=p)


def test_dynamic_nested_regions_restore_in_order():
    cluster = Cluster.from_spec(ClusterSpec.homogeneous(1))
    cpufreq = CpuFreq(cluster.nodes[0], cluster.calibration)
    cpufreq.set_speed_now(1200 * MHZ)
    ctl = DynamicController(cpufreq, 600 * MHZ)

    def program():
        yield from ctl.region_enter("outer")
        yield from ctl.region_enter("inner")
        yield from ctl.region_exit("inner")
        mid = cpufreq.current_frequency  # back to outer's low speed
        yield from ctl.region_exit("outer")
        return (mid, cpufreq.current_frequency)

    p = cluster.engine.process(program())
    mid, final = cluster.engine.run(until=p)
    assert mid == 600 * MHZ
    assert final == 1200 * MHZ


def test_null_controller_is_free():
    cluster = Cluster.from_spec(ClusterSpec.homogeneous(1))
    ctl = NullController()

    def program():
        yield from ctl.region_enter("fft")
        yield from ctl.region_exit("fft")
        return cluster.engine.now

    p = cluster.engine.process(program())
    assert cluster.engine.run(until=p) == 0.0
