"""Tests for data filtering and multi-node alignment, incl. property tests."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.measurement.alignment import (
    aggregate_power,
    align_profiles,
    detect_outlier_runs,
    step_resample,
    trim_to_interval,
)


def test_step_resample_holds_last_value():
    samples = [(0.0, 1.0), (10.0, 2.0), (20.0, 3.0)]
    grid = np.array([0.0, 5.0, 10.0, 15.0, 25.0])
    out = step_resample(samples, grid)
    np.testing.assert_allclose(out, [1.0, 1.0, 2.0, 2.0, 3.0])


def test_step_resample_before_first_sample_holds_first():
    samples = [(10.0, 5.0)]
    out = step_resample(samples, np.array([0.0, 9.9, 10.0]))
    np.testing.assert_allclose(out, [5.0, 5.0, 5.0])


def test_step_resample_rejects_empty_and_unsorted():
    with pytest.raises(ValueError):
        step_resample([], np.array([0.0]))
    with pytest.raises(ValueError):
        step_resample([(1.0, 1.0), (0.5, 2.0)], np.array([0.0]))


def test_align_profiles_common_grid():
    profiles = {
        0: [(0.0, 10.0), (5.0, 20.0)],
        1: [(0.0, 1.0), (7.0, 2.0)],
    }
    grid, matrix = align_profiles(profiles, 0.0, 10.0, 2.5)
    assert matrix.shape == (2, len(grid))
    np.testing.assert_allclose(matrix[0], [10, 10, 20, 20, 20])
    np.testing.assert_allclose(matrix[1], [1, 1, 1, 2, 2])


def test_align_profiles_validation():
    with pytest.raises(ValueError):
        align_profiles({0: [(0.0, 1.0)]}, 5.0, 5.0, 1.0)
    with pytest.raises(ValueError):
        align_profiles({0: [(0.0, 1.0)]}, 0.0, 5.0, 0.0)


def test_aggregate_power_sums_rows():
    matrix = np.array([[1.0, 2.0], [3.0, 4.0]])
    np.testing.assert_allclose(aggregate_power(matrix), [4.0, 6.0])


def test_outlier_detection_flags_deviant_run():
    values = [100.0, 101.0, 99.5, 100.4, 250.0]
    assert detect_outlier_runs(values) == [4]


def test_outlier_detection_all_equal_is_clean():
    assert detect_outlier_runs([5.0, 5.0, 5.0]) == []


def test_outlier_detection_needs_three_runs():
    assert detect_outlier_runs([1.0, 100.0]) == []


def test_outlier_detection_constant_rest():
    assert detect_outlier_runs([5.0, 5.0, 5.0, 7.0]) == [3]


def test_trim_to_interval():
    samples = [(0.0, 1.0), (5.0, 2.0), (10.0, 3.0)]
    assert trim_to_interval(samples, 1.0, 9.0) == [(5.0, 2.0)]
    with pytest.raises(ValueError):
        trim_to_interval(samples, 9.0, 1.0)


@given(
    values=st.lists(
        st.floats(min_value=0.0, max_value=1000.0), min_size=3, max_size=30
    )
)
def test_outlier_indices_are_valid(values):
    for idx in detect_outlier_runs(values):
        assert 0 <= idx < len(values)


@given(
    n_samples=st.integers(min_value=1, max_value=20),
    n_grid=st.integers(min_value=1, max_value=50),
)
def test_step_resample_output_values_come_from_input(n_samples, n_grid):
    rng = np.random.default_rng(42)
    times = np.sort(rng.uniform(0, 100, n_samples))
    values = rng.uniform(0, 10, n_samples)
    samples = list(zip(times, values))
    grid = np.linspace(-10, 110, n_grid)
    out = step_resample(samples, grid)
    assert set(np.round(out, 12)).issubset(set(np.round(values, 12)))
