"""Tests for the Baytech outlet-meter emulation."""

import pytest

from repro.hardware.cluster import Cluster
from repro.hardware.spec import ClusterSpec
from repro.measurement.baytech import BaytechOutlet, BaytechUnit


@pytest.fixture
def cluster():
    return Cluster.from_spec(ClusterSpec.homogeneous(2))


def test_samples_report_interval_average(cluster):
    node = cluster.nodes[0]
    outlet = BaytechOutlet(node, poll_interval=60.0)
    outlet.start()

    def load():
        yield from node.cpu.run_cycles(1.4e9 * 30)  # 30 s active, 30 s idle

    cluster.engine.process(load())
    cluster.engine.run(until=60.0)
    assert len(outlet.samples) == 1
    sample = outlet.samples[0]
    assert sample.time == 60.0
    assert sample.watts == pytest.approx(node.timeline.average_power(0.0, 60.0))


def test_energy_estimate_weights_overlap(cluster):
    node = cluster.nodes[0]
    outlet = BaytechOutlet(node, poll_interval=60.0)
    outlet.start()
    cluster.engine.timeout(180.0)
    cluster.engine.run(until=180.0)
    # Idle node: constant power; estimate over a sub-interval is exact.
    est = outlet.energy_estimate(30.0, 150.0)
    true = node.timeline.energy(30.0, 150.0)
    assert est == pytest.approx(true, rel=1e-6)


def test_energy_estimate_validates_interval(cluster):
    outlet = BaytechOutlet(cluster.nodes[0])
    with pytest.raises(ValueError):
        outlet.energy_estimate(10.0, 5.0)


def test_switched_off_outlet_reads_zero(cluster):
    outlet = BaytechOutlet(cluster.nodes[0], poll_interval=10.0)
    outlet.start()
    outlet.switch(False)
    cluster.engine.timeout(25.0)
    cluster.engine.run(until=25.0)
    assert all(s.watts == 0.0 for s in outlet.samples)


def test_unit_aggregates_outlets(cluster):
    unit = BaytechUnit(cluster.nodes, poll_interval=30.0)
    unit.start()
    cluster.engine.timeout(90.0)
    cluster.engine.run(until=90.0)
    unit.stop()
    est = unit.total_energy_estimate(0.0, 90.0)
    true = cluster.total_energy(0.0, 90.0)
    assert est == pytest.approx(true, rel=1e-6)


def test_unit_requires_outlets():
    with pytest.raises(ValueError):
        BaytechUnit([])


def test_outlet_cannot_start_twice(cluster):
    outlet = BaytechOutlet(cluster.nodes[0])
    outlet.start()
    with pytest.raises(RuntimeError):
        outlet.start()
