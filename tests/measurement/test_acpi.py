"""Tests for the ACPI smart-battery emulation."""

import pytest

from repro.hardware.cluster import Cluster
from repro.hardware.spec import ClusterSpec
from repro.measurement.acpi import BatteryReading, SmartBattery
from repro.util.units import JOULES_PER_MWH


@pytest.fixture
def cluster():
    return Cluster.from_spec(ClusterSpec.homogeneous(1))


def test_readings_quantized_to_mwh(cluster):
    node = cluster.nodes[0]
    battery = SmartBattery(node, refresh_interval=10.0)
    battery.start()
    cluster.engine.timeout(100.0)
    cluster.engine.run(until=100.0)
    reading = battery.read()
    assert isinstance(reading.remaining_mwh, int)
    true = node.timeline.energy(0.0, reading.time)
    measured = (battery.full_capacity_mwh - reading.remaining_mwh) * JOULES_PER_MWH
    assert abs(measured - true) <= 0.5 * JOULES_PER_MWH


def test_reading_is_stale_between_refreshes(cluster):
    battery = SmartBattery(cluster.nodes[0], refresh_interval=20.0)
    battery.start()
    cluster.engine.timeout(30.0)
    cluster.engine.run(until=30.0)
    # Last refresh was at t=20; the t=30 read must reflect it.
    assert battery.read().time == 20.0


def test_energy_delta_matches_truth_for_long_runs(cluster):
    """The paper's methodology: long runs make quantization negligible."""
    node = cluster.nodes[0]
    battery = SmartBattery(node, refresh_interval=17.5)
    battery.start()
    first = battery.read()

    def load():
        yield from node.cpu.run_cycles(1.4e9 * 300)  # ~300 s of full power

    p = cluster.engine.process(load())
    cluster.engine.run(until=p)
    # Allow a final refresh (bounded run: the refresh loop never drains).
    cluster.engine.run(until=cluster.engine.now + 17.6)
    last = battery.read()
    measured = last.joules_consumed_since(first)
    true = node.timeline.energy(first.time, last.time)
    assert measured == pytest.approx(true, rel=0.01)


def test_battery_depletion_raises(cluster):
    battery = SmartBattery(cluster.nodes[0], full_capacity_mwh=1, refresh_interval=5.0)
    battery.start()
    cluster.engine.timeout(1000.0)
    with pytest.raises(RuntimeError, match="ran out of charge"):
        cluster.engine.run(until=1000.0)


def test_stop_halts_refreshes(cluster):
    battery = SmartBattery(cluster.nodes[0], refresh_interval=5.0)
    battery.start()
    cluster.engine.run(until=12.0)
    battery.stop()
    n = len(battery.history)
    cluster.engine.timeout(20.0)
    cluster.engine.run(until=32.0)
    assert len(battery.history) == n


def test_cannot_start_twice(cluster):
    battery = SmartBattery(cluster.nodes[0])
    battery.start()
    with pytest.raises(RuntimeError):
        battery.start()


def test_read_before_start_raises(cluster):
    with pytest.raises(RuntimeError):
        SmartBattery(cluster.nodes[0]).read()


def test_reading_delta_arithmetic():
    a = BatteryReading(time=0.0, remaining_mwh=1000)
    b = BatteryReading(time=60.0, remaining_mwh=990)
    assert b.joules_consumed_since(a) == pytest.approx(10 * JOULES_PER_MWH)


def test_validation():
    cluster = Cluster.from_spec(ClusterSpec.homogeneous(1))
    with pytest.raises(ValueError):
        SmartBattery(cluster.nodes[0], full_capacity_mwh=0)
    with pytest.raises(ValueError):
        SmartBattery(cluster.nodes[0], refresh_interval=0.0)
