"""Tests for power-profile extraction and rendering."""

import numpy as np
import pytest

from repro.hardware.cluster import Cluster
from repro.hardware.spec import ClusterSpec
from repro.measurement.profiles import (
    PowerProfile,
    cluster_power_profile,
    profile_summary,
)
from repro.simmpi import run_spmd


@pytest.fixture
def busy_cluster():
    cluster = Cluster.from_spec(ClusterSpec.homogeneous(2))

    def program(comm):
        if comm.rank == 0:
            yield from comm.cpu.run_cycles(1.4e9 * 2)  # 2 s active
        else:
            yield comm.engine.timeout(1.0)
            yield from comm.cpu.run_cycles(1.4e9)  # 1 s active, offset
        return None

    result = run_spmd(cluster, program)
    return cluster, result


def test_profile_shape_and_grid(busy_cluster):
    cluster, result = busy_cluster
    profile = cluster_power_profile(cluster, 0.0, 2.0, dt=0.1)
    assert profile.n_nodes == 2
    assert profile.node_power.shape == (2, len(profile.grid))
    assert profile.grid[0] == 0.0 and profile.grid[-1] == pytest.approx(2.0)


def test_profile_reflects_activity_pattern(busy_cluster):
    cluster, result = busy_cluster
    profile = cluster_power_profile(cluster, 0.0, 2.0, dt=0.05)
    # Node 0 is busy the whole time; node 1 idles for the first second.
    first_half = profile.grid < 0.95
    assert profile.node_power[0][first_half].mean() > profile.node_power[1][
        first_half
    ].mean() + 10
    # In the second second both are busy: powers converge.
    second_half = profile.grid > 1.05
    diff = abs(
        profile.node_power[0][second_half].mean()
        - profile.node_power[1][second_half].mean()
    )
    assert diff < 1.0


def test_profile_energy_approximates_timeline(busy_cluster):
    cluster, result = busy_cluster
    profile = cluster_power_profile(cluster, 0.0, 2.0, dt=0.01)
    exact = cluster.total_energy(0.0, 2.0)
    assert profile.energy() == pytest.approx(exact, rel=0.02)
    per_node = sum(profile.node_energy(i) for i in range(2))
    assert per_node == pytest.approx(profile.energy(), rel=1e-9)


def test_total_power_sums_nodes(busy_cluster):
    cluster, result = busy_cluster
    profile = cluster_power_profile(cluster, 0.0, 1.0, dt=0.1)
    np.testing.assert_allclose(
        profile.total_power, profile.node_power.sum(axis=0)
    )


def test_summary_renders_sparkline_and_markers(busy_cluster):
    cluster, result = busy_cluster
    profile = cluster_power_profile(cluster, 0.0, 2.0, dt=0.05)
    text = profile_summary(profile, markers={"end_rank1_idle": 1.0}, width=30)
    assert "cluster power" in text
    assert "|" in text
    assert "end_rank1_idle@1.0s" in text
    assert "per-node mean power" in text


def test_single_point_profile_energy_is_zero():
    profile = PowerProfile(grid=np.array([0.0]), node_power=np.array([[5.0]]))
    assert profile.energy() == 0.0
    assert profile.node_energy(0) == 0.0
