"""Tests for the PowerPack measurement session."""

import pytest

from repro.hardware.cluster import Cluster
from repro.hardware.spec import ClusterSpec
from repro.measurement.powerpack import PowerPackSession
from repro.simmpi import run_spmd
from repro.util.units import MIB


def busy_program(comm):
    """Minutes of mixed compute and communication (long enough that the
    instruments' refresh-rate error stays within a few percent)."""
    for _ in range(8):
        yield from comm.cpu.run_cycles(1.4e9 * 30)
        if comm.size > 1:
            yield from comm.alltoall(nbytes_each=2 * MIB)


def test_session_measures_a_job_within_instrument_error():
    cluster = Cluster.from_spec(ClusterSpec.homogeneous(4))
    session = PowerPackSession(cluster)
    session.begin()
    result = run_spmd(cluster, busy_program)
    session.mark("app_end")
    report = session.finish()

    assert report.duration == pytest.approx(result.duration)
    assert report.true_energy > 0
    # ACPI path: within a few percent on a minutes-long run (quantization
    # plus up to one refresh of idle tail per node).
    assert report.battery_error < 0.05
    # Baytech path: overlap-weighted minute averages, also close.
    assert report.baytech_error < 0.05
    assert "app_end" in report.markers


def test_settle_time_delays_measure_start():
    cluster = Cluster.from_spec(ClusterSpec.homogeneous(1))
    session = PowerPackSession(cluster, settle_time=300.0)
    session.begin()
    assert session.markers["measure_begin"] == pytest.approx(300.0)


def test_markers_recorded_in_order():
    cluster = Cluster.from_spec(ClusterSpec.homogeneous(1))
    session = PowerPackSession(cluster)
    session.begin()
    cluster.engine.run(until=cluster.engine.now + 5.0)
    session.mark("phase1")
    cluster.engine.run(until=cluster.engine.now + 5.0)
    session.mark("phase2")
    cluster.engine.run(until=cluster.engine.now + 1.0)
    report = session.finish()
    m = report.markers
    assert m["measure_begin"] < m["phase1"] < m["phase2"] < m["measure_end"]


def test_double_begin_rejected():
    cluster = Cluster.from_spec(ClusterSpec.homogeneous(1))
    session = PowerPackSession(cluster)
    session.begin()
    with pytest.raises(RuntimeError):
        session.begin()


def test_finish_without_begin_rejected():
    cluster = Cluster.from_spec(ClusterSpec.homogeneous(1))
    with pytest.raises(RuntimeError):
        PowerPackSession(cluster).finish()


def test_per_node_battery_breakdown_sums_to_total():
    cluster = Cluster.from_spec(ClusterSpec.homogeneous(3))
    session = PowerPackSession(cluster)
    session.begin()
    result = run_spmd(cluster, busy_program, n_ranks=3)
    report = session.finish()
    assert len(report.per_node_battery) == 3
    assert sum(report.per_node_battery) == pytest.approx(report.battery_energy)


def test_quantization_bound_scales_with_nodes():
    cluster = Cluster.from_spec(ClusterSpec.homogeneous(5))
    session = PowerPackSession(cluster)
    assert session.quantization_error_bound == pytest.approx(5 * 0.5 * 3.6)
