"""Tests for the extension workloads: NAS EP, halo stencil, synthetic mix."""

import numpy as np
import pytest

from repro.analysis.runner import static_crescendo
from repro.hardware.cluster import Cluster
from repro.hardware.spec import ClusterSpec
from repro.simmpi import run_spmd
from repro.util.units import MHZ
from repro.workloads.nas_ep import EP_CLASSES, NasEP, verify_ep
from repro.workloads.stencil import HaloStencil, verify_stencil
from repro.workloads.synthetic import SyntheticMix


# ---------------------------------------------------------------------------
# NAS EP
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("n_ranks", [1, 2, 4])
def test_ep_distributed_counts_match_single_pass(n_ranks):
    workload = NasEP("S", n_ranks=n_ranks, verify=True, pairs_override=4096)
    cluster = Cluster.from_spec(ClusterSpec.homogeneous(n_ranks))
    result = run_spmd(cluster, workload.bind_plain())
    verify_ep(workload, result.returns)


def test_ep_counts_identical_on_every_rank():
    workload = NasEP("S", n_ranks=4, verify=True, pairs_override=4096)
    cluster = Cluster.from_spec(ClusterSpec.homogeneous(4))
    result = run_spmd(cluster, workload.bind_plain())
    for counts in result.returns[1:]:
        np.testing.assert_array_equal(counts, result.returns[0])


def test_ep_class_sizes():
    assert EP_CLASSES["A"].pairs == 1 << 28
    with pytest.raises(ValueError):
        NasEP("Q")


def test_ep_validation():
    with pytest.raises(ValueError, match="divide evenly"):
        NasEP("S", n_ranks=3, pairs_override=100)
    with pytest.raises(ValueError, match="verification mode"):
        NasEP("A", n_ranks=4, verify=True)


def test_ep_is_dvs_unfavorable():
    """EP behaves like Fig 7: delay ∝ 1/f, no energy savings at 600 MHz."""
    workload = NasEP("S", n_ranks=2, pairs_override=1 << 22, chunks=10)
    runs = static_crescendo(workload, [600 * MHZ, 1400 * MHZ])
    slow, fast = runs[0].point, runs[1].point
    assert slow.delay / fast.delay > 2.0
    assert slow.energy > 0.9 * fast.energy  # nothing to save


# ---------------------------------------------------------------------------
# halo stencil
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("n_ranks", [1, 2, 4])
def test_stencil_matches_single_array_reference(n_ranks):
    workload = HaloStencil(n=64, n_ranks=n_ranks, sweeps=5, verify=True)
    cluster = Cluster.from_spec(ClusterSpec.homogeneous(n_ranks))
    result = run_spmd(cluster, workload.bind_plain())
    verify_stencil(workload, result.returns)


def test_stencil_residuals_shared_across_ranks():
    workload = HaloStencil(n=32, n_ranks=4, sweeps=6, residual_every=2, verify=True)
    cluster = Cluster.from_spec(ClusterSpec.homogeneous(4))
    result = run_spmd(cluster, workload.bind_plain())
    residuals = [r["residuals"] for r in result.returns]
    assert len(residuals[0]) == 3
    for other in residuals[1:]:
        np.testing.assert_allclose(other, residuals[0])


def test_stencil_validation():
    with pytest.raises(ValueError, match="divide"):
        HaloStencil(n=100, n_ranks=3)
    with pytest.raises(ValueError, match="too large"):
        HaloStencil(n=8192, n_ranks=8, verify=True)
    with pytest.raises(ValueError):
        HaloStencil(n=64, n_ranks=2, sweeps=0)


def test_stencil_halo_traffic_volume():
    workload = HaloStencil(n=512, n_ranks=4, sweeps=3, residual_every=10)
    cluster = Cluster.from_spec(ClusterSpec.homogeneous(4))
    run_spmd(cluster, workload.bind_plain())
    # Per sweep: 3 interior boundaries × 2 directions = 6 halo messages.
    expected = 3 * 6 * workload.halo_bytes
    assert cluster.fabric.bytes_transferred == expected


def test_stencil_sits_between_ep_and_ft_in_frequency_sensitivity():
    """The extension claim: stencil's crescendo is intermediate."""
    stencil = HaloStencil(n=2048, n_ranks=4, sweeps=4)
    runs = static_crescendo(stencil, [600 * MHZ, 1400 * MHZ])
    ratio = runs[0].point.delay / runs[1].point.delay
    assert 1.1 < ratio < 2.0  # between comm-bound (~1.05) and cpu-bound (2.33)


# ---------------------------------------------------------------------------
# synthetic mix
# ---------------------------------------------------------------------------
def test_mix_fractions_validated():
    with pytest.raises(ValueError, match="sum to 1"):
        SyntheticMix(0.5, 0.2, 0.1)
    with pytest.raises(ValueError, match="at least 2 ranks"):
        SyntheticMix(0.5, 0.0, 0.5, n_ranks=1)


def test_pure_cpu_mix_scales_like_register_loop():
    mix = SyntheticMix(1.0, 0.0, 0.0, iteration_seconds=0.5, iterations=2, n_ranks=1)
    runs = static_crescendo(mix, [600 * MHZ, 1400 * MHZ])
    assert runs[0].point.delay / runs[1].point.delay == pytest.approx(
        1400 / 600, rel=1e-6
    )


def test_pure_memory_mix_is_frequency_flat():
    mix = SyntheticMix(0.0, 1.0, 0.0, iteration_seconds=0.5, iterations=2, n_ranks=1)
    runs = static_crescendo(mix, [600 * MHZ, 1400 * MHZ])
    assert runs[0].point.delay == pytest.approx(runs[1].point.delay, rel=1e-6)


def test_comm_mix_roughly_hits_target_share():
    mix = SyntheticMix(0.3, 0.2, 0.5, iteration_seconds=2.0, iterations=2, n_ranks=4)
    cluster = Cluster.from_spec(ClusterSpec.homogeneous(4))
    result = run_spmd(cluster, mix.bind_plain())
    # Total iteration time ≈ iteration_seconds within protocol overheads.
    assert result.duration == pytest.approx(2 * 2.0, rel=0.25)


def test_mix_energy_savings_increase_with_slack():
    """More slack (memory+comm) ⇒ bigger savings at 600 MHz."""

    def saving(cpu, mem, comm):
        mix = SyntheticMix(cpu, mem, comm, iteration_seconds=0.5,
                           iterations=2, n_ranks=4)
        runs = static_crescendo(mix, [600 * MHZ, 1400 * MHZ])
        return 1 - runs[0].point.energy / runs[1].point.energy

    cpu_heavy = saving(0.9, 0.05, 0.05)
    balanced = saving(0.4, 0.3, 0.3)
    slack_heavy = saving(0.1, 0.45, 0.45)
    assert cpu_heavy < balanced < slack_heavy
