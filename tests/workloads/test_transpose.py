"""Tests for the parallel matrix transpose: mapping and numerics."""

import pytest

from repro.hardware.cluster import Cluster
from repro.hardware.spec import ClusterSpec
from repro.simmpi import run_spmd
from repro.workloads.transpose import ParallelTranspose, verify_transpose


def test_paper_geometry():
    w = ParallelTranspose(12_000, 5, 3)
    assert w.n_ranks == 15
    assert w.block_rows == 2400 and w.block_cols == 4000
    assert w.block_bytes == 2400 * 4000 * 8


def test_send_peer_is_a_permutation():
    w = ParallelTranspose(600, 5, 3)
    dests = []
    for rank in range(15):
        d = w.send_peer(rank)
        dests.append(rank if d is None else d)
    assert sorted(dests) == list(range(15))


def test_recv_peer_is_inverse_of_send_peer():
    w = ParallelTranspose(600, 5, 3)
    for rank in range(15):
        dest = w.send_peer(rank)
        if dest is None:
            assert w.recv_peer(rank) is None
        else:
            assert w.recv_peer(dest) == rank


def test_fixed_points_include_node_zero():
    """Paper: 'node (0,0) can skip step 2'."""
    w = ParallelTranspose(600, 5, 3)
    assert w.send_peer(0) is None
    fixed = [r for r in range(15) if w.send_peer(r) is None]
    assert 0 in fixed and len(fixed) >= 1


@pytest.mark.parametrize(
    "n,rows,cols",
    [(60, 5, 3), (60, 3, 5), (64, 4, 4), (30, 2, 3), (24, 1, 2)],
)
def test_transpose_is_correct(n, rows, cols):
    """Real blocks through exchange + gather assemble to exactly A.T."""
    w = ParallelTranspose(n, rows, cols, verify=True)
    cluster = Cluster.from_spec(ClusterSpec.homogeneous(w.n_ranks))
    result = run_spmd(cluster, w.bind_plain())
    verify_transpose(w, result.returns)


def test_transpose_multiple_iterations():
    w = ParallelTranspose(30, 3, 3, verify=True, iterations=3)
    cluster = Cluster.from_spec(ClusterSpec.homogeneous(9))
    result = run_spmd(cluster, w.bind_plain())
    verify_transpose(w, result.returns)


def test_divisibility_enforced():
    with pytest.raises(ValueError, match="divisible"):
        ParallelTranspose(100, 3, 5)


def test_verification_size_limit():
    with pytest.raises(ValueError, match="too large"):
        ParallelTranspose(12_000, 5, 3, verify=True)


def test_synthetic_volume_on_wire():
    w = ParallelTranspose(1200, 5, 3)
    cluster = Cluster.from_spec(ClusterSpec.homogeneous(15))
    run_spmd(cluster, w.bind_plain())
    exchange_msgs = sum(1 for r in range(15) if w.send_peer(r) is not None)
    gather_msgs = 14
    expected = (exchange_msgs + gather_msgs) * w.block_bytes
    assert cluster.fabric.bytes_transferred == expected


def test_root_finishes_last_due_to_incast():
    """Step 3 serialises on the root's link: non-root ranks that sent
    early finish well before the root."""
    w = ParallelTranspose(2400, 5, 3)
    cluster = Cluster.from_spec(ClusterSpec.homogeneous(15))

    finish_times = {}

    def program(comm):
        dvs_free = __import__(
            "repro.dvs.controller", fromlist=["NullController"]
        ).NullController()
        yield from w.program(comm, dvs_free)
        finish_times[comm.rank] = comm.wtime()
        return None

    run_spmd(cluster, program)
    root_t = finish_times[0]
    earliest = min(t for r, t in finish_times.items() if r != 0)
    assert earliest < 0.8 * root_t


def test_nonroot_ranks_mostly_idle_blocked():
    """The load-imbalance slack: senders spend most of step 3 blocked."""
    w = ParallelTranspose(2400, 5, 3)
    cluster = Cluster.from_spec(ClusterSpec.homogeneous(15))
    run_spmd(cluster, w.bind_plain())
    # Pick a rank that is neither root nor early in the gather queue.
    stats = cluster.nodes[14].procstat.snapshot()
    assert stats.idle / stats.total > 0.4
