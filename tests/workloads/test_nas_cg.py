"""Tests for the NAS CG extension workload."""

import numpy as np
import pytest

from repro.analysis.runner import static_crescendo
from repro.hardware.cluster import Cluster
from repro.hardware.spec import ClusterSpec
from repro.simmpi import run_spmd
from repro.util.units import MHZ
from repro.workloads.nas_cg import CG_CLASSES, NasCG, laplacian_2d, verify_cg


def test_laplacian_is_spd():
    a = laplacian_2d(8)
    assert (a != a.T).nnz == 0  # symmetric
    eigs = np.linalg.eigvalsh(a.toarray())
    assert eigs.min() > 0  # positive definite


def test_laplacian_row_structure():
    a = laplacian_2d(4).toarray()
    assert a[5, 5] == 4.0
    assert a[5, 4] == -1.0 and a[5, 6] == -1.0
    assert a[5, 1] == -1.0 and a[5, 9] == -1.0
    # no wraparound across mesh row boundaries
    assert a[3, 4] == 0.0


@pytest.mark.parametrize("n_ranks", [1, 2, 4])
def test_distributed_cg_converges_to_scipy_solution(n_ranks):
    workload = NasCG("S", n_ranks=n_ranks, verify=True, grid=16, iterations=40)
    cluster = Cluster.from_spec(ClusterSpec.homogeneous(n_ranks))
    result = run_spmd(cluster, workload.bind_plain())
    verify_cg(workload, result.returns)


def test_residual_history_shared_and_decreasing():
    workload = NasCG("S", n_ranks=4, verify=True, grid=16, iterations=10)
    cluster = Cluster.from_spec(ClusterSpec.homogeneous(4))
    result = run_spmd(cluster, workload.bind_plain())
    residuals = result.returns[0]["residuals"]
    assert residuals[-1] < residuals[0]
    for other in result.returns[1:]:
        np.testing.assert_allclose(other["residuals"], residuals)


def test_synthetic_mode_moves_allgather_volume():
    workload = NasCG("A", n_ranks=4, iterations=5)
    cluster = Cluster.from_spec(ClusterSpec.homogeneous(4))
    run_spmd(cluster, workload.bind_plain())
    # Ring allgather: (p-1) block sends per rank per iteration, plus the
    # two scalar allreduces (reduce tree + bcast ≈ 2(p-1) 8-byte messages).
    block = workload.allgather_block_bytes
    allgather_bytes = 5 * 4 * 3 * block
    scalar_bytes = 5 * 2 * 2 * 3 * 8
    assert cluster.fabric.bytes_transferred == allgather_bytes + scalar_bytes


def test_class_table():
    assert CG_CLASSES["B"].n == 75_000
    with pytest.raises(ValueError):
        NasCG("Z")
    with pytest.raises(ValueError, match="divide"):
        NasCG("S", n_ranks=3, verify=True, grid=16)


def test_cg_is_latency_sensitive():
    """CG's crescendo sits between comm-bound FT and cpu-bound EP: the
    frequent small reductions make software overhead visible."""
    workload = NasCG("W", n_ranks=4, iterations=10)
    runs = static_crescendo(workload, [600 * MHZ, 1400 * MHZ])
    ratio = runs[0].point.delay / runs[1].point.delay
    assert 1.05 < ratio < 2.2


def test_cg_saves_energy_at_low_frequency():
    workload = NasCG("W", n_ranks=4, iterations=10)
    runs = static_crescendo(workload, [600 * MHZ, 1400 * MHZ])
    assert runs[0].point.energy < 0.95 * runs[1].point.energy
