"""Tests for the simplified NAS MG workload."""

import numpy as np
import pytest

from repro.analysis.runner import static_crescendo
from repro.hardware.cluster import Cluster
from repro.hardware.spec import ClusterSpec
from repro.simmpi import run_spmd
from repro.util.units import MHZ
from repro.workloads.nas_mg import NasMG, _prolong, _restrict, verify_mg


def test_restrict_prolong_shapes():
    fine = np.arange(16.0).reshape(4, 4)
    coarse = _restrict(fine)
    assert coarse.shape == (2, 2)
    np.testing.assert_array_equal(coarse, [[0, 2], [8, 10]])
    back = _prolong(coarse)
    assert back.shape == (4, 4)
    assert back[0, 0] == back[1, 1] == 0.0


def test_levels_depend_on_decomposition():
    # 256 rows over 8 ranks = 32 rows/rank: 32→16→8→4→2 rows = 5 levels.
    assert NasMG(n=256, n_ranks=8).levels == 5
    # One rank: limited by the grid itself.
    assert NasMG(n=64, n_ranks=1).levels >= 4


@pytest.mark.parametrize("n_ranks", [1, 2, 4])
def test_distributed_vcycle_matches_reference(n_ranks):
    workload = NasMG(n=64, n_ranks=n_ranks, v_cycles=2, verify=True)
    cluster = Cluster.from_spec(ClusterSpec.homogeneous(n_ranks))
    result = run_spmd(cluster, workload.bind_plain())
    verify_mg(workload, result.returns)


def test_multiple_vcycles_verify():
    workload = NasMG(n=32, n_ranks=2, v_cycles=3, verify=True)
    cluster = Cluster.from_spec(ClusterSpec.homogeneous(2))
    result = run_spmd(cluster, workload.bind_plain())
    verify_mg(workload, result.returns)


def test_validation():
    with pytest.raises(ValueError, match="power of two"):
        NasMG(n=100, n_ranks=4)
    with pytest.raises(ValueError, match="divide"):
        NasMG(n=64, n_ranks=3)
    with pytest.raises(ValueError, match="4 rows per rank"):
        NasMG(n=16, n_ranks=8)
    with pytest.raises(ValueError, match="too large"):
        NasMG(n=8192, n_ranks=8, verify=True)


def test_halo_traffic_spans_all_levels():
    """Every level exchanges halos, so total messages exceed a single-
    level stencil's count and include tiny coarse-level messages."""
    workload = NasMG(n=256, n_ranks=4, v_cycles=1)
    cluster = Cluster.from_spec(ClusterSpec.homogeneous(4))
    run_spmd(cluster, workload.bind_plain())
    levels = workload.levels
    # Down: (levels-1) sweeps + 1 coarsest + (levels-1) up sweeps, each
    # with 3 boundaries x 2 directions of halo rows.
    sweeps = 2 * levels - 1
    expected = sum(
        6 * workload.halo_bytes(level)
        for level in list(range(levels)) + list(range(levels - 1))
    )
    assert cluster.fabric.bytes_transferred == expected


def test_mg_crescendo_is_memory_leaning():
    """Fine levels dominate the volume: MG behaves closer to swim than
    to mgrid under DVS (delay crescendo stays modest)."""
    workload = NasMG(n=1024, n_ranks=4, v_cycles=2)
    runs = static_crescendo(workload, [600 * MHZ, 1400 * MHZ])
    ratio = runs[0].point.delay / runs[1].point.delay
    assert ratio < 1.9
    assert runs[0].point.energy < 0.9 * runs[1].point.energy


def test_coarse_region_marked_for_dvs():
    from repro.analysis.phases import TrackedStrategy
    from repro.analysis.runner import run_measured
    from repro.dvs.strategy import StaticStrategy

    workload = NasMG(n=128, n_ranks=4, v_cycles=2)
    strategy = TrackedStrategy(StaticStrategy(1400 * MHZ))
    run_measured(workload, strategy)
    coarse = [iv for iv in strategy.intervals() if iv.name == "coarse"]
    assert len(coarse) == 4 * 2  # ranks x cycles
