"""Tests for the NAS FT workload: numerics and cost model."""

import numpy as np
import pytest

from repro.hardware.cluster import Cluster
from repro.hardware.spec import ClusterSpec
from repro.simmpi import run_spmd
from repro.workloads.nas_ft import (
    FT_CLASSES,
    FTClass,
    NasFT,
    verify_distributed_fft,
)


def test_problem_classes_match_npb():
    assert FT_CLASSES["B"] == FTClass("B", 512, 256, 256, 20)
    assert FT_CLASSES["C"] == FTClass("C", 512, 512, 512, 20)
    assert FT_CLASSES["S"].iterations == 6


@pytest.mark.parametrize("n_ranks", [1, 2, 4, 8])
def test_distributed_fft_matches_numpy(n_ranks):
    """The headline correctness test: real data through the simulated
    all-to-all equals numpy's fftn, for several decompositions."""
    workload = NasFT("S", n_ranks=n_ranks, verify=True)
    cluster = Cluster.from_spec(ClusterSpec.homogeneous(n_ranks))
    result = run_spmd(cluster, workload.bind_plain(), n_ranks=n_ranks)
    verify_distributed_fft(workload, result.returns)


def test_distributed_fft_class_w():
    workload = NasFT("W", n_ranks=4, verify=True)
    cluster = Cluster.from_spec(ClusterSpec.homogeneous(4))
    result = run_spmd(cluster, workload.bind_plain())
    verify_distributed_fft(workload, result.returns)


def test_checksums_identical_across_ranks():
    workload = NasFT("S", n_ranks=4, verify=True)
    cluster = Cluster.from_spec(ClusterSpec.homogeneous(4))
    result = run_spmd(cluster, workload.bind_plain())
    sums = [r["checksums"] for r in result.returns]
    for other in sums[1:]:
        np.testing.assert_allclose(other, sums[0])


def test_rank_divisibility_enforced():
    with pytest.raises(ValueError, match="must divide"):
        NasFT("S", n_ranks=3)
    with pytest.raises(ValueError, match="unknown FT class"):
        NasFT("Z")


def test_verification_blocked_for_large_classes():
    with pytest.raises(ValueError, match="too large"):
        NasFT("B", n_ranks=8, verify=True)


def test_synthetic_mode_moves_class_volume():
    """Synthetic runs put the right number of bytes on the wire:
    iterations × p(p−1) × block."""
    workload = NasFT("S", n_ranks=4)  # synthetic
    cluster = Cluster.from_spec(ClusterSpec.homogeneous(4))
    run_spmd(cluster, workload.bind_plain())
    transpose_bytes = (
        workload.problem.iterations * 4 * 3 * workload.alltoall_block_bytes
    )
    # plus the checksum allreduce: (p-1) reduce + (p-1) bcast messages of
    # one 16-byte complex per iteration
    checksum_bytes = workload.problem.iterations * 2 * 3 * 16
    assert cluster.fabric.bytes_transferred == transpose_bytes + checksum_bytes


def test_cost_model_scales_with_class():
    small = NasFT("S", n_ranks=8)
    big = NasFT("B", n_ranks=8)
    assert big.fft_local_cost().cpu_cycles > small.fft_local_cost().cpu_cycles
    assert big.alltoall_block_bytes > small.alltoall_block_bytes
    assert big.local_bytes == FT_CLASSES["B"].total_bytes // 8


def test_wrong_launch_width_rejected():
    workload = NasFT("S", n_ranks=4)
    cluster = Cluster.from_spec(ClusterSpec.homogeneous(8))
    with pytest.raises(ValueError, match="built for 4 ranks"):
        run_spmd(cluster, workload.bind_plain(), n_ranks=8)


def test_ft_communication_dominates_at_full_speed():
    """On the 100 Mb cluster the transpose dwarfs local compute — the slack
    the paper exploits.  Check the busy-state mix of a synthetic run."""
    workload = NasFT("S", n_ranks=8)
    cluster = Cluster.from_spec(ClusterSpec.homogeneous(8))
    result = run_spmd(cluster, workload.bind_plain())
    comm_time = result.duration
    # Local FFT+evolve compute at 1.4 GHz:
    compute = (
        workload.fft_local_cost().duration_at(1.4e9)
        + workload.evolve_cost().duration_at(1.4e9)
    ) * workload.problem.iterations
    assert compute < 0.5 * comm_time
