"""Tests for SPEC-like kernels and the microbenchmark suite."""

import numpy as np
import pytest

from repro.hardware.cluster import Cluster
from repro.hardware.spec import ClusterSpec
from repro.hardware.memory import PENTIUM_M_MEMORY
from repro.simmpi import run_spmd
from repro.util.units import KIB, MIB
from repro.workloads.micro import (
    L2BoundMicro,
    MemoryBoundMicro,
    RegisterMicro,
    RoundtripMicro,
)
from repro.workloads.spec_like import MgridLike, SwimLike


def run_duration(workload, mhz=1400):
    cluster = Cluster.from_spec(ClusterSpec.homogeneous(workload.n_ranks))
    for node in cluster.nodes:
        node.cpu.set_frequency(cluster.table.point_for(mhz * 1e6))
    result = run_spmd(cluster, workload.bind_plain())
    energy = cluster.total_energy(result.start, result.end)
    return energy, result.duration


# ---------------------------------------------------------------------------
# SPEC-like kernels
# ---------------------------------------------------------------------------
def test_mgrid_like_is_cpu_dominated():
    cost = MgridLike(iterations=1).cost_per_iteration(PENTIUM_M_MEMORY)
    cycle_time = cost.cpu_cycles / 1.4e9
    assert cycle_time > 2 * cost.stall_seconds


def test_swim_like_is_memory_dominated():
    cost = SwimLike(iterations=1).cost_per_iteration(PENTIUM_M_MEMORY)
    cycle_time = cost.cpu_cycles / 1.4e9
    assert cost.stall_seconds > 2 * cycle_time


def test_mgrid_delay_crescendo_steeper_than_swim():
    """Fig 1: mgrid's delay blows up at low frequency, swim's barely moves."""
    mgrid = MgridLike(iterations=2)
    swim = SwimLike(iterations=2)
    _, d_mgrid_fast = run_duration(mgrid, 1400)
    _, d_mgrid_slow = run_duration(mgrid, 600)
    _, d_swim_fast = run_duration(swim, 1400)
    _, d_swim_slow = run_duration(swim, 600)
    mgrid_ratio = d_mgrid_slow / d_mgrid_fast
    swim_ratio = d_swim_slow / d_swim_fast
    assert mgrid_ratio > 1.5
    assert swim_ratio < 1.4
    assert mgrid_ratio > swim_ratio


def test_swim_saves_energy_at_low_frequency():
    swim = SwimLike(iterations=2)
    e_fast, _ = run_duration(swim, 1400)
    e_slow, _ = run_duration(swim, 600)
    assert e_slow < 0.8 * e_fast


def test_iterations_validated():
    with pytest.raises(ValueError):
        MgridLike(iterations=0)


def test_reference_steps_run():
    grid = np.ones((16, 16))
    out = MgridLike.reference_step(grid)
    assert out.shape == grid.shape and np.isfinite(out).all()
    u = np.random.default_rng(0).random((8, 8))
    out2 = SwimLike.reference_step(u, u)
    assert np.isfinite(out2).all()


# ---------------------------------------------------------------------------
# microbenchmarks
# ---------------------------------------------------------------------------
def test_membound_micro_uses_paper_parameters():
    micro = MemoryBoundMicro()
    assert micro.buffer_bytes == 32 * MIB
    assert micro.stride_bytes == 128
    cost = micro.cost_per_pass(PENTIUM_M_MEMORY)
    assert cost.stall_seconds > 0  # DRAM latency bound


def test_l2bound_micro_uses_paper_parameters():
    micro = L2BoundMicro()
    assert micro.buffer_bytes == 256 * KIB
    cost = micro.cost_per_pass(PENTIUM_M_MEMORY)
    assert cost.stall_seconds == 0.0  # on-die


def test_membound_delay_flat_l2_delay_scales():
    mem = MemoryBoundMicro(passes=4)
    l2 = L2BoundMicro(passes=400)
    _, d_mem_fast = run_duration(mem, 1400)
    _, d_mem_slow = run_duration(mem, 600)
    _, d_l2_fast = run_duration(l2, 1400)
    _, d_l2_slow = run_duration(l2, 600)
    assert d_mem_slow / d_mem_fast < 1.15  # Fig 6: ~5% loss
    assert d_l2_slow / d_l2_fast == pytest.approx(1400 / 600, rel=0.02)  # Fig 7


def test_register_micro_scales_exactly_with_frequency():
    micro = RegisterMicro(total_ops=2_000_000_000, chunks=4)
    _, d_fast = run_duration(micro, 1400)
    _, d_slow = run_duration(micro, 600)
    assert d_slow / d_fast == pytest.approx(1400 / 600, rel=1e-6)


def test_roundtrip_micro_moves_messages():
    micro = RoundtripMicro(message_bytes=256 * KIB, round_trips=5)
    cluster = Cluster.from_spec(ClusterSpec.homogeneous(2))
    run_spmd(cluster, micro.bind_plain())
    assert cluster.fabric.bytes_transferred == 2 * 5 * 256 * KIB


def test_strided_roundtrip_has_pack_cost():
    contiguous = RoundtripMicro(message_bytes=4 * KIB, round_trips=1)
    strided = RoundtripMicro(
        message_bytes=4 * KIB, round_trips=1, pack_stride_bytes=64
    )
    assert contiguous.pack_cost(PENTIUM_M_MEMORY).cpu_cycles == 0
    assert strided.pack_cost(PENTIUM_M_MEMORY).cpu_cycles > 0


def test_roundtrip_requires_two_ranks():
    micro = RoundtripMicro(round_trips=1)
    cluster = Cluster.from_spec(ClusterSpec.homogeneous(4))
    with pytest.raises(ValueError, match="exactly 2 ranks"):
        run_spmd(cluster, micro.bind_plain(), n_ranks=4)


def test_parameter_validation():
    with pytest.raises(ValueError):
        MemoryBoundMicro(passes=0)
    with pytest.raises(ValueError):
        RegisterMicro(total_ops=0)
    with pytest.raises(ValueError):
        RoundtripMicro(round_trips=0)
