"""Tests for the Figure-2 iso-efficiency trade-off curves."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.metrics import (
    iso_efficiency_energy_fraction,
    required_energy_savings,
    tradeoff_curves,
    weighted_ed2p,
)


def test_no_slowdown_needs_no_savings():
    for delta in (-1.0, -0.5, 0.0, 0.2, 0.5, 1.0):
        assert required_energy_savings(1.0, delta) == pytest.approx(0.0)


def test_paper_example_delta_04_at_10pct_delay():
    """§2.2: 'for the line δ=.4, if 10% performance degradation is
    acceptable then about 32% energy must be saved'."""
    savings = required_energy_savings(1.1, 0.4)
    assert savings == pytest.approx(0.32, abs=0.04)


def test_paper_example_delta_02_at_5pct_delay():
    savings = required_energy_savings(1.05, 0.2)
    assert savings == pytest.approx(0.131, abs=0.006)


def test_larger_delta_requires_more_savings():
    """Figure 2: 'for the same performance loss, larger δ values require
    increased energy savings'."""
    d = 1.2
    savings = [required_energy_savings(d, delta) for delta in (-0.5, 0.0, 0.4, 0.8)]
    assert savings == sorted(savings)


def test_delta_minus_one_ignores_delay():
    assert iso_efficiency_energy_fraction(5.0, -1.0) == pytest.approx(1.0)
    assert required_energy_savings(5.0, -1.0) == pytest.approx(0.0)


def test_delta_plus_one_forbids_any_slowdown():
    assert iso_efficiency_energy_fraction(1.001, 1.0) == 0.0
    assert required_energy_savings(1.001, 1.0) == pytest.approx(1.0)
    assert iso_efficiency_energy_fraction(1.0, 1.0) == 1.0
    assert np.isinf(iso_efficiency_energy_fraction(0.9, 1.0))


def test_invalid_arguments():
    with pytest.raises(ValueError):
        iso_efficiency_energy_fraction(0.0, 0.2)
    with pytest.raises(ValueError):
        iso_efficiency_energy_fraction(1.1, 2.0)


def test_tradeoff_curves_shapes():
    factors = np.linspace(1.0, 1.5, 11)
    curves = tradeoff_curves(factors, deltas=[0.0, 0.2, 0.4])
    assert len(curves) == 3
    for delta, curve in curves:
        assert curve.shape == factors.shape
        assert curve[0] == pytest.approx(1.0)
        assert np.all(np.diff(curve) <= 0)  # monotone falling


@given(
    d=st.floats(min_value=1.0, max_value=3.0),
    delta=st.floats(min_value=-1.0, max_value=0.99),
)
def test_iso_point_really_ties_with_reference(d, delta):
    """The curve's defining property: the point (e(d), d) has the same
    weighted ED²P as the reference (1, 1)."""
    e = iso_efficiency_energy_fraction(d, delta)
    assert weighted_ed2p(e, d, delta) == pytest.approx(1.0, rel=1e-9)


@given(
    d=st.floats(min_value=1.001, max_value=3.0),
    delta=st.floats(min_value=-0.99, max_value=0.99),
)
def test_savings_between_zero_and_one(d, delta):
    # Savings can reach exactly 1.0 when the required fraction underflows
    # at extreme delta (e.g. 3.0^-398).
    s = required_energy_savings(d, delta)
    assert 0.0 <= s <= 1.0
