"""Tests for budget-constrained efficiency reporting."""

import pytest

from repro.metrics import PowerCapReport, build_cap_report, weighted_ed2p


def report(window_watts, cap=100.0, tolerance=0.05, **kwargs):
    durations = kwargs.pop("durations", [0.25] * len(window_watts))
    return build_cap_report(
        label="cap@100W/test",
        cap_watts=cap,
        tolerance=tolerance,
        energy_j=kwargs.pop("energy_j", 500.0),
        delay_s=kwargs.pop("delay_s", 5.0),
        window_watts=window_watts,
        window_durations=durations,
        **kwargs,
    )


def test_violations_counted_against_the_guard_band():
    # Limit is 105 W: 105.0 complies, 105.1 does not.
    r = report([99.0, 105.0, 105.1, 200.0])
    assert r.violation_windows == 2
    assert r.total_windows == 4
    assert not r.compliant


def test_compliant_when_no_window_exceeds_the_limit():
    r = report([104.9, 80.0, 105.0])
    assert r.compliant
    assert r.peak_window_watts == pytest.approx(105.0)


def test_achieved_average_is_duration_weighted():
    r = report([100.0, 200.0], durations=[3.0, 1.0])
    assert r.achieved_avg_watts == pytest.approx(125.0)


def test_average_power_is_energy_over_delay():
    r = report([100.0], energy_j=600.0, delay_s=4.0)
    assert r.average_power_w == pytest.approx(150.0)


def test_slowdown_against_uncapped_reference():
    r = report([100.0], delay_s=6.0, uncapped_delay_s=5.0)
    assert r.slowdown_vs_uncapped == pytest.approx(0.2)
    assert report([100.0]).slowdown_vs_uncapped is None


def test_ed2p_matches_the_paper_metric():
    r = report([100.0], energy_j=500.0, delay_s=5.0)
    assert r.ed2p(delta=0.2) == pytest.approx(weighted_ed2p(500.0, 5.0, 0.2))


def test_mismatched_window_lengths_are_rejected():
    with pytest.raises(ValueError, match="window"):
        build_cap_report(
            label="bad",
            cap_watts=100.0,
            tolerance=0.05,
            energy_j=1.0,
            delay_s=1.0,
            window_watts=[1.0, 2.0],
            window_durations=[0.25],
        )


def test_empty_windows_degenerate_gracefully():
    r = report([])
    assert r.total_windows == 0
    assert r.achieved_avg_watts == 0.0
    assert r.peak_window_watts == 0.0
    assert r.compliant
