"""Tests for ED²P and weighted ED²P, incl. the paper's worked numbers."""

import pytest
from hypothesis import given, strategies as st

from repro.metrics import (
    DELTA_ENERGY,
    DELTA_HPC,
    DELTA_PERFORMANCE,
    ed2p,
    weighted_ed2p,
)

positive = st.floats(min_value=1e-3, max_value=1e3)
deltas = st.floats(min_value=-1.0, max_value=1.0)


def test_ed2p_formula():
    assert ed2p(2.0, 3.0) == pytest.approx(18.0)


def test_weighted_reduces_to_ed2p_at_zero():
    assert weighted_ed2p(2.0, 3.0, 0.0) == pytest.approx(ed2p(2.0, 3.0))


def test_weighted_extreme_energy_is_e_squared():
    """δ = −1 → E² (paper: 'quadratic energy consumption')."""
    assert weighted_ed2p(5.0, 99.0, DELTA_ENERGY) == pytest.approx(25.0)


def test_weighted_extreme_performance_is_d_fourth():
    """δ = +1 → D⁴ (paper: 'biquadratic performance')."""
    assert weighted_ed2p(99.0, 2.0, DELTA_PERFORMANCE) == pytest.approx(16.0)


def test_paper_worked_example_5pct_delay_needs_13pct_savings():
    """§2.2: at δ=0.2, two points 5% apart in performance tie when the
    slower saves ~13% energy (the paper quotes 13.1%)."""
    fast = weighted_ed2p(1.0, 1.0, DELTA_HPC)
    required_e = 1.05 ** (-2 * (1 + DELTA_HPC) / (1 - DELTA_HPC))
    slow = weighted_ed2p(required_e, 1.05, DELTA_HPC)
    assert slow == pytest.approx(fast, rel=1e-12)
    assert 1.0 - required_e == pytest.approx(0.131, abs=0.006)


def test_delta_out_of_range_rejected():
    with pytest.raises(ValueError):
        weighted_ed2p(1.0, 1.0, 1.5)
    with pytest.raises(ValueError):
        weighted_ed2p(1.0, 1.0, -1.01)


def test_nonpositive_inputs_rejected():
    with pytest.raises(ValueError):
        ed2p(0.0, 1.0)
    with pytest.raises(ValueError):
        weighted_ed2p(1.0, -1.0, 0.0)


def test_ideal_dvs_scaling_is_invariant_at_delta_zero():
    """§2.2: with P∝f³ and D∝1/f, E∝f² so E·D² is frequency-independent —
    plain ED2P cannot be gamed by naive frequency scaling."""
    base = None
    for f in (0.5, 0.75, 1.0, 1.25):
        energy = f**2
        delay = 1.0 / f
        value = weighted_ed2p(energy, delay, 0.0)
        if base is None:
            base = value
        assert value == pytest.approx(base)


@given(e=positive, d=positive)
def test_weighted_positive(e, d):
    assert weighted_ed2p(e, d, 0.3) > 0


@given(e1=positive, e2=positive, d=positive, delta=deltas)
def test_monotone_in_energy_for_delta_below_one(e1, e2, d, delta):
    """More energy at equal delay is never better (strictly worse for
    δ<1; equal at δ=1 where energy has no weight)."""
    lo, hi = sorted([e1, e2])
    w_lo = weighted_ed2p(lo, d, delta)
    w_hi = weighted_ed2p(hi, d, delta)
    assert w_lo <= w_hi * (1 + 1e-9)


@given(d1=positive, d2=positive, e=positive, delta=deltas)
def test_monotone_in_delay_for_delta_above_minus_one(d1, d2, e, delta):
    lo, hi = sorted([d1, d2])
    w_lo = weighted_ed2p(e, lo, delta)
    w_hi = weighted_ed2p(e, hi, delta)
    assert w_lo <= w_hi * (1 + 1e-9)


@given(e=positive, d=positive, delta=deltas, k=st.floats(min_value=0.1, max_value=10))
def test_common_energy_scaling_preserves_order(e, d, delta, k):
    """Rescaling all energies by k (unit change) cannot reorder points."""
    other_e, other_d = e * 1.3, d * 0.9
    before = weighted_ed2p(e, d, delta) <= weighted_ed2p(other_e, other_d, delta)
    after = weighted_ed2p(e * k, d, delta) <= weighted_ed2p(other_e * k, other_d, delta)
    assert before == after
