"""Attribution unit tests against a synthetic constant-power cluster —
every expected energy is hand-computable as watts × seconds."""

import pytest

from repro.hardware.timeline import PowerTimeline
from repro.metrics.attribution import (
    COMPUTE_PHASE,
    AttributionReport,
    build_attribution_report,
)
from repro.obs.tracer import Tracer


class FakeNode:
    def __init__(self, node_id, watts):
        self.node_id = node_id
        self.timeline = PowerTimeline(start_time=0.0, initial_power=watts)


class FakeCluster:
    def __init__(self, watts_per_node):
        self.nodes = [FakeNode(i, w) for i, w in enumerate(watts_per_node)]


def test_phases_partition_the_interval_exactly():
    tracer = Tracer()
    # Rank 0, [0, 10]s at 20 W: send [2,4], allreduce [6,9].
    tracer.span("send", "mpi.p2p", 0, 2.0, 4.0)
    tracer.span("allreduce", "mpi.coll", 0, 6.0, 9.0)
    report = build_attribution_report(
        FakeCluster([20.0]), tracer, 0.0, 10.0
    )
    by_phase = {r.phase: r for r in report.rows}
    assert by_phase["send"].time_s == pytest.approx(2.0)
    assert by_phase["send"].energy_j == pytest.approx(40.0)
    assert by_phase["allreduce"].energy_j == pytest.approx(60.0)
    assert by_phase[COMPUTE_PHASE].time_s == pytest.approx(5.0)
    assert report.total_energy_j == pytest.approx(200.0)


def test_nested_span_charges_the_outermost():
    tracer = Tracer()
    tracer.span("alltoall", "mpi.coll", 0, 1.0, 5.0)
    tracer.span("sendrecv", "mpi.p2p", 0, 2.0, 3.0)  # nested inside
    report = build_attribution_report(FakeCluster([10.0]), tracer, 0.0, 6.0)
    by_phase = {r.phase: r for r in report.rows}
    assert by_phase["alltoall"].time_s == pytest.approx(4.0)
    assert "sendrecv" not in by_phase  # fully shadowed by the collective


def test_spans_clip_to_the_run_interval():
    tracer = Tracer()
    tracer.span("send", "mpi.p2p", 0, -1.0, 1.0)  # straddles t0
    tracer.span("recv", "mpi.p2p", 0, 9.0, 12.0)  # straddles t1
    report = build_attribution_report(FakeCluster([10.0]), tracer, 0.0, 10.0)
    by_phase = {r.phase: r for r in report.rows}
    assert by_phase["send"].time_s == pytest.approx(1.0)
    assert by_phase["recv"].time_s == pytest.approx(1.0)
    assert report.total_energy_j == pytest.approx(100.0)


def test_other_ranks_categories_and_clocks_are_ignored():
    tracer = Tracer()
    tracer.span("send", "mpi.p2p", 1, 0.0, 5.0)  # other rank
    tracer.span("step", "sim.process", 0, 0.0, 5.0)  # non-mpi category
    tracer.span("task", "mpi.p2p", 0, 0.0, 5.0, clock="wall")  # wall clock
    report = build_attribution_report(
        FakeCluster([10.0, 10.0]), tracer, 0.0, 10.0, ranks=[0]
    )
    assert [r.phase for r in report.rows] == [COMPUTE_PHASE]
    assert report.rows[0].energy_j == pytest.approx(100.0)


def test_per_rank_sums_match_each_nodes_power():
    tracer = Tracer()
    tracer.span("send", "mpi.p2p", 0, 1.0, 2.0)
    tracer.span("recv", "mpi.p2p", 1, 3.0, 5.0)
    report = build_attribution_report(
        FakeCluster([10.0, 30.0]), tracer, 0.0, 10.0
    )
    assert report.rank_energy() == {
        0: pytest.approx(100.0),
        1: pytest.approx(300.0),
    }
    assert report.total_energy_j == pytest.approx(400.0)


def test_occurrences_count_spans_not_intervals():
    tracer = Tracer()
    for i in range(3):
        tracer.span("send", "mpi.p2p", 0, float(i), float(i) + 0.5)
    report = build_attribution_report(FakeCluster([10.0]), tracer, 0.0, 5.0)
    by_phase = {r.phase: r for r in report.rows}
    assert by_phase["send"].occurrences == 3
    assert by_phase["send"].time_s == pytest.approx(1.5)


def test_custom_categories_select_other_layers():
    tracer = Tracer()
    tracer.span("window", "powercap.governor", 0, 0.0, 4.0)
    report = build_attribution_report(
        FakeCluster([10.0]), tracer, 0.0, 10.0, categories=("powercap.",)
    )
    by_phase = {r.phase: r for r in report.rows}
    assert by_phase["window"].time_s == pytest.approx(4.0)


def test_inverted_interval_rejected():
    with pytest.raises(ValueError):
        build_attribution_report(FakeCluster([10.0]), Tracer(), 5.0, 1.0)


def test_round_trip_through_dict():
    tracer = Tracer()
    tracer.span("send", "mpi.p2p", 0, 1.0, 2.0)
    report = build_attribution_report(FakeCluster([10.0]), tracer, 0.0, 3.0)
    assert AttributionReport.from_dict(report.to_dict()) == report
