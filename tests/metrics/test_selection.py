"""Tests for best-operating-point selection (Eq. 6, Tables 1/3 logic)."""

import pytest

from repro.metrics import (
    DELTA_ENERGY,
    DELTA_HPC,
    DELTA_PERFORMANCE,
    EnergyDelayPoint,
    best_operating_point,
    normalize_points,
    select_paper_rows,
    weighted_ed2p,
)
from repro.util.units import MHZ


def swim_like_crescendo():
    """A memory-bound shape: energy falls fast, delay rises slowly."""
    data = [
        (1400, 1.00, 1.000),
        (1200, 0.88, 1.010),
        (1000, 0.76, 1.025),
        (800, 0.66, 1.045),
        (600, 0.58, 1.075),
    ]
    return [
        EnergyDelayPoint(f"stat@{mhz}MHz", e, d, frequency=mhz * MHZ)
        for mhz, e, d in data
    ]


def mgrid_like_crescendo():
    """A CPU-bound shape: little energy saving, big delay penalty."""
    data = [
        (1400, 1.00, 1.000),
        (1200, 0.99, 1.160),
        (1000, 0.97, 1.390),
        (800, 0.95, 1.730),
        (600, 1.02, 2.300),
    ]
    return [
        EnergyDelayPoint(f"stat@{mhz}MHz", e, d, frequency=mhz * MHZ)
        for mhz, e, d in data
    ]


def test_performance_delta_picks_fastest():
    best = best_operating_point(swim_like_crescendo(), DELTA_PERFORMANCE)
    assert best.point.frequency == 1400 * MHZ


def test_energy_delta_picks_lowest_energy():
    best = best_operating_point(swim_like_crescendo(), DELTA_ENERGY)
    assert best.point.frequency == 600 * MHZ


def test_hpc_delta_picks_intermediate_for_memory_bound():
    best = best_operating_point(swim_like_crescendo(), DELTA_HPC)
    assert 600 * MHZ <= best.point.frequency < 1400 * MHZ
    assert best.improvement_vs_reference > 0


def test_hpc_delta_keeps_fastest_for_cpu_bound():
    """mgrid-like codes: slack-free, so HPC keeps the top frequency
    (paper Table 1: mgrid HPC = 1400 MHz)."""
    best = best_operating_point(mgrid_like_crescendo(), DELTA_HPC)
    assert best.point.frequency == 1400 * MHZ
    assert best.improvement_vs_reference == pytest.approx(0.0)


def test_improvement_matches_metric_ratio():
    points = swim_like_crescendo()
    best = best_operating_point(points, DELTA_HPC)
    ref = points[0]  # 1400 MHz entry
    expected = 1.0 - best.metric / weighted_ed2p(ref.energy, ref.delay, DELTA_HPC)
    assert best.improvement_vs_reference == pytest.approx(expected)


def test_tie_breaks_toward_higher_frequency():
    points = [
        EnergyDelayPoint("a", 1.0, 1.0, frequency=1000 * MHZ),
        EnergyDelayPoint("b", 1.0, 1.0, frequency=1400 * MHZ),
    ]
    best = best_operating_point(points, 0.0)
    assert best.point.frequency == 1400 * MHZ


def test_explicit_reference_changes_improvement_only():
    points = swim_like_crescendo()
    ref = points[2]
    a = best_operating_point(points, DELTA_HPC)
    b = best_operating_point(points, DELTA_HPC, reference=ref)
    assert a.point == b.point
    assert a.improvement_vs_reference != b.improvement_vs_reference


def test_empty_crescendo_rejected():
    with pytest.raises(ValueError):
        best_operating_point([], 0.0)


def test_select_paper_rows_structure():
    rows = select_paper_rows(swim_like_crescendo())
    assert set(rows) == {"HPC", "energy", "performance"}
    assert rows["energy"].point.frequency == 600 * MHZ
    assert rows["performance"].point.frequency == 1400 * MHZ


def test_normalize_points_uses_fastest_as_reference():
    points = [
        EnergyDelayPoint("slow", 50.0, 10.0, frequency=600 * MHZ),
        EnergyDelayPoint("fast", 100.0, 8.0, frequency=1400 * MHZ),
    ]
    normed = normalize_points(points)
    assert normed[1].energy == pytest.approx(1.0)
    assert normed[1].delay == pytest.approx(1.0)
    assert normed[0].energy == pytest.approx(0.5)
    assert normed[0].delay == pytest.approx(1.25)


def test_normalize_points_without_frequencies_uses_fastest_delay():
    points = [
        EnergyDelayPoint("a", 10.0, 4.0),
        EnergyDelayPoint("b", 12.0, 2.0),
    ]
    normed = normalize_points(points)
    assert normed[1].energy == pytest.approx(1.0) and normed[1].delay == 1.0


def test_normalize_empty_rejected():
    with pytest.raises(ValueError):
        normalize_points([])


# ---------------------------------------------------------------------------
# edge cases: exact ties, boundary deltas, degenerate crescendos
# ---------------------------------------------------------------------------
def test_exact_tie_breaks_toward_the_higher_frequency():
    # Same weighted ED²P at δ=0 (E·D² equal) from different (E, D) mixes.
    low = EnergyDelayPoint("low", 4.0, 1.0, frequency=600 * MHZ)
    high = EnergyDelayPoint("high", 1.0, 2.0, frequency=1400 * MHZ)
    assert weighted_ed2p(4.0, 1.0, 0.0) == weighted_ed2p(1.0, 2.0, 0.0)
    best = best_operating_point([low, high], 0.0)
    assert best.point is high


def test_exact_tie_order_independent():
    low = EnergyDelayPoint("low", 4.0, 1.0, frequency=600 * MHZ)
    high = EnergyDelayPoint("high", 1.0, 2.0, frequency=1400 * MHZ)
    assert best_operating_point([low, high], 0.0).point is high
    assert best_operating_point([high, low], 0.0).point is high


def test_tie_between_frequencyless_points_picks_the_first():
    a = EnergyDelayPoint("a", 4.0, 1.0)
    b = EnergyDelayPoint("b", 1.0, 2.0)
    assert best_operating_point([a, b], 0.0).point is a
    assert best_operating_point([b, a], 0.0).point is b


def test_delta_minus_one_ignores_delay_entirely():
    # At δ=−1 the metric is E² — delay must not influence the choice.
    frugal_slow = EnergyDelayPoint("frugal", 0.5, 100.0, frequency=600 * MHZ)
    hungry_fast = EnergyDelayPoint("hungry", 0.6, 1.0, frequency=1400 * MHZ)
    best = best_operating_point([frugal_slow, hungry_fast], -1.0)
    assert best.point is frugal_slow


def test_delta_plus_one_ignores_energy_entirely():
    # At δ=+1 the metric is D⁴ — energy must not influence the choice.
    frugal_slow = EnergyDelayPoint("frugal", 0.1, 1.2, frequency=600 * MHZ)
    hungry_fast = EnergyDelayPoint("hungry", 9.0, 1.0, frequency=1400 * MHZ)
    best = best_operating_point([frugal_slow, hungry_fast], 1.0)
    assert best.point is hungry_fast


def test_delta_just_outside_the_boundaries_rejected():
    points = swim_like_crescendo()
    for delta in (-1.0000001, 1.0000001, -2.0, 2.0):
        with pytest.raises(ValueError, match="delta"):
            best_operating_point(points, delta)


def test_boundary_deltas_are_accepted():
    points = swim_like_crescendo()
    assert best_operating_point(points, -1.0).delta == -1.0
    assert best_operating_point(points, 1.0).delta == 1.0


def test_single_point_crescendo_is_its_own_best_and_reference():
    only = EnergyDelayPoint("only", 0.8, 1.1, frequency=1000 * MHZ)
    for delta in (-1.0, 0.0, DELTA_HPC, 1.0):
        best = best_operating_point([only], delta)
        assert best.point is only
        assert best.improvement_vs_reference == pytest.approx(0.0)


def test_single_point_rows_all_agree():
    only = EnergyDelayPoint("only", 0.8, 1.1, frequency=1000 * MHZ)
    rows = select_paper_rows([only])
    assert {r.point.label for r in rows.values()} == {"only"}
