"""ServingReport: percentile accounting pinned against a brute-force
per-request walk, the energy ledger, and the edge cases (empty run,
single request, shed load)."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.metrics.serving import (
    ServingReport,
    TierBreakdown,
    attribute_request_energy,
    build_serving_report,
    latency_percentile,
)
from repro.serving.arrivals import PoissonArrivals
from repro.serving.runner import run_serving
from repro.serving.spec import ServingWorkload, TierSpec


def oracle_percentile(values, q):
    """Brute-force nearest-rank: walk the sorted sample, count until
    at least q% of it is covered."""
    if not values:
        return None
    ordered = sorted(values)
    need = q / 100.0 * len(ordered)
    covered = 0
    for value in ordered:
        covered += 1
        if covered >= need:
            return value
    return ordered[-1]


class TestLatencyPercentile:
    @given(
        st.lists(
            st.floats(
                min_value=0.0,
                max_value=1e6,
                allow_nan=False,
                allow_infinity=False,
            ),
            max_size=200,
        ),
        st.floats(min_value=0.001, max_value=100.0),
    )
    def test_matches_the_brute_force_oracle(self, values, q):
        assert latency_percentile(values, q) == oracle_percentile(values, q)

    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
            min_size=1,
            max_size=100,
        )
    )
    def test_is_an_observed_value_and_monotone_in_q(self, values):
        results = [latency_percentile(values, q) for q in (50, 95, 99, 100)]
        assert all(r in values for r in results)
        assert results == sorted(results)
        assert results[-1] == max(values)

    def test_empty_window_is_none(self):
        assert latency_percentile([], 99.0) is None

    def test_single_sample_is_every_percentile(self):
        for q in (0.1, 50.0, 99.0, 100.0):
            assert latency_percentile([7.5], q) == 7.5

    def test_q_out_of_range_rejected(self):
        for q in (0.0, -5.0, 100.1):
            with pytest.raises(ValueError, match="q"):
                latency_percentile([1.0], q)


def small_run(**overrides):
    defaults = dict(
        tiers=(
            TierSpec("fe", nodes=1, service_cycles=1.0e6),
            TierSpec("app", nodes=1, service_cycles=4.0e6),
        ),
        arrivals=PoissonArrivals(40.0, seed=2),
        horizon_s=1.5,
        timeout_s=3.0,
    )
    defaults.update(overrides)
    return run_serving(ServingWorkload(**defaults))


@pytest.fixture(scope="module")
def run():
    return small_run()


@pytest.fixture(scope="module")
def report(run):
    return build_serving_report(run)


class TestReportVsOracle:
    def test_counts(self, run, report):
        assert report.n_requests == len(run.records)
        assert report.completed == sum(1 for r in run.records if r.ok)
        assert (
            report.completed + report.dropped + report.timed_out
            == report.n_requests
        )

    def test_percentiles_re_derivable_from_the_records(self, run, report):
        latencies = [r.latency_s for r in run.records if r.status == "ok"]
        assert report.p50_s == oracle_percentile(latencies, 50)
        assert report.p95_s == oracle_percentile(latencies, 95)
        assert report.p99_s == oracle_percentile(latencies, 99)

    def test_tier_breakdown_re_derivable(self, run, report):
        for tier in report.tiers:
            spans = [
                s
                for r in run.records
                for s in r.spans
                if s.tier == tier.tier
            ]
            assert tier.served == len(spans)
            assert tier.mean_wait_s == pytest.approx(
                sum(s.wait_s for s in spans) / len(spans)
            )
            assert tier.mean_service_s == pytest.approx(
                sum(s.service_s for s in spans) / len(spans)
            )
            residences = [s.residence_s for s in spans]
            assert tier.p99_s == oracle_percentile(residences, 99)

    def test_throughput_and_duration(self, run, report):
        assert report.duration_s == run.duration_s
        assert report.throughput_rps == pytest.approx(
            report.completed / run.duration_s
        )


class TestEnergyLedger:
    def test_attribution_sums_to_the_run_total_by_construction(
        self, run, report
    ):
        assert report.energy_j == run.energy_j
        assert (
            abs(
                report.request_energy_j
                + report.unattributed_energy_j
                - report.energy_j
            )
            < 1e-9
        )
        assert 0.0 < report.request_energy_j < report.energy_j
        assert report.energy_per_request_j == pytest.approx(
            report.energy_j / report.completed
        )

    def test_per_request_map_covers_every_request(self, run):
        per_request, attributed = attribute_request_energy(
            run.cluster, run.records
        )
        assert set(per_request) == {r.request_id for r in run.records}
        assert all(v > 0.0 for v in per_request.values())
        assert math.fsum(per_request.values()) == pytest.approx(
            attributed, abs=1e-9
        )

    def test_per_request_energy_scales_with_demand(self, run):
        """A request with strictly larger cycle demands on every tier
        must attribute at least as much energy (same nodes, same or
        longer occupancy)."""
        per_request, _ = attribute_request_energy(run.cluster, run.records)
        requests = {r.request_id: r for r in run.workload.requests()}
        items = sorted(per_request.items())
        for rid_a, joules_a in items:
            for rid_b, joules_b in items:
                da, db = requests[rid_a].demands, requests[rid_b].demands
                if all(x < y for x, y in zip(da, db)) and joules_a > 0:
                    assert joules_b > 0.2 * joules_a


class TestEdgeCases:
    def test_empty_run(self):
        class NoArrivals:
            def times(self, horizon_s):
                return ()

        report = build_serving_report(small_run(arrivals=NoArrivals()))
        assert report.n_requests == 0
        assert report.completed == 0
        assert report.p50_s is None
        assert report.p99_s is None
        assert report.throughput_rps == 0.0
        assert report.energy_per_request_j is None
        assert report.request_energy_j == 0.0
        assert report.unattributed_energy_j == report.energy_j > 0.0
        assert not report.meets_slo(1.0)  # nothing served, nothing met
        assert all(t.served == 0 for t in report.tiers)

    def test_single_request_run(self):
        class OneArrival:
            def times(self, horizon_s):
                return (0.1,)

        report = build_serving_report(small_run(arrivals=OneArrival()))
        assert report.n_requests == report.completed == 1
        assert report.p50_s == report.p95_s == report.p99_s
        assert report.meets_slo(report.p99_s)
        assert report.energy_per_request_j == report.energy_j

    def test_shed_load_counts_and_percentile_exclusion(self):
        run = small_run(
            tiers=(
                TierSpec("fe", nodes=1, service_cycles=1.0e6),
                TierSpec("app", nodes=1, service_cycles=40.0e6,
                         queue_capacity=2),
            ),
            arrivals=PoissonArrivals(120.0, seed=5),
            horizon_s=1.0,
            timeout_s=0.5,
        )
        report = build_serving_report(run)
        assert report.dropped > 0 or report.timed_out > 0
        completed = [r.latency_s for r in run.records if r.status == "ok"]
        assert report.p99_s == oracle_percentile(completed, 99)
        # Shedding disqualifies the SLO outright, whatever the p99.
        assert not report.meets_slo(float("inf"))


class TestSerialisation:
    def test_round_trip_on_a_real_report(self, report):
        assert ServingReport.from_dict(report.to_dict()) == report

    def test_tier_breakdown_round_trips_nones(self):
        tier = TierBreakdown("quiet", 0, 0.0, 0.0, None, None, None)
        assert TierBreakdown.from_dict(tier.to_dict()) == tier

    def test_summary_lines_handle_missing_percentiles(self):
        report = ServingReport(
            label="quiet",
            n_requests=0,
            completed=0,
            dropped=0,
            timed_out=0,
            duration_s=2.0,
            throughput_rps=0.0,
            p50_s=None,
            p95_s=None,
            p99_s=None,
            energy_j=10.0,
            request_energy_j=0.0,
            unattributed_energy_j=10.0,
            energy_per_request_j=None,
            tiers=(TierBreakdown("fe", 0, 0.0, 0.0, None, None, None),),
        )
        lines = report.summary_lines()
        assert lines and "quiet" in lines[0]
        assert any("n/a" in line for line in lines)
