"""KnobMapReport: cell semantics, best-knob resolution, and the grid."""

import pytest

from repro.metrics import KnobCell, KnobMapReport, best_knob


def make_cell(rate, frac, *, met_elastic, met_dvfs, escalation):
    best = best_knob(met_dvfs, met_elastic, escalation)
    return KnobCell(
        base_rate_rps=rate,
        budget_frac=frac,
        budget_watts=frac * 46.0,
        policy_watts={"elastic@30W": 28.0, "elastic[dvfs]@30W": 38.0},
        policy_met={
            "elastic@30W": met_elastic,
            "elastic[dvfs]@30W": met_dvfs,
        },
        elastic_escalation=escalation,
        best_knob=best,
        feasible=met_elastic or met_dvfs,
        elastic_p99_s=0.02,
    )


def make_report():
    return KnobMapReport(
        label="knobmap",
        workload="diurnal",
        static_watts={"30": 46.0, "40": 47.0},
        cells=(
            make_cell(30.0, 0.9, met_elastic=True, met_dvfs=True,
                      escalation="dvfs"),
            make_cell(30.0, 0.8, met_elastic=True, met_dvfs=False,
                      escalation="cores"),
            make_cell(30.0, 0.6, met_elastic=True, met_dvfs=False,
                      escalation="gate"),
            make_cell(30.0, 0.35, met_elastic=False, met_dvfs=False,
                      escalation="gate"),
            make_cell(40.0, 0.9, met_elastic=True, met_dvfs=True,
                      escalation="dvfs"),
        ),
    )


class TestBestKnob:
    def test_dvfs_wins_whenever_a_pure_dvfs_policy_meets(self):
        # Even if elastic also met it via a deeper knob: cheapest wins.
        assert best_knob(True, True, "gate") == "dvfs"

    def test_elastic_escalation_names_the_winner_otherwise(self):
        assert best_knob(False, True, "cores") == "cores"
        assert best_knob(False, True, "gate") == "gate"

    def test_none_when_nothing_meets(self):
        assert best_knob(False, False, "gate") == "none"


class TestReport:
    def test_infeasible_cells(self):
        report = make_report()
        assert [c.budget_frac for c in report.infeasible_cells] == [0.35]

    def test_elastic_only_cells_are_the_cores_and_gate_wins(self):
        report = make_report()
        assert [c.best_knob for c in report.elastic_only_cells] == [
            "cores",
            "gate",
        ]

    def test_cell_lookup_is_exact(self):
        report = make_report()
        assert report.cell(30.0, 0.8).best_knob == "cores"
        with pytest.raises(KeyError):
            report.cell(30.0, 0.7)

    def test_summary_renders_the_rate_by_frac_grid(self):
        lines = report = make_report().summary_lines()
        text = "\n".join(lines)
        assert "2 elastic-only" in text
        assert "1 infeasible" in text
        # Grid: both rates as rows; the missing (40, 0.35) cell dashes.
        assert any("30" in line and "none" in line for line in lines)
        assert any("40" in line and "-" in line for line in lines)

    def test_round_trip_preserves_every_cell(self):
        report = make_report()
        clone = KnobMapReport.from_dict(report.to_dict())
        assert clone == report
        assert clone.cell(30.0, 0.6).elastic_escalation == "gate"
