"""One report protocol, seven reports: every metrics report exposes the
same machine face (``to_dict``/``to_json``) and human face
(``summary_lines``), checked structurally via ``ReportProtocol``."""

import json

import pytest

from repro.metrics import ReportProtocol
from repro.metrics.attribution import AttributionReport, AttributionRow
from repro.metrics.chaos import ChaosReport
from repro.metrics.ed2p import build_ed2p_report
from repro.metrics.knobmap import KnobCell, KnobMapReport
from repro.metrics.powercap import build_cap_report
from repro.metrics.records import EnergyDelayPoint
from repro.metrics.scaling import GenerationVerdict, ScalingReport
from repro.metrics.serving import ServingReport, TierBreakdown


def ed2p_report():
    points = [
        EnergyDelayPoint("stat-600", 90.0, 12.0, 600e6),
        EnergyDelayPoint("stat-1400", 120.0, 8.0, 1400e6),
    ]
    return build_ed2p_report(points, label="crescendo")


def powercap_report():
    return build_cap_report(
        label="cap@150W/redist",
        cap_watts=150.0,
        tolerance=0.05,
        energy_j=1200.0,
        delay_s=10.0,
        window_watts=[140.0, 149.0, 151.0],
        window_durations=[0.25, 0.25, 0.25],
        uncapped_delay_s=9.0,
    )


def chaos_report():
    return ChaosReport(
        label="cap@120W/selfheal",
        cap_watts=120.0,
        tolerance=0.05,
        energy_j=900.0,
        delay_s=9.0,
        total_windows=36,
        violation_windows=3,
        excused_violations=3,
        post_recovery_violations=0,
        worst_recovery_latency_s=0.4,
        n_transitions=6,
        repair_events=2,
        invariant_violations=0,
        allowed_recovery_s=1.0,
    )


def attribution_report():
    rows = (
        AttributionRow(0, "(compute)", 6.0, 60.0, 1),
        AttributionRow(0, "alltoall", 4.0, 45.0, 8),
        AttributionRow(1, "(compute)", 5.5, 55.0, 1),
        AttributionRow(1, "alltoall", 4.5, 50.0, 8),
    )
    return AttributionReport(
        label="ft-S",
        t0=0.0,
        t1=10.0,
        total_energy_j=210.0,
        rows=rows,
        categories=("mpi.",),
    )


def serving_report():
    return ServingReport(
        label="tierdvs",
        n_requests=100,
        completed=97,
        dropped=2,
        timed_out=1,
        duration_s=10.0,
        throughput_rps=9.7,
        p50_s=0.010,
        p95_s=0.021,
        p99_s=0.034,
        energy_j=500.0,
        request_energy_j=120.0,
        unattributed_energy_j=380.0,
        energy_per_request_j=500.0 / 97,
        tiers=(
            TierBreakdown("app", 98, 0.002, 0.006, 0.007, 0.011, 0.015),
            TierBreakdown("quiet", 0, 0.0, 0.0, None, None, None),
        ),
    )


def scaling_report():
    return ScalingReport(
        label="techscaling/ft.B.8",
        workload="ft.B.8",
        verdicts=(
            GenerationVerdict(
                tech="45nm/itrs",
                nm=45,
                projection="itrs",
                rungs=5,
                slowest_mhz=600.0,
                fastest_mhz=1400.0,
                dyn_label="dyn-1400",
                dyn_energy=0.63,
                dyn_delay=1.02,
                cpuspeed_energy=0.97,
                cpuspeed_delay=1.01,
            ),
            GenerationVerdict(
                tech="8nm/itrs",
                nm=8,
                projection="itrs",
                rungs=4,
                slowest_mhz=3119.0,
                fastest_mhz=5390.0,
                dyn_label="dyn-5390",
                dyn_energy=0.86,
                dyn_delay=1.01,
                cpuspeed_energy=0.96,
                cpuspeed_delay=1.00,
            ),
        ),
    )


def knobmap_report():
    def cell(rate, frac, best, feasible, escalation):
        budget = frac * 46.0
        return KnobCell(
            base_rate_rps=rate,
            budget_frac=frac,
            budget_watts=budget,
            policy_watts={"elastic@30W": 28.0, "powercap@30W": 38.0},
            policy_met={"elastic@30W": feasible, "powercap@30W": False},
            elastic_escalation=escalation,
            best_knob=best,
            feasible=feasible,
            elastic_p99_s=0.021,
        )

    return KnobMapReport(
        label="knobmap",
        workload="diurnal two-tier serving",
        static_watts={"30": 46.0},
        cells=(
            cell(30.0, 0.9, "dvfs", True, "dvfs"),
            cell(30.0, 0.6, "gate", True, "gate"),
            cell(30.0, 0.35, "none", False, "gate"),
        ),
    )


REPORTS = {
    "ed2p": ed2p_report,
    "powercap": powercap_report,
    "chaos": chaos_report,
    "attribution": attribution_report,
    "serving": serving_report,
    "scaling": scaling_report,
    "knobmap": knobmap_report,
}


@pytest.fixture(params=sorted(REPORTS), ids=sorted(REPORTS))
def report(request):
    return REPORTS[request.param]()


class TestProtocol:
    def test_satisfies_report_protocol(self, report):
        assert isinstance(report, ReportProtocol)

    def test_to_dict_is_jsonable_and_labelled(self, report):
        data = report.to_dict()
        assert data["label"] == report.label
        json.dumps(data)  # raises on anything non-JSON-able

    def test_to_json_round_trips_to_dict(self, report):
        assert json.loads(report.to_json()) == json.loads(
            json.dumps(report.to_dict(), sort_keys=True)
        )
        # indent is cosmetic, content identical
        assert json.loads(report.to_json(indent=2)) == json.loads(
            report.to_json()
        )

    def test_summary_lines_are_nonempty_strings(self, report):
        lines = report.summary_lines()
        assert lines and all(isinstance(line, str) and line for line in lines)
        assert report.label in lines[0]


class TestRoundTrips:
    @pytest.mark.parametrize(
        "name",
        ["ed2p", "chaos", "attribution", "serving", "scaling", "knobmap"],
    )
    def test_from_dict_inverts_to_dict(self, name):
        original = REPORTS[name]()
        assert type(original).from_dict(original.to_dict()) == original

    def test_powercap_from_dict_inverts_to_dict(self):
        original = powercap_report()
        assert type(original).from_dict(original.to_dict()) == original


class TestProtocolIsStructural:
    def test_foreign_object_with_the_shape_passes(self):
        class Foreign:
            @property
            def label(self):
                return "foreign"

            def to_dict(self):
                return {"label": "foreign"}

            def to_json(self, indent=None):
                return "{}"

            def summary_lines(self):
                return ["foreign"]

        assert isinstance(Foreign(), ReportProtocol)

    def test_object_missing_summary_lines_fails(self):
        class Half:
            label = "half"

            def to_dict(self):
                return {}

            def to_json(self, indent=None):
                return "{}"

        assert not isinstance(Half(), ReportProtocol)
