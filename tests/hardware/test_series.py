"""Property-based tests for the columnar power-series kernel.

Every batch/prefix-sum query must agree with the brute-force scalar
segment walks kept on :class:`PowerTimeline` exactly for that purpose
(``_energy_walk`` / ``_power_at_walk`` / ``_peak_walk``) — including the
extend-to-infinity convention past the last change point and degenerate
``t0 == t1`` intervals.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.hardware.series import ClusterSeries, PowerSeries
from repro.hardware.timeline import PowerTimeline

# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------
_WATTS = st.floats(min_value=0.0, max_value=250.0)

_CHANGES = st.lists(
    st.tuples(st.floats(min_value=1e-3, max_value=7.0), _WATTS),
    min_size=0,
    max_size=25,
)


def _build(changes, initial=12.5):
    tl = PowerTimeline(start_time=0.0, initial_power=initial)
    t = 0.0
    for dt, watts in changes:
        t += dt
        tl.set_power(t, watts)
    return tl, t


# Query times reach well past any last change point, so the
# extend-to-infinity convention is always exercised.
_T = st.floats(min_value=0.0, max_value=300.0)


@given(changes=_CHANGES, t0=_T, t1=_T)
def test_energy_matches_segment_walk(changes, t0, t1):
    tl, _ = _build(changes)
    lo, hi = min(t0, t1), max(t0, t1)
    assert tl.series().energy(lo, hi) == pytest.approx(
        tl._energy_walk(lo, hi), rel=1e-12, abs=1e-9
    )


@given(changes=_CHANGES, t=_T)
def test_power_at_matches_walk_exactly(changes, t):
    tl, _ = _build(changes)
    assert tl.series().power_at(t) == tl._power_at_walk(t)


@given(changes=_CHANGES, t0=_T, t1=_T)
def test_average_power_matches_walk(changes, t0, t1):
    tl, _ = _build(changes)
    lo, hi = min(t0, t1), max(t0, t1)
    got = tl.series().average_power(lo, hi)
    if hi == lo:
        assert got == tl._power_at_walk(lo)  # degenerate interval
    else:
        # Compare via window energy: prefix-sum cancellation error is
        # absolute in joules, and dividing by a tiny width would turn it
        # into an unbounded relative error on the average.
        assert got * (hi - lo) == pytest.approx(
            tl._energy_walk(lo, hi), rel=1e-12, abs=1e-9
        )


@given(changes=_CHANGES, t0=_T, t1=_T)
def test_peak_power_matches_walk_exactly(changes, t0, t1):
    tl, _ = _build(changes)
    lo, hi = min(t0, t1), max(t0, t1)
    assert tl.series().peak_power(lo, hi) == tl._peak_walk(lo, hi)


@given(
    changes=_CHANGES,
    times=st.lists(_T, min_size=1, max_size=40),
)
def test_batch_sample_matches_scalar_walk(changes, times):
    tl, _ = _build(changes)
    got = tl.series().sample(np.array(sorted(times)))
    want = [tl._power_at_walk(t) for t in sorted(times)]
    assert got.tolist() == want


@given(
    changes=_CHANGES,
    intervals=st.lists(st.tuples(_T, _T), min_size=0, max_size=25),
)
def test_energy_many_matches_per_interval_walks(changes, intervals):
    tl, _ = _build(changes)
    ordered = np.array(
        [(min(a, b), max(a, b)) for a, b in intervals], dtype=float
    ).reshape(len(intervals), 2)
    got = tl.series().energy_many(ordered)
    assert got.shape == (len(intervals),)
    for row, joules in zip(ordered, got):
        assert joules == pytest.approx(
            tl._energy_walk(row[0], row[1]), rel=1e-12, abs=1e-9
        )


@given(
    changes=_CHANGES,
    start=st.floats(min_value=0.0, max_value=50.0),
    widths=st.lists(
        st.floats(min_value=0.0, max_value=9.0), min_size=1, max_size=20
    ),
)
def test_windowed_average_matches_walk_per_cell(changes, start, widths):
    tl, _ = _build(changes)
    edges = np.concatenate(([start], start + np.cumsum(widths)))
    got = tl.series().windowed_average(edges)
    assert got.shape == (len(widths),)
    for k, avg in enumerate(got):
        lo, hi = float(edges[k]), float(edges[k + 1])
        if hi == lo:
            # zero-width cell: reports the instantaneous sample
            assert avg == tl._power_at_walk(lo)
        else:
            # Energy-space comparison, as in the average_power test.
            assert avg * (hi - lo) == pytest.approx(
                tl._energy_walk(lo, hi), rel=1e-12, abs=1e-9
            )


@given(changes=_CHANGES, t1=st.floats(min_value=0.0, max_value=300.0))
def test_zero_width_interval_has_zero_energy(changes, t1):
    tl, _ = _build(changes)
    assert tl.series().energy(t1, t1) == 0.0


@settings(max_examples=25)
@given(
    changes=_CHANGES,
    ticks=st.lists(
        st.floats(min_value=1e-3, max_value=11.0), min_size=1, max_size=15
    ),
)
def test_cursor_increments_are_bit_identical_to_window_walks(changes, ticks):
    """The live-instrument contract: each ``advance`` returns exactly the
    scalar window walk over the new interval (closed-loop consumers rely
    on this for reproducible control trajectories)."""
    tl, _ = _build(changes)
    cursor = tl.cursor(0.0)
    t = 0.0
    for dt in ticks:
        t0, t = t, t + dt
        assert cursor.advance(t) == tl._energy_walk(t0, t)
    assert cursor.time == t


def test_cursor_cannot_move_backwards():
    tl = PowerTimeline(initial_power=10.0)
    cursor = tl.cursor(0.0)
    cursor.advance(5.0)
    with pytest.raises(ValueError):
        cursor.advance(4.0)


def test_cursor_joules_telescopes_to_total():
    tl = PowerTimeline(initial_power=10.0)
    tl.set_power(2.0, 30.0)
    cursor = tl.cursor(0.0)
    for t in (1.0, 2.5, 4.0):
        cursor.advance(t)
    assert cursor.joules == pytest.approx(tl.energy(0.0, 4.0), rel=1e-12)


# ---------------------------------------------------------------------------
# construction and validation
# ---------------------------------------------------------------------------
def test_series_requires_strictly_increasing_times():
    with pytest.raises(ValueError):
        PowerSeries([0.0, 1.0, 1.0], [1.0, 2.0, 3.0])


def test_series_rejects_negative_watts():
    with pytest.raises(ValueError):
        PowerSeries([0.0, 1.0], [1.0, -2.0])


def test_frozen_arrays_are_immutable():
    series = PowerSeries([0.0, 1.0], [5.0, 10.0])
    with pytest.raises(ValueError):
        series.times[0] = 99.0
    with pytest.raises(ValueError):
        series.watts[0] = 99.0


def test_queries_before_start_rejected():
    series = PowerSeries([10.0, 11.0], [5.0, 10.0])
    with pytest.raises(ValueError):
        series.power_at(9.0)
    with pytest.raises(ValueError):
        series.energy(9.0, 12.0)
    with pytest.raises(ValueError):
        series.energy(12.0, 11.0)


# ---------------------------------------------------------------------------
# cluster-level merge
# ---------------------------------------------------------------------------
@settings(max_examples=40)
@given(
    per_node=st.lists(_CHANGES, min_size=1, max_size=4),
    t0=st.floats(min_value=0.0, max_value=40.0),
    dt=st.floats(min_value=0.0, max_value=40.0),
)
def test_cluster_series_matches_per_node_walk_sums(per_node, t0, dt):
    timelines = [_build(changes, initial=8.0 + i)[0] for i, changes in enumerate(per_node)]
    cs = ClusterSeries({i: tl.series() for i, tl in enumerate(timelines)})
    t1 = t0 + dt
    want_total = sum(tl._energy_walk(t0, t1) for tl in timelines)
    assert cs.total_energy(t0, t1) == pytest.approx(want_total, rel=1e-12, abs=1e-9)
    assert cs.power_at(t0) == pytest.approx(
        sum(tl._power_at_walk(t0) for tl in timelines), rel=1e-12
    )
    got_nodes = cs.node_energies(t0, t1)
    for i, tl in enumerate(timelines):
        assert got_nodes[i] == pytest.approx(
            tl._energy_walk(t0, t1), rel=1e-12, abs=1e-9
        )


@given(
    per_node=st.lists(_CHANGES, min_size=1, max_size=3),
    t0=st.floats(min_value=0.0, max_value=40.0),
    dt=st.floats(min_value=1e-3, max_value=40.0),
)
def test_cluster_peak_is_max_of_merged_trace(per_node, t0, dt):
    """The merged peak equals the max candidate over every change point —
    the pre-kernel candidate-evaluation definition."""
    timelines = [_build(changes)[0] for changes in per_node]
    cs = ClusterSeries({i: tl.series() for i, tl in enumerate(timelines)})
    t1 = t0 + dt
    candidates = {t0}
    for tl in timelines:
        candidates.update(
            t for t in tl.change_times(t0, t1)
        )
    want = max(
        sum(tl._power_at_walk(t) for tl in timelines) for t in candidates
    )
    assert cs.peak_power(t0, t1) == pytest.approx(want, rel=1e-12, abs=1e-12)
