"""Tests for the CMOS power models."""

import pytest

from repro.hardware.activity import CpuActivity
from repro.hardware.dvfs import PENTIUM_M_1400
from repro.hardware.power import (
    ActivityFactors,
    CpuPowerModel,
    NodePowerModel,
)
from repro.util.units import MHZ


@pytest.fixture
def cpu_model():
    return CpuPowerModel(PENTIUM_M_1400, max_power=21.0)


@pytest.fixture
def node_model(cpu_model):
    return NodePowerModel(cpu=cpu_model, base_power=8.2, nic_active_power=0.6)


def test_active_power_at_fastest_is_max(cpu_model):
    p = cpu_model.power(PENTIUM_M_1400.fastest, CpuActivity.ACTIVE)
    assert p == pytest.approx(21.0)


def test_active_power_scales_with_fv2(cpu_model):
    slow = PENTIUM_M_1400.slowest
    p = cpu_model.power(slow, CpuActivity.ACTIVE)
    assert p == pytest.approx(21.0 * PENTIUM_M_1400.relative_fv2(slow))


def test_power_monotone_in_frequency_for_each_state(cpu_model):
    for state in CpuActivity:
        powers = [cpu_model.power(p, state) for p in PENTIUM_M_1400]
        assert powers == sorted(powers), state


def test_activity_ordering(cpu_model):
    """ACTIVE > PROTO > MEMSTALL > SPIN > IDLE at any fixed point."""
    point = PENTIUM_M_1400.point_for(1000 * MHZ)
    order = [
        CpuActivity.ACTIVE,
        CpuActivity.PROTO,
        CpuActivity.MEMSTALL,
        CpuActivity.SPIN,
        CpuActivity.IDLE,
    ]
    powers = [cpu_model.power(point, s) for s in order]
    assert powers == sorted(powers, reverse=True)


def test_idle_scales_with_v2_not_fv2(cpu_model):
    """Halted core: leakage tracks V², not f·V²."""
    slow = PENTIUM_M_1400.slowest
    expected = 0.12 * 21.0 * (slow.voltage / PENTIUM_M_1400.fastest.voltage) ** 2
    assert cpu_model.power(slow, CpuActivity.IDLE) == pytest.approx(expected)


def test_utilization_blends_with_idle(cpu_model):
    point = PENTIUM_M_1400.fastest
    full = cpu_model.power(point, CpuActivity.PROTO, 1.0)
    idle = cpu_model.power(point, CpuActivity.IDLE, 1.0)
    half = cpu_model.power(point, CpuActivity.PROTO, 0.5)
    assert half == pytest.approx(0.5 * full + 0.5 * idle)


def test_utilization_validated(cpu_model):
    with pytest.raises(ValueError):
        cpu_model.power(PENTIUM_M_1400.fastest, CpuActivity.ACTIVE, 1.5)


def test_activity_factors_require_all_states():
    with pytest.raises(ValueError, match="missing activity factors"):
        ActivityFactors({CpuActivity.ACTIVE: 1.0})


def test_activity_factors_validated_as_fractions():
    factors = {s: 0.5 for s in CpuActivity}
    factors[CpuActivity.ACTIVE] = 1.5
    with pytest.raises(ValueError):
        ActivityFactors(factors)


def test_node_power_includes_base_and_nic(node_model):
    point = PENTIUM_M_1400.fastest
    without = node_model.power(point, CpuActivity.ACTIVE)
    with_nic = node_model.power(point, CpuActivity.ACTIVE, nic_active=True)
    assert without == pytest.approx(8.2 + 21.0)
    assert with_nic == pytest.approx(without + 0.6)


def test_node_power_breakdown_sums_to_total(node_model):
    point = PENTIUM_M_1400.point_for(800 * MHZ)
    parts = node_model.breakdown(point, CpuActivity.MEMSTALL, 0.7, nic_active=True)
    total = node_model.power(point, CpuActivity.MEMSTALL, 0.7, nic_active=True)
    assert sum(parts.values()) == pytest.approx(total)


def test_cpu_bound_energy_minimum_at_800mhz(node_model):
    """The Fig-7 precondition: for a CPU-bound loop, E(f) = P(f)·(f_max/f)
    is minimised at 800 MHz on this calibration (DESIGN.md §4)."""
    table = PENTIUM_M_1400
    energies = {}
    for point in table:
        watts = node_model.power(point, CpuActivity.ACTIVE)
        delay = table.fastest.frequency / point.frequency
        energies[point.mhz] = watts * delay
    best = min(energies, key=energies.get)
    assert best == 800
    # and 600 MHz costs more energy than 800 MHz (paper: "energy
    # consumption then actually increases at 600 MHz")
    assert energies[600] > energies[800]


def test_negative_base_power_rejected(cpu_model):
    with pytest.raises(ValueError):
        NodePowerModel(cpu=cpu_model, base_power=-1.0)
