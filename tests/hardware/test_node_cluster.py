"""Tests for node power integration and cluster assembly."""

import pytest

from repro.hardware.activity import CpuActivity
from repro.hardware.calibration import Calibration, DEFAULT_CALIBRATION
from repro.hardware.cluster import Cluster
from repro.hardware.spec import ClusterSpec
from repro.hardware.dvfs import PENTIUM_M_1400
from repro.sim import TraceRecorder
from repro.util.units import MIB, MHZ


def test_cluster_build_defaults():
    cluster = Cluster.from_spec(ClusterSpec.homogeneous(4))
    assert cluster.n_nodes == 4
    assert cluster.table is PENTIUM_M_1400
    assert all(n.cpu.frequency == 1400 * MHZ for n in cluster.nodes)


def test_cluster_rejects_empty():
    with pytest.raises(ValueError):
        Cluster.from_spec(ClusterSpec.homogeneous(0))


def test_idle_node_power_is_base_plus_cpu_idle():
    cluster = Cluster.from_spec(ClusterSpec.homogeneous(1))
    node = cluster.nodes[0]
    cal = cluster.calibration
    expected = cal.base_power + cal.cpu_max_power * cal.activity_factors[
        CpuActivity.IDLE
    ]
    assert node.timeline.power_at(0.0) == pytest.approx(expected)


def test_node_energy_integrates_cpu_work():
    cluster = Cluster.from_spec(ClusterSpec.homogeneous(1))
    eng = cluster.engine
    node = cluster.nodes[0]

    def prog():
        yield from node.cpu.run_cycles(1.4e9)  # 1 s fully active

    p = eng.process(prog())
    eng.run(until=p)
    cluster.finalize()
    cal = cluster.calibration
    expected = (cal.base_power + cal.cpu_max_power) * 1.0
    assert node.timeline.energy(0.0, 1.0) == pytest.approx(expected)


def test_nic_power_appears_during_transfer():
    cluster = Cluster.from_spec(ClusterSpec.homogeneous(2))
    eng = cluster.engine
    sender, receiver = cluster.nodes

    def prog():
        yield from cluster.fabric.transfer(0, 1, 2 * MIB)

    p = eng.process(prog())
    eng.run(until=p)
    cal = cluster.calibration
    # Mid-transfer both nodes' power includes the NIC term.
    mid = eng.now / 2
    idle_cpu = cal.cpu_max_power * cal.activity_factors[CpuActivity.IDLE]
    expected = cal.base_power + idle_cpu + cal.nic_active_power
    assert sender.timeline.power_at(mid) == pytest.approx(expected)
    assert receiver.timeline.power_at(mid) == pytest.approx(expected)
    # After the transfer the NIC term is gone.
    assert not sender.nic_active and not receiver.nic_active


def test_total_cluster_energy_sums_nodes():
    cluster = Cluster.from_spec(ClusterSpec.homogeneous(3))
    eng = cluster.engine
    eng.timeout(2.0)
    eng.run()
    cluster.finalize()
    per_node = cluster.nodes[0].timeline.energy(0.0, 2.0)
    assert cluster.total_energy(0.0, 2.0) == pytest.approx(3 * per_node)


def test_frequency_change_reflected_in_power():
    cluster = Cluster.from_spec(ClusterSpec.homogeneous(1))
    eng = cluster.engine
    node = cluster.nodes[0]

    def prog():
        yield eng.timeout(1.0)
        node.cpu.set_frequency(PENTIUM_M_1400.slowest)
        yield eng.timeout(1.0)

    p = eng.process(prog())
    eng.run(until=p)
    assert node.timeline.power_at(0.5) > node.timeline.power_at(1.5)


def test_trace_records_power_changes():
    trace = TraceRecorder(categories=["node.power"])
    cluster = Cluster.from_spec(ClusterSpec.homogeneous(1), trace=trace)
    eng = cluster.engine
    node = cluster.nodes[0]

    def prog():
        yield from node.cpu.run_cycles(1e6)

    p = eng.process(prog())
    eng.run(until=p)
    assert len(trace.select("node.power")) >= 2  # active + back to idle


def test_calibration_overrides():
    cal = DEFAULT_CALIBRATION.with_overrides(base_power=5.0)
    assert cal.base_power == 5.0
    assert cal.cpu_max_power == DEFAULT_CALIBRATION.cpu_max_power
    cluster = Cluster.from_spec(ClusterSpec.homogeneous(1), calibration=cal)
    node = cluster.nodes[0]
    idle_cpu = cal.cpu_max_power * cal.activity_factors[CpuActivity.IDLE]
    assert node.timeline.power_at(0.0) == pytest.approx(5.0 + idle_cpu)


def test_calibration_validation():
    with pytest.raises(ValueError):
        Calibration(cpu_max_power=0.0)
    with pytest.raises(ValueError):
        Calibration(base_power=-1.0)
    with pytest.raises(ValueError):
        Calibration(transition_penalty=-1.0)


def test_nodes_share_one_engine_and_fabric():
    cluster = Cluster.from_spec(ClusterSpec.homogeneous(4))
    engines = {n.engine for n in cluster.nodes}
    assert engines == {cluster.engine}
    assert cluster.fabric.n_nodes == 4


def test_cluster_series_cached_until_any_node_timeline_changes():
    cluster = Cluster.from_spec(ClusterSpec.homogeneous(2))
    series = cluster.series()
    assert cluster.series() is series  # reused while no node changed
    cluster.nodes[1].timeline.set_power(1.0, 99.0)
    fresh = cluster.series()
    assert fresh is not series
    assert fresh.node(1).power_at(2.0) == 99.0


def test_cluster_aggregates_delegate_to_merged_series():
    cluster = Cluster.from_spec(ClusterSpec.homogeneous(2))
    for node in cluster.nodes:
        node.timeline.set_power(1.0, 10.0)
        node.timeline.set_power(3.0, 30.0)
    assert cluster.power_at(2.0) == pytest.approx(20.0)
    assert cluster.peak_power(0.0, 4.0) == pytest.approx(60.0)
    assert cluster.average_power(1.0, 3.0) == pytest.approx(20.0)
    by_node = cluster.node_average_powers(1.0, 3.0)
    assert by_node == {0: pytest.approx(10.0), 1: pytest.approx(10.0)}
