"""Tests for the thermal/reliability model (paper §1 motivation)."""

import pytest

from repro.hardware.reliability import (
    ReliabilityModel,
    compare_reliability,
)
from repro.metrics.records import EnergyDelayPoint


@pytest.fixture
def model():
    return ReliabilityModel()


def test_temperature_linear_in_power(model):
    assert model.temperature(0.0) == model.ambient_c
    assert model.temperature(10.0) == model.ambient_c + 10.0


def test_paper_rule_ten_degrees_doubles_life(model):
    """Exactly the paper's sentence: −10 °C ⇒ ×2 life expectancy."""
    ref = model.reference_power_w
    ten_c_less_power = ref - 10.0 / model.thermal_resistance_c_per_w
    assert model.life_expectancy_factor(ten_c_less_power) == pytest.approx(2.0)


def test_reference_power_has_unit_factor(model):
    assert model.life_expectancy_factor(model.reference_power_w) == pytest.approx(1.0)
    assert model.failure_rate(model.reference_power_w) == pytest.approx(0.025)


def test_hotter_than_reference_fails_more(model):
    assert model.failure_rate(model.reference_power_w + 10) > 0.025


def test_cluster_failures_scale_with_nodes(model):
    one = model.cluster_failures_per_year(20.0, 1)
    many = model.cluster_failures_per_year(20.0, 16)
    assert many == pytest.approx(16 * one)
    with pytest.raises(ValueError):
        model.cluster_failures_per_year(20.0, 0)


def test_compare_reliability_orders_points(model):
    points = [
        EnergyDelayPoint("stat@600MHz", energy=2000.0, delay=107.0, frequency=6e8),
        EnergyDelayPoint("stat@1400MHz", energy=2920.0, delay=100.0, frequency=1.4e9),
    ]
    rows = compare_reliability(points, n_nodes=1, model=model)
    slow, fast = rows
    assert slow.average_power_w < fast.average_power_w
    assert slow.temperature_c < fast.temperature_c
    assert slow.life_factor > fast.life_factor
    assert slow.failures_per_year < fast.failures_per_year


def test_petaflop_scale_failure_arithmetic(model):
    """The paper's intro arithmetic: ~12000 nodes at 2-3 %/yr sustain a
    failure roughly daily — our model reproduces the order of magnitude."""
    failures = model.cluster_failures_per_year(model.reference_power_w, 12_000)
    per_day = failures / 365
    # "hardware failures once every twenty-four hours" → ~1/day, but the
    # paper's 2-3 % is per *component* and nodes hold several; accept the
    # right order of magnitude at node granularity.
    assert 0.2 < per_day < 5


def test_validation():
    with pytest.raises(ValueError):
        ReliabilityModel(thermal_resistance_c_per_w=0.0)
    with pytest.raises(ValueError):
        ReliabilityModel(annual_failure_rate=0.0)
    model = ReliabilityModel()
    with pytest.raises(ValueError):
        model.temperature(-1.0)
