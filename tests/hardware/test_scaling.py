"""Tests for technology scaling: projection tables, ladder porting,
core kinds, and calibration scaling."""

import pytest

from repro.hardware.calibration import DEFAULT_CALIBRATION
from repro.hardware.dvfs import PENTIUM_M_1400
from repro.hardware.scaling import (
    CORE_IO,
    CORE_KINDS,
    CORE_O3,
    CoreKind,
    PROJECTIONS,
    TECH_BASE,
    TECH_NODES,
    TECH_SIZES_NM,
    TechNode,
    scaled_calibration,
    scaled_table,
    tech_node,
)


class TestTechNode:
    def test_base_node_has_unit_factors(self):
        assert TECH_BASE.is_base
        assert TECH_BASE.nm == 45
        assert TECH_BASE.vdd_scale == 1.0
        assert TECH_BASE.freq_scale == 1.0
        assert TECH_BASE.power_scale == 1.0
        assert TECH_BASE.vth_scale == 1.0
        assert TECH_BASE.platform_power_scale == 1.0

    def test_grid_covers_every_size_and_projection(self):
        assert len(TECH_NODES) == len(TECH_SIZES_NM) * len(PROJECTIONS)
        labels = [t.label for t in TECH_NODES]
        assert len(set(labels)) == len(labels)
        assert labels[0] == "45nm/itrs"

    def test_tech_node_lookup_matches_grid(self):
        for node in TECH_NODES:
            assert tech_node(node.nm, node.projection) == node

    def test_unknown_projection_rejected(self):
        with pytest.raises(ValueError, match="projection"):
            tech_node(45, "optimistic")

    def test_unknown_size_rejected(self):
        with pytest.raises(ValueError, match="available sizes"):
            tech_node(130)

    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="projection"):
            TechNode(45, "bad", 1.0, 1.0, 1.0, 1.0)
        with pytest.raises(ValueError):
            TechNode(45, "itrs", -1.0, 1.0, 1.0, 1.0)
        with pytest.raises(ValueError):
            TechNode(45, "itrs", 1.0, 0.0, 1.0, 1.0)

    def test_rail_falls_slower_than_itrs_vdd(self):
        """The guard band is absolute, so the rail/vdd *ratio* worsens
        down the ITRS shrink — the mechanism that eats ladder rungs."""
        headroom = [
            tech_node(nm, "itrs").vdd_scale * 1.484
            - tech_node(nm, "itrs").min_voltage
            for nm in TECH_SIZES_NM
        ]
        assert headroom == sorted(headroom, reverse=True)

    def test_label_round_trip(self):
        node = tech_node(22, "cons")
        assert node.label == "22nm/cons"
        assert str(node) == node.label


class TestScaledTable:
    def test_identity_at_base_tech(self):
        assert scaled_table(PENTIUM_M_1400, TECH_BASE) is PENTIUM_M_1400
        assert (
            scaled_table(PENTIUM_M_1400, TECH_BASE, CORE_O3)
            is PENTIUM_M_1400
        )

    def test_point_scaling_math(self):
        tech = tech_node(22, "itrs")
        table = scaled_table(PENTIUM_M_1400, tech)
        base_fastest = PENTIUM_M_1400.fastest
        assert table.fastest.frequency == pytest.approx(
            base_fastest.frequency * tech.freq_scale
        )
        assert table.fastest.voltage == pytest.approx(
            base_fastest.voltage * tech.vdd_scale
        )

    def test_itrs_ladder_loses_rungs_conservative_does_not(self):
        base_rungs = len(PENTIUM_M_1400.points)
        itrs_rungs = [
            len(scaled_table(PENTIUM_M_1400, tech_node(nm, "itrs")).points)
            for nm in TECH_SIZES_NM
        ]
        cons_rungs = [
            len(scaled_table(PENTIUM_M_1400, tech_node(nm, "cons")).points)
            for nm in TECH_SIZES_NM
        ]
        # aggressive voltage scaling genuinely shrinks the usable ladder
        assert itrs_rungs[0] == base_rungs
        assert itrs_rungs[-1] < base_rungs
        assert itrs_rungs == sorted(itrs_rungs, reverse=True)
        # conservative scaling keeps every rung on every generation
        assert cons_rungs == [base_rungs] * len(TECH_SIZES_NM)

    def test_rail_cuts_from_the_slow_end(self):
        tech = tech_node(8, "itrs")
        table = scaled_table(PENTIUM_M_1400, tech)
        kept = len(table.points)
        # the survivors are exactly the top of the scaled base ladder
        expected = [
            p.frequency * tech.freq_scale
            for p in PENTIUM_M_1400.points[-kept:]
        ]
        assert [p.frequency for p in table.points] == pytest.approx(expected)
        assert all(p.voltage >= tech.min_voltage for p in table.points)

    def test_unportable_ladder_rejected(self):
        hopeless = TechNode(8, "itrs", 0.1, 1.0, 1.0, 1.0)
        with pytest.raises(ValueError, match="rail"):
            scaled_table(PENTIUM_M_1400, hopeless)

    def test_io_core_scales_frequency_not_voltage(self):
        table = scaled_table(PENTIUM_M_1400, TECH_BASE, CORE_IO)
        assert table is not PENTIUM_M_1400
        for scaled, base in zip(table.points, PENTIUM_M_1400.points):
            assert scaled.frequency == pytest.approx(
                base.frequency * CORE_IO.freq_factor
            )
            assert scaled.voltage == base.voltage


class TestCoreKind:
    def test_registry(self):
        assert CORE_KINDS == {"o3": CORE_O3, "io": CORE_IO}

    def test_reference_flags(self):
        assert CORE_O3.is_reference
        assert not CORE_IO.is_reference

    def test_io_core_trades_power_for_cycles(self):
        assert CORE_IO.power_factor < 1.0
        assert CORE_IO.cycles_per_work > 1.0

    def test_validation(self):
        with pytest.raises(ValueError, match="name"):
            CoreKind(name="", power_factor=1.0, cycles_per_work=1.0)
        with pytest.raises(ValueError):
            CoreKind(name="x", power_factor=0.0, cycles_per_work=1.0)
        with pytest.raises(ValueError):
            CoreKind(name="x", power_factor=1.0, cycles_per_work=-1.0)
        with pytest.raises(ValueError):
            CoreKind(
                name="x", power_factor=1.0, cycles_per_work=1.0, freq_factor=0.0
            )


class TestScaledCalibration:
    def test_identity_at_reference(self):
        assert (
            scaled_calibration(DEFAULT_CALIBRATION, TECH_BASE)
            is DEFAULT_CALIBRATION
        )

    def test_cpu_power_rides_the_projection(self):
        tech = tech_node(16, "itrs")
        cal = scaled_calibration(DEFAULT_CALIBRATION, tech)
        assert cal.cpu_max_power == pytest.approx(
            DEFAULT_CALIBRATION.cpu_max_power * tech.power_scale
        )
        # the platform base scales slower than logic (sqrt of the factor)
        assert cal.base_power == pytest.approx(
            DEFAULT_CALIBRATION.base_power * tech.power_scale**0.5
        )
        assert cal.base_power / DEFAULT_CALIBRATION.base_power > (
            cal.cpu_max_power / DEFAULT_CALIBRATION.cpu_max_power
        )

    def test_core_power_factor_composes(self):
        tech = tech_node(16, "itrs")
        o3 = scaled_calibration(DEFAULT_CALIBRATION, tech, CORE_O3)
        io = scaled_calibration(DEFAULT_CALIBRATION, tech, CORE_IO)
        assert io.cpu_max_power == pytest.approx(
            o3.cpu_max_power * CORE_IO.power_factor
        )
        assert io.base_power == o3.base_power

    def test_io_core_alone_breaks_identity(self):
        cal = scaled_calibration(DEFAULT_CALIBRATION, TECH_BASE, CORE_IO)
        assert cal is not DEFAULT_CALIBRATION
        assert cal.cpu_max_power == pytest.approx(
            DEFAULT_CALIBRATION.cpu_max_power * CORE_IO.power_factor
        )
