"""Tests for the simulated CPU: work timing, DVS rescaling, wait policy."""

import pytest

from repro.hardware.activity import CpuActivity
from repro.hardware.cpu import SimCPU
from repro.hardware.dvfs import PENTIUM_M_1400
from repro.sim import Engine
from repro.util.units import MHZ


@pytest.fixture
def eng():
    return Engine()


@pytest.fixture
def cpu(eng):
    return SimCPU(eng, PENTIUM_M_1400)


def run(eng, gen):
    p = eng.process(gen)
    return eng.run(until=p)


def test_cycles_take_cycles_over_frequency(eng, cpu):
    def prog():
        yield from cpu.run_cycles(1.4e9)
        return eng.now

    assert run(eng, prog()) == pytest.approx(1.0)


def test_slower_frequency_takes_longer(eng, cpu):
    cpu.set_frequency(PENTIUM_M_1400.point_for(600 * MHZ))

    def prog():
        yield from cpu.run_cycles(1.4e9)
        return eng.now

    assert run(eng, prog()) == pytest.approx(1.4e9 / 600e6)


def test_zero_cycles_completes_instantly(eng, cpu):
    def prog():
        yield from cpu.run_cycles(0)
        return eng.now

    assert run(eng, prog()) == 0.0


def test_negative_cycles_rejected(eng, cpu):
    def prog():
        yield from cpu.run_cycles(-5)

    with pytest.raises(ValueError):
        run(eng, prog())


def test_midwork_frequency_change_retimes_remainder(eng, cpu):
    """Half the work at 1.4 GHz, half at 700M-cycle equivalent at 600 MHz."""

    def governor():
        yield eng.timeout(0.5)  # 0.7e9 cycles done at 1.4 GHz
        cpu.set_frequency(PENTIUM_M_1400.point_for(600 * MHZ))

    def prog():
        yield from cpu.run_cycles(1.4e9)
        return eng.now

    eng.process(governor())
    p = eng.process(prog())
    finish = eng.run(until=p)
    assert finish == pytest.approx(0.5 + 0.7e9 / 600e6)


def test_multiple_frequency_changes(eng, cpu):
    table = PENTIUM_M_1400

    def governor():
        yield eng.timeout(0.25)
        cpu.set_frequency(table.point_for(800 * MHZ))
        yield eng.timeout(0.25)
        cpu.set_frequency(table.point_for(1400 * MHZ))

    def prog():
        yield from cpu.run_cycles(1.4e9)
        return eng.now

    eng.process(governor())
    p = eng.process(prog())
    finish = eng.run(until=p)
    # 0.25s @1.4GHz = 0.35e9; 0.25s @800 = 0.2e9; remaining 0.85e9 @1.4GHz
    assert finish == pytest.approx(0.5 + 0.85e9 / 1.4e9)
    assert cpu.transition_count == 2


def test_stall_duration_is_frequency_independent(eng, cpu):
    cpu.set_frequency(PENTIUM_M_1400.slowest)

    def prog():
        yield from cpu.stall(0.125, CpuActivity.MEMSTALL)
        return eng.now

    assert run(eng, prog()) == pytest.approx(0.125)


def test_state_restored_to_idle_after_work(eng, cpu):
    def prog():
        yield from cpu.run_cycles(1e6)

    run(eng, prog())
    assert cpu.state is CpuActivity.IDLE


def test_procstat_accounts_work_as_busy(eng, cpu):
    def prog():
        yield from cpu.run_cycles(1.4e9)  # 1 s busy
        yield eng.timeout(2.0)  # 2 s idle
        yield from cpu.stall(0.5, CpuActivity.MEMSTALL)

    run(eng, prog())
    cpu.finalize()
    s = cpu.procstat.snapshot()
    assert s.busy == pytest.approx(1.5)
    assert s.idle == pytest.approx(2.0)


def test_set_frequency_rejects_illegal_point(eng, cpu):
    from repro.hardware.dvfs import OperatingPoint

    with pytest.raises(KeyError):
        cpu.set_frequency(OperatingPoint(900 * MHZ, 1.2))


def test_set_same_frequency_is_noop(eng, cpu):
    cpu.set_frequency(PENTIUM_M_1400.fastest)
    assert cpu.transition_count == 0


def test_wait_event_spins_then_blocks(eng, cpu):
    """State is SPIN for the threshold, then IDLE until the event."""
    states = []

    def sampler():
        while True:
            yield eng.timeout(0.001)
            states.append((round(eng.now, 4), cpu.state))

    ev = eng.event()

    def waiter():
        yield from cpu.wait_event(ev, spin_threshold=0.005)
        return eng.now

    def trigger():
        yield eng.timeout(0.02)
        ev.succeed("msg")

    eng.process(sampler())
    p = eng.process(waiter())
    eng.process(trigger())
    eng.run(until=p)

    spin_states = [s for t, s in states if t <= 0.005]
    idle_states = [s for t, s in states if 0.006 <= t <= 0.019]
    assert all(s is CpuActivity.SPIN for s in spin_states)
    assert all(s is CpuActivity.IDLE for s in idle_states)


def test_wait_event_returns_event_value(eng, cpu):
    ev = eng.event()

    def waiter():
        value = yield from cpu.wait_event(ev, spin_threshold=0.0)
        return value

    def trigger():
        yield eng.timeout(1.0)
        ev.succeed(123)

    p = eng.process(waiter())
    eng.process(trigger())
    assert eng.run(until=p) == 123


def test_wait_event_immediate_event_never_blocks(eng, cpu):
    ev = eng.event()
    ev.succeed("now")

    def waiter():
        value = yield from cpu.wait_event(ev, spin_threshold=0.005)
        return (value, eng.now)

    p = eng.process(waiter())
    value, t = eng.run(until=p)
    assert value == "now"
    assert t == 0.0


def test_wait_event_infinite_spin_never_blocks(eng, cpu):
    ev = eng.event()
    samples = []

    def sampler():
        for _ in range(5):
            yield eng.timeout(1.0)
            samples.append(cpu.state)

    def waiter():
        yield from cpu.wait_event(ev, spin_threshold=float("inf"))

    def trigger():
        yield eng.timeout(10.0)
        ev.succeed(None)

    eng.process(sampler())
    p = eng.process(waiter())
    eng.process(trigger())
    eng.run(until=p)
    assert all(s is CpuActivity.SPIN for s in samples)


def test_on_change_callback_fires_on_state_and_freq_changes(eng):
    calls = []
    cpu = SimCPU(eng, PENTIUM_M_1400, on_change=lambda: calls.append(eng.now))
    cpu.set_frequency(PENTIUM_M_1400.slowest)
    cpu.set_state(CpuActivity.ACTIVE)
    cpu.set_state(CpuActivity.ACTIVE)  # no-op, no callback
    assert len(calls) == 2
