"""Tests for the Ethernet fabric: timing, contention, activity signals."""

import pytest

from repro.hardware.network import NetworkConfig, NetworkFabric
from repro.sim import Engine
from repro.util.units import KIB, MIB


@pytest.fixture
def eng():
    return Engine()


def make_fabric(eng, n=4, **overrides):
    defaults = dict(latency=0.0, chunk_bytes=64 * KIB)
    defaults.update(overrides)
    return NetworkFabric(eng, n, NetworkConfig(**defaults))


def run(eng, gen):
    p = eng.process(gen)
    return eng.run(until=p)


def test_payload_rate():
    cfg = NetworkConfig(bandwidth_bps=100e6, efficiency=0.9)
    assert cfg.payload_rate == pytest.approx(100e6 * 0.9 / 8)
    assert cfg.wire_time(cfg.payload_rate) == pytest.approx(1.0)


def test_uncontended_transfer_time(eng):
    fab = make_fabric(eng)
    nbytes = 9 * MIB

    def prog():
        duration = yield from fab.transfer(0, 1, nbytes)
        return duration

    duration = run(eng, prog())
    assert duration == pytest.approx(nbytes / fab.config.payload_rate)


def test_latency_added_once_per_message(eng):
    fab = make_fabric(eng, latency=100e-6)

    def prog():
        duration = yield from fab.transfer(0, 1, 128 * KIB)
        return duration

    expected = 100e-6 + (128 * KIB) / fab.config.payload_rate
    assert run(eng, prog()) == pytest.approx(expected)


def test_zero_byte_message_costs_only_latency(eng):
    fab = make_fabric(eng, latency=50e-6)

    def prog():
        return (yield from fab.transfer(0, 1, 0))

    assert run(eng, prog()) == pytest.approx(50e-6)


def test_loopback_uses_memcpy_speed(eng):
    fab = make_fabric(eng, latency=100e-6)
    nbytes = 10 * MIB

    def prog():
        return (yield from fab.transfer(2, 2, nbytes))

    assert run(eng, prog()) == pytest.approx(nbytes / fab.config.loopback_bandwidth)


def test_incast_serialises_on_receiver_link(eng):
    """Two senders into one receiver take ~2x the solo time (rx shared)."""
    fab = make_fabric(eng)
    nbytes = 4 * MIB
    done = {}

    def sender(src):
        yield from fab.transfer(src, 0, nbytes)
        done[src] = eng.now

    eng.process(sender(1))
    eng.process(sender(2))
    eng.run()
    solo = nbytes / fab.config.payload_rate
    assert max(done.values()) == pytest.approx(2 * solo, rel=0.01)


def test_disjoint_flows_do_not_contend(eng):
    fab = make_fabric(eng)
    nbytes = 4 * MIB
    done = {}

    def sender(src, dst):
        yield from fab.transfer(src, dst, nbytes)
        done[src] = eng.now

    eng.process(sender(0, 1))
    eng.process(sender(2, 3))
    eng.run()
    solo = nbytes / fab.config.payload_rate
    assert max(done.values()) == pytest.approx(solo, rel=0.01)


def test_full_duplex_links(eng):
    """A→B and B→A run concurrently (tx and rx are separate resources)."""
    fab = make_fabric(eng)
    nbytes = 4 * MIB
    done = {}

    def sender(src, dst):
        yield from fab.transfer(src, dst, nbytes)
        done[src] = eng.now

    eng.process(sender(0, 1))
    eng.process(sender(1, 0))
    eng.run()
    solo = nbytes / fab.config.payload_rate
    assert max(done.values()) == pytest.approx(solo, rel=0.01)


def test_max_rate_caps_bandwidth(eng):
    fab = make_fabric(eng)
    nbytes = 1 * MIB
    capped_rate = fab.config.payload_rate / 4

    def prog():
        return (yield from fab.transfer(0, 1, nbytes, max_rate=capped_rate))

    assert run(eng, prog()) == pytest.approx(nbytes / capped_rate)


def test_activity_flags_during_transfer(eng):
    fab = make_fabric(eng)
    observed = []

    def sender():
        yield from fab.transfer(0, 1, 1 * MIB)

    def observer():
        yield eng.timeout(0.01)
        observed.append(
            (
                fab.tx_active(0),
                fab.rx_active(1),
                fab.tx_active(1),
                fab.rx_active(0),
                fab.traffic_active(0),
                fab.traffic_active(2),
            )
        )

    eng.process(sender())
    eng.process(observer())
    eng.run()
    assert observed == [(True, True, False, False, True, False)]
    assert not fab.traffic_active(0)  # all released at the end


def test_activity_changed_event_fires(eng):
    fab = make_fabric(eng)
    times = []

    def watcher():
        yield fab.activity_changed(1)
        times.append(eng.now)

    def sender():
        yield eng.timeout(0.5)
        yield from fab.transfer(0, 1, 64 * KIB)

    eng.process(watcher())
    eng.process(sender())
    eng.run()
    assert times == [0.5]


def test_activity_listener_callbacks(eng):
    fab = make_fabric(eng)
    flips = []
    fab.add_activity_listener(1, lambda: flips.append(fab.traffic_active(1)))

    def sender():
        yield from fab.transfer(0, 1, 64 * KIB)

    run(eng, sender())
    assert flips == [True, False]


def test_bytes_transferred_accounting(eng):
    fab = make_fabric(eng)

    def prog():
        yield from fab.transfer(0, 1, 1000)
        yield from fab.transfer(2, 2, 999)  # loopback not counted

    run(eng, prog())
    assert fab.bytes_transferred == 1000


def test_endpoint_validation(eng):
    fab = make_fabric(eng, n=2)

    def bad():
        yield from fab.transfer(0, 5, 10)

    with pytest.raises(ValueError):
        run(eng, bad())


def test_config_validation():
    with pytest.raises(ValueError):
        NetworkConfig(bandwidth_bps=0)
    with pytest.raises(ValueError):
        NetworkConfig(efficiency=1.5)
    with pytest.raises(ValueError):
        NetworkConfig(efficiency=0.0)
    with pytest.raises(ValueError):
        NetworkConfig(latency=-1.0)
    with pytest.raises(ValueError):
        NetworkFabric(Engine(), 0)
