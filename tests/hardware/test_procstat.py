"""Tests for /proc/stat emulation — the accounting cpuspeed relies on."""

import pytest

from repro.hardware.activity import CpuActivity, is_busy_for_procstat
from repro.hardware.procstat import ProcStat, ProcStatSample


def test_active_counts_busy():
    ps = ProcStat()
    ps.account(2.0, CpuActivity.ACTIVE)
    s = ps.snapshot()
    assert s.busy == 2.0 and s.idle == 0.0


def test_spin_counts_busy():
    """The paper's central accounting artifact: busy-wait looks busy."""
    ps = ProcStat()
    ps.account(3.0, CpuActivity.SPIN)
    assert ps.snapshot().busy == 3.0


def test_memstall_counts_busy():
    """A memory-bound app shows ~99% CPU efficiency in /proc/stat (paper §4)."""
    ps = ProcStat()
    ps.account(1.0, CpuActivity.MEMSTALL)
    assert ps.snapshot().busy == 1.0


def test_idle_counts_idle():
    ps = ProcStat()
    ps.account(4.0, CpuActivity.IDLE)
    s = ps.snapshot()
    assert s.idle == 4.0 and s.busy == 0.0


def test_partial_utilization_splits_time():
    ps = ProcStat()
    ps.account(10.0, CpuActivity.PROTO, utilization=0.3)
    s = ps.snapshot()
    assert s.busy == pytest.approx(3.0)
    assert s.idle == pytest.approx(7.0)


def test_utilization_ignored_for_idle_state():
    ps = ProcStat()
    ps.account(5.0, CpuActivity.IDLE, utilization=0.5)
    assert ps.snapshot().idle == 5.0


def test_snapshots_are_cumulative_and_immutable():
    ps = ProcStat()
    ps.account(1.0, CpuActivity.ACTIVE)
    s1 = ps.snapshot()
    ps.account(1.0, CpuActivity.IDLE)
    s2 = ps.snapshot()
    assert (s1.busy, s1.idle) == (1.0, 0.0)
    assert (s2.busy, s2.idle) == (1.0, 1.0)


def test_utilization_since():
    ps = ProcStat()
    ps.account(2.0, CpuActivity.ACTIVE)
    s1 = ps.snapshot()
    ps.account(1.0, CpuActivity.ACTIVE)
    ps.account(3.0, CpuActivity.IDLE)
    s2 = ps.snapshot()
    assert s2.utilization_since(s1) == pytest.approx(0.25)


def test_utilization_since_empty_interval_is_zero():
    s = ProcStatSample(busy=1.0, idle=1.0)
    assert s.utilization_since(s) == 0.0


def test_negative_duration_rejected():
    with pytest.raises(ValueError):
        ProcStat().account(-1.0, CpuActivity.ACTIVE)


def test_busy_state_classification():
    assert is_busy_for_procstat(CpuActivity.ACTIVE)
    assert is_busy_for_procstat(CpuActivity.SPIN)
    assert is_busy_for_procstat(CpuActivity.PROTO)
    assert is_busy_for_procstat(CpuActivity.MEMSTALL)
    assert not is_busy_for_procstat(CpuActivity.IDLE)
