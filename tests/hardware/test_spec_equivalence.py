"""The spec layer's contract with the legacy path: a single-group
:class:`ClusterSpec` builds the same hardware and produces bit-identical
outputs, the ``Cluster.build`` shim warns and delegates, and the two
constructors never drift apart (signature sync)."""

import inspect
import warnings

import pytest
from hypothesis import given, settings, strategies as st

from repro.dvs.strategy import DynamicStrategy, StaticStrategy
from repro.analysis.runner import run_measured
from repro.hardware.calibration import DEFAULT_CALIBRATION
from repro.hardware.cluster import Cluster
from repro.hardware.dvfs import PENTIUM_M_1400
from repro.hardware.scaling import CORE_IO, tech_node
from repro.hardware.spec import ClusterSpec, NodeSpec
from repro.powercap import (
    CapGovernorConfig,
    PowerBudget,
    PowerCapStrategy,
)
from repro.util.units import MHZ
from repro.workloads.nas_ft import NasFT


def legacy_build(n_nodes, **kwargs):
    """The deprecated path, with its warning swallowed."""
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        return Cluster.build(n_nodes, **kwargs)


class TestSpecValidation:
    def test_node_spec_rejects_empty_group(self):
        with pytest.raises(ValueError, match="count"):
            NodeSpec(count=0)

    def test_node_spec_rejects_empty_points_override(self):
        with pytest.raises(ValueError, match="points"):
            NodeSpec(count=1, points=())

    def test_cluster_spec_rejects_no_groups(self):
        with pytest.raises(ValueError, match="group"):
            ClusterSpec(groups=())

    def test_counts_and_homogeneity(self):
        spec = ClusterSpec(
            groups=(NodeSpec(count=3), NodeSpec(count=5, core=CORE_IO))
        )
        assert spec.n_nodes == 8
        assert not spec.is_homogeneous
        assert ClusterSpec.homogeneous(4).is_homogeneous

    def test_describe_names_every_group(self):
        spec = ClusterSpec(
            groups=(
                NodeSpec(count=2, tech=tech_node(16, "itrs")),
                NodeSpec(count=2, tech=tech_node(8, "itrs"), core=CORE_IO),
            )
        )
        assert spec.describe() == "2x16nm/itrs:o3 + 2x8nm/itrs:io"

    def test_default_ladder_is_the_shared_table_object(self):
        assert NodeSpec(count=1).ladder() is PENTIUM_M_1400


class TestHeterogeneousConstruction:
    def test_groups_get_their_own_silicon_in_declaration_order(self):
        spec = ClusterSpec(
            groups=(
                NodeSpec(count=2),
                NodeSpec(count=2, tech=tech_node(16, "itrs"), core=CORE_IO),
            )
        )
        cluster = Cluster.from_spec(spec)
        assert cluster.n_nodes == 4
        assert [n.node_id for n in cluster.nodes] == [0, 1, 2, 3]
        base, scaled = cluster.nodes[0], cluster.nodes[2]
        assert base.table is PENTIUM_M_1400
        assert scaled.table.fastest.frequency > base.table.fastest.frequency
        assert base.cpu.cycles_per_work == 1.0
        assert scaled.cpu.cycles_per_work == CORE_IO.cycles_per_work
        assert cluster.fabric.n_nodes == 4

    def test_oversized_spec_leaves_extra_nodes_idle(self):
        wl = NasFT("S", n_ranks=2, iterations=1)
        run = run_measured(wl, StaticStrategy(1.4e9), spec=ClusterSpec.homogeneous(3))
        assert run.cluster.n_nodes == 3

    def test_undersized_spec_rejected(self):
        wl = NasFT("S", n_ranks=4, iterations=1)
        with pytest.raises(ValueError, match="needs"):
            run_measured(wl, StaticStrategy(1.4e9), spec=ClusterSpec.homogeneous(2))

    def test_factory_and_spec_are_mutually_exclusive(self):
        wl = NasFT("S", n_ranks=2, iterations=1)
        with pytest.raises(ValueError, match="not both"):
            run_measured(
                wl,
                StaticStrategy(1.4e9),
                cluster_factory=lambda: legacy_build(2),
                spec=ClusterSpec.homogeneous(2),
            )


class TestDeprecatedShim:
    def test_build_warns_and_points_at_from_spec(self):
        with pytest.warns(DeprecationWarning, match="from_spec"):
            Cluster.build(2)

    def test_build_still_validates_before_delegating(self):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ValueError, match="n_nodes"):
                Cluster.build(0)

    def test_build_constructs_the_homogeneous_spec_cluster(self):
        shim = legacy_build(3)
        spec = Cluster.from_spec(ClusterSpec.homogeneous(3))
        assert shim.n_nodes == spec.n_nodes == 3
        assert shim.table is spec.table is PENTIUM_M_1400
        assert shim.calibration is spec.calibration is DEFAULT_CALIBRATION
        assert [n.cpu.frequency for n in shim.nodes] == [
            n.cpu.frequency for n in spec.nodes
        ]

    def test_build_table_override_becomes_points_override(self):
        table = PENTIUM_M_1400
        shim = legacy_build(1, table=table)
        assert [p.frequency for p in shim.table.points] == [
            p.frequency for p in table.points
        ]


class TestSignatureSync:
    def test_from_spec_options_are_keyword_only(self):
        sig = inspect.signature(Cluster.from_spec)
        for name, param in sig.parameters.items():
            if name == "spec":
                continue
            assert param.kind is inspect.Parameter.KEYWORD_ONLY, (
                f"Cluster.from_spec({name}) must be keyword-only"
            )

    def test_shim_mirrors_from_spec_name_for_name(self):
        """Every from_spec option must exist on the shim with the
        identical default object, so callers migrate by renaming the
        first argument only."""
        build = inspect.signature(Cluster.build)
        from_spec = inspect.signature(Cluster.from_spec)
        shared = [n for n in from_spec.parameters if n != "spec"]
        for name in shared:
            assert name in build.parameters, name
            assert (
                build.parameters[name].default
                is from_spec.parameters[name].default
            ), name
        # the shim's extras are exactly the legacy positional surface
        assert set(build.parameters) - set(shared) == {"n_nodes", "table"}


class TestBitIdentity:
    """A single-group spec is *bit-identical* to the legacy build path —
    same objects in, same floats out (the ISSUE's 1e-9 bound is the
    ceiling; identity fast paths make it exact)."""

    @settings(max_examples=6, deadline=None)
    @given(
        n_ranks=st.sampled_from([2, 4]),
        mhz=st.sampled_from([600, 1000, 1400]),
    )
    def test_static_runs_match_the_legacy_path(self, n_ranks, mhz):
        wl = NasFT("S", n_ranks=n_ranks, iterations=1)
        legacy = run_measured(
            wl,
            StaticStrategy(mhz * MHZ),
            cluster_factory=lambda: legacy_build(n_ranks),
        )
        via_spec = run_measured(
            wl,
            StaticStrategy(mhz * MHZ),
            spec=ClusterSpec.homogeneous(n_ranks),
        )
        assert via_spec.point.energy == pytest.approx(
            legacy.point.energy, abs=1e-9
        )
        assert via_spec.point.delay == pytest.approx(
            legacy.point.delay, abs=1e-9
        )

    def test_dynamic_fig3_style_run_matches_the_legacy_path(self):
        wl = NasFT("S", n_ranks=2, iterations=2)
        strategy = lambda: DynamicStrategy(1.4e9, regions=["fft"])  # noqa: E731
        legacy = run_measured(
            wl, strategy(), cluster_factory=lambda: legacy_build(2)
        )
        via_spec = run_measured(
            wl, strategy(), spec=ClusterSpec.homogeneous(2)
        )
        assert via_spec.point.energy == pytest.approx(
            legacy.point.energy, abs=1e-9
        )
        assert via_spec.point.delay == pytest.approx(
            legacy.point.delay, abs=1e-9
        )

    def test_powercap_governed_run_matches_the_legacy_path(self):
        wl = NasFT("S", n_ranks=2, iterations=2)
        base = run_measured(wl, StaticStrategy(1.4e9))
        budget = PowerBudget(0.92 * base.point.energy / base.point.delay)
        config = CapGovernorConfig(interval=max(0.02, base.point.delay / 8))

        def capped(**kwargs):
            return run_measured(
                wl, PowerCapStrategy(budget, config=config), **kwargs
            )

        legacy = capped(cluster_factory=lambda: legacy_build(2))
        via_spec = capped(spec=ClusterSpec.homogeneous(2))
        assert via_spec.point.energy == pytest.approx(
            legacy.point.energy, abs=1e-9
        )
        assert via_spec.point.delay == pytest.approx(
            legacy.point.delay, abs=1e-9
        )
