"""Property-based tests for the CPU execution engine.

The central conservation law: ``run_cycles(W)`` retires exactly ``W``
cycles regardless of how a governor rescales the frequency mid-flight —
the integral of f(t) over the execution interval equals W.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.hardware.cpu import SimCPU
from repro.hardware.dvfs import PENTIUM_M_1400
from repro.sim import Engine

FREQ_INDICES = st.integers(min_value=0, max_value=4)

schedule_strategy = st.lists(
    st.tuples(
        st.floats(min_value=0.001, max_value=0.5),  # delay before change
        FREQ_INDICES,
    ),
    min_size=0,
    max_size=8,
)


@settings(max_examples=60, deadline=None)
@given(
    cycles=st.floats(min_value=1e6, max_value=5e9),
    start_idx=FREQ_INDICES,
    schedule=schedule_strategy,
)
def test_work_conservation_under_random_dvs_schedules(cycles, start_idx, schedule):
    """Integrated frequency over the run equals the requested cycles."""
    eng = Engine()
    cpu = SimCPU(eng, PENTIUM_M_1400)
    cpu.set_frequency(PENTIUM_M_1400[start_idx])

    freq_changes = []  # (time, new frequency)

    def governor():
        for delay, idx in schedule:
            yield eng.timeout(delay)
            cpu.set_frequency(PENTIUM_M_1400[idx])
            freq_changes.append((eng.now, PENTIUM_M_1400[idx].frequency))

    def worker():
        yield from cpu.run_cycles(cycles)
        return eng.now

    eng.process(governor())
    p = eng.process(worker())
    finish = eng.run(until=p)

    # Reconstruct the integral of f(t) dt over [0, finish].
    points = [(0.0, PENTIUM_M_1400[start_idx].frequency)] + [
        (t, f) for t, f in freq_changes if t < finish
    ]
    integral = 0.0
    for (t0, f0), (t1, _) in zip(points, points[1:] + [(finish, 0.0)]):
        integral += f0 * (max(0.0, min(t1, finish)) - min(t0, finish))
    assert integral == pytest.approx(cycles, rel=1e-6)


@settings(max_examples=40, deadline=None)
@given(
    cycles=st.floats(min_value=1e6, max_value=1e9),
    idx=FREQ_INDICES,
)
def test_constant_frequency_duration_is_exact(cycles, idx):
    eng = Engine()
    cpu = SimCPU(eng, PENTIUM_M_1400)
    point = PENTIUM_M_1400[idx]
    cpu.set_frequency(point)

    def worker():
        yield from cpu.run_cycles(cycles)
        return eng.now

    p = eng.process(worker())
    assert eng.run(until=p) == pytest.approx(cycles / point.frequency, rel=1e-12)


@settings(max_examples=40, deadline=None)
@given(
    chunks=st.lists(st.floats(min_value=1e5, max_value=1e8), min_size=1, max_size=10)
)
def test_split_work_takes_same_time_as_whole(chunks):
    """run_cycles is additive: N chunks == one big chunk at fixed f."""

    def run(work_items):
        eng = Engine()
        cpu = SimCPU(eng, PENTIUM_M_1400)

        def worker():
            for w in work_items:
                yield from cpu.run_cycles(w)
            return eng.now

        p = eng.process(worker())
        return eng.run(until=p)

    assert run(chunks) == pytest.approx(run([sum(chunks)]), rel=1e-9)


@settings(max_examples=40, deadline=None)
@given(
    busy=st.floats(min_value=0.0, max_value=5e9),
    idle=st.floats(min_value=0.0, max_value=5.0),
)
def test_procstat_totals_match_simulated_time(busy, idle):
    eng = Engine()
    cpu = SimCPU(eng, PENTIUM_M_1400)

    def worker():
        yield from cpu.run_cycles(busy)
        if idle > 0:
            yield eng.timeout(idle)

    p = eng.process(worker())
    eng.run(until=p)
    cpu.finalize()
    stats = cpu.procstat.snapshot()
    assert stats.total == pytest.approx(eng.now, abs=1e-9)
    assert stats.busy == pytest.approx(busy / 1.4e9, abs=1e-9)
