"""Tests for the memory-hierarchy timing model."""

import pytest

from repro.hardware.memory import AccessCost, MemoryHierarchy, PENTIUM_M_MEMORY
from repro.util.units import KIB, MIB


@pytest.fixture
def mem():
    return PENTIUM_M_MEMORY


def test_platform_capacities(mem):
    """Paper §3: on-die 32K L1 data cache, on-die 1 MB L2 cache."""
    assert mem.l1_bytes == 32 * KIB
    assert mem.l2_bytes == 1 * MIB
    assert mem.dram_latency == pytest.approx(110e-9)


def test_classification(mem):
    assert mem.classify(16 * KIB) == "L1"
    assert mem.classify(256 * KIB) == "L2"
    assert mem.classify(32 * MIB) == "DRAM"


def test_l2_resident_walk_is_pure_cycles(mem):
    """Fig-7 pattern: 256 KB buffer, 128 B stride — on-die, so the cost
    must be entirely frequency-dependent cycles."""
    cost = mem.strided_walk_cost(256 * KIB, 128, n_refs=1000)
    assert cost.stall_seconds == 0.0
    assert cost.cpu_cycles > 0


def test_dram_walk_is_stall_dominated(mem):
    """Fig-6 pattern: 32 MB buffer, 128 B stride — every ref pays DRAM
    latency, which dwarfs the per-op cycles at any DVS point."""
    n = 1000
    cost = mem.strided_walk_cost(32 * MIB, 128, n_refs=n)
    assert cost.stall_seconds == pytest.approx(n * 110e-9)
    slow_f = 600e6
    assert cost.stall_seconds > 5 * (cost.cpu_cycles / slow_f)


def test_small_stride_amortizes_misses(mem):
    dense = mem.strided_walk_cost(32 * MIB, 16, n_refs=1000)
    sparse = mem.strided_walk_cost(32 * MIB, 128, n_refs=1000)
    assert dense.stall_seconds < sparse.stall_seconds
    assert dense.stall_seconds == pytest.approx(sparse.stall_seconds * 16 / 64)


def test_register_loop_is_pure_cycles(mem):
    cost = mem.register_loop_cost(500, cycles_per_op=2.0)
    assert cost == AccessCost(1000.0, 0.0)


def test_stream_copy_is_bandwidth_bound(mem):
    nbytes = 100 * MIB
    cost = mem.stream_copy_cost(nbytes)
    assert cost.stall_seconds == pytest.approx(nbytes / mem.dram_bandwidth)
    # bookkeeping cycles are small relative to stream time at any frequency
    assert cost.cpu_cycles / 600e6 < cost.stall_seconds


def test_duration_at_combines_both_parts():
    cost = AccessCost(cpu_cycles=1e9, stall_seconds=0.5)
    assert cost.duration_at(1e9) == pytest.approx(1.5)
    assert cost.duration_at(0.5e9) == pytest.approx(2.5)


def test_access_cost_addition_and_scaling():
    a = AccessCost(100.0, 1.0)
    b = AccessCost(50.0, 0.5)
    assert (a + b) == AccessCost(150.0, 1.5)
    assert a.scaled(2.0) == AccessCost(200.0, 2.0)


def test_invalid_arguments_rejected(mem):
    with pytest.raises(ValueError):
        mem.strided_walk_cost(0, 64, 10)
    with pytest.raises(ValueError):
        mem.strided_walk_cost(1024, 0, 10)
    with pytest.raises(ValueError):
        mem.strided_walk_cost(1024, 64, -1)
    with pytest.raises(ValueError):
        mem.register_loop_cost(-1)
    with pytest.raises(ValueError):
        mem.stream_copy_cost(-1)


def test_hierarchy_validation():
    with pytest.raises(ValueError):
        MemoryHierarchy(l1_bytes=64 * KIB, l2_bytes=32 * KIB)
    with pytest.raises(ValueError):
        MemoryHierarchy(dram_latency=0.0)


def test_memory_bound_delay_crescendo_is_flat(mem):
    """The Fig-6 shape precondition: delay at 600 MHz only a few percent
    above 1.4 GHz for the DRAM-stride walk."""
    cost = mem.strided_walk_cost(32 * MIB, 128, n_refs=10_000)
    d_fast = cost.duration_at(1.4e9)
    d_slow = cost.duration_at(600e6)
    assert 1.0 < d_slow / d_fast < 1.15


def test_l2_bound_delay_crescendo_scales_with_frequency(mem):
    """The Fig-7 shape precondition: delay ∝ 1/f for the L2 walk."""
    cost = mem.strided_walk_cost(256 * KIB, 128, n_refs=10_000)
    assert cost.duration_at(600e6) / cost.duration_at(1.4e9) == pytest.approx(
        1.4e9 / 600e6
    )
