"""Tests for the ground-truth power timeline, incl. property-based checks."""

import pytest
from hypothesis import given, strategies as st

from repro.hardware.timeline import PowerTimeline


def test_constant_power_energy():
    tl = PowerTimeline(initial_power=10.0)
    assert tl.energy(0.0, 5.0) == pytest.approx(50.0)


def test_piecewise_energy():
    tl = PowerTimeline(initial_power=10.0)
    tl.set_power(2.0, 20.0)
    tl.set_power(4.0, 5.0)
    # 2s @ 10W + 2s @ 20W + 1s @ 5W
    assert tl.energy(0.0, 5.0) == pytest.approx(20 + 40 + 5)


def test_energy_subinterval():
    tl = PowerTimeline(initial_power=10.0)
    tl.set_power(2.0, 20.0)
    assert tl.energy(1.0, 3.0) == pytest.approx(10 + 20)


def test_power_at():
    tl = PowerTimeline(initial_power=1.0)
    tl.set_power(1.0, 2.0)
    tl.set_power(3.0, 4.0)
    assert tl.power_at(0.5) == 1.0
    assert tl.power_at(1.0) == 2.0
    assert tl.power_at(2.9) == 2.0
    assert tl.power_at(100.0) == 4.0


def test_same_instant_collapses_to_last():
    tl = PowerTimeline(initial_power=1.0)
    tl.set_power(1.0, 2.0)
    tl.set_power(1.0, 3.0)
    assert tl.power_at(1.0) == 3.0
    assert len(tl) == 2


def test_unchanged_power_does_not_add_segment():
    tl = PowerTimeline(initial_power=5.0)
    tl.set_power(1.0, 5.0)
    assert len(tl) == 1


def test_out_of_order_append_rejected():
    tl = PowerTimeline(initial_power=1.0)
    tl.set_power(5.0, 2.0)
    with pytest.raises(ValueError):
        tl.set_power(4.0, 3.0)


def test_reads_before_start_rejected():
    tl = PowerTimeline(start_time=10.0, initial_power=1.0)
    with pytest.raises(ValueError):
        tl.power_at(9.0)
    with pytest.raises(ValueError):
        tl.energy(9.0, 11.0)
    with pytest.raises(ValueError):
        tl.energy(12.0, 11.0)


def test_average_power_is_energy_over_delay():
    tl = PowerTimeline(initial_power=10.0)
    tl.set_power(1.0, 30.0)
    assert tl.average_power(0.0, 2.0) == pytest.approx(20.0)
    assert tl.average_power(1.0, 1.0) == 30.0


def test_negative_power_rejected():
    with pytest.raises(ValueError):
        PowerTimeline(initial_power=-1.0)
    tl = PowerTimeline(initial_power=1.0)
    with pytest.raises(ValueError):
        tl.set_power(1.0, -2.0)


@given(
    changes=st.lists(
        st.tuples(
            st.floats(min_value=0.001, max_value=10.0),
            st.floats(min_value=0.0, max_value=100.0),
        ),
        min_size=0,
        max_size=20,
    ),
    split=st.floats(min_value=0.0, max_value=1.0),
)
def test_energy_is_additive_over_subintervals(changes, split):
    """E(t0,t2) == E(t0,t1) + E(t1,t2) for any split point."""
    tl = PowerTimeline(initial_power=7.0)
    t = 0.0
    for dt, watts in changes:
        t += dt
        tl.set_power(t, watts)
    end = t + 1.0
    mid = split * end
    total = tl.energy(0.0, end)
    parts = tl.energy(0.0, mid) + tl.energy(mid, end)
    assert total == pytest.approx(parts, rel=1e-9, abs=1e-9)


@given(
    watts=st.lists(st.floats(min_value=0.0, max_value=50.0), min_size=1, max_size=10)
)
def test_energy_bounded_by_min_max_power(watts):
    tl = PowerTimeline(initial_power=watts[0])
    for i, w in enumerate(watts[1:], start=1):
        tl.set_power(float(i), w)
    duration = float(len(watts))
    energy = tl.energy(0.0, duration)
    assert min(watts) * duration - 1e-9 <= energy <= max(watts) * duration + 1e-9


def test_same_instant_collapse_to_previous_level_drops_change_point():
    """Regression: overwriting a same-instant change back to the previous
    segment's level used to leave a redundant zero-delta change point
    behind; ``change_times`` then reported a phantom change."""
    tl = PowerTimeline(initial_power=5.0)
    tl.set_power(1.0, 10.0)
    tl.set_power(1.0, 5.0)  # collapse lands back on the previous level
    assert len(tl) == 1
    assert tl.change_times(0.0, 2.0) == []
    assert tl.power_at(1.5) == 5.0
    assert tl.energy(0.0, 2.0) == pytest.approx(10.0)


def test_same_instant_overwrite_with_same_level_is_a_noop():
    tl = PowerTimeline(initial_power=5.0)
    tl.set_power(1.0, 10.0)
    before = tl.version
    tl.set_power(1.0, 10.0)  # identical overwrite: nothing changed
    assert tl.version == before
    assert len(tl) == 2


def test_collapse_only_merges_with_the_immediately_previous_level():
    tl = PowerTimeline(initial_power=5.0)
    tl.set_power(1.0, 10.0)
    tl.set_power(2.0, 20.0)
    tl.set_power(2.0, 10.0)  # back to the 10 W level started at t=1
    assert tl.segments() == [(0.0, 5.0), (1.0, 10.0)]
    tl.set_power(3.0, 7.0)
    tl.set_power(3.0, 8.0)  # same-instant overwrite to a *new* level
    assert tl.segments() == [(0.0, 5.0), (1.0, 10.0), (3.0, 8.0)]


def test_series_cache_invalidated_by_same_instant_collapse():
    tl = PowerTimeline(initial_power=5.0)
    tl.set_power(1.0, 10.0)
    frozen = tl.series()
    assert tl.series() is frozen  # cached while unchanged
    tl.set_power(1.0, 5.0)  # drops the change point
    fresh = tl.series()
    assert fresh is not frozen
    assert len(fresh) == 1
