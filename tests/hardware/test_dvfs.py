"""Tests for DVFS operating points and the Pentium M ladder (paper Table 2)."""

import pytest

from repro.hardware.dvfs import (
    DVFSTable,
    OperatingPoint,
    PENTIUM_M_1400,
    alpha_power_frequency,
)
from repro.util.units import MHZ


def test_table2_has_five_points():
    assert len(PENTIUM_M_1400) == 5


def test_table2_exact_pairs():
    expected = {
        1400: 1.484,
        1200: 1.436,
        1000: 1.308,
        800: 1.180,
        600: 0.956,
    }
    for point in PENTIUM_M_1400:
        assert expected[point.mhz] == point.voltage


def test_points_are_sorted_slowest_first():
    freqs = PENTIUM_M_1400.frequencies
    assert freqs == sorted(freqs)
    assert PENTIUM_M_1400.slowest.mhz == 600
    assert PENTIUM_M_1400.fastest.mhz == 1400


def test_point_for_exact_lookup():
    p = PENTIUM_M_1400.point_for(1000 * MHZ)
    assert p.voltage == 1.308
    with pytest.raises(KeyError):
        PENTIUM_M_1400.point_for(900 * MHZ)


def test_index_of():
    assert PENTIUM_M_1400.index_of(600 * MHZ) == 0
    assert PENTIUM_M_1400.index_of(1400 * MHZ) == 4
    with pytest.raises(KeyError):
        PENTIUM_M_1400.index_of(1.0)


def test_closest_snaps_to_legal_point():
    assert PENTIUM_M_1400.closest(950 * MHZ).mhz == 1000
    assert PENTIUM_M_1400.closest(0.0).mhz == 600
    assert PENTIUM_M_1400.closest(9e9).mhz == 1400


def test_step_down_and_up_clamp_at_ends():
    t = PENTIUM_M_1400
    assert t.step_down(1400 * MHZ).mhz == 1200
    assert t.step_down(600 * MHZ).mhz == 600
    assert t.step_up(600 * MHZ).mhz == 800
    assert t.step_up(1400 * MHZ).mhz == 1400


def test_relative_fv2_is_one_at_fastest_and_decreases():
    t = PENTIUM_M_1400
    rel = [t.relative_fv2(p) for p in t]
    assert rel[-1] == pytest.approx(1.0)
    assert rel == sorted(rel)
    # 600 MHz: (600*0.956^2)/(1400*1.484^2) ~ 0.178 — the big DVS lever.
    assert rel[0] == pytest.approx(0.1779, abs=1e-3)


def test_relative_v2():
    t = PENTIUM_M_1400
    assert t.relative_v2(t.fastest) == pytest.approx(1.0)
    assert t.relative_v2(t.slowest) == pytest.approx((0.956 / 1.484) ** 2)


def test_operating_point_validation():
    with pytest.raises(ValueError):
        OperatingPoint(frequency=-1.0, voltage=1.0)
    with pytest.raises(ValueError):
        OperatingPoint(frequency=1e9, voltage=0.0)


def test_table_rejects_empty_and_duplicates():
    with pytest.raises(ValueError):
        DVFSTable([])
    p = OperatingPoint(1e9, 1.2)
    with pytest.raises(ValueError):
        DVFSTable([p, OperatingPoint(1e9, 1.3)])


def test_table_rejects_voltage_inversions():
    with pytest.raises(ValueError):
        DVFSTable(
            [OperatingPoint(1e9, 1.4), OperatingPoint(2e9, 1.2)]
        )


def test_fv2_term():
    p = OperatingPoint(1400 * MHZ, 1.484)
    assert p.fv2() == pytest.approx(1400 * MHZ * 1.484**2)


def test_alpha_power_law_roughly_fits_table2():
    """Eq. 1: f ∝ (V - Vt)/V.  Anchoring the law at the ladder's endpoints
    (which gives Vt ≈ 0.755 V) predicts the middle points within ~30 %
    (the real part's voltages are binned, so an exact fit is impossible)."""
    vt = 0.755
    fastest = PENTIUM_M_1400.fastest
    k = fastest.frequency / ((fastest.voltage - vt) / fastest.voltage)
    for point in PENTIUM_M_1400:
        predicted = alpha_power_frequency(point.voltage, vt, k)
        assert predicted == pytest.approx(point.frequency, rel=0.30)


def test_alpha_power_law_rejects_subthreshold_voltage():
    with pytest.raises(ValueError):
        alpha_power_frequency(0.5, 0.6, 1e9)
