"""Actuator unit tests: the control plane's hands, one knob at a time."""

import pytest

from repro.dvs.capped import CappedCpuFreq
from repro.hardware.activity import CpuActivity
from repro.hardware.cluster import Cluster
from repro.hardware.spec import ClusterSpec
from repro.powercap import (
    Actuator,
    CoreAllocationActuator,
    DvfsActuator,
    GateNode,
    GovernorPlan,
    NodeGateActuator,
    SetCoreAllocation,
    SetFreqCeiling,
    WakeNode,
    default_actuators,
    dispatch_plan,
)
from repro.util.units import MHZ


def make_cluster(n=2):
    return Cluster.from_spec(ClusterSpec.homogeneous(n))


def busy(node, seconds):
    yield from node.cpu.run_cycles(seconds * node.cpu.frequency)


class TestProtocol:
    def test_default_actuators_satisfy_the_protocol(self):
        cluster = make_cluster()
        cpufreqs = {
            node.node_id: CappedCpuFreq(node, cluster.calibration)
            for node in cluster.nodes
        }
        actuators = default_actuators(cluster, cpufreqs, {})
        assert len(actuators) == 3
        for actuator in actuators:
            assert isinstance(actuator, Actuator)
        kinds = [k for a in actuators for k in a.kinds]
        assert set(kinds) == {
            SetFreqCeiling,
            GateNode,
            WakeNode,
            SetCoreAllocation,
        }
        assert len(kinds) == len(set(kinds)), "overlapping routes"

    def test_dispatch_rejects_unrouted_action_kinds(self):
        cluster = make_cluster()
        core = CoreAllocationActuator(cluster)
        routes = {kind: core for kind in core.kinds}
        plan = GovernorPlan(
            actions=(GateNode(node_id=0),), predicted_watts=0.0, feasible=True
        )
        with pytest.raises(TypeError, match="no actuator registered"):
            dispatch_plan(plan, routes)


class TestDvfsActuator:
    def test_lowering_clamps_and_raising_claims_headroom(self):
        cluster = make_cluster(1)
        node = cluster.nodes[0]
        cpufreq = CappedCpuFreq(node, cluster.calibration)
        pending = {}
        dvfs = DvfsActuator({0: cpufreq}, pending)
        dvfs.apply(SetFreqCeiling(node_id=0, frequency=600 * MHZ))
        assert node.cpu.frequency == 600 * MHZ
        assert pending[0] == 600 * MHZ
        # Raising the ceiling drives the clock up (no inner controller).
        dvfs.apply(SetFreqCeiling(node_id=0, frequency=1000 * MHZ))
        assert node.cpu.frequency == 1000 * MHZ
        assert pending[0] == 1000 * MHZ

    def test_drive_down_forces_the_clock_at_an_unchanged_ceiling(self):
        cluster = make_cluster(1)
        node = cluster.nodes[0]
        cpufreq = CappedCpuFreq(node, cluster.calibration)
        dvfs = DvfsActuator({0: cpufreq}, {})
        # A rebooted node at full clock with the ceiling already floored
        # on the books: set_ceiling alone would no-op.
        cpufreq.set_ceiling(600 * MHZ)
        node.cpu.set_frequency(cluster.table.point_for(1400 * MHZ))
        dvfs.apply(
            SetFreqCeiling(node_id=0, frequency=600 * MHZ, drive_down=True)
        )
        assert node.cpu.frequency == 600 * MHZ


class TestNodeGateActuator:
    def test_idle_node_suspends_immediately(self):
        cluster = make_cluster()
        gate = NodeGateActuator(cluster, wake_latency_s=0.5)
        gate.apply(GateNode(node_id=0))
        assert not cluster.nodes[0].cpu.powered
        assert cluster.nodes[0].cpu.suspended
        assert [entry[1:] for entry in gate.log] == [(0, "gate")]

    def test_busy_node_drains_then_suspends_at_idle(self):
        cluster = make_cluster()
        engine = cluster.engine
        engine.process(busy(cluster.nodes[0], 0.3))
        engine.run(until=0.1)
        gate = NodeGateActuator(cluster, wake_latency_s=0.5)
        gate.apply(GateNode(node_id=0))
        # Mid-service: still powered, marked draining, suspend deferred.
        assert cluster.nodes[0].cpu.powered
        assert 0 in gate.draining
        engine.run(until=0.5)
        assert not cluster.nodes[0].cpu.powered
        assert 0 not in gate.draining
        assert [entry[2] for entry in gate.log] == ["drain", "gate"]

    def test_wake_during_drain_cancels_the_drain(self):
        cluster = make_cluster()
        engine = cluster.engine
        engine.process(busy(cluster.nodes[0], 0.3))
        engine.run(until=0.1)
        gate = NodeGateActuator(cluster, wake_latency_s=0.5)
        gate.apply(GateNode(node_id=0))
        assert 0 in gate.draining
        gate.apply(WakeNode(node_id=0))
        assert 0 not in gate.draining
        engine.run(until=0.6)
        # The node finished its work and stayed up: no deferred suspend.
        assert cluster.nodes[0].cpu.powered

    def test_wake_pays_the_boot_latency_then_powers_on_at_the_floor(self):
        cluster = make_cluster()
        engine = cluster.engine
        gate = NodeGateActuator(cluster, wake_latency_s=0.5)
        gate.apply(GateNode(node_id=0))
        gate.apply(WakeNode(node_id=0))
        assert 0 in gate.waking
        assert not cluster.nodes[0].cpu.powered
        engine.run(until=0.4)
        assert not cluster.nodes[0].cpu.powered  # still booting
        engine.run(until=0.6)
        assert cluster.nodes[0].cpu.powered
        assert 0 not in gate.waking
        assert cluster.nodes[0].cpu.frequency == cluster.table.slowest.frequency
        assert [entry[2] for entry in gate.log] == ["gate", "wake", "booted"]

    def test_gate_and_wake_are_idempotent(self):
        cluster = make_cluster()
        gate = NodeGateActuator(cluster, wake_latency_s=0.5)
        gate.apply(GateNode(node_id=0))
        gate.apply(GateNode(node_id=0))  # already suspended: no-op
        assert [entry[2] for entry in gate.log] == ["gate"]
        gate.apply(WakeNode(node_id=0))
        gate.apply(WakeNode(node_id=0))  # boot already in flight: no-op
        assert [entry[2] for entry in gate.log] == ["gate", "wake"]

    def test_rejects_negative_wake_latency(self):
        with pytest.raises(ValueError, match="wake_latency_s"):
            NodeGateActuator(make_cluster(), wake_latency_s=-0.1)


class TestCoreAllocationActuator:
    def test_applies_the_fraction_and_logs_it(self):
        cluster = make_cluster()
        core = CoreAllocationActuator(cluster)
        core.apply(SetCoreAllocation(node_id=1, fraction=0.5))
        assert cluster.nodes[1].cpu.core_allocation == 0.5
        core.apply(SetCoreAllocation(node_id=1, fraction=1.0))
        assert cluster.nodes[1].cpu.core_allocation == 1.0
        assert [entry[1:] for entry in core.log] == [(1, 0.5), (1, 1.0)]

    def test_half_cores_doubles_run_cycles_time(self):
        def finish_time(fraction):
            cluster = make_cluster(1)
            cluster.nodes[0].cpu.set_core_allocation(fraction)
            done = {}

            def job():
                yield from busy(cluster.nodes[0], 0.1)
                done["t"] = cluster.engine.now

            cluster.engine.process(job())
            cluster.engine.run(until=1.0)
            return done["t"]

        assert finish_time(0.5) == pytest.approx(
            2.0 * finish_time(1.0), rel=1e-9
        )
