"""Tests for the PowerBudget spec."""

import pytest

from repro.hardware import PENTIUM_M_1400
from repro.powercap import PowerBudget
from repro.util.units import MHZ


class TestValidation:
    def test_rejects_nonpositive_cap(self):
        with pytest.raises(ValueError, match="cluster_watts"):
            PowerBudget(0.0)
        with pytest.raises(ValueError, match="cluster_watts"):
            PowerBudget(-100.0)

    def test_rejects_tolerance_outside_unit_interval(self):
        with pytest.raises(ValueError, match="tolerance"):
            PowerBudget(100.0, tolerance=-0.01)
        with pytest.raises(ValueError, match="tolerance"):
            PowerBudget(100.0, tolerance=1.5)

    def test_rejects_floor_above_ceiling(self):
        with pytest.raises(ValueError, match="node_floor_hz"):
            PowerBudget(100.0, node_floor_hz=1200 * MHZ, node_ceiling_hz=800 * MHZ)

    def test_rejects_nonpositive_bounds(self):
        with pytest.raises(ValueError, match="node_floor_hz"):
            PowerBudget(100.0, node_floor_hz=0.0)
        with pytest.raises(ValueError, match="node_ceiling_hz"):
            PowerBudget(100.0, node_ceiling_hz=-1.0)


class TestCompliance:
    def test_limit_includes_guard_band(self):
        budget = PowerBudget(200.0, tolerance=0.05)
        assert budget.limit_watts == pytest.approx(210.0)

    def test_complies_at_exactly_the_limit(self):
        budget = PowerBudget(200.0, tolerance=0.05)
        assert budget.complies(210.0)
        assert not budget.complies(210.0 + 1e-9)

    def test_zero_tolerance_is_a_hard_cap(self):
        budget = PowerBudget(150.0, tolerance=0.0)
        assert budget.complies(150.0)
        assert not budget.complies(150.1)


class TestResolveBounds:
    def test_defaults_to_full_ladder(self):
        floor, ceiling = PowerBudget(100.0).resolve_bounds(PENTIUM_M_1400)
        assert floor == PENTIUM_M_1400.slowest
        assert ceiling == PENTIUM_M_1400.fastest

    def test_bounds_snap_to_ladder_points(self):
        budget = PowerBudget(
            100.0, node_floor_hz=790 * MHZ, node_ceiling_hz=1210 * MHZ
        )
        floor, ceiling = budget.resolve_bounds(PENTIUM_M_1400)
        assert floor.frequency == 800 * MHZ
        assert ceiling.frequency == 1200 * MHZ

    def test_bounds_may_snap_to_the_same_point(self):
        budget = PowerBudget(
            100.0, node_floor_hz=990 * MHZ, node_ceiling_hz=1010 * MHZ
        )
        floor, ceiling = budget.resolve_bounds(PENTIUM_M_1400)
        assert floor.frequency == ceiling.frequency == 1000 * MHZ

