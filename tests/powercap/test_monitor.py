"""Unit tests for the invariant monitor and the window guards."""

import pytest

from repro.powercap import InvariantMonitor, PowerBudget
from repro.powercap.governor import GovernorWindow

BUDGET = PowerBudget(cluster_watts=100.0, tolerance=0.05)  # limit 105 W


def window(
    avg: float,
    predicted: float = 90.0,
    feasible: bool = True,
    frequencies=None,
) -> GovernorWindow:
    return GovernorWindow(
        t0=0.0,
        t1=0.25,
        cluster_avg_watts=avg,
        compliant=BUDGET.complies(avg),
        frequencies=frequencies or {0: 1.0e9},
        predicted_watts=predicted,
        feasible=feasible,
    )


def observe(monitor, w, node_frequencies=None, ceilings=None, **kwargs):
    return monitor.observe_window(
        w,
        target_watts=95.0,
        node_frequencies=node_frequencies or {0: 1.0e9},
        ceilings=ceilings or {0: 1.0e9},
        **kwargs,
    )


class TestWindowOverBudget:
    def test_within_limit_is_silent(self):
        monitor = InvariantMonitor(BUDGET)
        observe(monitor, window(avg=104.9))  # inside the tolerance band
        assert monitor.count == 0

    def test_over_limit_is_recorded(self):
        monitor = InvariantMonitor(BUDGET)
        found = observe(monitor, window(avg=106.0))
        assert [v.kind for v in found] == [monitor.WINDOW_OVER_BUDGET]
        assert monitor.count_of(monitor.WINDOW_OVER_BUDGET) == 1


class TestNodeOverCeiling:
    def test_node_running_above_its_ceiling_is_recorded(self):
        monitor = InvariantMonitor(BUDGET)
        found = observe(
            monitor,
            window(avg=90.0),
            node_frequencies={0: 1.4e9, 1: 0.6e9},
            ceilings={0: 1.0e9, 1: 1.0e9},
        )
        assert [v.kind for v in found] == [monitor.NODE_OVER_CEILING]
        assert found[0].node_id == 0

    def test_node_without_a_known_ceiling_is_skipped(self):
        monitor = InvariantMonitor(BUDGET)
        observe(
            monitor,
            window(avg=90.0),
            node_frequencies={7: 1.4e9},
            ceilings={0: 1.0e9},
        )
        assert monitor.count == 0


class TestAllocationOverTarget:
    def test_feasible_claim_above_target_is_a_policy_bug(self):
        monitor = InvariantMonitor(BUDGET)
        found = observe(
            monitor, window(avg=90.0, predicted=96.0, feasible=True)
        )
        assert [v.kind for v in found] == [monitor.ALLOCATION_OVER_TARGET]

    def test_declared_infeasible_overshoot_is_honest(self):
        monitor = InvariantMonitor(BUDGET)
        observe(monitor, window(avg=90.0, predicted=200.0, feasible=False))
        assert monitor.count == 0

    def test_unallocated_windows_skip_the_check(self):
        # The trailing partial window carries no policy allocation.
        monitor = InvariantMonitor(BUDGET)
        observe(
            monitor,
            window(avg=90.0, predicted=200.0, feasible=True),
            allocated=False,
        )
        assert monitor.count == 0


class TestRecord:
    def test_after_filters_strictly(self):
        monitor = InvariantMonitor(BUDGET)
        observe(monitor, window(avg=106.0))  # violation at t1=0.25
        assert len(monitor.after(0.0)) == 1
        assert monitor.after(0.25) == ()

    def test_violations_accumulate_across_windows(self):
        monitor = InvariantMonitor(BUDGET)
        observe(monitor, window(avg=106.0))
        observe(monitor, window(avg=107.0))
        assert monitor.count == 2


class TestGovernorWindowGuards:
    def test_backwards_window_rejected(self):
        with pytest.raises(ValueError, match="ends before it starts"):
            GovernorWindow(
                t0=1.0,
                t1=0.5,
                cluster_avg_watts=0.0,
                compliant=True,
                frequencies={},
                predicted_watts=0.0,
                feasible=True,
            )

    def test_duration_never_negative(self):
        w = window(avg=50.0)
        assert w.duration == pytest.approx(0.25)
