"""End-to-end cap-governor tests (the PR's acceptance criteria).

(a) Enforcement: with a cap at ~80 % of the uncapped peak, every closed
    control window — including the trailing partial one — averages within
    the budget's tolerance, for the whole run.
(b) Redistribution beats the naive uniform cap: on a slack-imbalanced
    workload, :class:`SlackRedistributionPolicy` finishes strictly sooner
    than :class:`UniformCapPolicy` at the same budget, both compliant.
"""

import pytest

from repro.analysis.runner import run_measured
from repro.dvs.strategy import DynamicStrategy, StaticStrategy
from repro.powercap import (
    CapGovernorConfig,
    PowerBudget,
    PowerCapStrategy,
    SlackRedistributionPolicy,
    UniformCapPolicy,
)
from repro.workloads.imbalanced import ImbalancedMix
from repro.workloads.nas_ft import NasFT


@pytest.fixture(scope="module")
def uncapped():
    """One uncapped reference run of the imbalanced workload."""
    workload = ImbalancedMix(n_ranks=8)
    run = run_measured(workload, StaticStrategy(1.4e9))
    peak = run.cluster.peak_power(run.spmd.start, run.spmd.end)
    return workload, run, peak


def capped_run(workload, budget, policy, config=None):
    strategy = PowerCapStrategy(budget, policy=policy, config=config)
    run = run_measured(workload, strategy)
    return run, strategy.governor


class TestEnforcement:
    def test_cap_at_80pct_of_peak_holds_for_the_whole_run(self, uncapped):
        workload, base, peak = uncapped
        budget = PowerBudget(0.8 * peak)
        for policy in (UniformCapPolicy(), SlackRedistributionPolicy()):
            run, governor = capped_run(workload, budget, policy)
            assert governor.windows, "governor closed no windows"
            assert governor.violation_count == 0
            assert all(w.compliant for w in governor.windows)
            assert governor.max_window_watts <= budget.limit_watts

    def test_windows_cover_the_run_including_the_trailing_partial(
        self, uncapped
    ):
        workload, base, peak = uncapped
        run, governor = capped_run(
            workload, PowerBudget(0.8 * peak), SlackRedistributionPolicy()
        )
        windows = governor.windows
        assert windows[0].t0 <= run.spmd.start
        assert windows[-1].t1 >= run.spmd.end
        for prev, nxt in zip(windows, windows[1:]):
            assert nxt.t0 == pytest.approx(prev.t1)
        # The trailing window is partial (the run does not end on a
        # control-interval boundary) and still judged for compliance.
        assert windows[-1].duration < governor.config.interval

    def test_compliant_from_the_first_window(self, uncapped):
        # The worst-case initial allocation must protect the interval
        # before any telemetry exists.
        workload, base, peak = uncapped
        run, governor = capped_run(
            workload, PowerBudget(0.8 * peak), SlackRedistributionPolicy()
        )
        assert governor.windows[0].compliant

    def test_achieved_average_stays_under_the_cap(self, uncapped):
        workload, base, peak = uncapped
        budget = PowerBudget(0.8 * peak)
        run, governor = capped_run(
            workload, budget, SlackRedistributionPolicy()
        )
        assert governor.achieved_average_watts() <= budget.limit_watts
        # And the governor's windowed view agrees with the ground-truth
        # timeline integral over the same span.
        t0 = governor.windows[0].t0
        t1 = governor.windows[-1].t1
        assert governor.achieved_average_watts() == pytest.approx(
            run.cluster.average_power(t0, t1), rel=1e-6
        )

    def test_enforcement_on_a_paper_workload(self):
        # NAS FT (class S) under a tight interval so several control
        # windows close within the short run.
        workload = NasFT(n_ranks=8, iterations=3)
        base = run_measured(workload, StaticStrategy(1.4e9))
        peak = base.cluster.peak_power(base.spmd.start, base.spmd.end)
        budget = PowerBudget(0.8 * peak)
        config = CapGovernorConfig(interval=0.02)
        run, governor = capped_run(
            workload, budget, SlackRedistributionPolicy(), config=config
        )
        assert len(governor.windows) > 3
        assert governor.violation_count == 0


class TestRedistributionBeatsUniform:
    def test_strictly_faster_at_the_same_budget(self, uncapped):
        workload, base, peak = uncapped
        budget = PowerBudget(0.8 * peak)
        uniform, gov_u = capped_run(workload, budget, UniformCapPolicy())
        redist, gov_r = capped_run(
            workload, budget, SlackRedistributionPolicy()
        )
        assert gov_u.violation_count == 0
        assert gov_r.violation_count == 0
        assert redist.point.delay < uniform.point.delay
        # The margin is structural, not noise: the uniform cap throttles
        # the compute-bound half of the cluster that redistribution
        # protects.
        assert redist.point.delay < 0.9 * uniform.point.delay

    def test_redistribution_stays_close_to_uncapped(self, uncapped):
        workload, base, peak = uncapped
        run, governor = capped_run(
            workload, PowerBudget(0.8 * peak), SlackRedistributionPolicy()
        )
        slowdown = run.point.delay / base.point.delay - 1.0
        assert slowdown < 0.15

    def test_capped_runs_are_deterministic(self, uncapped):
        workload, base, peak = uncapped
        budget = PowerBudget(0.8 * peak)
        first, _ = capped_run(workload, budget, SlackRedistributionPolicy())
        second, _ = capped_run(workload, budget, SlackRedistributionPolicy())
        assert first.point.delay == second.point.delay
        assert first.point.energy == second.point.energy


class TestComposition:
    def test_inner_dynamic_strategy_runs_under_the_cap(self, uncapped):
        workload, base, peak = uncapped
        budget = PowerBudget(0.8 * peak)
        strategy = PowerCapStrategy(
            budget,
            policy=SlackRedistributionPolicy(),
            inner=DynamicStrategy(1.4e9),
        )
        run = run_measured(workload, strategy)
        governor = strategy.governor
        assert governor.violation_count == 0
        assert "dyn" in run.strategy.name

    def test_governor_cannot_be_started_twice(self, uncapped):
        workload, base, peak = uncapped
        strategy = PowerCapStrategy(PowerBudget(0.8 * peak))
        run = run_measured(workload, strategy)
        with pytest.raises(RuntimeError, match="already started"):
            strategy.governor.start(run.cluster.engine)
