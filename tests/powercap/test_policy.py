"""Unit tests for the cap-allocation policies (synthetic telemetry)."""

import pytest

from repro.hardware import PENTIUM_M_1400
from repro.powercap import (
    NodeWindowSample,
    SlackRedistributionPolicy,
    UniformCapPolicy,
)
from repro.util.units import MHZ

TABLE = PENTIUM_M_1400
FLOOR = TABLE.slowest
CEILING = TABLE.fastest


def predict(sample, point):
    """A deliberately simple model: busy share × 10 W, linear in f."""
    return 10.0 * sample.busy_fraction * (point.frequency / CEILING.frequency)


def sample(node_id, busy=1.0, frequency=CEILING.frequency):
    return NodeWindowSample(
        node_id=node_id,
        t0=0.0,
        t1=0.25,
        avg_watts=0.0,  # unused: tests inject predict/intensity directly
        busy_fraction=busy,
        frequency=frequency,
    )


def intensities(mapping):
    """An intensity_of callable backed by a dict."""
    return lambda s: mapping[s.node_id]


class TestUniform:
    def test_picks_highest_common_frequency_that_fits(self):
        samples = [sample(0), sample(1)]
        # Totals: 20.0 at 1400, 17.1 at 1200, 14.3 at 1000.
        allocation = UniformCapPolicy().allocate(
            samples, 15.0, TABLE, FLOOR, CEILING, predict
        )
        assert allocation.feasible
        assert set(allocation.frequencies.values()) == {1000 * MHZ}
        assert allocation.predicted_watts == pytest.approx(
            2 * 10.0 * (1000 / 1400)
        )

    def test_no_throttling_when_budget_is_loose(self):
        allocation = UniformCapPolicy().allocate(
            [sample(0), sample(1)], 100.0, TABLE, FLOOR, CEILING, predict
        )
        assert set(allocation.frequencies.values()) == {CEILING.frequency}

    def test_respects_a_raised_floor(self):
        floor = TABLE.point_for(1000 * MHZ)
        allocation = UniformCapPolicy().allocate(
            [sample(0), sample(1)], 5.0, TABLE, floor, CEILING, predict
        )
        assert set(allocation.frequencies.values()) == {1000 * MHZ}
        assert not allocation.feasible

    def test_infeasible_budget_reports_all_floors(self):
        # Even both-at-600 draws 2 × 10 × (600/1400) = 8.57 W > 5 W.
        allocation = UniformCapPolicy().allocate(
            [sample(0), sample(1)], 5.0, TABLE, FLOOR, CEILING, predict
        )
        assert not allocation.feasible
        assert set(allocation.frequencies.values()) == {FLOOR.frequency}


class TestRedistribution:
    def test_requires_a_wired_intensity_metric(self):
        with pytest.raises(RuntimeError, match="intensity"):
            SlackRedistributionPolicy().allocate(
                [sample(0)], 5.0, TABLE, FLOOR, CEILING, predict
            )

    def test_strips_the_slack_node_and_keeps_compute_at_ceiling(self):
        policy = SlackRedistributionPolicy(intensities({0: 1.0, 1: 0.1}))
        # 20.0 at all-ceiling; freeing node 1 to the floor reaches 15.71.
        allocation = policy.allocate(
            [sample(0), sample(1)], 16.0, TABLE, FLOOR, CEILING, predict
        )
        assert allocation.feasible
        assert allocation.frequencies[0] == CEILING.frequency
        assert allocation.frequencies[1] < CEILING.frequency

    def test_slack_is_exhausted_before_compute_pays(self):
        policy = SlackRedistributionPolicy(intensities({0: 1.0, 1: 0.1}))
        # 14.3 needs node 1 at the floor (20 − 5.71) and nothing more.
        allocation = policy.allocate(
            [sample(0), sample(1)], 14.3, TABLE, FLOOR, CEILING, predict
        )
        assert allocation.frequencies[0] == CEILING.frequency
        assert allocation.frequencies[1] == FLOOR.frequency

    def test_saturated_nodes_spread_the_reduction(self):
        # Two equally compute-bound nodes and a target requiring two
        # notches: both should drop one notch (1200) instead of one node
        # being driven two notches down (1000) while the other idles at
        # the ceiling — the balanced-workload guarantee.
        policy = SlackRedistributionPolicy(intensities({0: 1.0, 1: 1.0}))
        allocation = policy.allocate(
            [sample(0), sample(1)], 17.2, TABLE, FLOOR, CEILING, predict
        )
        assert allocation.frequencies[0] == 1200 * MHZ
        assert allocation.frequencies[1] == 1200 * MHZ

    def test_matches_uniform_on_a_balanced_cluster(self):
        # With identical saturated nodes the redistribution must never do
        # worse than the uniform baseline at the same target.
        samples = [sample(i) for i in range(4)]
        uniform = UniformCapPolicy().allocate(
            samples, 30.0, TABLE, FLOOR, CEILING, predict
        )
        policy = SlackRedistributionPolicy(intensities({i: 1.0 for i in range(4)}))
        redist = policy.allocate(samples, 30.0, TABLE, FLOOR, CEILING, predict)
        assert redist.predicted_watts <= 30.0
        assert sum(redist.frequencies.values()) >= sum(
            uniform.frequencies.values()
        )

    def test_infeasible_budget_reports_all_floors(self):
        policy = SlackRedistributionPolicy(intensities({0: 1.0, 1: 0.1}))
        allocation = policy.allocate(
            [sample(0), sample(1)], 5.0, TABLE, FLOOR, CEILING, predict
        )
        assert not allocation.feasible
        assert set(allocation.frequencies.values()) == {FLOOR.frequency}

    def test_allocation_is_deterministic(self):
        policy = SlackRedistributionPolicy(
            intensities({0: 0.5, 1: 0.5, 2: 0.5})
        )
        samples = [sample(i) for i in range(3)]
        first = policy.allocate(samples, 18.0, TABLE, FLOOR, CEILING, predict)
        second = policy.allocate(samples, 18.0, TABLE, FLOOR, CEILING, predict)
        assert first.frequencies == second.frequencies
        assert first.predicted_watts == second.predicted_watts
