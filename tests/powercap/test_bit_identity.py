"""Bit-identity: the actuator control plane vs the pre-refactor path.

The control-plane refactor's contract is that with legacy policies the
governor's behaviour did not change *at all*: every window's applied
frequencies, predicted watts, and measured cluster power must match the
pre-refactor direct-call trajectory within 1e-9 (in practice exactly).

Two layers pin this:

* closed loop — the imbalanced powercap run (the PR-4 acceptance
  workload) driven twice over identical clusters: once through the
  current actuator path, once through a governor whose ``_apply`` is the
  pre-refactor inline code, verbatim;
* property — a pure-DVFS :class:`ElasticPolicy` degenerates bit-exactly
  to its inner legacy policy on arbitrary telemetry windows
  (hypothesis-generated).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.powercap.strategy as strategy_module
from repro.analysis.runner import run_measured
from repro.dvs.strategy import StaticStrategy
from repro.hardware import PENTIUM_M_1400
from repro.hardware.calibration import DEFAULT_CALIBRATION
from repro.powercap import (
    CapGovernor,
    CapGovernorConfig,
    ElasticPolicy,
    NodeWindowSample,
    PlanContext,
    PowerBudget,
    PowerCapStrategy,
    SetFreqCeiling,
    SlackRedistributionPolicy,
    UniformCapPolicy,
    compute_intensity,
)
from repro.powercap.telemetry import demand_power, predict_node_power
from repro.workloads.imbalanced import ImbalancedMix

TOL = 1e-9
TABLE = PENTIUM_M_1400
MODEL = DEFAULT_CALIBRATION.node_power_model(TABLE)


class LegacyInlineGovernor(CapGovernor):
    """The pre-refactor ``_apply``: direct CappedCpuFreq calls, verbatim.

    This is the exact loop the governor inlined before the actuator
    refactor (same operations, same order, same bookkeeping) — the
    oracle the actuator path is asserted against.
    """

    def _apply(self, allocation) -> None:
        for node_id, frequency in allocation.frequencies.items():
            cpufreq = self.cpufreqs[node_id]
            cpufreq.set_ceiling(frequency)
            if cpufreq.current_frequency < frequency:
                cpufreq.set_speed_now(frequency)
            self._pending_target[node_id] = frequency


def closed_loop(policy, governor_cls=CapGovernor, budget_watts=None):
    """One capped imbalanced run; returns (run, governor)."""
    workload = ImbalancedMix(n_ranks=8)
    original = strategy_module.CapGovernor
    strategy_module.CapGovernor = governor_cls
    try:
        strategy = PowerCapStrategy(
            PowerBudget(cluster_watts=budget_watts),
            policy=policy,
            config=CapGovernorConfig(interval=0.25),
        )
        run = run_measured(workload, strategy)
    finally:
        strategy_module.CapGovernor = original
    return run, strategy.governor


@pytest.fixture(scope="module")
def budget_watts():
    """A cap at 80 % of the uncapped peak — tight enough to bite."""
    base = run_measured(ImbalancedMix(n_ranks=8), StaticStrategy(1.4e9))
    return 0.8 * base.cluster.peak_power(base.spmd.start, base.spmd.end)


def assert_trajectories_identical(gov_a, gov_b):
    assert len(gov_a.windows) == len(gov_b.windows)
    assert gov_a.windows, "no control windows closed"
    for wa, wb in zip(gov_a.windows, gov_b.windows):
        assert wa.t0 == wb.t0 and wa.t1 == wb.t1
        assert abs(wa.cluster_avg_watts - wb.cluster_avg_watts) <= TOL
        assert abs(wa.predicted_watts - wb.predicted_watts) <= TOL
        assert wa.feasible == wb.feasible
        assert wa.frequencies.keys() == wb.frequencies.keys()
        for nid in wa.frequencies:
            assert abs(wa.frequencies[nid] - wb.frequencies[nid]) <= TOL


class TestClosedLoopIdentity:
    """Imbalanced closed-loop run: actuator path == pre-refactor path."""

    @pytest.mark.parametrize(
        "policy_cls", [UniformCapPolicy, SlackRedistributionPolicy]
    )
    def test_actuator_path_matches_legacy_inline(
        self, policy_cls, budget_watts
    ):
        legacy_run, legacy_gov = closed_loop(
            policy_cls(),
            governor_cls=LegacyInlineGovernor,
            budget_watts=budget_watts,
        )
        actuated_run, actuated_gov = closed_loop(
            policy_cls(), budget_watts=budget_watts
        )
        assert_trajectories_identical(legacy_gov, actuated_gov)
        assert abs(legacy_run.point.delay - actuated_run.point.delay) <= TOL
        assert abs(legacy_run.point.energy - actuated_run.point.energy) <= TOL

    def test_pure_dvfs_elastic_matches_legacy_closed_loop(
        self, budget_watts
    ):
        """ElasticPolicy restricted to the DVFS knob == the inner policy,
        through the whole closed loop, not just one window."""
        legacy_run, legacy_gov = closed_loop(
            SlackRedistributionPolicy(),
            governor_cls=LegacyInlineGovernor,
            budget_watts=budget_watts,
        )
        elastic_run, elastic_gov = closed_loop(
            ElasticPolicy(knobs=("dvfs",), inner=SlackRedistributionPolicy()),
            budget_watts=budget_watts,
        )
        assert_trajectories_identical(legacy_gov, elastic_gov)
        assert abs(legacy_run.point.delay - elastic_run.point.delay) <= TOL


# ---------------------------------------------------------------------------
# property: pure-DVFS ElasticPolicy degenerates to the legacy policies
# ---------------------------------------------------------------------------

_POINTS = list(TABLE)


def _sample(node_id, busy, point_idx):
    point = _POINTS[point_idx]
    watts = (
        MODEL.base_power
        + busy * MODEL.cpu.max_power * TABLE.relative_fv2(point)
    )
    return NodeWindowSample(
        node_id=node_id,
        t0=0.0,
        t1=0.25,
        avg_watts=watts,
        busy_fraction=busy,
        frequency=point.frequency,
    )


def _predict(sample, point):
    return predict_node_power(MODEL, TABLE, sample, point)


def _context(samples, target):
    return PlanContext(
        samples=tuple(samples),
        target_watts=target,
        table=TABLE,
        floor=TABLE.slowest,
        ceiling=TABLE.fastest,
        predict=_predict,
        base_power=MODEL.base_power,
        gated_draw_watts=MODEL.gated_power,
        wake_cost_watts=demand_power(MODEL, TABLE, 1.0, TABLE.slowest),
    )


windows = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=1.0),
        st.integers(min_value=0, max_value=len(_POINTS) - 1),
    ),
    min_size=1,
    max_size=6,
)
targets = st.floats(min_value=5.0, max_value=400.0)


class TestDegeneracyProperty:
    """plan(knobs=('dvfs',)) ≡ inner.allocate, on arbitrary windows."""

    @given(windows=windows, target=targets)
    @settings(max_examples=120, deadline=None)
    def test_degenerates_to_slack_redistribution(self, windows, target):
        samples = [
            _sample(nid, busy, idx) for nid, (busy, idx) in enumerate(windows)
        ]
        intensity = lambda s: compute_intensity(MODEL, TABLE, s)
        legacy = SlackRedistributionPolicy(intensity_of=intensity).allocate(
            samples, target, TABLE, TABLE.slowest, TABLE.fastest, _predict
        )
        plan = ElasticPolicy(
            knobs=("dvfs",),
            inner=SlackRedistributionPolicy(intensity_of=intensity),
            intensity_of=intensity,
        ).plan(_context(samples, target))
        assert all(isinstance(a, SetFreqCeiling) for a in plan.actions)
        assert plan.frequencies == legacy.frequencies
        assert plan.predicted_watts == legacy.predicted_watts
        assert plan.feasible == legacy.feasible

    @given(windows=windows, target=targets)
    @settings(max_examples=120, deadline=None)
    def test_degenerates_to_uniform(self, windows, target):
        samples = [
            _sample(nid, busy, idx) for nid, (busy, idx) in enumerate(windows)
        ]
        legacy = UniformCapPolicy().allocate(
            samples, target, TABLE, TABLE.slowest, TABLE.fastest, _predict
        )
        plan = ElasticPolicy(
            knobs=("dvfs",),
            inner=UniformCapPolicy(),
            intensity_of=lambda s: compute_intensity(MODEL, TABLE, s),
        ).plan(_context(samples, target))
        assert all(isinstance(a, SetFreqCeiling) for a in plan.actions)
        assert plan.frequencies == legacy.frequencies
        assert plan.predicted_watts == legacy.predicted_watts
        assert plan.feasible == legacy.feasible

    def test_action_order_matches_legacy_application_order(self):
        """from_allocation preserves dict order — the exact op sequence
        the pre-refactor loop performed."""
        samples = [_sample(nid, 1.0, len(_POINTS) - 1) for nid in range(4)]
        legacy = UniformCapPolicy().allocate(
            samples, 80.0, TABLE, TABLE.slowest, TABLE.fastest, _predict
        )
        from repro.powercap import GovernorPlan

        plan = GovernorPlan.from_allocation(legacy)
        assert [a.node_id for a in plan.actions] == list(
            legacy.frequencies.keys()
        )
