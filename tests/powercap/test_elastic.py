"""ElasticPolicy unit tests: escalation order, gating rules, recovery.

The policy is a pure function of its :class:`PlanContext`, so every test
builds a context directly and inspects the emitted plan — no engine, no
cluster.  (Closed-loop behaviour and the pure-DVFS degeneracy live in
``test_bit_identity.py``; actuator execution in ``test_actuators.py``.)
"""

import pytest

from repro.hardware import PENTIUM_M_1400
from repro.hardware.calibration import DEFAULT_CALIBRATION
from repro.hardware.cluster import Cluster
from repro.hardware.spec import ClusterSpec
from repro.powercap import (
    CapGovernor,
    ELASTIC_KNOBS,
    ElasticPolicy,
    GateNode,
    NodeWindowSample,
    PlanContext,
    PowerBudget,
    SetCoreAllocation,
    SetFreqCeiling,
    WakeNode,
    compute_intensity,
)
from repro.powercap.resilience import ResilienceConfig
from repro.powercap.telemetry import demand_power, predict_node_power

TABLE = PENTIUM_M_1400
MODEL = DEFAULT_CALIBRATION.node_power_model(TABLE)
MIN_STEP = ElasticPolicy.CORE_STEPS[-1]


def _sample(node_id, busy):
    point = TABLE.fastest
    watts = (
        MODEL.base_power
        + busy * MODEL.cpu.max_power * TABLE.relative_fv2(point)
    )
    return NodeWindowSample(
        node_id=node_id,
        t0=0.0,
        t1=0.25,
        avg_watts=watts,
        busy_fraction=busy,
        frequency=point.frequency,
    )


def _predict(sample, point):
    return predict_node_power(MODEL, TABLE, sample, point)


def _intensity(sample):
    return compute_intensity(MODEL, TABLE, sample)


def make_policy(knobs=ELASTIC_KNOBS, **kwargs):
    return ElasticPolicy(knobs=knobs, intensity_of=_intensity, **kwargs)


def make_context(samples, target, **overrides):
    defaults = dict(
        samples=tuple(samples),
        target_watts=target,
        table=TABLE,
        floor=TABLE.slowest,
        ceiling=TABLE.fastest,
        predict=_predict,
        base_power=MODEL.base_power,
        gated_draw_watts=MODEL.gated_power,
        wake_cost_watts=demand_power(MODEL, TABLE, 1.0, TABLE.slowest),
    )
    defaults.update(overrides)
    return PlanContext(**defaults)


def floors_total(samples):
    """Predicted cluster draw with every node at the ladder floor."""
    return sum(_predict(s, TABLE.slowest) for s in samples)


def cores_floor_total(samples):
    """Floor draw with every node additionally at the smallest core step."""
    return sum(
        MODEL.base_power
        + MIN_STEP * (_predict(s, TABLE.slowest) - MODEL.base_power)
        for s in samples
    )


# Three busy nodes, node 0 slackest (lowest intensity) by construction.
SAMPLES = [_sample(0, 0.3), _sample(1, 0.8), _sample(2, 1.0)]


class TestConstruction:
    def test_rejects_unknown_knobs(self):
        with pytest.raises(ValueError, match="unknown knobs"):
            ElasticPolicy(knobs=("dvfs", "warp"))

    def test_requires_the_dvfs_knob(self):
        with pytest.raises(ValueError, match="dvfs"):
            ElasticPolicy(knobs=("gate",))

    def test_rejects_bad_wake_fraction(self):
        with pytest.raises(ValueError, match="wake_fraction"):
            ElasticPolicy(wake_fraction=0.0)

    def test_governor_rejects_elastic_plus_resilience(self):
        cluster = Cluster.from_spec(ClusterSpec.homogeneous(2))
        with pytest.raises(ValueError, match="cannot be combined"):
            CapGovernor(
                cluster,
                PowerBudget(cluster_watts=50.0),
                policy=ElasticPolicy(),
                resilience=ResilienceConfig(),
            )


class TestCoreEscalation:
    def test_shrinks_cores_when_the_ladder_bottoms_out(self):
        # Just below the all-floors draw: DVFS alone cannot get there,
        # one or two core notches can.
        target = floors_total(SAMPLES) - 0.5
        plan = make_policy(knobs=("dvfs", "cores")).plan(
            make_context(SAMPLES, target)
        )
        shrinks = [a for a in plan.actions if isinstance(a, SetCoreAllocation)]
        assert shrinks, "expected a core-allocation escalation"
        assert plan.feasible
        assert plan.predicted_watts <= target
        # The slackest node gives up cores first.
        assert shrinks[0].node_id == 0

    def test_dvfs_only_policy_reports_infeasible_instead(self):
        target = floors_total(SAMPLES) - 0.5
        plan = make_policy(knobs=("dvfs",)).plan(
            make_context(SAMPLES, target)
        )
        assert not plan.feasible
        assert not any(
            isinstance(a, SetCoreAllocation) for a in plan.actions
        )

    def test_no_op_reallocation_emits_no_core_actions(self):
        # Feasible by DVFS alone: every core fraction stays at 1.0 and
        # the plan must not carry redundant SetCoreAllocation actions.
        plan = make_policy().plan(make_context(SAMPLES, 200.0))
        assert not any(
            isinstance(a, SetCoreAllocation) for a in plan.actions
        )


class TestGateEscalation:
    def test_gates_the_slackest_node_when_cores_bottom_out(self):
        # Reachable only after gating node 0: survivors at min cores +
        # the gated node's suspend draw.
        target = cores_floor_total(SAMPLES[1:]) + MODEL.gated_power + 0.5
        assert target < cores_floor_total(SAMPLES)
        plan = make_policy().plan(make_context(SAMPLES, target))
        gates = [a for a in plan.actions if isinstance(a, GateNode)]
        assert [g.node_id for g in gates] == [0]
        assert plan.feasible
        assert plan.predicted_watts <= target
        # The gated node receives no frequency ceiling.
        assert 0 not in plan.frequencies

    def test_at_most_one_gate_per_window(self):
        plan = make_policy().plan(make_context(SAMPLES, 1.0))
        gates = [a for a in plan.actions if isinstance(a, GateNode)]
        assert len(gates) == 1
        assert not plan.feasible  # even the gate was not enough

    def test_protected_nodes_are_never_gated(self):
        target = cores_floor_total(SAMPLES[1:]) + MODEL.gated_power + 0.5
        plan = make_policy().plan(
            make_context(SAMPLES, target, protected=frozenset({0}))
        )
        gates = [a for a in plan.actions if isinstance(a, GateNode)]
        assert all(g.node_id != 0 for g in gates)

    def test_never_gates_the_last_node(self):
        lone = [SAMPLES[0]]
        plan = make_policy().plan(make_context(lone, 1.0))
        assert not any(isinstance(a, GateNode) for a in plan.actions)
        assert not plan.feasible

    def test_fully_protected_cluster_cannot_gate(self):
        plan = make_policy().plan(
            make_context(SAMPLES, 1.0, protected=frozenset({0, 1, 2}))
        )
        assert not any(isinstance(a, GateNode) for a in plan.actions)


class TestRecovery:
    IDLE = [_sample(0, 0.05), _sample(1, 0.05)]

    def test_wakes_a_gated_node_under_the_hysteresis_margin(self):
        plan = make_policy().plan(
            make_context(self.IDLE, 80.0, gated=frozenset({2}))
        )
        wakes = [a for a in plan.actions if isinstance(a, WakeNode)]
        assert [w.node_id for w in wakes] == [2]
        assert wakes[0].boot_frequency is None  # ladder floor default

    def test_no_wake_while_a_boot_is_already_in_flight(self):
        plan = make_policy().plan(
            make_context(
                self.IDLE, 80.0, gated=frozenset({2}), waking=frozenset({2})
            )
        )
        assert not any(isinstance(a, WakeNode) for a in plan.actions)

    def test_no_wake_near_the_budget_boundary(self):
        # Feasible, but without enough headroom to absorb a wake: the
        # hysteresis must hold the gate.
        busy_pair = [_sample(0, 1.0), _sample(1, 1.0)]
        target = floors_total(busy_pair) + MODEL.gated_power + 1.0
        plan = make_policy().plan(
            make_context(busy_pair, target, gated=frozenset({2}))
        )
        assert not any(isinstance(a, WakeNode) for a in plan.actions)

    def test_cores_restore_before_gates_wake(self):
        plan = make_policy().plan(
            make_context(
                self.IDLE,
                80.0,
                gated=frozenset({2}),
                core_allocation={0: 0.5, 1: 1.0},
            )
        )
        restores = [
            a for a in plan.actions if isinstance(a, SetCoreAllocation)
        ]
        assert restores == [SetCoreAllocation(node_id=0, fraction=0.75)]
        assert not any(isinstance(a, WakeNode) for a in plan.actions)

    def test_dvfs_only_policy_never_wakes(self):
        plan = make_policy(knobs=("dvfs",)).plan(
            make_context(self.IDLE, 80.0, gated=frozenset({2}))
        )
        assert not any(isinstance(a, WakeNode) for a in plan.actions)


class TestEmptyWindow:
    def test_all_nodes_gated_is_feasible_while_reserve_fits(self):
        plan = make_policy().plan(
            make_context([], 20.0, gated=frozenset({0, 1, 2}))
        )
        assert plan.feasible
        assert not plan.frequencies

    def test_all_nodes_gated_is_infeasible_below_the_suspend_floor(self):
        plan = make_policy().plan(
            make_context(
                [], 3 * MODEL.gated_power - 0.1, gated=frozenset({0, 1, 2})
            )
        )
        assert not plan.feasible


class TestPlanShape:
    def test_actions_order_cores_gate_ceilings_wake(self):
        target = cores_floor_total(SAMPLES[1:]) + MODEL.gated_power + 0.5
        plan = make_policy().plan(make_context(SAMPLES, target))
        kinds = [type(a).__name__ for a in plan.actions]
        order = {"SetCoreAllocation": 0, "GateNode": 1, "SetFreqCeiling": 2,
                 "WakeNode": 3}
        assert kinds == sorted(kinds, key=order.__getitem__)
        assert any(isinstance(a, SetFreqCeiling) for a in plan.actions)

    def test_plan_is_deterministic(self):
        target = floors_total(SAMPLES) - 0.5
        ctx = make_context(SAMPLES, target)
        policy = make_policy()
        assert policy.plan(ctx) == policy.plan(ctx)
