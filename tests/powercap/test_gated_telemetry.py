"""The gating/telemetry interaction (the latent-fix satellite).

Before node gating existed, ``telemetry_visible=False`` paths were only
exercised by fault dropouts (dark agents, crashes).  An orderly
power-gated node takes the same exclusion path — and must: a suspended
node draws 2.4 W of suspend power and runs nothing, so including it in
window averages, letting the slack allocator "donate" its (nonexistent)
headroom, or letting the crash watchdog declare it dead would all
corrupt the control loop.  These tests pin the gated case explicitly:

* the cluster sampler reports no window sample for a gated node, and
  resumes the moment it powers back on;
* the legacy allocation path hands :class:`SlackRedistributionPolicy`
  only powered nodes, against a target reduced by the gated reserve;
* the resilient path carves the gated node at suspend power instead of
  walking it through the dead/stale machinery.
"""

import pytest

from repro.hardware.activity import CpuActivity
from repro.hardware.cluster import Cluster
from repro.hardware.spec import ClusterSpec
from repro.powercap import (
    CapGovernor,
    CapGovernorConfig,
    ClusterTelemetry,
    GateNode,
    NodeGateActuator,
    PowerBudget,
    SlackRedistributionPolicy,
)
from repro.powercap.resilience import ResilienceConfig


def make_cluster(n=3):
    return Cluster.from_spec(ClusterSpec.homogeneous(n))


def busy(node, seconds):
    yield from node.cpu.run_cycles(seconds * node.cpu.frequency)


class TestGatedSamplingExclusion:
    def test_gated_node_reports_no_sample(self):
        cluster = make_cluster(2)
        telemetry = ClusterTelemetry(cluster)
        gate = NodeGateActuator(cluster, wake_latency_s=0.0)
        gate.apply(GateNode(node_id=0))
        assert not cluster.nodes[0].cpu.powered
        cluster.engine.process(busy(cluster.nodes[1], 0.1))
        cluster.engine.run(until=0.2)
        assert [s.node_id for s in telemetry.sample()] == [1]

    def test_gated_node_rejoins_sampling_after_wake(self):
        cluster = make_cluster(2)
        telemetry = ClusterTelemetry(cluster)
        gate = NodeGateActuator(cluster, wake_latency_s=0.0)
        gate.apply(GateNode(node_id=0))
        cluster.engine.run(until=0.2)
        assert [s.node_id for s in telemetry.sample()] == [1]
        cluster.nodes[0].cpu.power_on(boot_point=cluster.table.slowest)
        cluster.engine.run(until=0.4)
        samples = telemetry.sample()
        assert [s.node_id for s in samples] == [0, 1]
        # The rejoining node's window integral stayed aligned while it
        # was invisible: its first sample back covers only this window,
        # at suspend-to-idle levels — not an accumulated backlog.
        model = cluster.nodes[0].power_model
        assert samples[0].avg_watts < model.power(
            cluster.table.fastest, state=CpuActivity.ACTIVE, utilization=1.0
        )
        assert samples[0].busy_fraction == pytest.approx(0.0)


class RecordingPolicy(SlackRedistributionPolicy):
    """Records every (visible node ids, target) the governor hands it."""

    def __init__(self):
        super().__init__()
        self.calls = []

    def allocate(self, samples, target, *args, **kwargs):
        self.calls.append(
            (tuple(sorted(s.node_id for s in samples)), target)
        )
        return super().allocate(samples, target, *args, **kwargs)


class TestGatedAllocationExclusion:
    def run_windows(self, resilience=None, until=1.0):
        cluster = make_cluster(3)
        policy = RecordingPolicy()
        governor = CapGovernor(
            cluster,
            PowerBudget(cluster_watts=80.0),
            policy=policy,
            config=CapGovernorConfig(interval=0.25),
            resilience=resilience,
        )
        governor.start(cluster.engine)
        # Gate node 0 through the governor's own actuator and books —
        # exactly what applying a GateNode plan does.
        governor._routes[GateNode].apply(GateNode(node_id=0))
        governor._gated.add(0)
        for node in cluster.nodes[1:]:
            cluster.engine.process(busy(node, 0.6))
        cluster.engine.run(until=until)
        governor.stop()
        return cluster, governor, policy

    def test_slack_policy_never_sees_the_gated_node(self):
        cluster, governor, policy = self.run_windows()
        post_gate = [c for c in policy.calls if c[0] == (1, 2)]
        assert post_gate, "no allocation ran after the gate"
        for node_ids, _target in policy.calls[1:]:
            assert 0 not in node_ids

    def test_target_is_reduced_by_the_gated_reserve(self):
        cluster, governor, policy = self.run_windows()
        model = cluster.nodes[0].power_model
        expected = governor.target_watts - model.gated_power
        for _node_ids, target in policy.calls[1:]:
            assert target == pytest.approx(expected, abs=1e-12)

    def test_gated_node_keeps_no_frequency_allocation(self):
        cluster, governor, policy = self.run_windows()
        for window in governor.windows[1:]:
            assert 0 not in window.frequencies

    def test_resilient_path_carves_instead_of_declaring_dead(self):
        cluster, governor, policy = self.run_windows(
            resilience=ResilienceConfig(), until=2.0
        )
        # Dark + near-zero draw for many windows is exactly the crash
        # signature — the gated carve must keep the watchdog quiet.
        assert governor.dead_nodes == frozenset()
        assert not [e for e in governor.repair_log if e.node_id == 0]
        for node_ids, _target in policy.calls[1:]:
            assert 0 not in node_ids
