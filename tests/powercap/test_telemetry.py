"""Tests for telemetry windows, α inference, and power prediction."""

import pytest

from repro.hardware import PENTIUM_M_1400
from repro.hardware.activity import CpuActivity
from repro.hardware.calibration import DEFAULT_CALIBRATION
from repro.hardware.cluster import Cluster
from repro.hardware.spec import ClusterSpec
from repro.powercap import (
    ClusterTelemetry,
    NodeWindowSample,
    compute_intensity,
    infer_busy_alpha,
    predict_node_power,
)
from repro.powercap.telemetry import demand_power, spin_floor_power
from repro.util.units import MHZ

TABLE = PENTIUM_M_1400
MODEL = DEFAULT_CALIBRATION.node_power_model(TABLE)


def sample_at(state, busy, frequency=1400 * MHZ, utilization=None):
    """A synthetic window whose watts match the node power model exactly.

    ``busy`` time draws at the activity factor of ``state``; the rest of
    the window idles.
    """
    point = TABLE.point_for(frequency)
    busy_watts = MODEL.power(point, state=state, utilization=1.0)
    idle_watts = MODEL.power(point, state=CpuActivity.IDLE, utilization=1.0)
    avg = busy * busy_watts + (1.0 - busy) * idle_watts
    return NodeWindowSample(
        node_id=0,
        t0=0.0,
        t1=0.25,
        avg_watts=avg,
        busy_fraction=busy,
        frequency=frequency,
    )


class TestAlphaInference:
    """Power tells apart what /proc/stat cannot (the Fig-3 blindness)."""

    def test_fully_active_rank_infers_alpha_one(self):
        alpha = infer_busy_alpha(MODEL, TABLE, sample_at(CpuActivity.ACTIVE, 1.0))
        assert alpha == pytest.approx(1.0, abs=1e-9)

    def test_spinning_rank_infers_spin_alpha_despite_full_busy(self):
        # 100 % busy to the kernel, but the watts say "busy-wait".
        alpha = infer_busy_alpha(MODEL, TABLE, sample_at(CpuActivity.SPIN, 1.0))
        assert alpha == pytest.approx(MODEL.cpu.factors[CpuActivity.SPIN], abs=1e-9)

    def test_memstalled_rank_infers_memstall_alpha(self):
        alpha = infer_busy_alpha(
            MODEL, TABLE, sample_at(CpuActivity.MEMSTALL, 1.0)
        )
        assert alpha == pytest.approx(
            MODEL.cpu.factors[CpuActivity.MEMSTALL], abs=1e-9
        )

    def test_inference_holds_at_reduced_frequency(self):
        alpha = infer_busy_alpha(
            MODEL, TABLE, sample_at(CpuActivity.ACTIVE, 0.6, frequency=800 * MHZ)
        )
        assert alpha == pytest.approx(1.0, abs=1e-9)

    def test_near_idle_window_is_conservatively_fully_active(self):
        # With almost no busy time, α is unidentifiable: assume the worst.
        assert infer_busy_alpha(MODEL, TABLE, sample_at(CpuActivity.ACTIVE, 0.0)) == 1.0
        assert infer_busy_alpha(MODEL, TABLE, sample_at(CpuActivity.SPIN, 0.01)) == 1.0

    def test_alpha_is_clamped_to_unit_interval(self):
        point = TABLE.fastest
        hot = NodeWindowSample(0, 0.0, 0.25, avg_watts=1e4, busy_fraction=1.0,
                               frequency=point.frequency)
        cold = NodeWindowSample(0, 0.0, 0.25, avg_watts=0.0, busy_fraction=1.0,
                                frequency=point.frequency)
        assert infer_busy_alpha(MODEL, TABLE, hot) == 1.0
        assert infer_busy_alpha(MODEL, TABLE, cold) == 0.0


class TestPrediction:
    def test_predicting_the_sampled_point_reproduces_the_measurement(self):
        sample = sample_at(CpuActivity.SPIN, 1.0, frequency=1000 * MHZ)
        predicted = predict_node_power(
            MODEL, TABLE, sample, TABLE.point_for(1000 * MHZ)
        )
        assert predicted == pytest.approx(sample.avg_watts, rel=1e-9)

    def test_prediction_is_monotone_in_frequency(self):
        sample = sample_at(CpuActivity.ACTIVE, 0.8)
        watts = [
            predict_node_power(MODEL, TABLE, sample, p) for p in TABLE.points
        ]
        assert watts == sorted(watts)

    def test_demand_power_is_monotone_in_demand_and_point(self):
        point = TABLE.fastest
        assert demand_power(MODEL, TABLE, 0.2, point) < demand_power(
            MODEL, TABLE, 0.9, point
        )
        assert demand_power(MODEL, TABLE, 0.5, TABLE.slowest) < demand_power(
            MODEL, TABLE, 0.5, TABLE.fastest
        )

    def test_spin_floor_matches_a_full_busy_wait(self):
        point = TABLE.point_for(1200 * MHZ)
        expected = MODEL.power(point, state=CpuActivity.SPIN, utilization=1.0)
        assert spin_floor_power(MODEL, TABLE, point) == pytest.approx(expected)


class TestComputeIntensity:
    def test_orders_compute_above_protocol_above_spin(self):
        active = compute_intensity(MODEL, TABLE, sample_at(CpuActivity.ACTIVE, 1.0))
        proto = compute_intensity(MODEL, TABLE, sample_at(CpuActivity.PROTO, 1.0))
        spin = compute_intensity(MODEL, TABLE, sample_at(CpuActivity.SPIN, 1.0))
        assert active > proto > spin

    def test_scales_with_busy_fraction(self):
        full = compute_intensity(MODEL, TABLE, sample_at(CpuActivity.ACTIVE, 1.0))
        half = compute_intensity(MODEL, TABLE, sample_at(CpuActivity.ACTIVE, 0.5))
        assert half == pytest.approx(0.5 * full, rel=1e-6)


class TestClusterTelemetry:
    def test_windows_tile_the_run_and_report_true_power(self):
        cluster = Cluster.from_spec(ClusterSpec.homogeneous(2))
        telemetry = ClusterTelemetry(cluster)
        engine = cluster.engine

        def work(node):
            yield from node.cpu.run_cycles(0.2 * node.cpu.frequency)

        for node in cluster.nodes:
            engine.process(work(node))
        engine.run(until=0.1)
        first = telemetry.sample()
        engine.run(until=0.3)
        second = telemetry.sample()

        assert [s.t0 for s in first] == [0.0, 0.0]
        assert [s.t1 for s in first] == [0.1, 0.1]
        assert [s.t0 for s in second] == [0.1, 0.1]
        assert [s.t1 for s in second] == [0.3, 0.3]
        for s in first:
            node = cluster.nodes[s.node_id]
            assert s.avg_watts == pytest.approx(
                node.timeline.average_power(0.0, 0.1)
            )
            assert s.busy_fraction == pytest.approx(1.0)
        # After the work ends the nodes idle, and the windows see it.
        for s in second:
            assert s.busy_fraction == pytest.approx(0.5, abs=1e-6)


class TestWindowGuards:
    def test_zero_length_window_returns_no_samples(self):
        # The governor fired twice at the same sim time: nothing was
        # measured, and a NaN from 0/0 must never reach the policies.
        cluster = Cluster.from_spec(ClusterSpec.homogeneous(2))
        telemetry = ClusterTelemetry(cluster)
        assert telemetry.sample() == []

    def test_dark_node_reports_no_sample(self):
        cluster = Cluster.from_spec(ClusterSpec.homogeneous(2))
        telemetry = ClusterTelemetry(cluster)
        cluster.nodes[0].faults.telemetry_dark = True
        cluster.engine.process(
            cluster.nodes[1].cpu.run_cycles(0.1 * cluster.nodes[1].cpu.frequency)
        )
        cluster.engine.run(until=0.2)
        assert [s.node_id for s in telemetry.sample()] == [1]
