"""ElasticServingPolicy: the multi-knob governor inside the serving stack.

Small diurnal workloads keep the runs fast; the full knob-map claims
live in the ``knobmap`` experiment (tests/experiments).
"""

import pytest

from repro.metrics.serving import build_serving_report
from repro.serving import (
    DiurnalArrivals,
    ELASTIC_ALLOCATORS,
    ElasticServingPolicy,
    ServingTask,
    ServingWorkload,
    TierSpec,
    run_serving,
)

WORKLOAD = ServingWorkload(
    tiers=(
        TierSpec("web", nodes=2, service_cycles=2.0e6),
        TierSpec("app", nodes=2, service_cycles=4.0e6),
    ),
    arrivals=DiurnalArrivals(base_rate=30.0, swing=0.6, period_s=3.0, seed=7),
    horizon_s=6.0,
    name="diurnal-mini",
    seed=7,
)


def run_elastic(budget_watts, **kwargs):
    policy = ElasticServingPolicy(budget_watts=budget_watts, **kwargs)
    run = run_serving(WORKLOAD, policy)
    return run, build_serving_report(run)


class TestNames:
    def test_full_knob_set_label(self):
        assert ElasticServingPolicy(30.0).name == "elastic@30W"

    def test_restricted_knobs_label(self):
        assert (
            ElasticServingPolicy(30.0, knobs=("dvfs",)).name
            == "elastic[dvfs]@30W"
        )

    def test_uniform_allocator_label(self):
        assert (
            ElasticServingPolicy(30.0, knobs=("dvfs",), allocator="uniform").name
            == "elastic[dvfs]/uniform@30W"
        )

    def test_rejects_unknown_allocator(self):
        with pytest.raises(ValueError, match="allocator"):
            ElasticServingPolicy(30.0, allocator="greedy")
        assert ELASTIC_ALLOCATORS == ("redist", "uniform")


class TestElasticServingRuns:
    def test_every_request_is_served_despite_gating(self):
        # A deep budget forces node gating; drain + the runner's
        # re-enqueue guard must still serve every request.
        run, report = run_elastic(26.0)
        assert report.completed == report.n_requests
        assert report.dropped == 0
        gov = run.policy.governor
        assert gov is not None and gov.windows

    def test_deep_budget_beats_the_dvfs_only_floor(self):
        # The DVFS floor for this 4-node cluster sits near 38 W; an
        # elastic run at 26 W must land under what dvfs-only can reach.
        _, elastic = run_elastic(26.0)
        _, dvfs_only = run_elastic(26.0, knobs=("dvfs",))
        assert elastic.average_power_w < dvfs_only.average_power_w
        assert elastic.average_power_w <= 26.0
        assert dvfs_only.average_power_w > 26.0

    def test_cap_escalation_is_reported(self):
        _, elastic = run_elastic(26.0)
        assert elastic.cap_escalation == "gate"
        _, dvfs_only = run_elastic(26.0, knobs=("dvfs",))
        assert dvfs_only.cap_escalation == "dvfs"
        assert dvfs_only.cap_total_windows > 0
        assert dvfs_only.cap_feasible_windows < dvfs_only.cap_total_windows

    def test_protected_tier_heads_stay_powered(self):
        run, _ = run_elastic(26.0)
        protected = run.policy.governor.policy.protected
        assert protected, "no tier heads were protected"
        for nid in protected:
            assert run.cluster.nodes[nid].cpu.powered


class TestSweepIntegration:
    def test_elastic_task_round_trips_through_the_sweep(self):
        task = ServingTask(
            WORKLOAD, "elastic", budget_watts=26.0, knobs=("dvfs", "gate")
        )
        assert task.label == "elastic[dvfs+gate]@26W"
        policy = task.build_policy()
        assert isinstance(policy, ElasticServingPolicy)
        assert policy.knobs == ("dvfs", "gate")

    def test_knobs_require_the_elastic_recipe(self):
        with pytest.raises(ValueError, match="knobs"):
            ServingTask(
                WORKLOAD, "powercap", budget_watts=26.0, knobs=("dvfs",)
            )

    def test_elastic_requires_a_budget(self):
        with pytest.raises(ValueError, match="budget"):
            ServingTask(WORKLOAD, "elastic")
