"""Serving policies: static pinning, per-tier DVS, capping, cpuspeed."""

import pytest

from repro.hardware.cluster import Cluster
from repro.hardware.spec import ClusterSpec
from repro.serving.arrivals import MMPPArrivals, PoissonArrivals
from repro.serving.policy import (
    CpuspeedServingPolicy,
    PowerCapServingPolicy,
    StaticServingPolicy,
    TierDvsPolicy,
)
from repro.serving.runner import run_serving
from repro.serving.spec import ServingWorkload, TierSpec

LADDER = Cluster.from_spec(ClusterSpec.homogeneous(1)).table  # the Pentium-M frequency ladder


def workload(**overrides):
    defaults = dict(
        tiers=(
            TierSpec("fe", nodes=1, service_cycles=1.0e6),
            TierSpec("app", nodes=2, service_cycles=8.0e6),
            TierSpec("db", nodes=1, service_cycles=2.0e6),
        ),
        arrivals=MMPPArrivals(
            25.0, 120.0, base_dwell_s=1.0, burst_dwell_s=0.4, seed=4
        ),
        horizon_s=3.0,
        timeout_s=4.0,
    )
    defaults.update(overrides)
    return ServingWorkload(**defaults)


class TestStatic:
    def test_default_pins_the_fastest_point(self):
        run = run_serving(workload())
        policy = run.policy
        assert policy.name == "static@1400MHz"
        for tier in policy.tiers:
            assert policy.tier_frequency(tier) == LADDER.fastest.frequency

    def test_slow_static_trades_latency_for_energy(self):
        fast = run_serving(workload(), StaticServingPolicy())
        slow = run_serving(workload(), StaticServingPolicy(600e6))
        assert slow.policy.name == "static@600MHz"
        assert slow.energy_j < fast.energy_j
        slow_ok = [r.latency_s for r in slow.records if r.ok]
        fast_ok = [r.latency_s for r in fast.records if r.ok]
        assert sum(slow_ok) / len(slow_ok) > sum(fast_ok) / len(fast_ok)


class TestTierDvs:
    def test_pins_the_critical_tier_and_slows_the_rest(self):
        policy = TierDvsPolicy(interval=0.2)
        run = run_serving(workload(), policy)
        fe, app, db = policy.tiers
        # The app tier dominates residence: never below the top point.
        assert policy.tier_frequency(app) == LADDER.fastest.frequency
        # The off-path tiers got walked down (the whole point).
        stepped_down = {
            name
            for _, name, freq in policy.decisions
            if freq < LADDER.fastest.frequency
        }
        assert {"fe", "db"} & stepped_down
        assert policy.tier_frequency(fe) < LADDER.fastest.frequency
        # And it spends less than static-max on the same stream.
        static = run_serving(workload())
        assert run.energy_j < static.energy_j

    def test_retunes_only_to_ladder_points(self):
        policy = TierDvsPolicy(interval=0.2)
        run_serving(workload(), policy)
        assert policy.decisions
        assert {f for _, _, f in policy.decisions} <= set(LADDER.frequencies)

    def test_queue_pressure_steps_a_slowed_tier_back_up(self):
        """Saturate the frontend mid-run: once its queue builds, the
        policy must raise it back toward the top point."""
        policy = TierDvsPolicy(interval=0.1)
        run_serving(
            workload(
                tiers=(
                    TierSpec("fe", nodes=1, service_cycles=6.0e6),
                    TierSpec("app", nodes=2, service_cycles=8.0e6),
                ),
                arrivals=MMPPArrivals(
                    10.0, 200.0, base_dwell_s=1.0, burst_dwell_s=0.6, seed=8
                ),
            ),
            policy,
        )
        fe_freqs = [f for _, name, f in policy.decisions if name == "fe"]
        assert fe_freqs  # the controller acted on the frontend
        ups = [b for a, b in zip(fe_freqs, fe_freqs[1:]) if b > a]
        assert ups, "frontend was never stepped back up under pressure"

    def test_validation(self):
        with pytest.raises(ValueError):
            TierDvsPolicy(interval=0.0)
        with pytest.raises(ValueError):
            TierDvsPolicy(safety=-1.0)
        with pytest.raises(ValueError):
            TierDvsPolicy(queue_low=-1)


class TestPowerCap:
    def test_cap_cuts_power_against_static_max(self):
        static = run_serving(workload())
        budget = 0.75 * static.energy_j / static.duration_s
        policy = PowerCapServingPolicy(budget, interval=0.2)
        capped = run_serving(workload(), policy)
        assert policy.decisions
        assert capped.energy_j < static.energy_j
        # Settled behaviour: the last windows run at/below the budget.
        tail = policy.decisions[len(policy.decisions) // 2 :]
        assert min(watts for _, _, watts in tail) <= budget

    def test_ceiling_is_uniform_across_tiers(self):
        static = run_serving(workload())
        budget = 0.75 * static.energy_j / static.duration_s
        policy = PowerCapServingPolicy(budget, interval=0.2)
        run_serving(workload(), policy)
        assert len({policy.tier_frequency(t) for t in policy.tiers}) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            PowerCapServingPolicy(0.0)
        with pytest.raises(ValueError):
            PowerCapServingPolicy(50.0, interval=-1.0)


class TestCpuspeed:
    def test_daemons_scale_down_in_lulls(self):
        policy = CpuspeedServingPolicy()
        run = run_serving(
            workload(arrivals=PoissonArrivals(15.0, seed=4)), policy
        )
        assert len(policy.daemons) == run.workload.total_nodes
        # Light load: the utilisation-driven daemon must leave the top
        # point, which is exactly what burns it under bursts.
        static = run_serving(
            workload(arrivals=PoissonArrivals(15.0, seed=4))
        )
        assert run.energy_j < static.energy_j
