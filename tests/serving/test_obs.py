"""Observation: serving spans/counters in the tracer, zero-cost when
disabled, and bit-for-bit neutrality of tracing on results."""

import json

import pytest

from repro.obs.export import (
    TraceData,
    load_trace_file,
    validate_chrome_trace,
)
from repro.obs.tracer import Tracer, tracing
from repro.serving.arrivals import MMPPArrivals
from repro.serving.policy import TierDvsPolicy
from repro.serving.runner import run_serving
from repro.serving.spec import ServingWorkload, TierSpec
from repro.serving.sweep import ServingTask
from repro.session import Session

WORKLOAD = ServingWorkload(
    tiers=(
        TierSpec("fe", nodes=1, service_cycles=1.0e6),
        TierSpec("app", nodes=1, service_cycles=4.0e6),
    ),
    arrivals=MMPPArrivals(
        20.0, 100.0, base_dwell_s=0.8, burst_dwell_s=0.3, seed=2
    ),
    horizon_s=1.5,
    timeout_s=3.0,
)


class TestSpans:
    def test_traced_run_emits_request_and_tier_spans(self):
        tracer = Tracer()
        with tracing(tracer):
            run = run_serving(WORKLOAD, TierDvsPolicy(interval=0.2))
        data = TraceData.from_tracer(tracer)
        by_cat = {}
        for span in data.spans:
            by_cat.setdefault(span.cat, []).append(span)

        requests = by_cat["serving.request"]
        assert len(requests) == len(run.records)
        assert {s.args["status"] for s in requests} == {"ok"}
        assert {s.args["request"] for s in requests} == {
            r.request_id for r in run.records
        }

        tiers = by_cat["serving.tier"]
        assert {s.name for s in tiers} == {"fe", "app"}
        # One tier span per record span, on the serving node's track.
        assert len(tiers) == sum(len(r.spans) for r in run.records)
        assert {s.track for s in tiers} == {
            s.node_id for r in run.records for s in r.spans
        }

        queue_counters = {
            c.name for c in data.counters if c.name.startswith("queue[")
        }
        assert queue_counters == {"queue[fe]", "queue[app]"}
        assert any(i.name == "retune" for i in data.instants)

    def test_untraced_run_records_nothing(self):
        tracer = Tracer(enabled=False)
        with tracing(tracer):
            run_serving(WORKLOAD)
        assert len(tracer) == 0


class TestNeutrality:
    def test_tracing_never_changes_a_single_bit(self):
        bare = run_serving(WORKLOAD, TierDvsPolicy(interval=0.2))
        with tracing(Tracer(enabled=False)):
            disabled = run_serving(WORKLOAD, TierDvsPolicy(interval=0.2))
        with tracing(Tracer()):
            enabled = run_serving(WORKLOAD, TierDvsPolicy(interval=0.2))
        assert disabled.records == bare.records
        assert enabled.records == bare.records
        assert disabled.energy_j == bare.energy_j
        assert enabled.energy_j == bare.energy_j


class TestChromeExportRoundTrip:
    def test_session_export_trace_round_trips_request_spans(self, tmp_path):
        session = Session(tracer=Tracer())
        outcome = session.run_serving(
            ServingTask(WORKLOAD, "tierdvs", interval=0.2)
        )
        path = tmp_path / "serving.trace.json"
        n_written = session.export_trace(path)
        assert n_written > 0

        document = json.loads(path.read_text(encoding="utf-8"))
        assert validate_chrome_trace(document) == []

        data = load_trace_file(path)
        requests = [s for s in data.spans if s.cat == "serving.request"]
        assert len(requests) == outcome.report.n_requests
        assert {s.args["request"] for s in requests} == set(
            range(outcome.report.n_requests)
        )
        tier_spans = [s for s in data.spans if s.cat == "serving.tier"]
        assert {s.name for s in tier_spans} == {"fe", "app"}
        # The sweep's wall-clock task span wraps the whole run.
        assert any(s.cat == "sweep.task" for s in data.spans)

    def test_report_unchanged_by_session_tracing(self):
        untraced = Session().run_serving(ServingTask(WORKLOAD, "static"))
        traced = Session(tracer=Tracer()).run_serving(
            ServingTask(WORKLOAD, "static")
        )
        assert traced.report == untraced.report
        assert traced.point == untraced.point
