"""The serving data path: queue discipline, spans, drops, timeouts."""

import pytest

from repro.serving.arrivals import PoissonArrivals
from repro.serving.records import REQUEST_STATUSES
from repro.serving.runner import run_serving
from repro.serving.spec import RequestSpec, ServingWorkload, TierSpec


def workload(**overrides):
    defaults = dict(
        tiers=(
            TierSpec("fe", nodes=1, service_cycles=1.0e6),
            TierSpec("app", nodes=2, service_cycles=4.0e6),
        ),
        arrivals=PoissonArrivals(40.0, seed=2),
        horizon_s=1.5,
        timeout_s=5.0,
    )
    defaults.update(overrides)
    return ServingWorkload(**defaults)


@pytest.fixture(scope="module")
def run():
    return run_serving(workload())


class TestSpec:
    def test_requests_are_pre_materialised_in_arrival_order(self):
        w = workload()
        requests = w.requests()
        assert requests == w.requests()  # pure function of the spec
        assert [r.request_id for r in requests] == list(range(len(requests)))
        arrivals = [r.arrival_s for r in requests]
        assert arrivals == sorted(arrivals)
        assert all(len(r.demands) == len(w.tiers) for r in requests)
        assert all(d > 0 for r in requests for d in r.demands)

    def test_fixed_distribution_pins_every_demand(self):
        w = workload(
            tiers=(TierSpec("only", 1, 2.0e6, distribution="fixed"),)
        )
        assert all(r.demands == (2.0e6,) for r in w.requests())

    def test_spec_validation(self):
        with pytest.raises(ValueError, match="unique"):
            workload(tiers=(TierSpec("a", 1, 1e6), TierSpec("a", 1, 1e6)))
        with pytest.raises(ValueError, match="at least one tier"):
            workload(tiers=())
        with pytest.raises(TypeError, match="times"):
            workload(arrivals=object())
        with pytest.raises(ValueError, match="distribution"):
            TierSpec("a", 1, 1e6, distribution="pareto")
        with pytest.raises(ValueError, match="queue_capacity"):
            TierSpec("a", 1, 1e6, queue_capacity=0)


class TestHappyPath:
    def test_every_arrival_resolves_exactly_once(self, run):
        n = len(run.workload.requests())
        assert len(run.records) == n
        assert [r.request_id for r in run.records] == list(range(n))
        assert all(r.status in REQUEST_STATUSES for r in run.records)

    def test_unloaded_run_completes_everything(self, run):
        assert all(r.status == "ok" for r in run.records)

    def test_ok_requests_traverse_every_tier_in_order(self, run):
        names = run.workload.tier_names
        for record in run.records:
            assert tuple(s.tier for s in record.spans) == names
            for span in record.spans:
                assert span.enqueued_s <= span.started_s <= span.finished_s
                assert span.wait_s >= 0.0
                assert span.service_s > 0.0
            for a, b in zip(record.spans, record.spans[1:]):
                assert b.enqueued_s >= a.finished_s
            assert record.resolved_s == record.spans[-1].finished_s
            assert record.latency_s > 0.0

    def test_spans_land_on_the_tiers_own_nodes(self, run):
        groups = {}
        offset = 0
        for spec in run.workload.tiers:
            groups[spec.name] = set(range(offset, offset + spec.nodes))
            offset += spec.nodes
        for record in run.records:
            for span in record.spans:
                assert span.node_id in groups[span.tier]

    def test_fifo_service_order_per_tier_node(self, run):
        """On any one node, service starts in the order work arrived."""
        by_node = {}
        for record in run.records:
            for span in record.spans:
                by_node.setdefault(span.node_id, []).append(span)
        for spans in by_node.values():
            starts = [s.started_s for s in spans]
            enqueues = [s.enqueued_s for s in spans]
            assert starts == sorted(starts)
            assert enqueues == sorted(enqueues)

    def test_window_and_energy(self, run):
        assert run.end >= run.workload.horizon_s
        assert run.duration_s == run.end - run.start
        assert run.energy_j > 0.0


class TestOverload:
    def test_bounded_queue_sheds_load(self):
        over = run_serving(
            workload(
                tiers=(
                    TierSpec("fe", 1, 1.0e6),
                    TierSpec("app", 1, 40.0e6, queue_capacity=2),
                ),
                arrivals=PoissonArrivals(120.0, seed=5),
                horizon_s=1.0,
                timeout_s=30.0,
            )
        )
        dropped = [r for r in over.records if r.status == "dropped"]
        assert dropped
        # A request dropped at the app queue served the frontend only.
        assert all(
            tuple(s.tier for s in r.spans) == ("fe",) for r in dropped
        )
        assert len(over.records) == len(over.workload.requests())

    def test_stale_requests_time_out_at_dequeue(self):
        slow = run_serving(
            workload(
                tiers=(TierSpec("app", 1, 20.0e6),),
                arrivals=PoissonArrivals(150.0, seed=6),
                horizon_s=1.0,
                timeout_s=0.05,
            )
        )
        timed_out = [r for r in slow.records if r.status == "timeout"]
        assert timed_out
        assert all(not r.spans for r in timed_out)  # discarded unserved
        assert all(
            r.resolved_s - r.arrival_s > slow.workload.timeout_s
            for r in timed_out
        )

    def test_empty_request_stream_is_a_clean_run(self):
        class NoArrivals:
            def times(self, horizon_s):
                return ()

        quiet = run_serving(workload(arrivals=NoArrivals()))
        assert quiet.records == ()
        assert quiet.end == quiet.workload.horizon_s
        assert quiet.energy_j > 0.0  # idle power still accrues


class TestRecords:
    def test_request_record_properties(self):
        from repro.serving.records import RequestRecord, TierSpan

        span = TierSpan("app", 3, 1.0, 1.25, 1.5)
        assert span.wait_s == pytest.approx(0.25)
        assert span.service_s == pytest.approx(0.25)
        assert span.residence_s == pytest.approx(0.5)
        record = RequestRecord(7, 0.9, 1.5, "ok", (span,))
        assert record.ok
        assert record.latency_s == pytest.approx(0.6)
        assert not RequestRecord(8, 0.9, 1.5, "timeout", ()).ok

    def test_request_spec_is_frozen(self):
        spec = RequestSpec(0, 0.0, (1.0,))
        with pytest.raises(AttributeError):
            spec.arrival_s = 1.0
