"""Determinism: same seed ⇒ bit-identical records and energy, and an
AST audit proving the serving modules never touch global RNG state."""

import ast
from pathlib import Path

import repro.serving
from repro.serving.arrivals import MMPPArrivals
from repro.serving.policy import TierDvsPolicy
from repro.serving.runner import run_serving
from repro.serving.spec import ServingWorkload, TierSpec


def workload(arrival_seed=3, demand_seed=0):
    return ServingWorkload(
        tiers=(
            TierSpec("fe", nodes=1, service_cycles=1.0e6),
            TierSpec("app", nodes=2, service_cycles=5.0e6),
        ),
        arrivals=MMPPArrivals(
            20.0, 120.0, base_dwell_s=0.8, burst_dwell_s=0.3, seed=arrival_seed
        ),
        horizon_s=2.0,
        timeout_s=3.0,
        seed=demand_seed,
    )


class TestBitIdentity:
    def test_same_seed_same_records_and_energy(self):
        first = run_serving(workload())
        second = run_serving(workload())
        assert first.records == second.records  # bit-identical dataclasses
        assert first.end == second.end
        assert first.energy_j == second.energy_j

    def test_same_seed_same_records_under_a_control_loop(self):
        """Determinism must survive an active policy (fresh instances —
        policies are mutable controllers, never shared across runs)."""
        first = run_serving(workload(), TierDvsPolicy(interval=0.2))
        second = run_serving(workload(), TierDvsPolicy(interval=0.2))
        assert first.records == second.records
        assert first.energy_j == second.energy_j
        assert first.policy.decisions == second.policy.decisions

    def test_global_rng_state_cannot_perturb_a_run(self):
        import random

        baseline = run_serving(workload())
        random.seed(12345)
        random.random()
        perturbed = run_serving(workload())
        assert perturbed.records == baseline.records
        assert perturbed.energy_j == baseline.energy_j

    def test_arrival_seed_changes_the_run(self):
        assert (
            run_serving(workload(arrival_seed=3)).records
            != run_serving(workload(arrival_seed=4)).records
        )

    def test_demand_seed_changes_the_run(self):
        assert (
            run_serving(workload(demand_seed=0)).records
            != run_serving(workload(demand_seed=1)).records
        )


class TestRngAudit:
    """No serving module may draw from process-global RNG state: only
    explicitly seeded ``random.Random`` instances are allowed."""

    def audited_files(self):
        package_dir = Path(repro.serving.__file__).parent
        files = sorted(package_dir.glob("*.py"))
        files.append(
            package_dir.parent / "metrics" / "serving.py"
        )
        assert len(files) >= 7
        return files

    def test_no_global_random_and_no_numpy_random(self):
        offences = []
        for path in self.audited_files():
            tree = ast.parse(path.read_text(encoding="utf-8"))
            for node in ast.walk(tree):
                if isinstance(node, ast.Attribute) and isinstance(
                    node.value, ast.Name
                ):
                    if node.value.id == "random" and node.attr != "Random":
                        offences.append(
                            f"{path.name}:{node.lineno} random.{node.attr}"
                        )
                    if (
                        node.value.id in ("np", "numpy")
                        and node.attr == "random"
                    ):
                        offences.append(
                            f"{path.name}:{node.lineno} numpy.random"
                        )
                if isinstance(node, ast.ImportFrom):
                    if node.module == "random" and any(
                        alias.name != "Random" for alias in node.names
                    ):
                        offences.append(
                            f"{path.name}:{node.lineno} from random import "
                            + ", ".join(a.name for a in node.names)
                        )
                    if node.module and node.module.startswith(
                        "numpy.random"
                    ):
                        offences.append(
                            f"{path.name}:{node.lineno} {node.module}"
                        )
        assert not offences, f"global RNG use in serving modules: {offences}"
