"""Serving sweeps: canonical task keys, cache resume, warm bit-identity,
and keyword parity with the other sweep front-ends."""

import inspect

import pytest

from repro.cache.store import RunCache
from repro.serving import sweep as serving_sweep_module
from repro.serving.arrivals import MMPPArrivals
from repro.serving.spec import ServingWorkload, TierSpec
from repro.serving.sweep import (
    SERVING_POLICIES,
    ServingTask,
    run_serving_sweep,
    serving_task_key,
)
from repro.session import Session

WORKLOAD = ServingWorkload(
    tiers=(
        TierSpec("fe", nodes=1, service_cycles=1.0e6),
        TierSpec("app", nodes=1, service_cycles=4.0e6),
    ),
    arrivals=MMPPArrivals(
        20.0, 100.0, base_dwell_s=0.8, burst_dwell_s=0.3, seed=2
    ),
    horizon_s=1.5,
    timeout_s=3.0,
)


def tasks_under_test():
    return [
        ServingTask(WORKLOAD, "static"),
        ServingTask(WORKLOAD, "tierdvs", interval=0.2),
    ]


class TestTaskKey:
    def test_key_is_stable(self):
        assert serving_task_key(
            ServingTask(WORKLOAD, "tierdvs")
        ) == serving_task_key(ServingTask(WORKLOAD, "tierdvs"))

    def test_key_separates_every_knob(self):
        seeded = ServingWorkload(
            tiers=WORKLOAD.tiers,
            arrivals=MMPPArrivals(
                20.0, 100.0, base_dwell_s=0.8, burst_dwell_s=0.3, seed=3
            ),
            horizon_s=1.5,
            timeout_s=3.0,
        )
        keys = {
            serving_task_key(t)
            for t in [
                ServingTask(WORKLOAD, "tierdvs"),
                ServingTask(WORKLOAD, "static"),
                ServingTask(WORKLOAD, "static", frequency=600e6),
                ServingTask(WORKLOAD, "cpuspeed"),
                ServingTask(WORKLOAD, "powercap", budget_watts=50.0),
                ServingTask(WORKLOAD, "powercap", budget_watts=60.0),
                ServingTask(WORKLOAD, "tierdvs", interval=0.5),
                ServingTask(WORKLOAD, "tierdvs", safety=2.0),
                ServingTask(seeded, "tierdvs"),
            ]
        }
        assert len(keys) == 9

    def test_default_calibration_is_normalised(self):
        from repro.hardware.calibration import DEFAULT_CALIBRATION

        assert serving_task_key(
            ServingTask(WORKLOAD, "static")
        ) == serving_task_key(
            ServingTask(WORKLOAD, "static", calibration=DEFAULT_CALIBRATION)
        )

    def test_invalid_tasks_rejected(self):
        with pytest.raises(ValueError, match="policy"):
            ServingTask(WORKLOAD, "ondemand")
        with pytest.raises(ValueError, match="budget_watts"):
            ServingTask(WORKLOAD, "powercap")
        with pytest.raises(ValueError, match="interval"):
            ServingTask(WORKLOAD, "tierdvs", interval=0.0)

    def test_build_policy_covers_every_recipe(self):
        for policy in SERVING_POLICIES:
            task = ServingTask(
                WORKLOAD,
                policy,
                budget_watts=(
                    50.0 if policy in ("powercap", "elastic") else None
                ),
            )
            built = task.build_policy()
            assert policy in type(built).__name__.lower().replace(
                "servingpolicy", policy
            ) or policy in built.name


class TestSweep:
    def test_outcomes_preserve_input_order(self):
        outcomes = run_serving_sweep(tasks_under_test())
        assert [o.point.label for o in outcomes] == ["static", "tierdvs"]
        for outcome in outcomes:
            assert outcome.report.n_requests > 0
            assert outcome.point.energy == outcome.report.energy_j

    def test_warm_rerun_is_bit_identical(self, tmp_path, monkeypatch):
        cache = RunCache(tmp_path / "cache")
        cold = run_serving_sweep(tasks_under_test(), use_cache=cache)

        def boom(task):
            raise AssertionError("cache miss: serving run re-simulated")

        monkeypatch.setattr(serving_sweep_module, "_execute_serving", boom)
        warm = run_serving_sweep(tasks_under_test(), use_cache=cache)
        assert [o.point for o in warm] == [o.point for o in cold]
        assert [o.report for o in warm] == [o.report for o in cold]

    def test_foreign_cache_records_fall_through_to_resimulation(
        self, tmp_path
    ):
        cache = RunCache(tmp_path / "cache")
        task = ServingTask(WORKLOAD, "static")
        (fresh,) = run_serving_sweep([task], use_cache=cache)
        key = serving_task_key(task)
        cache.put(key, fresh.point, meta={"workload": WORKLOAD.name})
        (again,) = run_serving_sweep([task], use_cache=cache)
        assert again.report == fresh.report  # re-simulated, not decoded

    def test_parallel_equals_serial(self):
        serial = run_serving_sweep(tasks_under_test())
        parallel = run_serving_sweep(tasks_under_test(), jobs=2)
        assert [o.point for o in parallel] == [o.point for o in serial]
        assert [o.report for o in parallel] == [o.report for o in serial]

    def test_signature_matches_the_other_sweeps(self):
        from repro.analysis.parallel import run_sweep
        from repro.faults.sweep import run_chaos_sweep

        serving = inspect.signature(run_serving_sweep)
        for other in (run_sweep, run_chaos_sweep):
            assert list(serving.parameters)[1:] == list(
                inspect.signature(other).parameters
            )[1:]


class TestSessionIntegration:
    def test_single_task_returns_its_outcome(self):
        session = Session()
        outcome = session.run_serving(ServingTask(WORKLOAD, "static"))
        assert outcome.point.label == "static"
        assert outcome.report.completed > 0

    def test_session_cache_is_shared_with_the_sweep(self, tmp_path):
        cache = RunCache(tmp_path / "cache")
        session = Session(use_cache=cache)
        first = session.run_serving(tasks_under_test())
        hits_before = cache.stats.hits
        second = session.run_serving(tasks_under_test())
        assert cache.stats.hits > hits_before
        assert [o.report for o in second] == [o.report for o in first]
