"""Arrival generators: seed-deterministic, bounded, correctly shaped."""

import pytest

from repro.serving.arrivals import (
    DiurnalArrivals,
    MMPPArrivals,
    PoissonArrivals,
)

HORIZON = 20.0

GENERATORS = {
    "poisson": lambda seed=0: PoissonArrivals(50.0, seed=seed),
    "mmpp": lambda seed=0: MMPPArrivals(
        20.0, 200.0, base_dwell_s=2.0, burst_dwell_s=0.5, seed=seed
    ),
    "diurnal": lambda seed=0: DiurnalArrivals(
        50.0, swing=0.8, period_s=5.0, seed=seed
    ),
}


@pytest.fixture(params=sorted(GENERATORS), ids=sorted(GENERATORS))
def make(request):
    return GENERATORS[request.param]


class TestShape:
    def test_all_within_horizon_and_sorted(self, make):
        times = make().times(HORIZON)
        assert times
        assert all(0.0 <= t < HORIZON for t in times)
        assert list(times) == sorted(times)

    def test_returns_tuple(self, make):
        assert isinstance(make().times(HORIZON), tuple)

    def test_longer_horizon_extends_the_stream(self, make):
        short = make().times(HORIZON / 2)
        long = make().times(HORIZON)
        assert len(long) > len(short)


class TestDeterminism:
    def test_same_generator_same_stream(self, make):
        gen = make()
        assert gen.times(HORIZON) == gen.times(HORIZON)

    def test_fresh_instance_same_stream(self, make):
        assert make().times(HORIZON) == make().times(HORIZON)

    def test_seed_changes_the_stream(self, make):
        assert make(seed=0).times(HORIZON) != make(seed=1).times(HORIZON)


class TestRates:
    def test_poisson_count_tracks_rate(self):
        times = PoissonArrivals(50.0, seed=42).times(HORIZON)
        # ~N(1000, ~32): a 5-sigma band, deterministic under the seed.
        assert 0.8 * 50.0 * HORIZON < len(times) < 1.2 * 50.0 * HORIZON

    def test_mmpp_mean_rate_between_base_and_burst(self):
        gen = MMPPArrivals(
            20.0, 200.0, base_dwell_s=2.0, burst_dwell_s=0.5, seed=7
        )
        rate = len(gen.times(HORIZON)) / HORIZON
        assert 20.0 < rate < 200.0

    def test_mmpp_is_burstier_than_poisson_at_equal_mean(self):
        """Second-by-second arrival counts must spread far wider under
        MMPP than under Poisson at a comparable mean rate."""

        def variance_of_counts(times):
            counts = [0] * int(HORIZON)
            for t in times:
                counts[int(t)] += 1
            mean = sum(counts) / len(counts)
            return sum((c - mean) ** 2 for c in counts) / len(counts)

        mmpp = MMPPArrivals(
            20.0, 200.0, base_dwell_s=2.0, burst_dwell_s=0.5, seed=3
        ).times(HORIZON)
        poisson = PoissonArrivals(
            len(mmpp) / HORIZON, seed=3
        ).times(HORIZON)
        assert variance_of_counts(mmpp) > 2.0 * variance_of_counts(poisson)

    def test_diurnal_rate_at_oscillates(self):
        gen = DiurnalArrivals(50.0, swing=0.8, period_s=5.0, seed=0)
        assert gen.rate_at(1.25) == pytest.approx(90.0)  # peak
        assert gen.rate_at(3.75) == pytest.approx(10.0)  # trough
        assert gen.rate_at(0.0) == pytest.approx(50.0)

    def test_diurnal_peaks_carry_more_arrivals_than_troughs(self):
        gen = DiurnalArrivals(50.0, swing=0.8, period_s=HORIZON, seed=9)
        times = gen.times(HORIZON)
        first_half = sum(1 for t in times if t < HORIZON / 2)
        assert first_half > 0.6 * len(times)  # sin > 0 on the first half


class TestValidation:
    def test_rates_must_be_positive(self):
        with pytest.raises(ValueError):
            PoissonArrivals(0.0)
        with pytest.raises(ValueError):
            MMPPArrivals(0.0, 100.0)
        with pytest.raises(ValueError):
            MMPPArrivals(10.0, -1.0)
        with pytest.raises(ValueError):
            DiurnalArrivals(-5.0)

    def test_diurnal_swing_is_a_fraction(self):
        with pytest.raises(ValueError):
            DiurnalArrivals(50.0, swing=1.5)
