"""Tests for the real cpuspeed daemon (dependency-injected, no hardware)."""

import pytest

from repro.hardware.procstat import ProcStatSample
from repro.realhw.daemon import RealCpuspeedDaemon
from repro.realhw.sysfs_cpufreq import SysfsCpuFreq


@pytest.fixture
def sysfs(tmp_path):
    cpudir = tmp_path / "cpu0" / "cpufreq"
    cpudir.mkdir(parents=True)
    (cpudir / "scaling_cur_freq").write_text("1400000")
    (cpudir / "scaling_available_frequencies").write_text(
        "1400000 1200000 1000000 800000 600000"
    )
    (cpudir / "scaling_governor").write_text("userspace")
    (cpudir / "scaling_setspeed").write_text("1400000")
    return tmp_path


class FakeCpuFreq(SysfsCpuFreq):
    """Sysfs cpufreq where setspeed writes update scaling_cur_freq too
    (the kernel does this; our fake tree needs help)."""

    def set_speed_now(self, frequency: float) -> None:
        super().set_speed_now(frequency)
        khz = self._read("scaling_setspeed")
        self._write("scaling_cur_freq", khz)


class StatFeeder:
    """Deterministic /proc/stat sample sequence."""

    def __init__(self, samples):
        self.samples = list(samples)
        self.index = 0

    def __call__(self) -> ProcStatSample:
        sample = self.samples[min(self.index, len(self.samples) - 1)]
        self.index += 1
        return sample


def make_samples(utils, window=1.0):
    """Cumulative samples whose successive windows have given utilisations."""
    samples = [ProcStatSample(0.0, 0.0)]
    busy = idle = 0.0
    for u in utils:
        busy += u * window
        idle += (1 - u) * window
        samples.append(ProcStatSample(busy, idle))
    return samples


def test_idle_machine_steps_down(sysfs):
    cf = FakeCpuFreq(cpu=0, root=str(sysfs))
    daemon = RealCpuspeedDaemon(
        cf,
        interval=0.01,
        stat_reader=StatFeeder(make_samples([0.0] * 6)),
        sleep=lambda s: None,
    )
    daemon.run(max_ticks=4)
    assert cf.current_frequency == 600e6
    assert [hz for _, hz in daemon.decisions] == [1.2e9, 1.0e9, 8e8, 6e8]


def test_busy_machine_jumps_to_max(sysfs):
    cf = FakeCpuFreq(cpu=0, root=str(sysfs))
    cf.set_speed_now(600e6)
    daemon = RealCpuspeedDaemon(
        cf,
        interval=0.01,
        stat_reader=StatFeeder(make_samples([1.0, 1.0])),
        sleep=lambda s: None,
    )
    daemon.run(max_ticks=1)
    assert cf.current_frequency == 1.4e9


def test_intermediate_load_holds(sysfs):
    cf = FakeCpuFreq(cpu=0, root=str(sysfs))
    cf.set_speed_now(1.0e9)
    daemon = RealCpuspeedDaemon(
        cf,
        interval=0.01,
        stat_reader=StatFeeder(make_samples([0.5, 0.5, 0.5])),
        sleep=lambda s: None,
    )
    daemon.run(max_ticks=3)
    assert cf.current_frequency == 1.0e9


def test_stop_ends_loop(sysfs):
    cf = FakeCpuFreq(cpu=0, root=str(sysfs))
    daemon = RealCpuspeedDaemon(
        cf,
        interval=0.01,
        stat_reader=StatFeeder(make_samples([0.0] * 100)),
        sleep=lambda s: daemon.stop(),  # stop after the first sleep
    )
    daemon.run()
    assert len(daemon.decisions) <= 1


def test_invalid_interval_rejected(sysfs):
    cf = FakeCpuFreq(cpu=0, root=str(sysfs))
    with pytest.raises(ValueError):
        RealCpuspeedDaemon(cf, interval=0.0)


def test_shared_policy_matches_simulated_daemon():
    """The decision function is literally shared; spot-check parity."""
    from repro.dvs.policy import cpuspeed_decision

    ladder = [6e8, 8e8, 1e9, 1.2e9, 1.4e9]
    assert cpuspeed_decision(0.95, 6e8, ladder) == 1.4e9
    assert cpuspeed_decision(0.10, 1.4e9, ladder) == 1.2e9
    assert cpuspeed_decision(0.50, 1.0e9, ladder) == 1.0e9
    assert cpuspeed_decision(0.0, 6e8, ladder) == 6e8  # clamped at bottom
