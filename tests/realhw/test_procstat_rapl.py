"""Tests for /proc/stat parsing and the RAPL meter (fake files)."""

import pytest

from repro.realhw.procstat import USER_HZ, parse_proc_stat, read_proc_stat
from repro.realhw.rapl import RaplError, RaplMeter

SAMPLE = """\
cpu  1000 50 300 8000 200 10 20 0 0 0
cpu0 600 30 200 4000 100 5 10 0 0 0
cpu1 400 20 100 4000 100 5 10 0 0 0
intr 12345
ctxt 67890
"""


# ---------------------------------------------------------------------------
# /proc/stat
# ---------------------------------------------------------------------------
def test_parse_aggregate_row():
    s = parse_proc_stat(SAMPLE)
    # busy: user+nice+system+irq+softirq = 1000+50+300+10+20 = 1380
    assert s.busy == pytest.approx(1380 / USER_HZ)
    # idle: idle+iowait = 8000+200
    assert s.idle == pytest.approx(8200 / USER_HZ)


def test_parse_per_cpu_row():
    s = parse_proc_stat(SAMPLE, cpu=1)
    assert s.busy == pytest.approx(535 / USER_HZ)
    assert s.idle == pytest.approx(4100 / USER_HZ)


def test_missing_row_raises():
    with pytest.raises(ValueError, match="cpu7"):
        parse_proc_stat(SAMPLE, cpu=7)


def test_utilization_between_snapshots():
    before = parse_proc_stat(SAMPLE)
    after_text = SAMPLE.replace("cpu  1000 50 300 8000", "cpu  1900 50 300 8100")
    after = parse_proc_stat(after_text)
    # +900 busy ticks, +100 idle ticks → 90% utilisation
    assert after.utilization_since(before) == pytest.approx(0.9)


def test_read_proc_stat_from_file(tmp_path):
    path = tmp_path / "stat"
    path.write_text(SAMPLE)
    s = read_proc_stat(path=str(path), cpu=0)
    assert s.busy == pytest.approx(845 / USER_HZ)


# ---------------------------------------------------------------------------
# RAPL
# ---------------------------------------------------------------------------
@pytest.fixture
def rapl_dir(tmp_path):
    d = tmp_path / "intel-rapl:0"
    d.mkdir()
    (d / "energy_uj").write_text("1000000\n")
    (d / "max_energy_range_uj").write_text("262143328850\n")
    (d / "name").write_text("package-0\n")
    return tmp_path


def test_rapl_accumulates_joules(rapl_dir):
    meter = RaplMeter(root=str(rapl_dir))
    assert meter.available
    assert meter.name == "package-0"
    meter.begin()
    (rapl_dir / "intel-rapl:0" / "energy_uj").write_text("6000000\n")
    assert meter.sample() == pytest.approx(5.0)  # 5e6 µJ = 5 J
    (rapl_dir / "intel-rapl:0" / "energy_uj").write_text("7500000\n")
    assert meter.sample() == pytest.approx(6.5)


def test_rapl_handles_counter_wrap(rapl_dir):
    meter = RaplMeter(root=str(rapl_dir))
    (rapl_dir / "intel-rapl:0" / "energy_uj").write_text("262143000000\n")
    meter.begin()
    (rapl_dir / "intel-rapl:0" / "energy_uj").write_text("500000\n")  # wrapped
    joules = meter.sample()
    expected = (262143328850 - 262143000000 + 500000) / 1e6
    assert joules == pytest.approx(expected)


def test_rapl_sample_before_begin_raises(rapl_dir):
    with pytest.raises(RaplError):
        RaplMeter(root=str(rapl_dir)).sample()


def test_rapl_missing_domain(tmp_path):
    meter = RaplMeter(root=str(tmp_path))
    assert not meter.available
    assert meter.name == "intel-rapl:0"  # falls back to the domain id
    with pytest.raises(RaplError):
        meter.begin()
