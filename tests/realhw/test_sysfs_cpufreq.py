"""Tests for sysfs CPUFreq control against a fake sysfs tree."""

import pytest

from repro.realhw.sysfs_cpufreq import CpufreqError, SysfsCpuFreq


@pytest.fixture
def sysfs(tmp_path):
    """A fake /sys/devices/system/cpu with one Pentium-M-like CPU."""
    cpudir = tmp_path / "cpu0" / "cpufreq"
    cpudir.mkdir(parents=True)
    (cpudir / "scaling_cur_freq").write_text("1400000\n")
    (cpudir / "scaling_available_frequencies").write_text(
        "1400000 1200000 1000000 800000 600000\n"
    )
    (cpudir / "scaling_governor").write_text("performance\n")
    (cpudir / "scaling_setspeed").write_text("<unsupported>\n")
    (cpudir / "cpuinfo_min_freq").write_text("600000\n")
    (cpudir / "cpuinfo_max_freq").write_text("1400000\n")
    return tmp_path


def test_reads_current_frequency(sysfs):
    cf = SysfsCpuFreq(cpu=0, root=str(sysfs))
    assert cf.current_frequency == 1.4e9


def test_available_frequencies_sorted_in_hz(sysfs):
    cf = SysfsCpuFreq(cpu=0, root=str(sysfs))
    assert cf.available_frequencies == [6e8, 8e8, 1e9, 1.2e9, 1.4e9]


def test_available_falls_back_to_bounds(sysfs):
    (sysfs / "cpu0" / "cpufreq" / "scaling_available_frequencies").unlink()
    cf = SysfsCpuFreq(cpu=0, root=str(sysfs))
    assert cf.available_frequencies == [6e8, 1.4e9]


def test_set_speed_switches_to_userspace_and_writes_khz(sysfs):
    cf = SysfsCpuFreq(cpu=0, root=str(sysfs))
    cf.set_speed_now(850e6)  # snaps to 800 MHz
    cpudir = sysfs / "cpu0" / "cpufreq"
    assert (cpudir / "scaling_governor").read_text() == "userspace"
    assert (cpudir / "scaling_setspeed").read_text() == "800000"


def test_set_speed_keeps_existing_userspace_governor(sysfs):
    cpudir = sysfs / "cpu0" / "cpufreq"
    (cpudir / "scaling_governor").write_text("userspace\n")
    cf = SysfsCpuFreq(cpu=0, root=str(sysfs))
    cf.set_speed_now(600e6)
    assert (cpudir / "scaling_setspeed").read_text() == "600000"


def test_resolve_snaps(sysfs):
    cf = SysfsCpuFreq(cpu=0, root=str(sysfs))
    assert cf.resolve(999e6) == 1e9


def test_available_flag(sysfs, tmp_path):
    assert SysfsCpuFreq(cpu=0, root=str(sysfs)).available
    assert not SysfsCpuFreq(cpu=7, root=str(sysfs)).available


def test_missing_tree_raises_cpufreq_error(tmp_path):
    cf = SysfsCpuFreq(cpu=0, root=str(tmp_path))
    with pytest.raises(CpufreqError):
        cf.current_frequency


def test_negative_cpu_rejected():
    with pytest.raises(ValueError):
        SysfsCpuFreq(cpu=-1)
