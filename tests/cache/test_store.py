"""The JSONL shard store: round-trips, corruption tolerance, the LRU cap."""

import json
import os

import pytest

from repro.cache.store import RunCache
from repro.metrics.records import EnergyDelayPoint


POINT = EnergyDelayPoint(
    label="stat@800MHz",
    energy=123.45678901234567,
    delay=9.876543210987654,
    frequency=800e6,
)
KEY_A = "aa" + "0" * 62
KEY_A2 = "aa" + "f" * 62
KEY_B = "bb" + "0" * 62
KEY_C = "cc" + "0" * 62


def test_round_trip_is_exact(tmp_path):
    cache = RunCache(tmp_path)
    cache.put(KEY_A, POINT, meta={"workload": "ft.S"})
    fresh = RunCache(tmp_path)  # force a re-load from disk
    got = fresh.get(KEY_A)
    assert got == POINT
    assert got.energy == POINT.energy  # repr-exact float round-trip
    assert fresh.get_meta(KEY_A) == {"workload": "ft.S"}


def test_point_without_frequency_round_trips(tmp_path):
    cache = RunCache(tmp_path)
    cache.put(KEY_A, EnergyDelayPoint(label="cpuspeed", energy=1.0, delay=2.0))
    assert RunCache(tmp_path).get(KEY_A).frequency is None


def test_miss_then_hit_counters(tmp_path):
    cache = RunCache(tmp_path)
    assert cache.get(KEY_A) is None
    cache.put(KEY_A, POINT)
    assert cache.get(KEY_A) == POINT
    stats = cache.stats
    assert (stats.hits, stats.misses, stats.entries) == (1, 1, 1)
    assert stats.bytes > 0
    assert stats.to_dict()["hits"] == 1


def test_no_directory_until_first_write(tmp_path):
    target = tmp_path / "never-created"
    cache = RunCache(target)
    assert cache.get(KEY_A) is None
    assert cache.stats.entries == 0
    assert not target.exists()


def test_last_writer_wins(tmp_path):
    cache = RunCache(tmp_path)
    cache.put(KEY_A, POINT)
    newer = EnergyDelayPoint(label="newer", energy=1.0, delay=2.0)
    cache.put(KEY_A, newer)
    assert cache.stats.entries == 1
    assert RunCache(tmp_path).get(KEY_A) == newer


def test_corrupt_lines_are_skipped_not_fatal(tmp_path):
    cache = RunCache(tmp_path)
    cache.put(KEY_A, POINT)
    cache.put(KEY_A2, EnergyDelayPoint(label="two", energy=2.0, delay=3.0))
    shard = tmp_path / "shards" / "aa.jsonl"
    with shard.open("a", encoding="utf-8") as fh:
        fh.write("{truncated json\n")  # hand-mangled line
        fh.write(json.dumps({"key": KEY_B, "point": {"label": "x"}}) + "\n")
    fresh = RunCache(tmp_path)
    assert fresh.get(KEY_A) == POINT
    assert fresh.get(KEY_A2).label == "two"
    assert fresh.stats.corrupt == 2


def test_unreadable_shard_is_discarded(tmp_path):
    cache = RunCache(tmp_path)
    cache.put(KEY_A, POINT)
    shard = tmp_path / "shards" / "aa.jsonl"
    shard.write_bytes(b"\xff\xfe\x00 not utf-8")
    fresh = RunCache(tmp_path)
    assert fresh.get(KEY_A) is None  # costs a re-simulation, nothing more
    assert fresh.stats.corrupt == 1
    assert not shard.exists()


def test_lru_eviction_prefers_stale_shards(tmp_path):
    probe = RunCache(tmp_path / "probe")
    probe.put(KEY_A, POINT)
    line_bytes = probe.stats.bytes

    cache = RunCache(tmp_path / "capped", max_bytes=2 * line_bytes)
    cache.put(KEY_A, POINT)
    cache.put(KEY_B, POINT)
    # Age shard "aa" so it is unambiguously the least recently used.
    os.utime(tmp_path / "capped" / "shards" / "aa.jsonl", (1, 1))
    cache.put(KEY_C, POINT)  # pushes the store over the cap

    stats = cache.stats
    assert stats.evictions == 1
    assert stats.entries == 2
    assert stats.bytes <= 2 * line_bytes
    assert cache.get(KEY_A) is None  # the stale shard was evicted
    assert cache.get(KEY_B) == POINT
    assert cache.get(KEY_C) == POINT  # the just-written shard survives


def test_clear_removes_everything(tmp_path):
    cache = RunCache(tmp_path)
    cache.put(KEY_A, POINT)
    cache.put(KEY_B, POINT)
    assert cache.clear() == 2
    assert cache.stats.entries == 0
    assert RunCache(tmp_path).get(KEY_A) is None


def test_max_bytes_must_be_positive(tmp_path):
    with pytest.raises(ValueError, match="max_bytes"):
        RunCache(tmp_path, max_bytes=0)
