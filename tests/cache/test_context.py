"""The ambient sweep context and the default cache location."""

from pathlib import Path

from repro.cache.context import active_context, default_cache_dir, sweep_context
from repro.cache.store import RunCache


def test_default_context_is_serial_and_uncached():
    ctx = active_context()
    assert ctx.cache is None
    assert ctx.n_workers == 0


def test_default_cache_dir_honours_env(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "from-env"))
    assert default_cache_dir() == tmp_path / "from-env"
    monkeypatch.delenv("REPRO_CACHE_DIR")
    assert default_cache_dir() == Path("~/.cache/repro/runs").expanduser()


def test_sweep_context_installs_and_restores(tmp_path):
    cache = RunCache(tmp_path)
    with sweep_context(cache=cache, n_workers=3):
        ctx = active_context()
        assert ctx.cache is cache
        assert ctx.n_workers == 3
        with sweep_context():  # nesting shadows, exit restores
            assert active_context().cache is None
        assert active_context().cache is cache
    assert active_context().cache is None
    assert active_context().n_workers == 0
