"""End-to-end cache behaviour: warm replay, resume, parallel identity."""

import time

from repro.analysis.parallel import SweepTask, parallel_full_sweep, run_sweep
from repro.cache.keys import task_key
from repro.cache.store import RunCache
from repro.util.units import MHZ
from repro.workloads.transpose import ParallelTranspose


FREQS = [600 * MHZ, 800 * MHZ, 1000 * MHZ, 1200 * MHZ, 1400 * MHZ]
REGIONS = ["step2", "step3"]


def make_workload():
    # The fig5 geometry (5×3 grid, 15 ranks) at a test-sized matrix.
    return ParallelTranspose(
        matrix_n=600, grid_rows=5, grid_cols=3, iterations=1
    )


def test_warm_sweep_is_bit_identical_and_order_of_magnitude_faster(tmp_path):
    """Acceptance: a repeated fig5-style sweep against a warm cache runs
    >=10x faster than cold and returns bit-identical points."""
    cold_cache = RunCache(tmp_path)
    t0 = time.perf_counter()
    cold = parallel_full_sweep(
        make_workload(), FREQS, regions=REGIONS, n_workers=0, cache=cold_cache
    )
    cold_seconds = time.perf_counter() - t0
    assert cold_cache.stats.misses == 11  # cpuspeed + 5 stat + 5 dyn
    assert cold_cache.stats.entries == 11

    warm_cache = RunCache(tmp_path)  # fresh instance: hits come from disk
    t0 = time.perf_counter()
    warm = parallel_full_sweep(
        make_workload(), FREQS, regions=REGIONS, n_workers=0, cache=warm_cache
    )
    warm_seconds = time.perf_counter() - t0

    # EnergyDelayPoint is a frozen dataclass: == is exact field equality.
    assert warm == cold
    assert warm_cache.stats.hits == 11
    assert warm_cache.stats.misses == 0
    assert cold_seconds >= 10 * warm_seconds, (
        f"warm replay not >=10x faster: cold {cold_seconds:.4f}s, "
        f"warm {warm_seconds:.4f}s"
    )


def test_resume_simulates_only_the_gap(tmp_path):
    tasks = [
        SweepTask(make_workload(), "stat", frequency=f) for f in FREQS[:3]
    ]
    full = run_sweep(tasks, use_cache=RunCache(tmp_path / "full"))

    # Reconstruct an interrupted sweep: all but the last point persisted.
    partial_dir = tmp_path / "partial"
    partial = RunCache(partial_dir)
    for task, point in zip(tasks[:-1], full[:-1]):
        partial.put(task_key(task), point)

    resumed_cache = RunCache(partial_dir)
    resumed = run_sweep(tasks, use_cache=resumed_cache)
    assert resumed == full
    assert resumed_cache.stats.hits == 2
    assert resumed_cache.stats.misses == 1  # only the gap was simulated


def test_parallel_cached_sweep_matches_serial(tmp_path):
    tasks = [
        SweepTask(make_workload(), "stat", frequency=f) for f in FREQS[:3]
    ]
    serial = run_sweep(tasks)

    cache = RunCache(tmp_path)
    parallel = run_sweep(tasks, jobs=2, use_cache=cache)
    assert parallel == serial
    assert cache.stats.entries == 3
    # Every point the parallel run persisted replays exactly.
    assert [cache.get(task_key(t)) for t in tasks] == serial


def test_cache_stores_workload_metadata(tmp_path):
    cache = RunCache(tmp_path)
    task = SweepTask(make_workload(), "cpuspeed")
    run_sweep([task], use_cache=cache)
    meta = cache.get_meta(task_key(task))
    assert meta == {"workload": make_workload().name}
