"""Multi-process cache sharing: racing appends, staleness pickup, and
LRU eviction that never loses a completed point to a torn write.

Writers run in real child processes (fork) against one ``cache_dir`` —
the fleet scenario: several sweeps, one store.
"""

import json
import multiprocessing
import os

from repro.cache.store import RunCache
from repro.metrics.records import EnergyDelayPoint

CTX = multiprocessing.get_context("fork")


def _key(worker: int, i: int) -> str:
    # Spread keys over a handful of shards so writers collide on files.
    prefix = ["aa", "ab", "ac", "ad"][i % 4]
    return f"{prefix}{worker:02d}{i:06d}" + "0" * 54


def _point(worker: int, i: int) -> EnergyDelayPoint:
    return EnergyDelayPoint(
        label=f"w{worker}:{i}", energy=float(i) + 0.125, delay=1.0 + worker
    )


def _writer(cache_dir, worker, count, barrier):
    cache = RunCache(cache_dir)
    barrier.wait()  # maximise overlap between the two writers
    for i in range(count):
        cache.put(_key(worker, i), _point(worker, i))


class TestRacingAppends:
    def test_two_processes_lose_no_points(self, tmp_path):
        count = 150
        barrier = CTX.Barrier(2)
        writers = [
            CTX.Process(
                target=_writer, args=(tmp_path, worker, count, barrier)
            )
            for worker in (0, 1)
        ]
        for p in writers:
            p.start()
        for p in writers:
            p.join(timeout=120)
            assert p.exitcode == 0

        fresh = RunCache(tmp_path)
        for worker in (0, 1):
            for i in range(count):
                assert fresh.get(_key(worker, i)) == _point(worker, i)
        stats = fresh.stats
        assert stats.entries == 2 * count
        assert stats.corrupt == 0

    def test_shard_files_contain_only_whole_lines(self, tmp_path):
        barrier = CTX.Barrier(2)
        writers = [
            CTX.Process(target=_writer, args=(tmp_path, w, 80, barrier))
            for w in (0, 1)
        ]
        for p in writers:
            p.start()
        for p in writers:
            p.join(timeout=120)
        for shard in (tmp_path / "shards").glob("*.jsonl"):
            text = shard.read_text(encoding="utf-8")
            assert text.endswith("\n")
            for line in text.splitlines():
                json.loads(line)  # every line parses: no interleaving


class TestStalenessPickup:
    def test_reader_sees_foreign_appends_without_reopening(self, tmp_path):
        reader = RunCache(tmp_path)
        assert reader.get(_key(0, 0)) is None  # loads (empty) shard image

        writer = RunCache(tmp_path)  # a second process, in spirit
        writer.put(_key(0, 0), _point(0, 0))

        # Same reader instance: the size tag flags the grown shard.
        assert reader.get(_key(0, 0)) == _point(0, 0)

    def test_reader_sees_foreign_eviction(self, tmp_path):
        a = RunCache(tmp_path)
        a.put(_key(0, 0), _point(0, 0))
        assert a.get(_key(0, 0)) == _point(0, 0)

        b = RunCache(tmp_path)
        b.clear()

        assert a.get(_key(0, 0)) is None

    def test_instance_counters_stay_per_process(self, tmp_path):
        a = RunCache(tmp_path)
        b = RunCache(tmp_path)
        a.put(_key(0, 0), _point(0, 0))
        assert b.get(_key(0, 0)) == _point(0, 0)
        assert (b.stats.hits, b.stats.misses) == (1, 0)
        assert (a.stats.hits, a.stats.misses) == (0, 0)
        # Disk-level numbers agree between instances.
        assert a.stats.entries == b.stats.entries == 1


def _evicting_writer(cache_dir, worker, count, max_bytes, barrier):
    cache = RunCache(cache_dir, max_bytes=max_bytes)
    barrier.wait()
    for i in range(count):
        cache.put(_key(worker, i), _point(worker, i))


class TestConcurrentEviction:
    def test_racing_appends_and_eviction_never_corrupt(self, tmp_path):
        """Two capped writers race appends *and* evictions; whatever
        survives must be whole records — an evicted point costs a
        re-simulation, never a poisoned store."""
        count = 120
        probe = RunCache(tmp_path / "probe")
        probe.put(_key(0, 0), _point(0, 0))
        line_bytes = probe.stats.bytes
        cap = 30 * line_bytes

        barrier = CTX.Barrier(2)
        writers = [
            CTX.Process(
                target=_evicting_writer,
                args=(tmp_path / "shared", w, count, cap, barrier),
            )
            for w in (0, 1)
        ]
        for p in writers:
            p.start()
        for p in writers:
            p.join(timeout=120)
            assert p.exitcode == 0

        fresh = RunCache(tmp_path / "shared")
        survivors = 0
        for worker in (0, 1):
            for i in range(count):
                got = fresh.get(_key(worker, i))
                if got is not None:
                    assert got == _point(worker, i)  # whole, exact
                    survivors += 1
        stats = fresh.stats
        assert stats.corrupt == 0
        assert stats.entries == survivors

    def test_eviction_skips_shard_touched_since_scan(self, tmp_path):
        """A shard that grew between the LRU scan and the eviction lock
        is recently used, not LRU — it must survive the round."""
        from contextlib import contextmanager

        probe = RunCache(tmp_path / "probe")
        probe.put(_key(0, 0), _point(0, 0))
        line_bytes = probe.stats.bytes

        cache = RunCache(tmp_path / "capped", max_bytes=2 * line_bytes)
        key_aa = "aa" + "0" * 62
        key_ab = "ab" + "0" * 62
        key_ac = "ac" + "0" * 62
        cache.put(key_aa, _point(0, 0))
        cache.put(key_ab, _point(0, 1))
        os.utime(tmp_path / "capped" / "shards" / "aa.jsonl", (1, 1))

        # Interpose on the eviction's non-blocking lock: just before the
        # "aa" victim is locked, a foreign process appends to it.
        foreign = RunCache(tmp_path / "capped")
        real_lock = cache._shard_lock
        fired = []

        @contextmanager
        def racing_lock(prefix, blocking=True):
            if not blocking and prefix == "aa" and not fired:
                fired.append(True)
                foreign.put("aa" + "f" * 62, _point(9, 9))
            with real_lock(prefix, blocking=blocking) as held:
                yield held

        cache._shard_lock = racing_lock
        cache.put(key_ac, _point(0, 2))  # over cap: triggers eviction
        cache._shard_lock = real_lock

        assert fired  # the race actually happened
        # The aa shard changed since the scan, so it survived the round
        # (with the foreign record intact); the true LRU went instead.
        assert cache.get(key_aa) == _point(0, 0)
        assert cache.get("aa" + "f" * 62) == _point(9, 9)
        assert cache.get(key_ac) == _point(0, 2)
        assert cache.get(key_ab) is None  # the next-LRU shard was evicted


def _sweep_worker(cache_dir, frequencies, queue):
    from repro.analysis.parallel import SweepTask, run_sweep
    from repro.workloads.micro import L2BoundMicro

    tasks = [
        SweepTask(L2BoundMicro(passes=3), "stat", frequency=f)
        for f in frequencies
    ]
    points = run_sweep(tasks, use_cache=True, cache_dir=cache_dir)
    queue.put([(p.label, p.energy, p.delay) for p in points])


class TestConcurrentSweeps:
    def test_two_sweeps_sharing_one_cache_dir_lose_nothing(self, tmp_path):
        """The acceptance scenario: two sweep processes, one cache
        directory, overlapping task sets — every completed point lands,
        and a warm re-run is bit-identical to both."""
        from repro.util.units import MHZ

        freqs_a = [600 * MHZ, 800 * MHZ, 1000 * MHZ]
        freqs_b = [800 * MHZ, 1000 * MHZ, 1400 * MHZ]  # overlap on 2
        queue = CTX.Queue()
        procs = [
            CTX.Process(
                target=_sweep_worker, args=(tmp_path, freqs, queue)
            )
            for freqs in (freqs_a, freqs_b)
        ]
        for p in procs:
            p.start()
        results = [queue.get(timeout=120) for _ in procs]
        for p in procs:
            p.join(timeout=120)
            assert p.exitcode == 0

        fresh = RunCache(tmp_path)
        assert fresh.stats.entries == 4  # union of the two frequency sets
        assert fresh.stats.corrupt == 0

        # A warm re-run against the shared store is bit-identical.
        from repro.analysis.parallel import SweepTask, run_sweep
        from repro.workloads.micro import L2BoundMicro

        for freqs, expected in zip((freqs_a, freqs_b), results):
            tasks = [
                SweepTask(L2BoundMicro(passes=3), "stat", frequency=f)
                for f in freqs
            ]
            warm = run_sweep(tasks, use_cache=fresh)
            assert [(p.label, p.energy, p.delay) for p in warm] == expected
        stats = fresh.stats
        assert stats.hits == len(freqs_a) + len(freqs_b)
        assert stats.misses == 0


class TestLockHygiene:
    def test_lock_files_survive_clear(self, tmp_path):
        cache = RunCache(tmp_path)
        cache.put(_key(0, 0), _point(0, 0))
        assert any((tmp_path / "locks").glob("*.lock"))
        cache.clear()
        assert any((tmp_path / "locks").glob("*.lock"))
        assert cache.stats.entries == 0
