"""Tests for the repro-cache CLI (stats / clear)."""

import json

import pytest

from repro.cache.cli import build_parser, main
from repro.cache.keys import simulator_salt
from repro.cache.store import RunCache
from repro.metrics.records import EnergyDelayPoint


def put_one(cache_dir):
    RunCache(cache_dir).put(
        "ab" + "0" * 62, EnergyDelayPoint(label="x", energy=1.5, delay=2.5)
    )


def test_parser_program_name():
    assert build_parser().prog == "repro-cache"


def test_command_is_required():
    with pytest.raises(SystemExit):
        main(["--cache-dir", "/tmp/anywhere"])


def test_stats_text(tmp_path, capsys):
    put_one(tmp_path)
    assert main(["--cache-dir", str(tmp_path), "stats"]) == 0
    out = capsys.readouterr().out
    assert str(tmp_path) in out
    assert simulator_salt() in out
    assert "entries:   1" in out


def test_stats_json(tmp_path, capsys):
    put_one(tmp_path)
    assert main(["--cache-dir", str(tmp_path), "stats", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["entries"] == 1
    assert payload["bytes"] > 0
    assert payload["salt"] == simulator_salt()
    assert payload["cache_dir"] == str(tmp_path)


def test_stats_on_missing_dir_creates_nothing(tmp_path, capsys):
    target = tmp_path / "nope"
    assert main(["--cache-dir", str(target), "stats"]) == 0
    assert "entries:   0" in capsys.readouterr().out
    assert not target.exists()


def test_clear(tmp_path, capsys):
    put_one(tmp_path)
    assert main(["--cache-dir", str(tmp_path), "clear"]) == 0
    assert "removed 1" in capsys.readouterr().out
    assert RunCache(tmp_path).stats.entries == 0
