"""Canonical key derivation: determinism, normalisation, salting."""

import pytest

from repro import __version__
from repro.analysis.parallel import SweepTask
from repro.cache.keys import (
    CACHE_FORMAT,
    canonical_encode,
    canonical_json,
    simulator_salt,
    task_key,
)
from repro.hardware.activity import CpuActivity
from repro.hardware.calibration import DEFAULT_CALIBRATION
from repro.util.units import MHZ
from repro.workloads.nas_ft import NasFT


def make_task(**kwargs):
    kwargs.setdefault("frequency", 800 * MHZ)
    return SweepTask(NasFT("S", n_ranks=4, iterations=2), "stat", **kwargs)


def test_key_is_deterministic_across_calls():
    assert task_key(make_task()) == task_key(make_task())


def test_key_is_a_sha256_hex_digest():
    key = task_key(make_task())
    assert len(key) == 64
    assert set(key) <= set("0123456789abcdef")


def test_none_calibration_normalises_to_default():
    # SweepTask(wl, "stat", f) and the same task with an explicit default
    # calibration describe the same run (the runner substitutes the
    # default at execution time), so they must share a key.
    explicit = make_task(calibration=DEFAULT_CALIBRATION)
    assert task_key(make_task()) == task_key(explicit)


def test_salt_folds_version_and_format():
    assert simulator_salt() == f"repro/{__version__}/format{CACHE_FORMAT}"
    assert task_key(make_task()) != task_key(make_task(), salt="other-sim/2.0")


def test_distinct_specs_get_distinct_keys():
    base = task_key(make_task())
    assert task_key(make_task(frequency=600 * MHZ)) != base
    dyn = SweepTask(
        NasFT("S", n_ranks=4, iterations=2),
        "dyn",
        frequency=800 * MHZ,
        regions=("fft",),
    )
    assert task_key(dyn) != base


def test_mapping_order_is_canonical():
    assert canonical_json({"a": 1, "b": 2}) == canonical_json({"b": 2, "a": 1})


def test_tuple_and_list_encode_equally():
    assert canonical_encode((1, 2.5, "x")) == canonical_encode([1, 2.5, "x"])


def test_set_encoding_is_order_free():
    assert canonical_encode({3, 1, 2}) == canonical_encode({2, 3, 1})


def test_enum_encodes_by_qualified_name():
    encoded = canonical_encode(CpuActivity.ACTIVE)
    assert encoded["name"] == "ACTIVE"
    assert encoded["__enum__"].endswith("CpuActivity")


def test_calibration_encodes_as_dataclass():
    encoded = canonical_encode(DEFAULT_CALIBRATION)
    assert encoded["__dataclass__"].endswith("Calibration")
    assert "fields" in encoded


def test_workload_encodes_as_object_state():
    encoded = canonical_encode(NasFT("S", n_ranks=4, iterations=2))
    assert encoded["__object__"].endswith("NasFT")
    assert "attrs" in encoded


def test_numpy_values_encode():
    np = pytest.importorskip("numpy")
    assert canonical_encode(np.float64(1.5)) == 1.5
    encoded = canonical_encode(np.arange(3))
    assert encoded["data"] == [0, 1, 2]
    assert encoded["shape"] == [3]


def test_unencodable_object_raises():
    # object() has no __dict__; hashing it silently would under-key.
    with pytest.raises(TypeError, match="canonically encode"):
        canonical_encode(object())
