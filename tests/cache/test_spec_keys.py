"""ClusterSpec cache keys: order-sensitive across groups, stable across
construction spelling, and additive to the legacy task-key payload."""

from types import SimpleNamespace

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.parallel import SweepTask
from repro.cache.keys import canonical_json, task_key
from repro.hardware.scaling import CORE_IO, CORE_O3, tech_node
from repro.hardware.spec import ClusterSpec, NodeSpec
from repro.util.units import MHZ
from repro.workloads.nas_ft import NasFT

TECHS = [tech_node(45, "itrs"), tech_node(22, "itrs"), tech_node(8, "cons")]
CORES = [CORE_O3, CORE_IO]


def make_task(**kwargs):
    kwargs.setdefault("frequency", 800 * MHZ)
    return SweepTask(NasFT("S", n_ranks=4, iterations=2), "stat", **kwargs)


class TestSpecKeyStability:
    @settings(max_examples=25, deadline=None)
    @given(
        count=st.integers(min_value=1, max_value=1024),
        tech=st.sampled_from(TECHS),
        core=st.sampled_from(CORES),
    )
    def test_key_ignores_kwarg_order_and_sequence_spelling(
        self, count, tech, core
    ):
        a = ClusterSpec(
            groups=(NodeSpec(count=count, tech=tech, core=core),)
        )
        b = ClusterSpec(
            groups=[NodeSpec(core=core, tech=tech, count=count)]
        )
        assert a.cache_key() == b.cache_key()

    def test_homogeneous_classmethod_keys_like_the_literal_spelling(self):
        assert (
            ClusterSpec.homogeneous(8, core=CORE_IO).cache_key()
            == ClusterSpec(groups=(NodeSpec(count=8, core=CORE_IO),)).cache_key()
        )

    def test_key_is_the_canonical_json(self):
        spec = ClusterSpec.homogeneous(4)
        assert spec.cache_key() == canonical_json(spec)

    @settings(max_examples=25, deadline=None)
    @given(
        tech_a=st.sampled_from(TECHS),
        tech_b=st.sampled_from(TECHS),
        count=st.integers(min_value=1, max_value=64),
    )
    def test_group_order_is_part_of_the_key(self, tech_a, tech_b, count):
        """Swapping two distinct groups moves ranks onto different
        silicon — that must miss the cache."""
        first = NodeSpec(count=count, tech=tech_a)
        second = NodeSpec(count=count, tech=tech_b, core=CORE_IO)
        forward = ClusterSpec(groups=(first, second))
        backward = ClusterSpec(groups=(second, first))
        assert forward.cache_key() != backward.cache_key()

    def test_every_field_reaches_the_key(self):
        base = ClusterSpec.homogeneous(4)
        assert base.cache_key() != ClusterSpec.homogeneous(5).cache_key()
        assert (
            base.cache_key()
            != ClusterSpec.homogeneous(4, tech=tech_node(22, "itrs")).cache_key()
        )
        assert (
            base.cache_key()
            != ClusterSpec.homogeneous(4, core=CORE_IO).cache_key()
        )


class TestTaskKeyCompat:
    def test_specless_task_keys_are_unchanged(self):
        """A task with ``spec=None`` must hash exactly like a pre-spec
        task object that has no ``spec`` attribute at all — every cache
        entry written before the spec layer stays reachable."""
        task = make_task()
        pre_spec = SimpleNamespace(
            workload=task.workload,
            strategy_kind=task.strategy_kind,
            frequency=task.frequency,
            regions=task.regions,
            calibration=task.calibration,
        )
        assert not hasattr(pre_spec, "spec")
        assert task_key(task) == task_key(pre_spec)

    def test_spec_changes_the_key(self):
        assert task_key(make_task()) != task_key(
            make_task(spec=ClusterSpec.homogeneous(4))
        )

    def test_equal_specs_share_a_key(self):
        assert task_key(make_task(spec=ClusterSpec.homogeneous(4))) == task_key(
            make_task(spec=ClusterSpec.homogeneous(4))
        )

    def test_different_generations_get_different_keys(self):
        itrs = make_task(
            spec=ClusterSpec.homogeneous(4, tech=tech_node(22, "itrs"))
        )
        cons = make_task(
            spec=ClusterSpec.homogeneous(4, tech=tech_node(22, "cons"))
        )
        assert task_key(itrs) != task_key(cons)

    def test_undersized_spec_rejected_at_task_construction(self):
        with pytest.raises(ValueError, match="workload needs"):
            make_task(spec=ClusterSpec.homogeneous(2))
