"""Cross-layer integration invariants.

These tests exercise the whole stack (workload → simmpi → hardware →
measurement → metrics) and pin down properties any correct composition
must satisfy regardless of calibration values.
"""

import pytest

from repro.analysis.runner import run_measured, static_crescendo
from repro.dvs.strategy import DynamicStrategy, StaticStrategy
from repro.hardware.calibration import DEFAULT_CALIBRATION
from repro.hardware.cluster import Cluster
from repro.hardware.spec import ClusterSpec
from repro.measurement.powerpack import PowerPackSession
from repro.simmpi import run_spmd
from repro.util.units import MHZ
from repro.workloads.nas_ft import NasFT
from repro.workloads.transpose import ParallelTranspose


def test_runs_are_bit_identical():
    """No RNG, no wall clock: two identical runs agree exactly."""
    results = []
    for _ in range(2):
        workload = NasFT("S", n_ranks=4, iterations=3)
        run = run_measured(workload, StaticStrategy(1000 * MHZ))
        results.append((run.point.energy, run.point.delay))
    assert results[0] == results[1]


def test_cluster_energy_is_sum_of_node_energies():
    workload = NasFT("S", n_ranks=4, iterations=2)
    run = run_measured(workload, StaticStrategy(800 * MHZ))
    total = run.cluster.total_energy(run.spmd.start, run.spmd.end)
    per_node = sum(
        n.timeline.energy(run.spmd.start, run.spmd.end) for n in run.cluster.nodes
    )
    assert total == pytest.approx(per_node, rel=1e-12)


def test_energy_additivity_across_time_split():
    workload = NasFT("S", n_ranks=4, iterations=2)
    run = run_measured(workload, StaticStrategy(800 * MHZ))
    t0, t1 = run.spmd.start, run.spmd.end
    mid = (t0 + t1) / 2
    total = run.cluster.total_energy(t0, t1)
    parts = run.cluster.total_energy(t0, mid) + run.cluster.total_energy(mid, t1)
    assert total == pytest.approx(parts, rel=1e-12)


def test_power_always_within_physical_bounds():
    """Node power stays within [base+idle_floor, base+cpu_max+nic]."""
    workload = NasFT("S", n_ranks=4, iterations=2)
    run = run_measured(workload, StaticStrategy(1400 * MHZ))
    cal = DEFAULT_CALIBRATION
    lo = cal.base_power  # idle floor is positive, base is a lower bound
    hi = cal.base_power + cal.cpu_max_power + cal.nic_active_power + 1e-9
    for node in run.cluster.nodes:
        for _, watts in node.timeline.segments():
            assert lo <= watts <= hi


def test_procstat_time_equals_wall_time():
    workload = NasFT("S", n_ranks=4, iterations=2)
    run = run_measured(workload, StaticStrategy(1000 * MHZ))
    for node in run.cluster.nodes:
        stats = node.procstat.snapshot()
        assert stats.total == pytest.approx(run.spmd.duration, rel=1e-9)


def test_delay_monotone_nonincreasing_in_frequency():
    """More clock never hurts time-to-solution for these workloads."""
    workload = NasFT("S", n_ranks=4, iterations=2)
    runs = static_crescendo(
        workload, [600 * MHZ, 800 * MHZ, 1000 * MHZ, 1200 * MHZ, 1400 * MHZ]
    )
    delays = [r.point.delay for r in runs]
    assert delays == sorted(delays, reverse=True)


def test_dynamic_strategy_never_uses_illegal_frequencies():
    workload = NasFT("S", n_ranks=4, iterations=2)
    strategy = DynamicStrategy(1200 * MHZ, regions=["fft"])
    run = run_measured(workload, strategy)
    legal = set(run.cluster.table.frequencies)
    for node in run.cluster.nodes:
        assert node.cpu.frequency in legal


def test_measurement_session_wraps_measured_run_consistently():
    """PowerPack instruments agree with the analysis layer's exact energy
    within their stated error bounds, on a full application run."""
    workload = ParallelTranspose(matrix_n=12_000, grid_rows=5, grid_cols=3,
                                 iterations=2)
    cluster = Cluster.from_spec(ClusterSpec.homogeneous(workload.n_ranks))
    session = PowerPackSession(cluster)
    session.begin()
    result = run_spmd(cluster, workload.bind_plain())
    report = session.finish()
    exact = cluster.total_energy(result.start, result.end)
    assert report.true_energy == pytest.approx(exact, rel=1e-9)
    assert report.battery_error < 0.06
    assert report.baytech_error < 0.06


def test_verify_and_synthetic_modes_have_same_communication_pattern():
    """The two FT modes share one code path: same message count and
    (up to payload sizing) the same bytes on the wire."""
    def run_mode(verify):
        workload = NasFT("S", n_ranks=4, verify=verify, iterations=2)
        cluster = Cluster.from_spec(ClusterSpec.homogeneous(4))
        world_bytes = []
        result = run_spmd(cluster, workload.bind_plain())
        return cluster.fabric.bytes_transferred

    synthetic = run_mode(False)
    verified = run_mode(True)
    # Checksum payloads differ (16-byte synthetic vs pickled complex),
    # but the dominant all-to-all volume is identical.
    assert abs(synthetic - verified) / synthetic < 0.01


def test_higher_frequency_never_saves_energy_on_slack_free_work():
    """With no slack, the fastest point minimises delay but not energy;
    with full slack, the slowest point minimises energy. Sanity-check
    the two extremes through the whole stack."""
    from repro.workloads.micro import RegisterMicro, MemoryBoundMicro

    reg_runs = static_crescendo(
        RegisterMicro(total_ops=10**9, chunks=4), [600 * MHZ, 1400 * MHZ]
    )
    mem_runs = static_crescendo(MemoryBoundMicro(passes=10), [600 * MHZ, 1400 * MHZ])
    # Register loop: little/no saving at 600.
    assert reg_runs[0].point.energy > 0.9 * reg_runs[1].point.energy
    # Memory walk: big saving at 600.
    assert mem_runs[0].point.energy < 0.7 * mem_runs[1].point.energy
