"""Failure-injection tests: the stack must fail loudly and cleanly.

A simulator that silently produces numbers after an internal fault is
worse than one that crashes; these tests pin down the failure behaviour
of each layer under injected faults.
"""

import pytest

from repro.hardware.cluster import Cluster
from repro.hardware.spec import ClusterSpec
from repro.measurement.acpi import SmartBattery
from repro.sim import Engine, SimulationError
from repro.simmpi import run_spmd
from repro.util.units import MIB
from repro.workloads.nas_ft import NasFT


def test_rank_crash_mid_collective_propagates():
    """A rank dying inside an all-to-all must surface, not hang."""
    cluster = Cluster.from_spec(ClusterSpec.homogeneous(4))

    def program(comm):
        if comm.rank == 2:
            yield comm.engine.timeout(0.01)
            raise RuntimeError("injected rank failure")
        yield from comm.alltoall(nbytes_each=1 * MIB)

    with pytest.raises(RuntimeError, match="injected rank failure"):
        run_spmd(cluster, program)


def test_deadlocked_job_is_detected_not_silent():
    """Two ranks both receiving first (no sends) deadlock; the launcher
    must raise rather than return bogus results."""
    cluster = Cluster.from_spec(ClusterSpec.homogeneous(2))

    def program(comm):
        yield from comm.recv(source=1 - comm.rank, tag=7)

    with pytest.raises(SimulationError, match="never triggering"):
        run_spmd(cluster, program)


def test_mismatched_collective_participation_deadlocks_loudly():
    cluster = Cluster.from_spec(ClusterSpec.homogeneous(3))

    def program(comm):
        if comm.rank != 2:  # rank 2 skips the barrier
            yield from comm.barrier()
        else:
            yield comm.engine.timeout(0.001)

    with pytest.raises(SimulationError, match="never triggering"):
        run_spmd(cluster, program)


def test_workload_exception_does_not_corrupt_later_runs():
    """After a failed run on one cluster, a fresh cluster behaves
    normally (no leaked global state)."""
    cluster = Cluster.from_spec(ClusterSpec.homogeneous(2))

    def bad(comm):
        yield comm.engine.timeout(0.01)
        raise ValueError("boom")

    with pytest.raises(ValueError):
        run_spmd(cluster, bad)

    fresh = Cluster.from_spec(ClusterSpec.homogeneous(2))
    workload = NasFT("S", n_ranks=2, iterations=1)
    result = run_spmd(fresh, workload.bind_plain())
    assert result.duration > 0


def test_battery_exhaustion_mid_run_raises():
    cluster = Cluster.from_spec(ClusterSpec.homogeneous(1))
    battery = SmartBattery(cluster.nodes[0], full_capacity_mwh=3, refresh_interval=1.0)
    battery.start()

    def burn(comm):
        yield from comm.cpu.run_cycles(1.4e9 * 60)

    workload_gen = burn
    with pytest.raises(RuntimeError, match="ran out of charge"):
        run_spmd(cluster, workload_gen)


def test_send_to_nonexistent_rank_fails_fast():
    cluster = Cluster.from_spec(ClusterSpec.homogeneous(2))

    def program(comm):
        yield from comm.send(None, dest=7, nbytes=0)

    with pytest.raises(ValueError, match="out of range"):
        run_spmd(cluster, program)


def test_run_until_never_firing_event_raises():
    eng = Engine()
    never = eng.event()
    eng.timeout(1.0)
    with pytest.raises(SimulationError, match="never triggering"):
        eng.run(until=never)


def test_interrupted_compute_phase_is_catchable_and_resumable():
    """A workload can survive an interrupt (e.g. a checkpoint signal) and
    finish the remaining work correctly."""
    from repro.sim import Interrupt

    cluster = Cluster.from_spec(ClusterSpec.homogeneous(1))
    eng = cluster.engine
    cpu = cluster.nodes[0].cpu
    log = []

    def worker():
        remaining = 1.4e9  # 1 s at full speed
        while remaining > 0:
            start = eng.now
            try:
                yield from cpu.run_cycles(remaining)
                remaining = 0
            except Interrupt:
                elapsed = eng.now - start
                remaining -= elapsed * cpu.frequency
                log.append(eng.now)
        return eng.now

    def interrupter(target):
        yield eng.timeout(0.3)
        target.interrupt("checkpoint")

    p = eng.process(worker())
    eng.process(interrupter(p))
    finish = eng.run(until=p)
    assert log == [pytest.approx(0.3)]
    assert finish == pytest.approx(1.0)
