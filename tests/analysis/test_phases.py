"""Tests for per-region energy attribution."""

import pytest

from repro.analysis.phases import TrackedStrategy, phase_breakdown
from repro.analysis.runner import run_measured
from repro.dvs.strategy import DynamicStrategy, StaticStrategy
from repro.util.units import MHZ
from repro.workloads.nas_ft import NasFT


@pytest.fixture
def tracked_run():
    workload = NasFT("S", n_ranks=4, iterations=3)
    strategy = TrackedStrategy(StaticStrategy(1400 * MHZ))
    run = run_measured(workload, strategy)
    return workload, strategy, run


def test_intervals_recorded_per_rank_per_iteration(tracked_run):
    workload, strategy, run = tracked_run
    intervals = strategy.intervals()
    fft = [iv for iv in intervals if iv.name == "fft"]
    assert len(fft) == 4 * 3  # ranks × iterations
    assert {iv.rank for iv in fft} == {0, 1, 2, 3}
    assert all(iv.end > iv.start for iv in fft)


def test_fft_region_dominates_ft(tracked_run):
    """The paper's observation: most time and energy is inside fft()."""
    workload, strategy, run = tracked_run
    phases = phase_breakdown(run.cluster, strategy.intervals(), run.spmd)
    assert set(phases) == {"fft", "(other)"}
    assert phases["fft"].energy > phases["(other)"].energy
    assert phases["fft"].time > phases["(other)"].time


def test_phase_energies_sum_to_total(tracked_run):
    workload, strategy, run = tracked_run
    phases = phase_breakdown(run.cluster, strategy.intervals(), run.spmd)
    total = run.cluster.total_energy(run.spmd.start, run.spmd.end)
    assert sum(p.energy for p in phases.values()) == pytest.approx(total, rel=1e-9)


def test_tracking_composes_with_dynamic_strategy():
    """Tracking a dynamic run still transitions frequencies correctly."""
    workload = NasFT("S", n_ranks=4, iterations=2)
    strategy = TrackedStrategy(DynamicStrategy(1400 * MHZ, regions=["fft"]))
    run = run_measured(workload, strategy)
    phases = phase_breakdown(run.cluster, strategy.intervals(), run.spmd)
    assert phases["fft"].occurrences == 8
    # Compare with an untracked dynamic run: identical physics.
    plain = run_measured(
        NasFT("S", n_ranks=4, iterations=2),
        DynamicStrategy(1400 * MHZ, regions=["fft"]),
    )
    assert run.point.energy == pytest.approx(plain.point.energy, rel=1e-9)
    assert run.point.delay == pytest.approx(plain.point.delay, rel=1e-9)


def test_breakdown_without_spmd_has_no_other_row(tracked_run):
    workload, strategy, run = tracked_run
    phases = phase_breakdown(run.cluster, strategy.intervals())
    assert "(other)" not in phases
