"""Tests for text reporting and serializable experiment records."""

import pytest

from repro.analysis.records import Comparison, ExperimentResult
from repro.analysis.report import (
    ascii_series_chart,
    format_best_points,
    format_crescendo,
    format_table,
)
from repro.metrics.records import EnergyDelayPoint
from repro.metrics.selection import select_paper_rows
from repro.util.units import MHZ


def sample_points():
    return [
        EnergyDelayPoint("stat@600MHz", 60.0, 11.0, frequency=600 * MHZ),
        EnergyDelayPoint("stat@1400MHz", 100.0, 10.0, frequency=1400 * MHZ),
    ]


def test_format_table_alignment():
    text = format_table(["a", "bbbb"], [["1", "2"], ["333", "4"]], title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "a" in lines[1] and "bbbb" in lines[1]
    assert len({len(l) for l in lines[2:]}) <= 2  # consistent widths


def test_format_crescendo_normalizes_to_fastest_static():
    text = format_crescendo({"stat": sample_points()})
    assert "1.000" in text  # the fastest point normalized to itself
    assert "0.600" in text  # 60/100
    assert "1.100" in text  # 11/10


def test_format_crescendo_raw_mode():
    text = format_crescendo({"stat": sample_points()}, normalize=False)
    assert "60" in text and "100" in text


def test_format_best_points_contains_settings():
    rows = select_paper_rows(sample_points())
    text = format_best_points(rows)
    for setting in ("HPC", "energy", "performance"):
        assert setting in text


def test_ascii_chart_renders_bars():
    text = ascii_series_chart(
        {"stat": [1.0, 0.5]}, labels=["1400", "600"], width=10, title="E"
    )
    assert "##########" in text
    assert "#####" in text


def test_ascii_chart_empty_series():
    assert ascii_series_chart({}, labels=[], title="t") == "t"


def test_experiment_result_json_round_trip():
    result = ExperimentResult("figX", "a title")
    result.add_series("stat", sample_points())
    result.compare("e600", 0.655, 0.63)
    result.compare("unreported", None, 1.23)
    result.notes.append("a note")

    loaded = ExperimentResult.from_json(result.to_json())
    assert loaded.experiment_id == "figX"
    assert loaded.series["stat"].points[0].energy == 60.0
    assert loaded.comparisons[0].paper == 0.655
    assert loaded.comparisons[1].paper is None
    assert loaded.notes == ["a note"]


def test_comparison_difference():
    assert Comparison("x", 1.0, 1.1).abs_difference == pytest.approx(0.1)
    assert Comparison("x", None, 1.1).abs_difference is None


def test_render_includes_tables_and_comparisons():
    result = ExperimentResult("figY", "title")
    result.tables["t"] = "TABLE CONTENT"
    result.compare("q", 0.5, 0.6)
    result.notes.append("note text")
    text = result.render()
    assert "TABLE CONTENT" in text
    assert "paper=0.500" in text and "measured=0.600" in text
    assert "note: note text" in text
