"""Tests for measured runs and crescendo sweeps."""

import pytest

from repro.analysis.runner import (
    cpuspeed_run,
    dynamic_crescendo,
    full_strategy_sweep,
    run_measured,
    static_crescendo,
)
from repro.dvs.strategy import StaticStrategy
from repro.hardware.cluster import Cluster
from repro.hardware.spec import ClusterSpec
from repro.util.units import MHZ
from repro.workloads.micro import L2BoundMicro, MemoryBoundMicro
from repro.workloads.nas_ft import NasFT


@pytest.fixture
def small_ft():
    return NasFT("S", n_ranks=4, iterations=2)


def test_run_measured_produces_point(small_ft):
    run = run_measured(small_ft, StaticStrategy(800 * MHZ))
    assert run.point.frequency == 800 * MHZ
    assert run.point.energy > 0 and run.point.delay > 0
    assert run.point.label == "stat@800MHz"
    assert run.cluster.nodes[0].cpu.frequency == 800 * MHZ


def test_static_crescendo_is_one_run_per_frequency(small_ft):
    freqs = [600 * MHZ, 1000 * MHZ, 1400 * MHZ]
    runs = static_crescendo(small_ft, freqs)
    assert [r.point.frequency for r in runs] == freqs
    # fresh cluster per run
    assert len({id(r.cluster) for r in runs}) == 3


def test_static_energy_monotone_for_memory_bound():
    """The crescendo invariant for slack-heavy codes: energy falls with f."""
    workload = MemoryBoundMicro(passes=20)
    runs = static_crescendo(workload, [600 * MHZ, 800 * MHZ, 1000 * MHZ, 1400 * MHZ])
    energies = [r.point.energy for r in runs]
    assert energies == sorted(energies)
    delays = [r.point.delay for r in runs]
    assert delays == sorted(delays, reverse=True)


def test_dynamic_crescendo_lower_energy_than_static(small_ft):
    freq = [1400 * MHZ]
    stat = static_crescendo(small_ft, freq)[0]
    dyn = dynamic_crescendo(small_ft, freq, regions=["fft"])[0]
    assert dyn.point.energy < stat.point.energy
    assert dyn.point.delay >= stat.point.delay


def test_cpuspeed_run_has_no_single_frequency(small_ft):
    run = cpuspeed_run(small_ft)
    assert run.point.frequency is None
    assert run.point.label == "cpuspeed"


def test_full_strategy_sweep_shape(small_ft):
    sweep = full_strategy_sweep(small_ft, [600 * MHZ, 1400 * MHZ], regions=["fft"])
    assert set(sweep) == {"cpuspeed", "stat", "dyn"}
    assert len(sweep["stat"]) == 2 and len(sweep["dyn"]) == 2
    assert len(sweep["cpuspeed"]) == 1


def test_full_sweep_can_skip_dynamic():
    workload = L2BoundMicro(passes=10)
    sweep = full_strategy_sweep(workload, [1400 * MHZ], include_dynamic=False)
    assert "dyn" not in sweep


def test_cluster_too_small_rejected(small_ft):
    with pytest.raises(ValueError, match="needs"):
        run_measured(
            small_ft,
            StaticStrategy(800 * MHZ),
            cluster_factory=lambda: Cluster.from_spec(ClusterSpec.homogeneous(2)),
        )
