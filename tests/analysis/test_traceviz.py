"""Tests for Chrome trace-event export."""

import json

import pytest

from repro.analysis.phases import TrackedStrategy
from repro.analysis.runner import run_measured
from repro.analysis.traceviz import export_chrome_trace, trace_events
from repro.dvs.strategy import StaticStrategy
from repro.util.units import MHZ
from repro.workloads.nas_ft import NasFT


@pytest.fixture
def tracked_run():
    workload = NasFT("S", n_ranks=2, iterations=2)
    strategy = TrackedStrategy(StaticStrategy(1000 * MHZ))
    run = run_measured(workload, strategy)
    return strategy, run


def test_events_include_processes_regions_and_power(tracked_run):
    strategy, run = tracked_run
    events = trace_events(run.cluster, strategy.intervals())
    phases = {e["ph"] for e in events}
    assert {"M", "X", "C"} <= phases
    regions = [e for e in events if e["ph"] == "X"]
    assert len(regions) == 2 * 2  # ranks x iterations
    assert all(e["name"] == "fft" for e in regions)
    assert all(e["dur"] > 0 for e in regions)


def test_timestamps_in_microseconds(tracked_run):
    strategy, run = tracked_run
    events = trace_events(run.cluster, strategy.intervals())
    region = next(e for e in events if e["ph"] == "X")
    iv = strategy.intervals()[0]
    matching = [
        e
        for e in events
        if e["ph"] == "X" and e["pid"] == iv.rank and e["ts"] == iv.start * 1e6
    ]
    assert matching


def test_export_writes_valid_json(tracked_run, tmp_path):
    strategy, run = tracked_run
    path = tmp_path / "trace.json"
    count = export_chrome_trace(str(path), run.cluster, strategy.intervals())
    payload = json.loads(path.read_text())
    assert payload["displayTimeUnit"] == "ms"
    assert len(payload["traceEvents"]) == count
    assert count > 0


def test_window_clipping(tracked_run):
    strategy, run = tracked_run
    mid = run.spmd.end / 2
    events = trace_events(run.cluster, [], t0=0.0, t1=mid)
    power = [e for e in events if e["ph"] == "C" and e["name"] == "power_w"]
    assert power
    assert all(e["ts"] <= mid * 1e6 for e in power)


def test_reversed_window_rejected(tracked_run):
    strategy, run = tracked_run
    with pytest.raises(ValueError):
        trace_events(run.cluster, [], t0=5.0, t1=1.0)
