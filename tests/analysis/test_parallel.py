"""Tests for parallel sweeps: identical results to serial, any pool size."""

import os

import pytest

from repro.analysis.parallel import (
    STRATEGY_KINDS,
    SweepError,
    SweepTask,
    parallel_full_sweep,
    run_sweep,
)
from repro.analysis.runner import full_strategy_sweep
from repro.cache.store import RunCache
from repro.experiments.common import points_of
from repro.util.units import MHZ
from repro.workloads.micro import L2BoundMicro
from repro.workloads.nas_ft import NasFT


FREQS = [600 * MHZ, 1000 * MHZ, 1400 * MHZ]


def make_workload():
    return NasFT("S", n_ranks=4, iterations=2)


class CrashableMicro(L2BoundMicro):
    """An L2 walk that raises while a marker file exists.

    Module-level so it pickles into pool workers; the marker file lets
    the *same* task crash in one sweep and succeed in the next (the
    resume scenario) without changing its cache key between those runs.
    """

    def __init__(self, marker: str, crash: bool):
        super().__init__(passes=5)
        self.marker = marker
        self.crash = crash

    def program(self, comm, dvs):
        if self.crash and os.path.exists(self.marker):
            raise RuntimeError("injected worker crash")
        return (yield from super().program(comm, dvs))


def test_task_builds_each_strategy_kind():
    wl = make_workload()
    assert SweepTask(wl, "stat", 800 * MHZ).build_strategy().kind == "stat"
    assert SweepTask(wl, "cpuspeed").build_strategy().kind == "cpuspeed"
    dyn = SweepTask(wl, "dyn", 800 * MHZ, regions=("fft",)).build_strategy()
    assert dyn.kind == "dyn"


def test_task_validation():
    wl = make_workload()
    with pytest.raises(ValueError):
        SweepTask(wl, "stat").build_strategy()
    with pytest.raises(ValueError):
        SweepTask(wl, "dyn").build_strategy()
    with pytest.raises(ValueError):
        SweepTask(wl, "bogus").build_strategy()


def test_task_validates_at_construction_time():
    """A malformed sweep fails before any simulation starts, and the
    unknown-kind message enumerates the valid kinds."""
    wl = make_workload()
    with pytest.raises(ValueError, match="valid kinds: cpuspeed, dyn, stat"):
        SweepTask(wl, "bogus")
    with pytest.raises(ValueError, match="static task needs a frequency"):
        SweepTask(wl, "stat")
    with pytest.raises(ValueError, match="dynamic task needs a frequency"):
        SweepTask(wl, "dyn")
    assert SweepTask(wl, "cpuspeed").frequency is None  # no frequency needed


def test_strategy_kinds_is_the_public_vocabulary():
    assert STRATEGY_KINDS == ("cpuspeed", "dyn", "stat")
    for kind in STRATEGY_KINDS:
        frequency = None if kind == "cpuspeed" else 800 * MHZ
        task = SweepTask(make_workload(), kind, frequency=frequency)
        assert task.build_strategy().kind == kind


def test_inprocess_sweep_preserves_order():
    tasks = [SweepTask(make_workload(), "stat", f) for f in FREQS]
    points = run_sweep(tasks)
    assert [p.frequency for p in points] == FREQS


def test_parallel_sweep_matches_serial_bit_for_bit():
    """Determinism across process boundaries: the parallel sweep equals
    the serial one exactly."""
    serial = full_strategy_sweep(make_workload(), FREQS, regions=["fft"])
    serial_points = {k: points_of(v) for k, v in serial.items()}

    parallel = parallel_full_sweep(
        make_workload(), FREQS, regions=["fft"], n_workers=2
    )
    assert set(parallel) == set(serial_points)
    for kind in serial_points:
        for a, b in zip(serial_points[kind], parallel[kind]):
            assert a.energy == b.energy, kind
            assert a.delay == b.delay, kind
            assert a.label == b.label


def test_parallel_sweep_without_dynamic():
    out = parallel_full_sweep(
        make_workload(), FREQS, include_dynamic=False, n_workers=2
    )
    assert set(out) == {"cpuspeed", "stat"}
    assert len(out["stat"]) == 3


def test_worker_crash_completes_siblings_and_resumes_from_cache(tmp_path):
    """One crashing worker must not lose its siblings' results: they
    complete, land in the cache, and the re-run simulates only the gap."""
    marker = tmp_path / "crash-marker"
    marker.write_text("armed")
    tasks = [
        SweepTask(
            CrashableMicro(str(marker), crash=(f == 1000 * MHZ)),
            "stat",
            frequency=f,
        )
        for f in FREQS
    ]
    cache = RunCache(tmp_path / "cache")
    with pytest.raises(SweepError) as excinfo:
        run_sweep(tasks, jobs=2, use_cache=cache)
    err = excinfo.value
    assert [index for index, _, _ in err.failures] == [1]
    assert isinstance(err.failures[0][2], RuntimeError)
    assert "injected worker crash" in str(err)
    assert err.completed[1] is None
    assert err.completed[0] is not None and err.completed[2] is not None
    assert cache.stats.entries == 2  # the successes persisted immediately

    # "Fix the crash" and rerun: the cache fills everything but the gap.
    marker.unlink()
    resumed_cache = RunCache(tmp_path / "cache")
    points = run_sweep(tasks, use_cache=resumed_cache)
    assert points[0] == err.completed[0]
    assert points[2] == err.completed[2]
    assert points[1] is not None
    assert resumed_cache.stats.hits == 2
    assert resumed_cache.stats.misses == 1


def test_serial_crash_reports_all_failures_in_order(tmp_path):
    marker = tmp_path / "marker"
    marker.write_text("armed")
    tasks = [
        SweepTask(CrashableMicro(str(marker), crash=True), "stat", frequency=f)
        for f in FREQS
    ]
    with pytest.raises(SweepError) as excinfo:
        run_sweep(tasks)
    assert [index for index, _, _ in excinfo.value.failures] == [0, 1, 2]
    assert excinfo.value.completed == [None, None, None]


class InterruptingMicro(L2BoundMicro):
    """Raises a non-``Exception`` mid-run (a Ctrl-C / sys.exit stand-in)."""

    def __init__(self, exc_name: str):
        super().__init__(passes=5)
        self.exc_name = exc_name

    def program(self, comm, dvs):
        raise {"KeyboardInterrupt": KeyboardInterrupt, "SystemExit": SystemExit}[
            self.exc_name
        ]()
        yield  # pragma: no cover - makes this a generator


class TestFailureReporting:
    def test_traceback_points_at_the_original_raise_site(self, tmp_path):
        marker = tmp_path / "marker"
        marker.write_text("armed")
        tasks = [
            SweepTask(
                CrashableMicro(str(marker), crash=True), "stat", frequency=FREQS[0]
            )
        ]
        with pytest.raises(SweepError) as excinfo:
            run_sweep(tasks)
        err = excinfo.value
        assert len(err.tracebacks) == 1
        # The formatted traceback names the line that raised, not the
        # re-raise inside run_sweep.
        assert "injected worker crash" in err.tracebacks[0]
        assert "in program" in err.tracebacks[0]
        assert "in program" in str(err)  # and the message carries it too

    def test_pool_worker_traceback_travels_across_the_process_boundary(
        self, tmp_path
    ):
        marker = tmp_path / "marker"
        marker.write_text("armed")
        tasks = [
            SweepTask(CrashableMicro(str(marker), crash=True), "stat", frequency=f)
            for f in FREQS[:2]
        ]
        with pytest.raises(SweepError) as excinfo:
            run_sweep(tasks, jobs=2)
        # concurrent.futures chains the worker's formatted traceback as
        # the exception's cause (_RemoteTraceback); format_exception
        # follows the chain, so the original raise site survives the hop.
        for text in excinfo.value.tracebacks:
            assert "injected worker crash" in text
            assert "in program" in text

    @pytest.mark.parametrize("exc_name", ["KeyboardInterrupt", "SystemExit"])
    def test_interrupts_are_never_collected_into_a_sweeperror(self, exc_name):
        tasks = [
            SweepTask(InterruptingMicro(exc_name), "stat", frequency=f)
            for f in FREQS
        ]
        with pytest.raises((KeyboardInterrupt, SystemExit)):
            run_sweep(tasks)
