"""Tests for parallel sweeps: identical results to serial, any pool size."""

import pytest

from repro.analysis.parallel import SweepTask, parallel_full_sweep, run_sweep
from repro.analysis.runner import full_strategy_sweep
from repro.experiments.common import points_of
from repro.util.units import MHZ
from repro.workloads.nas_ft import NasFT


FREQS = [600 * MHZ, 1000 * MHZ, 1400 * MHZ]


def make_workload():
    return NasFT("S", n_ranks=4, iterations=2)


def test_task_builds_each_strategy_kind():
    wl = make_workload()
    assert SweepTask(wl, "stat", 800 * MHZ).build_strategy().kind == "stat"
    assert SweepTask(wl, "cpuspeed").build_strategy().kind == "cpuspeed"
    dyn = SweepTask(wl, "dyn", 800 * MHZ, regions=("fft",)).build_strategy()
    assert dyn.kind == "dyn"


def test_task_validation():
    wl = make_workload()
    with pytest.raises(ValueError):
        SweepTask(wl, "stat").build_strategy()
    with pytest.raises(ValueError):
        SweepTask(wl, "dyn").build_strategy()
    with pytest.raises(ValueError):
        SweepTask(wl, "bogus").build_strategy()


def test_inprocess_sweep_preserves_order():
    tasks = [SweepTask(make_workload(), "stat", f) for f in FREQS]
    points = run_sweep(tasks, n_workers=0)
    assert [p.frequency for p in points] == FREQS


def test_parallel_sweep_matches_serial_bit_for_bit():
    """Determinism across process boundaries: the parallel sweep equals
    the serial one exactly."""
    serial = full_strategy_sweep(make_workload(), FREQS, regions=["fft"])
    serial_points = {k: points_of(v) for k, v in serial.items()}

    parallel = parallel_full_sweep(
        make_workload(), FREQS, regions=["fft"], n_workers=2
    )
    assert set(parallel) == set(serial_points)
    for kind in serial_points:
        for a, b in zip(serial_points[kind], parallel[kind]):
            assert a.energy == b.energy, kind
            assert a.delay == b.delay, kind
            assert a.label == b.label


def test_parallel_sweep_without_dynamic():
    out = parallel_full_sweep(
        make_workload(), FREQS, include_dynamic=False, n_workers=2
    )
    assert set(out) == {"cpuspeed", "stat"}
    assert len(out["stat"]) == 3
