"""Tests for the calibration-fitting tools."""

import pytest

from repro.analysis.fitting import (
    base_power_window,
    cpu_bound_energy_curve,
    fit_activity_factor,
    golden_section,
    membound_e600,
)
from repro.hardware.activity import CpuActivity
from repro.hardware.calibration import DEFAULT_CALIBRATION


def test_golden_section_finds_parabola_minimum():
    x = golden_section(lambda v: (v - 3.7) ** 2, 0.0, 10.0, tol=1e-6)
    assert x == pytest.approx(3.7, abs=1e-4)


def test_golden_section_validates_bracket():
    with pytest.raises(ValueError):
        golden_section(lambda v: v, 5.0, 1.0)


def test_membound_measurement_matches_experiment():
    assert membound_e600(DEFAULT_CALIBRATION) == pytest.approx(0.586, abs=0.01)


def test_fitting_memstall_recovers_default():
    """Fitting MEMSTALL against the paper's Fig-6 target lands near the
    calibrated default (0.45) — the derivation DESIGN.md describes."""
    fitted = fit_activity_factor(
        CpuActivity.MEMSTALL,
        membound_e600,
        target=0.593,
        bounds=(0.1, 0.9),
        tol=5e-3,
    )
    assert fitted == pytest.approx(0.45, abs=0.03)


def test_cpu_bound_curve_shape():
    curve = dict(cpu_bound_energy_curve(base_power=8.2))
    assert min(curve, key=curve.get) == pytest.approx(800e6)
    assert curve[600e6] > curve[800e6]


def test_base_power_window_contains_default():
    lo, hi = base_power_window(800.0)
    assert lo < DEFAULT_CALIBRATION.base_power < hi
    # DESIGN.md quotes roughly (7.8, 8.7) for the Table-2 ladder.
    assert lo == pytest.approx(7.8, abs=0.1)
    assert hi == pytest.approx(8.66, abs=0.1)


def test_base_power_window_rejects_impossible_target():
    with pytest.raises(ValueError):
        base_power_window(1200.0, lo=1.0, hi=2.0)
