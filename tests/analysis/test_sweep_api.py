"""The unified sweep contract: one signature, one error contract, one
deprecation story for ``run_sweep`` and ``run_chaos_sweep``."""

import inspect

import pytest

from repro.analysis.parallel import SweepTask, run_sweep
from repro.cache.store import RunCache
from repro.faults.sweep import run_chaos_sweep
from repro.obs.tracer import Tracer
from repro.util.units import MHZ
from repro.workloads.micro import L2BoundMicro

FREQS = [600 * MHZ, 1400 * MHZ]


def make_tasks():
    return [
        SweepTask(L2BoundMicro(passes=3), "stat", frequency=f) for f in FREQS
    ]


class TestSignatureSync:
    def test_signatures_match_parameter_for_parameter(self):
        """The two sweeps must never drift apart: same parameter names,
        same kinds, same defaults (identical objects, not just equal),
        in the same order — only the task type differs."""
        sweep = inspect.signature(run_sweep)
        chaos = inspect.signature(run_chaos_sweep)
        assert list(sweep.parameters) == list(chaos.parameters)
        for name in sweep.parameters:
            a, b = sweep.parameters[name], chaos.parameters[name]
            assert a.kind == b.kind, name
            if name != "tasks":
                assert a.default is b.default, name

    def test_options_are_keyword_only(self):
        for fn in (run_sweep, run_chaos_sweep):
            sig = inspect.signature(fn)
            for name, param in sig.parameters.items():
                if name == "tasks":
                    continue
                assert param.kind is inspect.Parameter.KEYWORD_ONLY, (
                    f"{fn.__name__}({name}) must be keyword-only"
                )

    def test_positional_options_rejected(self):
        with pytest.raises(TypeError):
            run_sweep(make_tasks(), 2)
        with pytest.raises(TypeError):
            run_chaos_sweep([], 2)


class TestJobsConvention:
    def test_default_is_serial_in_process(self):
        points = run_sweep(make_tasks())
        assert [p.frequency for p in points] == FREQS

    def test_explicit_jobs_n(self):
        assert run_sweep(make_tasks(), jobs=2) == run_sweep(make_tasks())

    def test_negative_jobs_rejected(self):
        with pytest.raises(ValueError):
            run_sweep(make_tasks(), jobs=-1)
        with pytest.raises(ValueError):
            run_chaos_sweep([], jobs=-1)


class TestDeprecatedShims:
    def test_n_workers_warns_and_translates(self):
        with pytest.warns(DeprecationWarning, match="n_workers"):
            points = run_sweep(make_tasks(), n_workers=0)  # old serial
        assert [p.frequency for p in points] == FREQS

    def test_cache_warns_and_still_caches(self, tmp_path):
        cache = RunCache(tmp_path)
        with pytest.warns(DeprecationWarning, match="cache"):
            run_sweep(make_tasks(), cache=cache)
        assert cache.stats.entries == len(FREQS)

    def test_new_keywords_win_over_deprecated_ones(self, tmp_path):
        # jobs explicitly given: the deprecated n_workers only warns.
        with pytest.warns(DeprecationWarning):
            points = run_sweep(make_tasks(), jobs=None, n_workers=4)
        assert [p.frequency for p in points] == FREQS

    def test_chaos_sweep_shims_mirror(self):
        with pytest.warns(DeprecationWarning, match="n_workers"):
            outcomes = run_chaos_sweep([], n_workers=0)
        assert outcomes == []


class TestTracerParameter:
    def test_tracer_records_one_wall_span_per_task(self):
        tracer = Tracer()
        run_sweep(make_tasks(), tracer=tracer)
        task_spans = [s for s in tracer.spans if s.cat == "sweep.task"]
        assert len(task_spans) == len(FREQS)
        assert all(s.clock == "wall" for s in task_spans)

    def test_tracer_forces_serial_but_identical_results(self):
        untraced = run_sweep(make_tasks())
        with pytest.warns(UserWarning, match="ignoring jobs=2"):
            traced = run_sweep(make_tasks(), jobs=2, tracer=Tracer())
        assert traced == untraced

    def test_tracer_override_warning_names_backend(self):
        with pytest.warns(UserWarning, match="ignoring backend='process'"):
            run_sweep(make_tasks(), backend="process", tracer=Tracer())

    def test_tracer_with_default_options_does_not_warn(self):
        import warnings as _warnings

        with _warnings.catch_warnings():
            _warnings.simplefilter("error")
            run_sweep(make_tasks(), tracer=Tracer())

    def test_tracer_with_explicit_serial_backend_does_not_warn(self):
        import warnings as _warnings

        with _warnings.catch_warnings():
            _warnings.simplefilter("error")
            run_sweep(make_tasks(), backend="serial", tracer=Tracer())

    def test_tracer_sees_cache_hits(self, tmp_path):
        cache = RunCache(tmp_path)
        run_sweep(make_tasks(), use_cache=cache)
        tracer = Tracer()
        run_sweep(make_tasks(), use_cache=cache, tracer=tracer)
        hits = [i for i in tracer.instants if i.name == "hit"]
        assert len(hits) == len(FREQS)


class TestUseCache:
    def test_use_cache_true_opens_at_cache_dir(self, tmp_path):
        run_sweep(make_tasks(), use_cache=True, cache_dir=tmp_path)
        warm = RunCache(tmp_path)
        assert warm.stats.entries == len(FREQS)

    def test_use_cache_env_default(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env"))
        run_sweep(make_tasks(), use_cache=True)
        assert RunCache(tmp_path / "env").stats.entries == len(FREQS)
