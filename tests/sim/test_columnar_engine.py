"""Property-based oracle tests for the columnar batched engine.

The scalar :class:`~repro.sim.engine.Engine` heap walk is kept verbatim
as the behavioural oracle (exactly as ``PowerTimeline`` keeps
``_energy_walk`` for the power-series kernel).  For any random program,
:class:`~repro.sim.columnar.ColumnarEngine` must process the **same
events in the same order at the same float clock values** — frontier
batching, tail flushes, run merges, and lazy cancellation purges are all
invisible to simulation code.

Also covers the engine-level additions this layer introduced:
``cancel`` / ``schedule_at`` / ``timeout_at`` semantics, the non-finite
delay guard (a ``NaN`` delay used to corrupt the scalar heap silently),
and the ``Engine.run`` edge cases around ``until``.
"""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim import (
    PRIORITY_LOW,
    PRIORITY_NORMAL,
    PRIORITY_URGENT,
    ColumnarEngine,
    Engine,
    SimulationError,
)

# ---------------------------------------------------------------------------
# random-program strategies
# ---------------------------------------------------------------------------
# A deliberately collision-rich delay pool: duplicates force many events
# onto the same timestamp frontier, which is where batching could diverge
# from the scalar heap's (time, priority, insertion-seq) order.
_DELAYS = [0.0, 0.125, 0.25, 0.25, 0.5, 1.0 / 3.0, 0.125, 1.0]
_PRIOS = [PRIORITY_URGENT, PRIORITY_NORMAL, PRIORITY_LOW]

# One instruction per yield point of a process:
#   kind 0 — wait on a timeout(delay)
#   kind 1 — schedule a bare event at (delay, priority) and wait on it
#   kind 2 — succeed a shared event (if still pending), then short wait
#   kind 3 — wait on any_of(shared event, timeout(delay))
_OP = st.tuples(
    st.integers(min_value=0, max_value=3),
    st.sampled_from(range(len(_DELAYS))),
    st.sampled_from(range(len(_PRIOS))),
    st.integers(min_value=0, max_value=2),  # shared-event index
)
_PROGRAM = st.lists(
    st.lists(_OP, min_size=1, max_size=6), min_size=1, max_size=5
)


def _execute(engine_cls, program):
    """Run the interpreted program; return its dispatch log and end time."""
    eng = engine_cls()
    shared = [eng.event() for _ in range(3)]
    log = []

    def body(pid, ops):
        for step, (kind, d_idx, p_idx, s_idx) in enumerate(ops):
            delay = _DELAYS[d_idx]
            if kind == 0:
                yield eng.timeout(delay, value=(pid, step))
            elif kind == 1:
                ev = eng.event()
                ev._ok = True
                ev._value = (pid, step)
                eng.schedule(ev, delay, _PRIOS[p_idx])
                yield ev
            elif kind == 2:
                if not shared[s_idx].triggered:
                    shared[s_idx].succeed((pid, step))
                yield eng.timeout(delay)
            else:
                yield eng.any_of([shared[s_idx], eng.timeout(delay)])
            log.append((eng.now, pid, step))

    for pid, ops in enumerate(program):
        eng.process(body(pid, ops), name=f"p{pid}")
    eng.run()
    return log, eng.now


@settings(max_examples=150, deadline=None)
@given(program=_PROGRAM)
def test_random_programs_are_bit_identical(program):
    scalar_log, scalar_end = _execute(Engine, program)
    columnar_log, columnar_end = _execute(ColumnarEngine, program)
    # == on the tuples compares the clock floats exactly — no tolerance.
    assert columnar_log == scalar_log
    assert columnar_end == scalar_end


@settings(max_examples=60, deadline=None)
@given(program=_PROGRAM, until=st.sampled_from([0.0, 0.2, 0.5, 1.0, 2.5]))
def test_run_until_time_is_bit_identical(program, until):
    logs = []
    for engine_cls in (Engine, ColumnarEngine):
        eng = engine_cls()
        shared = [eng.event() for _ in range(3)]
        log = []

        def body(pid, ops, eng=eng, shared=shared, log=log):
            for step, (kind, d_idx, p_idx, s_idx) in enumerate(ops):
                delay = _DELAYS[d_idx]
                if kind == 2 and not shared[s_idx].triggered:
                    shared[s_idx].succeed(None)
                yield eng.timeout(delay)
                log.append((eng.now, pid, step))

        for pid, ops in enumerate(program):
            eng.process(body(pid, ops), name=f"p{pid}")
        eng.run(until=until)
        assert eng.now == until  # the clock lands exactly on the stop time
        logs.append(log)
    assert logs[0] == logs[1]


@settings(max_examples=50, deadline=None)
@given(
    batch=st.lists(
        st.tuples(
            st.sampled_from(range(len(_DELAYS))),
            st.sampled_from(range(len(_PRIOS))),
        ),
        min_size=1,
        max_size=300,
    )
)
def test_bulk_scheduling_through_flushes_and_merges(batch):
    """Hundreds of schedules force tail flushes and run merges; dispatch
    order must still match the scalar heap exactly."""
    logs = []
    for engine_cls in (Engine, ColumnarEngine):
        eng = engine_cls()
        log = []

        def record(event, log=log, eng=eng):
            log.append((eng.now, event._value))

        for i, (d_idx, p_idx) in enumerate(batch):
            ev = eng.event()
            ev._ok = True
            ev._value = i
            ev.callbacks.append(record)
            eng.schedule(ev, _DELAYS[d_idx], _PRIOS[p_idx])
        eng.run()
        logs.append(log)
    assert logs[0] == logs[1]


# ---------------------------------------------------------------------------
# cancel / schedule_at / timeout_at
# ---------------------------------------------------------------------------
class TestCancel:
    def test_cancelled_event_never_dispatches(self):
        eng = ColumnarEngine()
        fired = []
        ev = eng.timeout(1.0)
        ev.callbacks.append(lambda e: fired.append(e))
        assert eng.cancel(ev) is True
        eng.run()
        assert fired == []
        assert eng.now == 0.0  # nothing left to run

    def test_cancel_is_idempotent_and_reports(self):
        eng = ColumnarEngine()
        ev = eng.timeout(1.0)
        assert eng.cancel(ev) is True
        assert eng.cancel(ev) is False  # already cancelled

    def test_cancel_processed_event_returns_false(self):
        eng = ColumnarEngine()
        ev = eng.timeout(1.0)
        eng.run()
        assert ev.processed
        assert eng.cancel(ev) is False

    def test_cancel_untriggered_event_returns_false(self):
        eng = ColumnarEngine()
        ev = eng.event()  # never scheduled
        assert eng.cancel(ev) is False

    def test_cancelled_head_never_determines_the_frontier(self):
        """run(until=t) must not overshoot because a cancelled event sat
        at the head of the queue (the _purge() contract)."""
        eng = ColumnarEngine()
        early = eng.timeout(1.0)
        eng.timeout(5.0)
        eng.cancel(early)
        assert eng.peek() == 5.0
        eng.run(until=2.0)
        assert eng.now == 2.0

    def test_pending_counts_live_events_only(self):
        eng = ColumnarEngine()
        evs = [eng.timeout(float(i + 1)) for i in range(4)]
        assert eng.pending == 4
        eng.cancel(evs[0])
        eng.cancel(evs[2])
        assert eng.pending == 2
        eng.run()
        assert eng.pending == 0
        assert eng.now == 4.0

    def test_stats_count_cancellations_and_frontiers(self):
        eng = ColumnarEngine()
        ev = eng.timeout(1.0)
        eng.timeout(1.0)
        eng.timeout(2.0)
        eng.cancel(ev)
        eng.run()
        assert eng.stats.cancelled == 1
        assert eng.stats.dispatched == 2
        assert eng.stats.frontiers >= 2
        assert eng.stats.as_dict()["dispatched"] == 2


class TestAbsoluteScheduling:
    def test_timeout_at_fires_on_the_exact_float(self):
        eng = ColumnarEngine()
        # A float that a delay round-trip (when - now) would perturb.
        when = 0.1 + 0.2  # 0.30000000000000004
        ev = eng.timeout_at(when, value="x")
        eng.run(until=ev)
        assert eng.now == when

    def test_schedule_at_past_rejected(self):
        eng = ColumnarEngine()
        eng.timeout(1.0)
        eng.run()
        with pytest.raises(SimulationError):
            eng.schedule_at(eng.event(), 0.5)

    def test_schedule_at_non_finite_rejected(self):
        eng = ColumnarEngine()
        for bad in (float("nan"), float("inf")):
            with pytest.raises(SimulationError):
                eng.schedule_at(eng.event(), bad)

    def test_timeout_at_value_delivered(self):
        eng = ColumnarEngine()
        ev = eng.timeout_at(1.5, value=42)
        assert eng.run(until=ev) == 42


# ---------------------------------------------------------------------------
# the non-finite delay guard (regression: NaN used to corrupt the heap)
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("engine_cls", [Engine, ColumnarEngine])
@pytest.mark.parametrize("bad", [float("nan"), float("inf"), -0.5, -1e-9])
def test_schedule_rejects_non_finite_and_negative_delays(engine_cls, bad):
    eng = engine_cls()
    with pytest.raises(SimulationError):
        eng.schedule(eng.event(), delay=bad)
    with pytest.raises(SimulationError):
        eng.timeout(bad)
    # The queue stayed intact: ordering still works afterwards.
    eng.timeout(1.0)
    eng.run()
    assert eng.now == 1.0


@pytest.mark.parametrize("engine_cls", [Engine, ColumnarEngine])
def test_nan_delay_does_not_corrupt_order(engine_cls):
    """Regression: before the guard, scheduling a NaN delay silently
    poisoned heap comparisons and later events dispatched out of order."""
    eng = engine_cls()
    order = []
    for delay in (3.0, 1.0):
        ev = eng.timeout(delay, value=delay)
        ev.callbacks.append(lambda e: order.append(e._value))
    with pytest.raises(SimulationError):
        eng.timeout(float("nan"))
    ev = eng.timeout(2.0, value=2.0)
    ev.callbacks.append(lambda e: order.append(e._value))
    eng.run()
    assert order == [1.0, 2.0, 3.0]


# ---------------------------------------------------------------------------
# Engine.run edge cases (both engines)
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("engine_cls", [Engine, ColumnarEngine])
class TestRunEdgeCases:
    def test_until_equal_to_now_runs_due_events_only(self, engine_cls):
        eng = engine_cls()
        fired = []
        now_ev = eng.timeout(0.0)
        now_ev.callbacks.append(lambda e: fired.append("now"))
        later = eng.timeout(1.0)
        later.callbacks.append(lambda e: fired.append("later"))
        eng.run(until=0.0)
        assert fired == ["now"]  # due-now events run; the future stays queued
        assert eng.now == 0.0
        assert not later.processed

    def test_until_in_the_past_rejected(self, engine_cls):
        eng = engine_cls(start_time=5.0)
        with pytest.raises(SimulationError):
            eng.run(until=1.0)

    def test_until_already_failed_event_reraises(self, engine_cls):
        eng = engine_cls()
        boom = RuntimeError("boom")
        ev = eng.event()
        ev.fail(boom)
        eng.run()  # processes the failure; nobody was waiting
        assert ev.processed and not ev.ok
        with pytest.raises(RuntimeError, match="boom"):
            eng.run(until=ev)

    def test_until_already_succeeded_event_returns_value(self, engine_cls):
        eng = engine_cls()
        ev = eng.timeout(0.5, value="done")
        eng.run()
        assert eng.run(until=ev) == "done"

    def test_strict_false_failure_propagates_to_waiter(self, engine_cls):
        eng = engine_cls(strict=False)

        def failing():
            yield eng.timeout(0.1)
            raise ValueError("inner")

        proc = eng.process(failing())
        with pytest.raises(ValueError, match="inner"):
            eng.run(until=proc)

    def test_strict_false_unwatched_failure_does_not_escape(self, engine_cls):
        eng = engine_cls(strict=False)

        def failing():
            yield eng.timeout(0.1)
            raise ValueError("inner")

        proc = eng.process(failing())
        eng.run()  # drains without raising
        assert proc.triggered and not proc.ok
        assert isinstance(proc.value, ValueError)

    def test_invalid_until_rejected(self, engine_cls):
        eng = engine_cls()
        with pytest.raises(SimulationError):
            eng.run(until=object())

    def test_run_until_event_that_never_fires_raises(self, engine_cls):
        eng = engine_cls()
        eng.timeout(1.0)
        orphan = eng.event()
        with pytest.raises(SimulationError, match="never triggering"):
            eng.run(until=orphan)


def test_step_on_empty_queue_raises():
    eng = ColumnarEngine()
    with pytest.raises(SimulationError, match="empty event queue"):
        eng.step()


def test_peek_on_empty_queue_is_inf():
    eng = ColumnarEngine()
    assert math.isinf(eng.peek())
