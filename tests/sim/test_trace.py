"""Unit tests for the trace recorder."""

import json

from repro.sim import NullRecorder, TraceRecorder


def test_records_are_kept_in_order():
    tr = TraceRecorder()
    tr.record(0.0, "cpu.state", state="ACTIVE")
    tr.record(1.0, "mpi.send", nbytes=100)
    assert len(tr) == 2
    assert [r.category for r in tr] == ["cpu.state", "mpi.send"]


def test_category_prefix_filter():
    tr = TraceRecorder(categories=["cpu."])
    tr.record(0.0, "cpu.state", state="IDLE")
    tr.record(0.0, "mpi.send")
    assert len(tr) == 1


def test_select_by_category_and_predicate():
    tr = TraceRecorder()
    for t in range(5):
        tr.record(float(t), "cpu.freq", mhz=600 + t)
    tr.record(9.0, "net.xfer")
    picked = tr.select("cpu.", predicate=lambda r: r.fields["mhz"] >= 603)
    assert [r.time for r in picked] == [3.0, 4.0]


def test_jsonl_round_trip():
    tr = TraceRecorder()
    tr.record(1.5, "dvs.transition", mhz=800, node=3)
    lines = tr.to_jsonl().splitlines()
    assert len(lines) == 1
    payload = json.loads(lines[0])
    assert payload == {"t": 1.5, "cat": "dvs.transition", "mhz": 800, "node": 3}


def test_clear_empties_recorder():
    tr = TraceRecorder()
    tr.record(0.0, "x")
    tr.clear()
    assert len(tr) == 0


def test_null_recorder_drops_everything():
    tr = NullRecorder()
    tr.record(0.0, "cpu.state", state="ACTIVE")
    assert len(tr) == 0
