"""Unit tests for Resource, Store, and FilterStore."""

import pytest

from repro.sim import Engine, FilterStore, Resource, SimulationError, Store


@pytest.fixture
def eng():
    return Engine()


# ---------------------------------------------------------------------------
# Resource
# ---------------------------------------------------------------------------
def test_resource_capacity_must_be_positive(eng):
    with pytest.raises(SimulationError):
        Resource(eng, capacity=0)


def test_resource_grants_up_to_capacity(eng):
    res = Resource(eng, capacity=2)
    r1, r2, r3 = res.request(), res.request(), res.request()
    assert r1.triggered and r2.triggered and not r3.triggered
    assert res.count == 2 and res.queue_length == 1


def test_release_wakes_fifo_waiter(eng):
    res = Resource(eng, capacity=1)
    r1 = res.request()
    r2 = res.request()
    r3 = res.request()
    res.release(r1)
    assert r2.triggered and not r3.triggered
    res.release(r2)
    assert r3.triggered


def test_release_unheld_request_raises(eng):
    res = Resource(eng)
    req = res.request()
    res.release(req)
    with pytest.raises(SimulationError):
        res.release(req)


def test_cancel_waiting_request(eng):
    res = Resource(eng)
    r1 = res.request()
    r2 = res.request()
    res.cancel(r2)
    res.release(r1)
    assert not r2.triggered
    with pytest.raises(SimulationError):
        res.cancel(r2)


def test_resource_serialises_processes(eng):
    res = Resource(eng, capacity=1)
    log = []

    def user(name, hold):
        req = res.request()
        yield req
        log.append((f"{name}-start", eng.now))
        yield eng.timeout(hold)
        res.release(req)
        log.append((f"{name}-end", eng.now))

    eng.process(user("a", 2.0))
    eng.process(user("b", 3.0))
    eng.run()
    assert log == [
        ("a-start", 0.0),
        ("a-end", 2.0),
        ("b-start", 2.0),
        ("b-end", 5.0),
    ]


# ---------------------------------------------------------------------------
# Store
# ---------------------------------------------------------------------------
def test_store_put_then_get(eng):
    store = Store(eng)
    store.put("x")
    assert len(store) == 1
    ev = store.get()
    assert ev.triggered and ev.value == "x"
    assert len(store) == 0


def test_store_get_blocks_until_put(eng):
    store = Store(eng)
    got = []

    def consumer():
        got.append((yield store.get()))
        got.append(eng.now)

    def producer():
        yield eng.timeout(4.0)
        store.put("late")

    eng.process(consumer())
    eng.process(producer())
    eng.run()
    assert got == ["late", 4.0]


def test_store_fifo_order(eng):
    store = Store(eng)
    for item in (1, 2, 3):
        store.put(item)
    assert store.peek_items() == (1, 2, 3)
    assert [store.get().value for _ in range(3)] == [1, 2, 3]


def test_store_getters_fifo(eng):
    store = Store(eng)
    g1, g2 = store.get(), store.get()
    store.put("first")
    store.put("second")
    assert g1.value == "first" and g2.value == "second"


# ---------------------------------------------------------------------------
# FilterStore
# ---------------------------------------------------------------------------
def test_filterstore_matches_predicate(eng):
    fs = FilterStore(eng)
    fs.put({"tag": 1})
    fs.put({"tag": 2})
    ev = fs.get(lambda m: m["tag"] == 2)
    assert ev.triggered and ev.value["tag"] == 2
    assert len(fs) == 1


def test_filterstore_blocks_until_match(eng):
    fs = FilterStore(eng)
    got = []

    def consumer():
        got.append((yield fs.get(lambda m: m == "wanted")))

    def producer():
        yield eng.timeout(1.0)
        fs.put("other")
        yield eng.timeout(1.0)
        fs.put("wanted")

    eng.process(consumer())
    eng.process(producer())
    eng.run()
    assert got == ["wanted"]
    assert len(fs) == 1  # "other" still queued


def test_filterstore_preserves_fifo_within_match(eng):
    fs = FilterStore(eng)
    fs.put(("src0", "a"))
    fs.put(("src1", "b"))
    fs.put(("src0", "c"))
    first = fs.get(lambda m: m[0] == "src0")
    second = fs.get(lambda m: m[0] == "src0")
    assert first.value == ("src0", "a")
    assert second.value == ("src0", "c")


def test_filterstore_put_wakes_first_matching_getter(eng):
    fs = FilterStore(eng)
    g_odd = fs.get(lambda n: n % 2 == 1)
    g_even = fs.get(lambda n: n % 2 == 0)
    fs.put(4)
    assert not g_odd.triggered and g_even.triggered and g_even.value == 4


def test_filterstore_probe_is_nondestructive(eng):
    fs = FilterStore(eng)
    assert fs.probe(lambda m: True) is None
    fs.put("msg")
    assert fs.probe(lambda m: m == "msg") == "msg"
    assert len(fs) == 1
