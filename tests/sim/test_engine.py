"""Unit tests for the DES engine core: clock, scheduling, run modes."""

import pytest

from repro.sim import Engine, SimulationError


def test_initial_time_defaults_to_zero():
    assert Engine().now == 0.0


def test_initial_time_can_be_set():
    assert Engine(start_time=12.5).now == 12.5


def test_timeout_advances_clock():
    eng = Engine()
    eng.timeout(3.0)
    eng.run()
    assert eng.now == 3.0


def test_negative_timeout_rejected():
    eng = Engine()
    with pytest.raises(SimulationError):
        eng.timeout(-1.0)


def test_negative_schedule_delay_rejected():
    eng = Engine()
    with pytest.raises(SimulationError):
        eng.schedule(eng.event(), delay=-0.5)


def test_run_until_time_stops_clock_exactly():
    eng = Engine()
    eng.timeout(10.0)
    eng.run(until=4.0)
    assert eng.now == 4.0


def test_run_until_time_processes_earlier_events():
    eng = Engine()
    seen = []

    def proc():
        yield eng.timeout(1.0)
        seen.append(eng.now)
        yield eng.timeout(10.0)
        seen.append(eng.now)

    eng.process(proc())
    eng.run(until=5.0)
    assert seen == [1.0]


def test_run_until_past_time_rejected():
    eng = Engine()
    eng.timeout(1.0)
    eng.run()
    with pytest.raises(SimulationError):
        eng.run(until=0.5)


def test_run_until_event_returns_its_value():
    eng = Engine()

    def proc():
        yield eng.timeout(2.0)
        return "done"

    p = eng.process(proc())
    assert eng.run(until=p) == "done"
    assert eng.now == 2.0


def test_run_until_already_processed_event():
    eng = Engine()

    def proc():
        yield eng.timeout(1.0)
        return 42

    p = eng.process(proc())
    eng.run()
    assert eng.run(until=p) == 42


def test_run_until_event_that_never_fires_raises():
    eng = Engine()
    ev = eng.event()  # never triggered

    def proc():
        yield eng.timeout(1.0)

    eng.process(proc())
    with pytest.raises(SimulationError, match="never triggering"):
        eng.run(until=ev)


def test_events_fire_in_time_order():
    eng = Engine()
    order = []

    def waiter(delay, label):
        yield eng.timeout(delay)
        order.append(label)

    eng.process(waiter(3.0, "c"))
    eng.process(waiter(1.0, "a"))
    eng.process(waiter(2.0, "b"))
    eng.run()
    assert order == ["a", "b", "c"]


def test_simultaneous_events_fire_in_insertion_order():
    eng = Engine()
    order = []

    def waiter(label):
        yield eng.timeout(1.0)
        order.append(label)

    for label in "abcd":
        eng.process(waiter(label))
    eng.run()
    assert order == list("abcd")


def test_step_on_empty_queue_raises():
    with pytest.raises(SimulationError):
        Engine().step()


def test_peek_reports_next_event_time():
    eng = Engine()
    eng.timeout(7.0)
    eng.timeout(3.0)
    assert eng.peek() == 3.0


def test_peek_empty_is_infinite():
    assert Engine().peek() == float("inf")


def test_run_is_not_reentrant():
    eng = Engine()
    errors = []

    def proc():
        try:
            eng.run()
        except SimulationError as exc:
            errors.append(exc)
        yield eng.timeout(1.0)

    eng.process(proc())
    eng.run()
    assert len(errors) == 1


def test_strict_mode_propagates_process_exception():
    eng = Engine(strict=True)

    def bad():
        yield eng.timeout(1.0)
        raise ValueError("boom")

    eng.process(bad())
    with pytest.raises(ValueError, match="boom"):
        eng.run()


def test_nonstrict_mode_records_failure_on_process():
    eng = Engine(strict=False)

    def bad():
        yield eng.timeout(1.0)
        raise ValueError("boom")

    p = eng.process(bad())
    eng.run()
    assert p.triggered and not p.ok
    assert isinstance(p.value, ValueError)
