"""Unit tests for simulated processes: lifecycle, interrupts, composition."""

import pytest

from repro.sim import Engine, Interrupt, SimulationError


@pytest.fixture
def eng():
    return Engine()


def test_process_requires_generator(eng):
    with pytest.raises(SimulationError):
        eng.process(lambda: None)  # type: ignore[arg-type]


def test_process_return_value_becomes_event_value(eng):
    def proc():
        yield eng.timeout(1.0)
        return "result"

    p = eng.process(proc())
    eng.run()
    assert p.triggered and p.value == "result"


def test_process_is_alive_until_done(eng):
    def proc():
        yield eng.timeout(1.0)

    p = eng.process(proc())
    assert p.is_alive
    eng.run()
    assert not p.is_alive


def test_process_can_wait_on_another_process(eng):
    def inner():
        yield eng.timeout(2.0)
        return 7

    def outer():
        value = yield eng.process(inner())
        return value * 10

    p = eng.process(outer())
    assert eng.run(until=p) == 70
    assert eng.now == 2.0


def test_yielding_non_event_raises(eng):
    def proc():
        yield 42  # type: ignore[misc]

    eng.process(proc())
    with pytest.raises(SimulationError, match="must[\\s\\S]*yield Event"):
        eng.run()


def test_yielding_foreign_engine_event_raises(eng):
    other = Engine()

    def proc():
        yield other.timeout(1.0)

    eng.process(proc())
    with pytest.raises(SimulationError, match="another engine"):
        eng.run()


def test_interrupt_delivers_cause(eng):
    causes = []

    def victim():
        try:
            yield eng.timeout(100.0)
        except Interrupt as exc:
            causes.append(exc.cause)
            causes.append(eng.now)

    def attacker(target):
        yield eng.timeout(5.0)
        target.interrupt("freq-change")

    v = eng.process(victim())
    eng.process(attacker(v))
    eng.run()
    assert causes == ["freq-change", 5.0]


def test_interrupted_wait_target_is_abandoned(eng):
    log = []

    def victim():
        try:
            yield eng.timeout(10.0)
            log.append("timeout")
        except Interrupt:
            log.append("interrupted")
        yield eng.timeout(100.0)
        log.append("second-wait-done")

    def attacker(target):
        yield eng.timeout(1.0)
        target.interrupt()

    v = eng.process(victim())
    eng.process(attacker(v))
    eng.run()
    # The original 10s timeout must not resume the process a second time.
    assert log == ["interrupted", "second-wait-done"]
    assert eng.now == 101.0


def test_interrupt_dead_process_raises(eng):
    def proc():
        yield eng.timeout(1.0)

    p = eng.process(proc())
    eng.run()
    with pytest.raises(SimulationError):
        p.interrupt()


def test_self_interrupt_raises(eng):
    errors = []

    def proc():
        me = eng.active_process
        try:
            me.interrupt()
        except SimulationError as exc:
            errors.append(exc)
        yield eng.timeout(1.0)

    eng.process(proc())
    eng.run()
    assert len(errors) == 1


def test_uncaught_interrupt_fails_process(eng):
    eng.strict = False

    def victim():
        yield eng.timeout(100.0)

    def attacker(target):
        yield eng.timeout(1.0)
        target.interrupt("bye")

    v = eng.process(victim())
    eng.process(attacker(v))
    eng.run()
    assert v.triggered and not v.ok
    assert isinstance(v.value, Interrupt)


def test_process_starts_at_current_time_not_immediately(eng):
    """A process body runs only once the engine is stepped."""
    log = []

    def proc():
        log.append(eng.now)
        yield eng.timeout(1.0)

    eng.process(proc())
    assert log == []  # not started synchronously
    eng.run()
    assert log == [0.0]


def test_many_processes_interleave_deterministically(eng):
    log = []

    def worker(wid, period):
        for _ in range(3):
            yield eng.timeout(period)
            log.append((eng.now, wid))

    eng.process(worker("a", 1.0))
    eng.process(worker("b", 1.5))
    eng.run()
    # At t=3.0 both fire; b's timeout was scheduled earlier (t=1.5 vs t=2.0)
    # so it is processed first (insertion order among simultaneous events).
    assert log == [
        (1.0, "a"),
        (1.5, "b"),
        (2.0, "a"),
        (3.0, "b"),
        (3.0, "a"),
        (4.5, "b"),
    ]


def test_process_failure_propagates_to_waiter(eng):
    eng.strict = False
    caught = []

    def inner():
        yield eng.timeout(1.0)
        raise OSError("disk on fire")

    def outer():
        try:
            yield eng.process(inner())
        except OSError as exc:
            caught.append(exc)

    eng.process(outer())
    eng.run()
    assert len(caught) == 1
