"""Unit tests for events, conditions, and event composition."""

import pytest

from repro.sim import AllOf, AnyOf, Engine, SimulationError


@pytest.fixture
def eng():
    return Engine()


def test_event_starts_untriggered(eng):
    ev = eng.event()
    assert not ev.triggered
    assert not ev.processed


def test_value_before_trigger_raises(eng):
    with pytest.raises(SimulationError):
        eng.event().value
    with pytest.raises(SimulationError):
        eng.event().ok


def test_succeed_sets_value(eng):
    ev = eng.event()
    ev.succeed(99)
    assert ev.triggered and ev.ok and ev.value == 99


def test_double_trigger_raises(eng):
    ev = eng.event()
    ev.succeed()
    with pytest.raises(SimulationError):
        ev.succeed()
    with pytest.raises(SimulationError):
        ev.fail(ValueError())


def test_fail_requires_exception_instance(eng):
    with pytest.raises(SimulationError):
        eng.event().fail("not an exception")


def test_waiting_process_receives_event_value(eng):
    ev = eng.event()
    got = []

    def waiter():
        got.append((yield ev))

    def trigger():
        yield eng.timeout(5.0)
        ev.succeed("payload")

    eng.process(waiter())
    eng.process(trigger())
    eng.run()
    assert got == ["payload"]


def test_failed_event_raises_in_waiter(eng):
    ev = eng.event()
    caught = []

    def waiter():
        try:
            yield ev
        except KeyError as exc:
            caught.append(exc)

    def trigger():
        yield eng.timeout(1.0)
        ev.fail(KeyError("missing"))

    eng.process(waiter())
    eng.process(trigger())
    eng.run()
    assert len(caught) == 1


def test_yielding_already_processed_event_resumes_immediately(eng):
    ev = eng.event()
    ev.succeed("early")
    eng.run()  # processes ev
    got = []

    def late_waiter():
        got.append((yield ev))
        got.append(eng.now)

    eng.process(late_waiter())
    eng.run()
    assert got == ["early", 0.0]


def test_timeout_carries_value(eng):
    got = []

    def proc():
        got.append((yield eng.timeout(1.0, value="tick")))

    eng.process(proc())
    eng.run()
    assert got == ["tick"]


def test_any_of_fires_on_first(eng):
    def proc():
        t_fast = eng.timeout(1.0, value="fast")
        t_slow = eng.timeout(5.0, value="slow")
        result = yield eng.any_of([t_fast, t_slow])
        assert t_fast in result and result[t_fast] == "fast"
        assert t_slow not in result
        return eng.now

    p = eng.process(proc())
    assert eng.run(until=p) == 1.0


def test_all_of_waits_for_all(eng):
    def proc():
        events = [eng.timeout(d, value=d) for d in (3.0, 1.0, 2.0)]
        result = yield eng.all_of(events)
        assert sorted(result.values()) == [1.0, 2.0, 3.0]
        return eng.now

    p = eng.process(proc())
    assert eng.run(until=p) == 3.0


def test_empty_all_of_triggers_immediately(eng):
    def proc():
        result = yield eng.all_of([])
        return result

    p = eng.process(proc())
    assert eng.run(until=p) == {}


def test_any_of_with_already_triggered_event(eng):
    ev = eng.event()
    ev.succeed("pre")
    eng.run()

    def proc():
        result = yield eng.any_of([ev, eng.timeout(10.0)])
        return result[ev]

    p = eng.process(proc())
    assert eng.run(until=p) == "pre"
    assert eng.now == 0.0


def test_condition_fails_when_member_fails(eng):
    ev = eng.event()
    caught = []

    def proc():
        try:
            yield eng.all_of([ev, eng.timeout(10.0)])
        except RuntimeError as exc:
            caught.append(exc)

    def trigger():
        yield eng.timeout(1.0)
        ev.fail(RuntimeError("dead"))

    eng.process(proc())
    eng.process(trigger())
    eng.run()
    assert len(caught) == 1


def test_condition_rejects_foreign_engine_events(eng):
    other = Engine()
    with pytest.raises(SimulationError):
        AnyOf(eng, [other.event()])


def test_all_of_and_any_of_classes_directly(eng):
    a, b = eng.event(), eng.event()
    any_cond = AnyOf(eng, [a, b])
    all_cond = AllOf(eng, [a, b])
    a.succeed(1)
    eng.run()
    assert any_cond.triggered
    assert not all_cond.triggered
    b.succeed(2)
    eng.run()
    assert all_cond.triggered


def test_trigger_mirrors_success_and_failure(eng):
    src = eng.event()
    dst = eng.event()
    src.succeed("v")
    dst.trigger(src)
    assert dst.triggered and dst.ok and dst.value == "v"

    src2 = eng.event()
    dst2 = eng.event()
    src2.fail(ValueError("x"))
    dst2.trigger(src2)
    assert dst2.triggered and not dst2.ok

    with pytest.raises(SimulationError):
        eng.event().trigger(eng.event())
    eng.run()  # drain scheduled events to keep the engine clean
