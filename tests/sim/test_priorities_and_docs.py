"""Engine scheduling priorities and repo-wide docstring coverage."""

import importlib
import pkgutil

import repro
from repro.sim import Engine, PRIORITY_LOW, PRIORITY_NORMAL, PRIORITY_URGENT


def test_priorities_break_time_ties():
    eng = Engine()
    order = []

    def make(label):
        ev = eng.event()
        ev.callbacks.append(lambda _: order.append(label))
        return ev

    eng.schedule(make("low"), delay=1.0, priority=PRIORITY_LOW)
    eng.schedule(make("urgent"), delay=1.0, priority=PRIORITY_URGENT)
    eng.schedule(make("normal"), delay=1.0, priority=PRIORITY_NORMAL)
    eng.run()
    assert order == ["urgent", "normal", "low"]


def test_priority_does_not_override_time():
    eng = Engine()
    order = []

    def make(label):
        ev = eng.event()
        ev.callbacks.append(lambda _: order.append(label))
        return ev

    eng.schedule(make("later-urgent"), delay=2.0, priority=PRIORITY_URGENT)
    eng.schedule(make("earlier-low"), delay=1.0, priority=PRIORITY_LOW)
    eng.run()
    assert order == ["earlier-low", "later-urgent"]


def _walk_modules():
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield info.name


def test_every_module_has_a_docstring():
    """Documentation is a deliverable: every module documents itself."""
    missing = []
    for name in _walk_modules():
        module = importlib.import_module(name)
        doc = (module.__doc__ or "").strip()
        if len(doc) < 20:
            missing.append(name)
    assert not missing, f"modules without meaningful docstrings: {missing}"


def test_every_public_class_has_a_docstring():
    missing = []
    for name in _walk_modules():
        module = importlib.import_module(name)
        for attr in getattr(module, "__all__", []):
            obj = getattr(module, attr, None)
            if isinstance(obj, type) and obj.__module__ == name:
                if not (obj.__doc__ or "").strip():
                    missing.append(f"{name}.{attr}")
    assert not missing, f"public classes without docstrings: {missing}"


def test_package_exports_resolve():
    """Every name in every __all__ actually exists."""
    broken = []
    for name in _walk_modules():
        module = importlib.import_module(name)
        for attr in getattr(module, "__all__", []):
            if not hasattr(module, attr):
                broken.append(f"{name}.{attr}")
    assert not broken, f"__all__ names that do not resolve: {broken}"
