"""Executable documentation: every fenced ```python block must run.

Guards README.md, EXPERIMENTS.md and docs/CACHING.md against rot — each
snippet is executed exactly as printed, in file order, in one namespace
per file (so a later block may build on names an earlier one defined).
A snippet that needs scratch space must create it itself (tempfile);
none may write outside a temp directory.
"""

import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]

DOC_FILES = [
    "README.md",
    "EXPERIMENTS.md",
    "docs/API.md",
    "docs/BACKENDS.md",
    "docs/CACHING.md",
    "docs/ELASTIC.md",
    "docs/ENGINE.md",
    "docs/FAULTS.md",
    "docs/SCALING.md",
    "docs/SERVING.md",
]

FENCE = re.compile(r"```python\n(.*?)```", re.DOTALL)


def extract_blocks(path: Path):
    return [m.group(1) for m in FENCE.finditer(path.read_text(encoding="utf-8"))]


@pytest.mark.parametrize("relpath", DOC_FILES)
def test_python_snippets_execute(relpath):
    path = REPO_ROOT / relpath
    blocks = extract_blocks(path)
    assert blocks, f"{relpath} has no ```python blocks — did the docs move?"
    namespace = {"__name__": f"docsnippet_{path.stem.lower()}"}
    for index, source in enumerate(blocks):
        code = compile(source, f"{relpath}[block {index}]", "exec")
        try:
            exec(code, namespace)  # noqa: S102 - executing our own docs is the point
        except Exception as exc:
            pytest.fail(
                f"{relpath} fenced python block {index} failed: {exc!r}"
            )
