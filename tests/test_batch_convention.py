"""Convention guard: no scalar timeline queries inside Python loops.

The columnar power-series kernel exists so consumers batch their energy
questions (``energy_many`` / ``windowed_average`` / ``sample``) or use
an :class:`~repro.hardware.timeline.EnergyCursor` instead of hammering
scalar ``power_at``/``energy`` bisects from Python loops — the O(n·m)
anti-pattern the refactor removed.  This test scans every module under
``src/repro`` and fails on any scalar query call lexically inside a
``for``/``while`` body, so the slow path cannot creep back in.

Only the kernel itself (``hardware/timeline.py``, ``hardware/series.py``)
may walk segments in loops: it hosts the brute-force oracles the
property tests compare against.
"""

import ast
from pathlib import Path

#: scalar timeline/series query methods that must not be called per-item
BANNED_CALLS = frozenset(
    {"power_at", "energy", "average_power", "peak_power"}
)

#: the kernel itself — the only place segment walks belong
ALLOWED_FILES = frozenset(
    {
        "src/repro/hardware/timeline.py",
        "src/repro/hardware/series.py",
    }
)

REPO_ROOT = Path(__file__).resolve().parent.parent


def _violations():
    found = []
    for path in sorted((REPO_ROOT / "src" / "repro").rglob("*.py")):
        rel = path.relative_to(REPO_ROOT).as_posix()
        if rel in ALLOWED_FILES:
            continue
        tree = ast.parse(path.read_text(encoding="utf-8"), filename=rel)
        for loop in ast.walk(tree):
            if not isinstance(loop, (ast.For, ast.While, ast.comprehension)):
                continue
            body = loop.ifs if isinstance(loop, ast.comprehension) else loop.body
            for stmt in body:
                for sub in ast.walk(stmt):
                    if (
                        isinstance(sub, ast.Call)
                        and isinstance(sub.func, ast.Attribute)
                        and sub.func.attr in BANNED_CALLS
                    ):
                        found.append(
                            f"{rel}:{sub.lineno}: .{sub.func.attr}() "
                            f"called inside a loop"
                        )
    return found


def test_no_scalar_timeline_queries_inside_loops():
    violations = _violations()
    assert not violations, (
        "scalar timeline queries inside Python loops (batch them with "
        "energy_many/windowed_average/sample or use an EnergyCursor):\n"
        + "\n".join(violations)
    )


def test_guard_actually_detects_the_anti_pattern(tmp_path):
    """Self-check: the scanner flags the exact pattern it exists for."""
    offender = (
        "def f(timeline, windows):\n"
        "    total = 0.0\n"
        "    for t0, t1 in windows:\n"
        "        total += timeline.energy(t0, t1)\n"
        "    return total\n"
    )
    tree = ast.parse(offender)
    hits = [
        sub.func.attr
        for loop in ast.walk(tree)
        if isinstance(loop, (ast.For, ast.While))
        for stmt in loop.body
        for sub in ast.walk(stmt)
        if isinstance(sub, ast.Call)
        and isinstance(sub.func, ast.Attribute)
        and sub.func.attr in BANNED_CALLS
    ]
    assert hits == ["energy"]
