"""Convention guard: no scalar timeline queries inside Python loops.

The columnar power-series kernel exists so consumers batch their energy
questions (``energy_many`` / ``windowed_average`` / ``sample``) or use
an :class:`~repro.hardware.timeline.EnergyCursor` instead of hammering
scalar ``power_at``/``energy`` bisects from Python loops — the O(n·m)
anti-pattern the refactor removed.  This test scans every module under
``src/repro`` and fails on any scalar query call lexically inside a
``for``/``while`` body, so the slow path cannot creep back in.

Only the kernel itself (``hardware/timeline.py``, ``hardware/series.py``)
may walk segments in loops: it hosts the brute-force oracles the
property tests compare against.
"""

import ast
from pathlib import Path

#: scalar timeline/series query methods that must not be called per-item
BANNED_CALLS = frozenset(
    {"power_at", "energy", "average_power", "peak_power"}
)

#: the kernel itself — the only place segment walks belong
ALLOWED_FILES = frozenset(
    {
        "src/repro/hardware/timeline.py",
        "src/repro/hardware/series.py",
    }
)

#: per-event scheduling methods that must not be called per-item.  A
#: ``yield engine.timeout(dt)`` inside a daemon loop is a *wait* (one
#: event alive at a time) and stays legal; queueing many future events
#: one ``schedule``/``schedule_at``/``timeout_at`` call at a time is the
#: scalar anti-pattern the columnar engine's bulk paths (``run_cycles``
#: cycle work, the fabric's bulk holds) exist to replace.
BANNED_SCHEDULING = frozenset({"schedule", "schedule_at", "timeout_at"})

#: the engine internals — batching has to be built out of something
ALLOWED_SCHEDULING_PREFIX = "src/repro/sim/"

REPO_ROOT = Path(__file__).resolve().parent.parent


def _calls_in_loops(tree, rel, banned):
    found = []
    for loop in ast.walk(tree):
        if not isinstance(loop, (ast.For, ast.While, ast.comprehension)):
            continue
        body = loop.ifs if isinstance(loop, ast.comprehension) else loop.body
        for stmt in body:
            for sub in ast.walk(stmt):
                if (
                    isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Attribute)
                    and sub.func.attr in banned
                ):
                    found.append(
                        f"{rel}:{sub.lineno}: .{sub.func.attr}() "
                        f"called inside a loop"
                    )
    return found


def _violations():
    found = []
    for path in sorted((REPO_ROOT / "src" / "repro").rglob("*.py")):
        rel = path.relative_to(REPO_ROOT).as_posix()
        if rel in ALLOWED_FILES:
            continue
        tree = ast.parse(path.read_text(encoding="utf-8"), filename=rel)
        found.extend(_calls_in_loops(tree, rel, BANNED_CALLS))
    return found


def _scheduling_violations():
    found = []
    for path in sorted((REPO_ROOT / "src" / "repro").rglob("*.py")):
        rel = path.relative_to(REPO_ROOT).as_posix()
        if rel.startswith(ALLOWED_SCHEDULING_PREFIX):
            continue
        tree = ast.parse(path.read_text(encoding="utf-8"), filename=rel)
        found.extend(_calls_in_loops(tree, rel, BANNED_SCHEDULING))
    return found


def test_no_scalar_timeline_queries_inside_loops():
    violations = _violations()
    assert not violations, (
        "scalar timeline queries inside Python loops (batch them with "
        "energy_many/windowed_average/sample or use an EnergyCursor):\n"
        + "\n".join(violations)
    )


def test_no_per_event_scheduling_inside_loops():
    violations = _scheduling_violations()
    assert not violations, (
        "per-event scheduling inside Python loops outside repro.sim "
        "(charge the work in bulk — run_cycles cycle batches, the "
        "fabric's bulk holds — or wait on one event per pass):\n"
        + "\n".join(violations)
    )


def test_scheduling_guard_detects_the_anti_pattern():
    """Self-check: the scanner flags one schedule call per loop item."""
    offender = (
        "def f(engine, events):\n"
        "    for i, ev in enumerate(events):\n"
        "        engine.schedule_at(ev, float(i))\n"
    )
    hits = _calls_in_loops(ast.parse(offender), "x.py", BANNED_SCHEDULING)
    assert hits == ["x.py:3: .schedule_at() called inside a loop"]


def test_guard_actually_detects_the_anti_pattern(tmp_path):
    """Self-check: the scanner flags the exact pattern it exists for."""
    offender = (
        "def f(timeline, windows):\n"
        "    total = 0.0\n"
        "    for t0, t1 in windows:\n"
        "        total += timeline.energy(t0, t1)\n"
        "    return total\n"
    )
    tree = ast.parse(offender)
    hits = [
        sub.func.attr
        for loop in ast.walk(tree)
        if isinstance(loop, (ast.For, ast.While))
        for stmt in loop.body
        for sub in ast.walk(stmt)
        if isinstance(sub, ast.Call)
        and isinstance(sub.func, ast.Attribute)
        and sub.func.attr in BANNED_CALLS
    ]
    assert hits == ["energy"]
