"""Figure 6: memory-bound microbenchmark (32 MB buffer, 128 B stride)."""

import pytest

from benchmarks._harness import comparison_map, print_result, run_once
from repro.experiments import run_experiment


def bench_fig6_membound(benchmark):
    result = run_once(benchmark, lambda: run_experiment("fig6"))
    print_result(result)

    cmp = comparison_map(result)
    # E(600) ≈ 0.593 and D(600) ≈ 1.054 — the calibration anchors.
    assert cmp["e600"].measured == pytest.approx(cmp["e600"].paper, abs=0.03)
    assert cmp["d600"].measured == pytest.approx(cmp["d600"].paper, abs=0.01)
    # "40.7% more efficient": the energy saving at the best energy point.
    assert cmp["improvement_600"].measured == pytest.approx(
        cmp["improvement_600"].paper, abs=0.03
    )
    # Energy decreases monotonically with frequency; delay barely moves.
    points = result.series["stat"].points
    energies = [p.energy for p in points]
    assert energies == sorted(energies)
    assert all(p.delay < 1.06 for p in points)
