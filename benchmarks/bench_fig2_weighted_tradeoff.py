"""Figure 2: weighted-ED²P iso-efficiency trade-off curves."""

import pytest

from benchmarks._harness import comparison_map, print_result, run_once
from repro.experiments import run_experiment


def bench_fig2_weighted_tradeoff(benchmark):
    result = run_once(benchmark, lambda: run_experiment("fig2"))
    print_result(result)

    cmp = comparison_map(result)
    # §2.2: 5% slowdown at δ=0.2 needs ~13.1% savings.
    c = cmp["required_savings_delta0.2_at_5pct_delay"]
    assert c.measured == pytest.approx(c.paper, abs=0.01)
    # §2.2: 10% slowdown at δ=0.4 needs ~32% savings.
    c = cmp["required_savings_delta0.4_at_10pct_delay"]
    assert c.measured == pytest.approx(c.paper, abs=0.05)
