"""Extension: cluster power-budget sweep (cap vs performance trade-off).

Beyond the paper: enforce a global power cap on the simulated cluster
and record the trade-off curve — achieved power, worst window, windowed
compliance, and slowdown — for the naive uniform cap and the slack-aware
redistribution policy at each budget level.  The headline assertion is
the redistribution claim: at every cap, redistribution is never slower
than uniform capping, and on the slack-imbalanced workload it is
strictly faster while holding the same budget.
"""

from benchmarks._harness import FULL_SCALE, run_once, print_result
from repro.experiments.powercap import run as run_powercap


def bench_extension_powercap_tradeoff(benchmark):
    kwargs = {}
    if not FULL_SCALE:
        kwargs = {"transpose_n": 1500}

    result = run_once(benchmark, lambda: run_powercap(**kwargs))
    print_result(result)

    slowdown_margins = {
        c.quantity: c.measured
        for c in result.comparisons
        if "slowdown" in c.quantity
    }
    violations = {
        c.quantity: c.measured
        for c in result.comparisons
        if "violations" in c.quantity
    }
    assert slowdown_margins, "sweep produced no policy comparisons"
    # Redistribution never loses to the uniform baseline at any cap...
    for quantity, margin in slowdown_margins.items():
        assert margin <= 1e-9, f"{quantity}: redist slower by {margin:+.3f}"
    # ...wins outright where slack is imbalanced across ranks...
    imbalanced = [
        m for q, m in slowdown_margins.items() if q.startswith("imbalanced")
    ]
    assert imbalanced and all(m < -0.05 for m in imbalanced)
    # ...and every capped run held its budget, window by window.
    for quantity, count in violations.items():
        assert count == 0, f"{quantity}: {count} violating windows"
