"""Ablation: chunked link contention vs whole-message FIFO transfers.

DESIGN.md §6: with chunk-granularity contention (the default), the
transpose's 14-into-1 incast shares the root's link approximately fairly
and every sender alternates transmit/blocked phases.  Making the chunk as
large as a whole block turns the incast into strict message-at-a-time
FIFO: the aggregate delay barely changes (the root link is the bottleneck
either way — total bytes/bandwidth), but per-sender completion times
spread out dramatically, which is what the chunking choice actually
models.
"""

import numpy as np

from benchmarks._harness import run_once
from repro.analysis.report import format_table
from repro.hardware.calibration import DEFAULT_CALIBRATION
from repro.hardware.cluster import Cluster
from repro.hardware.spec import ClusterSpec
from repro.hardware.network import NetworkConfig
from repro.simmpi import run_spmd
from repro.util.units import KIB, MIB


N_SENDERS = 6
BLOCK = 4 * MIB


def _incast_finish_times(chunk_bytes: int):
    calibration = DEFAULT_CALIBRATION.with_overrides(
        network=NetworkConfig(chunk_bytes=chunk_bytes)
    )
    cluster = Cluster.from_spec(ClusterSpec.homogeneous(N_SENDERS + 1), calibration=calibration)
    finish = {}

    def program(comm):
        if comm.rank == 0:
            # Post every receive up front so all rendezvous transfers are
            # cleared to send and the *links* arbitrate (sequential
            # blocking recvs would serialise via the CTS handshake and
            # mask the transfer model entirely).
            reqs = [comm.irecv(source=src) for src in range(1, N_SENDERS + 1)]
            yield from comm.waitall(reqs)
            return None
        yield from comm.send(None, dest=0, nbytes=BLOCK)
        finish[comm.rank] = comm.wtime()
        return None

    result = run_spmd(cluster, program)
    return result.duration, sorted(finish.values())


def bench_ablation_network_chunking(benchmark):
    def experiment():
        return {
            "128 KiB chunks (default)": _incast_finish_times(128 * KIB),
            "whole-message FIFO": _incast_finish_times(BLOCK),
        }

    outcomes = run_once(benchmark, experiment)
    rows = []
    for name, (duration, finishes) in outcomes.items():
        spread = np.std(finishes)
        rows.append([name, f"{duration:.2f} s", f"{spread:.2f} s"])
    print()
    print(
        format_table(
            ["transfer model", "incast total time", "sender-finish spread"],
            rows,
            title=f"ablation: {N_SENDERS}-into-1 incast of {BLOCK // MIB} MiB blocks",
        )
    )

    d_chunked, f_chunked = outcomes["128 KiB chunks (default)"]
    d_fifo, f_fifo = outcomes["whole-message FIFO"]
    # Aggregate time is bandwidth-bound either way (within ~10 %)...
    assert abs(d_chunked - d_fifo) / d_fifo < 0.10
    # ...but FIFO spreads sender completions; chunked sharing clusters
    # them near the end.
    assert np.std(f_fifo) > 2 * np.std(f_chunked)
