"""Ablation: what if ``/proc/stat`` did not count busy-waiting as busy?

The paper's Figure-3 negative result (cpuspeed cannot save energy on MPI
codes) is caused by an *accounting artifact*: the kernel reports the
MPICH-1 progress engine's polling as busy time.  This ablation flips the
accounting so spin time reads as idle and shows that the very same
cpuspeed daemon then scales communication-bound ranks down and saves
substantial energy — isolating the mechanism.
"""

from benchmarks._harness import run_once
from repro.analysis.runner import cpuspeed_run
from repro.analysis.report import format_table
from repro.dvs.cpuspeed import CpuspeedConfig
from repro.hardware.calibration import DEFAULT_CALIBRATION
from repro.workloads.nas_ft import NasFT


def _cpuspeed_energy(spin_is_busy: bool):
    calibration = DEFAULT_CALIBRATION.with_overrides(
        procstat_spin_is_busy=spin_is_busy
    )
    # Long enough that the daemon's one-step-per-interval descent is a
    # small fraction of the run.
    workload = NasFT("A", n_ranks=8, iterations=16)
    run = cpuspeed_run(
        workload,
        config=CpuspeedConfig(interval=0.5),
        calibration=calibration,
    )
    return run.point


def bench_ablation_procstat_spin_accounting(benchmark):
    def experiment():
        return {
            "realistic (spin=busy)": _cpuspeed_energy(True),
            "ablated (spin=idle)": _cpuspeed_energy(False),
        }

    points = run_once(benchmark, experiment)
    realistic = points["realistic (spin=busy)"]
    ablated = points["ablated (spin=idle)"]

    rows = [
        [name, f"{p.energy:.0f} J", f"{p.delay:.1f} s"]
        for name, p in points.items()
    ]
    print()
    print(
        format_table(
            ["accounting", "cpuspeed energy", "delay"],
            rows,
            title="cpuspeed on FT.A under the two /proc/stat accountings",
        )
    )

    # With honest accounting, cpuspeed sees idle ranks and saves energy;
    # with the real accounting it cannot (the paper's Fig-3 mechanism).
    assert ablated.energy < 0.85 * realistic.energy
    # The time cost of the ablated daemon's scaling stays modest: the
    # slack it found was real.
    assert ablated.delay < 1.2 * realistic.delay
