"""Figure 4: NAS FT class C — cpuspeed / static / dynamic strategies."""

import pytest

from benchmarks._harness import FULL_SCALE, comparison_map, print_result, run_once
from repro.experiments import run_experiment
from repro.experiments.common import find_static


def bench_fig4_ft_c(benchmark):
    iterations = None if FULL_SCALE else 2
    result = run_once(
        benchmark, lambda: run_experiment("fig4", iterations=iterations)
    )
    print_result(result)

    cmp = comparison_map(result)
    # Static savings land near the paper's numbers.
    assert cmp["stat800_energy_saving"].measured == pytest.approx(
        cmp["stat800_energy_saving"].paper, abs=0.05
    )
    assert cmp["stat600_energy_saving"].measured == pytest.approx(
        cmp["stat600_energy_saving"].paper, abs=0.06
    )
    # Dynamic from 1.4 GHz: ~1/3 of the energy gone for <10% slowdown.
    assert cmp["dyn1400_energy_saving"].measured == pytest.approx(
        cmp["dyn1400_energy_saving"].paper, abs=0.06
    )
    assert cmp["dyn1400_delay_increase"].measured == pytest.approx(
        cmp["dyn1400_delay_increase"].paper, abs=0.04
    )

    stat = result.series["stat"].points
    dyn = result.series["dyn"].points
    # Dynamic beats static on energy at every base point except the
    # bottom rung (where they coincide)...
    for mhz in (800, 1000, 1200, 1400):
        assert find_static(dyn, mhz).energy < find_static(stat, mhz).energy
    # ...at a small delay cost (transition overhead), as in the paper.
    for mhz in (1000, 1200, 1400):
        assert find_static(dyn, mhz).delay >= find_static(stat, mhz).delay
    # Dynamic is nearly flat across base frequencies.
    dyn_e = [p.energy for p in dyn]
    assert max(dyn_e) - min(dyn_e) < 0.1
    # The weighted-ED2P efficiency gain at the HPC point is double-digit.
    assert cmp["hpc_improvement"].measured == pytest.approx(
        cmp["hpc_improvement"].paper, abs=0.05
    )
