"""Table 1: best operating points for mgrid-like and swim-like codes."""

from benchmarks._harness import comparison_map, print_result, run_once
from repro.experiments import run_experiment


def bench_table1_best_points(benchmark):
    result = run_once(benchmark, lambda: run_experiment("table1", iterations=10))
    print_result(result)

    cmp = comparison_map(result)
    # All six selections must match the paper's Table 1 exactly.
    for key in (
        "mgrid_hpc_mhz",
        "mgrid_energy_mhz",
        "mgrid_performance_mhz",
        "swim_hpc_mhz",
        "swim_energy_mhz",
        "swim_performance_mhz",
    ):
        assert cmp[key].measured == cmp[key].paper, key
