"""Figure 1: SPEC-like mgrid/swim energy-delay crescendos."""

from benchmarks._harness import print_result, run_once
from repro.experiments import run_experiment
from repro.experiments.common import find_static


def bench_fig1_spec_crescendo(benchmark):
    result = run_once(benchmark, lambda: run_experiment("fig1", iterations=10))
    print_result(result)

    mgrid = result.series["mgrid"].points
    swim = result.series["swim"].points
    # Fig 1a: mgrid pays a large slowdown for a small energy saving.
    m600 = find_static(mgrid, 600)
    assert m600.delay > 1.6
    assert m600.energy > 0.85
    # Fig 1b: swim converts small slowdowns into steady savings.
    s600 = find_static(swim, 600)
    assert s600.delay < 1.35
    assert s600.energy < 0.70
    # Energy falls monotonically with frequency for swim.
    energies = [p.energy for p in swim]
    assert energies == sorted(energies)
