"""The abstract's headline claims: savings within slowdown budgets."""

from benchmarks._harness import print_result, run_once
from repro.experiments import run_experiment
from repro.experiments.headline import best_saving_within_budget


def bench_headline_claims(benchmark):
    result = run_once(benchmark, lambda: run_experiment("headline"))
    print_result(result)

    # "energy savings as large as 25% with as little as 2% performance
    # impact" — application-dependent.  On our calibration FT's static-800
    # point lands at +5.3% (paper: +4.2%), so the ~5% showcase sits just
    # past a strict 5% cutoff; test the claim with a 6% budget and require
    # solid double-digit savings inside 5%.
    ft_points = result.series["FT.C"].points
    within_6 = best_saving_within_budget(ft_points, 0.06)
    assert within_6 is not None and (1 - within_6.energy) >= 0.25
    within_5 = best_saving_within_budget(ft_points, 0.05)
    assert within_5 is not None and (1 - within_5.energy) >= 0.15

    # The transpose's tight-budget row: double-digit savings within ~2%.
    tr_points = result.series["transpose"].points
    within_2 = best_saving_within_budget(tr_points, 0.02)
    assert within_2 is not None and (1 - within_2.energy) >= 0.10
