"""Helpers shared by the benchmark files.

Every benchmark regenerates one of the paper's tables or figures and
prints the same rows/series the paper reports (run with ``-s`` to see
them).  Each runs its experiment once (``rounds=1``) — the quantity of
interest is the *reproduced result*, not the harness's wall time, but
pytest-benchmark still records timing so simulator performance
regressions show up.

Full-paper-scale runs (class B/C with all 20 iterations) are enabled by
setting ``REPRO_FULL_SCALE=1``; the default scaled runs preserve the
normalized crescendos (iterations are statistically identical) while
keeping the whole suite to a few minutes.

Setting ``REPRO_CACHE_DIR=<path>`` runs every benchmark under the
content-addressed run cache (:mod:`repro.cache`): the first pass
simulates and stores every operating point, subsequent passes replay
them bit-identically.  Each benchmark's hit/miss/entry counts are
recorded in ``benchmark.extra_info["cache"]`` so the warm-vs-cold
speedup is visible directly in the pytest-benchmark JSON
(``--benchmark-json=out.json``).
"""

from __future__ import annotations

import os

FULL_SCALE = os.environ.get("REPRO_FULL_SCALE", "") not in ("", "0")
CACHE_DIR = os.environ.get("REPRO_CACHE_DIR", "").strip()


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark; return its result.

    Honours ``REPRO_CACHE_DIR``: when set, the run executes inside a
    sweep context backed by a :class:`repro.cache.store.RunCache` there,
    and the cache counters land in the benchmark's ``extra_info``.
    """
    if not CACHE_DIR:
        return benchmark.pedantic(fn, rounds=1, iterations=1)

    from repro.cache import RunCache, sweep_context

    cache = RunCache(CACHE_DIR)
    with sweep_context(cache=cache):
        result = benchmark.pedantic(fn, rounds=1, iterations=1)
    stats = cache.stats
    benchmark.extra_info["cache"] = {
        "dir": CACHE_DIR,
        "hits": stats.hits,
        "misses": stats.misses,
        "entries": stats.entries,
        "bytes": stats.bytes,
    }
    return result


def print_result(result) -> None:
    """Emit the experiment's rendered tables (visible with ``pytest -s``)."""
    print()
    print(result.render())


def comparison_map(result):
    """quantity → Comparison for assertion convenience."""
    return {c.quantity: c for c in result.comparisons}
