"""Helpers shared by the benchmark files.

Every benchmark regenerates one of the paper's tables or figures and
prints the same rows/series the paper reports (run with ``-s`` to see
them).  Each runs its experiment once (``rounds=1``) — the quantity of
interest is the *reproduced result*, not the harness's wall time, but
pytest-benchmark still records timing so simulator performance
regressions show up.

Full-paper-scale runs (class B/C with all 20 iterations) are enabled by
setting ``REPRO_FULL_SCALE=1``; the default scaled runs preserve the
normalized crescendos (iterations are statistically identical) while
keeping the whole suite to a few minutes.
"""

from __future__ import annotations

import os

FULL_SCALE = os.environ.get("REPRO_FULL_SCALE", "") not in ("", "0")


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark; return its result."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def print_result(result) -> None:
    """Emit the experiment's rendered tables (visible with ``pytest -s``)."""
    print()
    print(result.render())


def comparison_map(result):
    """quantity → Comparison for assertion convenience."""
    return {c.quantity: c for c in result.comparisons}
