"""Extension: tracing-layer overhead on a fig3-sized NAS FT run.

Three arms over the identical workload/strategy pair:

* ``untraced`` — no tracer anywhere (the pre-``repro.obs`` baseline);
* ``disabled`` — a disabled tracer installed as the active tracer, so
  every deep hook pays its ``active_tracer().enabled`` check and skips;
* ``enabled`` — full recording into the default 65536-slot rings.

The issue's bound (disabled ≤ 5 % over untraced) is asserted in
``tests/obs/test_overhead.py``; here the three arms land in the
pytest-benchmark JSON so the cost is tracked over time, and the
benchmark asserts the *semantic* price instead: all three arms produce
bit-identical energy/delay points.
"""

import time

from benchmarks._harness import FULL_SCALE, run_once
from repro.analysis.runner import run_measured
from repro.dvs.strategy import StaticStrategy
from repro.obs.tracer import Tracer, tracing
from repro.workloads.nas_ft import NasFT


def _workload():
    if FULL_SCALE:
        return NasFT("B", n_ranks=8, iterations=4)
    return NasFT("S", n_ranks=4, iterations=2)


def _run():
    return run_measured(_workload(), StaticStrategy(1.4e9))


def bench_extension_tracing_overhead(benchmark):
    def all_arms():
        t0 = time.perf_counter()
        untraced = _run()
        t_untraced = time.perf_counter() - t0

        t0 = time.perf_counter()
        with tracing(Tracer(enabled=False)):
            disabled = _run()
        t_disabled = time.perf_counter() - t0

        enabled_tracer = Tracer()
        t0 = time.perf_counter()
        with tracing(enabled_tracer):
            enabled = _run()
        t_enabled = time.perf_counter() - t0

        return {
            "points": (untraced.point, disabled.point, enabled.point),
            "seconds": {
                "untraced": t_untraced,
                "disabled": t_disabled,
                "enabled": t_enabled,
            },
            "records": len(enabled_tracer),
            "dropped": enabled_tracer.dropped,
        }

    result = run_once(benchmark, all_arms)
    benchmark.extra_info["tracing"] = {
        "seconds": result["seconds"],
        "records": result["records"],
        "dropped": result["dropped"],
    }

    untraced_pt, disabled_pt, enabled_pt = result["points"]
    # Tracing observes; it must never perturb the simulation.
    assert disabled_pt == untraced_pt
    assert enabled_pt == untraced_pt
    assert result["records"] > 0
