"""Extension: columnar power-series kernel vs scalar segment walks.

The workload is the issue's sizing: 16 nodes, ~10k power segments per
node, 1k query windows.  Two arms answer the same windowed-energy
questions over identical traces:

* ``scalar`` — the pre-kernel path: one Python segment walk
  (``PowerTimeline._energy_walk``) per node per window;
* ``batch``  — one ``energy_many`` prefix-sum query per node for all
  windows at once against the frozen :class:`PowerSeries`.

The benchmark asserts both the *semantic* price (answers agree to
1e-6 J, i.e. prefix-sum rounding only) and the *performance* claim from
the issue: the batch path is at least 10× faster per query.
"""

import time

import numpy as np

from benchmarks._harness import run_once
from repro.hardware.timeline import PowerTimeline

N_NODES = 16
N_SEGMENTS = 10_000
N_WINDOWS = 1_000


def _build_timelines():
    """Deterministic pseudo-random piecewise traces (no RNG in arms)."""
    rng = np.random.default_rng(20260806)
    timelines = []
    for node in range(N_NODES):
        tl = PowerTimeline(start_time=0.0, initial_power=50.0 + node)
        t = 0.0
        dts = rng.uniform(1e-3, 0.2, N_SEGMENTS)
        watts = rng.uniform(5.0, 250.0, N_SEGMENTS)
        for dt, w in zip(dts, watts):
            t += dt
            tl.set_power(float(t), float(w))
        timelines.append(tl)
    return timelines


def _build_windows(t_end):
    rng = np.random.default_rng(4223)
    starts = rng.uniform(0.0, t_end * 0.9, N_WINDOWS)
    widths = rng.uniform(1e-3, t_end * 0.1, N_WINDOWS)
    return np.column_stack((starts, starts + widths))


def bench_extension_timeline_kernel(benchmark):
    timelines = _build_timelines()
    t_end = min(tl.last_change for tl in timelines)
    windows = _build_windows(t_end)

    def both_arms():
        t0 = time.perf_counter()
        scalar = np.array(
            [
                [tl._energy_walk(float(a), float(b)) for a, b in windows]
                for tl in timelines
            ]
        )
        t_scalar = time.perf_counter() - t0

        t0 = time.perf_counter()
        batch = np.array([tl.series().energy_many(windows) for tl in timelines])
        t_batch = time.perf_counter() - t0
        return scalar, batch, t_scalar, t_batch

    scalar, batch, t_scalar, t_batch = run_once(benchmark, both_arms)

    np.testing.assert_allclose(batch, scalar, rtol=1e-9, atol=1e-6)
    speedup = t_scalar / t_batch
    benchmark.extra_info["timeline_kernel"] = {
        "nodes": N_NODES,
        "segments_per_node": N_SEGMENTS,
        "windows": N_WINDOWS,
        "scalar_s": round(t_scalar, 4),
        "batch_s": round(t_batch, 4),
        "speedup": round(speedup, 1),
    }
    print(
        f"\ntimeline kernel: {N_NODES} nodes x {N_SEGMENTS} segments x "
        f"{N_WINDOWS} windows -> scalar {t_scalar:.3f}s, "
        f"batch {t_batch:.3f}s ({speedup:.0f}x)"
    )
    assert speedup >= 10.0, (
        f"batch path only {speedup:.1f}x faster than scalar walks "
        f"(scalar {t_scalar:.3f}s, batch {t_batch:.3f}s)"
    )
