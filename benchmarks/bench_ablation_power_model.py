"""Ablation: per-activity power factors vs a flat busy/idle model.

DESIGN.md §6: collapsing the activity ladder (ACTIVE = MEMSTALL = PROTO =
SPIN = 1.0) is what a naive "CPU busy ⇒ full power" model would do.  The
memory-bound crescendo then overstates the energy saving at 600 MHz,
because a DRAM-stalled core is billed at full dynamic power.
"""

import pytest

from benchmarks._harness import run_once
from repro.analysis.report import format_table
from repro.analysis.runner import static_crescendo
from repro.hardware.activity import CpuActivity
from repro.hardware.calibration import DEFAULT_CALIBRATION
from repro.util.units import MHZ
from repro.workloads.micro import MemoryBoundMicro


FLAT_FACTORS = {
    CpuActivity.ACTIVE: 1.0,
    CpuActivity.MEMSTALL: 1.0,
    CpuActivity.PROTO: 1.0,
    CpuActivity.SPIN: 1.0,
    CpuActivity.IDLE: 0.12,
}


def _membound_e600(calibration) -> float:
    workload = MemoryBoundMicro(passes=40)
    runs = static_crescendo(
        workload, [600 * MHZ, 1400 * MHZ], calibration=calibration
    )
    return runs[0].point.energy / runs[1].point.energy


def bench_ablation_flat_power_model(benchmark):
    def experiment():
        return {
            "per-activity (calibrated)": _membound_e600(DEFAULT_CALIBRATION),
            "flat busy/idle": _membound_e600(
                DEFAULT_CALIBRATION.with_overrides(activity_factors=FLAT_FACTORS)
            ),
        }

    ratios = run_once(benchmark, experiment)
    rows = [[name, f"{r:.3f}"] for name, r in ratios.items()]
    print()
    print(
        format_table(
            ["power model", "memory-bound E(600)/E(1400)"],
            rows,
            title="ablation: activity factors vs flat model (paper: 0.593)",
        )
    )

    calibrated = ratios["per-activity (calibrated)"]
    flat = ratios["flat busy/idle"]
    # Calibrated model reproduces the paper's 0.593; the flat model
    # overstates the saving (a stalled core billed at full power).
    assert calibrated == pytest.approx(0.593, abs=0.03)
    assert flat < calibrated - 0.05
