"""Table 2: the Pentium M frequency/voltage ladder."""

import pytest

from benchmarks._harness import comparison_map, print_result, run_once
from repro.experiments import run_experiment


def bench_table2_operating_points(benchmark):
    result = run_once(benchmark, lambda: run_experiment("table2"))
    print_result(result)

    cmp = comparison_map(result)
    for mhz in (600, 800, 1000, 1200, 1400):
        c = cmp[f"voltage_at_{mhz}MHz"]
        assert c.measured == pytest.approx(c.paper)
