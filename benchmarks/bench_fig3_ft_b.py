"""Figure 3: NAS FT class B on 8 nodes — cpuspeed vs static DVS."""

import pytest

from benchmarks._harness import FULL_SCALE, comparison_map, print_result, run_once
from repro.experiments import run_experiment
from repro.experiments.common import find_static


def bench_fig3_ft_b(benchmark):
    iterations = None if FULL_SCALE else 4
    result = run_once(
        benchmark, lambda: run_experiment("fig3", iterations=iterations)
    )
    print_result(result)

    cmp = comparison_map(result)
    # The headline: big savings at 600 MHz with modest slowdown.
    assert cmp["stat600_energy"].measured == pytest.approx(
        cmp["stat600_energy"].paper, abs=0.06
    )
    assert cmp["stat600_delay"].measured == pytest.approx(
        cmp["stat600_delay"].paper, abs=0.05
    )
    # cpuspeed is pinned near the fastest point by busy-wait accounting.
    assert cmp["cpuspeed_energy"].measured > 0.95
    assert abs(cmp["cpuspeed_delay"].measured - 1.0) < 0.05

    # Crescendo monotonicity (who wins at every rung).
    stat = result.series["stat"].points
    energies = [p.energy for p in stat]
    delays = [p.delay for p in stat]
    assert energies == sorted(energies)
    assert delays == sorted(delays, reverse=True)
    # 800 MHz sits between the extremes, as in the figure.
    p800 = find_static(stat, 800)
    assert 0.65 < p800.energy < 0.85
