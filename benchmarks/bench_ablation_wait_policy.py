"""Ablation: the MPI wait policy (spin-then-block vs always-spin).

DESIGN.md §6: the transpose's modest savings (Fig 5) depend on
backpressured senders truly *blocking* in the kernel.  Forcing them to
spin forever (``spin_block_threshold = inf``, a pure busy-wait MPI) makes
the whole cluster's waiting time frequency-scaled, inflating the static
DVS savings well past what the paper measured — evidence that the
block-on-backpressure mechanism, not just slack itself, sets the size of
the opportunity.
"""

from benchmarks._harness import run_once
from repro.analysis.report import format_table
from repro.analysis.runner import static_crescendo
from repro.hardware.calibration import DEFAULT_CALIBRATION
from repro.util.units import MHZ
from repro.workloads.transpose import ParallelTranspose


def _transpose_saving_600(spin_block_threshold: float) -> float:
    calibration = DEFAULT_CALIBRATION.with_overrides(
        spin_block_threshold=spin_block_threshold
    )
    workload = ParallelTranspose(matrix_n=6000, grid_rows=5, grid_cols=3)
    runs = static_crescendo(
        workload, [600 * MHZ, 1400 * MHZ], calibration=calibration
    )
    slow, fast = runs[0].point, runs[1].point
    return 1.0 - (slow.energy / fast.energy)


def bench_ablation_wait_policy(benchmark):
    def experiment():
        return {
            "spin-then-block (real MPICH)": _transpose_saving_600(0.005),
            "always-spin": _transpose_saving_600(float("inf")),
            "block-immediately": _transpose_saving_600(0.0),
        }

    savings = run_once(benchmark, experiment)
    rows = [[name, f"{s * 100:.1f}%"] for name, s in savings.items()]
    print()
    print(
        format_table(
            ["wait policy", "transpose energy saving at 600 MHz"],
            rows,
            title="ablation: wait policy vs static-DVS opportunity",
        )
    )

    real = savings["spin-then-block (real MPICH)"]
    spin = savings["always-spin"]
    block = savings["block-immediately"]
    # Spinning forever turns blocked-idle time into f-scaled busy time,
    # inflating apparent savings well past the paper's ~20%.
    assert spin > real + 0.05
    # Blocking immediately barely moves the result (the 5 ms spin window
    # is short relative to the transfer turns).
    assert abs(block - real) < 0.05
