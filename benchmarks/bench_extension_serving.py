"""Extension: serving-path throughput and energy-attribution join cost.

One open-loop three-tier run at ≥1k requests, timed in two pieces:

* the simulation itself — reported as *simulated requests per
  wall-second* (the serving runner's end-to-end cost: arrivals, queue
  hops, ``run_cycles`` service, record assembly);
* the per-request energy-attribution join — every request's tier spans
  batch-queried against the frozen per-node power series
  (``energy_many``), the cost the ``ServingReport`` pays on top of the
  run.

The benchmark asserts the ledger, not a latency: attributed + residual
energy must reproduce the run total to float round-off, and every
request must be accounted for.
"""

import time

from benchmarks._harness import FULL_SCALE, run_once
from repro.metrics.serving import attribute_request_energy
from repro.serving.arrivals import PoissonArrivals
from repro.serving.runner import run_serving
from repro.serving.spec import ServingWorkload, TierSpec


def _workload():
    rate, horizon = (200.0, 30.0) if FULL_SCALE else (110.0, 10.0)
    return ServingWorkload(
        tiers=(
            TierSpec("frontend", nodes=1, service_cycles=1.5e6),
            TierSpec("app", nodes=2, service_cycles=6.0e6),
            TierSpec("storage", nodes=1, service_cycles=2.0e6),
        ),
        arrivals=PoissonArrivals(rate, seed=1),
        horizon_s=horizon,
        timeout_s=5.0,
        name="bench-serving",
    )


def bench_extension_serving(benchmark):
    def simulate_and_join():
        t0 = time.perf_counter()
        run = run_serving(_workload())
        t_sim = time.perf_counter() - t0

        t0 = time.perf_counter()
        per_request, attributed = attribute_request_energy(
            run.cluster, run.records
        )
        t_join = time.perf_counter() - t0

        return {
            "run": run,
            "per_request": per_request,
            "attributed": attributed,
            "sim_seconds": t_sim,
            "join_seconds": t_join,
        }

    result = run_once(benchmark, simulate_and_join)
    run = result["run"]
    n_requests = len(run.records)
    benchmark.extra_info["serving"] = {
        "requests": n_requests,
        "sim_seconds": result["sim_seconds"],
        "requests_per_second": n_requests / result["sim_seconds"],
        "join_seconds": result["join_seconds"],
        "join_microseconds_per_request": (
            result["join_seconds"] / n_requests * 1e6
        ),
    }

    assert n_requests >= 1000, f"need >= 1000 requests, got {n_requests}"
    # Every request accounted for, and the ledger closes exactly:
    # the per-request map sums to the attributed total, which never
    # exceeds the run's total energy.
    assert set(result["per_request"]) == {r.request_id for r in run.records}
    assert (
        abs(sum(result["per_request"].values()) - result["attributed"]) < 1e-9
    )
    assert 0.0 < result["attributed"] <= run.energy_j + 1e-9
