"""Extension: the elastic control plane vs pure DVFS on a diurnal trace.

One two-tier serving run per (budget depth, knob set): the full elastic
plane (DVFS → core allocation → node gating) and its dvfs-only
degeneration, each at a shallow budget (above the cluster's DVFS floor)
and a deep one (below it).  The quantity of interest is the claim, not
the wall time: at the shallow budget both governors comply; at the deep
budget the elastic plane gates its way under a target the DVFS ladder
cannot reach — while still serving every request through the drain.
"""

import time

from benchmarks._harness import FULL_SCALE, run_once
from repro.metrics.serving import build_serving_report
from repro.serving.arrivals import DiurnalArrivals
from repro.serving.elastic import ElasticServingPolicy
from repro.serving.runner import run_serving
from repro.serving.spec import ServingWorkload, TierSpec

#: Above the 4-node DVFS floor (~38 W): any governor can comply.
SHALLOW_WATTS = 42.0
#: Below the floor: only gating reaches it.
DEEP_WATTS = 26.0


def _workload():
    horizon = 16.0 if FULL_SCALE else 6.0
    return ServingWorkload(
        tiers=(
            TierSpec("web", nodes=2, service_cycles=2.0e6),
            TierSpec("app", nodes=2, service_cycles=4.0e6),
        ),
        arrivals=DiurnalArrivals(
            base_rate=30.0, swing=0.6, period_s=horizon / 2.0, seed=7
        ),
        horizon_s=horizon,
        name="bench-elastic",
    )


def bench_extension_elastic(benchmark):
    def contend():
        t0 = time.perf_counter()
        reports = {}
        for budget in (SHALLOW_WATTS, DEEP_WATTS):
            for knobs in (None, ("dvfs",)):
                kwargs = {} if knobs is None else {"knobs": knobs}
                run = run_serving(
                    _workload(),
                    ElasticServingPolicy(budget_watts=budget, **kwargs),
                )
                key = (budget, "elastic" if knobs is None else "dvfs-only")
                reports[key] = build_serving_report(run)
        return {"reports": reports, "seconds": time.perf_counter() - t0}

    result = run_once(benchmark, contend)
    reports = result["reports"]
    benchmark.extra_info["elastic"] = {
        f"{label}@{budget:g}W": {
            "watts": r.average_power_w,
            "escalation": r.cap_escalation,
            "met": r.average_power_w <= budget,
        }
        for (budget, label), r in reports.items()
    }

    # Nothing is ever dropped — gating drains, the runner re-enqueues.
    for r in reports.values():
        assert r.completed == r.n_requests and r.dropped == 0

    # Shallow: both governors comply, and no node is ever gated (the
    # blind first window may transiently touch the core knob — the
    # safety-first allocation assumes worst-case all-ACTIVE power).
    for label in ("elastic", "dvfs-only"):
        shallow = reports[(SHALLOW_WATTS, label)]
        assert shallow.average_power_w <= SHALLOW_WATTS
        assert shallow.cap_escalation in ("dvfs", "cores")

    # Deep: the elastic plane meets a budget DVFS alone cannot.
    deep_elastic = reports[(DEEP_WATTS, "elastic")]
    deep_dvfs = reports[(DEEP_WATTS, "dvfs-only")]
    assert deep_elastic.average_power_w <= DEEP_WATTS
    assert deep_elastic.cap_escalation == "gate"
    assert deep_dvfs.average_power_w > DEEP_WATTS
    assert deep_elastic.average_power_w < deep_dvfs.average_power_w
