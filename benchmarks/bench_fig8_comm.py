"""Figure 8: communication microbenchmarks (MPI round trips)."""

import pytest

from benchmarks._harness import comparison_map, print_result, run_once
from repro.experiments import run_experiment
from repro.experiments.common import find_static


def bench_fig8_comm(benchmark):
    result = run_once(benchmark, lambda: run_experiment("fig8"))
    print_result(result)

    cmp = comparison_map(result)
    # Both message shapes: steep energy fall, nearly flat delay.
    for key, fig in (("256KB", "fig8a"), ("4KBstride64", "fig8b")):
        e600 = cmp[f"{key}_e600"]
        d600 = cmp[f"{key}_d600"]
        assert e600.measured == pytest.approx(e600.paper, abs=0.10)
        assert d600.measured == pytest.approx(d600.paper, abs=0.04)
        points = result.series[key].points
        energies = [p.energy for p in points]
        assert energies == sorted(energies)
    # The strided 4 KB message pays a packing cost, so its delay
    # crescendo is steeper than the contiguous 256 KB one.
    d_strided = find_static(result.series["4KBstride64"].points, 600).delay
    d_contig = find_static(result.series["256KB"].points, 600).delay
    assert d_strided > d_contig
