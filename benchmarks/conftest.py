"""Benchmark-suite conftest (helpers live in ``benchmarks._harness``)."""
