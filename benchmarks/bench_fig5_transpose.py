"""Figure 5: 12K×12K parallel matrix transpose on 15 processors."""

import pytest

from benchmarks._harness import comparison_map, print_result, run_once
from repro.experiments import run_experiment
from repro.experiments.common import find_static


def bench_fig5_transpose(benchmark):
    result = run_once(benchmark, lambda: run_experiment("fig5"))
    print_result(result)

    cmp = comparison_map(result)
    # Static 600: ~20 % savings for ~2-3 % slowdown.
    assert cmp["stat600_energy_saving"].measured == pytest.approx(
        cmp["stat600_energy_saving"].paper, abs=0.04
    )
    assert cmp["stat600_delay_increase"].measured == pytest.approx(
        cmp["stat600_delay_increase"].paper, abs=0.02
    )
    # Transpose saves markedly less than FT (load imbalance leaves the
    # blocked senders near idle power already): savings < 25 %.
    assert cmp["stat600_energy_saving"].measured < 0.25
    # Best energy point is static 600 MHz, as in the paper.
    assert cmp["best_energy_mhz"].measured == 600

    stat = result.series["stat"].points
    dyn = result.series["dyn"].points
    # Dynamic energy below static at every base point, delay at or above.
    for mhz in (800, 1000, 1200, 1400):
        s, d = find_static(stat, mhz), find_static(dyn, mhz)
        assert d.energy < s.energy
        assert d.delay >= s.delay
    # cpuspeed helps far less than the static optimum.
    cpuspeed_saving = cmp["cpuspeed_energy_saving"].measured
    assert cpuspeed_saving < cmp["stat600_energy_saving"].measured
