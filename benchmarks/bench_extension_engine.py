"""Extension: columnar engine speedup over the scalar oracle.

Two cases, each running the *same* simulation under both engine modes
and asserting the columnar/scalar wall-clock ratio:

* ``ft_c`` — NAS FT class C on 16 ranks under cpuspeed daemons.  The
  hot path is pure event churn (per-chunk network events, per-slice
  ``run_cycles``), where frontier batching and bulk holds pay directly.
  Fault-free, so the two runs must also be **bit-identical** in energy
  and delay.
* ``chaos`` — the faulted capped sweep (hardened + fair-weather
  governor against the same accelerated fault plan) at 32 KiB network
  chunks, the contention granularity the scalar engine pays one event
  per chunk for while the bulk path posts one completion per message.
  Faulted runs stay delay-identical; energy may differ in the last few
  parts in 1e4 from same-timestamp tie ordering under faulted
  contention (see docs/ENGINE.md), so the assertion here is the
  speedup and the identical violation/repair counts, not bitwise
  energy.

Both cases assert **≥ 10×** (issue acceptance).  Measured on the dev
container: ~13× for ft_c, ~18-25× reduced / ~40-48× full-scale for
chaos.  ``REPRO_FULL_SCALE=1`` grows chaos to class C on 16 ranks
(~10 s scalar); the default keeps the scalar leg under ~3 s.
"""

import time
from dataclasses import replace

import pytest

from benchmarks._harness import FULL_SCALE, run_once
from repro.analysis.runner import run_measured
from repro.dvs.strategy import CpuspeedStrategy, StaticStrategy
from repro.faults.spec import FaultPlan
from repro.faults.sweep import ChaosTask, run_chaos_sweep
from repro.hardware.calibration import DEFAULT_CALIBRATION
from repro.hardware.reliability import ReliabilityModel
from repro.sim import using_engine_mode
from repro.workloads.nas_ft import NasFT

KIB = 1024
MIN_SPEEDUP = 10.0


def _timed(mode, fn):
    with using_engine_mode(mode):
        t0 = time.perf_counter()
        result = fn()
        return result, time.perf_counter() - t0


def _fine_chunks():
    """The default calibration at 32 KiB network chunks.

    Chunk size is the fabric's contention granularity: the scalar engine
    schedules one event per chunk, the columnar bulk path posts one
    completion per message, so finer chunks probe exactly the gap this
    engine exists to close (and match the chaos case's fabric).
    """
    return DEFAULT_CALIBRATION.with_overrides(
        network=replace(DEFAULT_CALIBRATION.network, chunk_bytes=32 * KIB)
    )


def bench_extension_engine_ft_c(benchmark):
    workload = NasFT("C", n_ranks=16, iterations=1)
    calibration = _fine_chunks()

    def both_modes():
        scalar, t_scalar = _timed(
            "scalar",
            lambda: run_measured(workload, CpuspeedStrategy(), calibration),
        )
        columnar, t_columnar = _timed(
            "columnar",
            lambda: run_measured(workload, CpuspeedStrategy(), calibration),
        )
        return {
            "scalar": scalar.point,
            "columnar": columnar.point,
            "speedup": t_scalar / t_columnar,
            "t_scalar": t_scalar,
            "t_columnar": t_columnar,
        }

    out = run_once(benchmark, both_modes)
    # Fault-free: the columnar engine is an exact drop-in, not approximate.
    assert out["columnar"].energy == out["scalar"].energy
    assert out["columnar"].delay == out["scalar"].delay
    assert out["speedup"] >= MIN_SPEEDUP, (
        f"columnar speedup {out['speedup']:.1f}x below {MIN_SPEEDUP:.0f}x "
        f"(scalar {out['t_scalar']:.3f}s, columnar {out['t_columnar']:.3f}s)"
    )
    benchmark.extra_info["engine"] = {
        "speedup": round(out["speedup"], 2),
        "scalar_s": round(out["t_scalar"], 4),
        "columnar_s": round(out["t_columnar"], 4),
    }
    print(
        f"\nft_c: scalar {out['t_scalar']:.3f}s, columnar "
        f"{out['t_columnar']:.3f}s -> {out['speedup']:.1f}x (bit-identical)"
    )


def _chaos_tasks():
    """Two chaos tasks (hardened + fair-weather) on a 32 KiB-chunk fabric."""
    if FULL_SCALE:
        workload = NasFT("C", n_ranks=16, iterations=1)
        acceleration, interval = 1e8, 1.0
    else:
        workload = NasFT("B", n_ranks=8, iterations=2)
        acceleration, interval = 2e8, 0.5
    calibration = _fine_chunks()
    base = run_measured(workload, StaticStrategy(1.4e9), calibration=calibration)
    plan = FaultPlan.from_reliability(
        ReliabilityModel(annual_failure_rate=0.025),
        workload.n_ranks,
        base.point.delay,
        seed=0,
        acceleration=acceleration,
        downtime_s=0.3,
        dropout_weight=1.0,
        dropout_s=0.6,
        stuck_weight=1.0,
        stuck_s=0.6,
    )
    budget = 0.85 * base.point.energy / base.point.delay
    return [
        ChaosTask(
            workload,
            plan,
            budget,
            hardened=hardened,
            interval=interval,
            calibration=calibration,
        )
        for hardened in (True, False)
    ]


def bench_extension_engine_chaos(benchmark):
    tasks = _chaos_tasks()

    def both_modes():
        scalar, t_scalar = _timed("scalar", lambda: run_chaos_sweep(tasks))
        columnar, t_columnar = _timed("columnar", lambda: run_chaos_sweep(tasks))
        return {
            "scalar": scalar,
            "columnar": columnar,
            "speedup": t_scalar / t_columnar,
            "t_scalar": t_scalar,
            "t_columnar": t_columnar,
        }

    out = run_once(benchmark, both_modes)
    for s_outcome, c_outcome in zip(out["scalar"], out["columnar"]):
        # Faulted runs are delay-identical with identical chaos scores;
        # energy may drift by tie ordering only (documented contract).
        assert c_outcome.point.delay == s_outcome.point.delay
        assert (
            c_outcome.report.post_recovery_violations
            == s_outcome.report.post_recovery_violations
        )
        assert c_outcome.point.energy == pytest.approx(
            s_outcome.point.energy, rel=1e-3
        )
    assert out["speedup"] >= MIN_SPEEDUP, (
        f"columnar chaos speedup {out['speedup']:.1f}x below "
        f"{MIN_SPEEDUP:.0f}x (scalar {out['t_scalar']:.3f}s, columnar "
        f"{out['t_columnar']:.3f}s)"
    )
    benchmark.extra_info["engine"] = {
        "speedup": round(out["speedup"], 2),
        "scalar_s": round(out["t_scalar"], 4),
        "columnar_s": round(out["t_columnar"], 4),
        "faults": len(tasks[0].plan.faults),
    }
    print(
        f"\nchaos: scalar {out['t_scalar']:.3f}s, columnar "
        f"{out['t_columnar']:.3f}s -> {out['speedup']:.1f}x "
        f"({len(tasks[0].plan.faults)} faults)"
    )
