"""Extension: 1024-node mixed-generation clusters from a declarative spec.

The spec layer's scale claim: `Cluster.from_spec` builds per-*group*
ladders and power models, so a four-group, 1024-node heterogeneous
machine costs four model constructions plus cheap per-node wiring — and
an MPI job runs on it (extra nodes idle at base power) within budget.

Asserts the structural economy (nodes in one group share table and
power-model objects), determinism (two constructions produce identical
node frequencies), and the wall-clock budget for construct + run.
"""

import time

from benchmarks._harness import run_once
from repro.analysis.runner import run_measured
from repro.dvs.strategy import StaticStrategy
from repro.hardware.cluster import Cluster
from repro.hardware.scaling import CORE_IO, tech_node
from repro.hardware.spec import ClusterSpec, NodeSpec
from repro.workloads.nas_ft import NasFT

N_NODES = 1024
N_RANKS = 16

SPEC = ClusterSpec(
    groups=(
        NodeSpec(count=256),                                       # 45nm o3
        NodeSpec(count=256, tech=tech_node(22, "itrs")),
        NodeSpec(count=256, tech=tech_node(8, "itrs")),
        NodeSpec(count=256, tech=tech_node(8, "itrs"), core=CORE_IO),
    )
)

#: generous ceilings — the point is "within budget", not a horse race
CONSTRUCT_BUDGET_S = 2.0
RUN_BUDGET_S = 30.0


def bench_extension_scaling_1024_nodes(benchmark):
    assert SPEC.n_nodes == N_NODES

    def construct_and_run():
        t0 = time.perf_counter()
        cluster = Cluster.from_spec(SPEC)
        t_construct = time.perf_counter() - t0

        t0 = time.perf_counter()
        run = run_measured(
            NasFT("S", n_ranks=N_RANKS, iterations=1),
            StaticStrategy(1.4e9),
            spec=SPEC,
        )
        t_run = time.perf_counter() - t0
        return cluster, run, t_construct, t_run

    cluster, run, t_construct, t_run = run_once(benchmark, construct_and_run)

    # per-group model economy: one ladder/power model per group, shared
    # by identity across that group's nodes
    for start in (0, 256, 512, 768):
        group = cluster.nodes[start : start + 256]
        assert all(n.table is group[0].table for n in group)
        assert all(n.power_model is group[0].power_model for n in group)
    assert len({id(n.table) for n in cluster.nodes}) == 4

    # the run really happened on the 1024-node machine
    assert run.cluster.n_nodes == N_NODES
    assert run.point.energy > 0 and run.point.delay > 0

    benchmark.extra_info["scaling_1024"] = {
        "nodes": N_NODES,
        "groups": len(SPEC.groups),
        "ranks": N_RANKS,
        "construct_s": round(t_construct, 3),
        "run_s": round(t_run, 3),
    }
    print(
        f"\n1024-node spec ({SPEC.describe()}): "
        f"construct {t_construct:.3f}s, FT.S run {t_run:.3f}s"
    )
    assert t_construct < CONSTRUCT_BUDGET_S, (
        f"construction took {t_construct:.2f}s (budget {CONSTRUCT_BUDGET_S}s)"
    )
    assert t_run < RUN_BUDGET_S, (
        f"run took {t_run:.2f}s (budget {RUN_BUDGET_S}s)"
    )
