"""Extension: governor shoot-out on a communication-bound workload.

Beyond the paper's three strategies, compare every frequency-management
policy in the repo on NAS FT: static max, static min, cpuspeed, ondemand,
the paper's hand-tuned dynamic control, and the adaptive learned runtime.
The expected ordering *is* the paper's thesis: utilisation-driven
governors (cpuspeed, ondemand) cannot see MPI slack, application-level
control (dynamic, adaptive) can.
"""

from benchmarks._harness import run_once
from repro.analysis.report import format_table
from repro.analysis.runner import run_measured
from repro.dvs import (
    AdaptiveStrategy,
    CpuspeedStrategy,
    DynamicStrategy,
    OndemandStrategy,
    StaticStrategy,
)
from repro.util.units import MHZ
from repro.workloads.nas_ft import NasFT


def make_workload():
    return NasFT("A", n_ranks=8, iterations=6)


def bench_extension_governor_comparison(benchmark):
    def experiment():
        strategies = {
            "static-max": StaticStrategy(1400 * MHZ),
            "static-min": StaticStrategy(600 * MHZ),
            "cpuspeed": CpuspeedStrategy(),
            "ondemand": OndemandStrategy(),
            "dynamic": DynamicStrategy(1400 * MHZ, regions=["fft"]),
            "adaptive": AdaptiveStrategy(1400 * MHZ),
        }
        return {
            name: run_measured(make_workload(), strategy).point
            for name, strategy in strategies.items()
        }

    points = run_once(benchmark, experiment)
    base = points["static-max"]
    rows = []
    for name, p in points.items():
        rows.append(
            [
                name,
                f"{p.energy:.0f} J",
                f"{p.delay:.2f} s",
                f"{(1 - p.energy / base.energy) * 100:.1f}%",
            ]
        )
    print()
    print(
        format_table(
            ["strategy", "energy", "delay", "energy saved vs static-max"],
            rows,
            title="governor comparison on NAS FT class A (8 ranks)",
        )
    )

    def saving(name):
        return 1 - points[name].energy / base.energy

    # The paper's thesis as an ordering: utilisation-driven governors save
    # (almost) nothing; application-directed control saves a lot.
    assert saving("cpuspeed") < 0.05
    assert saving("ondemand") < 0.10
    assert saving("dynamic") > 0.25
    assert saving("adaptive") > 0.20
    # The learned runtime approaches the hand-tuned oracle.
    assert points["adaptive"].energy < points["dynamic"].energy * 1.15
    # And static-min shows the savings exist for anyone willing to wait.
    assert saving("static-min") > 0.25
