"""Figure 7: CPU-bound microbenchmarks (L2 walk; register loop)."""

import pytest

from benchmarks._harness import comparison_map, print_result, run_once
from repro.experiments import run_experiment
from repro.experiments.common import find_static


def bench_fig7_cpubound(benchmark):
    result = run_once(benchmark, lambda: run_experiment("fig7"))
    print_result(result)

    cmp = comparison_map(result)
    # Delay scales as 1/f: +134 % at 600 MHz.
    assert cmp["d600"].measured == pytest.approx(cmp["d600"].paper, abs=0.05)
    # Interior energy minimum at 800 MHz; energy rises again at 600.
    assert cmp["min_energy_mhz"].measured == 800
    l2 = result.series["l2"].points
    assert find_static(l2, 600).energy > find_static(l2, 800).energy
    # Unfavourable to DVS: no point saves more than ~10 % energy.
    assert min(p.energy for p in l2) > 0.85
    # Register loop: delay exactly ∝ 1/f (paper quotes 245 %, which
    # exceeds the physical 233 % bound — see EXPERIMENTS.md).
    reg600 = find_static(result.series["register"].points, 600)
    assert reg600.delay == pytest.approx(1400 / 600, rel=0.02)
