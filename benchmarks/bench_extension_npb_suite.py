"""Extension: DVS taxonomy across the NPB-style suite.

Five kernels with different bottlenecks must land on the slack spectrum
exactly where the paper's microbenchmark analysis (Figs 6-8) predicts.
"""

from benchmarks._harness import run_once
from repro.analysis.report import format_table
from repro.analysis.runner import static_crescendo
from repro.experiments.common import normalize_series, points_of
from repro.util.units import MHZ
from repro.workloads import HaloStencil, NasCG, NasEP, NasFT, NasMG


def bench_extension_npb_suite(benchmark):
    def experiment():
        suite = {
            "FT": NasFT("A", n_ranks=8, iterations=2),
            "CG": NasCG("A", n_ranks=8, iterations=10),
            "MG": NasMG(n=512, n_ranks=8, v_cycles=2),
            "stencil": HaloStencil(n=2048, n_ranks=8, sweeps=6),
            "EP": NasEP("S", n_ranks=8, pairs_override=1 << 21),
        }
        out = {}
        for name, workload in suite.items():
            runs = static_crescendo(workload, [600 * MHZ, 1400 * MHZ])
            normed = normalize_series({"stat": points_of(runs)})["stat"]
            out[name] = normed[0]  # the 600 MHz point
        return out

    slow_points = run_once(benchmark, experiment)
    rows = [
        [name, f"{p.delay:.2f}x", f"{(1 - p.energy) * 100:.1f}%"]
        for name, p in slow_points.items()
    ]
    print()
    print(
        format_table(
            ["kernel", "delay @600MHz", "energy saved @600MHz"],
            rows,
            title="suite taxonomy at the bottom of the ladder",
        )
    )

    d = {name: p.delay for name, p in slow_points.items()}
    saved = {name: 1 - p.energy for name, p in slow_points.items()}
    # The spectrum's endpoints:
    assert d["EP"] > 2.2 and saved["EP"] < 0.10
    assert d["FT"] < 1.15 and saved["FT"] > 0.30
    # Everything else sits strictly between them in delay sensitivity.
    for name in ("CG", "MG", "stencil"):
        assert d["FT"] - 0.05 < d[name] < d["EP"], name
    # And savings order inversely with delay sensitivity.
    assert saved["EP"] < saved["stencil"] <= saved["MG"] + 0.05
    assert saved["MG"] < saved["FT"] + 0.10
