"""Table 3: best operating points for FT class B."""

from benchmarks._harness import FULL_SCALE, comparison_map, print_result, run_once
from repro.experiments import run_experiment


def bench_table3_ft_best_points(benchmark):
    iterations = None if FULL_SCALE else 4
    result = run_once(
        benchmark, lambda: run_experiment("table3", iterations=iterations)
    )
    print_result(result)

    cmp = comparison_map(result)
    # Energy and performance picks match the paper exactly.
    assert cmp["energy_mhz"].measured == 600
    assert cmp["performance_mhz"].measured == 1400
    # The HPC pick is an interior/slow point with a double-digit
    # efficiency gain; the paper reports 1000 MHz at 16.9 % — on our
    # calibration 600 MHz wins by a whisker (see EXPERIMENTS.md).
    assert cmp["hpc_mhz"].measured < 1400
    assert cmp["hpc_improvement"].measured > 0.10
