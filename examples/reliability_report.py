#!/usr/bin/env python
"""Operating cost and reliability consequences of a DVS operating point.

The paper motivates DVS with two §1 arguments beyond the electricity
bill: component life expectancy doubles per 10 °C of cooling, and
petaflop-scale machines built from commodity parts would otherwise fail
daily.  This example runs NAS FT across the static ladder and reports,
for each operating point, the average node power, the steady-state
component temperature, the relative life expectancy, and the expected
annual failures — scaled up to the paper's hypothetical 12 000-node
petaflop system.

Run with::

    python examples/reliability_report.py
"""

from repro.analysis import format_table, static_crescendo
from repro.experiments.common import LADDER_FREQUENCIES, points_of
from repro.hardware import ReliabilityModel, compare_reliability
from repro.workloads import NasFT

PETAFLOP_NODES = 12_000  # the paper's §1 example system


def main() -> None:
    workload = NasFT("A", n_ranks=8, iterations=4)
    print(f"running {workload.name} across the static ladder...\n")
    runs = static_crescendo(workload, LADDER_FREQUENCIES)
    points = points_of(runs)

    model = ReliabilityModel()
    rows = []
    for point, rel in zip(points, compare_reliability(points, n_nodes=8, model=model)):
        petaflop_failures = model.cluster_failures_per_year(
            rel.average_power_w, PETAFLOP_NODES
        )
        rows.append(
            [
                point.label,
                f"{rel.average_power_w:.1f} W",
                f"{rel.temperature_c:.1f} C",
                f"x{rel.life_factor:.2f}",
                f"{petaflop_failures:.0f}/yr",
                f"every {365 / petaflop_failures:.1f} days"
                if petaflop_failures > 0
                else "-",
            ]
        )
    print(
        format_table(
            [
                "operating point",
                "avg node power",
                "component temp",
                "life expectancy",
                "failures @12k nodes",
                "MTBF",
            ],
            rows,
            title="reliability consequences of the FT crescendo "
            "(paper S1's arguments, quantified)",
        )
    )
    print()
    rel_rows = compare_reliability(points, n_nodes=8, model=model)
    slow, fast = rel_rows[0], rel_rows[-1]
    print(
        f"reading: running FT at {points[0].label} instead of "
        f"{points[-1].label} cools each node by "
        f"{fast.temperature_c - slow.temperature_c:.1f} C, multiplying "
        f"component life by {slow.life_factor / fast.life_factor:.2f} — "
        "the paper's temperature-reliability argument in numbers."
    )


if __name__ == "__main__":
    main()
