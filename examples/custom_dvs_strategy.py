#!/usr/bin/env python
"""Writing your own DVS strategy against the framework's interfaces.

Implements a *history-aware governor*: like cpuspeed it watches
``/proc/stat``, but instead of one-step-down it remembers the utilisation
of the last N windows and jumps straight to the frequency whose headroom
matches the observed busy fraction.  The example then compares it with
cpuspeed and the static ladder on a communication-bound workload — and
shows that it, too, is blinded by MPICH's busy-waiting (the paper's §4
argument applies to *any* utilisation-driven governor, not just cpuspeed).

Run with::

    python examples/custom_dvs_strategy.py
"""

from collections import deque

from repro.analysis import format_crescendo, run_measured, static_crescendo
from repro.analysis.runner import cpuspeed_run
from repro.dvs import DVSStrategy
from repro.dvs.cpufreq import CpuFreq
from repro.experiments.common import LADDER_FREQUENCIES, normalize_series, points_of
from repro.workloads import NasFT


class HistoryGovernor:
    """Per-node governor: frequency tracks a moving utilisation average."""

    def __init__(self, node, cpufreq: CpuFreq, interval: float = 0.5,
                 window: int = 4):
        self.node = node
        self.cpufreq = cpufreq
        self.interval = interval
        self.history = deque(maxlen=window)
        self._stopped = False

    def start(self, engine):
        return engine.process(self._run(engine), name="history-governor")

    def stop(self):
        self._stopped = True

    def _run(self, engine):
        prev = self.node.procstat.snapshot()
        table = self.node.table
        while not self._stopped:
            yield engine.timeout(self.interval)
            self.node.cpu.finalize()
            current = self.node.procstat.snapshot()
            self.history.append(current.utilization_since(prev))
            prev = current
            avg = sum(self.history) / len(self.history)
            # Pick the slowest frequency that still covers the busy share.
            target = table.fastest.frequency
            for point in table:  # slowest first
                if point.frequency >= avg * table.fastest.frequency:
                    target = point.frequency
                    break
            self.cpufreq.set_speed_now(target)


class HistoryStrategy(DVSStrategy):
    """Cluster-wide wrapper installing one HistoryGovernor per node."""

    kind = "history"

    def __init__(self):
        super().__init__()
        self.governors = []

    def prepare(self, cluster):
        super().prepare(cluster)
        for node in cluster.nodes:
            gov = HistoryGovernor(node, self.cpufreq_for(node.node_id))
            gov.start(cluster.engine)
            self.governors.append(gov)

    def teardown(self, cluster):
        for gov in self.governors:
            gov.stop()


def main() -> None:
    workload = NasFT("A", n_ranks=8, iterations=4)
    print(f"comparing governors on {workload.name} (communication-bound)...\n")

    raw = {
        "stat": points_of(static_crescendo(workload, LADDER_FREQUENCIES)),
        "cpuspeed": [cpuspeed_run(workload).point],
        "history": [run_measured(workload, HistoryStrategy()).point],
    }
    normed = normalize_series(raw)
    print(format_crescendo(raw, title="custom governor vs cpuspeed vs static "
                                      "(normalized to static 1.4 GHz)"))
    print()
    h = normed["history"][0]
    print(f"history governor: E={h.energy:.3f} D={h.delay:.3f} — like "
          "cpuspeed, it reads busy-waiting as load and stays fast; "
          "utilisation-driven governors cannot see MPI slack (paper §4)")


if __name__ == "__main__":
    main()
