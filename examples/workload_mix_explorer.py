#!/usr/bin/env python
"""Map the workload-mix space to best DVS operating points.

The paper closes by noting that savings "vary greatly with application,
workload, system, and DVS strategy".  This example makes that statement a
picture: sweep a synthetic workload's CPU/memory/communication mix and
report, for each mix, the best static operating point under the HPC
weighting (δ=0.2) and its energy saving.

Run with::

    python examples/workload_mix_explorer.py
"""

from repro.analysis import format_table, static_crescendo
from repro.experiments.common import LADDER_FREQUENCIES, normalize_series, points_of
from repro.metrics import DELTA_HPC, best_operating_point
from repro.workloads import SyntheticMix

# (cpu, memory, communication) mixes from compute-bound to slack-heavy
MIXES = [
    (1.00, 0.00, 0.00),
    (0.75, 0.15, 0.10),
    (0.50, 0.25, 0.25),
    (0.30, 0.30, 0.40),
    (0.10, 0.30, 0.60),
    (0.05, 0.10, 0.85),
]


def main() -> None:
    rows = []
    print("sweeping 6 workload mixes x 5 operating points...\n")
    for cpu, mem, comm in MIXES:
        workload = SyntheticMix(
            cpu, mem, comm, iteration_seconds=0.5, iterations=3, n_ranks=4
        )
        runs = static_crescendo(workload, LADDER_FREQUENCIES)
        normed = normalize_series({"stat": points_of(runs)})["stat"]
        best = best_operating_point(normed, DELTA_HPC)
        rows.append(
            [
                f"{cpu:.0%}/{mem:.0%}/{comm:.0%}",
                f"{best.point.frequency / 1e6:.0f} MHz",
                f"{(1 - best.point.energy) * 100:.1f}%",
                f"{(best.point.delay - 1) * 100:.1f}%",
                f"{best.improvement_vs_reference * 100:.1f}%",
            ]
        )
    print(
        format_table(
            [
                "cpu/mem/comm",
                "best point (HPC)",
                "energy saved",
                "slowdown",
                "wED2P gain",
            ],
            rows,
            title="best static operating point by workload mix (delta=0.2)",
        )
    )
    print()
    print(
        "reading: compute-bound mixes pin the best point at 1.4 GHz "
        "(nothing to save); as slack grows the best point slides down the "
        "ladder and the savings grow — the paper's conclusion, as a map."
    )


if __name__ == "__main__":
    main()
