#!/usr/bin/env python
"""PowerPack measurement session: battery vs Baytech vs ground truth.

Reproduces the paper's measurement methodology end to end: charge the
batteries, disconnect wall power, let them settle, run a parallel matrix
transpose, and compare what the two instruments report — the ACPI smart
battery (1 mWh quantization, 17.5 s refresh) and the Baytech outlet meter
(1-minute averages) — against the simulator's exact energy.

Run with::

    python examples/powerpack_measurement.py
"""

from repro.analysis import format_table
from repro.hardware import Cluster, ClusterSpec
from repro.measurement import PowerPackSession
from repro.simmpi import run_spmd
from repro.workloads import ParallelTranspose


def main() -> None:
    # The paper's geometry: 12K x 12K matrix, 5x3 process grid.  Iterate
    # the transpose so the run lasts minutes — exactly what the paper does
    # to out-run the battery's 15-20 s refresh ("In other cases we iterate
    # application execution").
    workload = ParallelTranspose(matrix_n=12_000, grid_rows=5, grid_cols=3,
                                 iterations=3)
    cluster = Cluster.from_spec(ClusterSpec.homogeneous(workload.n_ranks))

    session = PowerPackSession(cluster, battery_refresh=17.5,
                               meter_interval=60.0, settle_time=300.0)
    print("protocol: charge batteries, disconnect wall power, settle 5 min...")
    session.begin()

    print(f"running {workload.name} on {workload.n_ranks} nodes...")
    result = run_spmd(cluster, workload.bind_plain())
    session.mark("transpose_done")
    report = session.finish()

    rows = [
        ["time-to-solution", f"{report.duration:.1f} s", ""],
        ["ACPI battery energy", f"{report.battery_energy:.0f} J",
         f"{report.battery_error * 100:.2f}% off truth"],
        ["Baytech meter energy", f"{report.baytech_energy:.0f} J",
         f"{report.baytech_error * 100:.2f}% off truth"],
        ["ground truth energy", f"{report.true_energy:.0f} J", "exact"],
    ]
    print()
    print(format_table(["quantity", "value", "instrument error"], rows,
                       title="cluster-wide measurement"))

    print()
    print("per-node battery drain (J):",
          " ".join(f"{e:.0f}" for e in report.per_node_battery))
    print(f"(node 0 is the gather root; its drain exceeds the others', "
          f"showing the transpose's load imbalance)")


if __name__ == "__main__":
    main()
