#!/usr/bin/env python
"""Quickstart: measure one parallel application under three DVS strategies.

Builds an 8-node simulated Pentium M cluster, runs a small NAS FT job
under the cpuspeed daemon, a static 800 MHz setting, and the paper's
dynamic (application-directed) strategy, then picks "best" operating
points with the weighted ED²P metric.

Run with::

    python examples/quickstart.py
"""

from repro.analysis import format_best_points, format_crescendo, full_strategy_sweep
from repro.experiments.common import LADDER_FREQUENCIES, normalize_series, points_of
from repro.metrics import select_paper_rows
from repro.workloads import NasFT


def main() -> None:
    # NAS FT class A on 8 simulated nodes; the "fft" region is the
    # communication-heavy function the dynamic strategy scales down.
    workload = NasFT("A", n_ranks=8, iterations=4)

    print(f"running {workload.name} on {workload.n_ranks} nodes "
          f"across {len(LADDER_FREQUENCIES)} operating points...\n")
    sweep = full_strategy_sweep(workload, LADDER_FREQUENCIES, regions=["fft"])

    raw = {name: points_of(runs) for name, runs in sweep.items()}
    normed = normalize_series(raw)
    print(format_crescendo(raw, title="energy-delay crescendo "
                                      "(normalized to static 1.4 GHz)"))
    print()

    rows = select_paper_rows(list(normed["stat"]) + list(normed["dyn"]))
    print(format_best_points(rows, title="best operating points "
                                         "(weighted ED2P; HPC = delta 0.2)"))
    print()

    hpc = rows["HPC"]
    print(f"-> the HPC-weighted best point is {hpc.point.label}: "
          f"{(1 - hpc.point.energy) * 100:.1f}% energy saved for "
          f"{(hpc.point.delay - 1) * 100:.1f}% slowdown "
          f"({hpc.improvement_vs_reference * 100:.1f}% better weighted ED2P "
          f"than static 1.4 GHz)")


if __name__ == "__main__":
    main()
