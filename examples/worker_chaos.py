#!/usr/bin/env python
"""Worker-chaos stress: kill pool workers mid-sweep, finish anyway.

Runs a cached operating-point sweep on the hardened process-pool
backend while a seeded saboteur SIGKILLs the worker that picked up a
randomly chosen subset of the tasks (each such task kills its worker
exactly once, on its first attempt — the retry on the respawned pool
then completes it).  The run must:

* complete every task despite the kills (retries, not cascades);
* charge each killed task at most one lost-worker attempt;
* persist every completed point, so a warm resume returns results
  bit-identical to an undisturbed serial run.

Exits non-zero on any violation, so CI can run it as a stress step::

    python examples/worker_chaos.py [seed]      # default seed: 0
"""

import os
import random
import signal
import sys
import tempfile

from repro.analysis.parallel import execute_sweep
from repro.cache import RunCache
from repro.exec import ProcessPoolBackend

FREQ_MHZ = [600, 700, 800, 900, 1000, 1100, 1200, 1300, 1400]


def _make_tasks(kill_dir, seed):
    """(frequency_hz, kill_marker_or_None) — picklable chaos specs."""
    rng = random.Random(seed)
    victims = set(rng.sample(range(len(FREQ_MHZ)), 3))
    return [
        (
            mhz * 1e6,
            os.path.join(kill_dir, f"kill-{i}") if i in victims else None,
        )
        for i, mhz in enumerate(FREQ_MHZ)
    ], victims


def _execute(task):
    """One measured run; the saboteur kills this worker on first sight."""
    frequency, marker = task
    if marker is not None and not os.path.exists(marker):
        with open(marker, "w", encoding="utf-8") as fh:
            fh.write("worker killed here\n")
        os.kill(os.getpid(), signal.SIGKILL)

    from repro.analysis.runner import run_measured
    from repro.dvs import StaticStrategy
    from repro.workloads.micro import L2BoundMicro

    return run_measured(L2BoundMicro(passes=3), StaticStrategy(frequency)).point


def _key_of(task):
    import hashlib

    return hashlib.sha256(f"worker-chaos:{task[0]}".encode()).hexdigest()


def _store(cache, key, task, point):
    cache.put(key, point, meta={"example": "worker_chaos"})


def main(seed: int) -> int:
    kill_dir = tempfile.mkdtemp(prefix="worker-chaos-kills-")
    cache_dir = tempfile.mkdtemp(prefix="worker-chaos-cache-")
    tasks, victims = _make_tasks(kill_dir, seed)
    print(
        f"sweep: {len(tasks)} operating points, saboteur kills the worker "
        f"of tasks {sorted(victims)} (seed {seed})"
    )

    attempts_by_index = {}

    def watch(event):
        attempts_by_index[event.index] = event.attempts
        mark = " [retried]" if event.attempts else ""
        print(
            f"  [{event.completed}/{event.total}] task {event.index} "
            f"({event.source}){mark}"
        )

    chaotic = execute_sweep(
        tasks,
        caller="worker_chaos",
        execute=_execute,
        key_of=_key_of,
        store=_store,
        use_cache=RunCache(cache_dir),
        backend=ProcessPoolBackend(max_workers=2),
        on_result=watch,
    )

    failures = []
    if any(point is None for point in chaotic):
        failures.append("chaotic run left unfinished tasks")
    for index in victims:
        history = attempts_by_index.get(index, ())
        if len(history) != 1 or "WorkerLostError" not in history[0].error:
            failures.append(
                f"task {index} should record exactly one lost-worker "
                f"attempt, got {[a.error for a in history]}"
            )
    for index, history in attempts_by_index.items():
        if len(history) > 1:
            failures.append(
                f"task {index} was retried {len(history)} times; "
                "the blast radius must be one attempt per kill"
            )

    # Undisturbed oracle: serial, no saboteur, no cache.
    oracle = execute_sweep(
        [(f, None) for f, _ in tasks],
        caller="worker_chaos_oracle",
        execute=_execute,
        backend="serial",
    )
    if chaotic != oracle:
        failures.append("chaotic results differ from the serial oracle")

    # Warm resume from the store the chaotic run populated: pure hits,
    # bit-identical.
    warm_cache = RunCache(cache_dir)
    sources = []
    warm = execute_sweep(
        tasks,
        caller="worker_chaos_warm",
        execute=_execute,
        key_of=_key_of,
        store=_store,
        use_cache=warm_cache,
        backend="serial",
        on_result=lambda e: sources.append(e.source),
    )
    if warm != oracle:
        failures.append("warm resume is not bit-identical to the oracle")
    if sources != ["cache"] * len(tasks):
        failures.append(f"warm resume re-simulated: sources {sources}")

    if failures:
        print("\nFAIL:")
        for reason in failures:
            print(f"  - {reason}")
        return 1
    print(
        f"\nok: {len(victims)} worker kills absorbed, "
        f"{warm_cache.stats.hits} warm hits, results bit-identical"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(int(sys.argv[1]) if len(sys.argv) > 1 else 0))
