#!/usr/bin/env python
"""Beyond the paper: an adaptive runtime that learns where to scale.

The paper's dynamic strategy needs a human to mark the slack-heavy
function.  The :class:`~repro.dvs.adaptive.AdaptiveStrategy` automates
the choice: per region it probes one execution at the base frequency and
one at the low frequency, keeps the low point only when the measured
slowdown is within tolerance, and then applies the decision for the rest
of the run — the research direction (slack-directed runtime DVS) this
paper opened.

The example runs NAS FT under (a) static max, (b) the paper's hand-tuned
dynamic strategy, and (c) the adaptive runtime, and also shows the
per-region energy breakdown plus a cluster power sparkline.

Run with::

    python examples/adaptive_runtime.py
"""

from repro.analysis import (
    TrackedStrategy,
    format_table,
    phase_breakdown,
    run_measured,
)
from repro.dvs import AdaptiveStrategy, DynamicStrategy, StaticStrategy
from repro.measurement import cluster_power_profile, profile_summary
from repro.util.units import MHZ
from repro.workloads import NasFT


def make_workload():
    return NasFT("A", n_ranks=8, iterations=6)


def main() -> None:
    print("running NAS FT class A (8 ranks, 6 iterations) three ways...\n")

    runs = {
        "static 1.4 GHz": run_measured(make_workload(), StaticStrategy(1400 * MHZ)),
        "dynamic (hand-tuned fft)": run_measured(
            make_workload(), DynamicStrategy(1400 * MHZ, regions=["fft"])
        ),
        "adaptive (learned)": run_measured(
            make_workload(), AdaptiveStrategy(1400 * MHZ)
        ),
    }
    base = runs["static 1.4 GHz"].point
    rows = []
    for name, run in runs.items():
        p = run.point
        rows.append(
            [
                name,
                f"{p.energy:.0f} J",
                f"{p.delay:.2f} s",
                f"{(1 - p.energy / base.energy) * 100:.1f}%",
                f"{(p.delay / base.delay - 1) * 100:.1f}%",
            ]
        )
    print(
        format_table(
            ["strategy", "energy", "delay", "energy saved", "slowdown"],
            rows,
            title="strategy comparison",
        )
    )

    # Where does the energy go? Re-run static with region tracking.
    tracked = TrackedStrategy(StaticStrategy(1400 * MHZ))
    run = run_measured(make_workload(), tracked)
    phases = phase_breakdown(run.cluster, tracked.intervals(), run.spmd)
    print()
    print(
        format_table(
            ["region", "energy", "rank-seconds", "executions"],
            [
                [p.name, f"{p.energy:.0f} J", f"{p.time:.1f}", p.occurrences]
                for p in phases.values()
            ],
            title="per-region breakdown (static 1.4 GHz)",
        )
    )
    print()
    profile = cluster_power_profile(
        run.cluster, run.spmd.start, run.spmd.end, dt=run.spmd.duration / 200
    )
    print(profile_summary(profile, width=60))
    print()
    adaptive = runs["adaptive (learned)"].strategy
    decisions = {
        name: ctl.decision_for(name)
        for ctl in adaptive.controllers
        for name in ctl.regions
    }
    print(f"adaptive decisions: {decisions} "
          "(True = region runs at 600 MHz after calibration)")


if __name__ == "__main__":
    main()
