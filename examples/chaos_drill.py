#!/usr/bin/env python
"""Chaos drill: break the cap governor's world, watch it heal.

Replays the fixed composite fault scenario from the ``chaos``
experiment — simultaneous telemetry dropout on two nodes, a stuck-high
DVFS regulator, a crash that reboots at full clock — against both the
self-healing governor and the fair-weather baseline, for several plan
seeds.  The hardened governor must end every run with zero
post-recovery budget violations; the baseline demonstrably does not.

Exits non-zero when the hardened governor fails to recover, so CI can
run it as a smoke test::

    python examples/chaos_drill.py [seed ...]   # default seeds: 0 1 2
"""

import sys

from repro.analysis import format_table, run_measured
from repro.dvs import StaticStrategy
from repro.experiments.chaos import drill_plan
from repro.faults import ChaosTask, run_chaos_sweep
from repro.workloads import SyntheticMix


def main(seeds) -> int:
    workload = SyntheticMix(
        1.0, 0.0, 0.0, iteration_seconds=0.5, iterations=4, n_ranks=8
    )
    base = run_measured(workload, StaticStrategy(1.4e9))
    uncapped_avg = base.point.energy / base.point.delay
    budget_watts = 0.85 * uncapped_avg
    interval = max(0.02, min(0.25, base.point.delay / 12.0))

    print(
        f"drill: {workload.name}, cap {budget_watts:.1f} W "
        f"(0.85x uncapped avg {uncapped_avg:.1f} W), "
        f"governor interval {interval:.3f} s, seeds {list(seeds)}\n"
    )

    tasks = [
        ChaosTask(
            workload=workload,
            plan=drill_plan(interval, seed=seed),
            budget_watts=budget_watts,
            policy="redist",
            hardened=hardened,
            interval=interval,
            allowed_recovery_s=4 * interval,
        )
        for seed in seeds
        for hardened in (True, False)
    ]
    outcomes = run_chaos_sweep(tasks)

    rows = []
    failures = 0
    for task, outcome in zip(tasks, outcomes):
        r = outcome.report
        mode = "selfheal" if task.hardened else "fairweather"
        healed = r.post_recovery_violations == 0
        if task.hardened and not healed:
            failures += 1
        rows.append(
            [
                task.plan.seed,
                mode,
                f"{r.violation_windows}/{r.total_windows}",
                r.post_recovery_violations,
                f"{r.worst_recovery_latency_s:.2f}",
                r.repair_events,
                "yes" if healed else "NO",
            ]
        )
    print(
        format_table(
            [
                "seed",
                "governor",
                "violations",
                "post-recovery",
                "worst latency s",
                "repairs",
                "recovered",
            ],
            rows,
        )
    )

    if failures:
        print(f"\nFAIL: hardened governor left {failures} run(s) unrecovered")
        return 1
    print("\nok: hardened governor recovered every drill")
    return 0


if __name__ == "__main__":
    seed_args = [int(a) for a in sys.argv[1:]] or [0, 1, 2]
    sys.exit(main(seed_args))
