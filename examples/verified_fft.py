#!/usr/bin/env python
"""Run the distributed FFT with real data and verify it against numpy.

The simulated MPI moves *actual numpy arrays*: this example runs NAS FT
class W (128×128×32) on 8 simulated nodes in verification mode, checks
every rank's pencil of the final transform against ``numpy.fft.fftn``,
and prints the per-iteration checksums alongside the timing/energy the
simulation produced — demonstrating that the performance model and the
numerics share one code path.

Run with::

    python examples/verified_fft.py
"""

from repro.analysis import format_table
from repro.hardware import Cluster, ClusterSpec
from repro.simmpi import run_spmd
from repro.workloads import NasFT, verify_distributed_fft


def main() -> None:
    workload = NasFT("W", n_ranks=8, verify=True)
    p = workload.problem
    print(
        f"NAS FT class {p.name}: {p.nx}x{p.ny}x{p.nz} grid, "
        f"{p.iterations} iterations, {workload.n_ranks} ranks "
        f"(real complex slabs through the simulated all-to-all)\n"
    )

    cluster = Cluster.from_spec(ClusterSpec.homogeneous(workload.n_ranks))
    result = run_spmd(cluster, workload.bind_plain())
    energy = cluster.total_energy(result.start, result.end)

    verify_distributed_fft(workload, result.returns)
    print("verification: every rank's pencil matches numpy.fft.fftn  [OK]\n")

    reference_sums = [
        complex(workload.reference_result(it).sum())
        for it in range(1, p.iterations + 1)
    ]
    rows = []
    for i, (measured, expected) in enumerate(
        zip(result.returns[0]["checksums"], reference_sums), start=1
    ):
        err = abs(measured - expected) / max(1e-30, abs(expected))
        rows.append([i, f"{measured:.6e}", f"{err:.1e}"])
    print(
        format_table(
            ["iteration", "distributed checksum", "rel. error vs numpy"],
            rows,
            title="per-iteration checksums",
        )
    )
    print()
    print(
        f"simulated time-to-solution: {result.duration:.2f} s; "
        f"cluster energy: {energy:.0f} J "
        f"({energy / result.duration:.1f} W average across 8 nodes)"
    )
    print(
        f"bytes moved through the fabric: "
        f"{cluster.fabric.bytes_transferred / 2**20:.1f} MiB"
    )


if __name__ == "__main__":
    main()
