#!/usr/bin/env python
"""What a cluster power cap buys (and costs) on an 8-node NAS FT run.

The paper's §1 argument is that shaving watts buys reliability: component
life expectancy doubles per 10 °C of cooling, and a petaflop machine
built from commodity parts would otherwise fail daily.  The power-budget
extension makes the watts a hard constraint: a governor holds the whole
cluster under a cap by redistributing frequency toward the ranks doing
useful work.  This example sweeps cap levels on an 8-node FT run and
prints, for each budget and each allocation policy, the achieved cluster
power, the slowdown paid, and the expected annual hardware failures via
the paper's thermal rule of thumb.

Run with::

    python examples/power_budget.py
"""

from repro.analysis import format_table
from repro.experiments.powercap import DEFAULT_CAP_FRACTIONS, sweep_workload
from repro.hardware import ReliabilityModel
from repro.workloads import NasFT

N_RANKS = 8


def main() -> None:
    workload = NasFT("S", n_ranks=N_RANKS, iterations=3)
    print(f"sweeping power caps on {workload.name} ({N_RANKS} nodes)...\n")
    base, reports = sweep_workload(workload, DEFAULT_CAP_FRACTIONS)
    uncapped_avg = base.point.energy / base.point.delay

    model = ReliabilityModel()
    uncapped_failures = model.cluster_failures_per_year(
        uncapped_avg / N_RANKS, N_RANKS
    )
    rows = [
        [
            "uncapped",
            "-",
            f"{uncapped_avg:.1f} W",
            "-",
            f"{model.temperature(uncapped_avg / N_RANKS):.1f} C",
            f"{uncapped_failures:.3f}/yr",
        ]
    ]
    for fraction in DEFAULT_CAP_FRACTIONS:
        for policy_name, report in reports[fraction].items():
            node_watts = report.achieved_avg_watts / N_RANKS
            rows.append(
                [
                    f"{fraction:.2f} x avg",
                    policy_name,
                    f"{report.achieved_avg_watts:.1f} W",
                    f"+{report.slowdown_vs_uncapped * 100:.1f}%",
                    f"{model.temperature(node_watts):.1f} C",
                    f"{model.cluster_failures_per_year(node_watts, N_RANKS):.3f}/yr",
                ]
            )
    print(
        format_table(
            [
                "cap",
                "policy",
                "achieved power",
                "slowdown",
                "node temp",
                "expected failures",
            ],
            rows,
            title="power cap vs performance vs reliability (8-node FT)",
        )
    )

    deepest = reports[min(DEFAULT_CAP_FRACTIONS)]["redist"]
    saved = uncapped_avg - deepest.achieved_avg_watts
    cooler = model.temperature(uncapped_avg / N_RANKS) - model.temperature(
        deepest.achieved_avg_watts / N_RANKS
    )
    print(
        f"\nreading: the deepest cap trims {saved:.1f} W off the cluster "
        f"({cooler:.1f} C per node) for a "
        f"{deepest.slowdown_vs_uncapped * 100:.1f}% slowdown — every "
        "window stayed under budget "
        f"({deepest.violation_windows}/{deepest.total_windows} violations)."
    )


if __name__ == "__main__":
    main()
