#!/usr/bin/env python
"""The DVS taxonomy across an NPB-style suite.

The paper studies FT and a matrix transpose; this example widens the lens
across five distributed kernels with different bottlenecks — FT
(network-bandwidth), CG (reduction-latency), MG (memory with level-varying
halos), the halo stencil (balanced), and EP (pure compute) — and shows
where each lands on the slack spectrum: its delay/energy at 600 MHz and
its HPC-best operating point.

Run with::

    python examples/npb_suite.py
"""

from repro.analysis import format_table, static_crescendo
from repro.experiments.common import LADDER_FREQUENCIES, normalize_series, points_of
from repro.metrics import DELTA_HPC, best_operating_point
from repro.workloads import HaloStencil, NasCG, NasEP, NasFT, NasMG


def suite():
    return {
        "FT (all-to-all bandwidth)": NasFT("A", n_ranks=8, iterations=3),
        "CG (reduction latency)": NasCG("A", n_ranks=8, iterations=20),
        "MG (multigrid halos)": NasMG(n=1024, n_ranks=8, v_cycles=3),
        "stencil (balanced halos)": HaloStencil(n=4096, n_ranks=8, sweeps=12),
        "EP (pure compute)": NasEP("S", n_ranks=8, pairs_override=1 << 22),
    }


def main() -> None:
    print("sweeping 5 kernels x 5 operating points on 8 simulated nodes...\n")
    rows = []
    for name, workload in suite().items():
        runs = static_crescendo(workload, LADDER_FREQUENCIES)
        normed = normalize_series({"stat": points_of(runs)})["stat"]
        slow = normed[0]
        best = best_operating_point(normed, DELTA_HPC)
        rows.append(
            [
                name,
                f"{slow.delay:.2f}x",
                f"{(1 - slow.energy) * 100:.1f}%",
                f"{best.point.frequency / 1e6:.0f} MHz",
                f"{best.improvement_vs_reference * 100:.1f}%",
            ]
        )
    print(
        format_table(
            [
                "kernel",
                "delay @600MHz",
                "energy saved @600MHz",
                "HPC best point",
                "wED2P gain",
            ],
            rows,
            title="DVS behaviour across the suite (normalized to 1.4 GHz)",
        )
    )
    print()
    print(
        "reading: the suite spans the whole spectrum the paper's "
        "microbenchmarks predicted — from EP (delay 2.33x, nothing to "
        "save, best point 1.4 GHz) to FT (delay ~1.09x, a third of the "
        "energy free)."
    )


if __name__ == "__main__":
    main()
