"""Text reporting: tables and ASCII crescendo charts.

Experiments print the same rows the paper's figures plot — normalized
energy and delay per operating point per strategy — plus the Table-1/3
best-operating-point selections, in plain text so benches and the CLI
need no plotting dependencies.
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Sequence

from repro.metrics.records import EnergyDelayPoint
from repro.metrics.selection import BestPoint
from repro.util.units import pretty_freq

__all__ = [
    "format_table",
    "format_crescendo",
    "format_best_points",
    "ascii_series_chart",
]


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = ""
) -> str:
    """A fixed-width text table."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in cells)) if cells else len(headers[i])
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in cells:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_crescendo(
    series: Mapping[str, Sequence[EnergyDelayPoint]],
    title: str = "",
    normalize: bool = True,
    reference: Optional[EnergyDelayPoint] = None,
) -> str:
    """Normalized E/D rows per strategy — the data behind the figures.

    When normalising, the reference defaults to the fastest *static*
    point (the paper's convention); pass ``reference`` to override.
    """
    if normalize and reference is None:
        statics = series.get("stat") or next(iter(series.values()))
        reference = max(
            (p for p in statics if p.frequency is not None),
            key=lambda p: p.frequency,
            default=statics[-1],
        )
    rows: List[List[object]] = []
    for name, points in series.items():
        shown = (
            [p.normalized_to(reference) for p in points] if normalize else list(points)
        )
        for p in shown:
            freq = pretty_freq(p.frequency) if p.frequency else "-"
            rows.append([name, freq, f"{p.energy:.3f}", f"{p.delay:.3f}"])
    unit = "(normalized)" if normalize else "(J, s)"
    return format_table(
        ["strategy", "freq", f"energy {unit}", f"delay {unit}"], rows, title=title
    )


def format_best_points(rows: Mapping[str, BestPoint], title: str = "") -> str:
    """The Table-1/3 layout: best operating point per δ setting."""
    body = []
    for name, best in rows.items():
        freq = (
            pretty_freq(best.point.frequency) if best.point.frequency else best.point.label
        )
        body.append(
            [
                name,
                freq,
                best.point.label,
                f"{best.improvement_vs_reference * 100:.1f}%",
            ]
        )
    return format_table(
        ["setting", "operating point", "strategy", "efficiency gain vs fastest"],
        body,
        title=title,
    )


def ascii_series_chart(
    series: Mapping[str, Sequence[float]],
    labels: Sequence[str],
    width: int = 48,
    title: str = "",
) -> str:
    """A crude horizontal bar chart, one row per (series, label) pair."""
    values = [v for vs in series.values() for v in vs]
    if not values:
        return title
    peak = max(values)
    lines = [title] if title else []
    for name, vs in series.items():
        for label, v in zip(labels, vs):
            bar = "#" * max(1, int(round(width * v / peak))) if peak > 0 else ""
            lines.append(f"{name:>10} {label:>9} |{bar} {v:.3f}")
    return "\n".join(lines)
