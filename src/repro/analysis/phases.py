"""Per-region energy attribution (PowerPack's profiling role).

The paper's §4 analysis rests on knowing *where* time and energy go —
"most execution time and slack time resides in function fft()".  This
module reuses the workloads' existing region markers (the same ones the
dynamic DVS strategy consumes) to attribute wall time and energy to named
program regions, per rank, from the nodes' ground-truth power timelines.

Usage::

    strategy = TrackedStrategy(StaticStrategy(frequency))
    run = run_measured(workload, strategy)
    table = phase_breakdown(run.cluster, strategy.intervals(), run.spmd)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.dvs.controller import ControlGen, DvsController
from repro.dvs.strategy import DVSStrategy
from repro.hardware.cluster import Cluster
from repro.simmpi.launcher import SpmdResult

__all__ = [
    "PhaseInterval",
    "PhaseEnergy",
    "TrackingController",
    "TrackedStrategy",
    "phase_breakdown",
]


@dataclass(frozen=True)
class PhaseInterval:
    """One execution of a marked region on one rank."""

    name: str
    rank: int
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class PhaseEnergy:
    """Aggregated energy/time for one region name."""

    name: str
    energy: float = 0.0
    time: float = 0.0  #: summed across ranks (rank-seconds)
    occurrences: int = 0


class TrackingController(DvsController):
    """Delegates to an inner controller while recording region intervals.

    The interval includes the inner controller's transition costs on both
    edges (they are part of choosing to treat the region specially).
    """

    def __init__(self, inner: DvsController, engine, rank: int):
        self.inner = inner
        self.engine = engine
        self.rank = rank
        self.intervals: List[PhaseInterval] = []
        self._open: List[Tuple[str, float]] = []

    def region_enter(self, name: str) -> ControlGen:
        self._open.append((name, self.engine.now))
        yield from self.inner.region_enter(name)

    def region_exit(self, name: str) -> ControlGen:
        yield from self.inner.region_exit(name)
        if not self._open or self._open[-1][0] != name:
            raise RuntimeError(
                f"region_exit({name!r}) does not match the open region stack"
            )
        _, start = self._open.pop()
        self.intervals.append(
            PhaseInterval(name=name, rank=self.rank, start=start, end=self.engine.now)
        )


class TrackedStrategy(DVSStrategy):
    """Wraps any strategy so every rank's regions are recorded."""

    def __init__(self, inner: DVSStrategy):
        super().__init__()
        self.inner = inner
        self.trackers: List[TrackingController] = []

    @property
    def kind(self) -> str:  # type: ignore[override]
        return self.inner.kind

    @property
    def name(self) -> str:
        return self.inner.name

    def prepare(self, cluster: Cluster) -> None:
        self._cluster = cluster
        self.inner.prepare(cluster)

    def teardown(self, cluster: Cluster) -> None:
        self.inner.teardown(cluster)

    def controller(self, comm) -> TrackingController:
        tracker = TrackingController(
            self.inner.controller(comm), comm.engine, comm.rank
        )
        self.trackers.append(tracker)
        return tracker

    def intervals(self) -> List[PhaseInterval]:
        out: List[PhaseInterval] = []
        for tracker in self.trackers:
            out.extend(tracker.intervals)
        return out

    # needed because DVSStrategy.prepare fills _cpufreqs; delegate instead
    def cpufreq_for(self, rank: int):  # pragma: no cover - passthrough
        return self.inner.cpufreq_for(rank)


def phase_breakdown(
    cluster: Cluster,
    intervals: List[PhaseInterval],
    spmd: Optional[SpmdResult] = None,
) -> Dict[str, PhaseEnergy]:
    """Aggregate energy and time per region name.

    When ``spmd`` is given, an ``(other)`` row covers everything outside
    marked regions, so rows sum to the job's total energy.
    """
    phases: Dict[str, PhaseEnergy] = {}
    by_rank: Dict[int, List[PhaseInterval]] = {}
    for iv in intervals:
        by_rank.setdefault(iv.rank, []).append(iv)
    # One batch kernel query per rank instead of one scalar integral per
    # interval (regions repeat every iteration, so this is the hot join).
    for rank, rank_ivs in by_rank.items():
        series = cluster.nodes[rank].timeline.series()
        windows = np.array([(iv.start, iv.end) for iv in rank_ivs])
        energies = series.energy_many(windows)
        for iv, joules in zip(rank_ivs, energies):
            entry = phases.setdefault(iv.name, PhaseEnergy(iv.name))
            entry.energy += float(joules)
            entry.time += iv.duration
            entry.occurrences += 1

    if spmd is not None:
        total = cluster.total_energy(spmd.start, spmd.end)
        covered = sum(p.energy for p in phases.values())
        # total rank-time = duration per participating node
        marked_time = sum(p.time for p in phases.values())
        n_ranks = len({iv.rank for iv in intervals}) or cluster.n_nodes
        other = PhaseEnergy("(other)")
        other.energy = max(0.0, total - covered)
        other.time = max(0.0, spmd.duration * n_ranks - marked_time)
        phases["(other)"] = other
    return phases
