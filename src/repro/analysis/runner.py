"""Measured runs and crescendo sweeps.

A *crescendo* (the paper's term for its normalized energy/delay curves)
is one workload measured across operating points and strategies.  Every
run gets a fresh cluster (fresh engine, fresh accounting) so runs cannot
contaminate each other; energy is the exact integral of all node power
timelines over the job interval — i.e. what the paper's instruments
estimate, without their quantization (their behaviour is validated
separately in the measurement layer's tests).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.dvs.cpuspeed import CpuspeedConfig
from repro.dvs.strategy import (
    CpuspeedStrategy,
    DVSStrategy,
    DynamicStrategy,
    StaticStrategy,
)
from repro.hardware.calibration import Calibration
from repro.hardware.cluster import Cluster
from repro.hardware.spec import ClusterSpec
from repro.metrics.records import EnergyDelayPoint
from repro.obs.tracer import Tracer, tracing
from repro.simmpi import SpmdResult, run_spmd
from repro.workloads.base import Workload

__all__ = [
    "MeasuredRun",
    "run_measured",
    "traced_run",
    "static_crescendo",
    "dynamic_crescendo",
    "cpuspeed_run",
    "full_strategy_sweep",
]


@dataclass
class MeasuredRun:
    """One workload execution with its energy/delay point."""

    point: EnergyDelayPoint
    spmd: SpmdResult
    cluster: Cluster
    strategy: DVSStrategy

    @property
    def returns(self) -> List[object]:
        return self.spmd.returns


def run_measured(
    workload: Workload,
    strategy: DVSStrategy,
    calibration: Optional[Calibration] = None,
    cluster_factory: Optional[Callable[[], Cluster]] = None,
    spec: Optional[ClusterSpec] = None,
) -> MeasuredRun:
    """Run ``workload`` under ``strategy`` on a fresh cluster and measure.

    ``spec`` selects the hardware: ``None`` means the paper's homogeneous
    cluster sized to the workload; an explicit
    :class:`~repro.hardware.spec.ClusterSpec` may be larger than the
    workload's rank count (extra nodes idle at base power) but never
    smaller.  ``cluster_factory`` overrides both and keeps full control.
    """
    if cluster_factory is not None and spec is not None:
        raise ValueError("pass either cluster_factory or spec, not both")
    if cluster_factory is not None:
        cluster = cluster_factory()
    else:
        cluster = Cluster.from_spec(
            spec
            if spec is not None
            else ClusterSpec.homogeneous(workload.n_ranks),
            calibration=calibration,
        )
    if cluster.n_nodes < workload.n_ranks:
        raise ValueError(
            f"cluster has {cluster.n_nodes} nodes; workload needs "
            f"{workload.n_ranks}"
        )
    strategy.prepare(cluster)
    result = run_spmd(cluster, workload.bind(strategy), n_ranks=workload.n_ranks)
    strategy.teardown(cluster)
    energy = cluster.total_energy(result.start, result.end)
    frequency = getattr(strategy, "frequency", None)
    if frequency is None:
        frequency = getattr(strategy, "base_frequency", None)
    point = EnergyDelayPoint(
        label=strategy.name,
        energy=energy,
        delay=result.duration,
        frequency=frequency,
    )
    return MeasuredRun(point=point, spmd=result, cluster=cluster, strategy=strategy)


def traced_run(
    workload: Workload,
    strategy: DVSStrategy,
    tracer: Tracer,
    calibration: Optional[Calibration] = None,
    cluster_factory: Optional[Callable[[], Cluster]] = None,
    spec: Optional[ClusterSpec] = None,
) -> MeasuredRun:
    """:func:`run_measured` with ``tracer`` installed as the active tracer.

    Everything the deep instrumentation emits during the run — sim-engine
    process spans, MPI phases, DVS transitions, governor windows, fault
    instants — lands in ``tracer``'s ring buffers, plus one run-level
    sim-clock span on track ``"run"`` covering the whole job interval.
    The natural input for
    :func:`repro.metrics.attribution.build_attribution_report` and the
    Chrome-trace exporters in :mod:`repro.obs.export`.
    """
    with tracing(tracer):
        run = run_measured(
            workload,
            strategy,
            calibration=calibration,
            cluster_factory=cluster_factory,
            spec=spec,
        )
        if tracer.enabled:
            tracer.span(
                getattr(workload, "name", type(workload).__name__),
                "run",
                "run",
                run.spmd.start,
                run.spmd.end,
                strategy=strategy.name,
            )
    return run


def static_crescendo(
    workload: Workload,
    frequencies: Sequence[float],
    calibration: Optional[Calibration] = None,
) -> List[MeasuredRun]:
    """One static run per frequency (slowest..fastest order preserved)."""
    return [
        run_measured(workload, StaticStrategy(f), calibration=calibration)
        for f in frequencies
    ]


def dynamic_crescendo(
    workload: Workload,
    frequencies: Sequence[float],
    low_frequency: Optional[float] = None,
    regions: Optional[List[str]] = None,
    calibration: Optional[Calibration] = None,
) -> List[MeasuredRun]:
    """One dynamic run per base frequency (regions drop to the low point)."""
    return [
        run_measured(
            workload,
            DynamicStrategy(f, low_frequency=low_frequency, regions=regions),
            calibration=calibration,
        )
        for f in frequencies
    ]


def cpuspeed_run(
    workload: Workload,
    config: Optional[CpuspeedConfig] = None,
    calibration: Optional[Calibration] = None,
) -> MeasuredRun:
    """One run under the cpuspeed daemons."""
    return run_measured(
        workload, CpuspeedStrategy(config=config), calibration=calibration
    )


def full_strategy_sweep(
    workload: Workload,
    frequencies: Sequence[float],
    regions: Optional[List[str]] = None,
    calibration: Optional[Calibration] = None,
    include_dynamic: bool = True,
) -> Dict[str, List[MeasuredRun]]:
    """The paper's full comparison: cpuspeed + static (+ dynamic) series."""
    out: Dict[str, List[MeasuredRun]] = {
        "cpuspeed": [cpuspeed_run(workload, calibration=calibration)],
        "stat": static_crescendo(workload, frequencies, calibration=calibration),
    }
    if include_dynamic:
        out["dyn"] = dynamic_crescendo(
            workload, frequencies, regions=regions, calibration=calibration
        )
    return out
