"""Serializable experiment records (JSON in/out).

Experiment drivers return :class:`ExperimentResult`; benches print it and
EXPERIMENTS.md is generated from the same structures, so "what the paper
says" vs "what we measured" lives in one place.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional

from repro.metrics.records import EnergyDelayPoint

__all__ = ["SeriesData", "Comparison", "ExperimentResult"]


@dataclass(frozen=True)
class SeriesData:
    """One strategy's crescendo, normalized and raw."""

    strategy: str
    points: List[EnergyDelayPoint]

    def to_dict(self) -> dict:
        return {
            "strategy": self.strategy,
            "points": [asdict(p) for p in self.points],
        }


@dataclass(frozen=True)
class Comparison:
    """One paper-reported quantity vs our measurement."""

    quantity: str
    paper: Optional[float]
    measured: float

    @property
    def abs_difference(self) -> Optional[float]:
        if self.paper is None:
            return None
        return abs(self.measured - self.paper)

    def to_dict(self) -> dict:
        return {
            "quantity": self.quantity,
            "paper": self.paper,
            "measured": self.measured,
        }


@dataclass
class ExperimentResult:
    """Everything one experiment produced."""

    experiment_id: str  #: e.g. "fig3"
    title: str
    series: Dict[str, SeriesData] = field(default_factory=dict)
    comparisons: List[Comparison] = field(default_factory=list)
    tables: Dict[str, str] = field(default_factory=dict)  #: rendered text
    notes: List[str] = field(default_factory=list)

    def add_series(self, strategy: str, points: List[EnergyDelayPoint]) -> None:
        self.series[strategy] = SeriesData(strategy, list(points))

    def compare(self, quantity: str, paper: Optional[float], measured: float) -> None:
        self.comparisons.append(Comparison(quantity, paper, measured))

    # ------------------------------------------------------------------
    def to_json(self, indent: int = 2) -> str:
        payload = {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "series": {k: v.to_dict() for k, v in self.series.items()},
            "comparisons": [c.to_dict() for c in self.comparisons],
            "notes": self.notes,
        }
        return json.dumps(payload, indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "ExperimentResult":
        payload = json.loads(text)
        result = cls(
            experiment_id=payload["experiment_id"], title=payload["title"]
        )
        for name, data in payload.get("series", {}).items():
            points = [EnergyDelayPoint(**p) for p in data["points"]]
            result.add_series(name, points)
        for c in payload.get("comparisons", []):
            result.compare(c["quantity"], c["paper"], c["measured"])
        result.notes = list(payload.get("notes", []))
        return result

    def render(self) -> str:
        """Full text report for CLI / bench output."""
        lines = [f"== {self.experiment_id}: {self.title} =="]
        for table in self.tables.values():
            lines.append(table)
            lines.append("")
        if self.comparisons:
            lines.append("paper vs measured:")
            for c in self.comparisons:
                paper = "n/a" if c.paper is None else f"{c.paper:.3f}"
                lines.append(f"  {c.quantity}: paper={paper} measured={c.measured:.3f}")
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)
