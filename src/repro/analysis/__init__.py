"""Analysis layer: measured runs, crescendo sweeps, records, reporting."""

from repro.analysis.parallel import SweepTask, parallel_full_sweep, run_sweep
from repro.analysis.phases import (
    PhaseEnergy,
    PhaseInterval,
    TrackedStrategy,
    TrackingController,
    phase_breakdown,
)
from repro.analysis.records import Comparison, ExperimentResult, SeriesData
from repro.analysis.report import (
    ascii_series_chart,
    format_best_points,
    format_crescendo,
    format_table,
)
from repro.analysis.runner import (
    MeasuredRun,
    cpuspeed_run,
    dynamic_crescendo,
    full_strategy_sweep,
    run_measured,
    static_crescendo,
)

__all__ = [
    "MeasuredRun",
    "run_measured",
    "static_crescendo",
    "dynamic_crescendo",
    "cpuspeed_run",
    "full_strategy_sweep",
    "ExperimentResult",
    "SeriesData",
    "Comparison",
    "format_table",
    "format_crescendo",
    "format_best_points",
    "ascii_series_chart",
    "PhaseInterval",
    "PhaseEnergy",
    "TrackingController",
    "TrackedStrategy",
    "phase_breakdown",
    "SweepTask",
    "run_sweep",
    "parallel_full_sweep",
]
