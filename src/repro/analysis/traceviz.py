"""Export simulation activity as Chrome trace-event JSON.

``chrome://tracing`` / Perfetto read a simple JSON array of events; this
module converts a run's region intervals, frequency transitions and power
levels into that format so a reproduced experiment can be inspected on a
real timeline viewer — the modern counterpart of PowerPack's aligned
profile plots.

Event mapping:

* region intervals → complete events (``ph="X"``), one track per rank;
* DVS transitions → counter events (``ph="C"``) with the frequency in MHz;
* node power      → counter events with watts.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence

from repro.analysis.phases import PhaseInterval
from repro.hardware.cluster import Cluster

__all__ = ["trace_events", "export_chrome_trace"]

_US = 1e6  # trace-event timestamps are microseconds


def trace_events(
    cluster: Cluster,
    intervals: Optional[Sequence[PhaseInterval]] = None,
    t0: float = 0.0,
    t1: Optional[float] = None,
    power_resolution: float = 0.05,
) -> List[Dict]:
    """Build the trace-event list for one run."""
    if t1 is None:
        t1 = max(node.timeline.last_change for node in cluster.nodes)
    if t1 < t0:
        raise ValueError(f"trace interval reversed: [{t0}, {t1}]")
    events: List[Dict] = []

    # Process metadata: one "process" per node.
    for node in cluster.nodes:
        events.append(
            {
                "ph": "M",
                "name": "process_name",
                "pid": node.node_id,
                "args": {"name": f"node{node.node_id}"},
            }
        )

    # Region intervals as complete events.
    for iv in intervals or []:
        events.append(
            {
                "ph": "X",
                "name": iv.name,
                "pid": iv.rank,
                "tid": 0,
                "ts": iv.start * _US,
                "dur": iv.duration * _US,
                "cat": "region",
            }
        )

    # Power levels as counters (sampled at segment change points, clipped
    # to the window and thinned to power_resolution).  The frozen series
    # gives the clipped window as one array slice.
    for node in cluster.nodes:
        times, watts_levels = node.timeline.series().window(t0, t1)
        last_emitted = None
        for time, watts in zip(times, watts_levels):
            if last_emitted is not None and time - last_emitted < power_resolution:
                continue
            last_emitted = time
            events.append(
                {
                    "ph": "C",
                    "name": "power_w",
                    "pid": node.node_id,
                    "ts": time * _US,
                    "args": {"watts": round(float(watts), 3)},
                }
            )

    # Frequency as counters from the trace recorder, if it captured any.
    for record in cluster.trace.select("node.power"):
        if not t0 <= record.time <= t1:
            continue
        events.append(
            {
                "ph": "C",
                "name": "freq_mhz",
                "pid": record.fields.get("node", 0),
                "ts": record.time * _US,
                "args": {"mhz": record.fields.get("mhz", 0)},
            }
        )
    return events


def export_chrome_trace(
    path: str,
    cluster: Cluster,
    intervals: Optional[Sequence[PhaseInterval]] = None,
    **kwargs,
) -> int:
    """Write the trace to ``path``; returns the number of events."""
    events = trace_events(cluster, intervals, **kwargs)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump({"traceEvents": events, "displayTimeUnit": "ms"}, fh)
    return len(events)
