"""Calibration fitting: derive model constants from paper targets.

DESIGN.md §4 explains *why* the default calibration values are what they
are; this module makes those derivations executable, so anyone porting
the model to a different DVFS ladder (or fitting against their own
measurements through :mod:`repro.realhw`) can re-run them:

* :func:`golden_section` — a dependency-free scalar minimiser;
* :func:`fit_activity_factor` — fit one activity-power factor so a
  measured quantity hits a target (e.g. MEMSTALL from Fig 6's E(600));
* :func:`base_power_window` — the interval of node base power that keeps
  the CPU-bound energy minimum at an interior ladder point (Fig 7's
  structural constraint);
* measurement helpers producing the quantities the paper reports.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.analysis.runner import static_crescendo
from repro.hardware.activity import CpuActivity
from repro.hardware.calibration import Calibration, DEFAULT_CALIBRATION
from repro.hardware.dvfs import DVFSTable, PENTIUM_M_1400
from repro.util.units import MHZ
from repro.workloads.micro import MemoryBoundMicro

__all__ = [
    "golden_section",
    "membound_e600",
    "fit_activity_factor",
    "cpu_bound_energy_curve",
    "base_power_window",
]

_PHI = (5**0.5 - 1) / 2


def golden_section(
    fn: Callable[[float], float],
    lo: float,
    hi: float,
    tol: float = 1e-4,
    max_iter: int = 200,
) -> float:
    """Minimise a unimodal scalar function on [lo, hi]."""
    if hi <= lo:
        raise ValueError(f"invalid bracket [{lo}, {hi}]")
    a, b = lo, hi
    c = b - _PHI * (b - a)
    d = a + _PHI * (b - a)
    fc, fd = fn(c), fn(d)
    for _ in range(max_iter):
        if b - a < tol:
            break
        if fc < fd:
            b, d, fd = d, c, fc
            c = b - _PHI * (b - a)
            fc = fn(c)
        else:
            a, c, fc = c, d, fd
            d = a + _PHI * (b - a)
            fd = fn(d)
    return (a + b) / 2


def membound_e600(calibration: Calibration, passes: int = 30) -> float:
    """Normalized E(600 MHz) of the Fig-6 memory walk under ``calibration``."""
    runs = static_crescendo(
        MemoryBoundMicro(passes=passes),
        [600 * MHZ, 1400 * MHZ],
        calibration=calibration,
    )
    return runs[0].point.energy / runs[1].point.energy


def fit_activity_factor(
    state: CpuActivity,
    measure: Callable[[Calibration], float],
    target: float,
    bounds: Tuple[float, float] = (0.05, 1.0),
    base: Optional[Calibration] = None,
    tol: float = 1e-3,
) -> float:
    """Fit one activity factor so ``measure(calibration)`` hits ``target``."""
    base = base or DEFAULT_CALIBRATION

    def objective(factor: float) -> float:
        factors = dict(base.activity_factors)
        factors[state] = factor
        cal = base.with_overrides(activity_factors=factors)
        return abs(measure(cal) - target)

    return golden_section(objective, bounds[0], bounds[1], tol=tol)


def cpu_bound_energy_curve(
    base_power: float,
    cpu_max_power: float = 21.0,
    table: DVFSTable = PENTIUM_M_1400,
) -> List[Tuple[float, float]]:
    """Analytic (frequency, energy) curve of a pure-ACTIVE loop.

    ``E(f) = (base + P_cpu·relfv2(f)) · f_max/f`` — the closed form behind
    the Fig-7 structure; no simulation needed.
    """
    fastest = table.fastest.frequency
    return [
        (
            p.frequency,
            (base_power + cpu_max_power * table.relative_fv2(p))
            * (fastest / p.frequency),
        )
        for p in table
    ]


def base_power_window(
    minimum_mhz: float = 800.0,
    cpu_max_power: float = 21.0,
    table: DVFSTable = PENTIUM_M_1400,
    lo: float = 1.0,
    hi: float = 20.0,
    step: float = 0.01,
) -> Tuple[float, float]:
    """Base-power interval placing the CPU-bound energy minimum at
    ``minimum_mhz`` (Fig 7's structural constraint on the calibration)."""
    window: List[float] = []
    base = lo
    while base <= hi:
        curve = cpu_bound_energy_curve(base, cpu_max_power, table)
        best = min(curve, key=lambda fe: fe[1])[0]
        if abs(best - minimum_mhz * MHZ) < 1:
            window.append(base)
        base = round(base + step, 10)
    if not window:
        raise ValueError(
            f"no base power in [{lo}, {hi}] puts the minimum at "
            f"{minimum_mhz} MHz"
        )
    return (window[0], window[-1])
