"""Fault-tolerant experiment sweeps over pluggable backends, with a run cache.

Every run in a crescendo is an independent simulation with no shared
state, so sweeps parallelise embarrassingly.  Because the simulator is
fully deterministic, every backend returns *bit-identical* results to
the serial one — asserted in the tests — so callers pick whichever fits
their machine: in-process serial, a hardened local process pool, or
mpi4py ranks (``backend="serial" | "process" | "mpi"``, see
:mod:`repro.exec` and ``docs/BACKENDS.md``).

Workers receive a picklable task description and build their own
cluster; only the resulting
:class:`~repro.metrics.records.EnergyDelayPoint` travels back.

Determinism also makes runs *cacheable*: pass a
:class:`~repro.cache.store.RunCache` and :func:`run_sweep` resolves each
task to a content hash (:func:`repro.cache.keys.task_key`), returns
stored points for hits, and inserts every freshly simulated point as it
completes.  Insertion-on-completion is what makes sweeps **resumable**:
an interrupted, crashed, or half-killed sweep has already persisted its
finished points, so the re-run simulates only the gap.  Results also
*stream*: pass ``on_result`` and every completed point (cache hits
included) arrives as a :class:`SweepEvent` with progress counters the
moment it lands, instead of gather-at-the-end.

Failures are collected, not contagious: a task that raises does not
stop the remaining tasks, and a task whose *worker* dies (SIGKILL, OOM)
costs only that task a retry on a respawned pool — never a cascading
``BrokenProcessPool`` failure for every sibling.  Retries, backoff, and
per-task timeouts follow the sweep's
:class:`~repro.exec.retry.RetryPolicy`.  When any task remains failed
after its attempts, :func:`run_sweep` finishes everything else (caching
the successes) and then raises :class:`SweepError` listing each failed
task by index with its per-attempt history.
"""

from __future__ import annotations

import traceback
import warnings
from contextlib import nullcontext
from dataclasses import dataclass
from pathlib import Path
from typing import (
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.dvs.strategy import (
    CpuspeedStrategy,
    DVSStrategy,
    DynamicStrategy,
    StaticStrategy,
)
from repro.exec.backends import (
    ExecBackend,
    SerialBackend,
    TaskUnit,
    resolve_backend,
)
from repro.exec.retry import (
    DEFAULT_RETRY,
    AttemptRecord,
    RetryPolicy,
    format_attempts,
    task_seed,
)
from repro.hardware.calibration import Calibration
from repro.hardware.spec import ClusterSpec
from repro.metrics.records import EnergyDelayPoint
from repro.obs.tracer import Tracer, tracing
from repro.workloads.base import Workload

__all__ = [
    "STRATEGY_KINDS",
    "SweepError",
    "SweepEvent",
    "SweepTask",
    "execute_sweep",
    "parallel_full_sweep",
    "run_sweep",
]

#: Distinguishes "not passed" from any legitimate value in the
#: deprecated-parameter shims.  Shared with
#: :func:`repro.faults.sweep.run_chaos_sweep` and
#: :func:`repro.serving.sweep.run_serving_sweep` so the signatures
#: compare equal parameter-for-parameter (asserted in the tests).
_UNSET = object()

#: The strategy recipes a :class:`SweepTask` can describe.
STRATEGY_KINDS = ("cpuspeed", "dyn", "stat")


class SweepError(RuntimeError):
    """One or more sweep tasks failed (the rest completed).

    Attributes
    ----------
    failures:
        ``(index, task, error)`` for every failed task, in input order.
    completed:
        The full result list, ``None`` at each failed index — everything
        that *did* finish (and was cached, when a cache was active).
    attempts:
        Per-failure attempt histories aligned with ``failures``: each a
        tuple of :class:`~repro.exec.retry.AttemptRecord` covering every
        attempt the retry policy allowed (timeouts, lost workers, and
        the final error all appear).
    tracebacks:
        Formatted traceback text aligned with ``failures`` — the original
        raise site, not the re-raise here.  Pool workers' tracebacks
        travel through the exception's cause chain (``_RemoteTraceback``)
        and are included.
    """

    def __init__(
        self,
        failures: Sequence[Tuple[int, object, BaseException]],
        completed: Sequence[Optional[object]],
        attempts: Optional[Sequence[Tuple[AttemptRecord, ...]]] = None,
    ):
        self.failures = list(failures)
        self.completed = list(completed)
        self.attempts: List[Tuple[AttemptRecord, ...]] = (
            [tuple(a) for a in attempts]
            if attempts is not None
            else [() for _ in self.failures]
        )
        self.tracebacks: List[str] = [
            "".join(traceback.format_exception(type(err), err, err.__traceback__))
            for _, _, err in self.failures
        ]
        summary = "; ".join(
            f"task[{i}] ({_describe_task(task)}): {err!r}"
            + (
                f" after {len(history)} attempts"
                if len(history) > 1
                else ""
            )
            for (i, task, err), history in zip(self.failures, self.attempts)
        )
        histories = "\n".join(
            f"task[{i}] attempt history:\n{format_attempts(history)}"
            for (i, _, _), history in zip(self.failures, self.attempts)
            if history
        )
        super().__init__(
            f"{len(self.failures)} of {len(self.completed)} sweep tasks "
            f"failed: {summary}\n"
            + (histories + "\n" if histories else "")
            + "\n".join(self.tracebacks)
        )


@dataclass(frozen=True)
class SweepEvent:
    """One streamed sweep completion (see ``on_result``).

    ``source`` is ``"cache"`` for a warm hit (streamed before execution
    starts, in input order) or ``"run"`` for a freshly executed task.
    ``completed``/``total`` are progress counters: ``completed`` counts
    this event.  ``attempts`` carries the failed attempts that preceded
    a successful run (empty for first-try successes and cache hits).
    """

    index: int
    total: int
    completed: int
    source: str
    result: object
    label: str = ""
    attempts: Tuple[AttemptRecord, ...] = ()


def _describe_task(task: object) -> str:
    label = getattr(task, "strategy_kind", None) or getattr(
        task, "label", None
    )
    return label if label is not None else type(task).__name__


def run_collected(
    tasks: Sequence[object],
    pending: Sequence[int],
    execute: Callable[[object], object],
    finish: Callable[[int, object], None],
    n_workers: Optional[int],
    *,
    backend: Union[str, ExecBackend, None] = None,
    retry: Optional[RetryPolicy] = None,
) -> List[Tuple[int, object, BaseException]]:
    """Run ``execute(tasks[i])`` for each pending index, collecting
    failures instead of spreading them.

    Pre-backend compatibility shim over :mod:`repro.exec`: ``n_workers``
    keeps the internal convention (``0`` = serial in-process, ``None`` =
    one worker per core, ``N`` = N workers) and ``finish(i, result)`` is
    called the moment task ``i`` completes.  New code should use
    :func:`execute_sweep` (or a backend directly) — this wrapper drops
    the attempt histories.

    Only :class:`Exception` is collected — ``KeyboardInterrupt`` /
    ``SystemExit`` always propagate immediately, whether raised in
    process or re-raised from a pool worker, so a Ctrl-C can never be
    swallowed into a :class:`SweepError`.
    """
    resolved = resolve_backend(backend, n_workers, n_pending=len(pending))
    units = [
        TaskUnit(i, tasks[i], task_seed(i, tasks[i])) for i in pending
    ]
    task_failures = resolved.run(
        execute,
        units,
        retry=retry if retry is not None else DEFAULT_RETRY,
        on_result=lambda i, result, attempts: finish(i, result),
    )
    return sorted(
        ((f.index, f.task, f.error) for f in task_failures),
        key=lambda f: f[0],
    )


@dataclass(frozen=True)
class SweepTask:
    """One run: a workload plus a strategy recipe (picklable).

    Validated at construction time, so a malformed sweep fails before any
    simulation (or pool) is started.
    """

    workload: Workload
    strategy_kind: str  #: one of :data:`STRATEGY_KINDS`
    frequency: Optional[float] = None  #: static/dynamic base frequency (Hz)
    regions: Optional[tuple] = None  #: dynamic-region names
    calibration: Optional[Calibration] = None
    spec: Optional[ClusterSpec] = None  #: cluster hardware (None = legacy)

    def __post_init__(self) -> None:
        if self.strategy_kind not in STRATEGY_KINDS:
            raise ValueError(
                f"unknown strategy kind {self.strategy_kind!r}; "
                f"valid kinds: {', '.join(STRATEGY_KINDS)}"
            )
        if self.strategy_kind in ("stat", "dyn") and self.frequency is None:
            noun = "static" if self.strategy_kind == "stat" else "dynamic"
            raise ValueError(
                f"{noun} task needs a frequency "
                f"(SweepTask(workload, {self.strategy_kind!r}, frequency=...))"
            )
        if self.spec is not None and self.spec.n_nodes < self.workload.n_ranks:
            raise ValueError(
                f"cluster spec has {self.spec.n_nodes} nodes; workload "
                f"needs {self.workload.n_ranks}"
            )

    def build_strategy(self) -> DVSStrategy:
        if self.strategy_kind == "stat":
            if self.frequency is None:
                raise ValueError("static task needs a frequency")
            return StaticStrategy(self.frequency)
        if self.strategy_kind == "dyn":
            if self.frequency is None:
                raise ValueError("dynamic task needs a base frequency")
            return DynamicStrategy(
                self.frequency,
                regions=list(self.regions) if self.regions else None,
            )
        if self.strategy_kind == "cpuspeed":
            return CpuspeedStrategy()
        raise ValueError(
            f"unknown strategy kind {self.strategy_kind!r}; "
            f"valid kinds: {', '.join(STRATEGY_KINDS)}"
        )


def _execute(task: SweepTask) -> EnergyDelayPoint:
    """Worker body: run one task on a fresh cluster."""
    from repro.analysis.runner import run_measured

    run = run_measured(
        task.workload,
        task.build_strategy(),
        calibration=task.calibration,
        spec=task.spec,
    )
    return run.point


def resolve_sweep_options(
    caller: str,
    jobs: Optional[int],
    use_cache,
    cache_dir,
    tracer: Optional[Tracer],
    n_workers,
    cache,
    backend: Union[str, ExecBackend, None] = None,
) -> Tuple[Optional[int], object]:
    """Normalise the unified sweep keywords to ``(n_workers, cache)``.

    The shared front door of every sweep family: translates the public
    ``jobs`` convention (``None`` = serial in-process, ``0`` = one
    worker per core, ``N`` = N workers — the same meaning as
    ``repro-experiment --jobs``) to the internal ``n_workers``
    convention, resolves ``use_cache``/``cache_dir`` through
    :func:`repro.cache.context.resolve_cache`, and applies the
    :class:`DeprecationWarning` shims for the pre-unification
    ``n_workers``/``cache`` keywords.

    A ``tracer`` forces serial in-process execution — records live in
    this process's ring buffers, so pool workers would trace into the
    void.  When that overrides an explicit ``jobs``/``backend`` request,
    a :class:`UserWarning` names the override so the caller learns why
    the sweep is not parallel.
    """
    if n_workers is not _UNSET:
        warnings.warn(
            f"{caller}(n_workers=...) is deprecated; use jobs=... "
            "(None = serial in-process, 0 = one worker per core, "
            "N = N workers)",
            DeprecationWarning,
            stacklevel=4,
        )
        if jobs is None:
            # Old convention: 0 = serial, None = all cores, N = N.
            jobs = 0 if n_workers is None else (None if n_workers == 0 else n_workers)
    if cache is not _UNSET:
        warnings.warn(
            f"{caller}(cache=...) is deprecated; use use_cache=... "
            "(True, False, or a RunCache to share)",
            DeprecationWarning,
            stacklevel=4,
        )
        if use_cache is False and cache is not None:
            use_cache = cache
    if jobs is not None and jobs < 0:
        raise ValueError(f"jobs must be None or >= 0, got {jobs}")

    from repro.cache.context import resolve_cache

    resolved = resolve_cache(use_cache, cache_dir)
    if tracer is not None:
        parallel_requested = jobs is not None or not (
            backend is None
            or backend == "serial"
            or isinstance(backend, SerialBackend)
        )
        if parallel_requested:
            requested = []
            if jobs is not None:
                requested.append(f"jobs={jobs!r}")
            if backend is not None and backend != "serial":
                requested.append(f"backend={getattr(backend, 'name', backend)!r}")
            warnings.warn(
                f"{caller}: a tracer records into this process's ring "
                "buffers, so tracing forces serial in-process execution; "
                f"ignoring {' and '.join(requested)}",
                UserWarning,
                stacklevel=4,
            )
        internal: Optional[int] = 0
    else:
        internal = 0 if jobs is None else (None if jobs == 0 else jobs)
    return internal, resolved


def execute_sweep(
    tasks: Sequence[object],
    *,
    caller: str,
    execute: Callable[[object], object],
    describe: Callable[[object], str] = _describe_task,
    key_of: Optional[Callable[[object], str]] = None,
    lookup: Optional[Callable[[object, str], Optional[object]]] = None,
    store: Optional[Callable[[object, str, object, object], None]] = None,
    jobs: Optional[int] = None,
    use_cache: Union[bool, object] = False,
    cache_dir: Optional[Union[str, Path]] = None,
    tracer: Optional[Tracer] = None,
    backend: Union[str, ExecBackend, None] = None,
    retry: Optional[RetryPolicy] = None,
    on_result: Optional[Callable[[SweepEvent], None]] = None,
    n_workers=_UNSET,
    cache=_UNSET,
) -> List[object]:
    """The engine shared by all three sweep families.

    ``run_sweep``, ``run_chaos_sweep`` and ``run_serving_sweep`` are
    thin shells over this: they supply the family-specific hooks
    (``execute`` worker body, ``key_of`` content hash, ``lookup`` /
    ``store`` cache codecs, ``describe`` labels) and this function owns
    everything uniform — option resolution, cache short-circuiting,
    streamed :class:`SweepEvent` delivery with progress counters,
    backend dispatch with the :class:`~repro.exec.retry.RetryPolicy`,
    tracer installation, and :class:`SweepError` assembly with attempt
    histories.
    """
    internal_workers, run_cache = resolve_sweep_options(
        caller, jobs, use_cache, cache_dir, tracer, n_workers, cache, backend
    )
    retry_policy = retry if retry is not None else DEFAULT_RETRY
    scope = tracing(tracer) if tracer is not None else nullcontext()
    with scope:
        total = len(tasks)
        results: List[Optional[object]] = [None] * total
        keys: List[Optional[str]] = [None] * total
        completed = 0
        if run_cache is not None and key_of is not None:
            get = lookup if lookup is not None else (
                lambda cache_obj, key: cache_obj.get(key)
            )
            for i, task in enumerate(tasks):
                keys[i] = key_of(task)
                results[i] = get(run_cache, keys[i])

        pending = [i for i, r in enumerate(results) if r is None]
        if on_result is not None:
            for i, hit in enumerate(results):
                if hit is not None:
                    completed += 1
                    on_result(
                        SweepEvent(
                            i, total, completed, "cache", hit,
                            describe(tasks[i]),
                        )
                    )

        def finish(index: int, result: object, attempts) -> None:
            nonlocal completed
            results[index] = result
            if run_cache is not None and store is not None:
                store(run_cache, keys[index], tasks[index], result)
            completed += 1
            if on_result is not None:
                on_result(
                    SweepEvent(
                        index, total, completed, "run", result,
                        describe(tasks[index]), tuple(attempts),
                    )
                )

        exec_fn = execute
        if tracer is not None:
            def exec_fn(task):  # noqa: F811 - traced replacement
                with tracer.wall_span(
                    describe(task), "sweep.task", "sweep"
                ):
                    return execute(task)

            backend_obj: ExecBackend = SerialBackend()
        else:
            backend_obj = resolve_backend(
                backend, internal_workers, n_pending=len(pending)
            )
        units = [
            TaskUnit(i, tasks[i], task_seed(i, tasks[i], keys[i]))
            for i in pending
        ]
        task_failures = backend_obj.run(
            exec_fn, units, retry=retry_policy, on_result=finish
        )
    if task_failures:
        ordered = sorted(task_failures, key=lambda f: f.index)
        raise SweepError(
            [(f.index, f.task, f.error) for f in ordered],
            results,
            attempts=[f.attempts for f in ordered],
        )
    return results


def run_sweep(
    tasks: Sequence[SweepTask],
    *,
    jobs: Optional[int] = None,
    use_cache: Union[bool, object] = False,
    cache_dir: Optional[Union[str, Path]] = None,
    tracer: Optional[Tracer] = None,
    backend: Union[str, ExecBackend, None] = None,
    retry: Optional[RetryPolicy] = None,
    on_result: Optional[Callable[[SweepEvent], None]] = None,
    n_workers=_UNSET,
    cache=_UNSET,
) -> List[EnergyDelayPoint]:
    """Run tasks, preserving input order.

    Parameters (keyword-only, shared verbatim with
    :func:`repro.faults.sweep.run_chaos_sweep` and
    :func:`repro.serving.sweep.run_serving_sweep`):

    ``jobs``
        ``None`` runs serial in-process (the default), ``0`` uses one
        worker process per CPU core, ``N`` uses N workers.  Parallel
        runs are bit-identical to serial ones.
    ``use_cache`` / ``cache_dir``
        ``True`` opens a :class:`~repro.cache.store.RunCache` at
        ``cache_dir`` (default: ``$REPRO_CACHE_DIR`` or
        ``~/.cache/repro/runs``); an existing :class:`RunCache` is
        shared as-is.  Stored points short-circuit their tasks and
        fresh points persist the moment they complete, so interrupted
        sweeps resume.  The store is safe to share between concurrent
        sweeps (see ``docs/CACHING.md``).
    ``tracer``
        A :class:`~repro.obs.tracer.Tracer` to record the sweep into:
        installed as the active tracer for the whole call (deep
        simulator instrumentation included) plus one wall-clock span
        per executed task.  Forces serial in-process execution (a
        ``UserWarning`` names the override when it ignores an explicit
        ``jobs``/``backend``).
    ``backend``
        ``"serial"``, ``"process"``, ``"mpi"``, or an
        :class:`~repro.exec.backends.ExecBackend` instance; ``None``
        infers from ``jobs``.  See ``docs/BACKENDS.md``.
    ``retry``
        A :class:`~repro.exec.retry.RetryPolicy` bounding per-task
        attempts, backoff, and wall-clock timeout.  The default retries
        substrate failures (lost workers, timeouts) up to 3 attempts
        and fails deterministic task errors fast.
    ``on_result``
        Streaming callback: invoked with a :class:`SweepEvent` the
        moment each result lands (cache hits first, in input order;
        then fresh runs in completion order) with progress counters.
    ``n_workers`` / ``cache``
        Deprecated pre-unification names (``DeprecationWarning``);
        note ``n_workers`` had *inverted* serial semantics
        (``0`` = serial, ``None`` = all cores).

    Raises
    ------
    SweepError
        After all tasks have been attempted, if any of them failed —
        with per-task attempt histories attached.
    """
    def key_of(task) -> str:
        from repro.cache.keys import task_key

        return task_key(task)

    def store(run_cache, key, task, point) -> None:
        run_cache.put(
            key,
            point,
            meta={"workload": getattr(task.workload, "name", "")},
        )

    return execute_sweep(
        tasks,
        caller="run_sweep",
        execute=_execute,
        key_of=key_of,
        store=store,
        jobs=jobs,
        use_cache=use_cache,
        cache_dir=cache_dir,
        tracer=tracer,
        backend=backend,
        retry=retry,
        on_result=on_result,
        n_workers=n_workers,
        cache=cache,
    )


def parallel_full_sweep(
    workload: Workload,
    frequencies: Sequence[float],
    regions: Optional[Sequence[str]] = None,
    calibration: Optional[Calibration] = None,
    include_dynamic: bool = True,
    n_workers: Optional[int] = None,
    cache=None,
) -> Dict[str, List[EnergyDelayPoint]]:
    """The parallel counterpart of
    :func:`repro.analysis.runner.full_strategy_sweep`.

    Keeps the historical ``n_workers`` convention (``None`` = one worker
    per core, ``0`` = serial in-process) and translates to
    :func:`run_sweep`'s unified ``jobs`` keyword internally.
    """
    tasks: List[SweepTask] = [
        SweepTask(workload, "cpuspeed", calibration=calibration)
    ]
    for f in frequencies:
        tasks.append(SweepTask(workload, "stat", frequency=f, calibration=calibration))
    if include_dynamic:
        for f in frequencies:
            tasks.append(
                SweepTask(
                    workload,
                    "dyn",
                    frequency=f,
                    regions=tuple(regions) if regions else None,
                    calibration=calibration,
                )
            )
    jobs = 0 if n_workers is None else (None if n_workers == 0 else n_workers)
    points = run_sweep(tasks, jobs=jobs, use_cache=cache if cache else False)

    out: Dict[str, List[EnergyDelayPoint]] = {"cpuspeed": [points[0]]}
    n = len(frequencies)
    out["stat"] = points[1 : 1 + n]
    if include_dynamic:
        out["dyn"] = points[1 + n : 1 + 2 * n]
    return out
