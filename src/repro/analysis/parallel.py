"""Parallel experiment sweeps across OS processes, with a run cache.

Every run in a crescendo is an independent simulation with no shared
state, so sweeps parallelise embarrassingly across cores.  Because the
simulator is fully deterministic, a parallel sweep returns *bit-identical*
results to the serial one — asserted in the tests — so callers can use
whichever fits their machine.

Workers receive a picklable task description and build their own cluster;
only the resulting :class:`~repro.metrics.records.EnergyDelayPoint`
travels back.

Determinism also makes runs *cacheable*: pass a
:class:`~repro.cache.store.RunCache` and :func:`run_sweep` resolves each
task to a content hash (:func:`repro.cache.keys.task_key`), returns
stored points for hits, and inserts every freshly simulated point as it
completes.  Insertion-on-completion is what makes sweeps **resumable**:
an interrupted or partially failed sweep has already persisted its
finished points, so the re-run simulates only the gap.

Failures are collected, not contagious: a task that raises does not stop
the remaining tasks.  When any task fails, :func:`run_sweep` finishes
everything else (caching the successes) and then raises
:class:`SweepError` listing each failed task by index.
"""

from __future__ import annotations

import traceback
import warnings
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from contextlib import nullcontext
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.dvs.strategy import (
    CpuspeedStrategy,
    DVSStrategy,
    DynamicStrategy,
    StaticStrategy,
)
from repro.hardware.calibration import Calibration
from repro.metrics.records import EnergyDelayPoint
from repro.obs.tracer import Tracer, tracing
from repro.workloads.base import Workload

__all__ = [
    "STRATEGY_KINDS",
    "SweepError",
    "SweepTask",
    "parallel_full_sweep",
    "run_sweep",
]

#: Distinguishes "not passed" from any legitimate value in the
#: deprecated-parameter shims.  Shared with
#: :func:`repro.faults.sweep.run_chaos_sweep` so the two signatures
#: compare equal parameter-for-parameter (asserted in the tests).
_UNSET = object()

#: The strategy recipes a :class:`SweepTask` can describe.
STRATEGY_KINDS = ("cpuspeed", "dyn", "stat")


class SweepError(RuntimeError):
    """One or more sweep tasks failed (the rest completed).

    Attributes
    ----------
    failures:
        ``(index, task, error)`` for every failed task, in input order.
    completed:
        The full result list, ``None`` at each failed index — everything
        that *did* finish (and was cached, when a cache was active).
    tracebacks:
        Formatted traceback text aligned with ``failures`` — the original
        raise site, not the re-raise here.  Pool workers' tracebacks
        travel through the exception's cause chain (``_RemoteTraceback``)
        and are included.
    """

    def __init__(
        self,
        failures: Sequence[Tuple[int, object, BaseException]],
        completed: Sequence[Optional[object]],
    ):
        self.failures = list(failures)
        self.completed = list(completed)
        self.tracebacks: List[str] = [
            "".join(traceback.format_exception(type(err), err, err.__traceback__))
            for _, _, err in self.failures
        ]
        summary = "; ".join(
            f"task[{i}] ({_describe_task(task)}): {err!r}"
            for i, task, err in self.failures
        )
        super().__init__(
            f"{len(self.failures)} of {len(self.completed)} sweep tasks "
            f"failed: {summary}\n"
            + "\n".join(self.tracebacks)
        )


def _describe_task(task: object) -> str:
    label = getattr(task, "strategy_kind", None)
    return label if label is not None else type(task).__name__


def run_collected(
    tasks: Sequence[object],
    pending: Sequence[int],
    execute: Callable[[object], object],
    finish: Callable[[int, object], None],
    n_workers: Optional[int],
) -> List[Tuple[int, object, BaseException]]:
    """Run ``execute(tasks[i])`` for each pending index, collecting
    failures instead of spreading them.

    The shared engine under :func:`run_sweep` and the chaos sweep
    (:func:`repro.faults.sweep.run_chaos_sweep`): serial in-process when
    ``n_workers == 0`` (or ≤1 pending task), otherwise a process pool.
    ``finish(i, result)`` is called the moment task ``i`` completes (the
    cache-insertion hook that makes sweeps resumable).

    Only :class:`Exception` is collected — ``KeyboardInterrupt`` /
    ``SystemExit`` always propagate immediately, whether raised in
    process or re-raised from a pool worker, so a Ctrl-C can never be
    swallowed into a :class:`SweepError`.
    """
    failures: List[Tuple[int, object, BaseException]] = []
    if n_workers == 0 or len(pending) <= 1:
        for i in pending:
            try:
                finish(i, execute(tasks[i]))
            except (KeyboardInterrupt, SystemExit):
                raise
            except Exception as exc:  # noqa: BLE001 - reported via SweepError
                failures.append((i, tasks[i], exc))
    else:
        with ProcessPoolExecutor(max_workers=n_workers) as pool:
            futures = {pool.submit(execute, tasks[i]): i for i in pending}
            remaining = set(futures)
            while remaining:
                done, remaining = wait(remaining, return_when=FIRST_COMPLETED)
                for future in done:
                    i = futures[future]
                    try:
                        finish(i, future.result())
                    except (KeyboardInterrupt, SystemExit):
                        raise
                    except Exception as exc:  # noqa: BLE001
                        failures.append((i, tasks[i], exc))
    failures.sort(key=lambda f: f[0])
    return failures


@dataclass(frozen=True)
class SweepTask:
    """One run: a workload plus a strategy recipe (picklable).

    Validated at construction time, so a malformed sweep fails before any
    simulation (or pool) is started.
    """

    workload: Workload
    strategy_kind: str  #: one of :data:`STRATEGY_KINDS`
    frequency: Optional[float] = None  #: static/dynamic base frequency (Hz)
    regions: Optional[tuple] = None  #: dynamic-region names
    calibration: Optional[Calibration] = None

    def __post_init__(self) -> None:
        if self.strategy_kind not in STRATEGY_KINDS:
            raise ValueError(
                f"unknown strategy kind {self.strategy_kind!r}; "
                f"valid kinds: {', '.join(STRATEGY_KINDS)}"
            )
        if self.strategy_kind in ("stat", "dyn") and self.frequency is None:
            noun = "static" if self.strategy_kind == "stat" else "dynamic"
            raise ValueError(
                f"{noun} task needs a frequency "
                f"(SweepTask(workload, {self.strategy_kind!r}, frequency=...))"
            )

    def build_strategy(self) -> DVSStrategy:
        if self.strategy_kind == "stat":
            if self.frequency is None:
                raise ValueError("static task needs a frequency")
            return StaticStrategy(self.frequency)
        if self.strategy_kind == "dyn":
            if self.frequency is None:
                raise ValueError("dynamic task needs a base frequency")
            return DynamicStrategy(
                self.frequency,
                regions=list(self.regions) if self.regions else None,
            )
        if self.strategy_kind == "cpuspeed":
            return CpuspeedStrategy()
        raise ValueError(
            f"unknown strategy kind {self.strategy_kind!r}; "
            f"valid kinds: {', '.join(STRATEGY_KINDS)}"
        )


def _execute(task: SweepTask) -> EnergyDelayPoint:
    """Worker body: run one task on a fresh cluster."""
    from repro.analysis.runner import run_measured

    run = run_measured(
        task.workload, task.build_strategy(), calibration=task.calibration
    )
    return run.point


def resolve_sweep_options(
    caller: str,
    jobs: Optional[int],
    use_cache,
    cache_dir,
    tracer: Optional[Tracer],
    n_workers,
    cache,
) -> Tuple[Optional[int], object]:
    """Normalise the unified sweep keywords to ``(n_workers, cache)``.

    The shared front door of :func:`run_sweep` and
    :func:`repro.faults.sweep.run_chaos_sweep`: translates the public
    ``jobs`` convention (``None`` = serial in-process, ``0`` = one
    worker per core, ``N`` = N workers — the same meaning as
    ``repro-experiment --jobs``) to :func:`run_collected`'s internal
    ``n_workers`` convention, resolves ``use_cache``/``cache_dir``
    through :func:`repro.cache.context.resolve_cache`, and applies the
    :class:`DeprecationWarning` shims for the pre-unification
    ``n_workers``/``cache`` keywords.  A ``tracer`` forces serial
    in-process execution — records live in this process's ring buffers,
    so pool workers would trace into the void.
    """
    if n_workers is not _UNSET:
        warnings.warn(
            f"{caller}(n_workers=...) is deprecated; use jobs=... "
            "(None = serial in-process, 0 = one worker per core, "
            "N = N workers)",
            DeprecationWarning,
            stacklevel=3,
        )
        if jobs is None:
            # Old convention: 0 = serial, None = all cores, N = N.
            jobs = 0 if n_workers is None else (None if n_workers == 0 else n_workers)
    if cache is not _UNSET:
        warnings.warn(
            f"{caller}(cache=...) is deprecated; use use_cache=... "
            "(True, False, or a RunCache to share)",
            DeprecationWarning,
            stacklevel=3,
        )
        if use_cache is False and cache is not None:
            use_cache = cache
    if jobs is not None and jobs < 0:
        raise ValueError(f"jobs must be None or >= 0, got {jobs}")

    from repro.cache.context import resolve_cache

    resolved = resolve_cache(use_cache, cache_dir)
    if tracer is not None:
        internal: Optional[int] = 0
    else:
        internal = 0 if jobs is None else (None if jobs == 0 else jobs)
    return internal, resolved


def run_sweep(
    tasks: Sequence[SweepTask],
    *,
    jobs: Optional[int] = None,
    use_cache: Union[bool, object] = False,
    cache_dir: Optional[Union[str, Path]] = None,
    tracer: Optional[Tracer] = None,
    n_workers=_UNSET,
    cache=_UNSET,
) -> List[EnergyDelayPoint]:
    """Run tasks, preserving input order.

    Parameters (keyword-only, shared verbatim with
    :func:`repro.faults.sweep.run_chaos_sweep`):

    ``jobs``
        ``None`` runs serial in-process (the default), ``0`` uses one
        worker process per CPU core, ``N`` uses N workers.  Parallel
        runs are bit-identical to serial ones.
    ``use_cache`` / ``cache_dir``
        ``True`` opens a :class:`~repro.cache.store.RunCache` at
        ``cache_dir`` (default: ``$REPRO_CACHE_DIR`` or
        ``~/.cache/repro/runs``); an existing :class:`RunCache` is
        shared as-is.  Stored points short-circuit their tasks and
        fresh points persist the moment they complete, so interrupted
        sweeps resume.
    ``tracer``
        A :class:`~repro.obs.tracer.Tracer` to record the sweep into:
        installed as the active tracer for the whole call (deep
        simulator instrumentation included) plus one wall-clock span
        per executed task.  Forces serial in-process execution.
    ``n_workers`` / ``cache``
        Deprecated pre-unification names (``DeprecationWarning``);
        note ``n_workers`` had *inverted* serial semantics
        (``0`` = serial, ``None`` = all cores).

    Raises
    ------
    SweepError
        After all tasks have been attempted, if any of them failed.
    """
    internal_workers, run_cache = resolve_sweep_options(
        "run_sweep", jobs, use_cache, cache_dir, tracer, n_workers, cache
    )
    scope = tracing(tracer) if tracer is not None else nullcontext()
    with scope:
        points: List[Optional[EnergyDelayPoint]] = [None] * len(tasks)
        keys: List[Optional[str]] = [None] * len(tasks)
        if run_cache is not None:
            from repro.cache.keys import task_key

            for i, task in enumerate(tasks):
                keys[i] = task_key(task)
                points[i] = run_cache.get(keys[i])

        pending = [i for i, p in enumerate(points) if p is None]

        def finish(index: int, point: EnergyDelayPoint) -> None:
            points[index] = point
            if run_cache is not None:
                run_cache.put(
                    keys[index],
                    point,
                    meta={
                        "workload": getattr(tasks[index].workload, "name", "")
                    },
                )

        execute = _execute
        if tracer is not None:
            def execute(task):  # noqa: F811 - traced replacement
                with tracer.wall_span(
                    _describe_task(task), "sweep.task", "sweep"
                ):
                    return _execute(task)

        failures = run_collected(
            tasks, pending, execute, finish, internal_workers
        )
    if failures:
        raise SweepError(failures, points)
    return points  # type: ignore[return-value] - no None left


def parallel_full_sweep(
    workload: Workload,
    frequencies: Sequence[float],
    regions: Optional[Sequence[str]] = None,
    calibration: Optional[Calibration] = None,
    include_dynamic: bool = True,
    n_workers: Optional[int] = None,
    cache=None,
) -> Dict[str, List[EnergyDelayPoint]]:
    """The parallel counterpart of
    :func:`repro.analysis.runner.full_strategy_sweep`.

    Keeps the historical ``n_workers`` convention (``None`` = one worker
    per core, ``0`` = serial in-process) and translates to
    :func:`run_sweep`'s unified ``jobs`` keyword internally.
    """
    tasks: List[SweepTask] = [
        SweepTask(workload, "cpuspeed", calibration=calibration)
    ]
    for f in frequencies:
        tasks.append(SweepTask(workload, "stat", frequency=f, calibration=calibration))
    if include_dynamic:
        for f in frequencies:
            tasks.append(
                SweepTask(
                    workload,
                    "dyn",
                    frequency=f,
                    regions=tuple(regions) if regions else None,
                    calibration=calibration,
                )
            )
    jobs = 0 if n_workers is None else (None if n_workers == 0 else n_workers)
    points = run_sweep(tasks, jobs=jobs, use_cache=cache if cache else False)

    out: Dict[str, List[EnergyDelayPoint]] = {"cpuspeed": [points[0]]}
    n = len(frequencies)
    out["stat"] = points[1 : 1 + n]
    if include_dynamic:
        out["dyn"] = points[1 + n : 1 + 2 * n]
    return out
