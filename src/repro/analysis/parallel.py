"""Parallel experiment sweeps across OS processes, with a run cache.

Every run in a crescendo is an independent simulation with no shared
state, so sweeps parallelise embarrassingly across cores.  Because the
simulator is fully deterministic, a parallel sweep returns *bit-identical*
results to the serial one — asserted in the tests — so callers can use
whichever fits their machine.

Workers receive a picklable task description and build their own cluster;
only the resulting :class:`~repro.metrics.records.EnergyDelayPoint`
travels back.

Determinism also makes runs *cacheable*: pass a
:class:`~repro.cache.store.RunCache` and :func:`run_sweep` resolves each
task to a content hash (:func:`repro.cache.keys.task_key`), returns
stored points for hits, and inserts every freshly simulated point as it
completes.  Insertion-on-completion is what makes sweeps **resumable**:
an interrupted or partially failed sweep has already persisted its
finished points, so the re-run simulates only the gap.

Failures are collected, not contagious: a task that raises does not stop
the remaining tasks.  When any task fails, :func:`run_sweep` finishes
everything else (caching the successes) and then raises
:class:`SweepError` listing each failed task by index.
"""

from __future__ import annotations

import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.dvs.strategy import (
    CpuspeedStrategy,
    DVSStrategy,
    DynamicStrategy,
    StaticStrategy,
)
from repro.hardware.calibration import Calibration
from repro.metrics.records import EnergyDelayPoint
from repro.workloads.base import Workload

__all__ = [
    "STRATEGY_KINDS",
    "SweepError",
    "SweepTask",
    "parallel_full_sweep",
    "run_sweep",
]

#: The strategy recipes a :class:`SweepTask` can describe.
STRATEGY_KINDS = ("cpuspeed", "dyn", "stat")


class SweepError(RuntimeError):
    """One or more sweep tasks failed (the rest completed).

    Attributes
    ----------
    failures:
        ``(index, task, error)`` for every failed task, in input order.
    completed:
        The full result list, ``None`` at each failed index — everything
        that *did* finish (and was cached, when a cache was active).
    tracebacks:
        Formatted traceback text aligned with ``failures`` — the original
        raise site, not the re-raise here.  Pool workers' tracebacks
        travel through the exception's cause chain (``_RemoteTraceback``)
        and are included.
    """

    def __init__(
        self,
        failures: Sequence[Tuple[int, object, BaseException]],
        completed: Sequence[Optional[object]],
    ):
        self.failures = list(failures)
        self.completed = list(completed)
        self.tracebacks: List[str] = [
            "".join(traceback.format_exception(type(err), err, err.__traceback__))
            for _, _, err in self.failures
        ]
        summary = "; ".join(
            f"task[{i}] ({_describe_task(task)}): {err!r}"
            for i, task, err in self.failures
        )
        super().__init__(
            f"{len(self.failures)} of {len(self.completed)} sweep tasks "
            f"failed: {summary}\n"
            + "\n".join(self.tracebacks)
        )


def _describe_task(task: object) -> str:
    label = getattr(task, "strategy_kind", None)
    return label if label is not None else type(task).__name__


def run_collected(
    tasks: Sequence[object],
    pending: Sequence[int],
    execute: Callable[[object], object],
    finish: Callable[[int, object], None],
    n_workers: Optional[int],
) -> List[Tuple[int, object, BaseException]]:
    """Run ``execute(tasks[i])`` for each pending index, collecting
    failures instead of spreading them.

    The shared engine under :func:`run_sweep` and the chaos sweep
    (:func:`repro.faults.sweep.run_chaos_sweep`): serial in-process when
    ``n_workers == 0`` (or ≤1 pending task), otherwise a process pool.
    ``finish(i, result)`` is called the moment task ``i`` completes (the
    cache-insertion hook that makes sweeps resumable).

    Only :class:`Exception` is collected — ``KeyboardInterrupt`` /
    ``SystemExit`` always propagate immediately, whether raised in
    process or re-raised from a pool worker, so a Ctrl-C can never be
    swallowed into a :class:`SweepError`.
    """
    failures: List[Tuple[int, object, BaseException]] = []
    if n_workers == 0 or len(pending) <= 1:
        for i in pending:
            try:
                finish(i, execute(tasks[i]))
            except (KeyboardInterrupt, SystemExit):
                raise
            except Exception as exc:  # noqa: BLE001 - reported via SweepError
                failures.append((i, tasks[i], exc))
    else:
        with ProcessPoolExecutor(max_workers=n_workers) as pool:
            futures = {pool.submit(execute, tasks[i]): i for i in pending}
            remaining = set(futures)
            while remaining:
                done, remaining = wait(remaining, return_when=FIRST_COMPLETED)
                for future in done:
                    i = futures[future]
                    try:
                        finish(i, future.result())
                    except (KeyboardInterrupt, SystemExit):
                        raise
                    except Exception as exc:  # noqa: BLE001
                        failures.append((i, tasks[i], exc))
    failures.sort(key=lambda f: f[0])
    return failures


@dataclass(frozen=True)
class SweepTask:
    """One run: a workload plus a strategy recipe (picklable).

    Validated at construction time, so a malformed sweep fails before any
    simulation (or pool) is started.
    """

    workload: Workload
    strategy_kind: str  #: one of :data:`STRATEGY_KINDS`
    frequency: Optional[float] = None  #: static/dynamic base frequency (Hz)
    regions: Optional[tuple] = None  #: dynamic-region names
    calibration: Optional[Calibration] = None

    def __post_init__(self) -> None:
        if self.strategy_kind not in STRATEGY_KINDS:
            raise ValueError(
                f"unknown strategy kind {self.strategy_kind!r}; "
                f"valid kinds: {', '.join(STRATEGY_KINDS)}"
            )
        if self.strategy_kind in ("stat", "dyn") and self.frequency is None:
            noun = "static" if self.strategy_kind == "stat" else "dynamic"
            raise ValueError(
                f"{noun} task needs a frequency "
                f"(SweepTask(workload, {self.strategy_kind!r}, frequency=...))"
            )

    def build_strategy(self) -> DVSStrategy:
        if self.strategy_kind == "stat":
            if self.frequency is None:
                raise ValueError("static task needs a frequency")
            return StaticStrategy(self.frequency)
        if self.strategy_kind == "dyn":
            if self.frequency is None:
                raise ValueError("dynamic task needs a base frequency")
            return DynamicStrategy(
                self.frequency,
                regions=list(self.regions) if self.regions else None,
            )
        if self.strategy_kind == "cpuspeed":
            return CpuspeedStrategy()
        raise ValueError(
            f"unknown strategy kind {self.strategy_kind!r}; "
            f"valid kinds: {', '.join(STRATEGY_KINDS)}"
        )


def _execute(task: SweepTask) -> EnergyDelayPoint:
    """Worker body: run one task on a fresh cluster."""
    from repro.analysis.runner import run_measured

    run = run_measured(
        task.workload, task.build_strategy(), calibration=task.calibration
    )
    return run.point


def run_sweep(
    tasks: Sequence[SweepTask],
    n_workers: Optional[int] = None,
    cache=None,
) -> List[EnergyDelayPoint]:
    """Run tasks, preserving input order.

    ``n_workers=0`` (or ≤1 task to simulate) runs in-process; otherwise a
    process pool of ``n_workers`` (default: ``os.cpu_count()``) is used.

    ``cache`` (a :class:`repro.cache.store.RunCache`) short-circuits
    tasks whose content hash is already stored and persists each new
    point the moment it completes, so re-running any sweep skips the
    completed points and an interrupted sweep resumes where it stopped.

    Raises
    ------
    SweepError
        After all tasks have been attempted, if any of them failed.
    """
    points: List[Optional[EnergyDelayPoint]] = [None] * len(tasks)
    keys: List[Optional[str]] = [None] * len(tasks)
    if cache is not None:
        from repro.cache.keys import task_key

        for i, task in enumerate(tasks):
            keys[i] = task_key(task)
            points[i] = cache.get(keys[i])

    pending = [i for i, p in enumerate(points) if p is None]

    def finish(index: int, point: EnergyDelayPoint) -> None:
        points[index] = point
        if cache is not None:
            cache.put(
                keys[index],
                point,
                meta={"workload": getattr(tasks[index].workload, "name", "")},
            )

    failures = run_collected(tasks, pending, _execute, finish, n_workers)
    if failures:
        raise SweepError(failures, points)
    return points  # type: ignore[return-value] - no None left


def parallel_full_sweep(
    workload: Workload,
    frequencies: Sequence[float],
    regions: Optional[Sequence[str]] = None,
    calibration: Optional[Calibration] = None,
    include_dynamic: bool = True,
    n_workers: Optional[int] = None,
    cache=None,
) -> Dict[str, List[EnergyDelayPoint]]:
    """The parallel counterpart of
    :func:`repro.analysis.runner.full_strategy_sweep`."""
    tasks: List[SweepTask] = [
        SweepTask(workload, "cpuspeed", calibration=calibration)
    ]
    for f in frequencies:
        tasks.append(SweepTask(workload, "stat", frequency=f, calibration=calibration))
    if include_dynamic:
        for f in frequencies:
            tasks.append(
                SweepTask(
                    workload,
                    "dyn",
                    frequency=f,
                    regions=tuple(regions) if regions else None,
                    calibration=calibration,
                )
            )
    points = run_sweep(tasks, n_workers=n_workers, cache=cache)

    out: Dict[str, List[EnergyDelayPoint]] = {"cpuspeed": [points[0]]}
    n = len(frequencies)
    out["stat"] = points[1 : 1 + n]
    if include_dynamic:
        out["dyn"] = points[1 + n : 1 + 2 * n]
    return out
