"""Parallel experiment sweeps across OS processes.

Every run in a crescendo is an independent simulation with no shared
state, so sweeps parallelise embarrassingly across cores.  Because the
simulator is fully deterministic, a parallel sweep returns *bit-identical*
results to the serial one — asserted in the tests — so callers can use
whichever fits their machine.

Workers receive a picklable task description and build their own cluster;
only the resulting :class:`~repro.metrics.records.EnergyDelayPoint`
travels back.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.dvs.strategy import (
    CpuspeedStrategy,
    DVSStrategy,
    DynamicStrategy,
    StaticStrategy,
)
from repro.hardware.calibration import Calibration
from repro.metrics.records import EnergyDelayPoint
from repro.workloads.base import Workload

__all__ = ["SweepTask", "run_sweep", "parallel_full_sweep"]


@dataclass(frozen=True)
class SweepTask:
    """One run: a workload plus a strategy recipe (picklable)."""

    workload: Workload
    strategy_kind: str  #: "stat" | "dyn" | "cpuspeed"
    frequency: Optional[float] = None  #: static/dynamic base frequency (Hz)
    regions: Optional[tuple] = None  #: dynamic-region names
    calibration: Optional[Calibration] = None

    def build_strategy(self) -> DVSStrategy:
        if self.strategy_kind == "stat":
            if self.frequency is None:
                raise ValueError("static task needs a frequency")
            return StaticStrategy(self.frequency)
        if self.strategy_kind == "dyn":
            if self.frequency is None:
                raise ValueError("dynamic task needs a base frequency")
            return DynamicStrategy(
                self.frequency,
                regions=list(self.regions) if self.regions else None,
            )
        if self.strategy_kind == "cpuspeed":
            return CpuspeedStrategy()
        raise ValueError(f"unknown strategy kind {self.strategy_kind!r}")


def _execute(task: SweepTask) -> EnergyDelayPoint:
    """Worker body: run one task on a fresh cluster."""
    from repro.analysis.runner import run_measured

    run = run_measured(
        task.workload, task.build_strategy(), calibration=task.calibration
    )
    return run.point


def run_sweep(
    tasks: Sequence[SweepTask],
    n_workers: Optional[int] = None,
) -> List[EnergyDelayPoint]:
    """Run tasks, preserving input order.

    ``n_workers=0`` (or 1 task) runs in-process; otherwise a process pool
    of ``n_workers`` (default: ``os.cpu_count()``) is used.
    """
    if n_workers == 0 or len(tasks) <= 1:
        return [_execute(task) for task in tasks]
    with ProcessPoolExecutor(max_workers=n_workers) as pool:
        return list(pool.map(_execute, tasks))


def parallel_full_sweep(
    workload: Workload,
    frequencies: Sequence[float],
    regions: Optional[Sequence[str]] = None,
    calibration: Optional[Calibration] = None,
    include_dynamic: bool = True,
    n_workers: Optional[int] = None,
) -> Dict[str, List[EnergyDelayPoint]]:
    """The parallel counterpart of
    :func:`repro.analysis.runner.full_strategy_sweep`."""
    tasks: List[SweepTask] = [
        SweepTask(workload, "cpuspeed", calibration=calibration)
    ]
    for f in frequencies:
        tasks.append(SweepTask(workload, "stat", frequency=f, calibration=calibration))
    if include_dynamic:
        for f in frequencies:
            tasks.append(
                SweepTask(
                    workload,
                    "dyn",
                    frequency=f,
                    regions=tuple(regions) if regions else None,
                    calibration=calibration,
                )
            )
    points = run_sweep(tasks, n_workers=n_workers)

    out: Dict[str, List[EnergyDelayPoint]] = {"cpuspeed": [points[0]]}
    n = len(frequencies)
    out["stat"] = points[1 : 1 + n]
    if include_dynamic:
        out["dyn"] = points[1 + n : 1 + 2 * n]
    return out
