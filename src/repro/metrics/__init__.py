"""Power-performance efficiency metrics (the paper's §2 contribution):
ED²P, the user-weighted ED²P generalisation, best-operating-point
selection, and the iso-efficiency trade-off curves of Figure 2."""

from repro.metrics.ed2p import (
    DELTA_ED2P,
    DELTA_ENERGY,
    DELTA_HPC,
    DELTA_PERFORMANCE,
    Ed2pReport,
    Ed2pRow,
    build_ed2p_report,
    check_delta,
    ed2p,
    weighted_ed2p,
)
from repro.metrics.attribution import (
    AttributionReport,
    AttributionRow,
    build_attribution_report,
)
from repro.metrics.chaos import ChaosReport, build_chaos_report
from repro.metrics.knobmap import KnobCell, KnobMapReport, best_knob
from repro.metrics.powercap import PowerCapReport, build_cap_report
from repro.metrics.protocol import ReportBase, ReportProtocol
from repro.metrics.records import EnergyDelayPoint, normalize_points
from repro.metrics.scaling import (
    GenerationVerdict,
    ScalingReport,
    build_scaling_report,
)
from repro.metrics.selection import BestPoint, best_operating_point, select_paper_rows
from repro.metrics.serving import (
    ServingReport,
    TierBreakdown,
    build_serving_report,
    latency_percentile,
)
from repro.metrics.tradeoff import (
    iso_efficiency_energy_fraction,
    required_energy_savings,
    tradeoff_curves,
)

__all__ = [
    "ed2p",
    "weighted_ed2p",
    "check_delta",
    "DELTA_ENERGY",
    "DELTA_ED2P",
    "DELTA_HPC",
    "DELTA_PERFORMANCE",
    "Ed2pReport",
    "Ed2pRow",
    "build_ed2p_report",
    "EnergyDelayPoint",
    "PowerCapReport",
    "build_cap_report",
    "ChaosReport",
    "build_chaos_report",
    "KnobCell",
    "KnobMapReport",
    "best_knob",
    "ServingReport",
    "TierBreakdown",
    "build_serving_report",
    "latency_percentile",
    "AttributionReport",
    "AttributionRow",
    "build_attribution_report",
    "GenerationVerdict",
    "ScalingReport",
    "build_scaling_report",
    "ReportBase",
    "ReportProtocol",
    "normalize_points",
    "BestPoint",
    "best_operating_point",
    "select_paper_rows",
    "iso_efficiency_energy_fraction",
    "required_energy_savings",
    "tradeoff_curves",
]
