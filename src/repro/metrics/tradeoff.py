"""Iso-efficiency trade-off curves (paper Figure 2).

Figure 2 plots, for each weight δ, the *remaining energy fraction* an
operating point may consume — as a function of its delay factor — while
still matching the efficiency of the reference point.  Setting the
weighted ED²P of the candidate equal to the reference's (E=D=1) gives::

    e^(1-δ) · d^(2(1+δ)) = 1   ⇒   e = d^( -2(1+δ)/(1-δ) )

Larger δ makes the curve fall faster: a performance-weighted user demands
much larger energy savings for the same slowdown.  At δ=+1 no finite
saving compensates any slowdown; at δ=−1 delay is irrelevant.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.metrics.ed2p import check_delta

__all__ = [
    "iso_efficiency_energy_fraction",
    "required_energy_savings",
    "tradeoff_curves",
]


def iso_efficiency_energy_fraction(delay_factor: float, delta: float) -> float:
    """Max energy fraction (relative to the reference) at ``delay_factor``.

    This is the y-axis of Figure 2 (as a fraction, not percent).
    """
    check_delta(delta)
    if delay_factor <= 0:
        raise ValueError(f"delay_factor must be positive, got {delay_factor}")
    if delta == 1.0:
        # Pure performance: any slowdown is unacceptable, any speedup free.
        if delay_factor > 1.0:
            return 0.0
        if delay_factor < 1.0:
            return np.inf
        return 1.0
    exponent = -2.0 * (1.0 + delta) / (1.0 - delta)
    return float(delay_factor**exponent)


def required_energy_savings(delay_factor: float, delta: float) -> float:
    """Minimum energy saving (fraction) needed to justify ``delay_factor``.

    The paper's worked example: at δ=0.2 a 5 % slowdown needs ≥13 %
    savings; at δ=0.4 a 10 % slowdown needs ≈32 %.
    """
    fraction = iso_efficiency_energy_fraction(delay_factor, delta)
    if np.isinf(fraction):
        return 0.0
    return max(0.0, 1.0 - fraction)


def tradeoff_curves(
    delay_factors: Sequence[float],
    deltas: Sequence[float],
) -> List[Tuple[float, np.ndarray]]:
    """The full Figure-2 family: one energy-fraction curve per δ."""
    out = []
    for delta in deltas:
        curve = np.array(
            [iso_efficiency_energy_fraction(d, delta) for d in delay_factors]
        )
        out.append((delta, curve))
    return out
