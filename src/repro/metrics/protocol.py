"""The common report protocol every metrics report implements.

Four report classes come out of the metrics layer — :class:`Ed2pReport`
(operating-point efficiency), :class:`PowerCapReport` (budget
compliance), :class:`ChaosReport` (fault recovery), and
:class:`AttributionReport` (per-phase energy) — and they all speak the
same surface:

* ``label`` — what the report describes;
* ``to_dict()`` — JSON-able plain data (what the run cache stores);
* ``to_json(indent=None)`` — the same, serialised;
* ``summary_lines()`` — human-readable lines for terminals and logs.

:class:`ReportProtocol` is runtime-checkable, so callers can accept
"any report" structurally::

    from repro.metrics import ReportProtocol

    def archive(report: ReportProtocol) -> None:
        assert isinstance(report, ReportProtocol)
        path.write_text(report.to_json(indent=2))

``tests/metrics/test_report_protocol.py`` exercises all four classes
against this contract so a new report (or a renamed method) cannot
silently fork the surface.
"""

from __future__ import annotations

import json
from typing import List, Optional, Protocol, runtime_checkable

__all__ = ["ReportProtocol", "ReportBase"]


@runtime_checkable
class ReportProtocol(Protocol):
    """Structural type of every metrics report."""

    @property
    def label(self) -> str: ...

    def to_dict(self) -> dict: ...

    def to_json(self, indent: Optional[int] = None) -> str: ...

    def summary_lines(self) -> List[str]: ...


class ReportBase:
    """Shared ``to_json`` so report classes only define ``to_dict``.

    Plain mixin (no dataclass fields) — frozen dataclasses inherit from
    it without affecting their generated ``__init__``/``__eq__``.
    """

    def to_dict(self) -> dict:  # pragma: no cover - always overridden
        raise NotImplementedError

    def to_json(self, indent: Optional[int] = None) -> str:
        """``to_dict()`` serialised with sorted keys (stable diffs)."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)
