"""The ED²P family of power-performance metrics (paper §2.2).

* Eq. 4, ``ED2P = E · D²`` — Martonosi et al.'s energy-delay-squared
  product, the DVS-appropriate efficiency metric: under ideal scaling
  (``P ∝ f³``, ``D ∝ 1/f``) it is frequency-invariant, so any *real*
  improvement reflects exploited slack rather than mere slowdown.
* Eq. 5, ``weighted ED2P = E^(1-δ) · D^(2(1+δ))`` with δ ∈ [-1, 1] —
  the paper's generalisation.  δ>0 weights performance more heavily,
  δ<0 weights energy; the extremes degenerate to pure energy² (δ=-1)
  and pure delay⁴ (δ=+1); δ=0 recovers Eq. 4.

The paper's HPC setting is δ=0.2 (:data:`DELTA_HPC`): for two operating
points 5 % apart in performance, the slower one must save ≥13 % energy to
win — "significant yet practically feasible".
"""

from __future__ import annotations

from repro.util.validation import check_positive

__all__ = [
    "DELTA_ENERGY",
    "DELTA_HPC",
    "DELTA_ED2P",
    "DELTA_PERFORMANCE",
    "ed2p",
    "weighted_ed2p",
    "check_delta",
]

#: All weight on energy: metric degenerates to E² (paper's "energy" rows).
DELTA_ENERGY = -1.0
#: The plain ED2P of Eq. 4.
DELTA_ED2P = 0.0
#: The paper's experimentally chosen HPC weighting.
DELTA_HPC = 0.2
#: All weight on performance: metric degenerates to D⁴ ("performance").
DELTA_PERFORMANCE = 1.0


def check_delta(delta: float) -> float:
    """Validate the user weight factor (−1 ≤ δ ≤ 1)."""
    if not -1.0 <= delta <= 1.0:
        raise ValueError(f"delta must be in [-1, 1], got {delta!r}")
    return delta


def ed2p(energy: float, delay: float) -> float:
    """Energy-delay-squared product (Eq. 4)."""
    check_positive("energy", energy)
    check_positive("delay", delay)
    return energy * delay * delay


def weighted_ed2p(energy: float, delay: float, delta: float = DELTA_ED2P) -> float:
    """Weighted ED²P, ``E^(1-δ) · D^(2(1+δ))`` (Eq. 5).

    Lower is better.  Absolute values are only comparable at equal δ;
    the paper always compares operating points of one application under
    one δ.
    """
    check_positive("energy", energy)
    check_positive("delay", delay)
    check_delta(delta)
    return energy ** (1.0 - delta) * delay ** (2.0 * (1.0 + delta))
