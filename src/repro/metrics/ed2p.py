"""The ED²P family of power-performance metrics (paper §2.2).

* Eq. 4, ``ED2P = E · D²`` — Martonosi et al.'s energy-delay-squared
  product, the DVS-appropriate efficiency metric: under ideal scaling
  (``P ∝ f³``, ``D ∝ 1/f``) it is frequency-invariant, so any *real*
  improvement reflects exploited slack rather than mere slowdown.
* Eq. 5, ``weighted ED2P = E^(1-δ) · D^(2(1+δ))`` with δ ∈ [-1, 1] —
  the paper's generalisation.  δ>0 weights performance more heavily,
  δ<0 weights energy; the extremes degenerate to pure energy² (δ=-1)
  and pure delay⁴ (δ=+1); δ=0 recovers Eq. 4.

The paper's HPC setting is δ=0.2 (:data:`DELTA_HPC`): for two operating
points 5 % apart in performance, the slower one must save ≥13 % energy to
win — "significant yet practically feasible".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.metrics.protocol import ReportBase
from repro.util.validation import check_positive

__all__ = [
    "DELTA_ENERGY",
    "DELTA_HPC",
    "DELTA_ED2P",
    "DELTA_PERFORMANCE",
    "ed2p",
    "weighted_ed2p",
    "check_delta",
    "Ed2pRow",
    "Ed2pReport",
    "build_ed2p_report",
]

#: All weight on energy: metric degenerates to E² (paper's "energy" rows).
DELTA_ENERGY = -1.0
#: The plain ED2P of Eq. 4.
DELTA_ED2P = 0.0
#: The paper's experimentally chosen HPC weighting.
DELTA_HPC = 0.2
#: All weight on performance: metric degenerates to D⁴ ("performance").
DELTA_PERFORMANCE = 1.0


def check_delta(delta: float) -> float:
    """Validate the user weight factor (−1 ≤ δ ≤ 1)."""
    if not -1.0 <= delta <= 1.0:
        raise ValueError(f"delta must be in [-1, 1], got {delta!r}")
    return delta


def ed2p(energy: float, delay: float) -> float:
    """Energy-delay-squared product (Eq. 4)."""
    check_positive("energy", energy)
    check_positive("delay", delay)
    return energy * delay * delay


def weighted_ed2p(energy: float, delay: float, delta: float = DELTA_ED2P) -> float:
    """Weighted ED²P, ``E^(1-δ) · D^(2(1+δ))`` (Eq. 5).

    Lower is better.  Absolute values are only comparable at equal δ;
    the paper always compares operating points of one application under
    one δ.
    """
    check_positive("energy", energy)
    check_positive("delay", delay)
    check_delta(delta)
    return energy ** (1.0 - delta) * delay ** (2.0 * (1.0 + delta))


@dataclass(frozen=True)
class Ed2pRow:
    """One operating point scored under one δ."""

    label: str
    frequency: float  #: Hz; 0.0 when the point has no single frequency
    energy_j: float
    delay_s: float
    weighted: float  #: ``weighted_ed2p(energy, delay, delta)``

    def to_dict(self) -> dict:
        return {
            "label": self.label,
            "frequency": self.frequency,
            "energy_j": self.energy_j,
            "delay_s": self.delay_s,
            "weighted": self.weighted,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Ed2pRow":
        return cls(
            label=str(data["label"]),
            frequency=float(data["frequency"]),
            energy_j=float(data["energy_j"]),
            delay_s=float(data["delay_s"]),
            weighted=float(data["weighted"]),
        )


@dataclass(frozen=True)
class Ed2pReport(ReportBase):
    """A crescendo's operating points scored under one δ (Eq. 5)."""

    label: str
    delta: float
    rows: Tuple[Ed2pRow, ...]

    @property
    def best(self) -> Ed2pRow:
        """The winning point (minimum weighted ED²P — lower is better)."""
        if not self.rows:
            raise ValueError("empty Ed2pReport has no best point")
        return min(self.rows, key=lambda row: row.weighted)

    def to_dict(self) -> dict:
        return {
            "label": self.label,
            "delta": self.delta,
            "rows": [row.to_dict() for row in self.rows],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Ed2pReport":
        return cls(
            label=str(data["label"]),
            delta=float(data["delta"]),
            rows=tuple(Ed2pRow.from_dict(row) for row in data["rows"]),
        )

    def summary_lines(self) -> List[str]:
        lines = [f"{self.label}: weighted ED²P at δ={self.delta:g}"]
        best = self.best if self.rows else None
        for row in self.rows:
            marker = "  <- best" if row is best else ""
            mhz = f"{row.frequency / 1e6:7.0f} MHz" if row.frequency else "        - "
            lines.append(
                f"  {row.label:24s} {mhz}  E={row.energy_j:9.2f} J  "
                f"D={row.delay_s:8.4f} s  wED2P={row.weighted:.4g}{marker}"
            )
        return lines


def build_ed2p_report(
    points: Sequence,
    delta: float = DELTA_HPC,
    label: str = "ed2p",
) -> Ed2pReport:
    """Score :class:`~repro.metrics.records.EnergyDelayPoint`\\ s under δ."""
    check_delta(delta)
    rows = tuple(
        Ed2pRow(
            label=p.label,
            frequency=p.frequency or 0.0,
            energy_j=p.energy,
            delay_s=p.delay,
            weighted=weighted_ed2p(p.energy, p.delay, delta),
        )
        for p in points
    )
    return Ed2pReport(label=label, delta=delta, rows=rows)
