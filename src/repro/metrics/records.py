"""Energy/delay records shared by the metrics and analysis layers."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.util.units import pretty_freq
from repro.util.validation import check_positive

__all__ = ["EnergyDelayPoint", "normalize_points"]


@dataclass(frozen=True)
class EnergyDelayPoint:
    """One measured operating point: the (E, D) pair of a complete run.

    Attributes
    ----------
    label:
        Strategy/operating-point label, e.g. ``"stat@800MHz"``.
    frequency:
        Nominal CPU frequency of the point in Hz (for static/dynamic
        strategies this is the x-axis of the paper's crescendos); ``None``
        for strategies without a single frequency (cpuspeed).
    energy:
        Total energy in joules (cluster-wide for distributed runs).
    delay:
        Time-to-solution in seconds.
    """

    label: str
    energy: float
    delay: float
    frequency: Optional[float] = None

    def __post_init__(self) -> None:
        check_positive("energy", self.energy)
        check_positive("delay", self.delay)

    def normalized_to(self, reference: "EnergyDelayPoint") -> "EnergyDelayPoint":
        """This point with E and D expressed relative to ``reference``."""
        return EnergyDelayPoint(
            label=self.label,
            energy=self.energy / reference.energy,
            delay=self.delay / reference.delay,
            frequency=self.frequency,
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        freq = f" ({pretty_freq(self.frequency)})" if self.frequency else ""
        return f"{self.label}{freq}: E={self.energy:.4g}J D={self.delay:.4g}s"


def normalize_points(
    points: Sequence[EnergyDelayPoint],
    reference: Optional[EnergyDelayPoint] = None,
) -> List[EnergyDelayPoint]:
    """Normalise a crescendo to a reference point.

    The paper normalises everything to the *fastest* operating point; when
    ``reference`` is omitted, the point with the highest frequency is used
    (falling back to the lowest delay when frequencies are absent).
    """
    if not points:
        raise ValueError("cannot normalise an empty point list")
    if reference is None:
        with_freq = [p for p in points if p.frequency is not None]
        if with_freq:
            reference = max(with_freq, key=lambda p: p.frequency)
        else:
            reference = min(points, key=lambda p: p.delay)
    return [p.normalized_to(reference) for p in points]
