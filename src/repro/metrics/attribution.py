"""Per-phase / per-rank energy attribution: spans joined to power.

The PowerPack question, made queryable: *which phase burned the energy?*
PowerPack answers it on real hardware by aligning meter samples with
application timestamps; here both sides are exact — the tracer's spans
carry simulated timestamps and each node's
:class:`~repro.hardware.timeline.PowerTimeline` integrates energy
exactly over any interval — so the join is exact too.

For each rank, the run interval ``[t0, t1]`` is partitioned at every
span boundary into elementary intervals.  Each elementary interval is
owned by the *outermost* covering span whose category matches
``categories`` (the collective, not the point-to-point message nested
inside it), or by the synthetic ``(compute)`` phase when no span covers
it.  Each interval's energy comes from the rank's own power timeline,
so per-rank phase energies sum to the rank's timeline energy *by
construction* — and the report total equals the run's
``cluster.total_energy(t0, t1)`` up to float rounding (the acceptance
criterion checks 1 %; the actual error is ~1 ulp).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.metrics.protocol import ReportBase

__all__ = [
    "COMPUTE_PHASE",
    "AttributionRow",
    "AttributionReport",
    "build_attribution_report",
]

#: Phase name for time no selected span covers.
COMPUTE_PHASE = "(compute)"

#: Default span categories that count as phases: blocking MPI operations.
DEFAULT_CATEGORIES = ("mpi.",)


@dataclass(frozen=True)
class AttributionRow:
    """One (rank, phase) cell of the attribution table."""

    rank: int
    phase: str
    time_s: float
    energy_j: float
    occurrences: int  #: selected spans of this phase on this rank

    @property
    def average_power_w(self) -> float:
        return self.energy_j / self.time_s if self.time_s > 0 else 0.0

    def to_dict(self) -> dict:
        return {
            "rank": self.rank,
            "phase": self.phase,
            "time_s": self.time_s,
            "energy_j": self.energy_j,
            "occurrences": self.occurrences,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "AttributionRow":
        return cls(
            rank=int(data["rank"]),
            phase=str(data["phase"]),
            time_s=float(data["time_s"]),
            energy_j=float(data["energy_j"]),
            occurrences=int(data["occurrences"]),
        )


@dataclass(frozen=True)
class AttributionReport(ReportBase):
    """Per-rank, per-phase energy over one run interval."""

    label: str
    t0: float
    t1: float
    #: sum of every row's energy == sum of attributed ranks' timeline energy
    total_energy_j: float
    rows: Tuple[AttributionRow, ...]
    categories: Tuple[str, ...]

    @property
    def duration_s(self) -> float:
        return self.t1 - self.t0

    def rank_energy(self) -> Dict[int, float]:
        """Total attributed energy per rank (the 1 %-criterion sums)."""
        out: Dict[int, float] = {}
        for row in self.rows:
            out[row.rank] = out.get(row.rank, 0.0) + row.energy_j
        return out

    def phase_totals(self) -> Dict[str, Tuple[float, float]]:
        """Phase → (time_s, energy_j) summed across ranks."""
        out: Dict[str, Tuple[float, float]] = {}
        for row in self.rows:
            t, e = out.get(row.phase, (0.0, 0.0))
            out[row.phase] = (t + row.time_s, e + row.energy_j)
        return out

    def to_dict(self) -> dict:
        return {
            "label": self.label,
            "t0": self.t0,
            "t1": self.t1,
            "total_energy_j": self.total_energy_j,
            "categories": list(self.categories),
            "rows": [row.to_dict() for row in self.rows],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "AttributionReport":
        return cls(
            label=str(data["label"]),
            t0=float(data["t0"]),
            t1=float(data["t1"]),
            total_energy_j=float(data["total_energy_j"]),
            rows=tuple(
                AttributionRow.from_dict(row) for row in data["rows"]
            ),
            categories=tuple(str(c) for c in data["categories"]),
        )

    def summary_lines(self) -> List[str]:
        lines = [
            f"{self.label}: {self.total_energy_j:.2f} J over "
            f"{self.duration_s:.4f} s "
            f"({len({r.rank for r in self.rows})} ranks)"
        ]
        totals = sorted(
            self.phase_totals().items(), key=lambda kv: -kv[1][1]
        )
        for phase, (time_s, energy_j) in totals:
            share = (
                energy_j / self.total_energy_j if self.total_energy_j else 0.0
            )
            lines.append(
                f"  {phase:16s} {energy_j:10.2f} J ({share:6.1%})  "
                f"{time_s:.4f} s"
            )
        return lines


def _clip_spans(
    spans: Sequence, rank: int, t0: float, t1: float, categories
) -> List[Tuple[float, float, str]]:
    """This rank's matching sim-clock spans clipped to ``[t0, t1]``."""
    clipped = []
    for s in spans:
        if s.track != rank or s.clock != "sim":
            continue
        if not any(s.cat.startswith(c) for c in categories):
            continue
        lo, hi = max(s.t0, t0), min(s.t1, t1)
        if hi > lo:
            clipped.append((lo, hi, s.name))
    return clipped


def build_attribution_report(
    cluster,
    tracer,
    t0: float,
    t1: float,
    *,
    ranks: Optional[Sequence[int]] = None,
    categories: Sequence[str] = DEFAULT_CATEGORIES,
    label: str = "attribution",
) -> AttributionReport:
    """Join a tracer's spans against the cluster's power timelines.

    Parameters
    ----------
    cluster:
        The :class:`~repro.hardware.cluster.Cluster` the traced run
        executed on (its node timelines are the energy source).
    tracer:
        A :class:`~repro.obs.tracer.Tracer` (or
        :class:`~repro.obs.export.TraceData`) holding the run's spans.
        Integer tracks are rank ids; other tracks are ignored.
    t0, t1:
        The run interval (``run.spmd.start`` / ``run.spmd.end``).
    ranks:
        Ranks to attribute (default: every cluster node).
    categories:
        Span-category prefixes that count as phases (default
        ``("mpi.",)`` — blocking MPI operations; nested matches
        attribute to the outermost, so a ``sendrecv`` inside an
        ``alltoall`` charges the collective).
    """
    if t1 < t0:
        raise ValueError(f"t1={t1} precedes t0={t0}")
    spans = tracer.spans
    if ranks is None:
        ranks = [node.node_id for node in cluster.nodes]

    rows: List[AttributionRow] = []
    total = 0.0
    for rank in ranks:
        series = cluster.nodes[rank].timeline.series()
        clipped = _clip_spans(spans, rank, t0, t1, tuple(categories))

        cuts = sorted({t0, t1, *(c[0] for c in clipped), *(c[1] for c in clipped)})
        # One batch kernel query per rank: the elementary intervals'
        # energies telescope through the prefix sum, so the per-phase
        # sums equal the rank's interval energy exactly by construction.
        elementary = np.column_stack((cuts[:-1], cuts[1:]))
        energies = series.energy_many(elementary)
        time_by_phase: Dict[str, float] = {}
        energy_by_phase: Dict[str, float] = {}
        for (lo, hi), joules in zip(zip(cuts, cuts[1:]), energies):
            if hi <= lo:
                continue
            # Outermost covering span: earliest start, longest on ties.
            covering = [
                (s_lo, s_hi, name)
                for s_lo, s_hi, name in clipped
                if s_lo <= lo and s_hi >= hi
            ]
            if covering:
                phase = min(covering, key=lambda c: (c[0], -c[1]))[2]
            else:
                phase = COMPUTE_PHASE
            time_by_phase[phase] = time_by_phase.get(phase, 0.0) + (hi - lo)
            energy_by_phase[phase] = (
                energy_by_phase.get(phase, 0.0) + float(joules)
            )

        counts: Dict[str, int] = {}
        for _, _, name in clipped:
            counts[name] = counts.get(name, 0) + 1

        for phase in sorted(time_by_phase):
            energy = energy_by_phase[phase]
            total += energy
            rows.append(
                AttributionRow(
                    rank=rank,
                    phase=phase,
                    time_s=time_by_phase[phase],
                    energy_j=energy,
                    occurrences=counts.get(phase, 0),
                )
            )

    return AttributionReport(
        label=label,
        t0=t0,
        t1=t1,
        total_energy_j=total,
        rows=tuple(rows),
        categories=tuple(categories),
    )
