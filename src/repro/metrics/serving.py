"""Serving-run scoring: latency percentiles + joules per request.

:func:`build_serving_report` turns one
:class:`~repro.serving.runner.ServingRun` into a
:class:`ServingReport`: end-to-end latency percentiles over completed
requests, a per-tier wait/service/residence breakdown, and the energy
ledger.

**Percentile convention** — nearest-rank: ``p(q)`` of ``n`` sorted
values is element ``ceil(q/100 · n)`` (1-indexed).  Every percentile
here is reproducible by a brute-force walk over the plain request
records, which is exactly how the property tests pin it.

**Energy attribution** — each request's tier spans are exclusive
occupancy of one node, so charging a request is a batch of exact
:meth:`~repro.hardware.series.PowerSeries.energy_many` interval queries
against that node's frozen series.  The remainder
``unattributed_energy_j = total − Σ attributed`` (idle power, base
power outside spans, control-plane overheads) is computed *by
construction* as total minus the attributed sum, so

    ``request_energy_j + unattributed_energy_j == energy_j``

holds to float round-off (the acceptance tests assert 1e-9).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.metrics.protocol import ReportBase

__all__ = [
    "ServingReport",
    "TierBreakdown",
    "attribute_request_energy",
    "build_serving_report",
    "latency_percentile",
]


def latency_percentile(values: Sequence[float], q: float) -> Optional[float]:
    """Nearest-rank percentile of ``values``; ``None`` when empty.

    ``q`` is in (0, 100].  Nearest-rank is exact on the sample (always
    returns an observed value), monotone in ``q``, and p100 is the max.
    """
    if not 0.0 < q <= 100.0:
        raise ValueError(f"q must be in (0, 100], got {q}")
    if not values:
        return None
    ordered = sorted(values)
    rank = math.ceil(q / 100.0 * len(ordered))
    return ordered[rank - 1]


def attribute_request_energy(
    cluster, records: Sequence
) -> Tuple[Dict[int, float], float]:
    """Exact joules per request from its tier spans.

    Returns ``(per_request, attributed_total)`` where ``per_request``
    maps request id → the summed energy of its service intervals
    (queried per node through the frozen power series, so batch results
    telescope exactly) and ``attributed_total`` is their float sum in
    request-id order.  Requests with no spans attribute 0.0 J.
    """
    series = cluster.series()
    by_node: Dict[int, List[Tuple[int, float, float]]] = {}
    for record in records:
        for span in record.spans:
            by_node.setdefault(span.node_id, []).append(
                (record.request_id, span.started_s, span.finished_s)
            )
    per_request: Dict[int, float] = {r.request_id: 0.0 for r in records}
    for node_id, entries in by_node.items():
        energies = series.node(node_id).energy_many(
            [(t0, t1) for _, t0, t1 in entries]
        )
        for (request_id, _, _), joules in zip(entries, energies):
            per_request[request_id] += float(joules)
    attributed = 0.0
    for request_id in sorted(per_request):
        attributed += per_request[request_id]
    return per_request, attributed


@dataclass(frozen=True)
class TierBreakdown:
    """One tier's latency contribution across every span it served."""

    tier: str
    served: int  #: spans (requests that reached service on this tier)
    mean_wait_s: float
    mean_service_s: float
    p50_s: Optional[float]  #: residence (wait + service) percentiles
    p95_s: Optional[float]
    p99_s: Optional[float]

    def to_dict(self) -> dict:
        return {
            "tier": self.tier,
            "served": self.served,
            "mean_wait_s": self.mean_wait_s,
            "mean_service_s": self.mean_service_s,
            "p50_s": self.p50_s,
            "p95_s": self.p95_s,
            "p99_s": self.p99_s,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TierBreakdown":
        def opt(value) -> Optional[float]:
            return None if value is None else float(value)

        return cls(
            tier=str(data["tier"]),
            served=int(data["served"]),
            mean_wait_s=float(data["mean_wait_s"]),
            mean_service_s=float(data["mean_service_s"]),
            p50_s=opt(data["p50_s"]),
            p95_s=opt(data["p95_s"]),
            p99_s=opt(data["p99_s"]),
        )


@dataclass(frozen=True)
class ServingReport(ReportBase):
    """Outcome of one serving run: latency, throughput, energy ledger."""

    label: str
    n_requests: int
    completed: int
    dropped: int
    timed_out: int
    duration_s: float
    throughput_rps: float  #: completed requests / duration
    p50_s: Optional[float]  #: end-to-end latency percentiles (completed)
    p95_s: Optional[float]
    p99_s: Optional[float]
    energy_j: float  #: total cluster energy over the run window
    request_energy_j: float  #: Σ per-request attributed service energy
    unattributed_energy_j: float  #: energy_j − request_energy_j (idle, base)
    energy_per_request_j: Optional[float]  #: energy_j / completed
    tiers: Tuple[TierBreakdown, ...]
    #: governor feasibility ledger, populated when the policy embeds a
    #: :class:`~repro.powercap.governor.CapGovernor` (elastic serving):
    #: windows whose plan met the target / windows closed.  ``None``
    #: for policies with no governor.
    cap_feasible_windows: Optional[int] = None
    cap_total_windows: Optional[int] = None
    #: deepest knob the governor actually actuated over the run
    #: (``"dvfs"``, ``"cores"``, or ``"gate"``; ``None`` = no governor)
    cap_escalation: Optional[str] = None

    @property
    def average_power_w(self) -> float:
        return self.energy_j / self.duration_s

    @property
    def cap_feasible_fraction(self) -> Optional[float]:
        """Share of governor windows with a feasible plan (None = no cap)."""
        if self.cap_total_windows is None or not self.cap_total_windows:
            return None
        assert self.cap_feasible_windows is not None
        return self.cap_feasible_windows / self.cap_total_windows

    def meets_slo(self, p99_slo_s: float) -> bool:
        """SLO verdict: every request served, p99 within the budget.

        Dropped or timed-out requests are violations in their own right
        — a policy must not buy its percentile by shedding load.
        """
        return (
            self.completed > 0
            and self.dropped == 0
            and self.timed_out == 0
            and self.p99_s is not None
            and self.p99_s <= p99_slo_s
        )

    # -- cache round-trip ----------------------------------------------
    def to_dict(self) -> dict:
        return {
            "label": self.label,
            "n_requests": self.n_requests,
            "completed": self.completed,
            "dropped": self.dropped,
            "timed_out": self.timed_out,
            "duration_s": self.duration_s,
            "throughput_rps": self.throughput_rps,
            "p50_s": self.p50_s,
            "p95_s": self.p95_s,
            "p99_s": self.p99_s,
            "energy_j": self.energy_j,
            "request_energy_j": self.request_energy_j,
            "unattributed_energy_j": self.unattributed_energy_j,
            "energy_per_request_j": self.energy_per_request_j,
            "tiers": [tier.to_dict() for tier in self.tiers],
            "cap_feasible_windows": self.cap_feasible_windows,
            "cap_total_windows": self.cap_total_windows,
            "cap_escalation": self.cap_escalation,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ServingReport":
        def opt(value) -> Optional[float]:
            return None if value is None else float(value)

        return cls(
            label=str(data["label"]),
            n_requests=int(data["n_requests"]),
            completed=int(data["completed"]),
            dropped=int(data["dropped"]),
            timed_out=int(data["timed_out"]),
            duration_s=float(data["duration_s"]),
            throughput_rps=float(data["throughput_rps"]),
            p50_s=opt(data["p50_s"]),
            p95_s=opt(data["p95_s"]),
            p99_s=opt(data["p99_s"]),
            energy_j=float(data["energy_j"]),
            request_energy_j=float(data["request_energy_j"]),
            unattributed_energy_j=float(data["unattributed_energy_j"]),
            energy_per_request_j=opt(data["energy_per_request_j"]),
            tiers=tuple(
                TierBreakdown.from_dict(t) for t in data.get("tiers", [])
            ),
            cap_feasible_windows=(
                None
                if data.get("cap_feasible_windows") is None
                else int(data["cap_feasible_windows"])
            ),
            cap_total_windows=(
                None
                if data.get("cap_total_windows") is None
                else int(data["cap_total_windows"])
            ),
            cap_escalation=(
                None
                if data.get("cap_escalation") is None
                else str(data["cap_escalation"])
            ),
        )

    def summary_lines(self) -> List[str]:
        def ms(value: Optional[float]) -> str:
            return "n/a" if value is None else f"{value * 1e3:.1f}ms"

        lines = [
            f"{self.label}: {self.completed}/{self.n_requests} served "
            f"({self.dropped} dropped, {self.timed_out} timed out) "
            f"over {self.duration_s:.2f}s — {self.throughput_rps:.1f} req/s",
            f"  latency p50={ms(self.p50_s)} p95={ms(self.p95_s)} "
            f"p99={ms(self.p99_s)}",
            f"  energy {self.energy_j:.1f}J total "
            f"({self.request_energy_j:.1f}J attributed to requests, "
            f"{self.unattributed_energy_j:.1f}J idle/base), "
            + (
                "n/a J/req"
                if self.energy_per_request_j is None
                else f"{self.energy_per_request_j:.3f} J/req"
            ),
        ]
        if self.cap_total_windows is not None:
            lines.append(
                f"  cap plan feasible {self.cap_feasible_windows}/"
                f"{self.cap_total_windows} windows"
            )
        for tier in self.tiers:
            lines.append(
                f"  tier {tier.tier}: {tier.served} served, "
                f"wait {tier.mean_wait_s * 1e3:.2f}ms, "
                f"service {tier.mean_service_s * 1e3:.2f}ms, "
                f"residence p99={ms(tier.p99_s)}"
            )
        return lines


def build_serving_report(run, label: Optional[str] = None) -> ServingReport:
    """Score one :class:`~repro.serving.runner.ServingRun`.

    Percentiles cover *completed* requests only (a dropped request has
    no meaningful end-to-end latency; its count is reported separately
    and fails :meth:`ServingReport.meets_slo` regardless).  The tier
    breakdown covers every span actually served, including spans of
    requests that later timed out or were dropped downstream — that
    work happened on the tier and belongs in its statistics.
    """
    governor = getattr(run.policy, "governor", None)
    windows = getattr(governor, "windows", None)
    escalation = None
    if governor is not None:
        escalation = "dvfs"
        for actuator in getattr(governor, "actuators", []):
            log = getattr(actuator, "log", None)
            if not log:
                continue
            kinds = getattr(actuator, "kinds", ())
            names = {k.__name__ for k in kinds}
            if "GateNode" in names and any(
                entry[2] in ("gate", "drain") for entry in log
            ):
                escalation = "gate"
                break
            if "SetCoreAllocation" in names:
                escalation = "cores"
    records = run.records
    completed = [r for r in records if r.status == "ok"]
    dropped = sum(1 for r in records if r.status == "dropped")
    timed_out = sum(1 for r in records if r.status == "timeout")
    duration = run.duration_s
    latencies = [r.latency_s for r in completed]

    per_request, attributed = attribute_request_energy(run.cluster, records)
    del per_request  # report carries the ledger; callers re-derive rows
    energy = run.energy_j

    tiers = []
    for name in run.workload.tier_names:
        spans = [
            span
            for record in records
            for span in record.spans
            if span.tier == name
        ]
        residences = [span.residence_s for span in spans]
        served = len(spans)
        tiers.append(
            TierBreakdown(
                tier=name,
                served=served,
                mean_wait_s=(
                    sum(s.wait_s for s in spans) / served if served else 0.0
                ),
                mean_service_s=(
                    sum(s.service_s for s in spans) / served if served else 0.0
                ),
                p50_s=latency_percentile(residences, 50.0),
                p95_s=latency_percentile(residences, 95.0),
                p99_s=latency_percentile(residences, 99.0),
            )
        )

    return ServingReport(
        label=label
        if label is not None
        else getattr(run.policy, "name", "serving"),
        n_requests=len(records),
        completed=len(completed),
        dropped=dropped,
        timed_out=timed_out,
        duration_s=duration,
        throughput_rps=len(completed) / duration if duration > 0 else 0.0,
        p50_s=latency_percentile(latencies, 50.0),
        p95_s=latency_percentile(latencies, 95.0),
        p99_s=latency_percentile(latencies, 99.0),
        energy_j=energy,
        request_energy_j=attributed,
        unattributed_energy_j=energy - attributed,
        energy_per_request_j=(
            energy / len(completed) if completed else None
        ),
        tiers=tuple(tiers),
        cap_feasible_windows=(
            None
            if windows is None
            else sum(1 for w in windows if w.feasible)
        ),
        cap_total_windows=None if windows is None else len(windows),
        cap_escalation=escalation,
    )
