"""Budget-constrained efficiency reporting (the cap governor's scoreboard).

A capped run is judged on three axes at once: did it *hold the budget*
(windowed compliance), what power did it *actually draw* (achieved
average, worst window), and what performance did it *give up* for that
(slowdown versus the uncapped run, plus the paper's weighted ED²P so
capped operating points drop into the existing selection machinery).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.metrics.ed2p import DELTA_HPC, weighted_ed2p
from repro.metrics.protocol import ReportBase

__all__ = ["PowerCapReport", "build_cap_report"]


@dataclass(frozen=True)
class PowerCapReport(ReportBase):
    """Outcome of one run under one power budget."""

    label: str  #: e.g. "cap@150W/redist"
    cap_watts: float
    tolerance: float
    energy_j: float
    delay_s: float
    achieved_avg_watts: float  #: whole-run average cluster power
    peak_window_watts: float  #: worst windowed average observed
    violation_windows: int
    total_windows: int
    #: D_capped / D_uncapped − 1; None when no uncapped reference was run
    slowdown_vs_uncapped: Optional[float] = None

    @property
    def compliant(self) -> bool:
        """No window exceeded cap × (1 + tolerance)."""
        return self.violation_windows == 0

    @property
    def average_power_w(self) -> float:
        """E/D (Eq. 3) — the meter's-eye view of the whole run."""
        return self.energy_j / self.delay_s

    def ed2p(self, delta: float = DELTA_HPC) -> float:
        """Weighted ED²P of the capped run (lower is better)."""
        return weighted_ed2p(self.energy_j, self.delay_s, delta)

    def to_dict(self) -> dict:
        return {
            "label": self.label,
            "cap_watts": self.cap_watts,
            "tolerance": self.tolerance,
            "energy_j": self.energy_j,
            "delay_s": self.delay_s,
            "achieved_avg_watts": self.achieved_avg_watts,
            "peak_window_watts": self.peak_window_watts,
            "violation_windows": self.violation_windows,
            "total_windows": self.total_windows,
            "slowdown_vs_uncapped": self.slowdown_vs_uncapped,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PowerCapReport":
        slowdown = data.get("slowdown_vs_uncapped")
        return cls(
            label=str(data["label"]),
            cap_watts=float(data["cap_watts"]),
            tolerance=float(data["tolerance"]),
            energy_j=float(data["energy_j"]),
            delay_s=float(data["delay_s"]),
            achieved_avg_watts=float(data["achieved_avg_watts"]),
            peak_window_watts=float(data["peak_window_watts"]),
            violation_windows=int(data["violation_windows"]),
            total_windows=int(data["total_windows"]),
            slowdown_vs_uncapped=(
                None if slowdown is None else float(slowdown)
            ),
        )

    def summary_lines(self) -> List[str]:
        verdict = "compliant" if self.compliant else (
            f"{self.violation_windows}/{self.total_windows} windows over cap"
        )
        lines = [
            f"{self.label}: cap {self.cap_watts:.1f} W "
            f"(+{self.tolerance:.0%} tolerance) — {verdict}",
            f"  achieved {self.achieved_avg_watts:.1f} W avg, "
            f"{self.peak_window_watts:.1f} W peak window",
            f"  E={self.energy_j:.2f} J  D={self.delay_s:.4f} s  "
            f"wED2P={self.ed2p():.4g}",
        ]
        if self.slowdown_vs_uncapped is not None:
            lines.append(
                f"  slowdown vs uncapped: {self.slowdown_vs_uncapped:+.1%}"
            )
        return lines


def build_cap_report(
    label: str,
    cap_watts: float,
    tolerance: float,
    energy_j: float,
    delay_s: float,
    window_watts: Sequence[float],
    window_durations: Sequence[float],
    uncapped_delay_s: Optional[float] = None,
) -> PowerCapReport:
    """Assemble a report from raw run measurements.

    ``window_watts``/``window_durations`` are the governor's closed
    control windows (see
    :class:`repro.powercap.governor.GovernorWindow`); violations are
    counted against ``cap_watts × (1 + tolerance)``.
    """
    if len(window_watts) != len(window_durations):
        raise ValueError(
            f"{len(window_watts)} window powers vs "
            f"{len(window_durations)} durations"
        )
    limit = cap_watts * (1.0 + tolerance)
    total_t = sum(window_durations)
    achieved = (
        sum(w * d for w, d in zip(window_watts, window_durations)) / total_t
        if total_t > 0
        else 0.0
    )
    slowdown = (
        delay_s / uncapped_delay_s - 1.0 if uncapped_delay_s else None
    )
    return PowerCapReport(
        label=label,
        cap_watts=cap_watts,
        tolerance=tolerance,
        energy_j=energy_j,
        delay_s=delay_s,
        achieved_avg_watts=achieved,
        peak_window_watts=max(window_watts, default=0.0),
        violation_windows=sum(1 for w in window_watts if w > limit),
        total_windows=len(window_watts),
        slowdown_vs_uncapped=slowdown,
    )
