"""The knob map: load × budget depth → best power-control knob.

Krzywda et al.'s central observation (PAPERS.md) is that "which knob?"
has no single answer — it depends on where you sit in the (load, budget)
plane.  :class:`KnobMapReport` materialises that plane for this
reproduction's serving stack: every cell records how each contending
policy (the full elastic control plane and its pure-DVFS degenerations)
fared against the cell's budget, which policy won, and whether the
budget was *meetable at all* (``feasible=False`` marks the regime below
the cluster's suspend-floor draw, where no knob combination helps).

The winning knob per cell:

* ``"dvfs"`` — a pure-DVFS policy met the budget (the cheapest knob
  suffices: shallow cuts);
* ``"cores"`` / ``"gate"`` — only the elastic policy met it, and its
  deepest escalation was core allocation / node gating respectively
  (medium / deep cuts);
* ``"none"`` — nothing met it (``feasible=False``).

Construction is pure data-plumbing over
:class:`~repro.metrics.serving.ServingReport` ledgers — the report
layer never re-simulates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.metrics.protocol import ReportBase

__all__ = ["KnobCell", "KnobMapReport", "best_knob"]

#: Ranking of knob escalation depth, shallowest first.
_KNOB_DEPTH = {"dvfs": 0, "cores": 1, "gate": 2}


def best_knob(
    met_by_dvfs: bool, met_by_elastic: bool, elastic_escalation: str
) -> str:
    """The cheapest knob that met a cell's budget (``"none"`` if none).

    ``elastic_escalation`` is the deepest knob the elastic policy
    actually actuated in that cell (``"dvfs"`` when it never escalated).
    """
    if met_by_dvfs:
        return "dvfs"
    if met_by_elastic:
        return elastic_escalation
    return "none"


@dataclass(frozen=True)
class KnobCell:
    """One (load, budget-depth) cell of the knob map."""

    base_rate_rps: float  #: the diurnal workload's base arrival rate
    budget_frac: float  #: budget as a fraction of static-max draw
    budget_watts: float
    #: policy label → measured average watts over the run window
    policy_watts: Dict[str, float]
    #: policy label → whether it held its average under the budget
    policy_met: Dict[str, bool]
    #: deepest knob the elastic policy escalated to ("dvfs"/"cores"/"gate")
    elastic_escalation: str
    best_knob: str  #: cheapest knob that met the budget, or "none"
    feasible: bool  #: some policy met the budget
    elastic_p99_s: Optional[float]  #: elastic policy's end-to-end p99

    def to_dict(self) -> dict:
        return {
            "base_rate_rps": self.base_rate_rps,
            "budget_frac": self.budget_frac,
            "budget_watts": self.budget_watts,
            "policy_watts": dict(self.policy_watts),
            "policy_met": dict(self.policy_met),
            "elastic_escalation": self.elastic_escalation,
            "best_knob": self.best_knob,
            "feasible": self.feasible,
            "elastic_p99_s": self.elastic_p99_s,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "KnobCell":
        return cls(
            base_rate_rps=float(data["base_rate_rps"]),
            budget_frac=float(data["budget_frac"]),
            budget_watts=float(data["budget_watts"]),
            policy_watts={
                str(k): float(v) for k, v in data["policy_watts"].items()
            },
            policy_met={
                str(k): bool(v) for k, v in data["policy_met"].items()
            },
            elastic_escalation=str(data["elastic_escalation"]),
            best_knob=str(data["best_knob"]),
            feasible=bool(data["feasible"]),
            elastic_p99_s=(
                None
                if data.get("elastic_p99_s") is None
                else float(data["elastic_p99_s"])
            ),
        )


@dataclass(frozen=True)
class KnobMapReport(ReportBase):
    """The full load × budget-depth map plus its headline claims."""

    label: str
    workload: str  #: workload family name
    static_watts: Dict[str, float]  #: per-rate static-max reference draw
    cells: Tuple[KnobCell, ...]

    @property
    def infeasible_cells(self) -> Tuple[KnobCell, ...]:
        """Cells no policy could hold under budget."""
        return tuple(c for c in self.cells if not c.feasible)

    @property
    def elastic_only_cells(self) -> Tuple[KnobCell, ...]:
        """Cells only the multi-knob elastic policy held under budget."""
        return tuple(
            c
            for c in self.cells
            if c.feasible and c.best_knob in ("cores", "gate")
        )

    def cell(self, base_rate_rps: float, budget_frac: float) -> KnobCell:
        """Lookup one cell (exact match on both coordinates)."""
        for c in self.cells:
            if (
                c.base_rate_rps == base_rate_rps
                and c.budget_frac == budget_frac
            ):
                return c
        raise KeyError(
            f"no cell at rate={base_rate_rps}, frac={budget_frac}"
        )

    # -- cache round-trip ----------------------------------------------
    def to_dict(self) -> dict:
        return {
            "label": self.label,
            "workload": self.workload,
            "static_watts": dict(self.static_watts),
            "cells": [c.to_dict() for c in self.cells],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "KnobMapReport":
        return cls(
            label=str(data["label"]),
            workload=str(data["workload"]),
            static_watts={
                str(k): float(v) for k, v in data["static_watts"].items()
            },
            cells=tuple(KnobCell.from_dict(c) for c in data["cells"]),
        )

    def summary_lines(self) -> List[str]:
        lines = [
            f"{self.label}: {len(self.cells)} (load, budget) cells — "
            f"{len(self.elastic_only_cells)} elastic-only, "
            f"{len(self.infeasible_cells)} infeasible"
        ]
        rates = sorted({c.base_rate_rps for c in self.cells})
        fracs = sorted(
            {c.budget_frac for c in self.cells}, reverse=True
        )
        header = "  rate\\frac " + " ".join(f"{f:>6.2f}" for f in fracs)
        lines.append(header)
        for rate in rates:
            row = [f"  {rate:>9.0f}"]
            for frac in fracs:
                try:
                    row.append(f"{self.cell(rate, frac).best_knob:>6}")
                except KeyError:
                    row.append(f"{'-':>6}")
            lines.append(" ".join(row))
        return lines
