"""Cross-generation verdicts: does the paper's result survive the shrink?

The ``techscaling`` experiment re-runs the paper's comparison — slack-
driven DVS vs the cpuspeed daemon vs static points — on the Table-2
platform ported to each projected technology generation.  This module
turns those per-generation point series into one
:class:`ScalingReport`: for every generation, did slack-driven DVS still
beat cpuspeed on **energy** and on **weighted E·D²** (the paper's δ=0.2
HPC setting), and how many ladder rungs were even left to work with.

All points are normalized *within their generation* to that
generation's fastest static run, exactly as the paper normalizes each
figure — the question is whether the paper's qualitative result holds,
not how many absolute joules a 8 nm part draws.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Sequence, Tuple

from repro.metrics.ed2p import DELTA_HPC, weighted_ed2p
from repro.metrics.protocol import ReportBase
from repro.metrics.records import EnergyDelayPoint

__all__ = ["GenerationVerdict", "ScalingReport", "build_scaling_report"]


@dataclass(frozen=True)
class GenerationVerdict:
    """The paper's comparison re-judged on one technology generation.

    Energies/delays are normalized to the generation's fastest static
    run; ``dyn_*`` is the best slack-driven point (lowest weighted
    E·D², the same criterion the paper's selection machinery uses).
    """

    tech: str  #: e.g. ``"22nm/itrs"``
    nm: int
    projection: str
    rungs: int  #: usable ladder rungs after the Vth-bounded cut
    slowest_mhz: float
    fastest_mhz: float
    dyn_label: str  #: which dyn base point won
    dyn_energy: float
    dyn_delay: float
    cpuspeed_energy: float
    cpuspeed_delay: float

    @property
    def dyn_ed2p(self) -> float:
        return weighted_ed2p(self.dyn_energy, self.dyn_delay, DELTA_HPC)

    @property
    def cpuspeed_ed2p(self) -> float:
        return weighted_ed2p(
            self.cpuspeed_energy, self.cpuspeed_delay, DELTA_HPC
        )

    @property
    def dvs_beats_cpuspeed_energy(self) -> bool:
        return self.dyn_energy < self.cpuspeed_energy

    @property
    def dvs_beats_cpuspeed_ed2p(self) -> bool:
        return self.dyn_ed2p < self.cpuspeed_ed2p

    @property
    def holds(self) -> bool:
        """The paper's result on this generation: DVS wins both axes."""
        return self.dvs_beats_cpuspeed_energy and self.dvs_beats_cpuspeed_ed2p

    def to_dict(self) -> dict:
        return {
            "tech": self.tech,
            "nm": self.nm,
            "projection": self.projection,
            "rungs": self.rungs,
            "slowest_mhz": self.slowest_mhz,
            "fastest_mhz": self.fastest_mhz,
            "dyn_label": self.dyn_label,
            "dyn_energy": self.dyn_energy,
            "dyn_delay": self.dyn_delay,
            "dyn_ed2p": self.dyn_ed2p,
            "cpuspeed_energy": self.cpuspeed_energy,
            "cpuspeed_delay": self.cpuspeed_delay,
            "cpuspeed_ed2p": self.cpuspeed_ed2p,
            "beats_energy": self.dvs_beats_cpuspeed_energy,
            "beats_ed2p": self.dvs_beats_cpuspeed_ed2p,
            "holds": self.holds,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "GenerationVerdict":
        # derived keys (dyn_ed2p, beats_*, holds) are recomputed, not read
        return cls(
            tech=str(data["tech"]),
            nm=int(data["nm"]),
            projection=str(data["projection"]),
            rungs=int(data["rungs"]),
            slowest_mhz=float(data["slowest_mhz"]),
            fastest_mhz=float(data["fastest_mhz"]),
            dyn_label=str(data["dyn_label"]),
            dyn_energy=float(data["dyn_energy"]),
            dyn_delay=float(data["dyn_delay"]),
            cpuspeed_energy=float(data["cpuspeed_energy"]),
            cpuspeed_delay=float(data["cpuspeed_delay"]),
        )


@dataclass(frozen=True)
class ScalingReport(ReportBase):
    """Per-generation verdicts for one workload across the shrink."""

    label: str  #: e.g. "techscaling/ft.B.8"
    workload: str
    verdicts: Tuple[GenerationVerdict, ...]

    @property
    def holds_everywhere(self) -> bool:
        """Whether the paper's result survives every generation swept."""
        return all(v.holds for v in self.verdicts)

    def verdict_for(self, tech: str) -> GenerationVerdict:
        for v in self.verdicts:
            if v.tech == tech:
                return v
        raise KeyError(
            f"no verdict for {tech!r}; "
            f"swept: {[v.tech for v in self.verdicts]}"
        )

    def to_dict(self) -> dict:
        return {
            "label": self.label,
            "workload": self.workload,
            "holds_everywhere": self.holds_everywhere,
            "verdicts": [v.to_dict() for v in self.verdicts],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ScalingReport":
        return cls(
            label=str(data["label"]),
            workload=str(data["workload"]),
            verdicts=tuple(
                GenerationVerdict.from_dict(v) for v in data["verdicts"]
            ),
        )

    def summary_lines(self) -> List[str]:
        lines = [
            f"{self.label}: paper's result "
            + (
                "holds on every generation swept"
                if self.holds_everywhere
                else "BREAKS on at least one generation"
            )
        ]
        for v in self.verdicts:
            energy = "<" if v.dvs_beats_cpuspeed_energy else ">="
            ed2p = "<" if v.dvs_beats_cpuspeed_ed2p else ">="
            lines.append(
                f"  {v.tech}: {v.rungs} rungs "
                f"({v.slowest_mhz:.0f}-{v.fastest_mhz:.0f} MHz) — "
                f"dyn E={v.dyn_energy:.3f} {energy} cpuspeed "
                f"E={v.cpuspeed_energy:.3f}; "
                f"dyn ED2={v.dyn_ed2p:.3f} {ed2p} cpuspeed "
                f"ED2={v.cpuspeed_ed2p:.3f} "
                f"[{'holds' if v.holds else 'breaks'}]"
            )
        return lines


def build_scaling_report(
    label: str,
    workload: str,
    generations: Sequence[
        Tuple[object, Sequence[float], Mapping[str, Sequence[EnergyDelayPoint]]]
    ],
) -> ScalingReport:
    """Assemble the report from per-generation normalized series.

    ``generations`` is one ``(tech, ladder_frequencies_hz, series)``
    triple per generation, in sweep order: ``tech`` is a
    :class:`~repro.hardware.scaling.TechNode`, the frequencies are the
    generation's *usable* ladder (slowest first), and ``series`` maps
    ``"dyn"`` (one point per base frequency) and ``"cpuspeed"`` (one
    point), both already normalized to the generation's fastest static
    run.  The best dyn point is picked by weighted E·D² (δ=0.2).
    """
    verdicts: List[GenerationVerdict] = []
    for tech, frequencies, series in generations:
        dyn_points = list(series["dyn"])
        if not dyn_points:
            raise ValueError(f"{tech}: empty dyn series")
        cpuspeed = list(series["cpuspeed"])[0]
        best = min(
            dyn_points,
            key=lambda p: weighted_ed2p(p.energy, p.delay, DELTA_HPC),
        )
        verdicts.append(
            GenerationVerdict(
                tech=str(getattr(tech, "label", tech)),
                nm=int(getattr(tech, "nm", 0)),
                projection=str(getattr(tech, "projection", "")),
                rungs=len(frequencies),
                slowest_mhz=min(frequencies) / 1e6,
                fastest_mhz=max(frequencies) / 1e6,
                dyn_label=best.label,
                dyn_energy=best.energy,
                dyn_delay=best.delay,
                cpuspeed_energy=cpuspeed.energy,
                cpuspeed_delay=cpuspeed.delay,
            )
        )
    return ScalingReport(
        label=label, workload=workload, verdicts=tuple(verdicts)
    )
