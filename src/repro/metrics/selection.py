"""Best-operating-point selection (paper Eq. 6 and Tables 1/3).

Given a crescendo — the (E, D) pairs of one application across operating
points — the "best" point under a weight δ is the one minimising weighted
ED²P.  The paper reports three selections per application:

* *energy* (δ = −1),
* *performance* (δ = +1),
* *HPC* (δ = 0.2),

plus the efficiency improvement of the best point over the fastest one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.metrics.ed2p import (
    DELTA_ENERGY,
    DELTA_HPC,
    DELTA_PERFORMANCE,
    check_delta,
    weighted_ed2p,
)
from repro.metrics.records import EnergyDelayPoint

__all__ = ["BestPoint", "best_operating_point", "select_paper_rows"]


@dataclass(frozen=True)
class BestPoint:
    """The winning operating point under one δ."""

    delta: float
    point: EnergyDelayPoint
    metric: float  #: its weighted ED²P value
    #: efficiency improvement over the reference (fastest) point:
    #: ``1 − metric(best)/metric(reference)``; 0 when the fastest wins.
    improvement_vs_reference: float


def best_operating_point(
    points: Sequence[EnergyDelayPoint],
    delta: float,
    reference: Optional[EnergyDelayPoint] = None,
) -> BestPoint:
    """Minimise weighted ED²P over ``points`` (Eq. 6).

    ``reference`` defaults to the highest-frequency point (the paper's
    normalisation); the reported improvement is relative to it.  Ties
    break toward the higher frequency, matching the paper's preference
    for performance at equal efficiency.
    """
    check_delta(delta)
    if not points:
        raise ValueError("cannot select from an empty crescendo")
    if reference is None:
        with_freq = [p for p in points if p.frequency is not None]
        reference = (
            max(with_freq, key=lambda p: p.frequency)
            if with_freq
            else min(points, key=lambda p: p.delay)
        )

    def key(p: EnergyDelayPoint):
        freq = p.frequency if p.frequency is not None else 0.0
        return (weighted_ed2p(p.energy, p.delay, delta), -freq)

    winner = min(points, key=key)
    best_metric = weighted_ed2p(winner.energy, winner.delay, delta)
    ref_metric = weighted_ed2p(reference.energy, reference.delay, delta)
    improvement = 1.0 - best_metric / ref_metric if ref_metric > 0 else 0.0
    return BestPoint(
        delta=delta,
        point=winner,
        metric=best_metric,
        improvement_vs_reference=improvement,
    )


def select_paper_rows(
    points: Sequence[EnergyDelayPoint],
    hpc_delta: float = DELTA_HPC,
) -> Dict[str, BestPoint]:
    """The three rows of the paper's Tables 1 and 3.

    Returns ``{"HPC": ..., "energy": ..., "performance": ...}``.
    """
    return {
        "HPC": best_operating_point(points, hpc_delta),
        "energy": best_operating_point(points, DELTA_ENERGY),
        "performance": best_operating_point(points, DELTA_PERFORMANCE),
    }
