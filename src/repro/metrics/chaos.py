"""Chaos-run scoring: budget compliance in the presence of faults.

A faulted run cannot be judged like a fault-free one — a node crash or a
stuck regulator legitimately knocks the control loop off its setpoint
for a bounded moment.  What separates a hardened governor from a naive
one is that its violations are *transient*: every breach clusters within
an allowed recovery latency of some fault transition (activation or
clearance), after which the loop is back inside the budget.

:func:`build_chaos_report` encodes exactly that.  A violating window
``w`` is **excused** iff some fault transition ``τ`` satisfies
``w.t1 > τ and w.t0 < τ + allowed_recovery_s`` — i.e. the window
overlaps the grace interval ``[τ, τ + allowed_recovery_s)``.  Windows
violating outside every grace interval are **post-recovery violations**:
the number the acceptance criteria require to be zero for the hardened
governor and demonstrably non-zero for the fair-weather baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.metrics.ed2p import DELTA_HPC, weighted_ed2p
from repro.metrics.protocol import ReportBase
from repro.powercap.budget import PowerBudget

__all__ = ["ChaosReport", "build_chaos_report"]


@dataclass(frozen=True)
class ChaosReport(ReportBase):
    """Outcome of one run under one budget and one fault plan."""

    label: str  #: e.g. "cap@120W/redist+selfheal"
    cap_watts: float
    tolerance: float
    energy_j: float
    delay_s: float
    total_windows: int
    violation_windows: int  #: windows over cap × (1 + tolerance), total
    excused_violations: int  #: violations inside some recovery grace interval
    post_recovery_violations: int  #: violations no transition excuses
    #: worst time-to-recover observed: max over transitions of (end of the
    #: last violating window attributed to that transition − the
    #: transition instant); 0 when no violation followed any transition
    worst_recovery_latency_s: float
    n_transitions: int  #: fault activations + clearances in the plan
    repair_events: int  #: defensive actions the governor logged
    invariant_violations: int  #: InvariantMonitor record count
    allowed_recovery_s: float

    @property
    def recovered(self) -> bool:
        """Every violation was transient (excused by a fault transition)."""
        return self.post_recovery_violations == 0

    @property
    def average_power_w(self) -> float:
        return self.energy_j / self.delay_s

    def ed2p(self, delta: float = DELTA_HPC) -> float:
        """Weighted ED²P of the faulted run (lower is better)."""
        return weighted_ed2p(self.energy_j, self.delay_s, delta)

    # -- cache round-trip ----------------------------------------------
    def to_dict(self) -> dict:
        """JSON-able form (stored as run-cache ``meta``)."""
        return {
            "label": self.label,
            "cap_watts": self.cap_watts,
            "tolerance": self.tolerance,
            "energy_j": self.energy_j,
            "delay_s": self.delay_s,
            "total_windows": self.total_windows,
            "violation_windows": self.violation_windows,
            "excused_violations": self.excused_violations,
            "post_recovery_violations": self.post_recovery_violations,
            "worst_recovery_latency_s": self.worst_recovery_latency_s,
            "n_transitions": self.n_transitions,
            "repair_events": self.repair_events,
            "invariant_violations": self.invariant_violations,
            "allowed_recovery_s": self.allowed_recovery_s,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ChaosReport":
        return cls(
            label=str(data["label"]),
            cap_watts=float(data["cap_watts"]),
            tolerance=float(data["tolerance"]),
            energy_j=float(data["energy_j"]),
            delay_s=float(data["delay_s"]),
            total_windows=int(data["total_windows"]),
            violation_windows=int(data["violation_windows"]),
            excused_violations=int(data["excused_violations"]),
            post_recovery_violations=int(data["post_recovery_violations"]),
            worst_recovery_latency_s=float(data["worst_recovery_latency_s"]),
            n_transitions=int(data["n_transitions"]),
            repair_events=int(data["repair_events"]),
            invariant_violations=int(data["invariant_violations"]),
            allowed_recovery_s=float(data["allowed_recovery_s"]),
        )

    def summary_lines(self) -> List[str]:
        verdict = (
            "recovered (all violations transient)"
            if self.recovered
            else f"{self.post_recovery_violations} post-recovery violations"
        )
        return [
            f"{self.label}: cap {self.cap_watts:.1f} W, "
            f"{self.n_transitions} fault transitions — {verdict}",
            f"  {self.violation_windows}/{self.total_windows} windows over "
            f"cap ({self.excused_violations} excused within "
            f"{self.allowed_recovery_s:.2f} s grace)",
            f"  worst recovery latency {self.worst_recovery_latency_s:.3f} s, "
            f"{self.repair_events} repairs, "
            f"{self.invariant_violations} invariant violations",
            f"  E={self.energy_j:.2f} J  D={self.delay_s:.4f} s  "
            f"wED2P={self.ed2p():.4g}",
        ]


def build_chaos_report(
    label: str,
    windows: Sequence,
    transitions: Sequence[float],
    budget: PowerBudget,
    allowed_recovery_s: float,
    energy_j: float,
    delay_s: float,
    repair_events: int = 0,
    invariant_violations: int = 0,
) -> ChaosReport:
    """Score a faulted run's governor windows against its fault plan.

    ``windows`` are the governor's closed
    :class:`~repro.powercap.governor.GovernorWindow` records;
    ``transitions`` are the plan's fault activation/clearance instants
    (:meth:`repro.faults.spec.FaultPlan.transition_times`).  A window
    violates when its measured average exceeds
    ``budget.cluster_watts × (1 + tolerance)``; see the module docstring
    for the excusal rule.

    Recovery latency is attributed per transition: a violating window is
    charged to the latest transition at or before its start (windows
    violating before the first transition are unexcused by
    construction), and the transition's latency is the end of its last
    charged violating window minus the transition instant.
    """
    if allowed_recovery_s < 0:
        raise ValueError(
            f"allowed_recovery_s must be >= 0, got {allowed_recovery_s}"
        )
    ordered = sorted(transitions)
    violating = [w for w in windows if not budget.complies(w.cluster_avg_watts)]

    excused = 0
    for w in violating:
        if any(
            w.t1 > t and w.t0 < t + allowed_recovery_s for t in ordered
        ):
            excused += 1

    worst_latency = 0.0
    for i, t in enumerate(ordered):
        next_t = ordered[i + 1] if i + 1 < len(ordered) else float("inf")
        charged: List[float] = [
            w.t1 for w in violating if t <= w.t0 < next_t
        ]
        if charged:
            worst_latency = max(worst_latency, max(charged) - t)

    return ChaosReport(
        label=label,
        cap_watts=budget.cluster_watts,
        tolerance=budget.tolerance,
        energy_j=energy_j,
        delay_s=delay_s,
        total_windows=len(windows),
        violation_windows=len(violating),
        excused_violations=excused,
        post_recovery_violations=len(violating) - excused,
        worst_recovery_latency_s=worst_latency,
        n_transitions=len(ordered),
        repair_events=repair_events,
        invariant_violations=invariant_violations,
        allowed_recovery_s=allowed_recovery_s,
    )
