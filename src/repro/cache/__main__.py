"""``python -m repro.cache`` — alias for the ``repro-cache`` script."""

import sys

from repro.cache.cli import main

if __name__ == "__main__":
    sys.exit(main())
