"""Content-addressed run cache (``repro.cache``).

The simulator is fully deterministic — ``tests/analysis/test_parallel.py``
asserts bit-identical results across process boundaries — so any run is
fully determined by *what* was run: the workload spec, the strategy
recipe, the calibration, and the simulator version.  This package turns
that property into speed: every completed
:class:`~repro.metrics.records.EnergyDelayPoint` is stored on disk under
a canonical content hash of those four inputs, and any sweep that asks
for the same point again gets the stored record back instead of
re-simulating.

Layers:

* :mod:`~repro.cache.keys` — canonical encoding and SHA-256 key
  derivation, including the simulator-version salt that invalidates the
  cache wholesale whenever the model changes;
* :mod:`~repro.cache.store` — :class:`RunCache`, the on-disk JSON-lines
  shard store with an LRU size cap, corruption-tolerant loads, and
  hit/miss/eviction statistics;
* :mod:`~repro.cache.context` — the ambient :class:`SweepContext` that
  lets the experiments layer opt whole drivers into caching and
  parallelism without threading arguments through every figure;
* :mod:`~repro.cache.cli` — the ``repro-cache`` command
  (``stats`` / ``clear``).

Because cached records round-trip through JSON ``repr`` floats, a warm
re-run returns *bit-identical* points to the cold run — asserted in
``tests/cache/test_sweep_cache.py`` along with the ≥10× speedup.
"""

from repro.cache.context import (
    SweepContext,
    active_context,
    default_cache_dir,
    resolve_cache,
    sweep_context,
)
from repro.cache.keys import (
    CACHE_FORMAT,
    canonical_encode,
    canonical_json,
    simulator_salt,
    task_key,
)
from repro.cache.store import CacheStats, RunCache

__all__ = [
    "CACHE_FORMAT",
    "CacheStats",
    "RunCache",
    "SweepContext",
    "active_context",
    "canonical_encode",
    "canonical_json",
    "default_cache_dir",
    "resolve_cache",
    "simulator_salt",
    "sweep_context",
    "task_key",
]
