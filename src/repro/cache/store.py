"""The on-disk run store: JSON-lines shards under a content-hash layout.

Records live in ``<cache_dir>/shards/<kk>.jsonl`` where ``kk`` is the
first two hex characters of the key — 256 shards, each an append-only
JSON-lines file.  Appending is how interrupted sweeps resume for free: a
sweep that dies halfway has already appended every completed point, and
the re-run's lookups find them.

Design properties:

* **corruption-tolerant** — a truncated or hand-mangled line is skipped
  (counted in ``stats.corrupt``), an unreadable shard file is discarded
  wholesale; a bad cache can cost re-simulation but can never fail a
  sweep;
* **bounded** — ``max_bytes`` enforces an LRU size cap at shard
  granularity: every hit touches its shard's mtime, and the
  least-recently-used shards are deleted first when the cap is exceeded;
* **exact** — records round-trip ``repr``-exact floats through JSON, so
  a warm hit is bit-identical to the simulation it replaced;
* **last-writer-wins** — duplicate keys may appear when concurrent
  sweeps share a directory; the latest appended record is returned.

Concurrency contract (multiple processes sharing one ``cache_dir``):

* **appends are atomic** — :meth:`RunCache.put` writes one record as a
  single ``write()`` on a file opened in append mode while holding that
  shard's advisory lock (``<cache_dir>/locks/<kk>.lock``, ``flock``
  where available), so concurrent appenders interleave whole lines,
  never bytes;
* **reads are lock-free** — lookups never block on writers.  Keys are
  content hashes, so any record found for a key holds exactly the value
  re-simulation would produce; a reader racing an appender at worst
  misses a record that just landed (costing one re-simulation) or reads
  a record that was just evicted (saving one);
* **staleness detection** — the in-memory shard image is tagged with
  the byte count it parsed; a lookup whose shard file grew (another
  process appended) or vanished (evicted) reloads before answering, so
  fleets of sweeps sharing a directory see each other's completed
  points;
* **eviction is crash-consistent** — the LRU cap takes each victim
  shard's lock *non-blocking* (a shard held by a concurrent appender is
  skipped this round) and re-checks size+mtime under the lock (a shard
  touched since the scan is skipped as recently used), so eviction can
  never delete a shard out from under an in-flight append;
* **lock files are permanent** — ``locks/<kk>.lock`` files are never
  deleted (not even by :meth:`RunCache.clear`): unlinking a lock file
  while another process holds its ``flock`` would let a third process
  lock a fresh inode and believe it holds the same lock.

Counters (hits/misses/evictions/corrupt) are per-instance; ``entries``
and ``bytes`` are measured from disk, so they reflect every process
sharing the directory.
"""

from __future__ import annotations

import json
import os
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, Optional, Tuple

try:  # pragma: no cover - platform-dependent import
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX: locks degrade to no-ops
    fcntl = None  # type: ignore[assignment]

from repro.metrics.records import EnergyDelayPoint
from repro.obs.tracer import WALL_CLOCK, active_tracer

__all__ = ["CacheStats", "RunCache"]

_SHARD_SUFFIX = ".jsonl"
_LOCK_SUFFIX = ".lock"

#: size tag meaning "shard file absent when last examined"
_ABSENT = -1


@dataclass(frozen=True)
class CacheStats:
    """Counters for one :class:`RunCache` instance plus on-disk totals."""

    hits: int  #: lookups answered from the store
    misses: int  #: lookups that fell through to simulation
    evictions: int  #: records deleted by the LRU size cap
    corrupt: int  #: records discarded as unparseable/invalid
    entries: int  #: records currently on disk (after dedup)
    bytes: int  #: total shard bytes currently on disk

    def to_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "corrupt": self.corrupt,
            "entries": self.entries,
            "bytes": self.bytes,
        }


class RunCache:
    """Content-addressed store of :class:`EnergyDelayPoint` records.

    Safe to share one ``cache_dir`` across processes — concurrent sweeps
    (even whole fleets of them) may append and look up simultaneously
    without losing completed points; see the module docstring for the
    exact contract.

    Parameters
    ----------
    cache_dir:
        Root directory (created on first write).
    max_bytes:
        LRU size cap over all shard files; ``None`` disables eviction.

    Examples
    --------
    ::

        cache = RunCache("/tmp/repro-cache", max_bytes=64 << 20)
        key = task_key(task)
        point = cache.get(key)
        if point is None:
            point = simulate(task)
            cache.put(key, point)
    """

    def __init__(
        self, cache_dir: os.PathLike, max_bytes: Optional[int] = None
    ):
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError(f"max_bytes must be positive, got {max_bytes}")
        self.cache_dir = Path(cache_dir)
        self.max_bytes = max_bytes
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._corrupt = 0
        #: shard prefix -> {key -> record dict}, lazily loaded
        self._shards: Dict[str, Dict[str, dict]] = {}
        #: shard prefix -> byte count the in-memory image parsed
        #: (:data:`_ABSENT` when the file was missing).  Shard files only
        #: ever grow in place, so a size match means the image is
        #: current; any mismatch (growth, eviction, rebuild) forces a
        #: reload on next access.
        self._tags: Dict[str, int] = {}

    # -- layout --------------------------------------------------------
    @property
    def shard_dir(self) -> Path:
        return self.cache_dir / "shards"

    @property
    def lock_dir(self) -> Path:
        return self.cache_dir / "locks"

    def _shard_path(self, prefix: str) -> Path:
        return self.shard_dir / f"{prefix}{_SHARD_SUFFIX}"

    def _shard_files(self) -> Iterator[Path]:
        if not self.shard_dir.is_dir():
            return iter(())
        return iter(sorted(self.shard_dir.glob(f"*{_SHARD_SUFFIX}")))

    # -- locking -------------------------------------------------------
    @contextmanager
    def _shard_lock(self, prefix: str, blocking: bool = True):
        """Hold the advisory lock for one shard (exclusive).

        Yields ``True`` when the lock is held.  With ``blocking=False``
        yields ``False`` instead of waiting when another process holds
        it.  Where ``flock`` is unavailable the lock degrades to a
        no-op (single-process behaviour is unchanged; cross-process
        appends still interleave at line granularity thanks to
        single-``write()`` appends).
        """
        if fcntl is None:  # pragma: no cover - non-POSIX fallback
            yield True
            return
        self.lock_dir.mkdir(parents=True, exist_ok=True)
        fd = os.open(
            self.lock_dir / f"{prefix}{_LOCK_SUFFIX}",
            os.O_CREAT | os.O_RDWR,
            0o644,
        )
        try:
            try:
                fcntl.flock(
                    fd,
                    fcntl.LOCK_EX | (0 if blocking else fcntl.LOCK_NB),
                )
            except OSError:
                yield False
                return
            try:
                yield True
            finally:
                fcntl.flock(fd, fcntl.LOCK_UN)
        finally:
            os.close(fd)

    # -- load ----------------------------------------------------------
    def _load_shard(self, prefix: str) -> Dict[str, dict]:
        path = self._shard_path(prefix)
        try:
            size = path.stat().st_size
        except OSError:
            size = _ABSENT
        loaded = self._shards.get(prefix)
        if loaded is not None and self._tags.get(prefix) == size:
            return loaded
        records: Dict[str, dict] = {}
        data = b""
        if size != _ABSENT:
            try:
                data = path.read_bytes()
            except FileNotFoundError:
                size = _ABSENT
            except OSError:
                # Unreadable shard: discard it rather than fail the sweep.
                self._corrupt += 1
                with self._shard_lock(prefix):
                    path.unlink(missing_ok=True)
                data, size = b"", _ABSENT
        try:
            text = data.decode("utf-8")
        except UnicodeDecodeError:
            self._corrupt += 1
            with self._shard_lock(prefix):
                path.unlink(missing_ok=True)
            text, data, size = "", b"", _ABSENT
        for line in text.splitlines():
            if not line.strip():
                continue
            try:
                record = json.loads(line)
                if not isinstance(record, dict):
                    raise ValueError("record is not an object")
                key = record["key"]
                # Validate eagerly so a poisoned record is discarded at
                # load time, not thrown mid-sweep.
                self._point_of(record)
            except (KeyError, TypeError, ValueError):
                self._corrupt += 1
                continue
            records[key] = record  # duplicate keys: last writer wins
        self._shards[prefix] = records
        # Tag with the bytes actually parsed: if the file grew between
        # the stat and the read, the tag still matches the image.
        self._tags[prefix] = len(data) if size != _ABSENT else _ABSENT
        return records

    @staticmethod
    def _point_of(record: dict) -> EnergyDelayPoint:
        point = record["point"]
        return EnergyDelayPoint(
            label=point["label"],
            energy=float(point["energy"]),
            delay=float(point["delay"]),
            frequency=(
                None
                if point.get("frequency") is None
                else float(point["frequency"])
            ),
        )

    # -- public API ----------------------------------------------------
    def get(self, key: str) -> Optional[EnergyDelayPoint]:
        """The stored point for ``key``, or ``None`` (counted as a miss)."""
        records = self._load_shard(key[:2])
        record = records.get(key)
        tracer = active_tracer()
        if record is None:
            self._misses += 1
            if tracer.enabled:
                tracer.instant(
                    "miss", "cache", "cache", tracer.wall_time(),
                    WALL_CLOCK, key=key[:12],
                )
            return None
        self._hits += 1
        if tracer.enabled:
            tracer.instant(
                "hit", "cache", "cache", tracer.wall_time(),
                WALL_CLOCK, key=key[:12],
            )
        try:
            os.utime(self._shard_path(key[:2]))  # LRU recency signal
        except OSError:
            pass  # shard evicted by a concurrent process mid-lookup
        return self._point_of(record)

    def get_meta(self, key: str) -> Optional[dict]:
        """The auxiliary metadata stored alongside ``key`` (no hit/miss)."""
        record = self._load_shard(key[:2]).get(key)
        return None if record is None else dict(record.get("meta") or {})

    def put(
        self, key: str, point: EnergyDelayPoint, meta: Optional[dict] = None
    ) -> None:
        """Append one record (idempotent re-puts are harmless).

        The append is one ``write()`` on an append-mode handle under the
        shard's advisory lock, so records from concurrent processes land
        whole — a torn line can only come from a crash mid-write, and
        the corruption-tolerant loader skips it.
        """
        record = {
            "key": key,
            "point": {
                "label": point.label,
                "energy": point.energy,
                "delay": point.delay,
                "frequency": point.frequency,
            },
        }
        if meta:
            record["meta"] = meta
        prefix = key[:2]
        line = (json.dumps(record, separators=(",", ":")) + "\n").encode(
            "utf-8"
        )
        path = self._shard_path(prefix)
        path.parent.mkdir(parents=True, exist_ok=True)
        records = self._load_shard(prefix)
        with self._shard_lock(prefix):
            with path.open("ab") as fh:
                fh.write(line)
        records[key] = record
        # Advance the size tag optimistically: exact when no other
        # process appended since the load; any interleaved foreign
        # append leaves the tag short of the true size, which simply
        # forces a reload (and pickup of the foreign records) on the
        # next access.
        prev = self._tags.get(prefix, _ABSENT)
        self._tags[prefix] = (0 if prev == _ABSENT else prev) + len(line)
        if self.max_bytes is not None:
            self._enforce_cap(keep=prefix)

    def clear(self) -> int:
        """Delete every shard; returns the number of records removed.

        Lock files are left in place — see the module docstring.
        """
        removed = 0
        for path in self._shard_files():
            removed += len(self._load_shard(path.stem))
            with self._shard_lock(path.stem):
                path.unlink(missing_ok=True)
        self._shards.clear()
        self._tags.clear()
        return removed

    # -- accounting ----------------------------------------------------
    def _disk_usage(self) -> Tuple[int, int]:
        """(entries, bytes) across all shard files."""
        entries = 0
        total = 0
        for path in self._shard_files():
            entries += len(self._load_shard(path.stem))
            try:
                total += path.stat().st_size
            except OSError:
                continue
        return entries, total

    @property
    def stats(self) -> CacheStats:
        entries, total = self._disk_usage()
        return CacheStats(
            hits=self._hits,
            misses=self._misses,
            evictions=self._evictions,
            corrupt=self._corrupt,
            entries=entries,
            bytes=total,
        )

    def _enforce_cap(self, keep: Optional[str] = None) -> None:
        """Evict least-recently-used shards until under ``max_bytes``.

        The shard named by ``keep`` (the one just written) is evicted
        last, so the working set of the *current* sweep survives even
        when the cap is undersized.  Each victim is deleted only while
        holding its advisory lock (non-blocking: a shard locked by a
        concurrent appender is skipped this round) and only if its
        size and mtime still match the scan (a shard touched since is
        recently used, not LRU).
        """
        assert self.max_bytes is not None
        paths = list(self._shard_files())
        total = 0
        snapshot = {}
        for path in paths:
            try:
                snapshot[path] = path.stat()
                total += snapshot[path].st_size
            except OSError:
                continue
        if total <= self.max_bytes:
            return
        ordered = sorted(
            snapshot,
            key=lambda p: (p.stem == keep, snapshot[p].st_mtime),
        )
        for path in ordered:
            if total <= self.max_bytes:
                break
            seen = snapshot[path]
            with self._shard_lock(path.stem, blocking=False) as held:
                if not held:
                    continue  # a concurrent appender holds this shard
                try:
                    now = path.stat()
                except OSError:
                    total -= seen.st_size  # already gone (someone else)
                    continue
                if (now.st_size, now.st_mtime_ns) != (
                    seen.st_size,
                    seen.st_mtime_ns,
                ):
                    continue  # touched since the scan: recently used
                self._evictions += len(self._load_shard(path.stem))
                self._shards.pop(path.stem, None)
                self._tags.pop(path.stem, None)
                path.unlink(missing_ok=True)
            total -= seen.st_size
