"""The on-disk run store: JSON-lines shards under a content-hash layout.

Records live in ``<cache_dir>/shards/<kk>.jsonl`` where ``kk`` is the
first two hex characters of the key — 256 shards, each an append-only
JSON-lines file.  Appending is how interrupted sweeps resume for free: a
sweep that dies halfway has already appended every completed point, and
the re-run's lookups find them.

Design properties:

* **corruption-tolerant** — a truncated or hand-mangled line is skipped
  (counted in ``stats.corrupt``), an unreadable shard file is discarded
  wholesale; a bad cache can cost re-simulation but can never fail a
  sweep;
* **bounded** — ``max_bytes`` enforces an LRU size cap at shard
  granularity: every hit touches its shard's mtime, and the
  least-recently-used shards are deleted first when the cap is exceeded;
* **exact** — records round-trip ``repr``-exact floats through JSON, so
  a warm hit is bit-identical to the simulation it replaced;
* **last-writer-wins** — duplicate keys may appear when concurrent
  sweeps share a directory; the latest appended record is returned.

Writes happen only in the sweep-coordinating process (workers return
points over the pool, the parent inserts), so a single ``RunCache``
instance never races itself.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, Optional, Tuple

from repro.metrics.records import EnergyDelayPoint
from repro.obs.tracer import WALL_CLOCK, active_tracer

__all__ = ["CacheStats", "RunCache"]

_SHARD_SUFFIX = ".jsonl"


@dataclass(frozen=True)
class CacheStats:
    """Counters for one :class:`RunCache` instance plus on-disk totals."""

    hits: int  #: lookups answered from the store
    misses: int  #: lookups that fell through to simulation
    evictions: int  #: records deleted by the LRU size cap
    corrupt: int  #: records discarded as unparseable/invalid
    entries: int  #: records currently on disk (after dedup)
    bytes: int  #: total shard bytes currently on disk

    def to_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "corrupt": self.corrupt,
            "entries": self.entries,
            "bytes": self.bytes,
        }


class RunCache:
    """Content-addressed store of :class:`EnergyDelayPoint` records.

    Parameters
    ----------
    cache_dir:
        Root directory (created on first write).
    max_bytes:
        LRU size cap over all shard files; ``None`` disables eviction.

    Examples
    --------
    ::

        cache = RunCache("/tmp/repro-cache", max_bytes=64 << 20)
        key = task_key(task)
        point = cache.get(key)
        if point is None:
            point = simulate(task)
            cache.put(key, point)
    """

    def __init__(
        self, cache_dir: os.PathLike, max_bytes: Optional[int] = None
    ):
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError(f"max_bytes must be positive, got {max_bytes}")
        self.cache_dir = Path(cache_dir)
        self.max_bytes = max_bytes
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._corrupt = 0
        #: shard prefix -> {key -> record dict}, lazily loaded
        self._shards: Dict[str, Dict[str, dict]] = {}

    # -- layout --------------------------------------------------------
    @property
    def shard_dir(self) -> Path:
        return self.cache_dir / "shards"

    def _shard_path(self, prefix: str) -> Path:
        return self.shard_dir / f"{prefix}{_SHARD_SUFFIX}"

    def _shard_files(self) -> Iterator[Path]:
        if not self.shard_dir.is_dir():
            return iter(())
        return iter(sorted(self.shard_dir.glob(f"*{_SHARD_SUFFIX}")))

    # -- load ----------------------------------------------------------
    def _load_shard(self, prefix: str) -> Dict[str, dict]:
        loaded = self._shards.get(prefix)
        if loaded is not None:
            return loaded
        records: Dict[str, dict] = {}
        path = self._shard_path(prefix)
        try:
            text = path.read_text(encoding="utf-8")
        except FileNotFoundError:
            text = ""
        except (OSError, UnicodeDecodeError):
            # Unreadable shard: discard it rather than fail the sweep.
            self._corrupt += 1
            path.unlink(missing_ok=True)
            text = ""
        for line in text.splitlines():
            if not line.strip():
                continue
            try:
                record = json.loads(line)
                if not isinstance(record, dict):
                    raise ValueError("record is not an object")
                key = record["key"]
                # Validate eagerly so a poisoned record is discarded at
                # load time, not thrown mid-sweep.
                self._point_of(record)
            except (KeyError, TypeError, ValueError):
                self._corrupt += 1
                continue
            records[key] = record  # duplicate keys: last writer wins
        self._shards[prefix] = records
        return records

    @staticmethod
    def _point_of(record: dict) -> EnergyDelayPoint:
        point = record["point"]
        return EnergyDelayPoint(
            label=point["label"],
            energy=float(point["energy"]),
            delay=float(point["delay"]),
            frequency=(
                None
                if point.get("frequency") is None
                else float(point["frequency"])
            ),
        )

    # -- public API ----------------------------------------------------
    def get(self, key: str) -> Optional[EnergyDelayPoint]:
        """The stored point for ``key``, or ``None`` (counted as a miss)."""
        records = self._load_shard(key[:2])
        record = records.get(key)
        tracer = active_tracer()
        if record is None:
            self._misses += 1
            if tracer.enabled:
                tracer.instant(
                    "miss", "cache", "cache", tracer.wall_time(),
                    WALL_CLOCK, key=key[:12],
                )
            return None
        self._hits += 1
        if tracer.enabled:
            tracer.instant(
                "hit", "cache", "cache", tracer.wall_time(),
                WALL_CLOCK, key=key[:12],
            )
        path = self._shard_path(key[:2])
        if path.exists():
            os.utime(path)  # LRU recency signal
        return self._point_of(record)

    def get_meta(self, key: str) -> Optional[dict]:
        """The auxiliary metadata stored alongside ``key`` (no hit/miss)."""
        record = self._load_shard(key[:2]).get(key)
        return None if record is None else dict(record.get("meta") or {})

    def put(
        self, key: str, point: EnergyDelayPoint, meta: Optional[dict] = None
    ) -> None:
        """Append one record (idempotent re-puts are harmless)."""
        record = {
            "key": key,
            "point": {
                "label": point.label,
                "energy": point.energy,
                "delay": point.delay,
                "frequency": point.frequency,
            },
        }
        if meta:
            record["meta"] = meta
        prefix = key[:2]
        self._load_shard(prefix)[key] = record
        path = self._shard_path(prefix)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("a", encoding="utf-8") as fh:
            fh.write(json.dumps(record, separators=(",", ":")) + "\n")
        if self.max_bytes is not None:
            self._enforce_cap(keep=prefix)

    def clear(self) -> int:
        """Delete every shard; returns the number of records removed."""
        removed = 0
        for path in self._shard_files():
            removed += len(self._load_shard(path.stem))
            path.unlink(missing_ok=True)
        self._shards.clear()
        return removed

    # -- accounting ----------------------------------------------------
    def _disk_usage(self) -> Tuple[int, int]:
        """(entries, bytes) across all shard files."""
        entries = 0
        total = 0
        for path in self._shard_files():
            entries += len(self._load_shard(path.stem))
            try:
                total += path.stat().st_size
            except OSError:
                continue
        return entries, total

    @property
    def stats(self) -> CacheStats:
        entries, total = self._disk_usage()
        return CacheStats(
            hits=self._hits,
            misses=self._misses,
            evictions=self._evictions,
            corrupt=self._corrupt,
            entries=entries,
            bytes=total,
        )

    def _enforce_cap(self, keep: Optional[str] = None) -> None:
        """Evict least-recently-used shards until under ``max_bytes``.

        The shard named by ``keep`` (the one just written) is evicted
        last, so the working set of the *current* sweep survives even
        when the cap is undersized.
        """
        assert self.max_bytes is not None
        paths = list(self._shard_files())
        total = 0
        stats = {}
        for path in paths:
            try:
                stats[path] = path.stat()
                total += stats[path].st_size
            except OSError:
                continue
        if total <= self.max_bytes:
            return
        ordered = sorted(
            stats,
            key=lambda p: (p.stem == keep, stats[p].st_mtime),
        )
        for path in ordered:
            if total <= self.max_bytes:
                break
            self._evictions += len(self._load_shard(path.stem))
            self._shards.pop(path.stem, None)
            path.unlink(missing_ok=True)
            total -= stats[path].st_size
