"""The ambient sweep context: caching, parallelism, and backends without
plumbing.

Thirteen experiment drivers build crescendos through the shared helpers
in :mod:`repro.experiments.common`.  Rather than thread
``cache``/``n_workers``/``backend`` arguments through every ``fig*.run``
signature, the registry (and anything else) installs a
:class:`SweepContext` for the duration of a call::

    from repro.cache import RunCache, sweep_context
    from repro.experiments.registry import run_experiment

    with sweep_context(cache=RunCache("/tmp/repro-cache"), n_workers=4):
        result = run_experiment("fig5")

Helpers that honour the context (``static_points``, ``dynamic_points``,
``cpuspeed_point``, ``strategy_point_sweep``) route through
:func:`repro.analysis.parallel.run_sweep` with the active cache, worker
count, execution backend, and retry policy.  The default context (no
cache, in-process serial execution, default retries) reproduces the
pre-cache behaviour exactly.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Optional, Union

from repro.cache.store import RunCache

__all__ = [
    "SweepContext",
    "active_context",
    "default_cache_dir",
    "resolve_cache",
    "sweep_context",
]


@dataclass(frozen=True)
class SweepContext:
    """What ambient machinery sweeps should use.

    ``n_workers`` follows the internal convention: ``0`` runs in-process
    (the default — serial, no pool), ``None`` uses ``os.cpu_count()``
    workers, ``N`` uses N workers.  ``backend`` is a name from
    :data:`repro.exec.backends.BACKENDS` (or an
    :class:`~repro.exec.backends.ExecBackend` instance); ``None`` infers
    from ``n_workers``.  ``retry`` is a
    :class:`~repro.exec.retry.RetryPolicy` (``None`` = the sweep
    default).
    """

    cache: Optional[RunCache] = None
    n_workers: Optional[int] = 0
    backend: object = None
    retry: object = None


_ACTIVE: ContextVar[SweepContext] = ContextVar(
    "repro_sweep_context", default=SweepContext()
)


def active_context() -> SweepContext:
    """The currently-installed context (default: no cache, serial)."""
    return _ACTIVE.get()


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro/runs``."""
    env = os.environ.get("REPRO_CACHE_DIR", "").strip()
    if env:
        return Path(env).expanduser()
    return Path("~/.cache/repro/runs").expanduser()


def resolve_cache(
    use_cache: Union[bool, RunCache, None],
    cache_dir: Optional[Union[str, Path]] = None,
) -> Optional[RunCache]:
    """The one ``use_cache``/``cache_dir`` convention, shared by
    :func:`repro.analysis.parallel.run_sweep`,
    :func:`repro.faults.sweep.run_chaos_sweep`, the experiment registry,
    and :class:`repro.session.Session`.

    ``use_cache`` is a :class:`RunCache` to share (returned as-is),
    ``True`` to open one at ``cache_dir`` (default:
    :func:`default_cache_dir`), or ``False``/``None`` for no caching.
    """
    if isinstance(use_cache, RunCache):
        return use_cache
    if use_cache:
        return RunCache(
            Path(cache_dir).expanduser() if cache_dir else default_cache_dir()
        )
    return None


@contextmanager
def sweep_context(
    cache: Optional[RunCache] = None,
    n_workers: Optional[int] = 0,
    backend: object = None,
    retry: object = None,
) -> Iterator[SweepContext]:
    """Install a :class:`SweepContext` for the dynamic extent of a block."""
    ctx = SweepContext(
        cache=cache, n_workers=n_workers, backend=backend, retry=retry
    )
    token = _ACTIVE.set(ctx)
    try:
        yield ctx
    finally:
        _ACTIVE.reset(token)
