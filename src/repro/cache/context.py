"""The ambient sweep context: caching and parallelism without plumbing.

Thirteen experiment drivers build crescendos through the shared helpers
in :mod:`repro.experiments.common`.  Rather than thread
``cache``/``n_workers`` arguments through every ``fig*.run`` signature,
the registry (and anything else) installs a :class:`SweepContext` for
the duration of a call::

    from repro.cache import RunCache, sweep_context
    from repro.experiments.registry import run_experiment

    with sweep_context(cache=RunCache("/tmp/repro-cache"), n_workers=4):
        result = run_experiment("fig5")

Helpers that honour the context (``static_points``, ``dynamic_points``,
``cpuspeed_point``, ``strategy_point_sweep``) route through
:func:`repro.analysis.parallel.run_sweep` with the active cache and
worker count.  The default context (no cache, in-process serial
execution) reproduces the pre-cache behaviour exactly.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Optional

from repro.cache.store import RunCache

__all__ = [
    "SweepContext",
    "active_context",
    "default_cache_dir",
    "sweep_context",
]


@dataclass(frozen=True)
class SweepContext:
    """What ambient machinery sweeps should use.

    ``n_workers`` follows :func:`repro.analysis.parallel.run_sweep`
    semantics: ``0`` runs in-process (the default — serial, no pool),
    ``None`` uses ``os.cpu_count()`` workers, ``N`` uses N workers.
    """

    cache: Optional[RunCache] = None
    n_workers: Optional[int] = 0


_ACTIVE: ContextVar[SweepContext] = ContextVar(
    "repro_sweep_context", default=SweepContext()
)


def active_context() -> SweepContext:
    """The currently-installed context (default: no cache, serial)."""
    return _ACTIVE.get()


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro/runs``."""
    env = os.environ.get("REPRO_CACHE_DIR", "").strip()
    if env:
        return Path(env).expanduser()
    return Path("~/.cache/repro/runs").expanduser()


@contextmanager
def sweep_context(
    cache: Optional[RunCache] = None,
    n_workers: Optional[int] = 0,
) -> Iterator[SweepContext]:
    """Install a :class:`SweepContext` for the dynamic extent of a block."""
    ctx = SweepContext(cache=cache, n_workers=n_workers)
    token = _ACTIVE.set(ctx)
    try:
        yield ctx
    finally:
        _ACTIVE.reset(token)
