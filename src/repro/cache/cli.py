"""Command-line entry point: ``repro-cache``.

Examples::

    repro-cache stats
    repro-cache stats --cache-dir .repro-cache --json
    repro-cache clear --cache-dir .repro-cache
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.cache.context import default_cache_dir
from repro.cache.keys import simulator_salt
from repro.cache.store import RunCache

__all__ = ["main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-cache",
        description=(
            "Inspect or clear the content-addressed run cache used by "
            "repro-experiment and the sweep helpers."
        ),
    )
    parser.add_argument(
        "--cache-dir",
        metavar="PATH",
        default=None,
        help="cache directory (default: $REPRO_CACHE_DIR or ~/.cache/repro/runs)",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    stats = sub.add_parser("stats", help="print entry/byte counts and the active salt")
    stats.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    sub.add_parser("clear", help="delete every cached record")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    cache_dir = args.cache_dir or default_cache_dir()
    cache = RunCache(cache_dir)

    if args.command == "stats":
        stats = cache.stats
        if args.json:
            payload = stats.to_dict()
            payload["cache_dir"] = str(cache.cache_dir)
            payload["salt"] = simulator_salt()
            print(json.dumps(payload, indent=2))
        else:
            print(f"cache dir: {cache.cache_dir}")
            print(f"salt:      {simulator_salt()}")
            print(f"entries:   {stats.entries}")
            print(f"bytes:     {stats.bytes}")
            print(f"corrupt:   {stats.corrupt}")
        return 0

    if args.command == "clear":
        removed = cache.clear()
        print(f"removed {removed} cached records from {cache.cache_dir}")
        return 0

    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
