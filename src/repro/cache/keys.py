"""Canonical cache-key derivation.

A cache key must satisfy two properties:

* **complete** — everything that can change a run's result is part of
  the key.  For this simulator that closure is small and explicit: the
  workload spec, the strategy recipe, the calibration, and the simulator
  version (there is no RNG and no wall-clock dependence);
* **canonical** — two equal specs hash equally regardless of dict
  ordering, tuple-vs-list spelling, or which process computed the hash.

:func:`canonical_encode` lowers an arbitrary spec object (dataclasses,
enums, mappings, numpy scalars/arrays, plain objects) into a JSON-able
tree with deterministic ordering; :func:`canonical_json` serialises it
with sorted keys and no whitespace; :func:`task_key` prepends the
version salt and hashes the result with SHA-256.

The **salt** (:func:`simulator_salt`) folds ``repro.__version__`` and
:data:`CACHE_FORMAT` into every key.  Bumping either invalidates the
whole cache without touching it on disk — stale shards simply become
unreachable and age out through the LRU cap.  Bump ``CACHE_FORMAT``
whenever the simulator's numerics change without a version bump.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
from typing import Any, Mapping, Optional

from repro import __version__

__all__ = [
    "CACHE_FORMAT",
    "canonical_encode",
    "canonical_json",
    "simulator_salt",
    "task_key",
]

#: On-disk format / numerics generation.  Part of every key via the salt.
CACHE_FORMAT = 1


def simulator_salt() -> str:
    """The invalidation salt folded into every cache key.

    Derived from the package version and the cache format generation, so
    results simulated by one version of the model can never be returned
    for another.
    """
    return f"repro/{__version__}/format{CACHE_FORMAT}"


def _qualname(obj: object) -> str:
    cls = type(obj)
    return f"{cls.__module__}.{cls.__qualname__}"


def canonical_encode(obj: Any) -> Any:
    """Lower ``obj`` to a JSON-able tree with deterministic ordering.

    Handles the vocabulary of this codebase's spec objects: primitives,
    sequences, mappings (sorted by encoded key), enums, frozen and
    mutable dataclasses, numpy scalars and arrays, and plain objects
    (encoded as class qualname + instance ``__dict__``, which together
    fully determine behaviour for deterministic spec classes like
    :class:`~repro.workloads.base.Workload` subclasses).

    Raises
    ------
    TypeError
        For objects that carry no state (no ``__dict__``) and match no
        other rule — hashing those silently would under-key the cache.
    """
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        # json round-trips repr(float) exactly; keep the raw value.
        return obj
    if isinstance(obj, enum.Enum):
        return {"__enum__": _qualname(obj), "name": obj.name}
    if isinstance(obj, (bytes, bytearray)):
        return {"__bytes__": bytes(obj).hex()}
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            "__dataclass__": _qualname(obj),
            "fields": {
                f.name: canonical_encode(getattr(obj, f.name))
                for f in dataclasses.fields(obj)
            },
        }
    if isinstance(obj, Mapping):
        items = [
            [canonical_encode(k), canonical_encode(v)] for k, v in obj.items()
        ]
        items.sort(key=lambda kv: json.dumps(kv[0], sort_keys=True))
        return {"__map__": items}
    if isinstance(obj, (list, tuple)):
        return [canonical_encode(v) for v in obj]
    if isinstance(obj, (set, frozenset)):
        encoded = [canonical_encode(v) for v in obj]
        encoded.sort(key=lambda v: json.dumps(v, sort_keys=True))
        return {"__set__": encoded}
    # numpy scalars/arrays without importing numpy here (it is a hard
    # dependency elsewhere, but the cache layer should not care).
    item = getattr(obj, "item", None)
    if callable(item) and getattr(obj, "shape", None) == ():
        return canonical_encode(obj.item())
    tolist = getattr(obj, "tolist", None)
    if callable(tolist) and hasattr(obj, "dtype"):
        return {
            "__ndarray__": str(obj.dtype),
            "shape": list(getattr(obj, "shape", [])),
            "data": tolist(),
        }
    state = getattr(obj, "__dict__", None)
    if state is not None:
        return {
            "__object__": _qualname(obj),
            "attrs": {
                k: canonical_encode(v)
                for k, v in sorted(state.items())
                if not callable(v)
            },
        }
    raise TypeError(
        f"cannot canonically encode {type(obj).__name__!r} for cache keying"
    )


def canonical_json(obj: Any) -> str:
    """The canonical serialisation: sorted keys, no whitespace."""
    return json.dumps(
        canonical_encode(obj), sort_keys=True, separators=(",", ":")
    )


def task_key(task: Any, salt: Optional[str] = None) -> str:
    """SHA-256 content hash of one sweep task (hex digest).

    ``task`` is a :class:`~repro.analysis.parallel.SweepTask`; a
    ``calibration`` of ``None`` is normalised to the default calibration
    because that is what the runner substitutes at execution time —
    ``SweepTask(wl, "stat", f)`` and
    ``SweepTask(wl, "stat", f, calibration=DEFAULT_CALIBRATION)`` are the
    same run and must share a key.

    A ``spec`` of ``None`` (the legacy homogeneous cluster) contributes
    nothing to the payload, so every pre-spec cache key is unchanged;
    an explicit :class:`~repro.hardware.spec.ClusterSpec` is folded in
    canonically (order-sensitive across its node groups).
    """
    from repro.hardware.calibration import DEFAULT_CALIBRATION

    calibration = getattr(task, "calibration", None)
    if calibration is None:
        calibration = DEFAULT_CALIBRATION
    payload = {
        "salt": salt if salt is not None else simulator_salt(),
        "workload": canonical_encode(task.workload),
        "strategy": {
            "kind": task.strategy_kind,
            "frequency": task.frequency,
            "regions": canonical_encode(task.regions),
        },
        "calibration": canonical_encode(calibration),
    }
    spec = getattr(task, "spec", None)
    if spec is not None:
        payload["cluster"] = canonical_encode(spec)
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()
