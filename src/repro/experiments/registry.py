"""Registry of all experiments (one per paper table/figure + extensions)."""

from __future__ import annotations

from typing import Callable, Dict

from repro.analysis.records import ExperimentResult
from repro.experiments import (
    fig1,
    fig2,
    fig3,
    fig4,
    fig5,
    fig6,
    fig7,
    fig8,
    headline,
    powercap,
    tables,
)

__all__ = ["EXPERIMENTS", "register", "run_experiment", "list_experiments"]

#: experiment id → zero-argument runner with paper-faithful defaults.
#: Populate through :func:`register`, which rejects duplicate ids.
EXPERIMENTS: Dict[str, Callable[[], ExperimentResult]] = {}


def register(
    experiment_id: str, runner: Callable[[], ExperimentResult]
) -> None:
    """Add an experiment to the registry.

    Raises
    ------
    ValueError
        If ``experiment_id`` is already registered — a silent overwrite
        would make ``repro-experiment <id>`` run different code depending
        on import order.
    """
    if experiment_id in EXPERIMENTS:
        raise ValueError(
            f"experiment id {experiment_id!r} is already registered "
            f"(to {EXPERIMENTS[experiment_id].__module__}."
            f"{EXPERIMENTS[experiment_id].__qualname__}); "
            "pick a distinct id"
        )
    EXPERIMENTS[experiment_id] = runner


for _id, _runner in [
    ("fig1", fig1.run),
    ("fig2", fig2.run),
    ("fig3", fig3.run),
    ("fig4", fig4.run),
    ("fig5", fig5.run),
    ("fig6", fig6.run),
    ("fig7", fig7.run),
    ("fig8", fig8.run),
    ("table1", tables.run_table1),
    ("table2", tables.run_table2),
    ("table3", tables.run_table3),
    ("headline", headline.run),
    ("powercap", powercap.run),
]:
    register(_id, _runner)
del _id, _runner


def list_experiments() -> Dict[str, str]:
    """Experiment ids (sorted) with one-line titles, without running them."""
    docs = {}
    for key in sorted(EXPERIMENTS):
        doc = (EXPERIMENTS[key].__doc__ or "").strip().splitlines()
        docs[key] = doc[0] if doc else ""
    return docs


def run_experiment(experiment_id: str, **kwargs) -> ExperimentResult:
    """Run one experiment by id."""
    if experiment_id not in EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; "
            f"available: {sorted(EXPERIMENTS)}"
        )
    return EXPERIMENTS[experiment_id](**kwargs)
