"""Registry of all experiments (one per paper table/figure + extensions)."""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Dict, Optional, Union

from repro.analysis.records import ExperimentResult
from repro.cache.context import resolve_cache, sweep_context
from repro.cache.store import RunCache
from repro.experiments import (
    chaos,
    fig1,
    fig2,
    fig3,
    fig4,
    fig5,
    fig6,
    fig7,
    fig8,
    headline,
    knobmap,
    powercap,
    serving,
    tables,
    techscaling,
)

__all__ = ["EXPERIMENTS", "register", "run_experiment", "list_experiments"]

#: experiment id → zero-argument runner with paper-faithful defaults.
#: Populate through :func:`register`, which rejects duplicate ids.
EXPERIMENTS: Dict[str, Callable[[], ExperimentResult]] = {}


def register(
    experiment_id: str, runner: Callable[[], ExperimentResult]
) -> None:
    """Add an experiment to the registry.

    Raises
    ------
    ValueError
        If ``experiment_id`` is already registered — a silent overwrite
        would make ``repro-experiment <id>`` run different code depending
        on import order.
    """
    if experiment_id in EXPERIMENTS:
        raise ValueError(
            f"experiment id {experiment_id!r} is already registered "
            f"(to {EXPERIMENTS[experiment_id].__module__}."
            f"{EXPERIMENTS[experiment_id].__qualname__}); "
            "pick a distinct id"
        )
    EXPERIMENTS[experiment_id] = runner


for _id, _runner in [
    ("fig1", fig1.run),
    ("fig2", fig2.run),
    ("fig3", fig3.run),
    ("fig4", fig4.run),
    ("fig5", fig5.run),
    ("fig6", fig6.run),
    ("fig7", fig7.run),
    ("fig8", fig8.run),
    ("table1", tables.run_table1),
    ("table2", tables.run_table2),
    ("table3", tables.run_table3),
    ("headline", headline.run),
    ("powercap", powercap.run),
    ("chaos", chaos.run),
    ("knobmap", knobmap.run),
    ("serving", serving.run),
    ("techscaling", techscaling.run),
]:
    register(_id, _runner)
del _id, _runner


def list_experiments() -> Dict[str, str]:
    """Experiment ids (sorted) with one-line titles, without running them."""
    docs = {}
    for key in sorted(EXPERIMENTS):
        doc = (EXPERIMENTS[key].__doc__ or "").strip().splitlines()
        docs[key] = doc[0] if doc else ""
    return docs


def run_experiment(
    experiment_id: str,
    *,
    use_cache: Union[bool, RunCache] = False,
    cache_dir: Optional[Union[str, Path]] = None,
    jobs: Optional[int] = None,
    backend: object = None,
    retry: object = None,
    **kwargs,
) -> ExperimentResult:
    """Run one experiment by id.

    Parameters
    ----------
    use_cache:
        ``True`` to run under a content-addressed
        :class:`~repro.cache.store.RunCache` (completed operating points
        are skipped, new points are persisted as they finish), or an
        existing :class:`RunCache` instance to share one across calls.
    cache_dir:
        Cache directory when ``use_cache=True`` (default:
        ``$REPRO_CACHE_DIR`` or ``~/.cache/repro/runs``).
    jobs:
        Worker-process count for the experiment's sweeps: ``None`` keeps
        serial in-process execution, ``0`` forces ``os.cpu_count()``
        workers, ``N`` uses N workers.  Parallel runs are bit-identical
        to serial ones.
    backend:
        Sweep execution backend — ``"serial"``, ``"process"``, ``"mpi"``
        or an :class:`~repro.exec.backends.ExecBackend` instance;
        ``None`` infers from ``jobs``.  Results are bit-identical across
        backends (see ``docs/BACKENDS.md``).
    retry:
        A :class:`~repro.exec.retry.RetryPolicy` applied to every sweep
        task the experiment runs (``None`` = the sweep default: retry
        lost workers and timeouts, fail deterministic errors fast).
    kwargs:
        Forwarded to the experiment's runner (e.g. ``iterations=2``).
    """
    if experiment_id not in EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; "
            f"available: {sorted(EXPERIMENTS)}"
        )
    cache = resolve_cache(use_cache, cache_dir)
    if cache is None and jobs is None and backend is None and retry is None:
        return EXPERIMENTS[experiment_id](**kwargs)
    n_workers: Optional[int] = 0 if jobs is None else (None if jobs == 0 else jobs)
    with sweep_context(
        cache=cache, n_workers=n_workers, backend=backend, retry=retry
    ):
        return EXPERIMENTS[experiment_id](**kwargs)
