"""Registry of all paper experiments (one per table and figure)."""

from __future__ import annotations

from typing import Callable, Dict

from repro.analysis.records import ExperimentResult
from repro.experiments import (
    fig1,
    fig2,
    fig3,
    fig4,
    fig5,
    fig6,
    fig7,
    fig8,
    headline,
    tables,
)

__all__ = ["EXPERIMENTS", "run_experiment", "list_experiments"]

#: experiment id → zero-argument runner with paper-faithful defaults
EXPERIMENTS: Dict[str, Callable[[], ExperimentResult]] = {
    "fig1": fig1.run,
    "fig2": fig2.run,
    "fig3": fig3.run,
    "fig4": fig4.run,
    "fig5": fig5.run,
    "fig6": fig6.run,
    "fig7": fig7.run,
    "fig8": fig8.run,
    "table1": tables.run_table1,
    "table2": tables.run_table2,
    "table3": tables.run_table3,
    "headline": headline.run,
}


def list_experiments() -> Dict[str, str]:
    """Experiment ids with their one-line titles (without running them)."""
    docs = {}
    for key, fn in EXPERIMENTS.items():
        doc = (fn.__doc__ or "").strip().splitlines()
        docs[key] = doc[0] if doc else ""
    return docs


def run_experiment(experiment_id: str, **kwargs) -> ExperimentResult:
    """Run one experiment by id."""
    if experiment_id not in EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; "
            f"available: {sorted(EXPERIMENTS)}"
        )
    return EXPERIMENTS[experiment_id](**kwargs)
