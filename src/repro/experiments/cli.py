"""Command-line entry point: ``repro-experiment``.

Examples::

    repro-experiment --list
    repro-experiment fig3
    repro-experiment fig6 fig7 fig8 --json out.json
    repro-experiment all
    repro-experiment fig5 --jobs 4 --cache-dir .repro-cache
    repro-experiment fig5 --no-cache

Caching is on by default (``$REPRO_CACHE_DIR`` or ``~/.cache/repro/runs``):
the first run of any experiment simulates and stores every operating
point; re-runs return bit-identical results from the store, an order of
magnitude faster.  ``repro-cache stats`` / ``repro-cache clear`` manage
the store.
"""

from __future__ import annotations

import argparse
import sys
from contextlib import nullcontext
from typing import List, Optional

from repro.cache.context import default_cache_dir
from repro.cache.store import RunCache
from repro.exec.backends import BACKENDS
from repro.obs.tracer import tracing
from repro.experiments.registry import EXPERIMENTS, list_experiments, run_experiment

__all__ = ["main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiment",
        description=(
            "Regenerate tables and figures from 'Improvement of Power-"
            "Performance Efficiency for High-End Computing' (IPPS 2005) "
            "on the simulated DVS cluster."
        ),
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help=(
            "experiment ids (fig1..fig8, table1..table3, headline, "
            "powercap, chaos, serving, techscaling, knobmap) or 'all'"
        ),
    )
    parser.add_argument(
        "--list", action="store_true", help="list available experiments"
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        help="also write results as JSON lines to PATH",
    )
    parser.add_argument(
        "--param",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help=(
            "experiment keyword argument, e.g. --param iterations=2 "
            "(values parsed as Python literals; repeatable; applied to "
            "every selected experiment that accepts the keyword)"
        ),
    )
    parser.add_argument(
        "--budget-frac",
        action="append",
        type=float,
        default=None,
        metavar="FRAC",
        help=(
            "budget depth for the knobmap experiment, as a fraction of "
            "the static-max reference draw (repeatable, e.g. "
            "--budget-frac 0.9 --budget-frac 0.5; shorthand for "
            "--param budget_fracs=...; ignored by experiments without "
            "the keyword)"
        ),
    )
    parser.add_argument(
        "--knobs",
        metavar="K1,K2",
        default=None,
        help=(
            "comma-separated knob set for the knobmap elastic "
            "contender, a subset of dvfs,cores,gate (shorthand for "
            "--param knobs=...; ignored by experiments without the "
            "keyword)"
        ),
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help=(
            "run each experiment's sweeps on N worker processes "
            "(0 = one per CPU core; default: in-process serial; results "
            "are bit-identical either way)"
        ),
    )
    parser.add_argument(
        "--backend",
        choices=list(BACKENDS),
        default=None,
        help=(
            "sweep execution backend: 'serial' (in-process), 'process' "
            "(hardened worker pool), or 'mpi' (rank-parallel under "
            "mpiexec; falls back to a single-rank emulator when mpi4py "
            "is absent).  Default: inferred from --jobs.  Results are "
            "bit-identical across backends."
        ),
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=None,
        metavar="N",
        help=(
            "max attempts per sweep task (default: 3; retries cover "
            "lost workers and timeouts — deterministic task errors "
            "fail fast)"
        ),
    )
    parser.add_argument(
        "--task-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "best-effort wall-clock timeout per sweep task (default: "
            "none; timed-out tasks are retried like lost workers)"
        ),
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the content-addressed run cache (always re-simulate)",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="PATH",
        default=None,
        help=(
            "run-cache directory (default: $REPRO_CACHE_DIR or "
            "~/.cache/repro/runs)"
        ),
    )
    parser.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help=(
            "record a structured trace of the selected experiments and "
            "write Chrome trace-event JSON to PATH (inspect with "
            "repro-trace, chrome://tracing, or Perfetto; forces serial "
            "sweeps)"
        ),
    )
    parser.add_argument(
        "--trace-capacity",
        type=int,
        default=65536,
        metavar="N",
        help=(
            "trace ring-buffer size per record kind (default: 65536; "
            "oldest records are overwritten beyond this)"
        ),
    )
    return parser


def parse_params(pairs: List[str]) -> dict:
    """Parse ``--param KEY=VALUE`` pairs into a kwargs dict."""
    import ast

    out = {}
    for pair in pairs:
        if "=" not in pair:
            raise ValueError(f"--param needs KEY=VALUE, got {pair!r}")
        key, _, raw = pair.partition("=")
        try:
            value = ast.literal_eval(raw)
        except (ValueError, SyntaxError):
            value = raw  # plain string
        out[key.strip()] = value
    return out


def merge_knob_flags(
    params: dict,
    budget_frac: Optional[List[float]],
    knobs: Optional[str],
) -> dict:
    """Fold ``--budget-frac``/``--knobs`` into the ``--param`` kwargs.

    The flags are shorthand: an explicit ``--param budget_fracs=...`` or
    ``--param knobs=...`` always wins (setdefault semantics).
    """
    if budget_frac is not None:
        if any(frac <= 0 for frac in budget_frac):
            raise ValueError("--budget-frac must be > 0")
        params.setdefault("budget_fracs", tuple(budget_frac))
    if knobs is not None:
        knob_list = tuple(k.strip() for k in knobs.split(",") if k.strip())
        if not knob_list:
            raise ValueError("--knobs needs a comma-separated knob list")
        params.setdefault("knobs", knob_list)
    return params


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list or not args.experiments:
        for key, title in list_experiments().items():
            print(f"{key:8s} {title}")
        return 0

    ids = list(EXPERIMENTS) if args.experiments == ["all"] else args.experiments
    unknown = [i for i in ids if i not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiment(s): {unknown}; use --list")
    try:
        params = parse_params(args.param)
    except ValueError as exc:
        parser.error(str(exc))
    try:
        merge_knob_flags(params, args.budget_frac, args.knobs)
    except ValueError as exc:
        parser.error(str(exc))

    cache: Optional[RunCache] = None
    if not args.no_cache:
        cache_dir = args.cache_dir or default_cache_dir()
        cache = RunCache(cache_dir)

    tracer = None
    jobs = args.jobs
    backend = args.backend
    if args.trace is not None:
        from repro.obs.tracer import Tracer

        tracer = Tracer(capacity=args.trace_capacity)
        if jobs is not None or backend is not None:
            print(
                "note: --trace forces serial sweeps; "
                "ignoring --jobs/--backend",
                file=sys.stderr,
            )
            jobs = None
            backend = None

    retry = None
    if args.retries is not None or args.task_timeout is not None:
        import dataclasses

        from repro.exec.retry import DEFAULT_RETRY

        if args.retries is not None and args.retries < 1:
            parser.error("--retries must be >= 1")
        if args.task_timeout is not None and args.task_timeout <= 0:
            parser.error("--task-timeout must be > 0")
        retry = dataclasses.replace(
            DEFAULT_RETRY,
            max_attempts=(
                args.retries
                if args.retries is not None
                else DEFAULT_RETRY.max_attempts
            ),
            timeout_s=args.task_timeout,
        )

    json_lines = []
    scope = tracing(tracer) if tracer is not None else nullcontext()
    with scope:
        for experiment_id in ids:
            import inspect

            fn = EXPERIMENTS[experiment_id]
            accepted = set(inspect.signature(fn).parameters)
            kwargs = {k: v for k, v in params.items() if k in accepted}
            result = run_experiment(
                experiment_id,
                use_cache=cache if cache is not None else False,
                jobs=jobs,
                backend=backend,
                retry=retry,
                **kwargs,
            )
            print(result.render())
            print()
            json_lines.append(result.to_json(indent=None if args.json else 2))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            fh.write("\n".join(json_lines) + "\n")
    if tracer is not None:
        from repro.obs.export import export_chrome_trace

        n_events = export_chrome_trace(args.trace, tracer)
        dropped = (
            f", {tracer.dropped} overwritten (raise --trace-capacity)"
            if tracer.dropped
            else ""
        )
        print(
            f"trace: {n_events} events -> {args.trace}{dropped}",
            file=sys.stderr,
        )
    if cache is not None:
        stats = cache.stats
        print(
            f"cache: {stats.hits} hits, {stats.misses} misses "
            f"({stats.entries} entries, {stats.bytes} bytes on disk)",
            file=sys.stderr,
        )
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
