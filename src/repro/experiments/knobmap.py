"""Knob map: which power knob wins at each (load, budget depth)?

Extension beyond the paper (which has one knob — DVFS — and one
workload class).  A two-tier service under a compressed diurnal load
swing is run at several base rates; at each rate a ladder of power
budgets is enforced, each budget expressed as a *fraction of the
static-max reference draw* at that rate.  Three budget enforcers
contend in every (rate, fraction) cell:

* ``elastic`` — the full multi-knob control plane (DVFS → core
  allocation → node gating);
* ``elastic[dvfs]`` (slack-redistribution inner) and
  ``elastic[dvfs]/uniform`` — the same governor restricted to the DVFS
  knob: the degenerate policies, bit-identical to the legacy
  :mod:`repro.powercap` allocators;
* ``powercap`` — the serving path's uniform-ceiling baseline.

The claim (after Krzywda et al., PAPERS.md): the winning knob flips
with budget depth.  Shallow cuts go to pure DVFS; mid cuts are only met
by core allocation; deep cuts only by node gating — pure-DVFS policies
bottom out at the cluster's all-floors draw and mark those cells
infeasible — and the deepest cuts sit below even the suspend floor,
where the map records ``feasible=False`` for every contender.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.analysis.records import ExperimentResult
from repro.analysis.report import format_table
from repro.cache.context import active_context
from repro.experiments.common import context_jobs
from repro.metrics.knobmap import KnobCell, KnobMapReport, best_knob
from repro.serving.arrivals import DiurnalArrivals
from repro.serving.spec import ServingWorkload, TierSpec
from repro.serving.sweep import ServingTask, run_serving_sweep

__all__ = ["run", "build_workload"]

#: Budget ladder, shallow first (fractions of static-max average draw).
DEFAULT_BUDGET_FRACS: Tuple[float, ...] = (0.9, 0.8, 0.6, 0.35)

#: Diurnal base arrival rates (req/s) spanning light to busy load.
DEFAULT_BASE_RATES: Tuple[float, ...] = (30.0, 40.0)


def build_workload(
    base_rate: float, horizon_s: float = 16.0, seed: int = 0
) -> ServingWorkload:
    """A two-tier service under one compressed day/night load cycle.

    Two nodes per tier so the gating knob has a node to spare (one per
    tier stays protected), and two full diurnal periods inside the
    horizon so the governor sees both the peak and the trough.
    """
    return ServingWorkload(
        tiers=(
            TierSpec("web", nodes=2, service_cycles=2.0e6),
            TierSpec("app", nodes=2, service_cycles=4.0e6),
        ),
        arrivals=DiurnalArrivals(
            base_rate=base_rate,
            swing=0.6,
            period_s=horizon_s / 2.0,
            seed=seed,
        ),
        horizon_s=horizon_s,
        name=f"diurnal@{base_rate:g}rps",
        seed=seed,
    )


def run(
    horizon_s: float = 16.0,
    base_rates: Sequence[float] = DEFAULT_BASE_RATES,
    budget_fracs: Sequence[float] = DEFAULT_BUDGET_FRACS,
    knobs: Optional[Sequence[str]] = None,
    seed: int = 0,
) -> ExperimentResult:
    """Knob map: load × budget depth → best knob (extension)."""
    result = ExperimentResult(
        "knobmap",
        "which power knob (DVFS / core allocation / node gating) meets "
        "a budget at each load level and budget depth — the elastic "
        "control plane vs its pure-DVFS degenerations "
        "(extension beyond the paper)",
    )
    ctx = active_context()
    jobs = context_jobs(ctx.n_workers)
    use_cache = ctx.cache if ctx.cache is not None else False
    elastic_knobs = None if knobs is None else tuple(knobs)

    cells: List[KnobCell] = []
    static_watts = {}
    for base_rate in base_rates:
        workload = build_workload(
            base_rate, horizon_s=horizon_s, seed=seed
        )
        # The reference: static-max defines what "a budget of 0.8×"
        # means at this load level.
        [static] = run_serving_sweep(
            [ServingTask(workload, "static")],
            jobs=jobs,
            use_cache=use_cache,
            backend=ctx.backend,
            retry=ctx.retry,
        )
        reference_w = static.report.average_power_w
        static_watts[f"{base_rate:g}"] = reference_w

        budgets = [frac * reference_w for frac in budget_fracs]
        tasks = []
        for budget in budgets:
            tasks.extend(
                [
                    ServingTask(
                        workload,
                        "elastic",
                        budget_watts=budget,
                        knobs=elastic_knobs,
                    ),
                    ServingTask(
                        workload,
                        "elastic",
                        budget_watts=budget,
                        knobs=("dvfs",),
                    ),
                    ServingTask(
                        workload,
                        "elastic",
                        budget_watts=budget,
                        knobs=("dvfs",),
                        allocator="uniform",
                    ),
                    ServingTask(workload, "powercap", budget_watts=budget),
                ]
            )
        outcomes = run_serving_sweep(
            tasks,
            jobs=jobs,
            use_cache=use_cache,
            backend=ctx.backend,
            retry=ctx.retry,
        )
        per_budget = len(tasks) // len(budgets)
        for i, (frac, budget) in enumerate(zip(budget_fracs, budgets)):
            group = outcomes[i * per_budget : (i + 1) * per_budget]
            elastic = group[0].report
            dvfs_only = [o.report for o in group[1:]]
            policy_watts = {
                r.label: r.average_power_w for r in [elastic] + dvfs_only
            }
            policy_met = {
                r.label: r.average_power_w <= budget
                for r in [elastic] + dvfs_only
            }
            met_by_dvfs = any(policy_met[r.label] for r in dvfs_only)
            met_by_elastic = policy_met[elastic.label]
            escalation = elastic.cap_escalation or "dvfs"
            cells.append(
                KnobCell(
                    base_rate_rps=base_rate,
                    budget_frac=frac,
                    budget_watts=budget,
                    policy_watts=policy_watts,
                    policy_met=policy_met,
                    elastic_escalation=escalation,
                    best_knob=best_knob(
                        met_by_dvfs, met_by_elastic, escalation
                    ),
                    feasible=met_by_dvfs or met_by_elastic,
                    elastic_p99_s=elastic.p99_s,
                )
            )

    report = KnobMapReport(
        label="knobmap",
        workload="diurnal two-tier serving",
        static_watts=static_watts,
        cells=tuple(cells),
    )

    rows = []
    for cell in report.cells:
        # Insertion order is the contender order: elastic first, then
        # the pure-DVFS field (preserved through to_dict/from_dict).
        elastic_label = next(iter(cell.policy_watts))
        dvfs_best = min(
            watts
            for label, watts in cell.policy_watts.items()
            if label != elastic_label
        )
        rows.append(
            [
                f"{cell.base_rate_rps:g}",
                f"{cell.budget_frac:g}",
                f"{cell.budget_watts:.1f}",
                f"{cell.policy_watts[elastic_label]:.1f}",
                f"{dvfs_best:.1f}",
                cell.elastic_escalation,
                cell.best_knob,
                "yes" if cell.feasible else "NO",
            ]
        )
    result.tables["knobmap"] = format_table(
        [
            "rate r/s",
            "frac",
            "budget W",
            "elastic W",
            "best DVFS W",
            "escalation",
            "best knob",
            "feasible",
        ],
        rows,
        title=(
            "knob map: diurnal two-tier serving, budgets as fractions of "
            "static-max draw; pure-DVFS contenders are the degenerate "
            "elastic policies plus the uniform-ceiling powercap baseline"
        ),
    )
    for line in report.summary_lines():
        result.notes.append(line)

    # The acceptance claims (1.0 = claim holds; no paper values — the
    # extension is ours).
    result.compare(
        "some (load, budget) cell is infeasible for every knob",
        None,
        1.0 if report.infeasible_cells else 0.0,
    )
    result.compare(
        "some cell is met by elastic but by no pure-DVFS policy",
        None,
        1.0 if report.elastic_only_cells else 0.0,
    )
    result.compare(
        "the winning knob varies across the map",
        None,
        1.0 if len({c.best_knob for c in report.cells}) > 1 else 0.0,
    )
    result.notes.append(
        "all contenders at one (rate, budget) cell replay the identical "
        "pre-materialised request stream; only the control plane differs"
    )
    return result
