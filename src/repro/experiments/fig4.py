"""Figure 4: NAS FT class C on 8 processors — cpuspeed vs static vs dynamic.

The dynamic strategy drops to the ladder minimum inside ``fft()`` (local
sweeps + all-to-all) and restores the base frequency outside it.  Paper
numbers: static 800 saves 28.6 % energy for 4.2 % delay; dynamic from
1.4 GHz saves 32.6 % for 7.8 %; best HPC point is static 800 MHz (15.6 %
more efficient than static 1.4 GHz).
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.records import ExperimentResult
from repro.experiments.common import (
    LADDER_FREQUENCIES,
    attach_standard_tables,
    delay_increase,
    energy_saving,
    find_static,
    normalize_series,
    strategy_point_sweep,
)
from repro.experiments.paper_targets import target
from repro.metrics.ed2p import DELTA_HPC
from repro.metrics.selection import best_operating_point
from repro.workloads.nas_ft import NasFT

__all__ = ["run"]


def run(iterations: Optional[int] = 2, n_ranks: int = 8) -> ExperimentResult:
    """Regenerate Figure 4 (pass ``iterations=None`` for the full 20)."""
    result = ExperimentResult(
        "fig4",
        f"NAS FT class C on {n_ranks} processors: cpuspeed / static / dynamic",
    )
    workload = NasFT("C", n_ranks=n_ranks, iterations=iterations)

    sweep = strategy_point_sweep(workload, LADDER_FREQUENCIES, regions=["fft"])
    raw = {
        "stat": sweep["stat"],
        "dyn": sweep["dyn"],
        "cpuspeed": sweep["cpuspeed"],
    }
    normed = normalize_series(raw)
    for name, points in normed.items():
        result.add_series(name, points)
    attach_standard_tables(result, normed)

    for mhz, key in ((800, "stat800"), (600, "stat600")):
        p = find_static(normed["stat"], mhz)
        result.compare(
            f"{key}_energy_saving",
            target("fig4", f"{key}_energy_saving"),
            energy_saving(p),
        )
        result.compare(
            f"{key}_delay_increase",
            target("fig4", f"{key}_delay_increase"),
            delay_increase(p),
        )
    cp = normed["cpuspeed"][0]
    result.compare(
        "cpuspeed_energy_saving",
        target("fig4", "cpuspeed_energy_saving"),
        energy_saving(cp),
    )
    result.compare(
        "cpuspeed_delay_increase",
        target("fig4", "cpuspeed_delay_increase"),
        delay_increase(cp),
    )
    for mhz, key in ((1400, "dyn1400"), (1000, "dyn1000")):
        p = find_static(normed["dyn"], mhz)
        result.compare(
            f"{key}_energy_saving",
            target("fig4", f"{key}_energy_saving"),
            energy_saving(p),
        )
        result.compare(
            f"{key}_delay_increase",
            target("fig4", f"{key}_delay_increase"),
            delay_increase(p),
        )

    # Best HPC operating point over both controllable strategies.
    all_points = list(normed["stat"]) + list(normed["dyn"])
    best = best_operating_point(all_points, DELTA_HPC)
    result.compare(
        "best_hpc_mhz",
        target("fig4", "best_hpc_mhz"),
        (best.point.frequency or 0) / 1e6,
    )
    result.compare(
        "hpc_improvement",
        target("fig4", "hpc_improvement"),
        best.improvement_vs_reference,
    )
    result.notes.append(f"best HPC point: {best.point.label}")
    if iterations is not None:
        result.notes.append(
            f"run with {iterations} iterations instead of the class-C 20"
        )
    return result
