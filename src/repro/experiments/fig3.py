"""Figure 3 / Table 3: NAS FT class B on 8 nodes — cpuspeed vs static.

The paper's key numbers: static 600 MHz lands at (E, D) ≈ (0.655, 1.068)
normalized to static 1.4 GHz; the cpuspeed daemon ends up at
≈(0.966, 0.988) — indistinguishable from running flat out, because the
busy-waiting progress engine keeps ``/proc/stat`` pegged.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.records import ExperimentResult
from repro.experiments.common import (
    LADDER_FREQUENCIES,
    attach_standard_tables,
    find_static,
    normalize_series,
    strategy_point_sweep,
)
from repro.experiments.paper_targets import target
from repro.workloads.nas_ft import NasFT

__all__ = ["run"]


def run(iterations: Optional[int] = 4, n_ranks: int = 8) -> ExperimentResult:
    """Regenerate Figure 3 (pass ``iterations=None`` for the full 20)."""
    result = ExperimentResult(
        "fig3", f"NAS FT class B on {n_ranks} nodes: cpuspeed vs static DVS"
    )
    workload = NasFT("B", n_ranks=n_ranks, iterations=iterations)

    sweep = strategy_point_sweep(
        workload, LADDER_FREQUENCIES, include_dynamic=False
    )
    raw = {"stat": sweep["stat"], "cpuspeed": sweep["cpuspeed"]}
    normed = normalize_series(raw)
    for name, points in normed.items():
        result.add_series(name, points)
    attach_standard_tables(result, normed)

    stat600 = find_static(normed["stat"], 600)
    cpuspeed = normed["cpuspeed"][0]
    result.compare("stat600_energy", target("fig3", "stat600_energy"), stat600.energy)
    result.compare("stat600_delay", target("fig3", "stat600_delay"), stat600.delay)
    result.compare(
        "cpuspeed_energy", target("fig3", "cpuspeed_energy"), cpuspeed.energy
    )
    result.compare("cpuspeed_delay", target("fig3", "cpuspeed_delay"), cpuspeed.delay)
    if iterations is not None:
        result.notes.append(
            f"run with {iterations} iterations instead of the class-B 20 "
            "(normalized crescendos are iteration-count invariant)"
        )
    return result
