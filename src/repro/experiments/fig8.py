"""Figure 8: communication-bound microbenchmarks (MPI round trips).

(a) 256 KB round trip: E(600) ≈ 0.699, D(600) ≈ 1.06;
(b) 4 KB message gathered with 64 B stride: E(600) ≈ 0.64, D(600) ≈ 1.04.

Both crescendos fall steeply in energy with nearly flat delay — the slack
signature of communication on a 100 Mb network.
"""

from __future__ import annotations

from repro.analysis.records import ExperimentResult
from repro.experiments.common import (
    LADDER_FREQUENCIES,
    attach_standard_tables,
    find_static,
    normalize_series,
    static_points,
)
from repro.experiments.paper_targets import target
from repro.util.units import KIB
from repro.workloads.micro import RoundtripMicro

__all__ = ["run"]


def run(round_trips: int = 200) -> ExperimentResult:
    """Regenerate Figure 8 (both message shapes)."""
    result = ExperimentResult(
        "fig8", "communication microbenchmarks: MPI round trips on 2 nodes"
    )
    big = RoundtripMicro(message_bytes=256 * KIB, round_trips=round_trips)
    strided = RoundtripMicro(
        message_bytes=4 * KIB,
        round_trips=round_trips * 8,  # short legs: iterate more
        pack_stride_bytes=64,
    )

    for key, workload, fig in (("256KB", big, "fig8a"), ("4KBstride64", strided, "fig8b")):
        points = static_points(workload, LADDER_FREQUENCIES)
        normed = normalize_series({"stat": points})["stat"]
        result.add_series(key, normed)
        p600 = find_static(normed, 600)
        result.compare(f"{key}_e600", target(fig, "e600"), p600.energy)
        result.compare(f"{key}_d600", target(fig, "d600"), p600.delay)
    attach_standard_tables(
        result,
        {k: v.points for k, v in result.series.items()},
        best_from="256KB",
    )
    return result
