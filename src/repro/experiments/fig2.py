"""Figure 2: the weighted-ED²P iso-efficiency trade-off curves.

Purely analytic — the energy fraction that keeps weighted ED²P constant
as delay grows, one curve per δ.  Also checks the two worked examples in
§2.2 (δ=0.2 @ 5 % delay → ≥13 % savings; δ=0.4 @ 10 % → ≈32 %).
"""

from __future__ import annotations

import numpy as np

from repro.analysis.records import ExperimentResult
from repro.analysis.report import format_table
from repro.experiments.paper_targets import target
from repro.metrics.tradeoff import required_energy_savings, tradeoff_curves

__all__ = ["run", "FIG2_DELTAS"]

#: The δ family the figure plots.
FIG2_DELTAS = (-1.0, -0.6, -0.2, 0.0, 0.2, 0.4, 0.6, 0.8)


def run(n_points: int = 11, max_delay_factor: float = 1.5) -> ExperimentResult:
    """Regenerate Figure 2's curve family."""
    result = ExperimentResult(
        "fig2", "weight factor trade-off between energy and performance"
    )
    factors = np.linspace(1.0, max_delay_factor, n_points)
    curves = tradeoff_curves(factors, FIG2_DELTAS)

    headers = ["delay factor"] + [f"δ={d:+.1f}" for d, _ in curves]
    rows = []
    for i, f in enumerate(factors):
        row = [f"{f:.2f}"]
        for _, curve in curves:
            value = curve[i]
            row.append("0" if value == 0 else f"{100 * value:.1f}%")
        rows.append(row)
    result.tables["curves"] = format_table(
        headers, rows, title="energy fraction keeping weighted ED2P constant"
    )

    result.compare(
        "required_savings_delta0.2_at_5pct_delay",
        target("fig2", "savings_delta02_5pct"),
        required_energy_savings(1.05, 0.2),
    )
    result.compare(
        "required_savings_delta0.4_at_10pct_delay",
        target("fig2", "savings_delta04_10pct"),
        required_energy_savings(1.10, 0.4),
    )
    result.notes.append(
        "larger δ demands more savings for the same slowdown (curve order)"
    )
    return result
