"""Figure 1: energy-delay crescendos for SPEC-like mgrid and swim.

Single node, five static operating points per code.  The paper reports
the shapes (no numeric labels): mgrid trades large slowdowns for tiny
energy savings; swim converts small slowdowns into steady energy savings.
"""

from __future__ import annotations

from repro.analysis.records import ExperimentResult
from repro.experiments.common import (
    LADDER_FREQUENCIES,
    delay_increase,
    energy_saving,
    find_static,
    static_points,
)
from repro.analysis.report import format_crescendo
from repro.workloads.spec_like import MgridLike, SwimLike

__all__ = ["run"]


def run(iterations: int = 10) -> ExperimentResult:
    """Regenerate Figure 1's two crescendos."""
    result = ExperimentResult(
        "fig1", "SPEC CFP2000-like codes: energy-delay crescendos (1 node)"
    )
    mgrid = MgridLike(iterations=iterations)
    swim = SwimLike(iterations=iterations)

    raw = {
        "mgrid": static_points(mgrid, LADDER_FREQUENCIES),
        "swim": static_points(swim, LADDER_FREQUENCIES),
    }
    for name, points in raw.items():
        reference = max(points, key=lambda p: p.frequency)
        normed = [p.normalized_to(reference) for p in points]
        result.add_series(name, normed)
        result.tables[name] = format_crescendo(
            {name: points}, title=f"{name}-like crescendo", reference=reference
        )
        slow = find_static(normed, 600)
        result.compare(f"{name}_energy_saving_600MHz", None, energy_saving(slow))
        result.compare(f"{name}_delay_increase_600MHz", None, delay_increase(slow))

    mgrid600 = find_static(result.series["mgrid"].points, 600)
    swim600 = find_static(result.series["swim"].points, 600)
    result.notes.append(
        "shape check: mgrid trades a large slowdown for little energy; "
        "swim converts a small slowdown into steady savings "
        f"(mgrid D600={mgrid600.delay:.2f} vs swim D600={swim600.delay:.2f})"
    )
    return result
