"""Power-budget extension: cap sweep, uniform vs slack-aware redistribution.

Beyond the paper (which optimises per-application ED²P with no global
constraint): enforce a *cluster-wide* power cap and measure what each
allocation policy pays for it.  For every cap level — expressed as a
fraction of the workload's uncapped average draw — the sweep runs the
naive :class:`~repro.powercap.policy.UniformCapPolicy` and the
slack-aware :class:`~repro.powercap.policy.SlackRedistributionPolicy`
at the same budget and reports achieved power, compliance, slowdown,
and weighted ED²P.

Three workloads bracket the slack spectrum: NAS FT (bulk-synchronous,
mildly memory-bound), the parallel transpose (root-serialized gather —
structural slack on non-root ranks), and the slack-imbalanced mix where
half the ranks busy-wait most of every iteration.  On the imbalanced
mix redistribution dominates uniform capping outright; on the balanced
codes it must never do worse — both claims are recorded as comparisons.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.records import ExperimentResult
from repro.analysis.report import format_table
from repro.analysis.runner import MeasuredRun, run_measured
from repro.dvs.strategy import DVSStrategy, StaticStrategy
from repro.metrics.powercap import PowerCapReport, build_cap_report
from repro.metrics.records import EnergyDelayPoint
from repro.powercap import (
    CapGovernorConfig,
    PowerBudget,
    PowerCapStrategy,
    SlackRedistributionPolicy,
    UniformCapPolicy,
)
from repro.workloads.base import Workload
from repro.workloads.imbalanced import ImbalancedMix
from repro.workloads.nas_ft import NasFT
from repro.workloads.transpose import ParallelTranspose

__all__ = ["run", "sweep_workload", "DEFAULT_CAP_FRACTIONS"]

#: Cap levels as fractions of each workload's uncapped average power.
#: Deliberately ≥ 0.85: deep below that the Pentium-M ladder's floor
#: allocation itself exceeds the cap during all-active phases and *no*
#: DVFS policy can comply (the governor's ``feasible`` flag records it).
DEFAULT_CAP_FRACTIONS: Tuple[float, ...] = (0.95, 0.90, 0.85)


def _governor_interval(uncapped_delay: float) -> float:
    """A control interval that closes ≥ ~10 windows per run."""
    return max(0.02, min(0.25, uncapped_delay / 12.0))


def _capped(
    workload: Workload,
    budget: PowerBudget,
    policy,
    interval: float,
) -> Tuple[MeasuredRun, PowerCapStrategy]:
    strategy = PowerCapStrategy(
        budget, policy=policy, config=CapGovernorConfig(interval=interval)
    )
    return run_measured(workload, strategy), strategy


def sweep_workload(
    workload: Workload,
    cap_fractions: Sequence[float] = DEFAULT_CAP_FRACTIONS,
    uncapped_strategy: Optional[DVSStrategy] = None,
) -> Tuple[MeasuredRun, Dict[float, Dict[str, PowerCapReport]]]:
    """Cap sweep for one workload.

    Returns the uncapped reference run plus, per cap fraction, one
    :class:`PowerCapReport` per policy name.
    """
    base = run_measured(workload, uncapped_strategy or StaticStrategy(1.4e9))
    uncapped_avg = base.point.energy / base.point.delay
    interval = _governor_interval(base.point.delay)

    reports: Dict[float, Dict[str, PowerCapReport]] = {}
    for fraction in cap_fractions:
        budget = PowerBudget(fraction * uncapped_avg)
        per_policy: Dict[str, PowerCapReport] = {}
        for policy in (UniformCapPolicy(), SlackRedistributionPolicy()):
            run_, strategy = _capped(workload, budget, policy, interval)
            governor = strategy.governor
            per_policy[policy.name] = build_cap_report(
                label=strategy.name,
                cap_watts=budget.cluster_watts,
                tolerance=budget.tolerance,
                energy_j=run_.point.energy,
                delay_s=run_.point.delay,
                window_watts=[w.cluster_avg_watts for w in governor.windows],
                window_durations=[w.duration for w in governor.windows],
                uncapped_delay_s=base.point.delay,
            )
        reports[fraction] = per_policy
    return base, reports


def _sweep_table(
    name: str,
    uncapped_avg: float,
    reports: Dict[float, Dict[str, PowerCapReport]],
) -> str:
    rows: List[List[object]] = []
    for fraction, per_policy in reports.items():
        for policy_name, report in per_policy.items():
            rows.append(
                [
                    f"{fraction:.2f}",
                    f"{report.cap_watts:.1f}",
                    policy_name,
                    f"{report.achieved_avg_watts:.1f}",
                    f"{report.peak_window_watts:.1f}",
                    f"{report.violation_windows}/{report.total_windows}",
                    f"+{report.slowdown_vs_uncapped * 100:.1f}%",
                    f"{report.ed2p():.3g}",
                ]
            )
    return format_table(
        [
            "cap/avg",
            "cap W",
            "policy",
            "achieved W",
            "worst win W",
            "violations",
            "slowdown",
            "wED2P",
        ],
        rows,
        title=f"{name}: uncapped average {uncapped_avg:.1f} W",
    )


def run(
    cap_fractions: Sequence[float] = DEFAULT_CAP_FRACTIONS,
    n_ranks: int = 8,
    transpose_n: int = 3000,
) -> ExperimentResult:
    """Cluster power-budget sweep: redistribution vs uniform capping."""
    result = ExperimentResult(
        "powercap",
        "cluster power cap: slack-aware redistribution vs uniform "
        "frequency scaling (extension beyond the paper)",
    )
    workloads: List[Workload] = [
        NasFT("S", n_ranks=n_ranks, iterations=3),
        ParallelTranspose(matrix_n=transpose_n),
        ImbalancedMix(n_ranks=n_ranks),
    ]

    for workload in workloads:
        base, reports = sweep_workload(workload, cap_fractions)
        uncapped_avg = base.point.energy / base.point.delay
        result.tables[workload.name] = _sweep_table(
            workload.name, uncapped_avg, reports
        )
        for policy_name in ("uniform", "redist"):
            result.add_series(
                f"{workload.name}/{policy_name}",
                [
                    EnergyDelayPoint(
                        label=reports[f][policy_name].label,
                        energy=reports[f][policy_name].energy_j
                        / base.point.energy,
                        delay=reports[f][policy_name].delay_s
                        / base.point.delay,
                    )
                    for f in cap_fractions
                ],
            )
        # Redistribution must never lose to the uniform baseline, and on
        # the slack-imbalanced mix it must win outright; the comparisons
        # record the measured margin (no paper value: this is ours).
        for fraction in cap_fractions:
            uniform = reports[fraction]["uniform"]
            redist = reports[fraction]["redist"]
            result.compare(
                f"{workload.name}@{fraction:.2f} redist−uniform slowdown",
                None,
                redist.slowdown_vs_uncapped - uniform.slowdown_vs_uncapped,
            )
            result.compare(
                f"{workload.name}@{fraction:.2f} redist violations",
                None,
                float(redist.violation_windows),
            )

    result.notes.append(
        "cap levels are fractions of each workload's uncapped average "
        "cluster power; compliance is judged per governor window against "
        "cap × (1 + tolerance)"
    )
    result.notes.append(
        "negative 'redist−uniform slowdown' means redistribution finished "
        "faster than the uniform cap at the same budget"
    )
    return result
