"""Figure 5: 12K×12K parallel matrix transpose on 15 processors.

cpuspeed / static / dynamic (regions: steps 2-3).  Paper numbers: static
800 saves 16.2 % energy for 0.78 % delay; static 600 saves 19.7 % for
2.4 %; cpuspeed saves only 1.9 %; best HPC point is static 800 MHz
(11.5 % more efficient than static 1.4 GHz); best energy point static
600 MHz.
"""

from __future__ import annotations

from repro.analysis.records import ExperimentResult
from repro.experiments.common import (
    LADDER_FREQUENCIES,
    attach_standard_tables,
    delay_increase,
    energy_saving,
    find_static,
    normalize_series,
    strategy_point_sweep,
)
from repro.experiments.paper_targets import target
from repro.metrics.ed2p import DELTA_ENERGY, DELTA_HPC
from repro.metrics.selection import best_operating_point
from repro.workloads.transpose import ParallelTranspose

__all__ = ["run"]


def run(matrix_n: int = 12_000, iterations: int = 1) -> ExperimentResult:
    """Regenerate Figure 5 (paper geometry by default)."""
    result = ExperimentResult(
        "fig5",
        f"parallel matrix transpose {matrix_n}x{matrix_n} on 15 processors",
    )
    workload = ParallelTranspose(
        matrix_n=matrix_n, grid_rows=5, grid_cols=3, iterations=iterations
    )

    sweep = strategy_point_sweep(
        workload, LADDER_FREQUENCIES, regions=["step2", "step3"]
    )
    raw = {
        "stat": sweep["stat"],
        "dyn": sweep["dyn"],
        "cpuspeed": sweep["cpuspeed"],
    }
    normed = normalize_series(raw)
    for name, points in normed.items():
        result.add_series(name, points)
    attach_standard_tables(result, normed)

    for mhz, key in ((800, "stat800"), (600, "stat600")):
        p = find_static(normed["stat"], mhz)
        result.compare(
            f"{key}_energy_saving",
            target("fig5", f"{key}_energy_saving"),
            energy_saving(p),
        )
        result.compare(
            f"{key}_delay_increase",
            target("fig5", f"{key}_delay_increase"),
            delay_increase(p),
        )
    cp = normed["cpuspeed"][0]
    result.compare(
        "cpuspeed_energy_saving",
        target("fig5", "cpuspeed_energy_saving"),
        energy_saving(cp),
    )
    result.compare(
        "cpuspeed_delay_increase",
        target("fig5", "cpuspeed_delay_increase"),
        delay_increase(cp),
    )

    best_hpc = best_operating_point(list(normed["stat"]), DELTA_HPC)
    best_energy = best_operating_point(
        list(normed["stat"]) + list(normed["dyn"]), DELTA_ENERGY
    )
    result.compare(
        "best_hpc_mhz",
        target("fig5", "best_hpc_mhz"),
        (best_hpc.point.frequency or 0) / 1e6,
    )
    result.compare(
        "hpc_improvement",
        target("fig5", "hpc_improvement"),
        best_hpc.improvement_vs_reference,
    )
    result.compare(
        "best_energy_mhz",
        target("fig5", "best_energy_mhz"),
        (best_energy.point.frequency or 0) / 1e6,
    )
    result.notes.append(
        f"best HPC: {best_hpc.point.label}; best energy: {best_energy.point.label}"
    )
    return result
