"""Chaos drill: fault rate × governor hardening under a power cap.

Extension beyond the paper (which assumes perfectly healthy hardware):
inject the failures §1 motivates DVS with — fail-stop crashes at the
reliability model's rate, telemetry dropout, stuck DVFS regulators —
and measure what each control-plane variant pays to stay inside the
budget.  Three variants face *identical* fault timelines at each rate:

* ``selfheal+redist`` — the hardened governor over the slack-aware
  policy (the full defense);
* ``selfheal+uniform`` — the hardened governor over the uniform
  baseline policy (how much of the defense is policy-independent);
* ``fairweather+redist`` — the unhardened governor (the control):
  it believes every sample, never re-applies a refused cap, and keeps
  allocating a dead node's budget.

Scoring (:mod:`repro.metrics.chaos`): violations within the allowed
recovery latency of a fault transition are excused; *post-recovery*
violations are the failures of the control plane itself.  The hardened
variants must score zero; the fair-weather control demonstrably does
not.  Energy/delay/ED²P degradation is reported against each variant's
own fault-free run at the same budget.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.records import ExperimentResult
from repro.analysis.report import format_table
from repro.analysis.runner import run_measured
from repro.cache.context import active_context
from repro.dvs.strategy import StaticStrategy
from repro.faults.spec import (
    DvfsStuck,
    FaultPlan,
    NodeCrash,
    TelemetryDropout,
    acceleration_for,
)
from repro.experiments.common import context_jobs
from repro.faults.sweep import ChaosOutcome, ChaosTask, run_chaos_sweep
from repro.hardware.reliability import ReliabilityModel
from repro.metrics.chaos import ChaosReport
from repro.workloads.synthetic import SyntheticMix

__all__ = ["run", "CHAOS_MODES", "build_tasks", "drill_plan"]

#: (mode label, policy, hardened) — every mode faces the same plans.
CHAOS_MODES: Tuple[Tuple[str, str, bool], ...] = (
    ("selfheal+redist", "redist", True),
    ("selfheal+uniform", "uniform", True),
    ("fairweather+redist", "redist", False),
)


def drill_plan(interval: float, seed: int = 0) -> FaultPlan:
    """The fixed composite scenario the guard bands *cannot* absorb.

    Poisson-sampled single faults mostly hide inside the governor's
    safety margin plus the budget's tolerance band (a finding the rate
    sweep records); this drill stacks the failure modes the hardening
    exists for, scaled off the control interval:

    * simultaneous telemetry dropout on two nodes — the fair-weather
      governor spreads the whole target over the visible survivors
      while the dark pair keeps drawing, a persistent overdraw;
    * a DVFS regulator that sticks *after* the dropout raised its node,
      so the post-fault down-shift is silently refused (stuck-high);
    * a late crash whose reboot comes back at the ladder's fastest
      point with no ceiling honoured (reboot-at-max).
    """
    return FaultPlan(
        faults=(
            TelemetryDropout(0, at=2.4 * interval, duration=7.2 * interval),
            TelemetryDropout(1, at=2.4 * interval, duration=7.2 * interval),
            DvfsStuck(2, at=3.3 * interval, duration=7.8 * interval),
            NodeCrash(3, at=10.8 * interval, downtime=2.4 * interval),
        ),
        seed=seed,
    )


def build_tasks(
    workload,
    budget_watts: float,
    plans: Sequence[FaultPlan],
    interval: float,
    allowed_recovery_s: float,
) -> List[ChaosTask]:
    """The full mode × plan grid, plan-major (modes adjacent per plan)."""
    return [
        ChaosTask(
            workload=workload,
            plan=plan,
            budget_watts=budget_watts,
            policy=policy,
            hardened=hardened,
            interval=interval,
            allowed_recovery_s=allowed_recovery_s,
        )
        for plan in plans
        for _, policy, hardened in CHAOS_MODES
    ]


def _row(
    mode: str, rate_label: str, seed: object, r: ChaosReport, base: ChaosReport
) -> List[object]:
    return [
        rate_label,
        str(seed),
        mode,
        f"{r.violation_windows}/{r.total_windows}",
        f"{r.post_recovery_violations}",
        f"{r.worst_recovery_latency_s:.2f}",
        f"{r.repair_events}",
        f"{(r.energy_j / base.energy_j - 1.0) * 100:+.1f}%",
        f"{(r.delay_s / base.delay_s - 1.0) * 100:+.1f}%",
        f"{r.ed2p() / base.ed2p():.3f}",
    ]


def run(
    expected_faults: Sequence[float] = (2.0, 4.0),
    seeds: Sequence[int] = (0, 1, 2),
    n_ranks: int = 8,
    cap_fraction: float = 0.85,
    annual_failure_rate: float = 0.025,
) -> ExperimentResult:
    """Chaos drill: fault-rate sweep across control-plane variants."""
    result = ExperimentResult(
        "chaos",
        "fault injection vs the self-healing cap governor: recovery "
        "latency, budget violations, and efficiency degradation "
        "(extension beyond the paper)",
    )
    ctx = active_context()
    # All-compute, no synchronisation: every node draws steadily, so a
    # control-plane lapse shows up as power, not as barrier slack — and
    # a crashed rank never deadlocks the survivors.
    workload = SyntheticMix(
        1.0, 0.0, 0.0, iteration_seconds=0.5, iterations=4, n_ranks=n_ranks
    )

    # Budget and horizon from the uncapped reference, exactly like the
    # powercap sweep: the cap is a fraction of the healthy average draw.
    base = run_measured(workload, StaticStrategy(1.4e9))
    uncapped_avg = base.point.energy / base.point.delay
    budget_watts = cap_fraction * uncapped_avg
    interval = max(0.02, min(0.25, base.point.delay / 12.0))
    # Faults restart fast enough that a crashed rank rejoins well before
    # the job ends.  The recovery grace covers detection (the hardened
    # governor needs stale/dead windows to trip) plus the containment
    # window that follows; dropout/stuck durations deliberately exceed
    # it, so a governor that merely waits faults out — instead of
    # repairing — accumulates post-recovery violations.
    downtime = 4 * interval
    allowed_recovery = 4 * interval
    fault_duration = 10 * interval
    horizon = base.point.delay
    reliability = ReliabilityModel(annual_failure_rate=annual_failure_rate)

    # One plan per (rate, seed); every mode replays the identical plan.
    plans: Dict[Tuple[float, int], FaultPlan] = {}
    for rate in expected_faults:
        acceleration = acceleration_for(reliability, n_ranks, horizon, rate)
        for seed in seeds:
            plans[(rate, seed)] = FaultPlan.from_reliability(
                reliability,
                n_ranks,
                horizon,
                seed=seed,
                acceleration=acceleration,
                downtime_s=downtime,
                dropout_weight=1.0,
                dropout_s=fault_duration,
                stuck_weight=1.0,
                stuck_s=fault_duration,
            )

    fault_free = [FaultPlan()]
    drill = drill_plan(interval)
    all_plans = list(fault_free) + [drill] + [
        plans[(rate, seed)] for rate in expected_faults for seed in seeds
    ]
    tasks = build_tasks(
        workload, budget_watts, all_plans, interval, allowed_recovery
    )
    outcomes = run_chaos_sweep(
        tasks,
        jobs=context_jobs(ctx.n_workers),
        use_cache=ctx.cache if ctx.cache is not None else False,
        backend=ctx.backend,
        retry=ctx.retry,
    )
    by_task: Dict[Tuple[int, str], ChaosOutcome] = {}
    for task, outcome in zip(tasks, outcomes):
        mode = next(
            m
            for m, p, h in CHAOS_MODES
            if p == task.policy and h == task.hardened
        )
        by_task[(id(task.plan), mode)] = outcome

    def report_of(plan: FaultPlan, mode: str) -> ChaosReport:
        return by_task[(id(plan), mode)].report

    rows: List[List[object]] = []
    for mode, _, _ in CHAOS_MODES:
        ff = report_of(fault_free[0], mode)
        rows.append(_row(mode, "0 (fault-free)", "-", ff, ff))
        rows.append(_row(mode, "drill", "-", report_of(drill, mode), ff))
        for rate in expected_faults:
            for seed in seeds:
                rows.append(
                    _row(
                        mode,
                        f"{rate:g}",
                        seed,
                        report_of(plans[(rate, seed)], mode),
                        ff,
                    )
                )
    result.tables[workload.name] = format_table(
        [
            "E[faults]",
            "seed",
            "mode",
            "violations",
            "post-recovery",
            "worst latency s",
            "repairs",
            "ΔE",
            "ΔD",
            "wED2P×",
        ],
        rows,
        title=(
            f"{workload.name}: cap {budget_watts:.1f} W "
            f"({cap_fraction:.2f}× uncapped avg), AFR "
            f"{annual_failure_rate:.1%}/year accelerated to the listed "
            f"expected fault count per run"
        ),
    )

    # The robustness claims, recorded as comparisons (no paper values —
    # this extension is ours): hardened variants fully recover on every
    # plan including the drill; the fair-weather control demonstrably
    # does not survive the drill.
    for mode, _, _ in CHAOS_MODES:
        faulted = [report_of(drill, mode)] + [
            report_of(plans[(rate, seed)], mode)
            for rate in expected_faults
            for seed in seeds
        ]
        result.compare(
            f"{mode} worst post-recovery violations",
            None,
            float(max(r.post_recovery_violations for r in faulted)),
        )
        result.compare(
            f"{mode} worst recovery latency (s)",
            None,
            max(r.worst_recovery_latency_s for r in faulted),
        )
        result.compare(
            f"{mode} drill post-recovery violations",
            None,
            float(report_of(drill, mode).post_recovery_violations),
        )

    result.notes.append(
        "every mode replays identical seed-deterministic fault timelines "
        "(crashes at the reliability model's accelerated rate, plus "
        "telemetry dropout and stuck-DVFS processes at the same rate)"
    )
    result.notes.append(
        "a violation is excused when its window overlaps "
        f"[transition, transition + {allowed_recovery:.2f} s); "
        "post-recovery violations are breaches no fault transition "
        "explains — the hardened governor must score 0"
    )
    result.notes.append(
        "ΔE/ΔD/wED2P× are against the same mode's fault-free run at the "
        "same budget: the price of the faults, not of the cap"
    )
    return result
