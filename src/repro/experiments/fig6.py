"""Figure 6: the memory-bound microbenchmark crescendo.

32 MB buffer walked with a 128 B stride: every reference misses to DRAM,
so delay barely moves with frequency while energy falls steeply.  Paper:
E(600) = 0.593, D(600) = 1.054; the 600 MHz point is 40.7 % more
efficient (weighted ED²P, energy weighting) than 1.4 GHz.
"""

from __future__ import annotations

from repro.analysis.records import ExperimentResult
from repro.experiments.common import (
    LADDER_FREQUENCIES,
    attach_standard_tables,
    find_static,
    normalize_series,
    static_points,
)
from repro.experiments.paper_targets import target
from repro.metrics.ed2p import DELTA_ENERGY
from repro.metrics.selection import best_operating_point
from repro.workloads.micro import MemoryBoundMicro

__all__ = ["run"]


def run(passes: int = 100) -> ExperimentResult:
    """Regenerate Figure 6."""
    result = ExperimentResult(
        "fig6", "memory-bound microbenchmark (32 MB buffer, 128 B stride)"
    )
    workload = MemoryBoundMicro(passes=passes)
    raw = {"stat": static_points(workload, LADDER_FREQUENCIES)}
    normed = normalize_series(raw)
    result.add_series("stat", normed["stat"])
    attach_standard_tables(result, normed)

    p600 = find_static(normed["stat"], 600)
    result.compare("e600", target("fig6", "e600"), p600.energy)
    result.compare("d600", target("fig6", "d600"), p600.delay)
    best = best_operating_point(list(normed["stat"]), DELTA_ENERGY)
    # The paper's "40.7% more efficient" equals 1 − E(600): the energy
    # saving at the best energy point.
    result.compare(
        "improvement_600",
        target("fig6", "improvement_600"),
        1.0 - best.point.energy,
    )
    result.notes.append(f"best energy point: {best.point.label}")
    return result
