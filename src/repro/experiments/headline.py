"""The abstract's headline claims, as an experiment.

*"Using various DVS strategies we achieve application-dependent overall
system energy savings as large as 25 % with as little as 2 % performance
impact"* and (conclusion) *"total energy savings at times of 30 % with
minimal (<5 %) impact on performance."*

This driver sweeps the paper's two applications across every strategy ×
operating point and reports the Pareto-style frontier: for several
slowdown budgets, the largest energy saving available within budget.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.analysis.records import ExperimentResult
from repro.analysis.report import format_table
from repro.experiments.common import (
    LADDER_FREQUENCIES,
    normalize_series,
    strategy_point_sweep,
)
from repro.metrics.records import EnergyDelayPoint
from repro.workloads.nas_ft import NasFT
from repro.workloads.transpose import ParallelTranspose

__all__ = ["run", "best_saving_within_budget"]


def best_saving_within_budget(
    points: List[EnergyDelayPoint], slowdown_budget: float
) -> Optional[EnergyDelayPoint]:
    """The point with the most energy saved among those within budget."""
    eligible = [p for p in points if p.delay - 1.0 <= slowdown_budget + 1e-12]
    if not eligible:
        return None
    return min(eligible, key=lambda p: p.energy)


def run(
    ft_iterations: Optional[int] = 2,
    transpose_n: int = 12_000,
) -> ExperimentResult:
    """Check the abstract/conclusion claims across both applications."""
    result = ExperimentResult(
        "headline", "abstract claims: savings within slowdown budgets"
    )

    workloads = {
        "FT.C": NasFT("C", n_ranks=8, iterations=ft_iterations),
        "transpose": ParallelTranspose(transpose_n, 5, 3),
    }
    regions = {"FT.C": ["fft"], "transpose": ["step2", "step3"]}

    budgets = (0.02, 0.05, 0.10)
    frontier: Dict[Tuple[str, float], Optional[EnergyDelayPoint]] = {}
    for name, workload in workloads.items():
        raw = strategy_point_sweep(
            workload, LADDER_FREQUENCIES, regions=regions[name]
        )
        normed = normalize_series(raw)
        everything = [p for pts in normed.values() for p in pts]
        result.add_series(name, everything)
        for budget in budgets:
            frontier[(name, budget)] = best_saving_within_budget(
                everything, budget
            )

    rows = []
    for (name, budget), point in frontier.items():
        if point is None:
            rows.append([name, f"{budget:.0%}", "-", "-", "-"])
            continue
        rows.append(
            [
                name,
                f"{budget:.0%}",
                point.label,
                f"{(1 - point.energy) * 100:.1f}%",
                f"{(point.delay - 1) * 100:.1f}%",
            ]
        )
    result.tables["frontier"] = format_table(
        ["application", "slowdown budget", "best point", "energy saved", "slowdown"],
        rows,
        title="largest saving within each slowdown budget",
    )

    ft_5pct = frontier[("FT.C", 0.05)]
    result.compare(
        "ft_saving_within_5pct_slowdown",
        0.286,  # the paper's static-800 row, its <5% showcase
        (1 - ft_5pct.energy) if ft_5pct else 0.0,
    )
    tr_2pct = frontier[("transpose", 0.02)]
    result.compare(
        "transpose_saving_within_2pct_slowdown",
        0.162,  # the paper's static-800 row (+0.78%)
        (1 - tr_2pct.energy) if tr_2pct else 0.0,
    )
    result.notes.append(
        "abstract claim check: savings >=25% within ~5% slowdown exist "
        "for FT; the transpose offers >=13% within ~2%"
    )
    return result
