"""Tables 1-3: operating-point selections and the platform ladder.

* Table 1 — best operating points for mgrid/swim under δ ∈ {0.2, −1, +1};
* Table 2 — the Pentium M frequency/voltage ladder (a platform constant
  here; the experiment verifies the paper's pairs and the Eq.-1 trend);
* Table 3 — best operating points for FT class B (from the Fig-3 sweep).
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.records import ExperimentResult
from repro.analysis.report import format_best_points, format_table
from repro.experiments.common import (
    LADDER_FREQUENCIES,
    normalize_series,
    static_points,
)
from repro.experiments.paper_targets import target
from repro.hardware.dvfs import PENTIUM_M_1400
from repro.metrics.selection import select_paper_rows
from repro.workloads.nas_ft import NasFT
from repro.workloads.spec_like import MgridLike, SwimLike

__all__ = ["run_table1", "run_table2", "run_table3"]


def run_table1(iterations: int = 10) -> ExperimentResult:
    """Regenerate Table 1 (mgrid/swim best operating points)."""
    result = ExperimentResult(
        "table1", "best operating points for mgrid-like and swim-like codes"
    )
    for key, workload in (
        ("mgrid", MgridLike(iterations=iterations)),
        ("swim", SwimLike(iterations=iterations)),
    ):
        points = static_points(workload, LADDER_FREQUENCIES)
        rows = select_paper_rows(points)
        result.add_series(key, points)
        result.tables[key] = format_best_points(rows, title=f"{key}-like")
        for setting in ("HPC", "energy", "performance"):
            measured = (rows[setting].point.frequency or 0) / 1e6
            result.compare(
                f"{key}_{setting.lower()}_mhz",
                target("table1", f"{key}_{setting.lower()}_mhz"),
                measured,
            )
    return result


def run_table2() -> ExperimentResult:
    """Regenerate Table 2 (frequency / supply-voltage pairs)."""
    result = ExperimentResult(
        "table2", "Pentium M 1.4 GHz operating points (frequency, voltage)"
    )
    rows = [
        [f"{p.mhz:.0f} MHz", f"{p.voltage:.3f} V", f"{p.fv2() / PENTIUM_M_1400.fastest.fv2():.3f}"]
        for p in reversed(PENTIUM_M_1400.points)
    ]
    result.tables["ladder"] = format_table(
        ["frequency", "supply voltage", "relative f·V²"], rows, title=result.title
    )
    # Verify the paper's exact pairs.
    expected = {1400: 1.484, 1200: 1.436, 1000: 1.308, 800: 1.180, 600: 0.956}
    for point in PENTIUM_M_1400:
        result.compare(f"voltage_at_{point.mhz:.0f}MHz", expected[point.mhz], point.voltage)
    result.notes.append(
        "600 MHz runs at 17.8% of the peak dynamic-power term f·V² — the "
        "headroom every DVS saving in this paper comes from"
    )
    return result


def run_table3(iterations: Optional[int] = 4, n_ranks: int = 8) -> ExperimentResult:
    """Regenerate Table 3 (FT class B best operating points)."""
    result = ExperimentResult(
        "table3", f"best operating points for FT class B on {n_ranks} nodes"
    )
    workload = NasFT("B", n_ranks=n_ranks, iterations=iterations)
    points = static_points(workload, LADDER_FREQUENCIES)
    normed = normalize_series({"stat": points})["stat"]
    rows = select_paper_rows(list(normed))
    result.add_series("stat", normed)
    result.tables["best_points"] = format_best_points(rows, title=result.title)
    for setting, key in (
        ("HPC", "hpc_mhz"),
        ("energy", "energy_mhz"),
        ("performance", "performance_mhz"),
    ):
        measured = (rows[setting].point.frequency or 0) / 1e6
        result.compare(key, target("table3", key), measured)
    result.compare(
        "hpc_improvement",
        target("table3", "hpc_improvement"),
        rows["HPC"].improvement_vs_reference,
    )
    return result
