"""Every quantitative result the paper reports, in one place.

Experiment drivers compare their measurements against these values and
EXPERIMENTS.md is generated from the comparisons.  Values the paper only
shows graphically (Fig 1, parts of Figs 6-8) are recorded as read off the
plots where legible, or ``None`` where not.

All energies/delays are normalized to the fastest static operating point
of the same experiment unless stated otherwise.
"""

from __future__ import annotations

from typing import Dict, Optional

__all__ = ["PAPER_TARGETS", "target"]

PAPER_TARGETS: Dict[str, Dict[str, Optional[float]]] = {
    # --- Fig 3: NAS FT class B on 8 nodes -----------------------------
    "fig3": {
        "stat600_energy": 0.655,  # "normalized energy ... at 600MHz is 0.655"
        "stat600_delay": 1.068,  # "... and 1.068"
        "cpuspeed_energy": 0.966,
        "cpuspeed_delay": 0.988,  # the anomaly the paper footnotes
    },
    # --- Table 3: best operating points for FT.B ----------------------
    "table3": {
        "hpc_mhz": 1000.0,
        "energy_mhz": 600.0,
        "performance_mhz": 1400.0,
        "hpc_improvement": 0.169,  # "16.9% higher than the maximum frequency"
    },
    # --- Fig 4: NAS FT class C on 8 processors ------------------------
    "fig4": {
        "stat800_energy_saving": 0.286,
        "stat800_delay_increase": 0.042,
        "stat600_energy_saving": 0.337,
        "stat600_delay_increase": 0.099,
        "cpuspeed_energy_saving": 0.124,
        "cpuspeed_delay_increase": 0.039,
        "dyn1400_energy_saving": 0.326,
        "dyn1400_delay_increase": 0.078,
        "dyn1000_energy_saving": 0.346,
        "dyn1000_delay_increase": 0.0871,
        "best_hpc_mhz": 800.0,  # static 800 MHz
        "hpc_improvement": 0.156,
    },
    # --- Fig 5: 12K x 12K transpose on 15 processors -------------------
    "fig5": {
        "stat800_energy_saving": 0.162,
        "stat800_delay_increase": 0.0078,
        "stat600_energy_saving": 0.197,
        "stat600_delay_increase": 0.024,
        "cpuspeed_energy_saving": 0.019,
        "cpuspeed_delay_increase": -0.0083,  # anomalous speedup, footnoted
        "best_hpc_mhz": 800.0,
        "hpc_improvement": 0.115,
        "best_energy_mhz": 600.0,
    },
    # --- Fig 6: memory-bound microbenchmark ----------------------------
    "fig6": {
        "e600": 0.593,  # "drops to 59.3%"
        "d600": 1.054,  # "decrease of only 5.4% in performance"
        "improvement_600": 0.407,  # "40.7% more efficient" (best energy pt)
    },
    # --- Fig 7: CPU-bound microbenchmarks -------------------------------
    "fig7": {
        "d600": 2.34,  # "performance loss can be 134%"
        "min_energy_mhz": 800.0,
        "e800": 0.90,  # "10% decrease"
        "register_d600": 2.45,  # "takes the longest time of 245%"
    },
    # --- Fig 8: communication microbenchmarks ---------------------------
    "fig8a": {"e600": 0.699, "d600": 1.06},  # 256 KB round trip
    "fig8b": {"e600": 0.64, "d600": 1.04},  # 4 KB message, 64 B stride
    # --- Table 1: SPEC-like operating points ----------------------------
    "table1": {
        "mgrid_hpc_mhz": 1400.0,
        "mgrid_energy_mhz": 600.0,
        "mgrid_performance_mhz": 1400.0,
        "swim_hpc_mhz": 1000.0,
        "swim_energy_mhz": 600.0,
        "swim_performance_mhz": 1400.0,
    },
    # --- §2.2 worked examples (Fig 2) ------------------------------------
    "fig2": {
        "savings_delta02_5pct": 0.131,
        "savings_delta04_10pct": 0.32,
    },
}


def target(experiment: str, key: str) -> Optional[float]:
    """A paper value, or ``None`` when the paper does not report it."""
    return PAPER_TARGETS.get(experiment, {}).get(key)
