"""Experiment drivers: one module per paper table/figure, a registry, and
the ``repro-experiment`` CLI."""

from repro.experiments.paper_targets import PAPER_TARGETS, target
from repro.experiments.registry import EXPERIMENTS, list_experiments, run_experiment

__all__ = [
    "PAPER_TARGETS",
    "target",
    "EXPERIMENTS",
    "list_experiments",
    "run_experiment",
]
