"""Serving extension: per-tier DVS under a p99 latency SLO.

Extension beyond the paper (whose workloads are batch SPMD jobs): an
open-loop three-tier service — frontend → app → storage — under bursty
MMPP traffic, comparing four control planes over identical request
streams:

* ``static-max`` — every node pinned at the ladder's top: the SLO
  reference (the p99 budget is a factor over *its* p99);
* ``cpuspeed`` — the paper's utilisation-driven daemon, per node.  Its
  failure mode here is structural: base-rate traffic leaves the tiers
  under the down-threshold, so it sinks the clocks between bursts and
  then needs a full interval of overload to ramp back up — each burst
  lands on slow nodes and the p99 (and the timeout count) explodes;
* ``powercap`` — a cluster power budget via a uniform frequency
  ceiling: cheap, but latency-blind (slows the critical tier first);
* ``tierdvs`` — the PowerTracer-style policy: measure per-tier
  residence each window, pin the critical tier at full speed, and walk
  the off-path tiers down while their queues have slack.

The claim (mirrors Yuan et al.'s PowerTracer result): tierdvs meets the
same p99 SLO as static-max at measurably lower energy per request,
while cpuspeed either violates the SLO or spends more — utilisation is
the wrong signal for latency-bound services.
"""

from __future__ import annotations

from typing import List, Optional

from repro.analysis.records import ExperimentResult
from repro.analysis.report import format_table
from repro.cache.context import active_context
from repro.experiments.common import context_jobs
from repro.metrics.serving import ServingReport
from repro.serving.arrivals import MMPPArrivals
from repro.serving.spec import ServingWorkload, TierSpec
from repro.serving.sweep import ServingTask, run_serving_sweep

__all__ = ["run", "build_workload"]


def build_workload(
    horizon_s: float = 16.0, seed: int = 0
) -> ServingWorkload:
    """The three-tier scenario the comparison runs on.

    The app tier carries the bulk of the work (≈8.6 ms/request at the
    ladder's 1.4 GHz top) and is the request critical path; frontend and
    storage are light.  Arrivals are MMPP: a ~40 req/s base with ~1 s
    bursts near the app tier's full-speed capacity — fast enough that a
    tier caught at a low P-state when the burst lands cannot keep up.
    """
    return ServingWorkload(
        tiers=(
            TierSpec("frontend", nodes=2, service_cycles=2.0e6),
            TierSpec("app", nodes=2, service_cycles=12.0e6),
            TierSpec("storage", nodes=2, service_cycles=3.0e6),
        ),
        arrivals=MMPPArrivals(
            base_rate=40.0,
            burst_rate=190.0,
            base_dwell_s=3.0,
            burst_dwell_s=1.0,
            seed=seed,
        ),
        horizon_s=horizon_s,
        timeout_s=2.0,
        name="three-tier",
        seed=seed,
    )


def _row(report: ServingReport, slo_s: float) -> List[object]:
    def ms(value: Optional[float]) -> str:
        return "n/a" if value is None else f"{value * 1e3:.1f}"

    return [
        report.label,
        ms(report.p99_s),
        "yes" if report.meets_slo(slo_s) else "NO",
        (
            "n/a"
            if report.energy_per_request_j is None
            else f"{report.energy_per_request_j:.3f}"
        ),
        f"{report.energy_j:.1f}",
        f"{report.average_power_w:.1f}",
        f"{report.dropped}",
        f"{report.timed_out}",
    ]


def run(
    horizon_s: float = 16.0,
    slo_factor: float = 1.5,
    cap_fraction: float = 0.8,
    seed: int = 0,
) -> ExperimentResult:
    """Serving: per-tier DVS vs cpuspeed/static/powercap under a p99 SLO."""
    result = ExperimentResult(
        "serving",
        "request-driven three-tier serving: per-tier DVS vs cpuspeed, "
        "static-max and a power cap under a p99 latency SLO "
        "(extension beyond the paper)",
    )
    ctx = active_context()
    jobs = context_jobs(ctx.n_workers)
    use_cache = ctx.cache if ctx.cache is not None else False
    workload = build_workload(horizon_s=horizon_s, seed=seed)

    # Phase 1 — the SLO reference.  The p99 budget and the power budget
    # are both derived from the static-max run, so every knob of the
    # comparison is a *fraction of the reference*, not a magic number.
    [static] = run_serving_sweep(
        [ServingTask(workload, "static")],
        jobs=jobs,
        use_cache=use_cache,
        backend=ctx.backend,
        retry=ctx.retry,
    )
    assert static.report.p99_s is not None
    slo_s = slo_factor * static.report.p99_s
    budget_watts = cap_fraction * static.report.average_power_w

    # Phase 2 — the contenders, over the identical request stream.
    tasks = [
        ServingTask(workload, "tierdvs"),
        ServingTask(workload, "cpuspeed"),
        ServingTask(workload, "powercap", budget_watts=budget_watts),
    ]
    outcomes = run_serving_sweep(
        tasks,
        jobs=jobs,
        use_cache=use_cache,
        backend=ctx.backend,
        retry=ctx.retry,
    )
    reports = [static.report] + [o.report for o in outcomes]

    result.tables[workload.name] = format_table(
        [
            "policy",
            "p99 ms",
            "SLO met",
            "J/req",
            "total J",
            "avg W",
            "drops",
            "timeouts",
        ],
        [_row(report, slo_s) for report in reports],
        title=(
            f"{workload.name}: {static.report.n_requests} requests over "
            f"{horizon_s:g}s (MMPP {workload.arrivals.base_rate:g}→"
            f"{workload.arrivals.burst_rate:g} req/s), SLO p99 ≤ "
            f"{slo_s * 1e3:.1f} ms ({slo_factor:g}× static-max), "
            f"cap {budget_watts:.1f} W ({cap_fraction:g}× static-max avg)"
        ),
    )

    tierdvs = outcomes[0].report
    cpuspeed = outcomes[1].report
    powercap = outcomes[2].report

    # The acceptance claims, recorded as comparisons (no paper values —
    # this extension is ours; 1.0 = claim holds).
    result.compare(
        "static-max meets the SLO",
        None,
        1.0 if static.report.meets_slo(slo_s) else 0.0,
    )
    result.compare(
        "tierdvs meets the SLO", None, 1.0 if tierdvs.meets_slo(slo_s) else 0.0
    )
    assert static.report.energy_per_request_j is not None
    cpuspeed_loses = not cpuspeed.meets_slo(slo_s) or (
        cpuspeed.energy_per_request_j is not None
        and cpuspeed.energy_per_request_j
        >= static.report.energy_per_request_j
    )
    result.compare(
        "cpuspeed violates the SLO or spends more energy/request",
        None,
        1.0 if cpuspeed_loses else 0.0,
    )
    if tierdvs.energy_per_request_j is not None:
        result.compare(
            "tierdvs energy/request vs static-max (ratio)",
            None,
            tierdvs.energy_per_request_j / static.report.energy_per_request_j,
        )

    result.notes.append(
        "all policies replay the identical pre-materialised request "
        "stream (same arrival instants, same per-tier cycle demands); "
        "only the frequency control differs"
    )
    result.notes.append(
        "SLO verdict counts drops and timeouts as violations — a policy "
        "may not buy its percentile by shedding load"
    )
    result.notes.append(
        "energy/request attribution: each request is charged the exact "
        "integral of its serving nodes' power over its service spans; "
        "the residual (idle + base power) is reported separately and "
        "sums back to the run total by construction"
    )
    if not powercap.meets_slo(slo_s):
        result.notes.append(
            f"powercap@{budget_watts:.0f}W misses the SLO: a uniform "
            "ceiling slows the critical tier as readily as an idle one"
        )
    return result
