"""Shared helpers for experiment drivers."""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from repro.analysis.records import ExperimentResult
from repro.analysis.report import format_best_points, format_crescendo
from repro.analysis.runner import MeasuredRun
from repro.hardware.dvfs import PENTIUM_M_1400
from repro.metrics.records import EnergyDelayPoint
from repro.metrics.selection import select_paper_rows

__all__ = [
    "LADDER_FREQUENCIES",
    "points_of",
    "normalize_series",
    "find_static",
    "energy_saving",
    "delay_increase",
    "attach_standard_tables",
]

#: The Table-2 ladder, slowest first (Hz).
LADDER_FREQUENCIES = PENTIUM_M_1400.frequencies


def points_of(runs: Sequence[MeasuredRun]) -> List[EnergyDelayPoint]:
    return [run.point for run in runs]


def normalize_series(
    series: Mapping[str, Sequence[EnergyDelayPoint]],
    reference: Optional[EnergyDelayPoint] = None,
) -> Dict[str, List[EnergyDelayPoint]]:
    """Normalize every series to the fastest static point (paper style)."""
    if reference is None:
        statics = series.get("stat")
        if not statics:
            raise ValueError("normalize_series needs a 'stat' series or reference")
        reference = max(statics, key=lambda p: p.frequency or 0.0)
    return {
        name: [p.normalized_to(reference) for p in points]
        for name, points in series.items()
    }


def find_static(
    points: Sequence[EnergyDelayPoint], mhz: float
) -> EnergyDelayPoint:
    """The static point at ``mhz`` from a crescendo."""
    for p in points:
        if p.frequency is not None and abs(p.frequency - mhz * 1e6) < 1:
            return p
    raise KeyError(f"no point at {mhz} MHz in {[p.label for p in points]}")


def energy_saving(normalized: EnergyDelayPoint) -> float:
    """1 − normalized energy (the paper's 'energy savings')."""
    return 1.0 - normalized.energy


def delay_increase(normalized: EnergyDelayPoint) -> float:
    """normalized delay − 1 (the paper's 'performance impact')."""
    return normalized.delay - 1.0


def attach_standard_tables(
    result: ExperimentResult,
    series: Mapping[str, Sequence[EnergyDelayPoint]],
    best_from: str = "stat",
    crescendo_title: str = "",
) -> None:
    """Render the crescendo table and the best-operating-point table."""
    result.tables["crescendo"] = format_crescendo(
        series, title=crescendo_title or result.title
    )
    if best_from in series:
        rows = select_paper_rows(list(series[best_from]))
        result.tables["best_points"] = format_best_points(
            rows, title=f"best operating points (from {best_from} series)"
        )
