"""Shared helpers for experiment drivers.

The point-sweep helpers (:func:`static_points`, :func:`dynamic_points`,
:func:`cpuspeed_point`, :func:`strategy_point_sweep`) are how every
driver runs its crescendos: they honour the ambient
:class:`~repro.cache.context.SweepContext`, so installing a context (as
:func:`repro.experiments.registry.run_experiment` does for its
``use_cache``/``jobs`` arguments) transparently gives any experiment a
run cache and a worker pool.  With the default context they execute
serially in-process — the exact pre-cache behaviour.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from repro.analysis.parallel import SweepTask, run_sweep
from repro.analysis.records import ExperimentResult
from repro.analysis.report import format_best_points, format_crescendo
from repro.analysis.runner import MeasuredRun
from repro.cache.context import active_context
from repro.hardware.calibration import Calibration
from repro.hardware.dvfs import PENTIUM_M_1400
from repro.hardware.spec import ClusterSpec
from repro.metrics.records import EnergyDelayPoint
from repro.metrics.selection import select_paper_rows
from repro.workloads.base import Workload

__all__ = [
    "LADDER_FREQUENCIES",
    "context_jobs",
    "points_of",
    "static_points",
    "dynamic_points",
    "cpuspeed_point",
    "strategy_point_sweep",
    "normalize_series",
    "find_static",
    "energy_saving",
    "delay_increase",
    "attach_standard_tables",
]

#: The Table-2 ladder, slowest first (Hz).
LADDER_FREQUENCIES = PENTIUM_M_1400.frequencies


def points_of(runs: Sequence[MeasuredRun]) -> List[EnergyDelayPoint]:
    return [run.point for run in runs]


def context_jobs(n_workers: Optional[int]) -> Optional[int]:
    """Translate :class:`~repro.cache.context.SweepContext.n_workers`
    (``0`` = serial, ``None`` = one per core) to the unified ``jobs``
    convention (``None`` = serial, ``0`` = one per core)."""
    return None if n_workers == 0 else (0 if n_workers is None else n_workers)


def _context_sweep(tasks: Sequence[SweepTask]) -> List[EnergyDelayPoint]:
    ctx = active_context()
    return run_sweep(
        tasks,
        jobs=context_jobs(ctx.n_workers),
        use_cache=ctx.cache if ctx.cache is not None else False,
        backend=ctx.backend,
        retry=ctx.retry,
    )


def static_points(
    workload: Workload,
    frequencies: Sequence[float],
    calibration: Optional[Calibration] = None,
    spec: Optional[ClusterSpec] = None,
) -> List[EnergyDelayPoint]:
    """One static point per frequency, honouring the sweep context."""
    return _context_sweep(
        [
            SweepTask(
                workload, "stat", frequency=f, calibration=calibration,
                spec=spec,
            )
            for f in frequencies
        ]
    )


def dynamic_points(
    workload: Workload,
    frequencies: Sequence[float],
    regions: Optional[Sequence[str]] = None,
    calibration: Optional[Calibration] = None,
    spec: Optional[ClusterSpec] = None,
) -> List[EnergyDelayPoint]:
    """One dynamic point per base frequency, honouring the sweep context."""
    return _context_sweep(
        [
            SweepTask(
                workload,
                "dyn",
                frequency=f,
                regions=tuple(regions) if regions else None,
                calibration=calibration,
                spec=spec,
            )
            for f in frequencies
        ]
    )


def cpuspeed_point(
    workload: Workload,
    calibration: Optional[Calibration] = None,
    spec: Optional[ClusterSpec] = None,
) -> EnergyDelayPoint:
    """The cpuspeed operating point, honouring the sweep context."""
    return _context_sweep(
        [SweepTask(workload, "cpuspeed", calibration=calibration, spec=spec)]
    )[0]


def strategy_point_sweep(
    workload: Workload,
    frequencies: Sequence[float],
    regions: Optional[Sequence[str]] = None,
    calibration: Optional[Calibration] = None,
    include_dynamic: bool = True,
    spec: Optional[ClusterSpec] = None,
) -> Dict[str, List[EnergyDelayPoint]]:
    """The paper's full comparison as raw point series.

    Point-level counterpart of
    :func:`repro.analysis.runner.full_strategy_sweep`, routed through the
    sweep context so one worker pool (and one cache) covers the whole
    comparison instead of one per series.
    """
    tasks: List[SweepTask] = [
        SweepTask(workload, "cpuspeed", calibration=calibration, spec=spec)
    ]
    for f in frequencies:
        tasks.append(
            SweepTask(
                workload, "stat", frequency=f, calibration=calibration,
                spec=spec,
            )
        )
    if include_dynamic:
        for f in frequencies:
            tasks.append(
                SweepTask(
                    workload,
                    "dyn",
                    frequency=f,
                    regions=tuple(regions) if regions else None,
                    calibration=calibration,
                    spec=spec,
                )
            )
    points = _context_sweep(tasks)
    out: Dict[str, List[EnergyDelayPoint]] = {"cpuspeed": [points[0]]}
    n = len(frequencies)
    out["stat"] = points[1 : 1 + n]
    if include_dynamic:
        out["dyn"] = points[1 + n : 1 + 2 * n]
    return out


def normalize_series(
    series: Mapping[str, Sequence[EnergyDelayPoint]],
    reference: Optional[EnergyDelayPoint] = None,
) -> Dict[str, List[EnergyDelayPoint]]:
    """Normalize every series to the fastest static point (paper style)."""
    if reference is None:
        statics = series.get("stat")
        if not statics:
            raise ValueError("normalize_series needs a 'stat' series or reference")
        reference = max(statics, key=lambda p: p.frequency or 0.0)
    return {
        name: [p.normalized_to(reference) for p in points]
        for name, points in series.items()
    }


def find_static(
    points: Sequence[EnergyDelayPoint], mhz: float
) -> EnergyDelayPoint:
    """The static point at ``mhz`` from a crescendo."""
    for p in points:
        if p.frequency is not None and abs(p.frequency - mhz * 1e6) < 1:
            return p
    raise KeyError(f"no point at {mhz} MHz in {[p.label for p in points]}")


def energy_saving(normalized: EnergyDelayPoint) -> float:
    """1 − normalized energy (the paper's 'energy savings')."""
    return 1.0 - normalized.energy


def delay_increase(normalized: EnergyDelayPoint) -> float:
    """normalized delay − 1 (the paper's 'performance impact')."""
    return normalized.delay - 1.0


def attach_standard_tables(
    result: ExperimentResult,
    series: Mapping[str, Sequence[EnergyDelayPoint]],
    best_from: str = "stat",
    crescendo_title: str = "",
) -> None:
    """Render the crescendo table and the best-operating-point table."""
    result.tables["crescendo"] = format_crescendo(
        series, title=crescendo_title or result.title
    )
    if best_from in series:
        rows = select_paper_rows(list(series[best_from]))
        result.tables["best_points"] = format_best_points(
            rows, title=f"best operating points (from {best_from} series)"
        )
