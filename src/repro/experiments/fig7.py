"""Figure 7: the CPU-bound microbenchmark crescendos.

The L2-resident walk (256 KB buffer, 128 B stride) is pure on-die work:
delay scales as 1/f (+134 % at 600 MHz in the paper) and energy has an
interior minimum at 800 MHz (−10 %) before *rising* at 600 MHz — slowing
down costs more base-energy than the voltage drop saves.  The
register-resident variant is even starker: the slowest point consumes the
most energy and runs ~245 % of the fastest time.
"""

from __future__ import annotations

from repro.analysis.records import ExperimentResult
from repro.experiments.common import (
    LADDER_FREQUENCIES,
    attach_standard_tables,
    find_static,
    normalize_series,
    static_points,
)
from repro.experiments.paper_targets import target
from repro.metrics.ed2p import DELTA_ENERGY
from repro.metrics.selection import best_operating_point
from repro.workloads.micro import L2BoundMicro, RegisterMicro

__all__ = ["run"]


def run(
    l2_passes: int = 2000, register_ops: int = 20_000_000_000
) -> ExperimentResult:
    """Regenerate Figure 7 (both CPU-bound variants)."""
    result = ExperimentResult(
        "fig7", "CPU-bound microbenchmarks (L2 walk; register loop)"
    )
    l2 = L2BoundMicro(passes=l2_passes)
    reg = RegisterMicro(total_ops=register_ops)

    l2_points = static_points(l2, LADDER_FREQUENCIES)
    reg_points = static_points(reg, LADDER_FREQUENCIES)
    l2_normed = normalize_series({"stat": l2_points})["stat"]
    reg_normed = normalize_series({"stat": reg_points})["stat"]
    result.add_series("l2", l2_normed)
    result.add_series("register", reg_normed)
    attach_standard_tables(
        result, {"l2": l2_normed, "register": reg_normed}, best_from="l2"
    )

    p600 = find_static(l2_normed, 600)
    result.compare("d600", target("fig7", "d600"), p600.delay)
    best = best_operating_point(list(l2_normed), DELTA_ENERGY)
    result.compare(
        "min_energy_mhz",
        target("fig7", "min_energy_mhz"),
        (best.point.frequency or 0) / 1e6,
    )
    p800 = find_static(l2_normed, 800)
    result.compare("e800", target("fig7", "e800"), p800.energy)

    r600 = find_static(reg_normed, 600)
    result.compare("register_d600", target("fig7", "register_d600"), r600.delay)
    result.compare("register_e600_vs_e800", None, r600.energy)
    result.notes.append(
        "shape: L2 energy minimum at "
        f"{(best.point.frequency or 0) / 1e6:.0f} MHz; "
        f"E(600)={find_static(l2_normed, 600).energy:.3f} rises past it"
    )
    return result
