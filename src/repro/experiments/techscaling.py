"""Technology-scaling extension: does the paper's result survive the shrink?

Re-runs the paper's central comparison — slack-driven DVS (fig4) vs the
cpuspeed daemon vs static points (fig3) on NAS FT — with the Table-2
platform ported to each projected technology generation (45 → 8 nm,
ITRS and conservative; see :mod:`repro.hardware.scaling`).  Each
generation runs on its own homogeneous
:class:`~repro.hardware.spec.ClusterSpec`, so every point is cacheable
and the whole grid resumes like any other sweep.

The headline question: as voltage headroom shrinks (the ITRS ladder
loses its slow rungs to the Vth-bounded rail) does slack-driven DVS
still beat cpuspeed on both energy and weighted E·D²?  The
:class:`~repro.metrics.scaling.ScalingReport` answers per generation.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.analysis.records import ExperimentResult
from repro.experiments.common import (
    attach_standard_tables,
    normalize_series,
    strategy_point_sweep,
)
from repro.hardware.dvfs import PENTIUM_M_1400
from repro.hardware.scaling import (
    PROJECTIONS,
    TECH_SIZES_NM,
    scaled_table,
    tech_node,
)
from repro.hardware.spec import ClusterSpec
from repro.metrics.scaling import ScalingReport, build_scaling_report
from repro.workloads.nas_ft import NasFT

__all__ = ["run", "run_report"]


def run_report(
    iterations: Optional[int] = 2,
    n_ranks: int = 8,
    sizes: Sequence[int] = TECH_SIZES_NM,
    projections: Sequence[str] = PROJECTIONS,
) -> ScalingReport:
    """The generations × policy grid as a bare :class:`ScalingReport`."""
    return _sweep_generations(
        ExperimentResult("techscaling", "scratch"),
        iterations,
        n_ranks,
        sizes,
        projections,
    )


def _sweep_generations(
    result: ExperimentResult,
    iterations: Optional[int],
    n_ranks: int,
    sizes: Sequence[int],
    projections: Sequence[str],
) -> ScalingReport:
    workload = NasFT("B", n_ranks=n_ranks, iterations=iterations)
    generations = []
    for projection in projections:
        for nm in sizes:
            tech = tech_node(nm, projection)
            ladder = scaled_table(PENTIUM_M_1400, tech)
            spec = ClusterSpec.homogeneous(n_ranks, tech=tech)
            sweep = strategy_point_sweep(
                workload,
                ladder.frequencies,
                regions=("fft",),
                spec=spec,
            )
            normed = normalize_series(sweep)
            for name in ("stat", "dyn", "cpuspeed"):
                result.add_series(f"{tech.label}:{name}", normed[name])
            generations.append((tech, ladder.frequencies, normed))
    return build_scaling_report(
        label=f"techscaling/{workload.name}",
        workload=workload.name,
        generations=generations,
    )


def run(
    iterations: Optional[int] = 2,
    n_ranks: int = 8,
    sizes: Sequence[int] = TECH_SIZES_NM,
    projections: Sequence[str] = PROJECTIONS,
) -> ExperimentResult:
    """NAS FT across technology generations: slack DVS vs cpuspeed vs static.

    ``sizes``/``projections`` subset the grid (e.g. ``sizes=(45, 8)``,
    ``projections=("itrs",)`` for a smoke run); defaults sweep all six
    generations under both projection families.
    """
    result = ExperimentResult(
        "techscaling",
        f"NAS FT class B on {n_ranks} nodes across technology "
        "generations: slack-driven DVS vs cpuspeed vs static",
    )
    report = _sweep_generations(
        result, iterations, n_ranks, sizes, projections
    )
    result.tables["verdicts"] = "\n".join(report.summary_lines())
    for verdict in report.verdicts:
        result.compare(
            f"{verdict.tech}:dvs_beats_cpuspeed_energy",
            None,
            1.0 if verdict.dvs_beats_cpuspeed_energy else 0.0,
        )
        result.compare(
            f"{verdict.tech}:dvs_beats_cpuspeed_ed2p",
            None,
            1.0 if verdict.dvs_beats_cpuspeed_ed2p else 0.0,
        )
        result.compare(f"{verdict.tech}:ladder_rungs", None, float(verdict.rungs))
    first = report.verdicts[0]
    best_series = result.series[f"{first.tech}:stat"].points
    attach_standard_tables(
        result,
        {
            "stat": best_series,
            "dyn": result.series[f"{first.tech}:dyn"].points,
            "cpuspeed": result.series[f"{first.tech}:cpuspeed"].points,
        },
        crescendo_title=f"reference generation ({first.tech})",
    )
    result.notes.append(
        "verdict: paper's result "
        + (
            "holds on every generation swept"
            if report.holds_everywhere
            else "breaks on at least one generation"
        )
    )
    if iterations is not None:
        result.notes.append(
            f"run with {iterations} iterations instead of the class-B 20 "
            "(normalized crescendos are iteration-count invariant)"
        )
    return result
