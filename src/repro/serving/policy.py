"""Per-tier DVS policies for the serving path.

Four policies, matching the comparison the serving experiment runs:

* :class:`StaticServingPolicy` — every node pinned at one P-state (the
  ladder's fastest by default: the "static-max" baseline the SLO is
  calibrated against);
* :class:`CpuspeedServingPolicy` — the paper's cpuspeed daemon, one
  instance per node, reacting to */proc/stat* utilisation.  Under
  bursty load it scales down during lulls and needs a full interval of
  overload to ramp back up — the utilisation-blind failure mode the
  serving experiment exposes;
* :class:`PowerCapServingPolicy` — a cluster power budget enforced by a
  uniform frequency ceiling (latency-blind: it slows the critical tier
  as readily as an idle one);
* :class:`TierDvsPolicy` — the PowerTracer-style controller: per
  control window it measures every tier's mean residence (queue wait +
  service) from the runner's live samples, pins the *critical* tier
  (largest residence) at the fastest point, and steps the others down
  one P-state at a time — only while their queues have slack and their
  projected slowed residence stays safely off the critical path.  Queue
  pressure or rising residence steps a tier back up.

All policies act in *daemon context* (:meth:`CpuFreq.set_speed_now`):
transitions are off the request critical path, exactly like a userspace
governor writing ``scaling_setspeed``.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

from repro.dvs.cpufreq import CpuFreq
from repro.dvs.cpuspeed import CpuspeedConfig, CpuspeedDaemon
from repro.hardware.cluster import Cluster
from repro.obs.tracer import active_tracer
from repro.util.validation import check_positive

__all__ = [
    "CpuspeedServingPolicy",
    "PowerCapServingPolicy",
    "ServingPolicy",
    "StaticServingPolicy",
    "TierDvsPolicy",
]


class ServingPolicy:
    """Base class: binds per-node CPUFreq handles, no-op control."""

    name = "serving-policy"

    def prepare(self, cluster: Cluster, tiers: Sequence) -> None:
        """Bind to the freshly built cluster (before any request flows)."""
        self.cluster = cluster
        self.tiers = list(tiers)
        self._cpufreqs: Dict[int, CpuFreq] = {
            node.node_id: CpuFreq(node, cluster.calibration)
            for node in cluster.nodes
        }
        #: tier index → current frequency (Hz), kept by set_tier_speed
        self._tier_freq: Dict[int, float] = {
            tier.index: cluster.table.fastest.frequency for tier in self.tiers
        }

    def set_tier_speed(self, tier, frequency: float) -> None:
        """Switch every node of ``tier`` to ``frequency`` (daemon context)."""
        for nid in tier.node_ids:
            self._cpufreqs[nid].set_speed_now(frequency)
        self._tier_freq[tier.index] = self._cpufreqs[
            tier.node_ids[0]
        ].current_frequency

    def tier_frequency(self, tier) -> float:
        """The frequency this policy last set for ``tier`` (Hz)."""
        return self._tier_freq[tier.index]

    def start(self, engine) -> None:
        """Launch control processes (called after servers are up)."""

    def teardown(self) -> None:
        """Stop control processes (called once the run drains)."""


class StaticServingPolicy(ServingPolicy):
    """Every node pinned at one frequency (default: the ladder's max)."""

    def __init__(self, frequency: Optional[float] = None):
        self.frequency = frequency
        self.name = "static"

    def prepare(self, cluster: Cluster, tiers: Sequence) -> None:
        super().prepare(cluster, tiers)
        freq = (
            self.frequency
            if self.frequency is not None
            else cluster.table.fastest.frequency
        )
        for tier in self.tiers:
            self.set_tier_speed(tier, freq)
        self.name = f"static@{self._tier_freq[self.tiers[0].index] / 1e6:.0f}MHz"


class CpuspeedServingPolicy(ServingPolicy):
    """The Fedora cpuspeed daemon, per node, exactly as the paper ran it."""

    name = "cpuspeed"

    def __init__(self, config: Optional[CpuspeedConfig] = None):
        self.config = config or CpuspeedConfig()
        self.daemons: List[CpuspeedDaemon] = []

    def prepare(self, cluster: Cluster, tiers: Sequence) -> None:
        super().prepare(cluster, tiers)
        self.daemons = [
            CpuspeedDaemon(node, self._cpufreqs[node.node_id], self.config)
            for node in cluster.nodes
        ]

    def start(self, engine) -> None:
        for daemon in self.daemons:
            daemon.start(engine)

    def teardown(self) -> None:
        for daemon in self.daemons:
            daemon.stop()


class PowerCapServingPolicy(ServingPolicy):
    """A cluster power budget via a uniform frequency ceiling.

    Each control window it measures average cluster power; over budget
    steps every tier down one P-state, comfortably under (below
    ``step_up_fraction`` of the budget) steps back up.  Latency-blind by
    design — the baseline showing why capping is not an SLO policy.
    """

    def __init__(
        self,
        budget_watts: float,
        interval: float = 0.25,
        step_up_fraction: float = 0.85,
    ):
        check_positive("budget_watts", budget_watts)
        check_positive("interval", interval)
        self.budget_watts = budget_watts
        self.interval = interval
        self.step_up_fraction = step_up_fraction
        self.name = f"powercap@{budget_watts:.0f}W"
        #: decision log: (time, ceiling frequency Hz, measured watts)
        self.decisions: List[Tuple[float, float, float]] = []
        self._stopped = False

    def start(self, engine) -> None:
        engine.process(self._loop(engine), name="powercap-serving")

    def teardown(self) -> None:
        self._stopped = True

    def _loop(self, engine):
        freqs = self.cluster.table.frequencies  # slowest first
        ceiling = len(freqs) - 1
        # Closed-loop consumer: the watts read here feed back into the
        # ceiling, so each window integrates through per-node cursors —
        # bit-reproducible increments, independent of the trace before
        # the window (same rationale as powercap.telemetry).
        meters = [
            node.timeline.cursor(engine.now) for node in self.cluster.nodes
        ]
        last = engine.now
        while not self._stopped:
            yield engine.timeout(self.interval)
            if self._stopped:
                return
            now = engine.now
            joules = math.fsum(meter.advance(now) for meter in meters)
            avg = joules / (now - last) if now > last else 0.0
            last = now
            if avg > self.budget_watts and ceiling > 0:
                ceiling -= 1
            elif avg < self.step_up_fraction * self.budget_watts and (
                ceiling < len(freqs) - 1
            ):
                ceiling += 1
            for tier in self.tiers:
                if self._tier_freq[tier.index] != freqs[ceiling]:
                    self.set_tier_speed(tier, freqs[ceiling])
            self.decisions.append((now, freqs[ceiling], avg))


class TierDvsPolicy(ServingPolicy):
    """PowerTracer-style per-tier DVS under an implicit latency budget.

    Parameters
    ----------
    interval:
        Control window (seconds) between retunes.
    safety:
        Headroom factor: a non-critical tier may only slow down while
        ``projected_residence × safety < critical_residence`` — the
        margin that keeps it off the request critical path even as its
        service time stretches.
    queue_low:
        A tier is a step-down candidate only when its queue holds at
        most this many requests (queue slack).
    queue_high_per_node:
        Queue pressure threshold: more than this many queued requests
        *per tier node* forces a step up regardless of residence.
    """

    name = "tierdvs"

    def __init__(
        self,
        interval: float = 0.25,
        safety: float = 1.5,
        queue_low: int = 1,
        queue_high_per_node: int = 2,
    ):
        check_positive("interval", interval)
        check_positive("safety", safety)
        if queue_low < 0:
            raise ValueError(f"queue_low must be >= 0, got {queue_low}")
        check_positive("queue_high_per_node", queue_high_per_node)
        self.interval = interval
        self.safety = safety
        self.queue_low = queue_low
        self.queue_high_per_node = queue_high_per_node
        #: decision log: (time, tier name, new frequency Hz)
        self.decisions: List[Tuple[float, str, float]] = []
        self._stopped = False

    def start(self, engine) -> None:
        engine.process(self._loop(engine), name="tierdvs")

    def teardown(self) -> None:
        self._stopped = True

    # ------------------------------------------------------------------
    def _mean_residence(self, tier) -> Optional[float]:
        window = tier.take_window()
        if not window:
            return None
        return sum(w + s for w, s in window) / len(window)

    def _retune(self, tier, frequency: float, engine) -> None:
        self.set_tier_speed(tier, frequency)
        self.decisions.append((engine.now, tier.name, frequency))
        tracer = active_tracer()
        if tracer.enabled:
            tracer.instant(
                "retune",
                "serving.dvs",
                "serving",
                engine.now,
                tier=tier.name,
                mhz=frequency / 1e6,
            )

    def _loop(self, engine):
        freqs = self.cluster.table.frequencies  # slowest first
        fastest = freqs[-1]
        while not self._stopped:
            yield engine.timeout(self.interval)
            if self._stopped:
                return
            measured = [(tier, self._mean_residence(tier)) for tier in self.tiers]
            # Critical tier: largest mean residence this window; a tier
            # with no completions is scored by its service estimate at
            # its current clock (it cannot silently stop being critical
            # just because the window was quiet).
            scored = [
                (
                    r
                    if r is not None
                    else tier.spec.service_cycles / self._tier_freq[tier.index],
                    tier,
                )
                for tier, r in measured
            ]
            critical_residence, critical = max(scored, key=lambda s: s[0])
            if self._tier_freq[critical.index] != fastest:
                self._retune(critical, fastest, engine)
            for tier, residence in measured:
                if tier is critical:
                    continue
                current = self._tier_freq[tier.index]
                level = freqs.index(current)
                pressured = (
                    tier.queue_length
                    > self.queue_high_per_node * len(tier.node_ids)
                ) or (
                    residence is not None
                    and residence * self.safety >= critical_residence
                )
                if pressured and level < len(freqs) - 1:
                    self._retune(tier, freqs[level + 1], engine)
                    continue
                if tier.queue_length <= self.queue_low and level > 0:
                    slower = freqs[level - 1]
                    projected = (
                        0.0
                        if residence is None
                        else residence * (current / slower)
                    )
                    if projected * self.safety < critical_residence:
                        self._retune(tier, slower, engine)
