"""The serving data path: arrivals → tier queues → per-node servers.

:func:`run_serving` simulates one :class:`~repro.serving.spec.ServingWorkload`
under one :class:`~repro.serving.policy.ServingPolicy` on a fresh
cluster.  The cluster's nodes are partitioned into contiguous per-tier
groups (in tier order); each tier owns one bounded FIFO queue and one
server process per node.  A server loops: dequeue, discard if the
request aged past the workload timeout, execute the request's
pre-sampled cycle demand through :meth:`SimCPU.run_cycles` (so service
time scales with the node's current P-state, mid-service transitions
included), then forward to the next tier or resolve.

Everything is deterministic: the request stream is pre-materialised by
the spec, queues are FIFO, servers drain in node order (the engine
breaks ties by insertion order), and the runner itself draws no random
numbers.  Tracing hooks follow the :mod:`repro.obs` zero-cost idiom —
per-tier spans land on the serving node's track (category
``serving.tier``), request-lifetime spans on the ``serving`` track
(category ``serving.request``) — and all results are computed from the
plain :class:`~repro.serving.records.RequestRecord` list, never from
tracer buffers, so disabling tracing cannot change a single bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.hardware.activity import CpuActivity
from repro.hardware.calibration import Calibration
from repro.hardware.cluster import Cluster
from repro.hardware.spec import ClusterSpec
from repro.obs.tracer import active_tracer
from repro.serving.records import RequestRecord, TierSpan
from repro.serving.spec import RequestSpec, ServingWorkload, TierSpec
from repro.sim.resources import Store

__all__ = ["ServingRun", "TierRuntime", "run_serving"]


class _LiveRequest:
    """Mutable in-flight state for one request (simulation-internal)."""

    __slots__ = ("spec", "spans", "enqueued_s")

    def __init__(self, spec: RequestSpec):
        self.spec = spec
        self.spans: List[TierSpan] = []
        self.enqueued_s = spec.arrival_s


class TierRuntime:
    """One tier's live state: its queue, node group, and window stats.

    This is the surface policies see.  ``take_window()`` drains the
    ``(wait_s, service_s)`` samples accumulated since the last call —
    the per-control-window residence statistics a PowerTracer-style
    controller feeds on.
    """

    def __init__(self, spec: TierSpec, index: int, node_ids: Tuple[int, ...], engine):
        self.spec = spec
        self.index = index
        self.node_ids = node_ids
        self.queue = Store(engine)
        self.drops = 0
        self._window: List[Tuple[float, float]] = []

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def queue_length(self) -> int:
        return len(self.queue)

    def take_window(self) -> List[Tuple[float, float]]:
        """Drain and return the ``(wait_s, service_s)`` samples since
        the previous drain."""
        window, self._window = self._window, []
        return window


@dataclass
class ServingRun:
    """One completed serving simulation (records + powered cluster).

    ``start``/``end`` bound the measurement window: ``end`` is the later
    of the workload horizon and the last request's resolution, so energy
    always covers the full open-loop period (idle tails included —
    policies are compared over identical wall windows).
    """

    workload: ServingWorkload
    policy: object
    cluster: Cluster
    records: Tuple[RequestRecord, ...]
    start: float
    end: float

    @property
    def duration_s(self) -> float:
        return self.end - self.start

    @property
    def energy_j(self) -> float:
        """Exact total cluster energy over the run window (joules)."""
        return self.cluster.total_energy(self.start, self.end)


class _RunState:
    """Shared mutable bookkeeping for one run's processes."""

    __slots__ = ("outstanding", "arrivals_done", "records", "done")

    def __init__(self, done):
        self.outstanding = 0
        self.arrivals_done = False
        self.records: List[RequestRecord] = []
        self.done = done


def run_serving(
    workload: ServingWorkload,
    policy=None,
    *,
    calibration: Optional[Calibration] = None,
) -> ServingRun:
    """Simulate ``workload`` under ``policy`` on a fresh cluster.

    ``policy`` defaults to the static-max baseline
    (:class:`~repro.serving.policy.StaticServingPolicy`).  Returns a
    :class:`ServingRun`; feed it to
    :func:`repro.metrics.serving.build_serving_report` for percentiles
    and per-request energy attribution.
    """
    from repro.serving.policy import StaticServingPolicy

    if policy is None:
        policy = StaticServingPolicy()
    cluster = Cluster.from_spec(
        ClusterSpec.homogeneous(workload.total_nodes), calibration=calibration
    )
    engine = cluster.engine

    tiers: List[TierRuntime] = []
    offset = 0
    for index, spec in enumerate(workload.tiers):
        node_ids = tuple(range(offset, offset + spec.nodes))
        tiers.append(TierRuntime(spec, index, node_ids, engine))
        offset += spec.nodes

    state = _RunState(engine.event())
    requests = workload.requests()

    def resolve(live: _LiveRequest, status: str) -> None:
        now = engine.now
        record = RequestRecord(
            request_id=live.spec.request_id,
            arrival_s=live.spec.arrival_s,
            resolved_s=now,
            status=status,
            spans=tuple(live.spans),
        )
        state.records.append(record)
        tracer = active_tracer()
        if tracer.enabled:
            tracer.span(
                "request",
                "serving.request",
                "serving",
                live.spec.arrival_s,
                now,
                request=live.spec.request_id,
                status=status,
            )
        state.outstanding -= 1
        if state.arrivals_done and state.outstanding == 0:
            state.done.succeed(None)

    def enqueue(tier: TierRuntime, live: _LiveRequest) -> None:
        if len(tier.queue) >= tier.spec.queue_capacity:
            tier.drops += 1
            resolve(live, "dropped")
            return
        live.enqueued_s = engine.now
        tier.queue.put(live)
        tracer = active_tracer()
        if tracer.enabled:
            tracer.counter(
                f"queue[{tier.name}]", "serving", engine.now, len(tier.queue)
            )

    def arrival_process():
        for spec in requests:
            delay = spec.arrival_s - engine.now
            if delay > 0:
                yield engine.timeout(delay)
            state.outstanding += 1
            enqueue(tiers[0], _LiveRequest(spec))
        state.arrivals_done = True
        if state.outstanding == 0:
            state.done.succeed(None)

    def server_process(tier: TierRuntime, node):
        next_tier = tiers[tier.index + 1] if tier.index + 1 < len(tiers) else None
        while True:
            if not node.cpu.powered:
                # Power-gated by an elastic control plane: don't drain
                # the queue into a suspended node — live siblings take
                # the work; this server rejoins after wake.
                yield node.cpu.power_restored
                continue
            live = yield tier.queue.get()
            if not node.cpu.powered:
                # The gate fell while this server was already waiting on
                # the queue, and a put handed it a request anyway: push
                # it back for a live sibling and park.  (Each parked
                # sibling re-enqueues at most once per put, so the
                # hand-back cascade terminates.)
                enqueue(tier, live)
                yield node.cpu.power_restored
                continue
            now = engine.now
            if now - live.spec.arrival_s > workload.timeout_s:
                resolve(live, "timeout")
                continue
            enqueued = live.enqueued_s
            started = now
            yield from node.cpu.run_cycles(
                live.spec.demands[tier.index], CpuActivity.ACTIVE
            )
            finished = engine.now
            span = TierSpan(
                tier.name, node.node_id, enqueued, started, finished
            )
            live.spans.append(span)
            tier._window.append((started - enqueued, finished - started))
            tracer = active_tracer()
            if tracer.enabled:
                tracer.span(
                    tier.name,
                    "serving.tier",
                    node.node_id,
                    started,
                    finished,
                    request=live.spec.request_id,
                )
            if next_tier is None:
                resolve(live, "ok")
            else:
                enqueue(next_tier, live)

    policy.prepare(cluster, tiers)
    for tier in tiers:
        for nid in tier.node_ids:
            node = cluster.nodes[nid]
            engine.process(
                server_process(tier, node),
                name=f"server[{tier.name}/node{nid}]",
            )
    engine.process(arrival_process(), name="arrivals")
    policy.start(engine)

    engine.run(until=state.done)
    policy.teardown()
    end = max(engine.now, workload.horizon_s)
    cluster.finalize()

    records = tuple(sorted(state.records, key=lambda r: r.request_id))
    return ServingRun(
        workload=workload,
        policy=policy,
        cluster=cluster,
        records=records,
        start=0.0,
        end=end,
    )
