"""Open-loop arrival generators: Poisson, bursty (MMPP), diurnal.

Each generator is a frozen dataclass — picklable and content-hashable
through :func:`repro.cache.keys.canonical_encode` — whose only method,
:meth:`times`, expands the spec into the full arrival timeline for a
horizon.  Determinism is a hard contract here: every generator draws
from a *local* ``random.Random(self.seed)`` (never the module-global
``random`` or ``numpy.random`` state, audited by
``tests/serving/test_determinism.py``), so the same spec always yields
the bit-identical timeline regardless of process, import order, or what
else the host program has been sampling.

All three generators model an *open loop*: arrivals do not slow down
when the cluster saturates, which is what makes overload visible as
queueing delay instead of silently throttled load.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Tuple

from repro.util.validation import check_fraction, check_positive

__all__ = ["PoissonArrivals", "MMPPArrivals", "DiurnalArrivals"]


@dataclass(frozen=True)
class PoissonArrivals:
    """Memoryless arrivals at a constant mean rate (requests/second)."""

    rate: float
    seed: int = 0

    def __post_init__(self) -> None:
        check_positive("rate", self.rate)

    def times(self, horizon_s: float) -> Tuple[float, ...]:
        """Arrival instants in ``[0, horizon_s)``, strictly ordered."""
        check_positive("horizon_s", horizon_s)
        rng = random.Random(self.seed)
        out = []
        t = rng.expovariate(self.rate)
        while t < horizon_s:
            out.append(t)
            t += rng.expovariate(self.rate)
        return tuple(out)


@dataclass(frozen=True)
class MMPPArrivals:
    """Bursty arrivals: a two-state Markov-modulated Poisson process.

    The generator alternates between a *base* state and a *burst* state
    (dwell times exponential with the given means, always starting in
    base), emitting Poisson arrivals at the state's rate.  This is the
    load shape that separates utilization-driven governors from
    latency-aware ones: a daemon that scaled down during the base lull
    eats the burst at low clock.
    """

    base_rate: float
    burst_rate: float
    base_dwell_s: float = 3.0
    burst_dwell_s: float = 1.0
    seed: int = 0

    def __post_init__(self) -> None:
        check_positive("base_rate", self.base_rate)
        check_positive("burst_rate", self.burst_rate)
        check_positive("base_dwell_s", self.base_dwell_s)
        check_positive("burst_dwell_s", self.burst_dwell_s)

    def times(self, horizon_s: float) -> Tuple[float, ...]:
        """Arrival instants in ``[0, horizon_s)``, strictly ordered."""
        check_positive("horizon_s", horizon_s)
        rng = random.Random(self.seed)
        out = []
        t = 0.0
        burst = False
        while t < horizon_s:
            rate = self.burst_rate if burst else self.base_rate
            dwell = rng.expovariate(
                1.0 / (self.burst_dwell_s if burst else self.base_dwell_s)
            )
            state_end = min(t + dwell, horizon_s)
            arrival = t + rng.expovariate(rate)
            while arrival < state_end:
                out.append(arrival)
                arrival += rng.expovariate(rate)
            t = state_end
            burst = not burst
        return tuple(out)


@dataclass(frozen=True)
class DiurnalArrivals:
    """Slow sinusoidal load swing (a compressed day/night cycle).

    The instantaneous rate is ``base_rate × (1 + swing·sin(2πt/period))``
    — peak at a quarter period, trough at three quarters.  Sampled by
    thinning a Poisson stream at the peak rate, so the realised process
    is an exact inhomogeneous Poisson process.
    """

    base_rate: float
    swing: float = 0.5
    period_s: float = 60.0
    seed: int = 0

    def __post_init__(self) -> None:
        check_positive("base_rate", self.base_rate)
        check_fraction("swing", self.swing)
        check_positive("period_s", self.period_s)

    def rate_at(self, t: float) -> float:
        """The instantaneous arrival rate at time ``t``."""
        return self.base_rate * (
            1.0 + self.swing * math.sin(2.0 * math.pi * t / self.period_s)
        )

    def times(self, horizon_s: float) -> Tuple[float, ...]:
        """Arrival instants in ``[0, horizon_s)``, strictly ordered."""
        check_positive("horizon_s", horizon_s)
        rng = random.Random(self.seed)
        peak = self.base_rate * (1.0 + self.swing)
        out = []
        t = rng.expovariate(peak)
        while t < horizon_s:
            if rng.random() * peak < self.rate_at(t):
                out.append(t)
            t += rng.expovariate(peak)
        return tuple(out)
