"""Cached, resumable serving sweeps: workloads × policies.

A :class:`ServingTask` is the picklable description of one serving run
— workload spec plus a policy recipe.  Every field lowers through
:func:`repro.cache.keys.canonical_encode` (the workload is a tree of
frozen dataclasses, arrival generators included), so a task has a
content hash (:func:`serving_task_key`) and serving sweeps get the same
caching contract as ordinary and chaos sweeps: :func:`run_serving_sweep`
short-circuits stored outcomes and persists each fresh one the moment
it completes, so an interrupted sweep resumes where it stopped — and a
warm re-run is bit-identical to the cold one (asserted in the tests).

The stored record reuses the run cache unchanged: the energy/delay
point goes in as the point, the
:class:`~repro.metrics.serving.ServingReport` rides in the record's
``meta`` dict.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, List, Optional, Sequence, Tuple, Union

from repro.analysis.parallel import (
    _UNSET,
    SweepError,  # noqa: F401 - re-exported for callers catching sweep failures
    SweepEvent,
    execute_sweep,
)
from repro.cache.keys import canonical_encode, simulator_salt
from repro.exec.backends import ExecBackend
from repro.exec.retry import RetryPolicy
from repro.hardware.calibration import Calibration
from repro.metrics.records import EnergyDelayPoint
from repro.metrics.serving import ServingReport, build_serving_report
from repro.obs.tracer import Tracer
from repro.serving.elastic import ELASTIC_ALLOCATORS, ElasticServingPolicy
from repro.serving.policy import (
    CpuspeedServingPolicy,
    PowerCapServingPolicy,
    ServingPolicy,
    StaticServingPolicy,
    TierDvsPolicy,
)
from repro.serving.runner import run_serving
from repro.serving.spec import ServingWorkload
from repro.util.validation import check_in, check_positive

__all__ = [
    "SERVING_POLICIES",
    "ServingOutcome",
    "ServingTask",
    "run_serving_sweep",
    "serving_task_key",
]

#: Policy recipes a :class:`ServingTask` can name.
SERVING_POLICIES = ("static", "cpuspeed", "powercap", "tierdvs", "elastic")

#: ``meta`` tag marking a cache record as a serving outcome.
_META_KIND = "serving-report"


@dataclass(frozen=True)
class ServingTask:
    """One serving run (picklable, content-hashable).

    ``frequency`` applies to ``"static"`` (``None`` = ladder fastest);
    ``budget_watts`` is required for ``"powercap"`` and ``"elastic"``;
    ``interval`` and ``safety`` tune the control loops of
    ``"powercap"``/``"tierdvs"``/``"elastic"``; ``knobs`` and
    ``allocator`` select the elastic policy's knob set (``None`` = all
    three) and inner DVFS allocator.
    """

    workload: ServingWorkload
    policy: str = "tierdvs"  #: one of :data:`SERVING_POLICIES`
    frequency: Optional[float] = None
    budget_watts: Optional[float] = None
    interval: float = 0.25
    safety: float = 1.5
    calibration: Optional[Calibration] = None
    knobs: Optional[Tuple[str, ...]] = None
    allocator: str = "redist"

    def __post_init__(self) -> None:
        check_in("policy", self.policy, SERVING_POLICIES)
        if self.policy in ("powercap", "elastic") and self.budget_watts is None:
            raise ValueError(
                f"{self.policy} task needs budget_watts "
                f"(ServingTask(workload, {self.policy!r}, budget_watts=...))"
            )
        if self.budget_watts is not None:
            check_positive("budget_watts", self.budget_watts)
        if self.frequency is not None:
            check_positive("frequency", self.frequency)
        check_positive("interval", self.interval)
        check_positive("safety", self.safety)
        check_in("allocator", self.allocator, ELASTIC_ALLOCATORS)
        if self.knobs is not None and self.policy != "elastic":
            raise ValueError("knobs only applies to the 'elastic' policy")

    def build_policy(self) -> ServingPolicy:
        if self.policy == "static":
            return StaticServingPolicy(self.frequency)
        if self.policy == "cpuspeed":
            return CpuspeedServingPolicy()
        if self.policy == "powercap":
            assert self.budget_watts is not None
            return PowerCapServingPolicy(
                self.budget_watts, interval=self.interval
            )
        if self.policy == "elastic":
            assert self.budget_watts is not None
            kwargs = {} if self.knobs is None else {"knobs": self.knobs}
            return ElasticServingPolicy(
                self.budget_watts,
                interval=self.interval,
                allocator=self.allocator,
                **kwargs,
            )
        return TierDvsPolicy(interval=self.interval, safety=self.safety)

    @property
    def label(self) -> str:
        if self.policy == "static" and self.frequency is not None:
            return f"static@{self.frequency / 1e6:.0f}MHz"
        if self.policy == "powercap":
            return f"powercap@{self.budget_watts:.0f}W"
        if self.policy == "elastic":
            # Delegate so sweep tables and the policy's own decision
            # logs agree on the label, knob subset included.
            return self.build_policy().name
        return self.policy


@dataclass(frozen=True)
class ServingOutcome:
    """What one serving run produces: its point plus its report."""

    point: EnergyDelayPoint
    report: ServingReport


def serving_task_key(task: ServingTask, salt: Optional[str] = None) -> str:
    """SHA-256 content hash of one serving task (hex digest).

    Shares :func:`~repro.cache.keys.task_key`'s conventions: the version
    salt is folded in, and a ``calibration`` of ``None`` is normalised
    to the default calibration the runner substitutes at execution time.
    The workload (tiers, arrival generator, seeds) is part of the hash,
    so two sweeps differing only in arrival seed never collide.
    """
    from repro.hardware.calibration import DEFAULT_CALIBRATION

    if task.calibration is None:
        task = dataclasses.replace(task, calibration=DEFAULT_CALIBRATION)
    payload = {
        "salt": salt if salt is not None else simulator_salt(),
        "kind": _META_KIND,
        "task": canonical_encode(task),
    }
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _execute_serving(task: ServingTask) -> ServingOutcome:
    """Worker body: one serving run on a fresh cluster, scored."""
    run = run_serving(
        task.workload, task.build_policy(), calibration=task.calibration
    )
    report = build_serving_report(run, label=task.label)
    point = EnergyDelayPoint(
        label=task.label,
        energy=run.energy_j,
        delay=run.duration_s,
        frequency=task.frequency,
    )
    return ServingOutcome(point=point, report=report)


def _cached_outcome(cache, key: str) -> Optional[ServingOutcome]:
    """Decode a stored serving record, or ``None`` on miss/foreign record."""
    point = cache.get(key)
    if point is None:
        return None
    meta = cache.get_meta(key)
    if not meta or meta.get("kind") != _META_KIND:
        return None
    try:
        report = ServingReport.from_dict(meta["report"])
    except (KeyError, TypeError, ValueError):
        return None  # poisoned meta: fall through to re-simulation
    return ServingOutcome(point=point, report=report)


def _describe_serving(task: ServingTask) -> str:
    return task.label


def _store_serving(
    run_cache, key: str, task: ServingTask, outcome: ServingOutcome
) -> None:
    run_cache.put(
        key,
        outcome.point,
        meta={
            "kind": _META_KIND,
            "workload": task.workload.name,
            "report": outcome.report.to_dict(),
        },
    )


def run_serving_sweep(
    tasks: Sequence[ServingTask],
    *,
    jobs: Optional[int] = None,
    use_cache: Union[bool, object] = False,
    cache_dir: Optional[Union[str, Path]] = None,
    tracer: Optional[Tracer] = None,
    backend: Union[str, ExecBackend, None] = None,
    retry: Optional[RetryPolicy] = None,
    on_result: Optional[Callable[[SweepEvent], None]] = None,
    n_workers=_UNSET,
    cache=_UNSET,
) -> List[ServingOutcome]:
    """Run serving tasks, preserving input order.

    The serving counterpart of :func:`repro.analysis.parallel.run_sweep`
    and :func:`repro.faults.sweep.run_chaos_sweep`, with the identical
    keyword-only signature (asserted parameter-for-parameter in the
    tests): same ``jobs`` convention, same ``use_cache``/``cache_dir``
    resolution, same ``tracer`` semantics (installed as the active
    tracer, one wall-clock span per executed task, forces serial
    execution with a ``UserWarning`` when overriding), same
    ``backend``/``retry`` execution substrate (:mod:`repro.exec`), same
    streamed ``on_result`` :class:`~repro.analysis.parallel.SweepEvent`
    delivery, same deprecated ``n_workers``/``cache`` shims, same
    failure collection (:class:`~repro.analysis.parallel.SweepError`
    with attempt histories after everything has been attempted), and
    the same cache contract (stored outcomes short-circuit, fresh
    outcomes persist on completion, so interrupted sweeps resume).
    """
    return execute_sweep(
        tasks,
        caller="run_serving_sweep",
        execute=_execute_serving,
        describe=_describe_serving,
        key_of=serving_task_key,
        lookup=_cached_outcome,
        store=_store_serving,
        jobs=jobs,
        use_cache=use_cache,
        cache_dir=cache_dir,
        tracer=tracer,
        backend=backend,
        retry=retry,
        on_result=on_result,
        n_workers=n_workers,
        cache=cache,
    )
