"""Request-driven multi-tier serving on the simulated DVS cluster.

The paper evaluates slack-driven DVS on batch HPC codes; this package
jumps to the ROADMAP's target scenario — a cluster serving an open-loop
request stream under a latency SLO.  Requests arrive from a seeded
generator (:mod:`repro.serving.arrivals`), flow through a tiered path
(frontend → app → storage, :mod:`repro.serving.spec`) with per-tier
bounded queues, and execute frequency-dependent service demands on the
existing node/power models (:mod:`repro.serving.runner`).  Per-tier DVS
policies (:mod:`repro.serving.policy`) include a PowerTracer-style
controller that slows tiers whose queue slack keeps them off the
request critical path.  :mod:`repro.serving.sweep` gives serving runs
the same cached, resumable sweep contract as chaos sweeps.
"""

from repro.serving.arrivals import (
    DiurnalArrivals,
    MMPPArrivals,
    PoissonArrivals,
)
from repro.serving.elastic import ELASTIC_ALLOCATORS, ElasticServingPolicy
from repro.serving.policy import (
    CpuspeedServingPolicy,
    PowerCapServingPolicy,
    ServingPolicy,
    StaticServingPolicy,
    TierDvsPolicy,
)
from repro.serving.records import RequestRecord, TierSpan
from repro.serving.runner import ServingRun, run_serving
from repro.serving.spec import RequestSpec, ServingWorkload, TierSpec
from repro.serving.sweep import (
    SERVING_POLICIES,
    ServingOutcome,
    ServingTask,
    run_serving_sweep,
    serving_task_key,
)

__all__ = [
    "PoissonArrivals",
    "MMPPArrivals",
    "DiurnalArrivals",
    "TierSpan",
    "RequestRecord",
    "RequestSpec",
    "TierSpec",
    "ServingWorkload",
    "ServingRun",
    "run_serving",
    "ServingPolicy",
    "StaticServingPolicy",
    "CpuspeedServingPolicy",
    "PowerCapServingPolicy",
    "TierDvsPolicy",
    "ELASTIC_ALLOCATORS",
    "ElasticServingPolicy",
    "SERVING_POLICIES",
    "ServingTask",
    "ServingOutcome",
    "serving_task_key",
    "run_serving_sweep",
]
