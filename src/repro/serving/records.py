"""Immutable per-request outcome records.

A :class:`RequestRecord` is the complete story of one request: when it
arrived, when (and how) it resolved, and one :class:`TierSpan` per tier
it was actually served on.  These records — not tracer buffers — are
the substrate for latency percentiles and per-request energy
attribution (:mod:`repro.metrics.serving`), which is what makes
observation neutrality trivial: the numbers are computed from the same
plain records whether or not a tracer was active.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

__all__ = ["REQUEST_STATUSES", "RequestRecord", "TierSpan"]

#: Terminal states a request can resolve to.
REQUEST_STATUSES = ("ok", "dropped", "timeout")


@dataclass(frozen=True)
class TierSpan:
    """One request's residence in one tier: queue wait plus service.

    ``enqueued_s ≤ started_s ≤ finished_s``; the service interval
    ``[started_s, finished_s]`` is exclusive occupancy of ``node_id``
    (each node runs one server process), which is what lets the energy
    attribution charge it exactly.
    """

    tier: str
    node_id: int
    enqueued_s: float
    started_s: float
    finished_s: float

    @property
    def wait_s(self) -> float:
        return self.started_s - self.enqueued_s

    @property
    def service_s(self) -> float:
        return self.finished_s - self.started_s

    @property
    def residence_s(self) -> float:
        return self.finished_s - self.enqueued_s


@dataclass(frozen=True)
class RequestRecord:
    """One request's terminal record.

    ``status`` is ``"ok"`` (served by every tier), ``"dropped"`` (a full
    tier queue refused it) or ``"timeout"`` (it aged past the workload's
    timeout while queued and was discarded at dequeue).  Dropped and
    timed-out requests keep the spans of tiers that *did* serve them —
    that work happened and drew energy.
    """

    request_id: int
    arrival_s: float
    resolved_s: float
    status: str
    spans: Tuple[TierSpan, ...]

    @property
    def latency_s(self) -> float:
        """End-to-end sojourn time (arrival to resolution)."""
        return self.resolved_s - self.arrival_s

    @property
    def ok(self) -> bool:
        return self.status == "ok"
