"""Serving workload specification: tiers, arrivals, demands.

A :class:`ServingWorkload` is a frozen, picklable description of a
multi-tier service — the serving counterpart of
:class:`repro.workloads.base.Workload` — and, like every spec in this
codebase, hashes canonically through
:func:`repro.cache.keys.canonical_encode` so serving sweeps cache and
resume.

Requests are *pre-materialised*: :meth:`ServingWorkload.requests`
expands the arrival generator and samples every request's per-tier
service demand (cycles) up front from one seeded ``random.Random``, in
arrival order.  Execution order inside the simulator therefore cannot
perturb sampling — the determinism guarantee the tests pin down — and
demands are in *cycles*, so service time scales with whatever frequency
the node is running when the request reaches it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Tuple

from repro.serving.arrivals import PoissonArrivals
from repro.util.validation import check_in, check_positive

__all__ = ["SERVICE_DISTRIBUTIONS", "RequestSpec", "ServingWorkload", "TierSpec"]

#: Service-demand distributions a tier can name: ``"exp"`` draws
#: exponential demands around the mean (heavy-ish tails, the classic
#: M/M/k shape), ``"fixed"`` makes every request cost exactly the mean.
SERVICE_DISTRIBUTIONS = ("exp", "fixed")


@dataclass(frozen=True)
class TierSpec:
    """One tier of the request path.

    ``service_cycles`` is the *mean* frequency-dependent demand per
    request; at the Pentium-M ladder's 1.4 GHz top point, 1.4e6 cycles
    ≈ 1 ms of service.  ``queue_capacity`` bounds the tier's FIFO:
    arrivals beyond it are dropped (load shedding), which is what keeps
    an overloaded simulation finite.
    """

    name: str
    nodes: int
    service_cycles: float
    queue_capacity: int = 256
    distribution: str = "exp"

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("tier name must be non-empty")
        if self.nodes < 1:
            raise ValueError(f"nodes must be >= 1, got {self.nodes}")
        check_positive("service_cycles", self.service_cycles)
        if self.queue_capacity < 1:
            raise ValueError(
                f"queue_capacity must be >= 1, got {self.queue_capacity}"
            )
        check_in("distribution", self.distribution, SERVICE_DISTRIBUTIONS)


@dataclass(frozen=True)
class RequestSpec:
    """One pre-sampled request: arrival instant + per-tier demands."""

    request_id: int
    arrival_s: float
    demands: Tuple[float, ...]  #: cycles, one entry per tier


@dataclass(frozen=True)
class ServingWorkload:
    """A complete serving scenario (frozen, picklable, hashable).

    ``timeout_s`` is the end-to-end patience: a request older than this
    at any dequeue is discarded (status ``"timeout"``) without further
    service.  ``seed`` drives demand sampling only; the arrival
    generator carries its own seed.
    """

    tiers: Tuple[TierSpec, ...]
    arrivals: object = field(default_factory=lambda: PoissonArrivals(50.0))
    horizon_s: float = 10.0
    timeout_s: float = 5.0
    name: str = "serving"
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.tiers:
            raise ValueError("a serving workload needs at least one tier")
        object.__setattr__(self, "tiers", tuple(self.tiers))
        names = [t.name for t in self.tiers]
        if len(set(names)) != len(names):
            raise ValueError(f"tier names must be unique, got {names}")
        check_positive("horizon_s", self.horizon_s)
        check_positive("timeout_s", self.timeout_s)
        if not hasattr(self.arrivals, "times"):
            raise TypeError(
                "arrivals must expose .times(horizon_s) "
                f"(got {type(self.arrivals).__name__})"
            )

    # ------------------------------------------------------------------
    @property
    def total_nodes(self) -> int:
        """Cluster size the workload needs (one node group per tier)."""
        return sum(t.nodes for t in self.tiers)

    @property
    def tier_names(self) -> Tuple[str, ...]:
        return tuple(t.name for t in self.tiers)

    def requests(self) -> Tuple[RequestSpec, ...]:
        """The fully-materialised request stream (deterministic).

        Arrival times come from the arrival generator's own seed;
        per-tier demands are sampled here from ``random.Random(seed)``
        in arrival order, so the stream is a pure function of the spec.
        """
        arrivals = self.arrivals.times(self.horizon_s)
        rng = random.Random(self.seed)
        out = []
        for rid, at in enumerate(arrivals):
            demands = tuple(
                tier.service_cycles
                if tier.distribution == "fixed"
                else rng.expovariate(1.0) * tier.service_cycles
                for tier in self.tiers
            )
            out.append(RequestSpec(rid, at, demands))
        return tuple(out)
