"""Elastic serving policy: the multi-knob control plane under an SLO load.

:class:`ElasticServingPolicy` embeds a full
:class:`~repro.powercap.governor.CapGovernor` running an
:class:`~repro.powercap.elastic.ElasticPolicy` inside the serving
``prepare → start → teardown`` protocol.  Where
:class:`~repro.serving.policy.PowerCapServingPolicy` enforces a budget
with one uniform DVFS ceiling, the elastic policy escalates through the
whole knob hierarchy: DVFS first, then powered-core fractions, then
whole-node gating — which is what lets it hold budgets *below the DVFS
floor* of the cluster (``n × (base + slowest-rung)`` watts), the regime
the knob-map experiment labels infeasible for every pure-DVFS policy.

One node of every tier is *protected* from gating so the data path
always has a live server per tier; a gated node's server parks without
draining the queue (the runner checks ``cpu.powered`` before dequeue)
and rejoins after the actuator's wake latency.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.dvs.capped import CappedCpuFreq
from repro.hardware.cluster import Cluster
from repro.powercap.budget import PowerBudget
from repro.powercap.elastic import ELASTIC_KNOBS, ElasticPolicy
from repro.powercap.governor import CapGovernor, CapGovernorConfig
from repro.powercap.policy import SlackRedistributionPolicy, UniformCapPolicy
from repro.serving.policy import ServingPolicy
from repro.util.validation import check_in, check_positive

__all__ = ["ELASTIC_ALLOCATORS", "ElasticServingPolicy"]

#: Inner DVFS allocators an elastic serving policy can run.
ELASTIC_ALLOCATORS = ("redist", "uniform")


class ElasticServingPolicy(ServingPolicy):
    """A cluster power budget enforced by the elastic control plane.

    Parameters
    ----------
    budget_watts:
        The cluster cap the embedded governor enforces.
    knobs:
        Which knobs the :class:`~repro.powercap.elastic.ElasticPolicy`
        may use (default: all three).  ``("dvfs",)`` yields the
        pure-DVFS degenerate policy — the apples-to-apples baseline the
        knob-map experiment compares against.
    interval:
        Governor control window in seconds.
    allocator:
        The inner DVFS allocator: ``"redist"`` (slack redistribution,
        default) or ``"uniform"``.
    wake_latency_s:
        Boot latency a gated node pays before rejoining.
    """

    def __init__(
        self,
        budget_watts: float,
        knobs: Sequence[str] = ELASTIC_KNOBS,
        interval: float = 0.25,
        allocator: str = "redist",
        wake_latency_s: float = 0.5,
    ):
        check_positive("budget_watts", budget_watts)
        check_positive("interval", interval)
        check_in("allocator", allocator, ELASTIC_ALLOCATORS)
        self.budget_watts = budget_watts
        self.knobs: Tuple[str, ...] = tuple(knobs)
        self.interval = interval
        self.allocator = allocator
        self.wake_latency_s = wake_latency_s
        self.governor: Optional[CapGovernor] = None
        label = "elastic"
        if set(self.knobs) != set(ELASTIC_KNOBS):
            label += "[" + "+".join(self.knobs) + "]"
        if allocator != "redist":
            label += f"/{allocator}"
        self.name = f"{label}@{budget_watts:.0f}W"

    def prepare(self, cluster: Cluster, tiers: Sequence) -> None:
        super().prepare(cluster, tiers)
        inner = (
            UniformCapPolicy()
            if self.allocator == "uniform"
            else SlackRedistributionPolicy()
        )
        policy = ElasticPolicy(knobs=self.knobs, inner=inner)
        # Keep one server per tier alive: the first node of each tier
        # may never be gated, so the data path cannot fully stall.
        policy.protected = frozenset(tier.node_ids[0] for tier in tiers)
        self.governor = CapGovernor(
            cluster,
            PowerBudget(cluster_watts=self.budget_watts),
            policy=policy,
            config=CapGovernorConfig(interval=self.interval),
            cpufreqs={
                node.node_id: CappedCpuFreq(node, cluster.calibration)
                for node in cluster.nodes
            },
            wake_latency_s=self.wake_latency_s,
        )

    def start(self, engine) -> None:
        assert self.governor is not None
        self.governor.start(engine)

    def teardown(self) -> None:
        assert self.governor is not None
        self.governor.stop()
