"""The three distributed DVS strategies studied in the paper (§4).

1. **cpuspeed** — the OS daemon controls each node independently from
   ``/proc/stat`` utilisation;
2. **static** — one cluster-wide frequency for the whole run, set before
   the job starts;
3. **dynamic** — the application itself drops to a low frequency inside
   marked slack regions (``fft()``; the transpose's steps 2-3) and
   restores the base frequency outside them.

A strategy is applied around an SPMD run::

    strategy.prepare(cluster)
    result = run_spmd(cluster, program, program_args=(strategy,))
    strategy.teardown(cluster)

Workload programs receive the strategy and ask it for a per-rank
:class:`~repro.dvs.controller.DvsController` to honour region markers.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.dvs.controller import DvsController, DynamicController, NullController
from repro.dvs.cpufreq import CpuFreq
from repro.dvs.cpuspeed import CpuspeedConfig, CpuspeedDaemon
from repro.hardware.cluster import Cluster

__all__ = [
    "DVSStrategy",
    "StaticStrategy",
    "CpuspeedStrategy",
    "DynamicStrategy",
]


class DVSStrategy:
    """Base class: how the cluster's frequencies are managed for one run."""

    #: short label used in figures ("cpuspeed", "stat", "dyn")
    kind: str = "abstract"

    def __init__(self) -> None:
        self._cpufreqs: Dict[int, CpuFreq] = {}

    @property
    def name(self) -> str:  # pragma: no cover - overridden where it matters
        return self.kind

    # ------------------------------------------------------------------
    def _make_cpufreq(self, node, calibration) -> CpuFreq:
        """Build one node's frequency interface.

        A hook point: the power-cap strategy overrides it (per instance)
        so an inner strategy transparently drives cap-clamped setters —
        see :class:`repro.powercap.strategy.PowerCapStrategy`.
        """
        return CpuFreq(node, calibration)

    def prepare(self, cluster: Cluster) -> None:
        """Set initial frequencies / start daemons before the job."""
        self._cpufreqs = {
            node.node_id: self._make_cpufreq(node, cluster.calibration)
            for node in cluster.nodes
        }

    def teardown(self, cluster: Cluster) -> None:
        """Stop anything started in :meth:`prepare`."""

    def controller(self, comm) -> DvsController:
        """Per-rank controller handed to the workload program."""
        return NullController()

    def cpufreq_for(self, rank: int) -> CpuFreq:
        return self._cpufreqs[rank]


class StaticStrategy(DVSStrategy):
    """Fixed cluster-wide frequency for the whole program (paper: *stat*)."""

    kind = "stat"

    def __init__(self, frequency: float):
        super().__init__()
        self.frequency = frequency

    @property
    def name(self) -> str:
        return f"stat@{self.frequency / 1e6:.0f}MHz"

    def prepare(self, cluster: Cluster) -> None:
        super().prepare(cluster)
        for node in cluster.nodes:
            self._cpufreqs[node.node_id].set_speed_now(self.frequency)


class CpuspeedStrategy(DVSStrategy):
    """Per-node cpuspeed daemons (paper: *cpuspeed*).

    Nodes start at the ladder's maximum (the daemon's boot state) unless
    ``initial_frequency`` says otherwise.
    """

    kind = "cpuspeed"

    def __init__(
        self,
        config: Optional[CpuspeedConfig] = None,
        initial_frequency: Optional[float] = None,
    ):
        super().__init__()
        self.config = config or CpuspeedConfig()
        self.initial_frequency = initial_frequency
        self.daemons: List[CpuspeedDaemon] = []

    def prepare(self, cluster: Cluster) -> None:
        super().prepare(cluster)
        self.daemons = []
        for node in cluster.nodes:
            cpufreq = self._cpufreqs[node.node_id]
            start = (
                self.initial_frequency
                if self.initial_frequency is not None
                else node.table.fastest.frequency
            )
            cpufreq.set_speed_now(start)
            daemon = CpuspeedDaemon(node, cpufreq, self.config)
            daemon.start(cluster.engine)
            self.daemons.append(daemon)

    def teardown(self, cluster: Cluster) -> None:
        for daemon in self.daemons:
            daemon.stop()


class DynamicStrategy(DVSStrategy):
    """Application-directed scaling in marked regions (paper: *dyn*).

    ``base_frequency`` runs outside regions (the x-axis of Figs 4-5);
    ``low_frequency`` (default: the ladder minimum) runs inside them.
    """

    kind = "dyn"

    def __init__(
        self,
        base_frequency: float,
        low_frequency: Optional[float] = None,
        regions: Optional[List[str]] = None,
    ):
        super().__init__()
        self.base_frequency = base_frequency
        self.low_frequency = low_frequency
        self.regions = regions
        self.controllers: List[DynamicController] = []

    @property
    def name(self) -> str:
        return f"dyn@{self.base_frequency / 1e6:.0f}MHz"

    def prepare(self, cluster: Cluster) -> None:
        super().prepare(cluster)
        self._low = (
            self.low_frequency
            if self.low_frequency is not None
            else cluster.table.slowest.frequency
        )
        self.controllers = []
        for node in cluster.nodes:
            self._cpufreqs[node.node_id].set_speed_now(self.base_frequency)

    def controller(self, comm) -> DvsController:
        ctl = DynamicController(
            self.cpufreq_for(comm.rank), self._low, regions=self.regions
        )
        self.controllers.append(ctl)
        return ctl
