"""An ondemand-style governor (extension beyond the paper).

Linux 2.6.9 (late 2004 — contemporary with the paper) introduced the
``ondemand`` governor: pick the slowest frequency whose capacity covers
recent utilisation, re-evaluated on a fast timer.  The paper argues that
*any* utilisation-driven policy is blind to MPI busy-waiting; this
governor lets experiments test that claim against a second policy
(:func:`repro.dvs.policy.proportional_decision`) rather than only
cpuspeed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List, Optional

from repro.dvs.cpufreq import CpuFreq
from repro.dvs.policy import proportional_decision
from repro.dvs.strategy import DVSStrategy
from repro.hardware.cluster import Cluster
from repro.hardware.node import Node
from repro.sim.engine import Engine
from repro.sim.events import Event
from repro.sim.process import Process
from repro.util.validation import check_positive

__all__ = ["OndemandConfig", "OndemandGovernor", "OndemandStrategy"]


@dataclass(frozen=True)
class OndemandConfig:
    """Governor tuning (defaults mirror early ondemand)."""

    interval: float = 0.1  #: sampling period (much faster than cpuspeed)
    headroom: float = 1.25  #: capacity margin over observed utilisation

    def __post_init__(self) -> None:
        check_positive("interval", self.interval)
        check_positive("headroom", self.headroom)


class OndemandGovernor:
    """Per-node ondemand instance."""

    def __init__(
        self,
        node: Node,
        cpufreq: CpuFreq,
        config: Optional[OndemandConfig] = None,
    ):
        self.node = node
        self.cpufreq = cpufreq
        self.config = config or OndemandConfig()
        self._stopped = False
        self._process: Optional[Process] = None

    def start(self, engine: Engine) -> Process:
        if self._process is not None:
            raise RuntimeError("governor already started")
        self._process = engine.process(
            self._run(engine), name=f"ondemand[node{self.node.node_id}]"
        )
        return self._process

    def stop(self) -> None:
        self._stopped = True

    def _run(self, engine: Engine) -> Generator[Event, object, None]:
        prev = self.node.procstat.snapshot()
        ladder = self.node.table.frequencies
        while not self._stopped:
            yield engine.timeout(self.config.interval)
            if self._stopped:
                return
            self.node.cpu.finalize()
            current = self.node.procstat.snapshot()
            util = current.utilization_since(prev)
            prev = current
            # ondemand's "headroom" means: required capacity is the busy
            # share of the *current* frequency, scaled up.
            busy_capacity = util * self.node.cpu.frequency / ladder[-1]
            target = proportional_decision(
                min(1.0, busy_capacity), ladder, headroom=self.config.headroom
            )
            if target != self.node.cpu.frequency:
                self.cpufreq.set_speed_now(target)


class OndemandStrategy(DVSStrategy):
    """Cluster-wide ondemand governors (one per node)."""

    kind = "ondemand"

    def __init__(self, config: Optional[OndemandConfig] = None):
        super().__init__()
        self.config = config or OndemandConfig()
        self.governors: List[OndemandGovernor] = []

    def prepare(self, cluster: Cluster) -> None:
        super().prepare(cluster)
        self.governors = []
        for node in cluster.nodes:
            cpufreq = self.cpufreq_for(node.node_id)
            cpufreq.set_speed_now(node.table.fastest.frequency)
            governor = OndemandGovernor(node, cpufreq, self.config)
            governor.start(cluster.engine)
            self.governors.append(governor)

    def teardown(self, cluster: Cluster) -> None:
        for governor in self.governors:
            governor.stop()
