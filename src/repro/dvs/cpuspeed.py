"""Emulation of the Fedora ``cpuspeed`` daemon (paper's first strategy).

The real daemon wakes periodically, derives CPU utilisation from
``/proc/stat``, jumps to the maximum frequency when the CPU looks busy and
steps down one P-state when it looks idle.  Because MPICH-1 busy-waits,
``/proc/stat`` shows communication-bound MPI ranks as ~100 % busy, so the
daemon almost never scales down — the paper's Figure 3 negative result.

The daemon runs *per node* and acts independently (paper §4: "the default
strategy allowing the cpuspeed daemon complete control over the DVS of
each individual node independently").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

from repro.dvs.cpufreq import CpuFreq
from repro.hardware.node import Node
from repro.sim.engine import Engine
from repro.sim.events import Event
from repro.sim.process import Process
from repro.util.validation import check_fraction, check_positive

__all__ = ["CpuspeedConfig", "CpuspeedDaemon"]


@dataclass(frozen=True)
class CpuspeedConfig:
    """Daemon tuning knobs (defaults mirror the Fedora Core 2 package)."""

    interval: float = 1.0  #: seconds between utilisation checks
    up_threshold: float = 0.90  #: utilisation at/above which → max speed
    down_threshold: float = 0.25  #: utilisation at/below which → one step down

    def __post_init__(self) -> None:
        check_positive("interval", self.interval)
        check_fraction("up_threshold", self.up_threshold)
        check_fraction("down_threshold", self.down_threshold)
        if self.down_threshold >= self.up_threshold:
            raise ValueError(
                "down_threshold must be below up_threshold "
                f"({self.down_threshold} >= {self.up_threshold})"
            )


class CpuspeedDaemon:
    """One node's cpuspeed instance."""

    def __init__(
        self,
        node: Node,
        cpufreq: CpuFreq,
        config: Optional[CpuspeedConfig] = None,
    ):
        self.node = node
        self.cpufreq = cpufreq
        self.config = config or CpuspeedConfig()
        self._process: Optional[Process] = None
        self._stopped = False
        #: decision log: (time, utilization, chosen frequency Hz)
        self.decisions: list = []

    # ------------------------------------------------------------------
    def start(self, engine: Engine) -> Process:
        """Launch the daemon loop as a simulated process."""
        if self._process is not None:
            raise RuntimeError("daemon already started")
        self._process = engine.process(
            self._run(engine), name=f"cpuspeed[node{self.node.node_id}]"
        )
        return self._process

    def stop(self) -> None:
        """Ask the daemon loop to exit at its next wake-up."""
        self._stopped = True

    def _run(self, engine: Engine) -> Generator[Event, object, None]:
        from repro.dvs.policy import cpuspeed_decision

        table = self.node.table
        prev = self.node.procstat.snapshot()
        while not self._stopped:
            yield engine.timeout(self.config.interval)
            if self._stopped:
                return
            # The open accounting segment must be folded in, or a rank
            # that has been spinning since before our last wake-up would
            # look idle.
            self.node.cpu.finalize()
            current = self.node.procstat.snapshot()
            util = current.utilization_since(prev)
            prev = current

            freq = self.node.cpu.frequency
            target = cpuspeed_decision(
                util,
                freq,
                table.frequencies,
                up_threshold=self.config.up_threshold,
                down_threshold=self.config.down_threshold,
            )
            if target != freq:
                self.cpufreq.set_speed_now(target)
            self.decisions.append((engine.now, util, target))
